// Renders the span trace of golden congested-PA scenarios.
//
// Usage:
//   trace_dump                                   # fingerprint of all 12 cases
//   trace_dump --family grid --model congest     # one case
//   trace_dump --out run.trace.json              # Chrome trace-event JSON
//   trace_dump --metrics                         # append the metrics registry
//
// The fingerprint on stdout is the deterministic text form pinned by
// tests/test_trace_determinism.cpp; the --out file loads in Perfetto /
// chrome://tracing with simulated rounds as the time axis (see
// docs/OBSERVABILITY.md).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "golden_scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/flags.hpp"

namespace {

std::vector<std::string> selected_families(const std::string& want) {
  if (want != "all") return {want};
  std::vector<std::string> all;
  for (const char* family : dls::golden::kFamilies) all.push_back(family);
  return all;
}

std::vector<dls::PaModel> selected_models(const std::string& want) {
  using dls::PaModel;
  if (want == "supported") return {PaModel::kSupportedCongest};
  if (want == "congest") return {PaModel::kCongest};
  if (want == "ncc") return {PaModel::kNcc};
  if (want == "all") {
    return {PaModel::kSupportedCongest, PaModel::kCongest, PaModel::kNcc};
  }
  throw std::invalid_argument("unknown model '" + want +
                              "' (expected supported|congest|ncc|all)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const auto families = selected_families(flags.get("family", "all"));
  const auto models = selected_models(flags.get("model", "all"));
  const std::string out_path = flags.get("out", "");

  // All selected cases run under one tracer, each wrapped in a scenario span,
  // so the dump is a single self-contained trace with one timeline per
  // case ledger.
  Tracer tracer;
  {
    TraceScope scope(&tracer);
    for (const std::string& family : families) {
      for (const PaModel model : models) {
        ScopedSpan span(&tracer,
                        "golden/" + family + "-" + golden::model_name(model),
                        SpanKind::kScenario);
        const CongestedPaOutcome outcome =
            golden::run_golden_case(family, model);
        span.counter("total-rounds", outcome.total_rounds);
        span.counter("messages", outcome.ledger.total_messages());
      }
    }
  }

  std::cout << trace_fingerprint(tracer);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open trace output: " << out_path << "\n";
      return 1;
    }
    out << chrome_trace_json(tracer);
    std::cerr << "wrote " << tracer.spans().size() << " spans to " << out_path
              << "\n";
  }
  if (flags.get_bool("metrics", false)) {
    std::cout << "\n" << MetricsRegistry::global().export_text();
  }
  return 0;
}
