// Regenerates the golden table in tests/test_golden_rounds.cpp.
//
// Usage:
//   cmake --build build --target golden_rounds_gen
//   ./build/tools/golden_rounds_gen
//
// Prints the kGolden initializer rows to stdout in the exact source format;
// paste them over the table in tests/test_golden_rounds.cpp. Only do this for
// a DELIBERATE semantic change, and say why in the commit message — these
// numbers exist to catch accidental drift (see docs/TESTING.md).
#include <cstdio>

#include "golden_scenario.hpp"

int main() {
  using namespace dls;
  using namespace dls::golden;
  for (const char* family : kFamilies) {
    for (const PaModel model : kModels) {
      const TracedGoldenCase traced = run_golden_case_traced(family, model);
      const CongestedPaOutcome& o = traced.outcome;
      double checksum = 0.0;
      for (const double r : o.results) checksum += r;
      std::printf(
          "    {\"%s\", PaModel::k%s,\n"
          "     %zu, %u, %zu, %llu, %llu, %llu, %zu, %llu, %zu, %.1f,\n"
          "     %zu, 0x%016llxULL},\n",
          family, model_name(model), o.congestion, o.phases, o.max_layers,
          static_cast<unsigned long long>(o.total_rounds),
          static_cast<unsigned long long>(o.ledger.total_local()),
          static_cast<unsigned long long>(o.ledger.total_global()),
          o.ledger.peak_congestion(),
          static_cast<unsigned long long>(o.ledger.total_messages()),
          o.ledger.entries().size(), checksum, traced.trace_spans,
          static_cast<unsigned long long>(traced.trace_hash));
    }
  }
  return 0;
}
