// Tests for the self-healing layer: the numerical watchdog and its kernel
// remediations, checkpoint/resume of the outer iteration, the supervisor's
// escalation ladder at the PA-oracle boundary, and the end-to-end property
// the whole subsystem exists for — a supervised solve under fault injection
// either produces the bit-identical solution of the fault-free run or a
// typed DegradedResult, never an unhandled throw. Clean runs must stay
// bit-identical to an unsupervised build (the determinism contract of
// docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/solvers.hpp"
#include "obs/metrics.hpp"
#include "linalg/vector_ops.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "resilience/solve_supervisor.hpp"
#include "resilience/watchdog.hpp"
#include "sim/fault_injection.hpp"

namespace dls {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- NumericalWatchdog: signal detection -----------------------------------

TEST(Watchdog, CleanObservationsRaiseNothing) {
  NumericalWatchdog wd;
  EXPECT_EQ(wd.check_vector({1.0, -2.0, 0.0}, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.check_scalar(3.5, 0), WatchdogSignal::kNone);
  double rel = 1.0;
  for (std::size_t it = 0; it < 100; ++it) {
    EXPECT_EQ(wd.observe_residual(rel, it), WatchdogSignal::kNone);
    rel *= 0.9;
  }
  EXPECT_EQ(wd.observe_beta(0.7, 5), WatchdogSignal::kNone);
  EXPECT_FALSE(wd.triggered());
  EXPECT_EQ(wd.report().anomalies(), 0u);
}

TEST(Watchdog, DetectsNonFiniteVectorAndScalar) {
  NumericalWatchdog wd;
  EXPECT_EQ(wd.check_vector({1.0, kNan, 2.0}, 3),
            WatchdogSignal::kNonFiniteVector);
  EXPECT_EQ(wd.check_scalar(kInf, 4), WatchdogSignal::kNonFiniteScalar);
  EXPECT_EQ(wd.observe_residual(kNan, 5), WatchdogSignal::kNonFiniteScalar);
  ASSERT_EQ(wd.report().incidents.size(), 3u);
  EXPECT_EQ(wd.report().incidents[0],
            (WatchdogIncident{3, WatchdogSignal::kNonFiniteVector}));
  EXPECT_EQ(wd.report().incidents[1],
            (WatchdogIncident{4, WatchdogSignal::kNonFiniteScalar}));
}

TEST(Watchdog, DetectsResidualDivergence) {
  WatchdogConfig config;
  config.divergence_factor = 100.0;
  NumericalWatchdog wd(config);
  EXPECT_EQ(wd.observe_residual(1.0, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.observe_residual(0.5, 1), WatchdogSignal::kNone);
  // Divergence is judged against the best residual so far (0.5), not the
  // previous one.
  EXPECT_EQ(wd.observe_residual(49.0, 2), WatchdogSignal::kNone);
  EXPECT_EQ(wd.observe_residual(51.0, 3), WatchdogSignal::kResidualDivergence);
}

TEST(Watchdog, DetectsResidualStagnation) {
  WatchdogConfig config;
  config.stagnation_window = 5;
  NumericalWatchdog wd(config);
  EXPECT_EQ(wd.observe_residual(1.0, 0), WatchdogSignal::kNone);
  for (std::size_t it = 1; it < 5; ++it) {
    EXPECT_EQ(wd.observe_residual(1.0, it), WatchdogSignal::kNone);
  }
  EXPECT_EQ(wd.observe_residual(1.0, 5), WatchdogSignal::kResidualStagnation);
}

TEST(Watchdog, ResetResidualTrackingForgetsHistory) {
  WatchdogConfig config;
  config.stagnation_window = 3;
  config.divergence_factor = 10.0;
  NumericalWatchdog wd(config);
  EXPECT_EQ(wd.observe_residual(0.01, 0), WatchdogSignal::kNone);
  wd.reset_residual_tracking();
  // Without the reset this would be a 100x divergence over best = 0.01.
  EXPECT_EQ(wd.observe_residual(1.0, 1), WatchdogSignal::kNone);
}

TEST(Watchdog, DetectsBetaExplosion) {
  WatchdogConfig config;
  config.beta_limit = 1e3;
  NumericalWatchdog wd(config);
  EXPECT_EQ(wd.observe_beta(-999.0, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.observe_beta(-1001.0, 1), WatchdogSignal::kBetaExplosion);
}

TEST(Watchdog, RestartBudgetExhaustionSetsGaveUp) {
  WatchdogConfig config;
  config.max_restarts = 2;
  NumericalWatchdog wd(config);
  EXPECT_TRUE(wd.allow_restart());
  EXPECT_TRUE(wd.allow_restart());
  EXPECT_FALSE(wd.report().gave_up);
  EXPECT_FALSE(wd.allow_restart());
  EXPECT_TRUE(wd.report().gave_up);
  EXPECT_EQ(wd.report().restarts, 2u);
}

TEST(Watchdog, DisabledConfigIsInert) {
  WatchdogConfig config;
  config.enabled = false;
  NumericalWatchdog wd(config);
  EXPECT_EQ(wd.check_vector({kNan}, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.check_scalar(kInf, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.observe_residual(kNan, 0), WatchdogSignal::kNone);
  EXPECT_EQ(wd.observe_beta(kInf, 0), WatchdogSignal::kNone);
  EXPECT_FALSE(wd.triggered());
}

// --- Watchdog remediation inside the iteration kernels ---------------------

/// Deterministic mean-zero rhs with no special spectral structure (a plain
/// ramp excites so few eigenmodes on small grids that CG can finish before a
/// deliberately poisoned late matvec call ever happens).
Vec messy_rhs(std::size_t n) {
  Vec b(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<double>((i * 2654435761u) % 97);
    mean += b[i];
  }
  mean /= static_cast<double>(n);
  for (double& v : b) v -= mean;
  return b;
}

TEST(WatchdogKernels, CgRecoversFromTransientNanMatvec) {
  const Graph g = make_grid(4, 4);
  const Vec b = messy_rhs(g.num_nodes());
  std::size_t calls = 0;
  const LinearOperator poisoned = [&](const Vec& x) {
    Vec y = laplacian_apply(g, x);
    if (++calls == 3) y[1] = kNan;  // one transient corruption
    return y;
  };
  const SolveResult result = conjugate_gradient(poisoned, b);
  EXPECT_TRUE(result.converged) << result.residual_norm;
  EXPECT_TRUE(all_finite(result.x));
  ASSERT_TRUE(result.watchdog.triggered());
  EXPECT_EQ(result.watchdog.incidents[0].signal,
            WatchdogSignal::kNonFiniteVector);
  EXPECT_GE(result.watchdog.restarts, 1u);
  EXPECT_FALSE(result.watchdog.gave_up);
}

TEST(WatchdogKernels, CgPersistentNanFailsTypedNotPoisoned) {
  const Graph g = make_path(8);
  const Vec b = messy_rhs(g.num_nodes());
  const LinearOperator broken = [n = g.num_nodes()](const Vec&) {
    return Vec(n, kNan);
  };
  const SolveResult result = conjugate_gradient(broken, b);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.watchdog.gave_up);
  EXPECT_EQ(result.watchdog.restarts, WatchdogConfig{}.max_restarts);
  // The iterate never absorbs a NaN: the typed failure keeps x finite.
  EXPECT_TRUE(all_finite(result.x));
}

TEST(WatchdogKernels, NonFiniteRhsFailsImmediately) {
  Vec b = messy_rhs(8);
  b[3] = kInf;
  const Graph g = make_path(8);
  const SolveResult result = solve_laplacian_cg(g, b);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  ASSERT_TRUE(result.watchdog.triggered());
  EXPECT_TRUE(all_finite(result.x));
}

TEST(WatchdogKernels, PcgRecoversFromPoisonedPreconditioner) {
  const Graph g = make_grid(4, 4);
  const Vec b = messy_rhs(g.num_nodes());
  const LinearOperator op = [&g](const Vec& x) {
    return laplacian_apply(g, x);
  };
  std::size_t calls = 0;
  const LinearOperator precond = [&](const Vec& r) {
    if (++calls == 2) return Vec(r.size(), kNan);
    return r;  // identity preconditioner otherwise
  };
  const SolveResult result = preconditioned_cg(op, precond, b);
  EXPECT_TRUE(result.converged) << result.residual_norm;
  ASSERT_TRUE(result.watchdog.triggered());
  EXPECT_GE(result.watchdog.restarts, 1u);
  EXPECT_TRUE(all_finite(result.x));
}

TEST(WatchdogKernels, ChebyshevReboundsFromBadEigenbounds) {
  const Graph g = make_path(8);
  const Vec b = messy_rhs(g.num_nodes());
  const LinearOperator op = [&g](const Vec& x) {
    return laplacian_apply(g, x);
  };
  const SpectrumBounds bounds = laplacian_spectrum_bounds(g);
  SolveOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 20000;
  // lambda_max understated 4x: spectrum outside [lo, hi] makes the Chebyshev
  // polynomial amplify instead of damp, the residual explodes, and the
  // watchdog's rebound remediation must widen the bounds until it converges.
  const SolveResult result = chebyshev(op, b, bounds.lambda_min,
                                       bounds.lambda_max / 4.0, options);
  EXPECT_TRUE(result.converged) << result.residual_norm;
  EXPECT_GE(result.watchdog.rebounds, 1u);
  ASSERT_TRUE(result.watchdog.triggered());
}

TEST(WatchdogKernels, CleanSolveBitIdenticalWithWatchdogDisabled) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  SolveOptions off;
  off.watchdog.enabled = false;
  const SolveResult guarded = solve_laplacian_cg(g, b);   // watchdog default-on
  const SolveResult bare = solve_laplacian_cg(g, b, off);
  // The determinism contract: on a healthy run the watchdog observes and
  // never perturbs — identical iterates, bit for bit.
  EXPECT_EQ(guarded.x, bare.x);
  EXPECT_EQ(guarded.iterations, bare.iterations);
  EXPECT_EQ(guarded.residual_norm, bare.residual_norm);
  EXPECT_FALSE(guarded.watchdog.triggered());
}

// --- CheckpointManager -----------------------------------------------------

TEST(Checkpoint, DisabledByDefault) {
  CheckpointManager ckpt;
  EXPECT_FALSE(ckpt.enabled());
  EXPECT_FALSE(ckpt.due(1));
  EXPECT_FALSE(ckpt.can_restore());
  EXPECT_EQ(ckpt.latest(), nullptr);
}

TEST(Checkpoint, DueSaveRestoreRoundTrip) {
  CheckpointConfig config;
  config.interval = 2;
  CheckpointManager ckpt(config);
  EXPECT_FALSE(ckpt.due(0));
  EXPECT_FALSE(ckpt.due(1));
  EXPECT_TRUE(ckpt.due(2));

  SolverCheckpoint snap;
  snap.iteration = 2;
  snap.x = {1.0, 2.0, 3.0};
  snap.residual_history = {0.5, 0.25};
  ckpt.save(snap);
  EXPECT_EQ(ckpt.saves(), 1u);
  // Already snapshotted at 2: not due again until iteration 4.
  EXPECT_FALSE(ckpt.due(2));
  EXPECT_TRUE(ckpt.due(4));

  // latest() peeks without consuming budget.
  ASSERT_NE(ckpt.latest(), nullptr);
  EXPECT_EQ(ckpt.latest()->iteration, 2u);
  EXPECT_EQ(ckpt.restores(), 0u);

  EXPECT_EQ(ckpt.replayed_gap(5), 3u);
  ASSERT_TRUE(ckpt.can_restore());
  const SolverCheckpoint* restored = ckpt.restore();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->x, (Vec{1.0, 2.0, 3.0}));
  EXPECT_EQ(ckpt.restores(), 1u);
}

TEST(Checkpoint, RestoreBeforeAnySaveReplaysFromZero) {
  CheckpointConfig config;
  config.interval = 3;
  CheckpointManager ckpt(config);
  ASSERT_TRUE(ckpt.can_restore());
  EXPECT_EQ(ckpt.restore(), nullptr);  // nothing snapshotted: replay from 0
  EXPECT_EQ(ckpt.replayed_gap(4), 4u);
}

TEST(Checkpoint, ResumeBudgetExhausts) {
  CheckpointConfig config;
  config.interval = 1;
  config.resume_budget = 2;
  CheckpointManager ckpt(config);
  EXPECT_TRUE(ckpt.can_restore());
  ckpt.restore();
  EXPECT_TRUE(ckpt.can_restore());
  ckpt.restore();
  EXPECT_FALSE(ckpt.can_restore());
}

// --- SupervisedPaOracle: the escalation ladder -----------------------------

/// Deterministic fault source for ladder tests: the first `failures` measure
/// calls throw ChaosAbortError (with a small partial ledger, like a wedged
/// phase would carry); later calls return a fixed cost.
class FlakyOracle final : public CongestedPaOracle {
 public:
  FlakyOracle(const Graph& g, std::size_t failures)
      : CongestedPaOracle(g), failures_(failures) {}
  std::string name() const override { return "flaky"; }
  std::size_t measure_calls() const { return calls_; }

 protected:
  Measured measure(const PartCollection&) override {
    ++calls_;
    if (calls_ <= failures_) {
      RoundLedger partial;
      partial.charge_local(7, "flaky/wedged-phase");
      throw ChaosAbortError("flaky oracle wedged", partial);
    }
    return {5, 0, {}};
  }

 private:
  std::size_t failures_ = 0;
  std::size_t calls_ = 0;
};

PartCollection whole_graph_part(const Graph& g) {
  PartCollection pc;
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  pc.parts.push_back(std::move(all));
  return pc;
}

std::vector<std::vector<double>> twos(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 2.0);
  }
  return values;
}

TEST(Supervisor, ModeParsing) {
  EXPECT_EQ(supervisor_mode_from_string("off"), SupervisorMode::kOff);
  EXPECT_EQ(supervisor_mode_from_string("retry"), SupervisorMode::kRetry);
  EXPECT_EQ(supervisor_mode_from_string("degrade"), SupervisorMode::kDegrade);
  EXPECT_THROW(supervisor_mode_from_string("sometimes"),
               std::invalid_argument);
  EXPECT_STREQ(to_string(SupervisorMode::kDegrade), "degrade");
}

TEST(Supervisor, OffModeIsTransparentAndPropagatesFailures) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 1);
  SupervisorConfig config;
  config.mode = SupervisorMode::kOff;
  SupervisedPaOracle sup(flaky, config);
  const PartCollection pc = whole_graph_part(g);
  EXPECT_THROW(sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum()),
               ChaosAbortError);
  EXPECT_TRUE(sup.ledger().recovery_events().empty());
  EXPECT_EQ(sup.tier(), EscalationTier::kNone);
}

TEST(Supervisor, RetriesRecoverTransientFailures) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 2);  // two wedged attempts, then healthy
  SupervisedPaOracle sup(flaky);
  const PartCollection pc = whole_graph_part(g);
  const std::vector<double> results =
      sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 16.0);  // exact fold despite the failed attempts
  EXPECT_EQ(sup.tier(), EscalationTier::kRetry);
  EXPECT_EQ(flaky.measure_calls(), 3u);

  const RecoveryCounters counters = sup.counters();
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.rebuilds, 0u);
  EXPECT_EQ(counters.degradations, 0u);
  // Each retry records the 7 wasted rounds plus a positive backoff wait, and
  // those rounds are charged on the ledger, not just annotated.
  EXPECT_GT(counters.rounds_lost, 2u * 7u);
  bool charged_failed_attempt = false;
  for (const LedgerEntry& e : sup.ledger().entries()) {
    charged_failed_attempt |= e.label == "supervisor/failed-attempt";
  }
  EXPECT_TRUE(charged_failed_attempt);
}

TEST(Supervisor, RebuildsAfterRetryBudget) {
  const Graph g = make_path(8);
  SupervisorConfig config;
  config.retry_budget = 3;
  config.rebuild_budget = 1;
  // Initial try + 3 retries all wedge; the rebuild (call 5) succeeds.
  FlakyOracle flaky(g, 4);
  SupervisedPaOracle sup(flaky, config);
  const PartCollection pc = whole_graph_part(g);
  const std::vector<double> results =
      sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
  EXPECT_EQ(results[0], 16.0);
  EXPECT_EQ(sup.tier(), EscalationTier::kRebuild);
  EXPECT_EQ(flaky.measure_calls(), 5u);
  EXPECT_EQ(sup.counters().retries, 3u);
  EXPECT_EQ(sup.counters().rebuilds, 1u);
  EXPECT_EQ(sup.counters().degradations, 0u);
}

TEST(Supervisor, DegradesToBaselineAndStaysDegraded) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 1000);  // the primary never comes back
  SupervisedPaOracle sup(flaky);
  const PartCollection pc = whole_graph_part(g);
  const std::vector<double> results =
      sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
  EXPECT_EQ(results[0], 16.0);  // the baseline fallback still aggregates
  EXPECT_TRUE(sup.degraded());
  EXPECT_EQ(sup.tier(), EscalationTier::kDegrade);
  EXPECT_EQ(sup.counters().degradations, 1u);
  const std::size_t calls_at_degrade = flaky.measure_calls();

  // Degradation is sticky: a later instance goes straight to the baseline
  // without poking the suspect primary again.
  PartCollection segments;
  segments.parts.push_back({0, 1, 2});
  segments.parts.push_back({4, 5, 6});
  const std::vector<double> later =
      sup.aggregate_once(segments, twos(segments), AggregationMonoid::sum());
  EXPECT_EQ(later, (std::vector<double>{6.0, 6.0}));
  EXPECT_EQ(flaky.measure_calls(), calls_at_degrade);
  EXPECT_EQ(sup.counters().degradations, 1u);  // no second degrade event
}

TEST(Supervisor, RetryModeRethrowsTypedAfterLadderCap) {
  const Graph g = make_path(8);
  SupervisorConfig config;
  config.mode = SupervisorMode::kRetry;
  FlakyOracle flaky(g, 1000);
  SupervisedPaOracle sup(flaky, config);
  const PartCollection pc = whole_graph_part(g);
  try {
    sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
    FAIL() << "expected ChaosAbortError";
  } catch (const ChaosAbortError& e) {
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
    // The abort's ledger carries the recovery trace for diagnosis.
    EXPECT_GT(e.ledger().recovery_count(RecoveryAction::kRetry), 0u);
  }
  EXPECT_EQ(highest_tier(sup.ledger()), EscalationTier::kExhausted);
}

TEST(Supervisor, RecoveryTraceReplaysFromSeed) {
  const Graph g = make_path(8);
  const PartCollection pc = whole_graph_part(g);
  const auto run = [&](std::uint64_t jitter_seed) {
    FlakyOracle flaky(g, 3);
    SupervisorConfig config;
    config.jitter_seed = jitter_seed;
    config.initial_backoff = 16;
    config.max_backoff = 256;
    SupervisedPaOracle sup(flaky, config);
    sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
    return sup.ledger();
  };
  const RoundLedger a = run(0xAAAA);
  const RoundLedger b = run(0xAAAA);
  EXPECT_TRUE(a == b);  // same seed: bit-identical trace, events included
  const RoundLedger c = run(0xBBBB);
  EXPECT_NE(a.total_local(), c.total_local());  // jitter decorrelates
}

// --- Certificate failures feed the escalation ladder -----------------------

TEST(Supervisor, CertificateFailureWithinBudgetBumpsRetryTier) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 0);  // healthy primary: only certificates complain
  SupervisedPaOracle sup(flaky);  // certificate_failure_budget = 1
  EXPECT_FALSE(sup.note_certificate_failure(3, 12, "checksum mismatch"));
  EXPECT_EQ(sup.certificate_failures(), 1u);
  EXPECT_EQ(sup.tier(), EscalationTier::kRetry);
  EXPECT_FALSE(sup.degraded());
  const RecoveryCounters counters = sup.counters();
  EXPECT_EQ(counters.certificate_resolves, 1u);
  EXPECT_EQ(counters.degradations, 0u);
  // Same rung of the ladder as a retry — a different detector, not a new
  // escalation level.
  EXPECT_EQ(highest_tier(sup.ledger()), EscalationTier::kRetry);
  // The event carries everything a postmortem needs.
  ASSERT_EQ(sup.ledger().recovery_events().size(), 1u);
  const RecoveryEvent& e = sup.ledger().recovery_events()[0];
  EXPECT_EQ(e.action, RecoveryAction::kCertificateResolve);
  EXPECT_EQ(e.subject, 3u);
  EXPECT_EQ(e.attempt, 1u);
  EXPECT_EQ(e.rounds_lost, 12u);
  EXPECT_EQ(e.detail, "checksum mismatch");
}

TEST(Supervisor, CertificateBudgetExhaustionDegradesSticky) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 0);
  SupervisedPaOracle sup(flaky);  // budget 1
  EXPECT_FALSE(sup.note_certificate_failure(0, 1, "first"));
  EXPECT_TRUE(sup.note_certificate_failure(0, 1, "second"));  // 2 > budget
  EXPECT_TRUE(sup.degraded());
  EXPECT_EQ(sup.tier(), EscalationTier::kDegrade);
  EXPECT_EQ(sup.counters().certificate_resolves, 2u);
  EXPECT_EQ(sup.counters().degradations, 1u);
  bool saw_budget_detail = false;
  for (const RecoveryEvent& e : sup.ledger().recovery_events()) {
    saw_budget_detail |=
        e.action == RecoveryAction::kDegrade &&
        e.detail.find("certificate failure budget exhausted") !=
            std::string::npos;
  }
  EXPECT_TRUE(saw_budget_detail);
  // Sticky: further failures report degraded without a second degrade event.
  EXPECT_TRUE(sup.note_certificate_failure(0, 1, "third"));
  EXPECT_EQ(sup.counters().degradations, 1u);
  // And the primary is no longer consulted — PA calls serve exactly from
  // the baseline fallback.
  const PartCollection pc = whole_graph_part(g);
  const std::vector<double> results =
      sup.aggregate_once(pc, twos(pc), AggregationMonoid::sum());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 16.0);
  EXPECT_EQ(flaky.measure_calls(), 0u);
}

TEST(Supervisor, CertificateFailuresNeverDegradeOutsideDegradeMode) {
  const Graph g = make_path(8);
  FlakyOracle flaky(g, 0);
  SupervisorConfig config;
  config.mode = SupervisorMode::kRetry;
  SupervisedPaOracle sup(flaky, config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(sup.note_certificate_failure(0, 1, "rejected"));
  }
  EXPECT_EQ(sup.certificate_failures(), 4u);
  EXPECT_EQ(sup.tier(), EscalationTier::kRetry);
  EXPECT_EQ(sup.counters().certificate_resolves, 4u);
  EXPECT_EQ(sup.counters().degradations, 0u);
}

// --- Solver-level: supervised solves under fault injection -----------------

LaplacianSolverOptions chain_options() {
  LaplacianSolverOptions options;
  options.base_size = 12;  // force a real multi-level chain on test graphs
  options.tolerance = 1e-6;
  return options;
}

struct SweepMix {
  const char* name;
  FaultConfig config;
};

std::vector<SweepMix> sweep_mixes() {
  std::vector<SweepMix> mixes;
  {
    FaultConfig c;
    c.drop_rate = 0.5;
    c.round_limit = 20;  // tight budget: some measures wedge and abort
    mixes.push_back({"droppy", c});
  }
  {
    FaultConfig c;
    c.drop_rate = 0.2;
    c.crash_rate = 0.05;
    c.max_crash_len = 4;
    c.round_limit = 20;
    mixes.push_back({"crashy", c});
  }
  return mixes;
}

Graph sweep_family(int family, Rng& rng) {
  switch (family) {
    case 0: return make_grid(5, 5);
    case 1: return make_random_regular(24, 3, rng);
    default: return make_path(24);
  }
}

// The keystone property: in degrade mode a supervised solve under fault
// injection NEVER throws and NEVER degrades — the ladder always lands on a
// working oracle, and because PA aggregates are value-exact at every rung,
// the solution is bit-identical to the fault-free solve.
TEST(SupervisedSolve, FaultedSolveMatchesFaultFreeBitwise) {
  std::size_t ladder_engagements = 0;
  for (int family = 0; family < 3; ++family) {
    for (const SweepMix& mix : sweep_mixes()) {
      for (std::uint64_t rep = 0; rep < 2; ++rep) {
        const std::uint64_t seed = 0x51EE * (rep + 1) + family * 131;
        Rng family_rng(0xFA111 + family);
        const Graph g = sweep_family(family, family_rng);
        const Vec b = messy_rhs(g.num_nodes());
        const std::string label = std::string("family") +
                                  std::to_string(family) + "/" + mix.name +
                                  "/rep" + std::to_string(rep);

        // Fault-free reference.
        Rng clean_oracle_rng(seed);
        ShortcutPaOracle clean_oracle(g, clean_oracle_rng);
        Rng clean_solver_rng(seed ^ 0x50F7);
        DistributedLaplacianSolver clean(clean_oracle, clean_solver_rng,
                                         chain_options());
        const LaplacianSolveReport want = clean.solve(b);
        ASSERT_TRUE(want.converged) << label;

        // Same scenario, faulted and supervised.
        FaultPlan plan(seed ^ 0xFA57, mix.config);
        Rng faulty_oracle_rng(seed);
        ShortcutPaOracle faulty_oracle(g, faulty_oracle_rng);
        faulty_oracle.set_fault_plan(&plan);
        SupervisedPaOracle supervised(faulty_oracle);
        Rng faulty_solver_rng(seed ^ 0x50F7);
        DistributedLaplacianSolver solver(supervised, faulty_solver_rng,
                                          chain_options());
        LaplacianSolveReport got;
        ASSERT_NO_THROW(got = solver.solve(b)) << label;

        EXPECT_FALSE(got.degraded.has_value()) << label;
        EXPECT_TRUE(got.converged) << label;
        EXPECT_EQ(got.x, want.x) << label;  // bit-identical, not approximate
        if (supervised.tier() != EscalationTier::kNone) ++ladder_engagements;
      }
    }
  }
  // The sweep must actually exercise recovery, not pass vacuously.
  EXPECT_GT(ladder_engagements, 0u);
}

// Supervisor capped at retry + permanently lossy network: the solve must
// come back as a typed DegradedResult — finite partial x, named tier,
// recorded reason — never an unhandled ChaosAbortError.
TEST(SupervisedSolve, RetryModeExhaustionDegradesTyped) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  FaultConfig faults;
  faults.drop_rate = 1.0;
  faults.horizon = FaultConfig::kNoHorizon;
  faults.round_limit = 64;
  FaultPlan plan(0xDE6D, faults);
  Rng oracle_rng(77);
  ShortcutPaOracle oracle(g, oracle_rng);
  oracle.set_fault_plan(&plan);
  SupervisorConfig sup_config;
  sup_config.mode = SupervisorMode::kRetry;
  sup_config.retry_budget = 1;
  sup_config.rebuild_budget = 1;
  SupervisedPaOracle supervised(oracle, sup_config);
  Rng solver_rng(78);
  DistributedLaplacianSolver solver(supervised, solver_rng, chain_options());

  LaplacianSolveReport report;
  ASSERT_NO_THROW(report = solver.solve(b));
  ASSERT_TRUE(report.degraded.has_value());
  EXPECT_EQ(report.degraded->tier, EscalationTier::kExhausted);
  EXPECT_FALSE(report.degraded->reason.empty());
  EXPECT_FALSE(report.converged);
  EXPECT_TRUE(all_finite(report.x));
  EXPECT_GT(report.recovery.retries + report.recovery.rebuilds, 0u);
}

// Unsupervised solver + transient oracle failures: checkpoint/resume absorbs
// the aborts inside solve() and the solve completes with the restores
// recorded in the report and the level-0 stats.
TEST(SupervisedSolve, CheckpointResumeAbsorbsTransientAborts) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  FlakyOracle flaky(g, 2);  // first two measures wedge, then healthy
  LaplacianSolverOptions options = chain_options();
  options.checkpoint.interval = 1;
  options.checkpoint.resume_budget = 4;
  Rng solver_rng(99);
  DistributedLaplacianSolver solver(flaky, solver_rng, options);

  LaplacianSolveReport report;
  ASSERT_NO_THROW(report = solver.solve(b));
  EXPECT_TRUE(report.converged) << report.relative_residual;
  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_EQ(report.recovery.checkpoints_restored, 2u);
  EXPECT_EQ(solver.level_stats()[0].checkpoints_restored, 2u);
  EXPECT_GT(flaky.ledger().recovery_count(RecoveryAction::kCheckpointRestore),
            0u);
}

// Without checkpointing the same transient failures exhaust nothing —
// there is no resume budget at all — so the solve degrades typed instead.
TEST(SupervisedSolve, AbortWithoutCheckpointDegradesTyped) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  FlakyOracle flaky(g, 2);
  Rng solver_rng(99);
  DistributedLaplacianSolver solver(flaky, solver_rng, chain_options());
  LaplacianSolveReport report;
  ASSERT_NO_THROW(report = solver.solve(b));
  ASSERT_TRUE(report.degraded.has_value());
  EXPECT_FALSE(report.converged);
  EXPECT_TRUE(all_finite(report.x));
}

// The determinism contract, end to end: wrapping a clean oracle in the
// supervisor changes nothing — same solution bits, same round totals, no
// recovery events — so golden traces are untouched by the resilience layer.
TEST(SupervisedSolve, CleanSupervisedSolveBitIdenticalToUnsupervised) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());

  Rng bare_oracle_rng(4242);
  ShortcutPaOracle bare_oracle(g, bare_oracle_rng);
  Rng bare_solver_rng(17);
  DistributedLaplacianSolver bare(bare_oracle, bare_solver_rng,
                                  chain_options());
  const LaplacianSolveReport want = bare.solve(b);

  Rng sup_oracle_rng(4242);
  ShortcutPaOracle primary(g, sup_oracle_rng);
  SupervisedPaOracle supervised(primary);
  Rng sup_solver_rng(17);
  DistributedLaplacianSolver solver(supervised, sup_solver_rng,
                                    chain_options());
  const LaplacianSolveReport got = solver.solve(b);

  EXPECT_EQ(got.x, want.x);
  EXPECT_EQ(got.local_rounds, want.local_rounds);
  EXPECT_EQ(got.global_rounds, want.global_rounds);
  EXPECT_EQ(got.pa_calls, want.pa_calls);
  EXPECT_TRUE(supervised.ledger().recovery_events().empty());
  EXPECT_EQ(supervised.tier(), EscalationTier::kNone);
  EXPECT_FALSE(got.recovery.any());
  EXPECT_FALSE(got.watchdog.triggered());
}

// --- Workspace reuse across the resilience paths ----------------------------
//
// The solver's shared lease arena (docs/KERNELS.md) persists across solve()
// calls, watchdog restarts, checkpoint resumes and supervisor recoveries.
// These tests pin two properties at once: recycled buffers never change the
// solution bits, and once warm the arena creates no new backing vectors —
// observed through the global mem.alloc.ws.* mirrors, since the arena itself
// is a private member.

struct WsMetricSnapshot {
  std::uint64_t buffers;
  std::uint64_t grows;
  std::uint64_t acquires;

  static WsMetricSnapshot take() {
    MetricsRegistry& reg = MetricsRegistry::global();
    return {reg.counter("mem.alloc.ws.buffers").value(),
            reg.counter("mem.alloc.ws.capacity_grows").value(),
            reg.counter("mem.alloc.ws.acquires").value()};
  }
};

TEST(WorkspaceReuse, RepeatSolvesReuseWarmArenaBitIdentically) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  Rng oracle_rng(4242);
  ShortcutPaOracle oracle(g, oracle_rng);
  Rng solver_rng(17);
  DistributedLaplacianSolver solver(oracle, solver_rng, chain_options());

  const LaplacianSolveReport first = solver.solve(b);
  ASSERT_TRUE(first.converged);
  const WsMetricSnapshot warm = WsMetricSnapshot::take();
  for (int rep = 0; rep < 3; ++rep) {
    const LaplacianSolveReport again = solver.solve(b);
    EXPECT_TRUE(again.converged);
    EXPECT_EQ(again.x, first.x);  // recycled buffers, identical bits
  }
  const WsMetricSnapshot after = WsMetricSnapshot::take();
  // The arena was exercised (leases flowed) but fully recycled: no new
  // backing vectors, no capacity growth.
  EXPECT_GT(after.acquires, warm.acquires);
  EXPECT_EQ(after.buffers, warm.buffers);
  EXPECT_EQ(after.grows, warm.grows);
}

TEST(WorkspaceReuse, WarmArenaSurvivesCheckpointResumes) {
  const Graph g = make_grid(5, 5);
  const Vec b = messy_rhs(g.num_nodes());
  FlakyOracle flaky(g, 2);  // two wedged measures, absorbed by resume
  LaplacianSolverOptions options = chain_options();
  options.checkpoint.interval = 1;
  options.checkpoint.resume_budget = 4;
  Rng solver_rng(99);
  DistributedLaplacianSolver solver(flaky, solver_rng, options);

  // First solve restores twice; the unwinds release their leases back into
  // the arena (RAII), so nothing leaks across the restarts.
  LaplacianSolveReport first;
  ASSERT_NO_THROW(first = solver.solve(b));
  EXPECT_TRUE(first.converged);
  EXPECT_EQ(first.recovery.checkpoints_restored, 2u);
  const WsMetricSnapshot warm = WsMetricSnapshot::take();

  // Oracle healthy now: the second solve runs entirely on recycled buffers
  // and lands on the same solution the resumed solve produced.
  LaplacianSolveReport second;
  ASSERT_NO_THROW(second = solver.solve(b));
  EXPECT_TRUE(second.converged);
  EXPECT_FALSE(second.degraded.has_value());
  EXPECT_EQ(second.x, first.x);
  const WsMetricSnapshot after = WsMetricSnapshot::take();
  EXPECT_GT(after.acquires, warm.acquires);
  EXPECT_EQ(after.buffers, warm.buffers);
  EXPECT_EQ(after.grows, warm.grows);
}

TEST(WorkspaceReuse, FaultedSupervisedRepeatSolvesMatchCleanBitwise) {
  Rng family_rng(0xFA111 + 1);
  const Graph g = make_random_regular(24, 3, family_rng);
  const Vec b = messy_rhs(g.num_nodes());
  const std::uint64_t seed = 0x51EE + 131;

  // Fault-free reference on a fresh (cold-arena) solver.
  Rng clean_oracle_rng(seed);
  ShortcutPaOracle clean_oracle(g, clean_oracle_rng);
  Rng clean_solver_rng(seed ^ 0x50F7);
  DistributedLaplacianSolver clean(clean_oracle, clean_solver_rng,
                                   chain_options());
  const LaplacianSolveReport want = clean.solve(b);
  ASSERT_TRUE(want.converged);

  // Faulted + supervised solver, solved twice: the first solve may engage
  // the escalation ladder (and warms the arena while unwinding through
  // recoveries); the second runs on recycled buffers with the fault plan in
  // a different phase. Both must reproduce the clean bits.
  FaultConfig config;
  config.drop_rate = 0.5;
  config.round_limit = 20;
  FaultPlan plan(seed ^ 0xFA57, config);
  Rng faulty_oracle_rng(seed);
  ShortcutPaOracle faulty_oracle(g, faulty_oracle_rng);
  faulty_oracle.set_fault_plan(&plan);
  SupervisedPaOracle supervised(faulty_oracle);
  Rng faulty_solver_rng(seed ^ 0x50F7);
  DistributedLaplacianSolver solver(supervised, faulty_solver_rng,
                                    chain_options());

  LaplacianSolveReport first;
  ASSERT_NO_THROW(first = solver.solve(b));
  EXPECT_FALSE(first.degraded.has_value());
  EXPECT_EQ(first.x, want.x);
  const WsMetricSnapshot warm = WsMetricSnapshot::take();

  LaplacianSolveReport second;
  ASSERT_NO_THROW(second = solver.solve(b));
  EXPECT_FALSE(second.degraded.has_value());
  EXPECT_EQ(second.x, want.x);
  const WsMetricSnapshot after = WsMetricSnapshot::take();
  EXPECT_GT(after.acquires, warm.acquires);
  EXPECT_EQ(after.buffers, warm.buffers);
  EXPECT_EQ(after.grows, warm.grows);
}

}  // namespace
}  // namespace dls
