#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "sim/fault_injection.hpp"
#include "sim/sync_network.hpp"

namespace dls {
namespace {

// --- FaultPlan: the hash oracle -------------------------------------------

TEST(FaultPlan, DecisionsArePureFunctionsOfCoordinates) {
  FaultConfig config;
  config.drop_rate = 0.5;
  config.delay_rate = 0.3;
  config.duplicate_rate = 0.3;
  FaultPlan a(0x1234, config);
  FaultPlan b(0x1234, config);
  // Consult b at scrambled coordinates first: decisions must not shift.
  for (std::uint64_t r = 16; r >= 1; --r) {
    for (std::size_t s = 0; s < 8; ++s) b.message_fate(r, 7 - s, 0, 1);
  }
  for (std::uint64_t r = 1; r <= 16; ++r) {
    for (std::size_t s = 0; s < 8; ++s) {
      const MessageFate fa = a.message_fate(r, s, 0, 1);
      const MessageFate fb = b.message_fate(r, s, 0, 1);
      EXPECT_EQ(fa.dropped, fb.dropped) << "r=" << r << " s=" << s;
      EXPECT_EQ(fa.delay, fb.delay) << "r=" << r << " s=" << s;
      EXPECT_EQ(fa.duplicated, fb.duplicated) << "r=" << r << " s=" << s;
    }
  }
  // Identical consultation histories also leave identical injected logs.
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(FaultPlan, RepeatConsultationAgrees) {
  FaultConfig config;
  config.drop_rate = 0.4;
  FaultPlan plan(99, config);
  for (std::uint64_t r = 1; r <= 8; ++r) {
    const MessageFate first = plan.message_fate(r, 3, 0, 1);
    const MessageFate again = plan.message_fate(r, 3, 0, 1);
    EXPECT_EQ(first.dropped, again.dropped);
  }
}

TEST(FaultPlan, DifferentSeedsAndEpochsChangeTheSchedule) {
  FaultConfig config;
  config.drop_rate = 0.5;
  auto signature = [&](FaultPlan& plan) {
    std::uint64_t bits = 0;
    for (std::size_t s = 0; s < 64; ++s) {
      bits = (bits << 1) | plan.message_fate(1, s, 0, 1).dropped;
    }
    return bits;
  };
  FaultPlan a(1, config);
  FaultPlan b(2, config);
  EXPECT_NE(signature(a), signature(b));
  FaultPlan c(1, config);
  const std::uint64_t epoch0 = signature(c);
  EXPECT_EQ(c.begin_epoch(), 1u);
  EXPECT_NE(signature(c), epoch0);
}

TEST(FaultPlan, HorizonBoundsMessageFaults) {
  FaultConfig config;
  config.drop_rate = 1.0;
  config.horizon = 4;
  FaultPlan plan(7, config);
  for (std::uint64_t r = 1; r <= 4; ++r) {
    EXPECT_TRUE(plan.message_fate(r, 0, 0, 1).dropped) << r;
  }
  for (std::uint64_t r = 5; r <= 12; ++r) {
    const MessageFate fate = plan.message_fate(r, 0, 0, 1);
    EXPECT_FALSE(fate.dropped) << r;
    EXPECT_EQ(fate.delay, 0u);
    EXPECT_FALSE(fate.duplicated);
  }
}

TEST(FaultPlan, CrashWindowCoversItsLengthAndLogsOneEvent) {
  FaultConfig config;
  config.crash_rate = 0.2;
  config.max_crash_len = 4;
  FaultPlan plan(0xBEEF, config);
  // Find some crash window by scanning; the rates make one overwhelmingly
  // likely within this search space.
  bool found = false;
  for (NodeId v = 0; v < 32 && !found; ++v) {
    for (std::uint64_t r = 1; r <= 32 && !found; ++r) {
      if (plan.node_crashed(r, v)) found = true;
    }
  }
  ASSERT_TRUE(found);
  const std::vector<FaultEvent> injected = plan.injected();
  ASSERT_FALSE(injected.empty());
  const FaultEvent w = injected.front();
  ASSERT_EQ(w.kind, FaultKind::kCrash);
  ASSERT_GE(w.param, 1u);
  ASSERT_LE(w.param, config.max_crash_len);
  // Every round of the window reports crashed; the log still holds exactly
  // one event per window (re-discovery deduplicates).
  for (std::uint64_t r = w.round; r < w.round + w.param; ++r) {
    EXPECT_TRUE(plan.node_crashed(r, static_cast<NodeId>(w.subject)));
  }
  const std::vector<FaultEvent> after = plan.injected();
  EXPECT_EQ(std::count(after.begin(), after.end(), w), 1);
}

TEST(FaultPlan, ReplayFiresExactlyTheListedEvents) {
  FaultConfig config;
  config.drop_rate = 0.4;
  config.delay_rate = 0.3;
  config.duplicate_rate = 0.3;
  FaultPlan generative(0xABC, config);
  for (std::uint64_t r = 1; r <= 8; ++r) {
    for (std::size_t s = 0; s < 6; ++s) generative.message_fate(r, s, 0, 1);
  }
  const std::vector<FaultEvent> events = generative.injected();
  ASSERT_FALSE(events.empty());

  FaultPlan replay = FaultPlan::replay(0xABC, events, config);
  for (std::uint64_t r = 1; r <= 8; ++r) {
    for (std::size_t s = 0; s < 6; ++s) {
      const MessageFate want = generative.message_fate(r, s, 0, 1);
      const MessageFate got = replay.message_fate(r, s, 0, 1);
      EXPECT_EQ(want.dropped, got.dropped) << "r=" << r << " s=" << s;
      EXPECT_EQ(want.delay, got.delay) << "r=" << r << " s=" << s;
      EXPECT_EQ(want.duplicated, got.duplicated) << "r=" << r << " s=" << s;
    }
  }
  // Coordinates outside the list are clean, even where the generative hash
  // would have fired.
  const MessageFate outside = replay.message_fate(1, 999, 0, 1);
  EXPECT_FALSE(outside.dropped);
  EXPECT_EQ(outside.delay, 0u);
  EXPECT_FALSE(outside.duplicated);
  // A full replay reconstructs the same injected log.
  EXPECT_EQ(replay.injected(), events);
}

TEST(FaultPlan, ReorderPermutationIsValidDeterministicAndReplayable) {
  FaultConfig config;
  config.reorder = true;
  FaultPlan plan(0x515, config);
  EXPECT_TRUE(plan.reorder_permutation(1, 0, 1).empty());  // count < 2

  // Find a coordinate whose shuffle is not the identity.
  std::uint64_t subject = 0;
  std::vector<std::size_t> perm;
  while (perm.empty()) perm = plan.reorder_permutation(2, ++subject, 5);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(plan.reorder_permutation(2, subject, 5), perm);

  const std::vector<FaultEvent> events = plan.injected();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kReorder);
  FaultPlan replay = FaultPlan::replay(0x515, events, config);
  EXPECT_EQ(replay.reorder_permutation(2, subject, 5), perm);
  EXPECT_TRUE(replay.reorder_permutation(2, subject + 1, 5).empty());
}

TEST(FaultPlan, ValidatesConfig) {
  FaultConfig bad_rate;
  bad_rate.drop_rate = 1.5;
  EXPECT_THROW(FaultPlan(1, bad_rate), std::invalid_argument);
  FaultConfig bad_len;
  bad_len.max_delay = 0;
  EXPECT_THROW(FaultPlan(1, bad_len), std::invalid_argument);
}

TEST(FaultPlan, ResetRestoresConstructedState) {
  FaultConfig config;
  config.drop_rate = 1.0;
  FaultPlan plan(5, config);
  plan.begin_epoch();
  plan.message_fate(1, 0, 0, 1);
  ASSERT_FALSE(plan.injected().empty());
  plan.reset();
  EXPECT_EQ(plan.epoch(), 0u);
  EXPECT_TRUE(plan.injected().empty());
}

// --- SyncNetwork: defined edge-case behaviour (satellite) ------------------

TEST(SyncNetwork, InboxDefinedBeforeFirstStep) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(net.inbox(v).empty());
  }
}

TEST(SyncNetwork, InboxOutOfRangeThrows) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  EXPECT_THROW(net.inbox(3), std::invalid_argument);
  net.step();
  EXPECT_THROW(net.inbox(static_cast<NodeId>(-1)), std::invalid_argument);
}

// --- FaultyNetwork ---------------------------------------------------------

TEST(FaultyNetwork, NullPlanIsTransparent) {
  const Graph g = make_grid(3, 3);
  SyncNetwork plain(g);
  FaultyNetwork faulty(g, nullptr);
  Rng rng(11);
  for (int round = 0; round < 5; ++round) {
    for (const Edge& e : g.edges()) {
      if (!rng.next_bool(0.6)) continue;
      const EdgeId id = static_cast<EdgeId>(&e - g.edges().data());
      const CongestMessage m{e.u, e.v, id, rng(), rng.next_double(), 1};
      plain.send(m);
      faulty.send(m);
    }
    plain.step();
    faulty.step();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = plain.inbox(v);
      const auto& b = faulty.inbox(v);
      ASSERT_EQ(a.size(), b.size()) << "node " << v;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].tag, b[i].tag);
        EXPECT_EQ(a[i].payload, b[i].payload);
      }
    }
  }
  EXPECT_EQ(plain.rounds(), faulty.rounds());
  EXPECT_EQ(plain.messages_sent(), faulty.messages_sent());
  EXPECT_EQ(faulty.dropped() + faulty.duplicated() + faulty.delayed() +
                faulty.suppressed_sends(),
            0u);
}

TEST(FaultyNetwork, DropLosesTheMessageAndCounts) {
  const Graph g = make_path(2);
  // slot 0 = edge 0 in the u->v direction; delivery round of the first
  // step() is 1, so the replayed drop targets (epoch 0, round 1, slot 0).
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kDrop, 0, 1, 0, 0}});
  FaultyNetwork net(g, &plan);
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_EQ(net.messages_sent(), 1u);  // the adversary does not refund sends
}

TEST(FaultyNetwork, DelayedMessageArrivesLater) {
  const Graph g = make_path(2);
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kDelay, 0, 1, 0, 2}});
  FaultyNetwork net(g, &plan);
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();  // round 1: held
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();  // round 2: still held
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();  // round 3 = 1 + delay: delivered
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].payload, 2.5);
  EXPECT_EQ(net.delayed(), 1u);
}

TEST(FaultyNetwork, DuplicateDeliversAnExtraCopyNextRound) {
  const Graph g = make_path(2);
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kDuplicate, 0, 1, 0, 0}});
  FaultyNetwork net(g, &plan);
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);  // the extra copy
  EXPECT_EQ(net.inbox(1)[0].tag, 5u);
  EXPECT_EQ(net.duplicated(), 1u);
}

TEST(FaultyNetwork, CrashedReceiverLosesMailAndReadsEmpty) {
  const Graph g = make_path(2);
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kCrash, 0, 1, 1, 2}});
  FaultyNetwork net(g, &plan);
  EXPECT_TRUE(net.node_up(1));  // the crash window starts at round 1, not 0
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();  // round 1: node 1 crashed
  EXPECT_FALSE(net.node_up(1));
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.dropped(), 1u);
  net.step();  // round 2: still crashed
  EXPECT_FALSE(net.node_up(1));
  net.step();  // round 3: recovered; mail was dropped, not queued
  EXPECT_TRUE(net.node_up(1));
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(FaultyNetwork, SendFromCrashedNodeSilentDropPolicy) {
  const Graph g = make_path(2);
  FaultConfig config;  // default down_send = kSilentDrop
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kCrash, 0, 0, 0, 1}},
                                     config);
  FaultyNetwork net(g, &plan);
  net.send({0, 1, 0, 5, 2.5, 1});  // consulted at round 0: sender is down
  EXPECT_EQ(net.suppressed_sends(), 1u);
  EXPECT_EQ(net.messages_sent(), 0u);
  // The slot was never occupied, so a second send this round is legal.
  net.send({0, 1, 0, 6, 1.0, 1});
  EXPECT_EQ(net.suppressed_sends(), 2u);
}

TEST(FaultyNetwork, SendOverDownLinkThrowPolicy) {
  const Graph g = make_path(2);
  FaultConfig config;
  config.down_send = FaultConfig::DownSendPolicy::kThrow;
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kLinkDown, 0, 0, 0, 2}},
                                     config);
  FaultyNetwork net(g, &plan);
  EXPECT_FALSE(net.link_up(0));
  EXPECT_THROW(net.send({0, 1, 0, 5, 2.5, 1}), std::invalid_argument);
  net.step();
  net.step();  // flap window (rounds 0..1) over
  EXPECT_TRUE(net.link_up(0));
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
}

TEST(FaultyNetwork, InboxDefinedPreStepAndOutOfRangeThrows) {
  const Graph g = make_path(3);
  FaultyNetwork net(g, nullptr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(net.inbox(v).empty());
  }
  EXPECT_THROW(net.inbox(3), std::invalid_argument);
  EXPECT_THROW(net.node_up(3), std::invalid_argument);
  EXPECT_THROW(net.link_up(2), std::invalid_argument);
}

// --- FaultKind naming (satellite: exhaustive, round-trips) -----------------

TEST(FaultKind, ToStringIsExhaustiveAndRoundTrips) {
  for (const FaultKind kind : kAllFaultKinds) {
    const std::string name = to_string(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "unnamed FaultKind";
    EXPECT_EQ(fault_kind_from_string(name), kind) << name;
  }
  EXPECT_THROW(fault_kind_from_string("no-such-kind"), std::invalid_argument);
  // A kind outside the enum (torn bytes in a repro file) fails loudly
  // instead of printing garbage into chaos repro output.
  EXPECT_THROW(to_string(static_cast<FaultKind>(250)), std::invalid_argument);
}

// --- Payload corruption ----------------------------------------------------

TEST(CorruptPayload, PerturbsEveryValueButKeepsItFinite) {
  const double values[] = {0.0, 1.0, -3.25, 1e-300, 12345.678};
  for (const double v : values) {
    for (const std::uint32_t mask : {1u, 0xFFFFu, 0xFFFFFFFFu}) {
      const double out = corrupt_payload(v, mask);
      EXPECT_NE(out, v) << v << " mask=" << mask;
      EXPECT_TRUE(std::isfinite(out)) << v << " mask=" << mask;
      // XOR is an involution: re-applying the mask restores the value.
      EXPECT_EQ(corrupt_payload(out, mask), v);
    }
  }
  // A zero mask is forced to 1 rather than silently not corrupting.
  EXPECT_NE(corrupt_payload(2.5, 0), 2.5);
}

TEST(FaultPlan, CorruptFiresRecordsAndReplays) {
  FaultConfig config;
  config.corrupt_rate = 0.5;
  FaultPlan plan(0xC0DE, config);
  std::size_t corrupted = 0;
  for (std::uint64_t r = 1; r <= 16; ++r) {
    for (std::size_t s = 0; s < 8; ++s) {
      const MessageFate fate = plan.message_fate(r, s, 0, 1);
      if (!fate.corrupted) continue;
      ++corrupted;
      EXPECT_NE(fate.corrupt_mask, 0u);  // a corruption always flips bits
    }
  }
  ASSERT_GT(corrupted, 0u);
  const std::vector<FaultEvent> events = plan.injected();
  ASSERT_EQ(events.size(), corrupted);
  for (const FaultEvent& e : events) {
    EXPECT_EQ(e.kind, FaultKind::kCorrupt);
    EXPECT_NE(e.param, 0u);  // the recorded mask replays the perturbation
  }
  FaultPlan replay = FaultPlan::replay(0xC0DE, events, config);
  for (std::uint64_t r = 1; r <= 16; ++r) {
    for (std::size_t s = 0; s < 8; ++s) {
      const MessageFate want = plan.message_fate(r, s, 0, 1);
      const MessageFate got = replay.message_fate(r, s, 0, 1);
      EXPECT_EQ(want.corrupted, got.corrupted) << "r=" << r << " s=" << s;
      EXPECT_EQ(want.corrupt_mask, got.corrupt_mask) << "r=" << r << " s=" << s;
    }
  }
}

TEST(FaultPlan, CorruptNeverFiresOnDroppedMessages) {
  FaultConfig config;
  config.drop_rate = 1.0;
  config.corrupt_rate = 1.0;
  FaultPlan plan(0xFEED, config);
  for (std::uint64_t r = 1; r <= 8; ++r) {
    const MessageFate fate = plan.message_fate(r, 0, 0, 1);
    EXPECT_TRUE(fate.dropped);
    EXPECT_FALSE(fate.corrupted);  // there is no payload left to corrupt
  }
  for (const FaultEvent& e : plan.injected()) {
    EXPECT_NE(e.kind, FaultKind::kCorrupt);
  }
}

// --- Message integrity (sync_network) --------------------------------------

TEST(MessageIntegrity, WithIntegrityChargesAWordAndVerifies) {
  const CongestMessage plain{0, 1, 0, 7, 3.5, 1};
  EXPECT_TRUE(integrity_ok(plain));  // unchecksummed messages always pass
  const CongestMessage sealed = with_integrity(plain);
  EXPECT_TRUE(sealed.checksummed);
  EXPECT_EQ(sealed.words, plain.words + 1);  // the checksum word is bandwidth
  EXPECT_TRUE(integrity_ok(sealed));
  CongestMessage tampered = sealed;
  tampered.payload = corrupt_payload(tampered.payload, 0x4);
  EXPECT_FALSE(integrity_ok(tampered));
  CongestMessage retagged = sealed;
  retagged.tag ^= 1;  // the digest covers the tag, not just the payload
  EXPECT_FALSE(integrity_ok(retagged));
}

TEST(FaultyNetwork, UncheckedCorruptionIsDeliveredSilently) {
  const Graph g = make_path(2);
  FaultPlan plan =
      FaultPlan::replay(1, {{FaultKind::kCorrupt, 0, 1, 0, 0x10}});
  FaultyNetwork net(g, &plan);
  net.send({0, 1, 0, 5, 2.5, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].payload, corrupt_payload(2.5, 0x10));
  EXPECT_EQ(net.corrupt_delivered(), 1u);
  EXPECT_EQ(net.corrupt_detected(), 0u);
  EXPECT_EQ(net.dropped(), 0u);
}

TEST(FaultyNetwork, ChecksummedCorruptionIsDetectedAndDropped) {
  const Graph g = make_path(2);
  // The checksum word makes the message 2 words wide, so it is delivered
  // (and its fate consulted) at round 2.
  FaultPlan plan =
      FaultPlan::replay(1, {{FaultKind::kCorrupt, 0, 2, 0, 0x10}});
  FaultyNetwork net(g, &plan);
  net.send(with_integrity({0, 1, 0, 5, 2.5, 1}));
  net.step();
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());  // quarantined at the receiver
  EXPECT_EQ(net.corrupt_detected(), 1u);
  EXPECT_EQ(net.corrupt_delivered(), 0u);
  EXPECT_EQ(net.dropped(), 1u);  // feeds the same retry path as a drop
}

TEST(FaultyNetwork, CorruptedCloneFailsVerificationToo) {
  const Graph g = make_path(2);
  // Corrupt + duplicate the same transmission (2-word frame, so its fate is
  // consulted at round 2): detection happens before duplication, so no
  // perturbed clone ever enters the held queue — both rounds stay empty.
  FaultPlan plan = FaultPlan::replay(1, {{FaultKind::kDuplicate, 0, 2, 0, 0},
                                         {FaultKind::kCorrupt, 0, 2, 0, 0x8}});
  FaultyNetwork net(g, &plan);
  net.send(with_integrity({0, 1, 0, 5, 2.5, 1}));
  net.step();
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();  // the would-be clone's due round
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.corrupt_detected(), 1u);
  EXPECT_EQ(net.duplicated(), 0u);
}

TEST(FaultyNetwork, ReorderPermutesDeliveryBatch) {
  // A star delivers several same-round messages to the hub; with reorder on
  // and a fixed seed, some round's batch must arrive permuted relative to
  // the fault-free order.
  const Graph g = make_star(6);  // node 0 is the hub
  FaultConfig config;
  config.reorder = true;
  FaultPlan plan(0xD00D, config);
  FaultyNetwork net(g, &plan);
  SyncNetwork plain(g);
  bool permuted = false;
  for (int round = 0; round < 8 && !permuted; ++round) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const CongestMessage m{g.edge(e).v, 0, e,
                             static_cast<std::uint64_t>(e), 1.0, 1};
      net.send(m);
      plain.send(m);
    }
    net.step();
    plain.step();
    const auto& a = plain.inbox(0);
    const auto& b = net.inbox(0);
    ASSERT_EQ(a.size(), b.size());
    std::vector<std::uint64_t> tags_a, tags_b;
    for (const CongestMessage& m : a) tags_a.push_back(m.tag);
    for (const CongestMessage& m : b) tags_b.push_back(m.tag);
    std::vector<std::uint64_t> sa = tags_a, sb = tags_b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb);  // same multiset, possibly different order
    permuted |= tags_a != tags_b;
  }
  EXPECT_TRUE(permuted) << "reorder never fired across 8 rounds";
}

}  // namespace
}  // namespace dls
