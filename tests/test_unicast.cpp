#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "shortcuts/unicast.hpp"

namespace dls {
namespace {

TEST(MeasurePaths, CongestionAndDilation) {
  const Graph g = make_path(6);
  const UnicastSolution s =
      measure_paths(g, {{0, 1, 2, 3}, {2, 3, 4}, {3, 4, 5}});
  EXPECT_EQ(s.dilation, 3u);
  EXPECT_EQ(s.congestion, 2u);  // edges (2,3) and (3,4) each carry two paths
  EXPECT_EQ(s.quality(), 3u);
}

TEST(RouteMultipleUnicast, AvoidsUnnecessaryCongestion) {
  // 2 x k ladder: k pairs top-to-bottom can each use their own rung.
  const std::size_t cols = 6;
  const Graph g = make_grid(2, cols);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t c = 0; c < cols; ++c) {
    pairs.push_back({static_cast<NodeId>(c), static_cast<NodeId>(cols + c)});
  }
  Rng rng(1);
  const UnicastSolution s = route_multiple_unicast(g, pairs, rng);
  EXPECT_EQ(s.paths.size(), cols);
  EXPECT_EQ(s.congestion, 1u);
  EXPECT_EQ(s.dilation, 1u);
}

TEST(RouteMultipleUnicast, SharedBridgeForcesCongestion) {
  const Graph g = make_barbell(10);  // one bridge edge
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId i = 1; i <= 3; ++i) pairs.push_back({i, static_cast<NodeId>(5 + i)});
  Rng rng(2);
  const UnicastSolution s = route_multiple_unicast(g, pairs, rng);
  EXPECT_EQ(s.congestion, 3u);  // every pair crosses the bridge
}

TEST(AnyToAnyCast, PicksDisjointPathsWhenAvailable) {
  const std::size_t side = 5;
  const Graph g = make_grid(side, side);
  std::vector<NodeId> sources, sinks;
  for (std::size_t r = 0; r < side; ++r) {
    sources.push_back(static_cast<NodeId>(r * side));
    sinks.push_back(static_cast<NodeId>(r * side + side - 1));
  }
  Rng rng(3);
  const UnicastSolution s = any_to_any_cast(g, sources, sinks, rng);
  EXPECT_EQ(s.paths.size(), side);
  EXPECT_LE(s.congestion, 2u);
  EXPECT_LE(s.quality(), 2 * (side - 1));
}

TEST(PacketRouting, SinglePathTakesItsLength) {
  const Graph g = make_path(9);
  std::vector<std::vector<NodeId>> paths{{0, 1, 2, 3, 4, 5, 6, 7, 8}};
  Rng rng(4);
  EXPECT_EQ(simulate_packet_routing(g, paths, rng), 8u);
}

TEST(PacketRouting, ContentionSerializes) {
  const Graph g = make_path(2);
  std::vector<std::vector<NodeId>> paths(5, std::vector<NodeId>{0, 1});
  Rng rng(5);
  EXPECT_EQ(simulate_packet_routing(g, paths, rng), 5u);
}

TEST(PacketRouting, WithinCongestionPlusDilationEnvelope) {
  Rng rng(6);
  const Graph g = make_grid(7, 7);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 10; ++i) {
    pairs.push_back({static_cast<NodeId>(rng.next_below(49)),
                     static_cast<NodeId>(rng.next_below(49))});
    if (pairs.back().first == pairs.back().second) pairs.pop_back();
  }
  const UnicastSolution s = route_multiple_unicast(g, pairs, rng);
  const std::uint64_t rounds = simulate_packet_routing(g, s.paths, rng);
  EXPECT_LE(rounds, 4 * (s.congestion + s.dilation));
  EXPECT_GE(rounds, s.dilation);
}

TEST(Lemma24Decomposition, GridRowsAreOneGroup) {
  const std::size_t side = 4;
  const Graph g = make_grid(side, side);
  std::vector<NodeId> sources, sinks;
  for (std::size_t r = 0; r < side; ++r) {
    sources.push_back(static_cast<NodeId>(r * side));
    sinks.push_back(static_cast<NodeId>(r * side + side - 1));
  }
  const AnyToAnyDecomposition d = decompose_any_to_any(g, sources, sinks);
  EXPECT_EQ(d.num_groups(), 1u);
}

TEST(Lemma24Decomposition, CongestedMultisetsSplitIntoFewGroups) {
  // ρ copies of each source/sink: connectivity ρ, so Lemma 24 promises
  // O(ρ log k) groups; the greedy peeling realizes exactly ρ here.
  const std::size_t side = 4;
  const std::size_t rho = 3;
  const Graph g = make_grid(side, side);
  std::vector<NodeId> sources, sinks;
  for (std::size_t copy = 0; copy < rho; ++copy) {
    for (std::size_t r = 0; r < side; ++r) {
      sources.push_back(static_cast<NodeId>(r * side));
      sinks.push_back(static_cast<NodeId>(r * side + side - 1));
    }
  }
  const AnyToAnyDecomposition d = decompose_any_to_any(g, sources, sinks);
  EXPECT_LE(d.num_groups(), rho * 3);
  // Every group must itself be disjointly connectable.
  for (std::size_t i = 0; i < d.num_groups(); ++i) {
    EXPECT_TRUE(any_to_any_node_disjointly_connectable(g, d.source_groups[i],
                                                       d.sink_groups[i]));
    EXPECT_EQ(d.source_groups[i].size(), d.sink_groups[i].size());
  }
  // Groups partition the multisets.
  std::size_t total = 0;
  for (const auto& group : d.source_groups) total += group.size();
  EXPECT_EQ(total, sources.size());
}

class DecompositionSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionSweep, ValidOnRandomInstances) {
  Rng rng(50 + GetParam());
  const Graph g = make_random_regular(32, 4, rng);
  std::vector<NodeId> sources, sinks;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(static_cast<NodeId>(rng.next_below(32)));
    sinks.push_back(static_cast<NodeId>(rng.next_below(32)));
  }
  const AnyToAnyDecomposition d = decompose_any_to_any(g, sources, sinks);
  for (std::size_t i = 0; i < d.num_groups(); ++i) {
    EXPECT_TRUE(any_to_any_node_disjointly_connectable(g, d.source_groups[i],
                                                       d.sink_groups[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace dls
