#include <gtest/gtest.h>

#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"

namespace dls {
namespace {

struct Instance {
  PartCollection pc;
  std::vector<std::vector<double>> values;
  std::vector<double> expected_sum;
};

Instance make_instance(const Graph& g, const PartCollection& pc, Rng& rng) {
  Instance inst;
  inst.pc = pc;
  inst.values.resize(pc.num_parts());
  inst.expected_sum.assign(pc.num_parts(), 0.0);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      const double v = rng.next_double();
      inst.values[i].push_back(v);
      inst.expected_sum[i] += v;
    }
  }
  (void)g;
  return inst;
}

TEST(CongestedPaSolver, DisjointVoronoiCorrect) {
  Rng rng(1);
  const Graph g = make_grid(6, 6);
  const Instance inst = make_instance(g, random_voronoi_partition(g, 5, rng), rng);
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng);
  EXPECT_EQ(outcome.congestion, 1u);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], inst.expected_sum[i], 1e-9);
  }
  EXPECT_GT(outcome.total_rounds, 0u);
  EXPECT_EQ(outcome.total_rounds, outcome.ledger.total_local());
}

TEST(CongestedPaSolver, Figure1InstanceCorrect) {
  // The paper's flagship ρ=2 instance (Observation 14 / Figure 1).
  Rng rng(2);
  const std::size_t side = 6;
  const Graph g = make_grid(side, side);
  const Instance inst = make_instance(g, figure1_diagonal_instance(side), rng);
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng);
  EXPECT_EQ(outcome.congestion, 2u);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], inst.expected_sum[i], 1e-9);
  }
}

TEST(CongestedPaSolver, HighCongestionStackedInstance) {
  Rng rng(3);
  const Graph g = make_torus(5, 5);
  const Instance inst =
      make_instance(g, stacked_voronoi_instance(g, 4, 4, rng), rng);
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng);
  EXPECT_GE(outcome.congestion, 2u);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], inst.expected_sum[i], 1e-9);
  }
}

TEST(CongestedPaSolver, MinMonoid) {
  Rng rng(4);
  const Graph g = make_grid(5, 5);
  const PartCollection pc = figure1_diagonal_instance(5);
  std::vector<std::vector<double>> values(pc.num_parts());
  std::vector<double> expected(pc.num_parts(),
                               std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      const double v = rng.next_double();
      values[i].push_back(v);
      expected[i] = std::min(expected[i], v);
    }
  }
  const CongestedPaOutcome outcome =
      solve_congested_pa(g, pc, values, AggregationMonoid::min(), rng);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_DOUBLE_EQ(outcome.results[i], expected[i]);
  }
}

TEST(CongestedPaSolver, NccModelCorrectAndGlobalOnly) {
  Rng rng(5);
  const Graph g = make_grid(5, 5);
  const Instance inst = make_instance(g, figure1_diagonal_instance(5), rng);
  CongestedPaOptions options;
  options.model = PaModel::kNcc;
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng, options);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], inst.expected_sum[i], 1e-9);
  }
  EXPECT_EQ(outcome.ledger.total_local(), 0u);
  EXPECT_GT(outcome.ledger.total_global(), 0u);
}

TEST(CongestedPaSolver, SequentialBaselineCorrectButSlower) {
  Rng rng(6);
  const std::size_t side = 6;
  const Graph g = make_grid(side, side);
  const Instance inst = make_instance(g, figure1_diagonal_instance(side), rng);
  const CongestedPaOutcome fast = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng);
  Rng rng2(6);
  const CongestedPaOutcome slow = solve_congested_pa_sequential_baseline(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng2);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(slow.results[i], inst.expected_sum[i], 1e-9);
    EXPECT_NEAR(fast.results[i], inst.expected_sum[i], 1e-9);
  }
  EXPECT_EQ(slow.phases, inst.pc.num_parts());
}

TEST(CongestedPaSolver, SingleNodeParts) {
  Rng rng(7);
  const Graph g = make_path(5);
  PartCollection pc;
  pc.parts = {{0}, {2}, {4}, {2}};
  std::vector<std::vector<double>> values{{1.0}, {2.0}, {3.0}, {4.0}};
  const CongestedPaOutcome outcome =
      solve_congested_pa(g, pc, values, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.results[1], 2.0);
  EXPECT_DOUBLE_EQ(outcome.results[3], 4.0);
}

TEST(CongestedPaSolver, CongestModeChargesConstruction) {
  // Theorem 8's distinction: CONGEST pays for shortcut construction,
  // Supported-CONGEST does not — identical results, strictly more rounds.
  Rng rng1(9), rng2(9);
  const Graph g = make_grid(6, 6);
  const Instance inst = make_instance(g, figure1_diagonal_instance(6), rng1);
  CongestedPaOptions supported;
  supported.model = PaModel::kSupportedCongest;
  const CongestedPaOutcome cheap = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng1, supported);
  Rng rng3(9);
  Instance inst2 = make_instance(g, figure1_diagonal_instance(6), rng3);
  CongestedPaOptions congest;
  congest.model = PaModel::kCongest;
  const CongestedPaOutcome charged = solve_congested_pa(
      g, inst2.pc, inst2.values, AggregationMonoid::sum(), rng2, congest);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(charged.results[i], inst2.expected_sum[i], 1e-9);
  }
  EXPECT_GT(charged.total_rounds, cheap.total_rounds / 2);
  bool has_construction_entry = false;
  for (const LedgerEntry& e : charged.ledger.entries()) {
    has_construction_entry |= e.label.rfind("construct", 0) == 0;
  }
  EXPECT_TRUE(has_construction_entry);
  for (const LedgerEntry& e : cheap.ledger.entries()) {
    EXPECT_NE(e.label.rfind("construct", 0), 0u);
  }
}

TEST(CongestedPaSolver, RejectsMismatchedValues) {
  Rng rng(8);
  const Graph g = make_path(4);
  PartCollection pc;
  pc.parts = {{0, 1}};
  EXPECT_THROW(
      solve_congested_pa(g, pc, {}, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

class CongestedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, int>> {};

TEST_P(CongestedSweep, CorrectAcrossFamiliesAndCongestion) {
  const auto [family, rho, seed] = GetParam();
  Rng rng(seed * 131 + 7);
  Graph g;
  switch (family) {
    case 0: g = make_grid(5, 5); break;
    case 1: g = make_random_regular(24, 4, rng); break;
    default: g = make_balanced_binary_tree(31); break;
  }
  const Instance inst =
      make_instance(g, stacked_voronoi_instance(g, 3, rho, rng), rng);
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, inst.pc, inst.values, AggregationMonoid::sum(), rng);
  EXPECT_LE(outcome.congestion, rho);
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], inst.expected_sum[i], 1e-9)
        << "family=" << family << " rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CongestedSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace dls
