// The span tracer and metrics registry (src/obs/): primitive semantics
// (nesting, clocks, caps, absorption, ambient scoping), the structural
// contract of traces produced by real runs — clean AND faulted — and the
// root-span-equals-ledger identity that anchors every span interval to the
// round accounting the paper's bounds are stated in.
#include <gtest/gtest.h>

#include <string>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/ledger_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "resilience/solve_supervisor.hpp"
#include "sim/fault_injection.hpp"
#include "trace_test_util.hpp"

#include "golden_scenario.hpp"

namespace dls {
namespace {

using trace_test::expect_well_formed;
using trace_test::find_span;

// --- Tracer primitives -----------------------------------------------------

TEST(Tracer, SpansNestAndCloseInLifoOrder) {
  Tracer tracer;
  {
    ScopedSpan a(&tracer, "a", SpanKind::kOther);
    EXPECT_EQ(tracer.open_depth(), 1u);
    {
      ScopedSpan b(&tracer, "b", SpanKind::kPhase);
      b.counter("k", 7);
      EXPECT_EQ(tracer.open_depth(), 2u);
    }
    ScopedSpan c(&tracer, "c", SpanKind::kPhase);
    EXPECT_EQ(tracer.open_depth(), 2u);
  }
  ASSERT_EQ(tracer.spans().size(), 3u);
  const auto& spans = tracer.spans();
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  ASSERT_EQ(spans[1].counters.size(), 1u);
  EXPECT_EQ(spans[1].counters[0].first, "k");
  EXPECT_EQ(spans[1].counters[0].second, 7u);
  EXPECT_EQ(spans[2].name, "c");
  EXPECT_EQ(spans[2].parent, 0u);  // sibling of b, not child
  expect_well_formed(tracer);
}

TEST(Tracer, NullTracerSpansAreInertNoOps) {
  ScopedSpan span(nullptr, "ghost", SpanKind::kOther);
  span.counter("k", 1);
  span.note("ignored");
  span.finish();
  EXPECT_FALSE(span.active());
}

TEST(Tracer, SpanCursorsSnapshotTheCurrentClock) {
  RoundLedger ledger;
  Tracer tracer;
  ClockScope clock(&tracer, ledger_clock(ledger));
  ledger.charge_local(5, "warmup");
  std::uint32_t id;
  {
    ScopedSpan span(&tracer, "phase", SpanKind::kPhase);
    id = tracer.current();
    ledger.charge_local(10, "inside");
    ledger.charge_global(3, "inside-global");
  }
  const SpanRecord& s = tracer.spans()[id];
  EXPECT_EQ(s.begin.local_rounds, 5u);
  EXPECT_EQ(s.end.local_rounds, 15u);
  EXPECT_EQ(s.begin.global_rounds, 0u);
  EXPECT_EQ(s.end.global_rounds, 3u);
}

TEST(Tracer, ReenteringTheSameLedgerSharesOneTimeline) {
  RoundLedger ledger;
  Tracer tracer;
  ClockScope outer(&tracer, ledger_clock(ledger));
  const std::uint32_t outer_id = tracer.current_clock();
  {
    ClockScope inner(&tracer, ledger_clock(ledger));
    EXPECT_EQ(tracer.current_clock(), outer_id);  // deduped, no fork
  }
  RoundLedger other;
  ClockScope forked(&tracer, ledger_clock(other));
  EXPECT_NE(tracer.current_clock(), outer_id);
}

TEST(Tracer, DropsPastTheCapAreCountedNeverSilent) {
  TracerOptions options;
  options.max_spans = 2;
  Tracer tracer({}, options);
  {
    ScopedSpan a(&tracer, "a", SpanKind::kOther);
    ScopedSpan b(&tracer, "b", SpanKind::kOther);
    ScopedSpan c(&tracer, "c", SpanKind::kOther);  // over budget: dropped
    EXPECT_FALSE(c.active());
  }
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  // The fingerprint surfaces the drop.
  EXPECT_NE(trace_fingerprint(tracer).find("dropped=1"), std::string::npos);
}

TEST(Tracer, DepthCapDropsDeepSpans) {
  TracerOptions options;
  options.max_depth = 2;
  Tracer tracer({}, options);
  {
    ScopedSpan a(&tracer, "a", SpanKind::kOther);
    ScopedSpan b(&tracer, "b", SpanKind::kOther);
    ScopedSpan c(&tracer, "c", SpanKind::kOther);
    EXPECT_FALSE(c.active());
  }
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(Tracer, AnnotateWithoutOpenSpanLandsInOrphanNotes) {
  Tracer tracer;
  tracer.annotate_current("homeless");
  ASSERT_EQ(tracer.orphan_notes().size(), 1u);
  EXPECT_EQ(tracer.orphan_notes()[0], "homeless");
  {
    ScopedSpan span(&tracer, "host", SpanKind::kOther);
    tracer.annotate_current("housed");
  }
  ASSERT_EQ(tracer.spans()[0].notes.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].notes[0], "housed");
  EXPECT_EQ(tracer.orphan_notes().size(), 1u);
}

TEST(Tracer, AbsorbReparentsUnderTheCurrentSpanInOrder) {
  RoundLedger child_ledger;
  Tracer child_a;
  {
    ClockScope clock(&child_a, ledger_clock(child_ledger));
    ScopedSpan root(&child_a, "slot-a", SpanKind::kScenario);
    ScopedSpan inner(&child_a, "work", SpanKind::kPhase);
  }
  Tracer child_b;
  {
    ScopedSpan root(&child_b, "slot-b", SpanKind::kScenario);
  }

  Tracer parent;
  {
    ScopedSpan batch(&parent, "batch", SpanKind::kSession);
    parent.absorb(child_a);
    parent.absorb(child_b);
  }
  ASSERT_EQ(parent.spans().size(), 4u);
  const auto& spans = parent.spans();
  EXPECT_EQ(spans[0].name, "batch");
  EXPECT_EQ(spans[1].name, "slot-a");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "work");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].name, "slot-b");
  EXPECT_EQ(spans[3].parent, 0u);
  // The child's clock arrived in the parent's registry; its source is kept
  // for grouping but its reader is detached (the ledger may be gone).
  EXPECT_GE(parent.num_clocks(), 2u);
  expect_well_formed(parent);
}

TEST(Tracer, TraceScopeInstallsSuppressesAndRestores) {
  EXPECT_EQ(Tracer::ambient(), nullptr);
  Tracer tracer;
  {
    TraceScope install(&tracer);
    EXPECT_EQ(Tracer::ambient(), &tracer);
    {
      TraceScope suppress(nullptr);
      EXPECT_EQ(Tracer::ambient(), nullptr);
    }
    EXPECT_EQ(Tracer::ambient(), &tracer);
  }
  EXPECT_EQ(Tracer::ambient(), nullptr);
}

// --- Real runs: structural contract and the root-span/ledger identity -----

TEST(TracedRuns, CleanGoldenRunIsWellFormedAndMatchesLedger) {
  for (const char* family : golden::kFamilies) {
    Tracer tracer;
    CongestedPaOutcome outcome;
    {
      TraceScope scope(&tracer);
      outcome = golden::run_golden_case(family, PaModel::kSupportedCongest);
    }
    expect_well_formed(tracer);
    const SpanRecord* root = find_span(tracer, "pa/congested-solve");
    ASSERT_NE(root, nullptr) << family;
    EXPECT_EQ(root->parent, kNoSpan) << family;
    // The root span's round interval IS the ledger: it opens before the
    // first charge and closes after the last one.
    EXPECT_EQ(root->begin.local_rounds, 0u);
    EXPECT_EQ(root->begin.messages, 0u);
    EXPECT_EQ(root->end.local_rounds, outcome.ledger.total_local()) << family;
    EXPECT_EQ(root->end.global_rounds, outcome.ledger.total_global()) << family;
    EXPECT_EQ(root->end.messages, outcome.ledger.total_messages()) << family;
  }
}

TEST(TracedRuns, FaultedRunIsWellFormedAndMatchesLedger) {
  const Graph g = make_grid(6, 6);
  Rng inst_rng(42);
  const PartCollection pc = stacked_voronoi_instance(g, 3, 2, inst_rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  FaultConfig config;
  config.drop_rate = 0.25;
  config.duplicate_rate = 0.1;
  FaultPlan plan(/*seed=*/9, config);
  CongestedPaOptions options;
  options.faults = &plan;

  Tracer tracer;
  CongestedPaOutcome outcome;
  {
    TraceScope scope(&tracer);
    Rng rng(1001);
    outcome = solve_congested_pa(g, pc, values, AggregationMonoid::sum(), rng,
                                 options);
  }
  ASSERT_FALSE(plan.injected().empty()) << "fault mix injected nothing";
  expect_well_formed(tracer);
  const SpanRecord* root = find_span(tracer, "pa/congested-solve");
  ASSERT_NE(root, nullptr);
  // Retransmissions and duplicates are all charged inside the root span, so
  // the identity holds under faults exactly as it does clean.
  EXPECT_EQ(root->end.local_rounds, outcome.ledger.total_local());
  EXPECT_EQ(root->end.messages, outcome.ledger.total_messages());
}

TEST(TracedRuns, RecoveryLadderAnnotatesTheSupervisorSpan) {
  const Graph g = make_grid(6, 6);
  Rng inst_rng(7);
  const PartCollection pc = stacked_voronoi_instance(g, 3, 2, inst_rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  // Permanently lossy primary with a tiny budget: the ladder must walk
  // retry -> rebuild -> degrade and finish on the baseline oracle.
  FaultConfig config;
  config.drop_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  config.round_limit = 64;
  FaultPlan plan(/*seed=*/77, config);
  Rng oracle_rng(1001);
  ShortcutPaOracle primary(g, oracle_rng);
  primary.set_fault_plan(&plan);
  SupervisorConfig sup_config;
  sup_config.mode = SupervisorMode::kDegrade;
  sup_config.retry_budget = 1;
  sup_config.rebuild_budget = 1;
  SupervisedPaOracle supervised(primary, sup_config);

  Tracer tracer;
  {
    TraceScope scope(&tracer);
    const std::vector<double> results =
        supervised.aggregate_once(pc, values, AggregationMonoid::sum());
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      EXPECT_EQ(results[i], static_cast<double>(pc.parts[i].size()));
    }
  }
  EXPECT_TRUE(supervised.degraded());
  expect_well_formed(tracer);
  const SpanRecord* ladder = find_span(tracer, "supervisor/measure");
  ASSERT_NE(ladder, nullptr);
  EXPECT_EQ(ladder->kind, SpanKind::kRecovery);
  bool saw_retry = false, saw_degrade = false;
  for (const std::string& note : ladder->notes) {
    if (note.rfind("recovery: retry", 0) == 0) saw_retry = true;
    if (note.rfind("recovery: degrade", 0) == 0) saw_degrade = true;
  }
  EXPECT_TRUE(saw_retry) << "retry rung left no annotation";
  EXPECT_TRUE(saw_degrade) << "degrade rung left no annotation";
}

TEST(TracedRuns, SolverSolveSpanMatchesOracleLedger) {
  Rng rng(2024);
  const Graph g = make_weighted_grid(6, 6, rng);
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-6;
  options.base_size = 16;
  DistributedLaplacianSolver solver(oracle, rng, options);
  Vec b(g.num_nodes());
  Rng rhs_rng(5);
  for (double& v : b) v = rhs_rng.next_double() * 2 - 1;
  project_mean_zero(b);

  Tracer tracer;
  LaplacianSolveReport report;
  {
    TraceScope scope(&tracer);
    report = solver.solve(b);
  }
  EXPECT_TRUE(report.converged);
  expect_well_formed(tracer);
  const SpanRecord* solve = find_span(tracer, "solver/solve");
  ASSERT_NE(solve, nullptr);
  // One traced solve on a fresh solver: the solve span's interval is exactly
  // the oracle ledger's lifetime totals.
  EXPECT_EQ(solve->begin.local_rounds, 0u);
  EXPECT_EQ(solve->end.local_rounds, oracle.ledger().total_local());
  EXPECT_EQ(solve->end.global_rounds, oracle.ledger().total_global());
  EXPECT_EQ(solve->end.messages, oracle.ledger().total_messages());
  EXPECT_NE(find_span(tracer, "solver/outer-iteration"), nullptr);
  EXPECT_NE(find_span(tracer, "pa/call"), nullptr);
}

// --- Exporters -------------------------------------------------------------

TEST(TraceExport, ChromeJsonHasBalancedBeginEndPairs) {
  Tracer tracer;
  {
    TraceScope scope(&tracer);
    golden::run_golden_case("grid", PaModel::kSupportedCongest);
  }
  const std::string json = chrome_trace_json(tracer);
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"B\"", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = json.find("\"ph\": \"E\"", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(begins, tracer.spans().size());
  EXPECT_EQ(begins, ends);
}

TEST(TraceExport, FingerprintIsStableAcrossIdenticalRuns) {
  const auto run = [] {
    Tracer tracer;
    {
      TraceScope scope(&tracer);
      golden::run_golden_case("tree", PaModel::kCongest);
    }
    return trace_fingerprint(tracer);
  };
  EXPECT_EQ(run(), run());
}

// --- Metrics registry ------------------------------------------------------

TEST(Metrics, CountersAccumulateAndReset) {
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("test.counter");
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&registry.counter("test.counter"), &c);  // stable reference
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("test.hist", {1, 4, 16});
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(100);  // overflow bucket
  EXPECT_EQ(h.cumulative(0), 2u);   // <= 1
  EXPECT_EQ(h.cumulative(1), 2u);   // <= 4
  EXPECT_EQ(h.cumulative(2), 3u);   // <= 16
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.total_sum(), 106u);
}

TEST(Metrics, ExportTextIsNameSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("z.last").increment(3);
  registry.counter("a.first").increment(1);
  registry.histogram("m.hist", {2}).observe(1);
  const std::string text = registry.export_text();
  // Counters print name-sorted (registration order must not leak), and the
  // whole dump is deterministic.
  const std::size_t a = text.find("a.first 1");
  const std::size_t m = text.find("m.hist");
  const std::size_t z = text.find("z.last 3");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(m, std::string::npos) << text;
  ASSERT_NE(z, std::string::npos) << text;
  EXPECT_LT(a, z);
  EXPECT_EQ(text, registry.export_text());
}

TEST(Metrics, Pow2BoundsShape) {
  const auto bounds = MetricsRegistry::pow2_bounds(4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 1u);
  EXPECT_EQ(bounds[3], 8u);
}

TEST(Metrics, GlobalRegistryTicksOnRecoveryEvents) {
  MetricCounter& events = MetricsRegistry::global().counter("recovery.events");
  const std::uint64_t before = events.value();
  RoundLedger ledger;
  RecoveryEvent event;
  event.action = RecoveryAction::kRetry;
  ledger.record_recovery(event);
  EXPECT_EQ(events.value(), before + 1);
}

}  // namespace
}  // namespace dls
