#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/round_ledger.hpp"
#include "sim/sync_network.hpp"

namespace dls {
namespace {

TEST(SyncNetwork, DeliversSingleWordMessage) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  net.send({0, 1, 0, 42, 3.5, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 42u);
  EXPECT_DOUBLE_EQ(net.inbox(1)[0].payload, 3.5);
  EXPECT_EQ(net.rounds(), 1u);
}

TEST(SyncNetwork, EnforcesPerEdgeDirectionCapacity) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  EXPECT_THROW(net.send({0, 1, 0, 2, 0.0, 1}), std::invalid_argument);
}

TEST(SyncNetwork, OppositeDirectionsIndependent) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({1, 0, 0, 2, 0.0, 1});  // other direction, same round: allowed
  net.step();
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST(SyncNetwork, ParallelEdgesCarrySeparateMessages) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({0, 1, 1, 2, 0.0, 1});
  net.step();
  EXPECT_EQ(net.inbox(1).size(), 2u);
}

TEST(SyncNetwork, MultiWordMessageOccupiesEdge) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 3});  // 3 words -> 3 rounds
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_THROW(net.send({0, 1, 0, 9, 0.0, 1}), std::invalid_argument);
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.rounds(), 3u);
}

TEST(SyncNetwork, ValidatesEndpoints) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  // Edge 0 connects nodes 0 and 1; claiming it reaches node 2 is an error.
  EXPECT_THROW(net.send({0, 2, 0, 1, 0.0, 1}), std::invalid_argument);
}

TEST(SyncNetwork, CountsMessages) {
  const Graph g = make_cycle(4);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({2, 3, 2, 1, 0.0, 1});
  net.step();
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(RoundLedger, AccumulatesAndLabels) {
  RoundLedger ledger;
  ledger.charge_local(5, "phase-a");
  ledger.charge_global(3, "phase-b");
  ledger.charge_local(2, "phase-c");
  EXPECT_EQ(ledger.total_local(), 7u);
  EXPECT_EQ(ledger.total_global(), 3u);
  // Hybrid: sequential phases, each costing max(local, global).
  EXPECT_EQ(ledger.total_hybrid(), 5u + 3u + 2u);
  EXPECT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].label, "phase-a");
}

TEST(RoundLedger, AbsorbPrefixesLabels) {
  RoundLedger inner, outer;
  inner.charge_local(4, "x");
  outer.absorb(inner, "oracle");
  EXPECT_EQ(outer.total_local(), 4u);
  EXPECT_EQ(outer.entries()[0].label, "oracle/x");
}

TEST(RoundLedger, ClearResets) {
  RoundLedger ledger;
  ledger.charge_local(4, "x");
  ledger.clear();
  EXPECT_EQ(ledger.total_local(), 0u);
  EXPECT_TRUE(ledger.entries().empty());
}

}  // namespace
}  // namespace dls
