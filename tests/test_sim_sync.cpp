#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "sim/network_metrics.hpp"
#include "sim/round_ledger.hpp"
#include "sim/sim_batch.hpp"
#include "sim/sync_network.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

TEST(SyncNetwork, DeliversSingleWordMessage) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  net.send({0, 1, 0, 42, 3.5, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 42u);
  EXPECT_DOUBLE_EQ(net.inbox(1)[0].payload, 3.5);
  EXPECT_EQ(net.rounds(), 1u);
}

TEST(SyncNetwork, EnforcesPerEdgeDirectionCapacity) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  EXPECT_THROW(net.send({0, 1, 0, 2, 0.0, 1}), std::invalid_argument);
}

TEST(SyncNetwork, OppositeDirectionsIndependent) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({1, 0, 0, 2, 0.0, 1});  // other direction, same round: allowed
  net.step();
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST(SyncNetwork, ParallelEdgesCarrySeparateMessages) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({0, 1, 1, 2, 0.0, 1});
  net.step();
  EXPECT_EQ(net.inbox(1).size(), 2u);
}

TEST(SyncNetwork, MultiWordMessageOccupiesEdge) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 3});  // 3 words -> 3 rounds
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_THROW(net.send({0, 1, 0, 9, 0.0, 1}), std::invalid_argument);
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.rounds(), 3u);
}

TEST(SyncNetwork, ValidatesEndpoints) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  // Edge 0 connects nodes 0 and 1; claiming it reaches node 2 is an error.
  EXPECT_THROW(net.send({0, 2, 0, 1, 0.0, 1}), std::invalid_argument);
}

TEST(SyncNetwork, RejectsSelfLoopMessage) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  // from == to would alias both directions of the edge onto one busy slot.
  EXPECT_THROW(net.send({0, 0, 0, 1, 0.0, 1}), std::invalid_argument);
}

TEST(SyncNetwork, MultiWordDeliversExactlyAtSendRoundPlusWords) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 7, 1.0, 2});  // queued at round 0 -> delivered at round 2
  net.step();
  EXPECT_TRUE(net.inbox(1).empty());
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 7u);
  net.step();  // a later round without deliveries reads as empty again
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SyncNetwork, MultiWordBlocksSlotForExactlyWordsRounds) {
  const Graph g = make_path(2);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 3});  // occupies rounds 0..2
  EXPECT_THROW(net.send({0, 1, 0, 2, 0.0, 1}), std::invalid_argument);
  net.step();
  EXPECT_THROW(net.send({0, 1, 0, 3, 0.0, 1}), std::invalid_argument);
  net.step();
  EXPECT_THROW(net.send({0, 1, 0, 4, 0.0, 1}), std::invalid_argument);
  net.step();  // round 3: slot is free again
  net.send({0, 1, 0, 5, 0.0, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 5u);
}

TEST(SyncNetwork, PendingMultiWordSurvivesInterveningDeliveries) {
  // Node 1 receives single-word traffic every round; the pending 3-word
  // message must not be dropped by the per-round inbox turnover.
  const Graph g = make_path(3);  // edges 0:(0,1) 1:(1,2)
  SyncNetwork net(g);
  net.send({0, 1, 0, 100, 0.0, 3});
  net.send({2, 1, 1, 200, 0.0, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 200u);
  net.send({2, 1, 1, 201, 0.0, 1});
  net.step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 201u);
  net.send({2, 1, 1, 202, 0.0, 1});
  net.step();  // round 3: multi-word arrives alongside this round's word
  ASSERT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.inbox(1)[0].tag, 100u);  // queued first, delivered first
  EXPECT_EQ(net.inbox(1)[1].tag, 202u);
}

TEST(SyncNetwork, RecordsSendsIntoAttachedMetrics) {
  const Graph g = make_path(3);
  SyncNetwork net(g);
  NetworkMetrics metrics;
  metrics.reset(2 * g.num_edges());
  net.attach_metrics(&metrics);
  metrics.begin_phase("traffic");
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({2, 1, 1, 2, 0.0, 1});
  net.step();
  net.send({0, 1, 0, 3, 0.0, 1});
  net.step();
  metrics.end_phase(net.rounds());
  ASSERT_EQ(metrics.phases().size(), 1u);
  const auto& phase = metrics.phases()[0];
  EXPECT_EQ(phase.rounds, 2u);
  EXPECT_EQ(phase.congestion.messages, 3u);
  EXPECT_EQ(phase.congestion.peak_slot_messages, 2u);  // slot of edge 0, 0->1
  EXPECT_EQ(phase.congestion.peak_round_messages, 2u);
}

TEST(NetworkMetrics, PhaseBoundariesForgetSlotCounts) {
  NetworkMetrics metrics;
  metrics.reset(4);
  metrics.begin_phase("up");
  metrics.record_send(0, 1);
  metrics.record_send(0, 1);
  metrics.record_send(2, 2);
  metrics.end_phase(2);
  metrics.begin_phase("down");
  metrics.record_send(0, 3);  // same slot: count restarts at the boundary
  metrics.end_phase(1);
  ASSERT_EQ(metrics.phases().size(), 2u);
  EXPECT_EQ(metrics.phases()[0].congestion.messages, 3u);
  EXPECT_EQ(metrics.phases()[0].congestion.peak_slot_messages, 2u);
  EXPECT_EQ(metrics.phases()[0].congestion.peak_round_messages, 2u);
  EXPECT_EQ(metrics.phases()[1].congestion.messages, 1u);
  EXPECT_EQ(metrics.phases()[1].congestion.peak_slot_messages, 1u);
  const PhaseCongestion total = metrics.totals();
  EXPECT_EQ(total.messages, 4u);
  EXPECT_EQ(total.peak_slot_messages, 2u);
  // Histogram spans both phases: rounds 1..3 carried 2, 1, 1 messages.
  ASSERT_EQ(metrics.round_histogram().size(), 4u);
  EXPECT_EQ(metrics.round_histogram()[1], 2u);
  EXPECT_EQ(metrics.round_histogram()[2], 1u);
  EXPECT_EQ(metrics.round_histogram()[3], 1u);
}

TEST(SyncNetwork, CountsMessages) {
  const Graph g = make_cycle(4);
  SyncNetwork net(g);
  net.send({0, 1, 0, 1, 0.0, 1});
  net.send({2, 3, 2, 1, 0.0, 1});
  net.step();
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(RoundLedger, AccumulatesAndLabels) {
  RoundLedger ledger;
  ledger.charge_local(5, "phase-a");
  ledger.charge_global(3, "phase-b");
  ledger.charge_local(2, "phase-c");
  EXPECT_EQ(ledger.total_local(), 7u);
  EXPECT_EQ(ledger.total_global(), 3u);
  // Hybrid: sequential phases, each costing max(local, global).
  EXPECT_EQ(ledger.total_hybrid(), 5u + 3u + 2u);
  EXPECT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[0].label, "phase-a");
}

TEST(RoundLedger, AbsorbPrefixesLabels) {
  RoundLedger inner, outer;
  inner.charge_local(4, "x");
  outer.absorb(inner, "oracle");
  EXPECT_EQ(outer.total_local(), 4u);
  EXPECT_EQ(outer.entries()[0].label, "oracle/x");
}

TEST(RoundLedger, CarriesCongestionProfiles) {
  RoundLedger ledger;
  PhaseCongestion up{30, 5, 12};
  PhaseCongestion down{20, 3, 9};
  ledger.charge_local(4, "up", up);
  ledger.charge_local(2, "down", down);
  ledger.charge_local(1, "charge-only");  // no profile: all-zero congestion
  EXPECT_EQ(ledger.peak_congestion(), 5u);
  EXPECT_EQ(ledger.total_messages(), 50u);
  EXPECT_EQ(ledger.entries()[0].congestion.peak_round_messages, 12u);
  EXPECT_EQ(ledger.entries()[2].congestion.messages, 0u);
  // absorb keeps the profiles.
  RoundLedger outer;
  outer.absorb(ledger, "oracle");
  EXPECT_EQ(outer.peak_congestion(), 5u);
  EXPECT_EQ(outer.total_messages(), 50u);
}

TEST(RoundLedger, ClearResets) {
  RoundLedger ledger;
  ledger.charge_local(4, "x");
  ledger.clear();
  EXPECT_EQ(ledger.total_local(), 0u);
  EXPECT_TRUE(ledger.entries().empty());
}

// --- SimBatch: the deterministic sharded runtime --------------------------

TEST(SimBatch, ScenarioSeedsAreStableAndDistinct) {
  // Pure function of (root, index)...
  EXPECT_EQ(derive_scenario_seed(7, 0), derive_scenario_seed(7, 0));
  // ...different per index and per root, over a decent window.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 512; ++i) seeds.insert(derive_scenario_seed(7, i));
  for (std::uint64_t i = 0; i < 512; ++i) seeds.insert(derive_scenario_seed(8, i));
  EXPECT_EQ(seeds.size(), 1024u);
  // Scenario 0 must not alias the root stream itself.
  EXPECT_NE(derive_scenario_seed(7, 0), 7u);
}

namespace {
/// A batch whose scenarios actually push messages through a SyncNetwork, so
/// ledgers carry real round and congestion numbers worth comparing.
SimBatch make_probe_batch() {
  SimBatch batch(/*root_seed=*/0xbadc0deULL);
  for (int s = 0; s < 12; ++s) {
    batch.add("probe" + std::to_string(s), [](Rng& rng, SimOutcome& out) {
      const Graph g = make_path(4 + rng.next_below(4));
      SyncNetwork net(g);
      NetworkMetrics metrics;
      metrics.reset(2 * g.num_edges());
      net.attach_metrics(&metrics);
      metrics.begin_phase("probe");
      const std::uint64_t steps = 1 + rng.next_below(3);
      for (std::uint64_t r = 0; r < steps; ++r) {
        net.send({0, 1, 0, r, rng.next_double(), 1});
        net.step();
      }
      metrics.end_phase(net.rounds());
      out.ledger.charge_local(net.rounds(), "probe", metrics.totals());
      out.results = {static_cast<double>(net.messages_sent())};
    });
  }
  return batch;
}
}  // namespace

TEST(SimBatch, OutcomesAreBitIdenticalAcrossThreadCounts) {
  SimBatch serial = make_probe_batch();
  serial.run(nullptr);
  ThreadPool pool(4);
  SimBatch threaded = make_probe_batch();
  threaded.run(&pool);
  ASSERT_EQ(serial.outcomes().size(), threaded.outcomes().size());
  for (std::size_t i = 0; i < serial.outcomes().size(); ++i) {
    const SimOutcome& a = serial.outcomes()[i];
    const SimOutcome& b = threaded.outcomes()[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.results, b.results);  // exact, not approximate
    EXPECT_TRUE(a.ledger == b.ledger) << "ledger mismatch in scenario " << i;
  }
  EXPECT_TRUE(serial.merged_ledger() == threaded.merged_ledger());
  EXPECT_TRUE(serial.merged_congestion() == threaded.merged_congestion());
}

TEST(SimBatch, MergedLedgerFoldsInIndexOrderWithLabelPrefixes) {
  SimBatch batch(1);
  batch.add("a", [](Rng&, SimOutcome& out) { out.ledger.charge_local(2, "x"); });
  batch.add("b", [](Rng&, SimOutcome& out) { out.ledger.charge_global(3, "y"); });
  batch.run();
  const RoundLedger merged = batch.merged_ledger();
  ASSERT_EQ(merged.entries().size(), 2u);
  EXPECT_EQ(merged.entries()[0].label, "a/x");
  EXPECT_EQ(merged.entries()[1].label, "b/y");
  EXPECT_EQ(merged.total_local(), 2u);
  EXPECT_EQ(merged.total_global(), 3u);
}

TEST(SimBatch, GuardsAgainstMisuse) {
  SimBatch batch(1);
  EXPECT_THROW(batch.outcomes(), std::invalid_argument);  // before run
  batch.add("a", [](Rng&, SimOutcome&) {});
  batch.run();
  EXPECT_THROW(batch.add("b", [](Rng&, SimOutcome&) {}), std::invalid_argument);
  EXPECT_THROW(batch.run(), std::invalid_argument);  // run is once-only
}

}  // namespace
}  // namespace dls
