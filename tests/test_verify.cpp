#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/laplacian.hpp"
#include "resilience/solve_supervisor.hpp"
#include "sim/fault_injection.hpp"
#include "verify/aggregation_checksum.hpp"
#include "verify/certified_solve.hpp"

namespace dls {
namespace {

// --- AggregationChecksum: order/duplicate invariance, bit sensitivity ------

TEST(AggregationChecksum, OrderInvariantUnderAddAndMerge) {
  AggregationChecksum forward;
  AggregationChecksum backward;
  for (std::uint64_t i = 0; i < 16; ++i) {
    forward.add(i, 0.25 * static_cast<double>(i) - 1.0);
  }
  for (std::uint64_t i = 16; i-- > 0;) {
    backward.add(i, 0.25 * static_cast<double>(i) - 1.0);
  }
  EXPECT_EQ(forward.digest(), backward.digest());
  EXPECT_TRUE(forward.matches(backward));

  // Splitting the contributions across accumulators and merging (the
  // convergecast combine) yields the same digest as one flat fold.
  AggregationChecksum left, right;
  for (std::uint64_t i = 0; i < 16; ++i) {
    (i % 3 == 0 ? left : right).add(i, 0.25 * static_cast<double>(i) - 1.0);
  }
  left.merge(right);
  EXPECT_EQ(left.digest(), forward.digest());
  EXPECT_EQ(left.count(), forward.count());
}

TEST(AggregationChecksum, SensitiveToValueBitsAndSubjects) {
  AggregationChecksum a, b;
  a.add(0, 1.5);
  // A single low mantissa bit flip — invisible to any tolerance-based check
  // of the aggregate — must change the digest.
  b.add(0, corrupt_payload(1.5, 1));
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_FALSE(a.matches(b));

  // The same multiset of values on swapped subjects is a different set of
  // contributions.
  AggregationChecksum c, d;
  c.add(0, 1.0);
  c.add(1, 2.0);
  d.add(0, 2.0);
  d.add(1, 1.0);
  EXPECT_NE(c.digest(), d.digest());
}

TEST(AggregationChecksum, CountGuardsTheEmptySet) {
  AggregationChecksum empty;
  AggregationChecksum one;
  one.add(0, 0.0);
  EXPECT_EQ(empty.count(), 0u);
  // value_digest(0, 0.0) could in principle be 0; the count makes an empty
  // accumulator distinguishable regardless.
  EXPECT_FALSE(empty == one);
}

TEST(VectorChecksum, CoordinatesAreSubjects) {
  const Vec x{1.0, -2.0, 3.5, 0.0};
  Vec permuted{-2.0, 1.0, 3.5, 0.0};
  Vec perturbed = x;
  perturbed[2] = corrupt_payload(x[2], 0x10);
  EXPECT_EQ(vector_checksum(x), vector_checksum(x));
  EXPECT_NE(vector_checksum(x), vector_checksum(permuted));
  EXPECT_NE(vector_checksum(x), vector_checksum(perturbed));
}

// --- CertifiedSolve --------------------------------------------------------

Vec random_rhs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

LaplacianSolverOptions quick_options(double tol = 1e-6) {
  LaplacianSolverOptions options;
  options.tolerance = tol;
  options.base_size = 40;
  return options;
}

Vec reference_solve(const Graph& g, const Vec& b, std::uint64_t seed) {
  Rng rng(seed);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  return solver.solve(b).x;
}

double residual_of(const Graph& g, const Vec& x, const Vec& b) {
  Vec rhs = b;
  project_mean_zero(rhs);
  Vec r = sub(rhs, laplacian_apply(g, x));
  project_mean_zero(r);
  return norm2(r) / norm2(rhs);
}

// With no delivery plan and charging off, the wrapper is transparent: the
// certified x is bit-identical to the unwrapped solver's, the certificate
// accepts, and no verify/* cost appears on the ledger.
TEST(CertifiedSolve, CleanSolveAcceptsBitIdentical) {
  const Graph g = make_grid(6, 6);
  const Vec b = random_rhs(g.num_nodes(), 99);
  const Vec x_ref = reference_solve(g, b, 42);

  Rng rng(42);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  CertifiedSolveOptions options;
  options.charge_certificate = false;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_TRUE(report.certificate.accepted);
  EXPECT_TRUE(report.certificate.checksum_ok);
  EXPECT_TRUE(report.certificate.residual_ok);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_TRUE(report.rejected.empty());
  EXPECT_EQ(report.certificate.delivery_rounds, 0u);
  ASSERT_EQ(report.solve.x.size(), x_ref.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_EQ(report.solve.x[i], x_ref[i]) << "coordinate " << i;
  }
  EXPECT_EQ(certified.certificates_checked(), 1u);
  EXPECT_EQ(certified.certificates_failed(), 0u);
  for (const LedgerEntry& e : oracle.ledger().entries()) {
    EXPECT_EQ(e.label.rfind("verify/", 0), std::string::npos) << e.label;
  }
}

// A replayed corruption on the delivery hop without integrity arrives
// silently — and the solution checksum catches it even though the low-bit
// perturbation hides under the residual tolerance. The re-solve re-delivers
// on a fresh epoch (clean in this replay), so the second attempt certifies.
TEST(CertifiedSolve, SilentDeliveryCorruptionIsCaughtAndResolved) {
  const Graph g = make_grid(6, 6);
  const Vec b = random_rhs(g.num_nodes(), 99);

  // Epoch 1 = first delivery attempt: corrupt three coordinates' words.
  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/3, 0x8},
          {FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/7, 0x20},
          {FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/11,
           0x4}});
  Rng rng(42);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  CertifiedSolveOptions options;
  options.delivery_faults = &plan;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_EQ(report.attempts, 2u);
  ASSERT_EQ(report.rejected.size(), 1u);
  const SolveCertificate& rejected = report.rejected[0];
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.checksum_ok);  // the checksum is the detector here
  EXPECT_EQ(rejected.delivery_corruptions, 3u);
  EXPECT_EQ(rejected.delivery_retransmissions, 0u);  // silent, not detected
  EXPECT_TRUE(report.certificate.accepted);
  EXPECT_TRUE(report.certificate.checksum_ok);
  EXPECT_LE(residual_of(g, report.solve.x, b), report.certificate.tolerance);
  EXPECT_EQ(certified.certificates_checked(), 2u);
  EXPECT_EQ(certified.certificates_failed(), 1u);

  // The detection and the certificate's communication are accounted: a
  // kCertificateResolve recovery event plus verify/* ledger charges.
  bool saw_resolve_event = false;
  for (const RecoveryEvent& e : oracle.ledger().recovery_events()) {
    saw_resolve_event |= e.action == RecoveryAction::kCertificateResolve;
  }
  EXPECT_TRUE(saw_resolve_event);
  bool charged_delivery = false, charged_residual = false,
       charged_checksum = false;
  for (const LedgerEntry& e : oracle.ledger().entries()) {
    charged_delivery |= e.label == "verify/delivery";
    charged_residual |= e.label == "verify/residual-certificate";
    charged_checksum |= e.label == "verify/solution-checksum";
  }
  EXPECT_TRUE(charged_delivery);
  EXPECT_TRUE(charged_residual);
  EXPECT_TRUE(charged_checksum);
}

// The same corrupting hop with delivery integrity on: every corrupted word
// fails its checksum and is retransmitted, so the client receives x
// bit-exactly on the first attempt — paid in rounds and checksum words.
TEST(CertifiedSolve, DeliveryIntegrityMakesDeliveryBitExact) {
  const Graph g = make_grid(6, 6);
  const Vec b = random_rhs(g.num_nodes(), 99);
  const Vec x_ref = reference_solve(g, b, 42);

  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/3, 0x8},
          {FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/7,
           0x20}});
  Rng rng(42);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  CertifiedSolveOptions options;
  options.delivery_faults = &plan;
  options.delivery_integrity = true;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_TRUE(report.certificate.accepted);
  EXPECT_EQ(report.certificate.delivery_corruptions, 2u);
  EXPECT_EQ(report.certificate.delivery_retransmissions, 2u);
  // One checksum word per transmission: n first sends + 2 retransmissions.
  EXPECT_EQ(report.certificate.delivery_checksum_words, g.num_nodes() + 2u);
  // Slowest coordinate took 2 transmissions; integrity doubles slot
  // occupancy: 2 transmissions x 2 rounds.
  EXPECT_EQ(report.certificate.delivery_rounds, 4u);
  ASSERT_EQ(report.solve.x.size(), x_ref.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_EQ(report.solve.x[i], x_ref[i]) << "coordinate " << i;
  }
}

// Corruption on every delivered word of every attempt: the resolve budget
// runs out and the wrapper refuses typed — a DegradedResult with the last
// rejected certificate attached, never a silently wrong vector.
TEST(CertifiedSolve, ExhaustedBudgetRefusesTyped) {
  const Graph g = make_grid(5, 5);
  const Vec b = random_rhs(g.num_nodes(), 7);

  FaultConfig config;
  config.corrupt_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  FaultPlan plan(13, config);
  Rng rng(42);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  CertifiedSolveOptions options;
  options.delivery_faults = &plan;
  options.resolve_budget = 1;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  ASSERT_TRUE(report.degraded.has_value());
  EXPECT_EQ(report.degraded->tier, EscalationTier::kExhausted);
  EXPECT_NE(report.degraded->reason.find("certificate rejected"),
            std::string::npos);
  ASSERT_TRUE(report.solve.degraded.has_value());  // callers branch as usual
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.rejected.size(), 2u);
  EXPECT_FALSE(report.certificate.accepted);
  EXPECT_EQ(certified.certificates_failed(), 2u);

  std::size_t resolves = 0, aborts = 0;
  for (const RecoveryEvent& e : oracle.ledger().recovery_events()) {
    resolves += e.action == RecoveryAction::kCertificateResolve;
    aborts += e.action == RecoveryAction::kAbort;
  }
  EXPECT_EQ(resolves, 2u);
  EXPECT_EQ(aborts, 1u);
}

// Certificate failures wired into the supervisor walk the escalation
// ladder: past certificate_failure_budget the primary is demoted to the
// baseline (sticky), and every failure lands as a typed recovery event on
// the ledger the solver charges.
TEST(CertifiedSolve, SupervisorEscalatesOnRepeatedCertificateFailures) {
  const Graph g = make_grid(5, 5);
  const Vec b = random_rhs(g.num_nodes(), 7);

  FaultConfig config;
  config.corrupt_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  FaultPlan plan(13, config);
  Rng rng(42);
  ShortcutPaOracle primary(g, rng);
  SupervisorConfig sup_config;
  sup_config.certificate_failure_budget = 1;
  SupervisedPaOracle sup(primary, sup_config);
  DistributedLaplacianSolver solver(sup, rng, quick_options());
  CertifiedSolveOptions options;
  options.delivery_faults = &plan;
  options.resolve_budget = 2;
  options.supervisor = &sup;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  ASSERT_TRUE(report.degraded.has_value());
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_EQ(sup.certificate_failures(), 3u);
  EXPECT_TRUE(sup.degraded());  // budget 1 < 3 failures
  EXPECT_EQ(sup.tier(), EscalationTier::kDegrade);
  const RecoveryCounters counters = sup.counters();
  EXPECT_EQ(counters.certificate_resolves, 3u);
  EXPECT_EQ(counters.degradations, 1u);
}

// A single certificate failure within budget only bumps the retry tier —
// the supervisor keeps trusting the primary.
TEST(CertifiedSolve, SupervisorToleratesFailuresWithinBudget) {
  const Graph g = make_grid(5, 5);
  const Vec b = random_rhs(g.num_nodes(), 7);

  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/2,
           0x40}});
  Rng rng(42);
  ShortcutPaOracle primary(g, rng);
  SupervisedPaOracle sup(primary);  // certificate_failure_budget = 1
  DistributedLaplacianSolver solver(sup, rng, quick_options());
  CertifiedSolveOptions options;
  options.delivery_faults = &plan;
  options.supervisor = &sup;
  CertifiedSolve certified(solver, options);
  const CertifiedSolveReport report = certified.solve(b);

  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_TRUE(report.certificate.accepted);
  EXPECT_EQ(sup.certificate_failures(), 1u);
  EXPECT_FALSE(sup.degraded());
  EXPECT_EQ(sup.tier(), EscalationTier::kRetry);
  EXPECT_EQ(sup.counters().certificate_resolves, 1u);
}

TEST(CertifiedSolve, RejectsTooTightSlack) {
  const Graph g = make_path(4);
  Rng rng(1);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  CertifiedSolveOptions options;
  options.tolerance_slack = 0.5;
  EXPECT_THROW(CertifiedSolve(solver, options), std::invalid_argument);
}

}  // namespace
}  // namespace dls
