#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/pa_oracle.hpp"
#include "shortcuts/partition.hpp"

namespace dls {
namespace {

PartCollection two_rows() { return grid_row_partition(2, 4); }

std::vector<std::vector<double>> values_for(const PartCollection& pc, double v) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), v);
  }
  return values;
}

TEST(PaOracle, ShortcutOracleAggregatesAndCharges) {
  const Graph g = make_grid(2, 4);
  Rng rng(1);
  ShortcutPaOracle oracle(g, rng);
  const PartCollection pc = two_rows();
  const auto results =
      oracle.aggregate_once(pc, values_for(pc, 2.0), AggregationMonoid::sum());
  EXPECT_DOUBLE_EQ(results[0], 8.0);
  EXPECT_DOUBLE_EQ(results[1], 8.0);
  EXPECT_GT(oracle.ledger().total_local(), 0u);
  EXPECT_EQ(oracle.ledger().total_global(), 0u);
  EXPECT_EQ(oracle.pa_calls(), 1u);
}

TEST(PaOracle, PreparedInstanceCostIsCachedAndRecharged) {
  const Graph g = make_grid(3, 3);
  Rng rng(2);
  ShortcutPaOracle oracle(g, rng);
  const PartCollection pc = grid_row_partition(3, 3);
  const auto id = oracle.prepare(pc);
  oracle.aggregate(id, values_for(pc, 1.0), AggregationMonoid::sum());
  const auto after_first = oracle.ledger().total_local();
  oracle.aggregate(id, values_for(pc, 1.0), AggregationMonoid::sum());
  const auto after_second = oracle.ledger().total_local();
  // Identical cost charged again (value-oblivious schedule).
  EXPECT_EQ(after_second, 2 * after_first);
  EXPECT_EQ(oracle.pa_calls(), 2u);
}

TEST(PaOracle, NccOracleChargesGlobalRounds) {
  const Graph g = make_grid(2, 4);
  Rng rng(3);
  NccPaOracle oracle(g, rng);
  const PartCollection pc = two_rows();
  const auto results =
      oracle.aggregate_once(pc, values_for(pc, 1.0), AggregationMonoid::sum());
  EXPECT_DOUBLE_EQ(results[0], 4.0);
  EXPECT_EQ(oracle.ledger().total_local(), 0u);
  EXPECT_GT(oracle.ledger().total_global(), 0u);
}

TEST(PaOracle, BaselineOracleHandlesCongestedInstances) {
  const Graph g = make_grid(5, 5);
  Rng rng(4);
  BaselinePaOracle oracle(g, rng);
  const PartCollection pc = figure1_diagonal_instance(5);
  const auto results =
      oracle.aggregate_once(pc, values_for(pc, 1.0), AggregationMonoid::sum());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(pc.parts[i].size()));
  }
  EXPECT_GT(oracle.ledger().total_local(), 0u);
}

TEST(PaOracle, BaselinePaysMoreThanShortcutOnManyParts) {
  // The baseline routes every part over the global BFS tree; with many small
  // parts its rounds exceed the shortcut pipeline's.
  const Graph g = make_grid(8, 8);
  Rng rng1(5), rng2(5);
  ShortcutPaOracle fast(g, rng1);
  BaselinePaOracle slow(g, rng2);
  Rng part_rng(6);
  const PartCollection pc = random_voronoi_partition(g, 16, part_rng);
  fast.aggregate_once(pc, values_for(pc, 1.0), AggregationMonoid::sum());
  slow.aggregate_once(pc, values_for(pc, 1.0), AggregationMonoid::sum());
  EXPECT_LT(fast.ledger().total_local(), slow.ledger().total_local());
}

TEST(PaOracle, LocalExchangeChargesOneRound) {
  const Graph g = make_path(3);
  Rng rng(7);
  ShortcutPaOracle oracle(g, rng);
  oracle.charge_local_exchange("matvec");
  oracle.charge_local_exchange("matvec");
  EXPECT_EQ(oracle.ledger().total_local(), 2u);
}

TEST(PaOracle, RejectsInvalidPartCollection) {
  const Graph g = make_path(5);
  Rng rng(8);
  ShortcutPaOracle oracle(g, rng);
  PartCollection pc;
  pc.parts = {{0, 4}};  // disconnected
  EXPECT_THROW(oracle.prepare(pc), std::invalid_argument);
}

TEST(PaOracle, RejectsUnknownInstance) {
  const Graph g = make_path(3);
  Rng rng(9);
  ShortcutPaOracle oracle(g, rng);
  EXPECT_THROW(oracle.aggregate(3, {}, AggregationMonoid::sum()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dls
