#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace dls {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 2.5);
}

TEST(Graph, RejectsSelfLoopsAndBadWeights) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(Graph, ParallelEdgesSupported) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 3.0);
}

TEST(Graph, InducedSubgraph) {
  Graph g = make_cycle(6);
  const std::vector<NodeId> nodes{0, 1, 2};
  const InducedSubgraph sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // path 0-1-2
  EXPECT_EQ(sub.to_original[sub.to_local[2]], 2u);
}

struct GeneratorCase {
  std::string name;
  std::size_t expected_nodes;
  std::size_t expected_edges;
  Graph graph;
};

class GeneratorTest : public ::testing::TestWithParam<int> {};

TEST(Generators, PathProperties) {
  const Graph g = make_path(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 9u);
}

TEST(Generators, CycleProperties) {
  const Graph g = make_cycle(10);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(exact_diameter(g), 5u);
}

TEST(Generators, GridProperties) {
  const Graph g = make_grid(5, 7);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_EQ(g.num_edges(), 5u * 6 + 4u * 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 4u + 6u);
}

TEST(Generators, TorusIsRegular) {
  const Graph g = make_torus(4, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, BalancedTreeConnectedAcyclic) {
  const Graph g = make_balanced_binary_tree(31);
  EXPECT_EQ(g.num_edges(), 30u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(3);
  const Graph g = make_random_tree(64, rng);
  EXPECT_EQ(g.num_edges(), 63u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, KTreeConnected) {
  Rng rng(5);
  const Graph g = make_k_tree(40, 3, rng);
  EXPECT_TRUE(is_connected(g));
  // Every node beyond the base clique has degree >= k.
  for (NodeId v = 4; v < g.num_nodes(); ++v) EXPECT_GE(g.degree(v), 3u);
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(7);
  const Graph g = make_random_regular(50, 4, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(7);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
}

TEST(Generators, HypercubeStructure) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_EQ(exact_diameter(g), 4u);
}

TEST(Generators, BarbellHasBridge) {
  const Graph g = make_barbell(10);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 2u * (5 * 4 / 2) + 1);
}

TEST(Generators, LowerBoundDumbbellSmallDiameter) {
  const Graph g = make_lower_bound_dumbbell(16);
  EXPECT_TRUE(is_connected(g));
  Rng rng(1);
  // D = O(log side): paths reach the tree leaves directly.
  EXPECT_LE(approx_diameter(g, rng), 2u * 5 + 4);
}

TEST(Generators, WeightedGridWeightsInRange) {
  Rng rng(9);
  const Graph g = make_weighted_grid(6, 6, rng, 2.0, 8.0);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 8.0);
  }
}

TEST(Bfs, DistancesOnGrid) {
  const Graph g = make_grid(4, 4);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[15], 6u);  // (3,3) from (0,0)
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.eccentricity(), 6u);
}

TEST(Bfs, MultiSource) {
  const Graph g = make_path(10);
  const std::vector<NodeId> sources{0, 9};
  const BfsResult r = bfs_multi(g, sources);
  EXPECT_EQ(r.dist[5], 4u);
  EXPECT_EQ(r.dist[4], 4u);
}

TEST(Bfs, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], BfsResult::kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, CountsAndLabels) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(count_components(g), 3u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Diameter, ApproxAtLeastHalfExact) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_random_tree(60, rng);
    const auto exact = exact_diameter(g);
    const auto approx = approx_diameter(g, rng);
    EXPECT_LE(approx, exact);
    EXPECT_GE(2 * approx + 1, exact);
  }
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  Rng rng(22);
  const Graph g = make_random_tree(80, rng);
  EXPECT_EQ(approx_diameter(g, rng, 3), exact_diameter(g));
}

TEST(SpanningTree, BfsTreeIsSpanning) {
  const Graph g = make_grid(5, 5);
  const auto edges = bfs_tree_edges(g, 12);
  EXPECT_TRUE(is_spanning_tree(g, edges));
}

TEST(SpanningTree, DetectsNonTree) {
  const Graph g = make_cycle(4);
  std::vector<EdgeId> all{0, 1, 2, 3};
  EXPECT_FALSE(is_spanning_tree(g, all));
  std::vector<EdgeId> three{0, 1, 2};
  EXPECT_TRUE(is_spanning_tree(g, three));
}

TEST(Mst, MatchesBruteForceWeight) {
  Rng rng(31);
  const Graph g = make_weighted_grid(5, 5, rng);
  const auto tree = mst_kruskal(g);
  EXPECT_TRUE(is_spanning_tree(g, tree));
  double total = 0;
  for (EdgeId e : tree) total += g.edge(e).weight;
  // Sanity: no spanning tree found by shuffled Kruskal beats it.
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<EdgeId> order(g.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    rng.shuffle(order);
    UnionFind uf(g.num_nodes());
    double other = 0;
    for (EdgeId e : order) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) other += g.edge(e).weight;
    }
    EXPECT_LE(total, other + 1e-9);
  }
}

TEST(EulerTour, CoversTreeTwice) {
  const Graph g = make_balanced_binary_tree(7);
  std::vector<EdgeId> tree(g.num_edges());
  std::iota(tree.begin(), tree.end(), EdgeId{0});
  const auto tour = euler_tour(g, tree, 0);
  EXPECT_EQ(tour.size(), 2u * 7 - 1);
  EXPECT_EQ(tour.front(), 0u);
  EXPECT_EQ(tour.back(), 0u);
  std::set<NodeId> visited(tour.begin(), tour.end());
  EXPECT_EQ(visited.size(), 7u);
  // Consecutive tour nodes are adjacent.
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    bool adjacent = false;
    for (const Adjacency& a : g.neighbors(tour[i])) {
      adjacent |= a.neighbor == tour[i + 1];
    }
    EXPECT_TRUE(adjacent);
  }
}

TEST(UnionFindTest, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_EQ(uf.find(0), uf.find(1));
}

TEST(HopDistance, PathReconstruction) {
  const Graph g = make_grid(3, 3);
  const auto d = hop_distance(g, 0, 8);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 4u);
  const auto path = shortest_hop_path(g, 0, 8);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 8u);
}

// Property sweep: connectivity and handshake lemma across generator families.
class FamilyTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {};

TEST_P(FamilyTest, HandshakeAndConnectivity) {
  const auto [family, n] = GetParam();
  Rng rng(1234);
  Graph g;
  const std::string name = family;
  if (name == "path") g = make_path(n);
  else if (name == "cycle") g = make_cycle(n);
  else if (name == "grid") g = make_grid(n / 4, 4);
  else if (name == "tree") g = make_random_tree(n, rng);
  else if (name == "regular") g = make_random_regular(n, 4, rng);
  else if (name == "hypercube") g = make_hypercube(5);
  else if (name == "ktree") g = make_k_tree(n, 3, rng);
  ASSERT_GT(g.num_nodes(), 0u);
  EXPECT_TRUE(is_connected(g)) << name;
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges()) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyTest,
    ::testing::Combine(::testing::Values("path", "cycle", "grid", "tree",
                                         "regular", "hypercube", "ktree"),
                       ::testing::Values(16, 40, 64)));

}  // namespace
}  // namespace dls
