#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/aggregation_scheduler.hpp"
#include "sim/fault_injection.hpp"

namespace dls {
namespace {

AggregationTree whole_path_tree(const Graph& g, double base_value) {
  AggregationTree tree;
  tree.root = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree.edges.push_back(e);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    tree.inputs.push_back({v, base_value + v});
  }
  return tree;
}

TEST(Monoids, SumMinMax) {
  const auto sum = AggregationMonoid::sum();
  EXPECT_DOUBLE_EQ(sum.op(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(sum.identity, 0.0);
  const auto mn = AggregationMonoid::min();
  EXPECT_DOUBLE_EQ(mn.op(2, 3), 2.0);
  EXPECT_GT(mn.identity, 1e100);
  const auto mx = AggregationMonoid::max();
  EXPECT_DOUBLE_EQ(mx.op(2, 3), 3.0);
}

TEST(Scheduler, SinglePathAggregatesSum) {
  const Graph g = make_path(8);
  Rng rng(1);
  const auto outcome = run_tree_aggregations(
      g, {whole_path_tree(g, 0.0)}, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 28.0);  // 0+..+7
  // Convergecast along a path rooted at one end takes depth rounds;
  // broadcast the same.
  EXPECT_EQ(outcome.convergecast_rounds, 7u);
  EXPECT_EQ(outcome.broadcast_rounds, 7u);
  EXPECT_EQ(outcome.max_tree_depth, 7u);
  EXPECT_EQ(outcome.max_edge_load, 1u);
}

TEST(Scheduler, SingleNodeTreeFreeOfCharge) {
  const Graph g = make_path(3);
  AggregationTree tree;
  tree.root = 1;
  tree.inputs = {{1, 5.0}};
  Rng rng(2);
  const auto outcome =
      run_tree_aggregations(g, {tree}, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 5.0);
  EXPECT_EQ(outcome.total_rounds, 0u);
}

TEST(Scheduler, MinAggregation) {
  const Graph g = make_star(6);
  AggregationTree tree;
  tree.root = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree.edges.push_back(e);
  tree.inputs = {{0, 9.0}, {1, 4.0}, {2, 7.0}, {3, 2.0}, {4, 8.0}, {5, 6.0}};
  Rng rng(3);
  const auto outcome =
      run_tree_aggregations(g, {tree}, AggregationMonoid::min(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 2.0);
  // Star: all leaves contend for nothing (distinct edges); 1 round up, 1 down.
  EXPECT_EQ(outcome.convergecast_rounds, 1u);
  EXPECT_EQ(outcome.broadcast_rounds, 1u);
}

TEST(Scheduler, SteinerNodesContributeIdentity) {
  const Graph g = make_path(5);
  AggregationTree tree;
  tree.root = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree.edges.push_back(e);
  tree.inputs = {{0, 1.0}, {4, 2.0}};  // nodes 1..3 are Steiner
  Rng rng(4);
  const auto outcome =
      run_tree_aggregations(g, {tree}, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 3.0);
}

TEST(Scheduler, ContendingTreesSerializeOnSharedEdge) {
  // k trees all consisting of the single edge (0,1): the shared edge must
  // carry k convergecast messages — exactly k rounds up.
  const Graph g = make_path(2);
  constexpr int k = 5;
  std::vector<AggregationTree> trees;
  for (int i = 0; i < k; ++i) {
    AggregationTree t;
    t.root = 0;
    t.edges = {0};
    t.inputs = {{0, 1.0}, {1, static_cast<double>(i)}};
    trees.push_back(t);
  }
  Rng rng(5);
  const auto outcome =
      run_tree_aggregations(g, trees, AggregationMonoid::sum(), rng);
  EXPECT_EQ(outcome.convergecast_rounds, static_cast<std::uint64_t>(k));
  EXPECT_EQ(outcome.broadcast_rounds, static_cast<std::uint64_t>(k));
  EXPECT_EQ(outcome.max_edge_load, static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) EXPECT_DOUBLE_EQ(outcome.results[i], 1.0 + i);
}

TEST(Scheduler, ReportsPerPhaseCongestion) {
  // Five single-edge trees on the edge (0,1): every convergecast message uses
  // the same directed slot, so the phase's peak slot count equals the number
  // of trees; the broadcast phase repeats it in the other direction.
  const Graph g = make_path(2);
  constexpr int k = 5;
  std::vector<AggregationTree> trees;
  for (int i = 0; i < k; ++i) {
    AggregationTree t;
    t.root = 0;
    t.edges = {0};
    t.inputs = {{0, 0.0}, {1, 1.0}};
    trees.push_back(t);
  }
  Rng rng(12);
  const auto outcome =
      run_tree_aggregations(g, trees, AggregationMonoid::sum(), rng);
  EXPECT_EQ(outcome.convergecast_congestion.messages, 5u);
  EXPECT_EQ(outcome.convergecast_congestion.peak_slot_messages, 5u);
  EXPECT_EQ(outcome.convergecast_congestion.peak_round_messages, 1u);
  EXPECT_EQ(outcome.broadcast_congestion.messages, 5u);
  EXPECT_EQ(outcome.broadcast_congestion.peak_slot_messages, 5u);
  const PhaseCongestion total = outcome.congestion();
  EXPECT_EQ(total.messages, 10u);
  EXPECT_EQ(total.peak_slot_messages, 5u);
  // One message per round across both phases: rounds 1..10.
  ASSERT_EQ(outcome.round_histogram.size(), 11u);
  for (std::size_t r = 1; r <= 10; ++r) {
    EXPECT_EQ(outcome.round_histogram[r], 1u) << "round " << r;
  }
}

TEST(Scheduler, DisjointTreesHaveUnitSlotCongestion) {
  const Graph g = make_grid(6, 6);
  std::vector<AggregationTree> trees;
  for (std::size_t r = 0; r < 6; ++r) {
    AggregationTree t;
    t.root = static_cast<NodeId>(r * 6);
    for (std::size_t c = 0; c + 1 < 6; ++c) {
      const NodeId u = static_cast<NodeId>(r * 6 + c);
      for (const Adjacency& a : g.neighbors(u)) {
        if (a.neighbor == u + 1) t.edges.push_back(a.edge);
      }
      t.inputs.push_back({u, 1.0});
    }
    t.inputs.push_back({static_cast<NodeId>(r * 6 + 5), 1.0});
    trees.push_back(t);
  }
  Rng rng(13);
  const auto outcome =
      run_tree_aggregations(g, trees, AggregationMonoid::sum(), rng);
  // Edge-disjoint rows: no slot ever carries more than one message.
  EXPECT_EQ(outcome.congestion().peak_slot_messages, 1u);
  EXPECT_EQ(outcome.congestion().messages,
            static_cast<std::uint64_t>(outcome.messages));
}

TEST(Scheduler, RoundsBoundedByCongestionTimesDepth) {
  // Grid rows as parts with the trivial shortcut: rounds ≤ O(c·d).
  const Graph g = make_grid(6, 6);
  std::vector<AggregationTree> trees;
  for (std::size_t r = 0; r < 6; ++r) {
    AggregationTree t;
    t.root = static_cast<NodeId>(r * 6);
    for (std::size_t c = 0; c + 1 < 6; ++c) {
      // Horizontal edges of row r: find them.
      const NodeId u = static_cast<NodeId>(r * 6 + c);
      const NodeId v = u + 1;
      for (const Adjacency& a : g.neighbors(u)) {
        if (a.neighbor == v) t.edges.push_back(a.edge);
      }
      t.inputs.push_back({u, 1.0});
    }
    t.inputs.push_back({static_cast<NodeId>(r * 6 + 5), 1.0});
    trees.push_back(t);
  }
  Rng rng(6);
  const auto outcome =
      run_tree_aggregations(g, trees, AggregationMonoid::sum(), rng);
  for (const double v : outcome.results) EXPECT_DOUBLE_EQ(v, 6.0);
  // Disjoint rows: no contention; 5 up + 5 down.
  EXPECT_EQ(outcome.total_rounds, 10u);
}

TEST(Scheduler, ResultsMatchSequentialAcrossPolicies) {
  Rng rng(7);
  const Graph g = make_grid(5, 5);
  // Random Steiner-ish trees over BFS trees from random roots.
  std::vector<AggregationTree> trees;
  for (int i = 0; i < 8; ++i) {
    AggregationTree t;
    t.root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    t.edges = bfs_tree_edges(g, t.root);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      t.inputs.push_back({v, rng.next_double()});
    }
    trees.push_back(t);
  }
  const auto expected = sequential_aggregates(trees, AggregationMonoid::sum());
  for (const auto policy :
       {SchedulingPolicy::kRandomPriority, SchedulingPolicy::kFifo,
        SchedulingPolicy::kPartOrdered}) {
    Rng run_rng(8);
    const auto outcome = run_tree_aggregations(
        g, trees, AggregationMonoid::sum(), run_rng, policy);
    for (std::size_t i = 0; i < trees.size(); ++i) {
      EXPECT_NEAR(outcome.results[i], expected[i], 1e-9);
    }
    EXPECT_EQ(outcome.max_edge_load, 8u);  // all trees share tree edges
  }
}

TEST(Scheduler, RejectsDisconnectedTree) {
  const Graph g = make_path(4);
  AggregationTree t;
  t.root = 0;
  t.edges = {2};  // edge (2,3) does not touch the root
  t.inputs = {{0, 1.0}};
  Rng rng(9);
  EXPECT_THROW(
      run_tree_aggregations(g, {t}, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

TEST(Scheduler, RejectsCyclicEdgeSet) {
  const Graph g = make_cycle(4);
  AggregationTree t;
  t.root = 0;
  t.edges = {0, 1, 2, 3};
  t.inputs = {{0, 1.0}};
  Rng rng(10);
  EXPECT_THROW(
      run_tree_aggregations(g, {t}, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

TEST(Scheduler, RejectsInputOffTree) {
  const Graph g = make_path(4);
  AggregationTree t;
  t.root = 0;
  t.edges = {0};  // spans {0,1}
  t.inputs = {{3, 1.0}};
  Rng rng(11);
  EXPECT_THROW(
      run_tree_aggregations(g, {t}, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

class SchedulerSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerSweep, CorrectOnRandomVoronoiLikeTrees) {
  const auto [seed, count] = GetParam();
  Rng rng(seed);
  const Graph g = make_random_regular(40, 4, rng);
  std::vector<AggregationTree> trees;
  for (int i = 0; i < count; ++i) {
    AggregationTree t;
    t.root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    t.edges = bfs_tree_edges(g, t.root);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.next_bool(0.5)) t.inputs.push_back({v, rng.next_double()});
    }
    trees.push_back(t);
  }
  const auto expected = sequential_aggregates(trees, AggregationMonoid::max());
  const auto outcome =
      run_tree_aggregations(g, trees, AggregationMonoid::max(), rng);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_DOUBLE_EQ(outcome.results[i], expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 4, 9)));

// --- payload corruption & the integrity word -------------------------------

// Path 0-1-2 rooted at 0, values {0, 1, 2}. The leaf's convergecast send
// (2 -> 1, edge 1, directed slot 2, first consulted at round 1 of epoch 1)
// is corrupted. Without integrity the perturbed payload silently enters the
// fold: the root's aggregate is off by exactly the injected bit flip.
TEST(SchedulerCorruption, UncheckedCorruptionPerturbsTheFold) {
  const Graph g = make_path(3);
  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/2,
           /*param=*/0x10}});
  Rng rng(5);
  const auto outcome = run_tree_aggregations(
      g, {whole_path_tree(g, 0.0)}, AggregationMonoid::sum(), rng,
      SchedulingPolicy::kRandomPriority, &plan);
  EXPECT_EQ(outcome.corrupt_injected, 1u);
  EXPECT_EQ(outcome.corrupt_delivered, 1u);
  EXPECT_EQ(outcome.corrupt_detected, 0u);
  EXPECT_EQ(outcome.integrity_words, 0u);
  EXPECT_NE(outcome.results[0], 3.0);
  EXPECT_DOUBLE_EQ(outcome.results[0], 1.0 + corrupt_payload(2.0, 0x10));
}

// The same corrupted transmission with the integrity word on: the receiver's
// checksum fails, the send behaves like a drop and is retransmitted, and the
// fold is exact — paid in rounds and one checksum word per transmission.
TEST(SchedulerCorruption, IntegrityDetectsAndRetransmitsExactly) {
  const Graph g = make_path(3);
  FaultConfig config;
  config.integrity = true;
  FaultPlan plan = FaultPlan::replay(
      0,
      {{FaultKind::kCorrupt, /*epoch=*/1, /*round=*/1, /*subject=*/2,
        /*param=*/0x10}},
      config);
  Rng rng(5);
  const auto outcome = run_tree_aggregations(
      g, {whole_path_tree(g, 0.0)}, AggregationMonoid::sum(), rng,
      SchedulingPolicy::kRandomPriority, &plan);
  EXPECT_DOUBLE_EQ(outcome.results[0], 3.0);
  EXPECT_EQ(outcome.corrupt_injected, 1u);
  EXPECT_EQ(outcome.corrupt_detected, 1u);
  EXPECT_EQ(outcome.corrupt_delivered, 0u);
  // Exactly one checksum word per transmission, retransmission included.
  EXPECT_EQ(outcome.integrity_words, outcome.messages);
}

// Integrity with no faults at all: results stay bit-identical to the
// fault-free run, but the honest cost shows — each slot carries one message
// per two rounds, so the phases take longer and every send pays its word.
TEST(SchedulerCorruption, IntegrityAloneKeepsResultsAndPaysRounds) {
  const Graph g = make_path(8);
  Rng clean_rng(7);
  const auto clean = run_tree_aggregations(
      g, {whole_path_tree(g, 0.0)}, AggregationMonoid::sum(), clean_rng);

  FaultConfig config;
  config.integrity = true;
  FaultPlan plan(/*seed=*/1, config);  // all rates zero: pure integrity cost
  Rng rng(7);
  const auto outcome = run_tree_aggregations(
      g, {whole_path_tree(g, 0.0)}, AggregationMonoid::sum(), rng,
      SchedulingPolicy::kRandomPriority, &plan);
  EXPECT_EQ(outcome.results, clean.results);
  EXPECT_EQ(outcome.corrupt_injected, 0u);
  EXPECT_GT(outcome.total_rounds, clean.total_rounds);
  EXPECT_EQ(outcome.integrity_words, outcome.messages);
  EXPECT_EQ(outcome.messages, clean.messages);  // no retransmissions needed
}

}  // namespace
}  // namespace dls
