#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/maxflow.hpp"

namespace dls {
namespace {

TEST(ElectricalMaxFlow, SinglePathRecoversExactly) {
  const Graph g = make_path(6);
  Rng rng(1);
  ElectricalMaxFlowOptions options;
  options.iterations = 4;
  const auto result = approx_max_flow_electrical(g, 0, 5, rng,
                                                 MaxFlowModel::kShortcut, options);
  EXPECT_DOUBLE_EQ(result.exact_value, 1.0);
  EXPECT_NEAR(result.flow_value, 1.0, 1e-4);
  EXPECT_NEAR(result.approximation, 1.0, 1e-4);
}

TEST(ElectricalMaxFlow, FlowIsConservativeAndFeasible) {
  Rng rng(2);
  const Graph g = make_weighted_grid(5, 5, rng);
  const auto result = approx_max_flow_electrical(g, 0, 24, rng);
  EXPECT_LT(flow_conservation_error(g, result.edge_flow, 0, 24,
                                    result.flow_value),
            1e-5 * (result.flow_value + 1.0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(std::abs(result.edge_flow[e]), g.edge(e).weight * (1 + 1e-9));
  }
}

TEST(ElectricalMaxFlow, ReasonableApproximationOnGrids) {
  const Graph g = make_grid(6, 6);
  Rng rng(3);
  const auto result = approx_max_flow_electrical(g, 0, 35, rng);
  EXPECT_GT(result.approximation, 0.6);
  EXPECT_LE(result.approximation, 1.0 + 1e-9);
  EXPECT_GT(result.local_rounds, 0u);
}

TEST(ElectricalMaxFlow, MoreIterationsHelp) {
  const Graph g = make_grid(5, 5);
  double approx_few = 0, approx_many = 0;
  {
    Rng rng(4);
    ElectricalMaxFlowOptions options;
    options.iterations = 2;
    approx_few =
        approx_max_flow_electrical(g, 0, 24, rng, MaxFlowModel::kShortcut, options)
            .approximation;
  }
  {
    Rng rng(4);
    ElectricalMaxFlowOptions options;
    options.iterations = 32;
    approx_many =
        approx_max_flow_electrical(g, 0, 24, rng, MaxFlowModel::kShortcut, options)
            .approximation;
  }
  EXPECT_GE(approx_many + 0.05, approx_few);  // allow noise, expect no regression
  EXPECT_GT(approx_many, 0.7);
}

TEST(ElectricalMaxFlow, NccModelChargesGlobalRounds) {
  const Graph g = make_grid(4, 4);
  Rng rng(5);
  ElectricalMaxFlowOptions options;
  options.iterations = 3;
  const auto result =
      approx_max_flow_electrical(g, 0, 15, rng, MaxFlowModel::kNcc, options);
  EXPECT_GT(result.global_rounds, 0u);
  EXPECT_GT(result.approximation, 0.5);
}

TEST(ConservationError, DetectsViolations) {
  const Graph g = make_path(3);
  // Claimed unit flow on only the first edge: node 1 violates conservation.
  EXPECT_GT(flow_conservation_error(g, {1.0, 0.0}, 0, 2, 1.0), 0.5);
  EXPECT_LT(flow_conservation_error(g, {1.0, 1.0}, 0, 2, 1.0), 1e-12);
}

}  // namespace
}  // namespace dls
