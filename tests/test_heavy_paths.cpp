#include <gtest/gtest.h>

#include "congested_pa/heavy_paths.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"

namespace dls {
namespace {

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes[v] = v;
  return nodes;
}

TEST(HeavyPaths, PathPartIsSinglePath) {
  const Graph g = make_path(10);
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, all_nodes(g));
  EXPECT_EQ(hpd.paths.size(), 1u);
  EXPECT_EQ(hpd.max_depth, 0u);
  EXPECT_TRUE(is_valid_heavy_path_decomposition(g, all_nodes(g), hpd));
}

TEST(HeavyPaths, StarDecomposesIntoHubPathPlusLeaves) {
  const Graph g = make_star(8);
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, all_nodes(g));
  EXPECT_TRUE(is_valid_heavy_path_decomposition(g, all_nodes(g), hpd));
  EXPECT_EQ(hpd.max_depth, 1u);
  EXPECT_EQ(hpd.paths.size(), 7u);  // hub+one leaf, then 6 leaf paths
}

TEST(HeavyPaths, BalancedTreeDepthLogarithmic) {
  const Graph g = make_balanced_binary_tree(63);
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, all_nodes(g));
  EXPECT_TRUE(is_valid_heavy_path_decomposition(g, all_nodes(g), hpd));
  EXPECT_LE(hpd.max_depth, 6u);
}

TEST(HeavyPaths, PartialPartOnGrid) {
  const Graph g = make_grid(5, 5);
  const std::vector<NodeId> part{0, 1, 2, 7, 12, 11, 10};  // connected blob
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, part);
  EXPECT_TRUE(is_valid_heavy_path_decomposition(g, part, hpd));
  std::size_t covered = 0;
  for (const auto& p : hpd.paths) covered += p.size();
  EXPECT_EQ(covered, part.size());
}

TEST(HeavyPaths, RejectsDisconnectedPart) {
  const Graph g = make_path(6);
  const std::vector<NodeId> part{0, 5};
  EXPECT_THROW(heavy_path_decomposition(g, part), std::invalid_argument);
}

TEST(HeavyPaths, SingleNodePart) {
  const Graph g = make_path(4);
  const std::vector<NodeId> part{2};
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, part);
  EXPECT_EQ(hpd.paths.size(), 1u);
  EXPECT_EQ(hpd.paths[0], part);
  EXPECT_TRUE(is_valid_heavy_path_decomposition(g, part, hpd));
}

class HeavyPathSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeavyPathSweep, ValidOnRandomVoronoiParts) {
  Rng rng(GetParam());
  const Graph g = make_random_regular(48, 4, rng);
  const PartCollection pc = random_voronoi_partition(g, 6, rng);
  for (const auto& part : pc.parts) {
    const HeavyPathDecomposition hpd = heavy_path_decomposition(g, part);
    EXPECT_TRUE(is_valid_heavy_path_decomposition(g, part, hpd));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyPathSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace dls
