#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/solvers.hpp"
#include "linalg/vector_ops.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2.0 - 1.0;
  project_mean_zero(b);
  return b;
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
}

TEST(VectorOps, AxpyScaleAddSub) {
  Vec y{1, 1};
  axpy(2.0, {3, 4}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[1], 4.5);
  EXPECT_DOUBLE_EQ(add({1, 2}, {3, 4})[1], 6.0);
  EXPECT_DOUBLE_EQ(sub({1, 2}, {3, 4})[0], -2.0);
}

TEST(VectorOps, ProjectMeanZero) {
  Vec a{1, 2, 3};
  project_mean_zero(a);
  EXPECT_NEAR(a[0] + a[1] + a[2], 0.0, 1e-12);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// --- Deterministic blocked kernels. ---------------------------------------

TEST(BlockedKernels, SingleBlockMatchesPlainLoopBitwise) {
  // For n ≤ kKernelBlock the blocked reductions ARE the plain loop — same
  // association, same bits — so existing small-graph behaviour is untouched.
  Rng rng(101);
  Vec a(1000), b(1000);
  for (double& v : a) v = rng.next_double() * 2 - 1;
  for (double& v : b) v = rng.next_double() * 2 - 1;
  EXPECT_EQ(blocked_dot(a, b), dot(a, b));
  EXPECT_EQ(blocked_norm2(a), norm2(a));
  EXPECT_EQ(blocked_sub(a, b), sub(a, b));
  Vec y1 = b, y2 = b;
  axpy(0.7, a, y1);
  blocked_axpy(0.7, a, y2);
  EXPECT_EQ(y1, y2);
}

TEST(BlockedKernels, PoolInvariantBits) {
  // Multi-block inputs: the result must be a pure function of the input —
  // null pool, 1-thread pool and 4-thread pool all agree bitwise.
  Rng rng(102);
  const std::size_t n = 3 * kKernelBlock + 517;
  Vec a(n), b(n);
  for (double& v : a) v = rng.next_double() * 2 - 1;
  for (double& v : b) v = rng.next_double() * 2 - 1;
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const double serial = blocked_dot(a, b, nullptr);
  EXPECT_EQ(blocked_dot(a, b, &pool1), serial);
  EXPECT_EQ(blocked_dot(a, b, &pool4), serial);
  EXPECT_EQ(blocked_norm2(a, &pool4), blocked_norm2(a, nullptr));
  // And the blocked association stays numerically consistent with the plain
  // loop (not bitwise for multi-block inputs, but tight).
  EXPECT_NEAR(serial, dot(a, b), 1e-9 * n);
  Vec p1 = a, p4 = a, ps = a;
  project_mean_zero(ps, nullptr);
  project_mean_zero(p1, &pool1);
  project_mean_zero(p4, &pool4);
  EXPECT_EQ(ps, p1);
  EXPECT_EQ(ps, p4);
}

TEST(BlockedKernels, LaplacianApplyPoolOverloadInvariant) {
  Rng rng(103);
  const Graph g = make_weighted_grid(70, 71, rng);  // 4970 nodes, multi-block
  const Vec x = random_rhs(g.num_nodes(), rng);
  ThreadPool pool4(4);
  const Vec serial = laplacian_apply(g, x, nullptr);
  EXPECT_EQ(laplacian_apply(g, x, &pool4), serial);
  // Both overloads share one canonical per-vertex gather association (the
  // serial overload forwards to the pooled kernel with a null pool), so the
  // agreement is exact — bit-for-bit, not within-tolerance.
  const Vec reference = laplacian_apply(g, x);
  EXPECT_EQ(serial, reference);
}

TEST(BlockedKernels, CholeskyPoolSolveInvariantAndExact) {
  Rng rng(104);
  const Graph g = make_weighted_grid(9, 9, rng);
  const GroundedCholesky chol(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  ThreadPool pool4(4);
  const Vec serial = chol.solve(b, nullptr);
  EXPECT_EQ(chol.solve(b, &pool4), serial);
  // Still an exact solve of the same system.
  const Vec r = sub(b, laplacian_apply(g, serial));
  EXPECT_LT(norm2(r), 1e-9 * (norm2(b) + 1));
}

TEST(BlockedKernels, CholeskyBatchMatchesPerRhsSolves) {
  Rng rng(105);
  const Graph g = make_weighted_grid(8, 8, rng);
  const GroundedCholesky chol(g);
  std::vector<Vec> bs;
  for (int i = 0; i < 5; ++i) bs.push_back(random_rhs(g.num_nodes(), rng));
  ThreadPool pool4(4);
  const std::vector<Vec> batched = chol.solve_batch(bs, &pool4);
  ASSERT_EQ(batched.size(), bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    EXPECT_EQ(batched[i], chol.solve(bs[i]));  // bitwise per-slot identity
  }
}

TEST(Laplacian, ApplyMatchesDense) {
  Rng rng(1);
  const Graph g = make_weighted_grid(4, 4, rng);
  const auto dense = laplacian_dense(g);
  const Vec x = random_rhs(g.num_nodes(), rng);
  const Vec y = laplacian_apply(g, x);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    double expected = 0;
    for (std::size_t j = 0; j < g.num_nodes(); ++j) expected += dense[i][j] * x[j];
    EXPECT_NEAR(y[i], expected, 1e-10);
  }
}

TEST(Laplacian, QuadraticFormMatchesApply) {
  Rng rng(2);
  const Graph g = make_weighted_grid(3, 5, rng);
  const Vec x = random_rhs(g.num_nodes(), rng);
  EXPECT_NEAR(laplacian_quadratic_form(g, x), dot(x, laplacian_apply(g, x)),
              1e-10);
}

TEST(Laplacian, KernelIsConstantVector) {
  const Graph g = make_cycle(7);
  const Vec ones(7, 3.0);
  const Vec y = laplacian_apply(g, ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, RhsValidity) {
  EXPECT_TRUE(is_valid_rhs({1.0, -1.0}));
  EXPECT_FALSE(is_valid_rhs({1.0, 1.0}));
}

TEST(Cholesky, ExactOnSmallSystems) {
  Rng rng(3);
  const Graph g = make_weighted_grid(4, 4, rng);
  const GroundedCholesky chol(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  const Vec x = chol.solve(b);
  const Vec r = sub(b, laplacian_apply(g, x));
  EXPECT_LT(norm2(r), 1e-9 * (norm2(b) + 1));
  // Mean-zero representative.
  double sum = 0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Cholesky, RejectsBadRhs) {
  const Graph g = make_path(4);
  const GroundedCholesky chol(g);
  EXPECT_THROW(chol.solve({1, 1, 1, 1}), std::invalid_argument);
}

TEST(Cholesky, RejectsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(GroundedCholesky{g}, std::invalid_argument);
}

TEST(Cg, MatchesCholesky) {
  Rng rng(4);
  const Graph g = make_weighted_grid(5, 5, rng);
  const Vec b = random_rhs(g.num_nodes(), rng);
  const GroundedCholesky chol(g);
  const Vec x_ref = chol.solve(b);
  SolveOptions options;
  options.tolerance = 1e-10;
  const SolveResult result = solve_laplacian_cg(g, b, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(relative_error_in_l_norm(g, result.x, x_ref), 1e-6);
}

TEST(Cg, ZeroRhsReturnsZero) {
  const Graph g = make_path(5);
  const SolveResult result = solve_laplacian_cg(g, Vec(5, 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (double v : result.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PreconditionedCg, IdentityPreconditionerMatchesCg) {
  Rng rng(5);
  const Graph g = make_weighted_grid(4, 5, rng);
  const Vec b = random_rhs(g.num_nodes(), rng);
  SolveOptions options;
  options.tolerance = 1e-10;
  const auto op = [&](const Vec& x) { return laplacian_apply(g, x); };
  const auto id = [](const Vec& x) { return x; };
  const SolveResult pcg = preconditioned_cg(op, id, b, options);
  const SolveResult cg = conjugate_gradient(op, b, options);
  EXPECT_TRUE(pcg.converged);
  EXPECT_NEAR(relative_error_in_l_norm(g, pcg.x, cg.x), 0.0, 1e-5);
}

TEST(PreconditionedCg, ExactPreconditionerConvergesInOneIteration) {
  Rng rng(6);
  const Graph g = make_weighted_grid(4, 4, rng);
  const GroundedCholesky chol(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  const auto op = [&](const Vec& x) { return laplacian_apply(g, x); };
  const auto precond = [&](const Vec& r) { return chol.solve(r); };
  const SolveResult result = preconditioned_cg(op, precond, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2u);
}

TEST(Chebyshev, ConvergesWithTrueBounds) {
  const Graph g = make_path(8);
  Rng rng(7);
  const Vec b = random_rhs(8, rng);
  // Path Laplacian spectrum ⊂ [2(1−cos(π/8)), 4].
  const double lmin = 2.0 * (1.0 - std::cos(M_PI / 8.0));
  SolveOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 2000;
  const SolveResult result = chebyshev(
      [&](const Vec& x) { return laplacian_apply(g, x); }, b, lmin, 4.0, options);
  EXPECT_TRUE(result.converged);
  const GroundedCholesky chol(g);
  EXPECT_LT(relative_error_in_l_norm(g, result.x, chol.solve(b)), 1e-4);
}

TEST(SpectrumBounds, BracketTrueSpectrumOnPath) {
  const Graph g = make_path(6);
  const SpectrumBounds bounds = laplacian_spectrum_bounds(g);
  const double true_max = 2.0 * (1.0 + std::cos(M_PI / 6.0));
  const double true_min = 2.0 * (1.0 - std::cos(M_PI / 6.0));
  EXPECT_GE(bounds.lambda_max, true_max);
  EXPECT_LE(bounds.lambda_min, true_min);
  EXPECT_GT(bounds.lambda_min, 0.0);
}

TEST(RelativeError, InvariantToConstantShift) {
  Rng rng(8);
  const Graph g = make_grid(3, 3);
  Vec x = random_rhs(9, rng);
  Vec shifted = x;
  for (double& v : shifted) v += 5.0;
  EXPECT_NEAR(relative_error_in_l_norm(g, shifted, x), 0.0, 1e-10);
}

class CgFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(CgFamilyTest, ResidualBelowToleranceAcrossFamilies) {
  Rng rng(100 + GetParam());
  Graph g;
  switch (GetParam() % 4) {
    case 0: g = make_cycle(24); break;
    case 1: g = make_weighted_grid(5, 5, rng); break;
    case 2: g = make_random_regular(24, 4, rng); break;
    default: g = make_random_tree(30, rng); break;
  }
  const Vec b = random_rhs(g.num_nodes(), rng);
  SolveOptions options;
  options.tolerance = 1e-9;
  const SolveResult result = solve_laplacian_cg(g, b, options);
  EXPECT_TRUE(result.converged);
  const Vec r = sub(b, laplacian_apply(g, result.x));
  EXPECT_LT(norm2(r), 1e-7 * (norm2(b) + 1));
}

INSTANTIATE_TEST_SUITE_P(Families, CgFamilyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dls
