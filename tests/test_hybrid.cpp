#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/hybrid.hpp"

namespace dls {
namespace {

TEST(HybridNetwork, BothModesDeliverInOneRound) {
  const Graph g = make_path(4);
  HybridNetwork net(g, 2);
  net.send_local({0, 1, 0, 7, 1.5, 1});
  net.send_global({3, 0, 9, 2.5});
  net.step();
  ASSERT_EQ(net.local_inbox(1).size(), 1u);
  EXPECT_EQ(net.local_inbox(1)[0].tag, 7u);
  ASSERT_EQ(net.global_inbox(0).size(), 1u);
  EXPECT_EQ(net.global_inbox(0)[0].tag, 9u);
  EXPECT_EQ(net.rounds(), 1u);
}

TEST(HybridNetwork, EnforcesBothCapacities) {
  const Graph g = make_path(3);
  HybridNetwork net(g, 1);
  net.send_local({0, 1, 0, 0, 0, 1});
  EXPECT_THROW(net.send_local({0, 1, 0, 0, 0, 1}), std::invalid_argument);
  net.send_global({0, 2, 0, 0});
  EXPECT_THROW(net.send_global({0, 2, 0, 0}), std::invalid_argument);
}

TEST(HybridNetwork, CountsTrafficPerMode) {
  const Graph g = make_cycle(4);
  HybridNetwork net(g, 2);
  net.send_local({0, 1, 0, 0, 0, 1});
  net.send_global({2, 3, 0, 0});
  net.send_global({1, 3, 0, 0});
  net.step();
  EXPECT_EQ(net.local_messages(), 1u);
  EXPECT_EQ(net.global_messages(), 2u);
  EXPECT_EQ(net.global_drops(), 0u);
}

TEST(HybridBfs, EstimatesAreValidWalkLengths) {
  Rng rng(1);
  const Graph g = make_grid(8, 8);
  const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng);
  const BfsResult exact = bfs(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(result.approx_dist[v], exact.dist[v]) << "node " << v;
  }
  EXPECT_EQ(result.approx_dist[0], 0u);
}

TEST(HybridBfs, StretchIsModerate) {
  Rng rng(2);
  const Graph g = make_grid(10, 10);
  const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng);
  const BfsResult exact = bfs(g, 0);
  double worst_stretch = 1.0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    worst_stretch = std::max(
        worst_stretch, static_cast<double>(result.approx_dist[v]) /
                           static_cast<double>(std::max<std::uint32_t>(
                               exact.dist[v], 1)));
  }
  // Landmark overlays detour through cells; with √n landmarks on a grid the
  // observed stretch stays small.
  EXPECT_LT(worst_stretch, 4.0);
}

TEST(HybridBfs, BeatsPureCongestOnHighDiameterGraphs) {
  Rng rng(3);
  const Graph g = make_cycle(400);
  const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng, 40);
  // Pure CONGEST flooding needs ecc + 1 = 201 rounds; the landmark scheme
  // needs ~2R + overlay traffic with R ≈ n / (2·landmarks) = 5.
  EXPECT_EQ(result.pure_congest_rounds, 201u);
  EXPECT_LT(result.rounds, result.pure_congest_rounds / 2);
}

TEST(HybridBfs, MoreLandmarksShrinkBalls) {
  Rng rng(4);
  const Graph g = make_cycle(200);
  const HybridBfsResult few = hybrid_bfs_with_landmarks(g, 0, rng, 5);
  Rng rng2(4);
  const HybridBfsResult many = hybrid_bfs_with_landmarks(g, 0, rng2, 50);
  EXPECT_LT(many.ball_radius, few.ball_radius);
}

TEST(HybridBfs, SingleLandmarkDegeneratesToFlooding) {
  Rng rng(5);
  const Graph g = make_path(30);
  // Only the root as source (num_landmarks = 1 adds one more landmark, so
  // use the path and verify estimates remain valid).
  const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng, 1);
  const BfsResult exact = bfs(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(result.approx_dist[v], exact.dist[v]);
  }
}

class HybridBfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(HybridBfsSweep, ValidAcrossFamilies) {
  Rng rng(GetParam() * 7 + 1);
  Graph g;
  switch (GetParam() % 3) {
    case 0: g = make_torus(8, 8); break;
    case 1: g = make_random_regular(64, 4, rng); break;
    default: g = make_grid(6, 10); break;
  }
  const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  const HybridBfsResult result = hybrid_bfs_with_landmarks(g, root, rng);
  const BfsResult exact = bfs(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(result.approx_dist[v], exact.dist[v]);
  }
  EXPECT_EQ(result.approx_dist[root], 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridBfsSweep, ::testing::Range(0, 9));

}  // namespace
}  // namespace dls
