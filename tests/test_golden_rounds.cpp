// Golden-trace regression tests.
//
// Each case pins the EXACT simulated cost profile — round counts, phase
// structure, peak congestion, message totals, and the aggregate checksum —
// of the congested part-wise aggregation pipelines (Supported-CONGEST,
// CONGEST, NCC; claims C2/C3/C6/C7 of DESIGN.md) on fixed-seed instances:
// an 8×8 grid, a random tree, a random-regular expander, and a
// bounded-treewidth 2-tree (the C3 regime).
//
// These values are NOT derived from the paper; they are a fingerprint of the
// current implementation. Their purpose is to make silent semantic drift
// loud: a perf refactor that accidentally changes the simulated schedule, the
// RNG stream discipline, or the charging rules will move at least one number
// here and fail with a precise diff. If a change moves them *intentionally*
// (e.g. a scheduler improvement), regenerate with tools/golden_rounds_gen
// (see docs/TESTING.md) and update the table in the same commit, explaining
// why.
//
// All input values are integer-valued doubles, so the expected checksums are
// exact (no floating-point tolerance needed): integer sums this small are
// representable and associativity cannot change the result.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "golden_scenario.hpp"

namespace dls {
namespace {

struct GoldenRow {
  const char* family;
  PaModel model;
  std::size_t congestion;
  std::uint32_t phases;
  std::size_t max_layers;
  std::uint64_t total_rounds;
  std::uint64_t total_local;
  std::uint64_t total_global;
  std::size_t peak_congestion;
  std::uint64_t total_messages;
  std::size_t num_entries;  // ledger entry count: pins the phase structure
  double checksum;          // sum over parts of the aggregate (exact)
  std::size_t trace_spans;  // spans recorded by a traced run of the case
  std::uint64_t trace_hash; // structural hash of the span stream (names,
                            // nesting, counters, round cursors)
};

// Golden table — output of tools/golden_rounds_gen, pasted verbatim.
const GoldenRow kGolden[] = {
    // clang-format off
    {"grid", PaModel::kSupportedCongest,
     3, 5, 12, 812, 812, 0, 1, 656, 9, 14.0,
     16, 0x23a74eb51e96f0dfULL},
    {"grid", PaModel::kCongest,
     3, 5, 12, 1774, 1774, 0, 1, 656, 14, 14.0,
     16, 0x47e0f45966eec389ULL},
    {"grid", PaModel::kNcc,
     3, 1, 0, 8, 0, 8, 0, 0, 1, 14.0,
     2, 0x503f4b2dd2a16a8dULL},
    {"tree", PaModel::kSupportedCongest,
     3, 5, 12, 425, 425, 0, 1, 360, 9, 14.0,
     16, 0x50cd856191da95fbULL},
    {"tree", PaModel::kCongest,
     3, 5, 12, 1034, 1034, 0, 1, 360, 14, 14.0,
     16, 0xe0c23008b58fa12fULL},
    {"tree", PaModel::kNcc,
     3, 1, 0, 9, 0, 9, 0, 0, 1, 14.0,
     2, 0x972ad68bef7b826bULL},
    {"expander", PaModel::kSupportedCongest,
     3, 5, 12, 516, 516, 0, 1, 540, 9, 14.0,
     16, 0xf52898855aa06967ULL},
    {"expander", PaModel::kCongest,
     3, 5, 12, 955, 955, 0, 1, 540, 14, 14.0,
     16, 0x8b93949755926d33ULL},
    {"expander", PaModel::kNcc,
     3, 1, 0, 8, 0, 8, 0, 0, 1, 14.0,
     2, 0x503f4b2dd2a16a8dULL},
    {"ktree", PaModel::kSupportedCongest,
     3, 5, 12, 232, 232, 0, 1, 156, 9, 14.0,
     12, 0xbe5e354bb5879123ULL},
    {"ktree", PaModel::kCongest,
     3, 5, 12, 524, 524, 0, 1, 156, 14, 14.0,
     12, 0x643906ba522f189bULL},
    {"ktree", PaModel::kNcc,
     3, 1, 0, 9, 0, 9, 0, 0, 1, 14.0,
     2, 0x972ad68bef7b826bULL},
    // clang-format on
};

class GoldenRounds : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenRounds, MatchesPinnedTrace) {
  const GoldenRow& row = GetParam();
  const CongestedPaOutcome outcome =
      golden::run_golden_case(row.family, row.model);

  EXPECT_EQ(outcome.congestion, row.congestion);
  EXPECT_EQ(outcome.phases, row.phases);
  EXPECT_EQ(outcome.max_layers, row.max_layers);
  EXPECT_EQ(outcome.total_rounds, row.total_rounds);
  EXPECT_EQ(outcome.ledger.total_local(), row.total_local);
  EXPECT_EQ(outcome.ledger.total_global(), row.total_global);
  EXPECT_EQ(outcome.ledger.peak_congestion(), row.peak_congestion);
  EXPECT_EQ(outcome.ledger.total_messages(), row.total_messages);
  EXPECT_EQ(outcome.ledger.entries().size(), row.num_entries);
  double checksum = 0.0;
  for (const double r : outcome.results) checksum += r;
  EXPECT_EQ(checksum, row.checksum);  // exact: integer-valued inputs

  // Tracing observes, never steers: a traced re-run must reproduce the
  // outcome bit-for-bit, and its span stream is pinned structurally (count
  // and hash) just like the round numbers above.
  const golden::TracedGoldenCase traced =
      golden::run_golden_case_traced(row.family, row.model);
  EXPECT_TRUE(traced.outcome.ledger == outcome.ledger)
      << "tracing changed the round accounting";
  EXPECT_EQ(traced.outcome.results, outcome.results);
  EXPECT_EQ(traced.outcome.total_rounds, outcome.total_rounds);
  EXPECT_EQ(traced.trace_spans, row.trace_spans);
  EXPECT_EQ(traced.trace_hash, row.trace_hash)
      << "span fingerprint drifted; regenerate with tools/golden_rounds_gen "
         "only for a deliberate semantic change";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndModels, GoldenRounds, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRow>& info) {
      return std::string(info.param.family) + "_" +
             golden::model_name(info.param.model);
    });

}  // namespace
}  // namespace dls
