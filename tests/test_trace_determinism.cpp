// Trace-invariance harness: span fingerprints must be bit-identical across
// thread counts ({serial, 1, 4} — mirroring tests/test_differential.cpp's
// corpus discipline) and across batch shapes ({1, 16} RHS per call) for the
// batched solver, and tracing must never perturb the traced computation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sim/sim_batch.hpp"
#include "trace_test_util.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

using trace_test::expect_well_formed;

// --- Congested-PA corpus (the differential families, reduced) -------------

constexpr std::uint64_t kCorpusRootSeed = 0x7ACE5EEDULL;
constexpr std::size_t kCorpusCases = 48;

Graph random_family_graph(int family, Rng& rng) {
  switch (family % 5) {
    case 0: return make_grid(4 + rng.next_below(4), 4 + rng.next_below(4));
    case 1: return make_random_regular(24 + 2 * rng.next_below(8), 4, rng);
    case 2: return make_weighted_grid(5, 5 + rng.next_below(3), rng);
    case 3: return make_random_tree(20 + rng.next_below(20), rng);
    default: return make_torus(5, 5 + rng.next_below(3));
  }
}

void corpus_task(Rng& rng, SimOutcome& out) {
  const int family = static_cast<int>(rng.next_below(5));
  const std::size_t rho = 1 + rng.next_below(8);
  const std::size_t k = 2 + rng.next_below(4);
  const int model_pick = static_cast<int>(rng.next_below(3));
  const Graph g = random_family_graph(family, rng);
  const PartCollection pc = stacked_voronoi_instance(g, k, rho, rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].reserve(pc.parts[i].size());
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      values[i].push_back(static_cast<double>(
          static_cast<std::int64_t>(rng.next_below(11)) - 5));
    }
  }
  CongestedPaOptions options;
  options.model = model_pick == 0   ? PaModel::kSupportedCongest
                  : model_pick == 1 ? PaModel::kCongest
                                    : PaModel::kNcc;
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, pc, values, AggregationMonoid::sum(), rng, options);
  out.ledger = outcome.ledger;
  for (double r : outcome.results) out.results.push_back(r);
}

SimBatch build_corpus() {
  SimBatch batch(kCorpusRootSeed);
  for (std::size_t c = 0; c < kCorpusCases; ++c) {
    batch.add("corpus" + std::to_string(c), corpus_task);
  }
  return batch;
}

struct CorpusRun {
  std::string fingerprint;
  std::vector<SimOutcome> outcomes;
};

CorpusRun run_corpus_traced(ThreadPool* pool) {
  CorpusRun run;
  Tracer tracer;
  SimBatch corpus = build_corpus();
  {
    TraceScope scope(&tracer);
    corpus.run(pool);
  }
  expect_well_formed(tracer);
  run.fingerprint = trace_fingerprint(tracer);
  run.outcomes = corpus.outcomes();
  return run;
}

TEST(TraceDeterminism, CorpusFingerprintBitIdenticalAcrossThreadCounts) {
  const CorpusRun serial = run_corpus_traced(nullptr);
  ThreadPool pool1(1);
  const CorpusRun one = run_corpus_traced(&pool1);
  ThreadPool pool4(4);
  const CorpusRun four = run_corpus_traced(&pool4);

  EXPECT_EQ(serial.fingerprint, one.fingerprint);
  EXPECT_EQ(serial.fingerprint, four.fingerprint);

  // Tracing must not perturb the traced computation: the traced serial run's
  // outcomes are bit-identical to an untraced one.
  SimBatch untraced = build_corpus();
  untraced.run(nullptr);
  ASSERT_EQ(untraced.outcomes().size(), serial.outcomes.size());
  for (std::size_t c = 0; c < serial.outcomes.size(); ++c) {
    const SimOutcome& a = untraced.outcomes()[c];
    const SimOutcome& b = serial.outcomes[c];
    EXPECT_EQ(a.results, b.results) << a.label;
    EXPECT_TRUE(a.ledger == b.ledger) << a.label;
  }
}

// --- Batched multi-RHS sessions -------------------------------------------

LaplacianSolverOptions quick_options() {
  LaplacianSolverOptions options;
  options.tolerance = 1e-6;
  options.base_size = 16;
  return options;
}

std::vector<Vec> random_batch(std::size_t k, std::size_t n,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> bs;
  bs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Vec b(n);
    for (double& v : b) v = rng.next_double() * 2 - 1;
    project_mean_zero(b);
    bs.push_back(std::move(b));
  }
  return bs;
}

/// Solves 16 right-hand sides on a fresh solver stack, `batch_size` per
/// solve_batch call, and returns the run's span fingerprint.
std::string run_session_traced(std::size_t batch_size, ThreadPool* pool) {
  Graph g;
  {
    Rng graph_rng(99);
    g = make_weighted_grid(8, 8, graph_rng);
  }
  Rng rng(100);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  const std::vector<Vec> bs = random_batch(16, g.num_nodes(), 555);

  Tracer tracer;
  {
    TraceScope scope(&tracer);
    SolveSession session(solver);
    for (std::size_t start = 0; start < bs.size(); start += batch_size) {
      std::vector<Vec> chunk(bs.begin() + start,
                             bs.begin() + start + batch_size);
      const auto reports = session.solve_batch(chunk, pool);
      for (const auto& report : reports) EXPECT_TRUE(report.converged);
    }
  }
  expect_well_formed(tracer);
  return trace_fingerprint(tracer);
}

class SessionTraceDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SessionTraceDeterminism, FingerprintBitIdenticalAcrossThreadCounts) {
  const std::size_t batch_size = GetParam();
  const std::string serial = run_session_traced(batch_size, nullptr);
  ThreadPool pool1(1);
  const std::string one = run_session_traced(batch_size, &pool1);
  ThreadPool pool4(4);
  const std::string four = run_session_traced(batch_size, &pool4);
  EXPECT_EQ(serial, one);
  EXPECT_EQ(serial, four);
  EXPECT_NE(serial.find("session/rhs"), std::string::npos);
  EXPECT_NE(serial.find("session/batch"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, SessionTraceDeterminism,
                         ::testing::Values(std::size_t{1}, std::size_t{16}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "batch" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dls
