#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/tree_solver.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/laplacian.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

TEST(TreeSolver, ExactOnPath) {
  const Graph g = make_path(10);
  Rng rng(1);
  ShortcutPaOracle oracle(g, rng);
  std::vector<EdgeId> tree(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree[e] = e;
  TreeLaplacianSolver solver(oracle, tree);
  const Vec b = random_rhs(10, rng);
  const Vec x = solver.solve(b);
  const Vec r = sub(b, laplacian_apply(g, x));
  EXPECT_LT(norm2(r), 1e-10);
}

TEST(TreeSolver, MatchesCholeskyOnRandomTrees) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_random_tree(40, rng);
    ShortcutPaOracle oracle(g, rng);
    std::vector<EdgeId> tree(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) tree[e] = e;
    TreeLaplacianSolver solver(oracle, tree);
    const GroundedCholesky chol(g);
    const Vec b = random_rhs(g.num_nodes(), rng);
    EXPECT_LT(relative_error_in_l_norm(g, solver.solve(b), chol.solve(b)), 1e-9);
  }
}

TEST(TreeSolver, SolvesTreeSubsystemOfDenserGraph) {
  // Oracle network is the full grid; the system is its BFS tree.
  const Graph g = make_grid(5, 5);
  Rng rng(3);
  ShortcutPaOracle oracle(g, rng);
  const auto tree = bfs_tree_edges(g, 12);
  TreeLaplacianSolver solver(oracle, tree);
  // Build the tree-only graph to check the residual against.
  Graph tree_g(g.num_nodes());
  for (EdgeId e : tree) {
    tree_g.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).weight);
  }
  const Vec b = random_rhs(g.num_nodes(), rng);
  const Vec x = solver.solve(b);
  EXPECT_LT(norm2(sub(b, laplacian_apply(tree_g, x))), 1e-10);
}

TEST(TreeSolver, ChargesTwoPaCallsPerSolve) {
  const Graph g = make_path(8);
  Rng rng(4);
  ShortcutPaOracle oracle(g, rng);
  std::vector<EdgeId> tree(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) tree[e] = e;
  TreeLaplacianSolver solver(oracle, tree);
  const Vec b = random_rhs(8, rng);
  solver.solve(b);
  EXPECT_EQ(oracle.pa_calls(), 2u);
  const auto rounds_one = oracle.ledger().total_local();
  solver.solve(b);
  EXPECT_EQ(oracle.pa_calls(), 4u);
  EXPECT_EQ(oracle.ledger().total_local(), 2 * rounds_one);
}

TEST(TreeSolver, WeightedTreeExact) {
  Rng rng(5);
  Graph g(6);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 4.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(3, 4, 8.0);
  g.add_edge(3, 5, 1.0);
  ShortcutPaOracle oracle(g, rng);
  std::vector<EdgeId> tree{0, 1, 2, 3, 4};
  TreeLaplacianSolver solver(oracle, tree);
  const GroundedCholesky chol(g);
  const Vec b = random_rhs(6, rng);
  EXPECT_LT(relative_error_in_l_norm(g, solver.solve(b), chol.solve(b)), 1e-9);
}

TEST(TreeSolver, RejectsNonSpanningTree) {
  const Graph g = make_cycle(5);
  Rng rng(6);
  ShortcutPaOracle oracle(g, rng);
  std::vector<EdgeId> cyclic{0, 1, 2, 3, 4};
  EXPECT_THROW(TreeLaplacianSolver(oracle, cyclic), std::invalid_argument);
}

TEST(TreeSolver, RejectsBadRhs) {
  const Graph g = make_path(4);
  Rng rng(7);
  ShortcutPaOracle oracle(g, rng);
  std::vector<EdgeId> tree{0, 1, 2};
  TreeLaplacianSolver solver(oracle, tree);
  EXPECT_THROW(solver.solve({1, 1, 1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace dls
