// Batched multi-RHS solve sessions (docs/BATCHING.md): the determinism
// contract (batch ≡ N sequential solves, bitwise, for every pool), the
// amortized batch charging model, the per-solve accounting fixes, degenerate
// right-hand sides, and the typed tiny-denominator watchdog path. All suite
// names carry the "SolveBatch" prefix so the TSan preset picks them up.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/solvers.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

std::vector<Vec> random_batch(std::size_t k, std::size_t n,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> bs;
  bs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) bs.push_back(random_rhs(n, rng));
  return bs;
}

Graph weighted_grid(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return make_weighted_grid(rows, cols, rng);
}

LaplacianSolverOptions quick_options(double tol = 1e-6) {
  LaplacianSolverOptions options;
  options.tolerance = tol;
  options.base_size = 40;
  return options;
}

/// A fresh, fully deterministic solver stack: everything (chain sampling,
/// oracle measurement) is derived from `seed`, so two Rigs with the same
/// arguments are interchangeable down to the last bit.
struct Rig {
  Graph g;
  Rng rng;
  ShortcutPaOracle oracle;
  DistributedLaplacianSolver solver;

  Rig(Graph graph, std::uint64_t seed,
      const LaplacianSolverOptions& options = quick_options())
      : g(std::move(graph)), rng(seed), oracle(g, rng),
        solver(oracle, rng, options) {}
};

void expect_reports_equal(const LaplacianSolveReport& a,
                          const LaplacianSolveReport& b) {
  EXPECT_EQ(a.x, b.x);  // bitwise, not within-tolerance
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  EXPECT_EQ(a.residual_history, b.residual_history);
  EXPECT_EQ(a.outer_iterations, b.outer_iterations);
  EXPECT_EQ(a.pa_calls, b.pa_calls);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
  EXPECT_EQ(a.global_rounds, b.global_rounds);
  EXPECT_EQ(a.hybrid_rounds, b.hybrid_rounds);
  EXPECT_EQ(a.watchdog.incidents, b.watchdog.incidents);
  EXPECT_EQ(a.watchdog.restarts, b.watchdog.restarts);
  EXPECT_EQ(a.watchdog.refinements, b.watchdog.refinements);
  EXPECT_EQ(a.watchdog.rebounds, b.watchdog.rebounds);
  EXPECT_EQ(a.watchdog.gave_up, b.watchdog.gave_up);
  EXPECT_EQ(a.recovery, b.recovery);
  EXPECT_EQ(a.degraded.has_value(), b.degraded.has_value());
}

// --- Tentpole: batch ≡ sequential, bitwise, for every pool/batch size. ----

TEST(SolveBatchDeterminism, BitIdenticalToSequentialSolves) {
  const Graph g = make_grid(9, 9);
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    const std::vector<Vec> bs = random_batch(k, g.num_nodes(), 1000 + k);
    // Reference: k sequential solve() calls on a fresh solver.
    Rig seq(g, 77);
    std::vector<LaplacianSolveReport> ref;
    for (const Vec& b : bs) ref.push_back(seq.solver.solve(b));
    // Batched, across thread counts (nullptr = inline fan-out).
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                      std::size_t{4}}) {
      Rig bat(g, 77);
      std::vector<LaplacianSolveReport> got;
      if (threads == 0) {
        got = bat.solver.solve_batch(bs, nullptr);
      } else {
        ThreadPool pool(threads);
        got = bat.solver.solve_batch(bs, &pool);
      }
      ASSERT_EQ(got.size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        SCOPED_TRACE("batch=" + std::to_string(k) + " threads=" +
                     std::to_string(threads) + " slot=" + std::to_string(i));
        EXPECT_TRUE(got[i].converged);
        expect_reports_equal(got[i], ref[i]);
      }
    }
  }
}

TEST(SolveBatchDeterminism, BatchLedgerThreadCountInvariant) {
  const Graph g = weighted_grid(8, 8, 5);
  const std::vector<Vec> bs = random_batch(6, g.num_nodes(), 42);

  Rig one(g, 9);
  SolveSession session_one(one.solver);
  ThreadPool pool_one(1);
  const auto r1 = session_one.solve_batch(bs, &pool_one);

  Rig four(g, 9);
  SolveSession session_four(four.solver);
  ThreadPool pool_four(4);
  const auto r4 = session_four.solve_batch(bs, &pool_four);

  // Bit-identical amortized ledgers AND oracle ledgers across thread counts.
  EXPECT_TRUE(session_one.last_batch_ledger() == session_four.last_batch_ledger());
  EXPECT_TRUE(one.oracle.ledger() == four.oracle.ledger());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    expect_reports_equal(r1[i], r4[i]);
  }
  EXPECT_EQ(session_one.batches_run(), 1u);
  EXPECT_EQ(session_one.rhs_solved(), bs.size());
}

// --- Amortized batch charging. --------------------------------------------

TEST(SolveBatchAccounting, SingleRhsBatchChargesSequentialRounds) {
  // A batch of one pipelines nothing: the amortized ledger must equal the
  // slot's own sequential-equivalent accounting exactly.
  const Graph g = make_grid(9, 9);
  Rig rig(g, 21);
  SolveSession session(rig.solver);
  const auto reports = session.solve_batch(random_batch(1, g.num_nodes(), 7));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(session.last_batch_ledger().total_local(),
            reports[0].local_rounds);
  EXPECT_EQ(session.last_batch_ledger().total_global(),
            reports[0].global_rounds);
}

TEST(SolveBatchAccounting, BatchedRoundsBeatSequentialReplay) {
  // The point of batching: k concurrent matvecs over one measured instance
  // are one pipelined congested phase, not k replays.
  const Graph g = make_grid(9, 9);
  const std::size_t k = 8;
  Rig rig(g, 33);
  const std::uint64_t before = rig.oracle.ledger().total_local();
  const auto reports =
      rig.solver.solve_batch(random_batch(k, g.num_nodes(), 11));
  const std::uint64_t batched = rig.oracle.ledger().total_local() - before;
  std::uint64_t replay = 0;
  for (const auto& r : reports) replay += r.local_rounds;
  EXPECT_LT(batched, replay);
  EXPECT_GT(batched, 0u);
  // The absorbed entries carry the batch prefix.
  bool saw_batch_entry = false;
  for (const LedgerEntry& e : rig.oracle.ledger().entries()) {
    if (e.label.rfind("batch/", 0) == 0) saw_batch_entry = true;
  }
  EXPECT_TRUE(saw_batch_entry);
}

// --- Satellite: repeated solve() accounting. ------------------------------

TEST(SolveBatchRegression, BackToBackSolvesIdenticalReports) {
  const Graph g = weighted_grid(8, 8, 6);
  Rig rig(g, 55);
  Rng rhs_rng(19);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport first = rig.solver.solve(b);
  const auto stats_first = rig.solver.level_stats();
  const LaplacianSolveReport second = rig.solver.solve(b);
  const auto stats_second = rig.solver.level_stats();
  EXPECT_TRUE(first.converged);
  expect_reports_equal(first, second);
  // level_stats() snapshots the most recent call; nothing accumulates.
  ASSERT_EQ(stats_first.size(), stats_second.size());
  for (std::size_t l = 0; l < stats_first.size(); ++l) {
    EXPECT_EQ(stats_first[l].pa_retries, stats_second[l].pa_retries);
    EXPECT_EQ(stats_first[l].pa_rebuilds, stats_second[l].pa_rebuilds);
    EXPECT_EQ(stats_first[l].pa_degradations,
              stats_second[l].pa_degradations);
    EXPECT_EQ(stats_first[l].checkpoints_restored,
              stats_second[l].checkpoints_restored);
  }
}

TEST(SolveBatchRegression, SolveAfterBatchMatchesSolveBefore) {
  // Interleaving a batch between two sequential solves must not disturb the
  // sequential path's delta-based accounting.
  const Graph g = make_grid(9, 9);
  Rig rig(g, 71);
  Rng rhs_rng(23);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport before = rig.solver.solve(b);
  rig.solver.solve_batch(random_batch(4, g.num_nodes(), 29));
  const LaplacianSolveReport after = rig.solver.solve(b);
  expect_reports_equal(before, after);
}

// --- Satellite: degenerate right-hand sides. ------------------------------

TEST(SolveBatchDegenerate, ZeroAndConstantRhs) {
  const Graph g = make_grid(6, 6);
  for (const double fill : {0.0, 3.25}) {
    Rig rig(g, 81);
    const LaplacianSolveReport report =
        rig.solver.solve(Vec(g.num_nodes(), fill));
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.outer_iterations, 0u);
    EXPECT_EQ(report.relative_residual, 0.0);
    EXPECT_EQ(norm2(report.x), 0.0);
    EXPECT_TRUE(report.residual_history.empty());
    EXPECT_GT(report.local_rounds, 0u);  // ‖b‖ dot + certificate
    EXPECT_GT(report.pa_calls, 0u);
  }
}

TEST(SolveBatchDegenerate, NonMeanZeroRhsIsProjected) {
  const Graph g = make_grid(7, 7);
  Rig rig(g, 83);
  Rng rhs_rng(31);
  Vec b = random_rhs(g.num_nodes(), rhs_rng);
  for (double& v : b) v += 0.75;  // push b out of range(L)
  const LaplacianSolveReport report = rig.solver.solve(b);
  EXPECT_TRUE(report.converged);
  // The solve answered L x = Πb: check against a tight sequential reference.
  Vec projected = b;
  project_mean_zero(projected);
  SolveOptions ref_options;
  ref_options.tolerance = 1e-12;
  const SolveResult ref = solve_laplacian_cg(g, projected, ref_options);
  EXPECT_LT(relative_error_in_l_norm(g, report.x, ref.x), 1e-4);
}

TEST(SolveBatchDegenerate, MixedBatchHandlesDegenerateSlots) {
  const Graph g = make_grid(6, 6);
  std::vector<Vec> bs;
  bs.push_back(Vec(g.num_nodes(), 0.0));  // zero
  Rng rhs_rng(37);
  bs.push_back(random_rhs(g.num_nodes(), rhs_rng));  // healthy
  bs.push_back(Vec(g.num_nodes(), -1.5));            // constant
  Rig rig(g, 85);
  ThreadPool pool(4);
  const auto reports = rig.solver.solve_batch(bs, &pool);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) EXPECT_TRUE(r.converged);
  EXPECT_EQ(norm2(reports[0].x), 0.0);
  EXPECT_EQ(norm2(reports[2].x), 0.0);
  EXPECT_GT(norm2(reports[1].x), 0.0);
}

// --- Satellite: typed tiny-denominator watchdog path. ---------------------

TEST(SolveBatchWatchdog, TinyDenominatorRaisesTypedSignal) {
  // Force the trip deterministically: with denominator_limit ≪ 1 the healthy
  // first PCG step (alpha = rz/pap of order 1) already violates the bound.
  const Graph g = make_grid(9, 9);
  LaplacianSolverOptions options = quick_options();
  options.watchdog.denominator_limit = 1e-3;
  Rig rig(g, 91, options);
  Rng rhs_rng(41);
  const LaplacianSolveReport report =
      rig.solver.solve(random_rhs(g.num_nodes(), rhs_rng));
  EXPECT_TRUE(report.watchdog.triggered());
  bool saw_tiny = false;
  for (const WatchdogIncident& incident : report.watchdog.incidents) {
    if (incident.signal == WatchdogSignal::kTinyDenominator) saw_tiny = true;
  }
  EXPECT_TRUE(saw_tiny);
  // The remediation is typed on the ledger, never a silent break.
  EXPECT_GT(report.recovery.watchdog_restarts, 0u);
  bool saw_typed_event = false;
  for (const RecoveryEvent& e : rig.oracle.ledger().recovery_events()) {
    if (e.action == RecoveryAction::kWatchdogRestart &&
        e.detail == "tiny-denominator") {
      saw_typed_event = true;
    }
  }
  EXPECT_TRUE(saw_typed_event);
}

TEST(SolveBatchWatchdog, NearSingularPathEndsTypedOrConverged) {
  // Weighted path with a 12-orders-of-magnitude weight cliff: the grounded
  // system is near-singular, the worst case for the PCG divisors. The
  // contract is "no silent failure": the solve either converges or leaves a
  // typed trace (watchdog incidents or a degraded result) — and the iterate
  // stays finite either way.
  const std::size_t n = 64;
  Graph g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(v + 1),
               v % 2 == 0 ? 1.0 : 1e-12);
  }
  Rig rig(std::move(g), 93);
  Rng rhs_rng(43);
  Vec b = random_rhs(n, rhs_rng);
  const LaplacianSolveReport report = rig.solver.solve(b);
  // The iterate and the report stay honest: x is finite, the reported
  // residual matches an independent recomputation (no stale iterate behind a
  // stale number), and a success claim is backed by the certificate bound.
  EXPECT_TRUE(all_finite(report.x));
  project_mean_zero(b);
  const Vec residual = sub(b, laplacian_apply(rig.g, report.x));
  const double rel = norm2(residual) / norm2(b);
  EXPECT_NEAR(report.relative_residual, rel, 1e-9 * (1.0 + rel));
  if (report.converged) {
    EXPECT_LE(report.relative_residual, 2e-6 + 1e-12);
  } else {
    // Non-convergence is typed or budget-bound, never a silent early break:
    // with a watchdog attached the pap<=0 escape no longer exists.
    EXPECT_TRUE(report.watchdog.triggered() || report.degraded.has_value() ||
                report.outer_iterations > 0);
    EXPECT_FALSE(report.residual_history.empty());
  }
}

// --- Chebyshev eigenbound reuse (session opt-in). -------------------------

TEST(SolveBatchChebyshev, EigenboundReuseSkipsPowerIterations) {
  const Graph g = make_grid(9, 9);
  LaplacianSolverOptions options = quick_options(1e-5);
  options.outer = OuterIteration::kChebyshev;
  Rig rig(g, 95, options);
  SolveSessionOptions session_options;
  session_options.reuse_chebyshev_eigenbounds = true;
  SolveSession session(rig.solver, session_options);
  // Identical rhs in every slot: the bound slot 0 publishes is exactly the
  // bound the others would have estimated, so the ONLY difference between
  // slot 0 and the rest is the charged power iteration the rest skip.
  Rng rhs_rng(47);
  const std::vector<Vec> bs(3, random_rhs(g.num_nodes(), rhs_rng));
  const auto reports = session.solve_batch(bs);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) EXPECT_TRUE(r.converged);
  // Slot 0 paid the charged power iteration; later slots reused its bound.
  EXPECT_LT(reports[1].pa_calls, reports[0].pa_calls);
  EXPECT_LT(reports[1].local_rounds, reports[0].local_rounds);
  // Same rhs + same bound → slots 1 and 2 are bit-identical.
  expect_reports_equal(reports[1], reports[2]);
  EXPECT_EQ(reports[1].x, reports[0].x);  // same trajectory after the bound
}

}  // namespace
}  // namespace dls
