#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace dls {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(1);
  const Graph g = make_weighted_grid(4, 5, rng);
  std::stringstream buffer;
  write_graph(buffer, g, "weighted grid");
  const Graph parsed = read_graph(buffer);
  ASSERT_EQ(parsed.num_nodes(), g.num_nodes());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(parsed.edge(e).u, g.edge(e).u);
    EXPECT_EQ(parsed.edge(e).v, g.edge(e).v);
    EXPECT_DOUBLE_EQ(parsed.edge(e).weight, g.edge(e).weight);
  }
}

TEST(GraphIo, ParsesCommentsAndDefaults) {
  std::stringstream in(
      "# a triangle\n"
      "p 3\n"
      "e 0 1\n"
      "e 1 2 2.5\n"
      "e 0 2\n");
  const Graph g = read_graph(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 2.5);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream in("e 0 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // edge before header
  }
  {
    std::stringstream in("p 2\ne 0 5\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // out of range
  }
  {
    std::stringstream in("p 2\ne 1 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // self-loop
  }
  {
    std::stringstream in("p 2\nq 0 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // unknown record
  }
  {
    std::stringstream in("p 2\ne 0 1 -2\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // bad weight
  }
  {
    std::stringstream in("# nothing\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // missing header
  }
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = make_cycle(7);
  const std::string path = "/tmp/dls_graph_io_test.txt";
  write_graph_file(path, g);
  const Graph parsed = read_graph_file(path);
  EXPECT_EQ(parsed.num_nodes(), 7u);
  EXPECT_EQ(parsed.num_edges(), 7u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/path/graph.txt"),
               std::invalid_argument);
}

TEST(PreferentialAttachment, StructureAndConnectivity) {
  Rng rng(2);
  const Graph g = make_preferential_attachment(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_TRUE(is_connected(g));
  // Seed K4 (6 edges) plus m = 3 edges per each of the remaining nodes.
  EXPECT_EQ(g.num_edges(), 6u + (200 - 4) * 3);
}

TEST(PreferentialAttachment, SmallDiameter) {
  Rng rng(3);
  const Graph g = make_preferential_attachment(400, 3, rng);
  EXPECT_LE(exact_diameter(g), 8u);  // "social network" folklore: D = O(log n)
}

TEST(PreferentialAttachment, HubsEmerge) {
  Rng rng(4);
  const Graph g = make_preferential_attachment(300, 2, rng);
  std::size_t max_deg = g.max_degree();
  EXPECT_GE(max_deg, 12u);  // heavy-tailed degree distribution
}

}  // namespace
}  // namespace dls
