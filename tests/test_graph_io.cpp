#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace dls {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(1);
  const Graph g = make_weighted_grid(4, 5, rng);
  std::stringstream buffer;
  write_graph(buffer, g, "weighted grid");
  const Graph parsed = read_graph(buffer);
  ASSERT_EQ(parsed.num_nodes(), g.num_nodes());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(parsed.edge(e).u, g.edge(e).u);
    EXPECT_EQ(parsed.edge(e).v, g.edge(e).v);
    EXPECT_DOUBLE_EQ(parsed.edge(e).weight, g.edge(e).weight);
  }
}

TEST(GraphIo, ParsesCommentsAndDefaults) {
  std::stringstream in(
      "# a triangle\n"
      "p 3\n"
      "e 0 1\n"
      "e 1 2 2.5\n"
      "e 0 2\n");
  const Graph g = read_graph(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 2.5);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream in("e 0 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // edge before header
  }
  {
    std::stringstream in("p 2\ne 0 5\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // out of range
  }
  {
    std::stringstream in("p 2\ne 1 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // self-loop
  }
  {
    std::stringstream in("p 2\nq 0 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // unknown record
  }
  {
    std::stringstream in("p 2\ne 0 1 -2\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // bad weight
  }
  {
    std::stringstream in("# nothing\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // missing header
  }
}

// Failure-path coverage: every malformed input must produce a clear
// std::invalid_argument that names the offending line — never UB, never a
// silently wrong graph.
TEST(GraphIo, RejectsMalformedEdgeLines) {
  const auto expect_error_mentioning = [](const std::string& text,
                                          const std::string& needle) {
    std::stringstream in(text);
    try {
      read_graph(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "error '" << error.what() << "' should mention '" << needle
          << "' for input: " << text;
    }
  };
  expect_error_mentioning("p 3\ne 0\n", "two endpoints");
  expect_error_mentioning("p 3\ne zero one\n", "non-negative integers");
  expect_error_mentioning("p 3\ne -1 2\n", "non-negative integers");
  expect_error_mentioning("p 3\ne 0 1 2.5 junk\n", "trailing token");
  expect_error_mentioning("p 3\ne 0 1 abc\n", "finite number");
  expect_error_mentioning("p 3\ne 0 1 nan\n", "finite number");
  expect_error_mentioning("p 3\ne 0 1 inf\n", "finite number");
  // Errors carry the 1-based line number of the offending line.
  expect_error_mentioning("# ok\np 3\ne 0 1\ne 0\n", "line 4");
}

TEST(GraphIo, RejectsDuplicateEdges) {
  {
    std::stringstream in("p 3\ne 0 1\ne 1 2\ne 0 1\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);
  }
  {
    // Also when reversed: {1, 0} duplicates {0, 1}.
    std::stringstream in("p 3\ne 0 1\ne 1 0\n");
    try {
      read_graph(in);
      FAIL() << "reversed duplicate accepted";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("duplicate edge"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(GraphIo, RejectsMalformedHeaders) {
  {
    std::stringstream in("p -3\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // negative count
  }
  {
    std::stringstream in("p many\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // non-numeric
  }
  {
    std::stringstream in("p 3 junk\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // trailing token
  }
  {
    std::stringstream in("p 3\np 3\n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);  // duplicate header
  }
}

TEST(GraphIo, RejectsEmptyInput) {
  {
    std::stringstream in("");
    EXPECT_THROW(read_graph(in), std::invalid_argument);
  }
  {
    std::stringstream in("\n\n   \n");
    EXPECT_THROW(read_graph(in), std::invalid_argument);
  }
  {
    // An empty graph with an explicit header is fine, though.
    std::stringstream in("p 0\n");
    const Graph g = read_graph(in);
    EXPECT_EQ(g.num_nodes(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
  }
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = make_cycle(7);
  const std::string path = "/tmp/dls_graph_io_test.txt";
  write_graph_file(path, g);
  const Graph parsed = read_graph_file(path);
  EXPECT_EQ(parsed.num_nodes(), 7u);
  EXPECT_EQ(parsed.num_edges(), 7u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/path/graph.txt"),
               std::invalid_argument);
}

TEST(PreferentialAttachment, StructureAndConnectivity) {
  Rng rng(2);
  const Graph g = make_preferential_attachment(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_TRUE(is_connected(g));
  // Seed K4 (6 edges) plus m = 3 edges per each of the remaining nodes.
  EXPECT_EQ(g.num_edges(), 6u + (200 - 4) * 3);
}

TEST(PreferentialAttachment, SmallDiameter) {
  Rng rng(3);
  const Graph g = make_preferential_attachment(400, 3, rng);
  EXPECT_LE(exact_diameter(g), 8u);  // "social network" folklore: D = O(log n)
}

TEST(PreferentialAttachment, HubsEmerge) {
  Rng rng(4);
  const Graph g = make_preferential_attachment(300, 2, rng);
  std::size_t max_deg = g.max_degree();
  EXPECT_GE(max_deg, 12u);  // heavy-tailed degree distribution
}

}  // namespace
}  // namespace dls
