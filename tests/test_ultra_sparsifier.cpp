#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/ultra_sparsifier.hpp"
#include "linalg/laplacian.hpp"
#include "util/stats.hpp"

namespace dls {
namespace {

TEST(UltraSparsifier, TreeAlwaysKept) {
  Rng rng(1);
  const Graph g = make_grid(6, 6);
  const MinorGraph minor = MinorGraph::identity(g);
  const UltraSparsifier us = build_ultra_sparsifier(minor, 5.0, rng);
  EXPECT_EQ(us.tree_edge_indices.size(), g.num_nodes() - 1);
  const Graph view = us.sparsifier.as_graph();
  EXPECT_TRUE(is_connected(view));
  EXPECT_EQ(view.num_nodes(), g.num_nodes());
}

TEST(UltraSparsifier, ZeroBudgetKeepsBareTree) {
  Rng rng(2);
  const Graph g = make_torus(5, 5);
  const MinorGraph minor = MinorGraph::identity(g);
  const UltraSparsifier us = build_ultra_sparsifier(minor, 0.0, rng);
  EXPECT_EQ(us.off_tree_kept, 0u);
  EXPECT_EQ(us.sparsifier.edges.size(), g.num_nodes() - 1);
}

TEST(UltraSparsifier, BudgetRoughlyRespected) {
  Rng rng(3);
  const Graph g = make_grid(10, 10);
  const MinorGraph minor = MinorGraph::identity(g);
  Summary off_kept;
  std::vector<double> counts;
  for (int trial = 0; trial < 10; ++trial) {
    const UltraSparsifier us = build_ultra_sparsifier(minor, 12.0, rng);
    counts.push_back(static_cast<double>(us.off_tree_kept));
  }
  off_kept = summarize(counts);
  EXPECT_GT(off_kept.mean, 3.0);
  EXPECT_LT(off_kept.mean, 40.0);
}

TEST(UltraSparsifier, SpectralDominance) {
  // The sparsifier Laplacian satisfies L_S ⪯ c·L_G in expectation shape:
  // check the quadratic form does not explode on random vectors (loose
  // sanity rather than a spectral proof).
  Rng rng(4);
  const Graph g = make_grid(8, 8);
  const MinorGraph minor = MinorGraph::identity(g);
  const UltraSparsifier us = build_ultra_sparsifier(minor, 10.0, rng);
  const Graph s = us.sparsifier.as_graph();
  for (int trial = 0; trial < 5; ++trial) {
    Vec x(g.num_nodes());
    for (double& v : x) v = rng.next_double();
    const double qg = laplacian_quadratic_form(g, x);
    const double qs = laplacian_quadratic_form(s, x);
    EXPECT_GT(qs, 0.0);
    // Tree alone underestimates; sampled edges are reweighted by 1/p, so a
    // generous two-sided multiplicative envelope applies.
    EXPECT_LT(qs, 50.0 * qg);
    EXPECT_GT(50.0 * qs, qg);
  }
}

TEST(UltraSparsifier, PreservesHostAnnotations) {
  Rng rng(5);
  const Graph g = make_grid(4, 4);
  const MinorGraph minor = MinorGraph::identity(g);
  const UltraSparsifier us = build_ultra_sparsifier(minor, 4.0, rng);
  EXPECT_TRUE(us.sparsifier.validate(g));
  EXPECT_EQ(us.sparsifier.host, minor.host);
}

TEST(UltraSparsifier, TotalStretchPositive) {
  Rng rng(6);
  const Graph g = make_random_regular(32, 4, rng);
  const MinorGraph minor = MinorGraph::identity(g);
  const UltraSparsifier us = build_ultra_sparsifier(minor, 8.0, rng);
  EXPECT_GE(us.total_stretch, static_cast<double>(g.num_nodes() - 1));
}

}  // namespace
}  // namespace dls
