#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/mincut.hpp"

namespace dls {
namespace {

TEST(StoerWagner, BridgeIsTheMinCut) {
  const Graph g = make_barbell(12);  // two K6 joined by a unit bridge
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 1.0);
}

TEST(StoerWagner, CycleCutsTwoEdges) {
  const Graph g = make_cycle(9);
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 2.0);
}

TEST(StoerWagner, CompleteGraphCutsDegree) {
  const Graph g = make_complete(7);
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 6.0);
}

TEST(StoerWagner, GridCornerDegree) {
  const Graph g = make_grid(4, 5);
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 2.0);
}

TEST(StoerWagner, WeightedBottleneck) {
  Graph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 0.5);
  g.add_edge(2, 3, 5.0);
  g.add_edge(0, 2, 0.25);
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 0.75);
}

TEST(StoerWagner, ParallelEdgesMerge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(min_cut_stoer_wagner(g), 2.0);
}

TEST(CutWeight, CountsCrossingEdges) {
  const Graph g = make_cycle(4);
  std::vector<char> side{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(cut_weight(g, side), 2.0);
}

TEST(ApproxMinCut, FindsTheBridgeExactly) {
  // Any spanning tree contains the bridge, and its one-edge cut is optimal,
  // so a single trial nails it.
  const Graph g = make_barbell(12);
  Rng rng(1);
  ShortcutPaOracle oracle(g, rng);
  const ApproxMinCutResult result = approx_min_cut(oracle, rng, 2);
  EXPECT_DOUBLE_EQ(result.cut_value, 1.0);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
  EXPECT_NEAR(cut_weight(g, result.side), result.cut_value, 1e-9);
  EXPECT_GT(result.pa_calls, 0u);
  EXPECT_GT(result.local_rounds, 0u);
}

TEST(ApproxMinCut, CycleWithinFactorTwo) {
  // One-tree-edge cuts of a cycle's spanning path have value 2 except at
  // the endpoints; the optimum is 2 — any trial is exact or off by the
  // single boundary case.
  const Graph g = make_cycle(12);
  Rng rng(2);
  ShortcutPaOracle oracle(g, rng);
  const ApproxMinCutResult result = approx_min_cut(oracle, rng, 4);
  EXPECT_GE(result.ratio, 1.0);
  EXPECT_LE(result.ratio, 1.0 + 1e-9);  // cycle cuts are all ≥ 2 and tree hits 2
}

TEST(ApproxMinCut, GridReasonableRatio) {
  const Graph g = make_grid(6, 6);
  Rng rng(3);
  ShortcutPaOracle oracle(g, rng);
  const ApproxMinCutResult result = approx_min_cut(oracle, rng, 8);
  EXPECT_GE(result.ratio, 1.0);
  EXPECT_LE(result.ratio, 2.5);
  EXPECT_NEAR(cut_weight(g, result.side), result.cut_value, 1e-9);
}

TEST(ApproxMinCut, MoreTrialsNeverWorse) {
  Rng rng(4);
  const Graph g = make_weighted_grid(5, 5, rng);
  double few, many;
  {
    Rng r(7);
    ShortcutPaOracle oracle(g, r);
    few = approx_min_cut(oracle, r, 1).cut_value;
  }
  {
    Rng r(7);
    ShortcutPaOracle oracle(g, r);
    many = approx_min_cut(oracle, r, 10).cut_value;
  }
  EXPECT_LE(many, few + 1e-9);
}

TEST(ApproxMinCut, WorksUnderNccOracle) {
  const Graph g = make_barbell(10);
  Rng rng(5);
  NccPaOracle oracle(g, rng);
  const ApproxMinCutResult result = approx_min_cut(oracle, rng, 2);
  EXPECT_DOUBLE_EQ(result.cut_value, 1.0);
  EXPECT_GT(result.global_rounds, 0u);
}

class MinCutSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinCutSweep, UpperBoundsExactAcrossSeeds) {
  Rng rng(200 + GetParam());
  const Graph g = make_weighted_grid(5, 6, rng, 1.0, 4.0);
  ShortcutPaOracle oracle(g, rng);
  const ApproxMinCutResult result = approx_min_cut(oracle, rng, 6);
  EXPECT_GE(result.cut_value + 1e-9, result.exact_value);
  EXPECT_LE(result.ratio, 3.0);
  EXPECT_NEAR(cut_weight(g, result.side), result.cut_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace dls
