#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"

namespace dls {
namespace {

TEST(Partition, CongestionOfDisjointPartsIsOne) {
  const Graph g = make_grid(4, 4);
  const PartCollection pc = grid_row_partition(4, 4);
  EXPECT_EQ(congestion(g, pc), 1u);
  EXPECT_TRUE(is_valid_part_collection(g, pc, /*require_disjoint=*/true));
}

TEST(Partition, ValidatorRejectsDisconnectedPart) {
  const Graph g = make_path(5);
  PartCollection pc;
  pc.parts = {{0, 4}};
  EXPECT_FALSE(is_valid_part_collection(g, pc));
}

TEST(Partition, ValidatorRejectsRepeatedNodeWithinPart) {
  const Graph g = make_path(3);
  PartCollection pc;
  pc.parts = {{0, 1, 0}};
  EXPECT_FALSE(is_valid_part_collection(g, pc));
}

TEST(Partition, ValidatorRejectsEmptyPart) {
  const Graph g = make_path(3);
  PartCollection pc;
  pc.parts = {{}};
  EXPECT_FALSE(is_valid_part_collection(g, pc));
}

TEST(Partition, VoronoiCoversAllNodesDisjointly) {
  Rng rng(1);
  const Graph g = make_grid(6, 6);
  const PartCollection pc = random_voronoi_partition(g, 5, rng);
  EXPECT_TRUE(is_valid_part_collection(g, pc, true));
  std::size_t covered = 0;
  for (const auto& part : pc.parts) covered += part.size();
  EXPECT_EQ(covered, g.num_nodes());
}

TEST(Partition, VoronoiPartsConnected) {
  Rng rng(2);
  const Graph g = make_random_regular(40, 4, rng);
  for (std::size_t k : {2u, 5u, 10u}) {
    const PartCollection pc = random_voronoi_partition(g, k, rng);
    EXPECT_TRUE(is_valid_part_collection(g, pc, true)) << "k=" << k;
  }
}

TEST(Partition, Figure1InstanceHasCongestionTwo) {
  // The Observation 14 instance: every two adjacent diagonal parts share a
  // node, so it cannot split into two 1-congested instances of few parts.
  for (std::size_t side : {4u, 6u, 8u}) {
    const Graph g = make_grid(side, side);
    const PartCollection pc = figure1_diagonal_instance(side);
    EXPECT_EQ(congestion(g, pc), 2u) << side;
    EXPECT_TRUE(is_valid_part_collection(g, pc)) << side;
    EXPECT_EQ(pc.num_parts(), 2 * side - 2) << side;
  }
}

TEST(Partition, Figure1AdjacentPartsOverlap) {
  const std::size_t side = 6;
  const PartCollection pc = figure1_diagonal_instance(side);
  for (std::size_t d = 0; d + 1 < pc.num_parts(); ++d) {
    std::set<NodeId> a(pc.parts[d].begin(), pc.parts[d].end());
    bool overlap = false;
    for (NodeId v : pc.parts[d + 1]) overlap |= a.count(v) > 0;
    EXPECT_TRUE(overlap) << "parts " << d << " and " << d + 1;
  }
}

TEST(Partition, StackedVoronoiRespectsRho) {
  Rng rng(3);
  const Graph g = make_grid(5, 5);
  const PartCollection pc = stacked_voronoi_instance(g, 3, 4, rng);
  EXPECT_LE(congestion(g, pc), 4u);
  EXPECT_TRUE(is_valid_part_collection(g, pc));
}

TEST(Partition, RandomPathInstanceSimplePathsAndCongestion) {
  Rng rng(4);
  const Graph g = make_grid(6, 6);
  const PartCollection pc = random_path_instance(g, 10, 8, 3, rng);
  EXPECT_LE(congestion(g, pc), 3u);
  EXPECT_TRUE(is_valid_part_collection(g, pc));
  for (const auto& part : pc.parts) {
    std::set<NodeId> unique(part.begin(), part.end());
    EXPECT_EQ(unique.size(), part.size());  // simple
    EXPECT_LE(part.size(), 8u);
  }
}

class VoronoiSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(VoronoiSweep, AlwaysValidDisjoint) {
  const auto [k, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_torus(6, 6);
  const PartCollection pc = random_voronoi_partition(g, k, rng);
  EXPECT_TRUE(is_valid_part_collection(g, pc, true));
}

INSTANTIATE_TEST_SUITE_P(Sweep, VoronoiSweep,
                         ::testing::Combine(::testing::Values(1, 3, 9, 18),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace dls
