#include <gtest/gtest.h>

#include "sim/ncc.hpp"

namespace dls {
namespace {

TEST(NccNetwork, DefaultCapacityIsLogN) {
  NccNetwork net(1024);
  EXPECT_EQ(net.capacity(), 10u);
  NccNetwork small(2);
  EXPECT_EQ(small.capacity(), 1u);
}

TEST(NccNetwork, DeliversWithinCapacity) {
  NccNetwork net(8, 2);
  net.send({0, 5, 7, 1.5});
  net.send({1, 5, 8, 2.5});
  net.step();
  EXPECT_EQ(net.inbox(5).size(), 2u);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(NccNetwork, EnforcesSenderCapacity) {
  NccNetwork net(8, 2);
  net.send({0, 1, 0, 0.0});
  net.send({0, 2, 0, 0.0});
  EXPECT_THROW(net.send({0, 3, 0, 0.0}), std::invalid_argument);
}

TEST(NccNetwork, SenderCapacityResetsEachRound) {
  NccNetwork net(8, 1);
  net.send({0, 1, 0, 0.0});
  net.step();
  net.send({0, 2, 0, 0.0});  // new round: fine
  net.step();
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NccNetwork, DropsExcessAtReceiverDeterministically) {
  NccNetwork net(8, 2);
  for (NodeId s = 0; s < 5; ++s) net.send({s, 7, 0, static_cast<double>(s)});
  net.step();
  ASSERT_EQ(net.inbox(7).size(), 2u);
  // Lowest sender ids win under the fixed adversarial rule.
  EXPECT_EQ(net.inbox(7)[0].from, 0u);
  EXPECT_EQ(net.inbox(7)[1].from, 1u);
  EXPECT_EQ(net.messages_dropped(), 3u);
}

TEST(NccAggregate, SinglePartSum) {
  std::vector<NccPart> parts(1);
  for (NodeId v = 0; v < 16; ++v) {
    parts[0].members.push_back(v);
    parts[0].values.push_back(1.0);
  }
  Rng rng(1);
  const auto outcome =
      ncc_partwise_aggregate(16, parts, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 16.0);
  EXPECT_GT(outcome.rounds, 0u);
}

TEST(NccAggregate, SingleMemberPartIsFree) {
  std::vector<NccPart> parts(1);
  parts[0].members = {3};
  parts[0].values = {42.0};
  Rng rng(2);
  const auto outcome =
      ncc_partwise_aggregate(8, parts, AggregationMonoid::sum(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 42.0);
  EXPECT_EQ(outcome.rounds, 0u);
}

TEST(NccAggregate, ManyOverlappingParts) {
  // ρ parts all containing every node: the congested case of Lemma 26.
  constexpr std::size_t n = 24;
  constexpr std::size_t rho = 6;
  std::vector<NccPart> parts(rho);
  Rng rng(3);
  for (std::size_t p = 0; p < rho; ++p) {
    for (NodeId v = 0; v < n; ++v) {
      parts[p].members.push_back(v);
      parts[p].values.push_back(static_cast<double>(p));
    }
  }
  EXPECT_EQ(ncc_congestion(n, parts), rho);
  const auto outcome =
      ncc_partwise_aggregate(n, parts, AggregationMonoid::sum(), rng);
  for (std::size_t p = 0; p < rho; ++p) {
    EXPECT_DOUBLE_EQ(outcome.results[p], static_cast<double>(p * n));
  }
}

TEST(NccAggregate, MinAndMaxMonoids) {
  std::vector<NccPart> parts(2);
  parts[0].members = {0, 1, 2, 3};
  parts[0].values = {5.0, 3.0, 8.0, 6.0};
  parts[1].members = {2, 3, 4, 5};
  parts[1].values = {1.0, 9.0, 2.0, 7.0};
  Rng rng(4);
  const auto mins = ncc_partwise_aggregate(8, parts, AggregationMonoid::min(), rng);
  EXPECT_DOUBLE_EQ(mins.results[0], 3.0);
  EXPECT_DOUBLE_EQ(mins.results[1], 1.0);
  Rng rng2(4);
  const auto maxs =
      ncc_partwise_aggregate(8, parts, AggregationMonoid::max(), rng2);
  EXPECT_DOUBLE_EQ(maxs.results[0], 8.0);
  EXPECT_DOUBLE_EQ(maxs.results[1], 9.0);
}

TEST(NccAggregate, RoundsScaleGentlyWithCongestion) {
  // Lemma 26: rounds = O(ρ + log n). Doubling ρ must not blow rounds up by
  // more than ~linear.
  constexpr std::size_t n = 64;
  Rng rng(5);
  std::vector<std::uint64_t> rounds;
  for (std::size_t rho : {1u, 4u, 16u}) {
    std::vector<NccPart> parts(rho);
    for (std::size_t p = 0; p < rho; ++p) {
      for (NodeId v = 0; v < n; ++v) {
        parts[p].members.push_back(v);
        parts[p].values.push_back(1.0);
      }
    }
    const auto outcome =
        ncc_partwise_aggregate(n, parts, AggregationMonoid::sum(), rng);
    rounds.push_back(outcome.rounds);
  }
  // ρ went 1 → 16; O(ρ + log n) allows at most ~(16 + 6)/(1 + 6) ≈ 4x plus
  // scheduling noise.
  EXPECT_LT(rounds[2], rounds[0] * 16);
}

TEST(NccAggregate, CongestionHelper) {
  std::vector<NccPart> parts(2);
  parts[0].members = {0, 1};
  parts[0].values = {0, 0};
  parts[1].members = {1, 2};
  parts[1].values = {0, 0};
  EXPECT_EQ(ncc_congestion(4, parts), 2u);
}

TEST(NccAggregate, RejectsDuplicateMembersWithinPart) {
  std::vector<NccPart> parts(1);
  parts[0].members = {0, 1, 0};
  parts[0].values = {1.0, 2.0, 3.0};
  Rng rng(7);
  EXPECT_THROW(
      ncc_partwise_aggregate(4, parts, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

TEST(NccAggregate, RejectsMisalignedValues) {
  std::vector<NccPart> parts(1);
  parts[0].members = {0, 1};
  parts[0].values = {1.0};
  Rng rng(6);
  EXPECT_THROW(
      ncc_partwise_aggregate(4, parts, AggregationMonoid::sum(), rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace dls
