#include <gtest/gtest.h>

#include "congested_pa/euler_paths.hpp"
#include "congested_pa/heavy_paths.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"

namespace dls {
namespace {

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes[v] = v;
  return nodes;
}

TEST(EulerPaths, PathPartIsOneSegment) {
  const Graph g = make_path(8);
  const EulerPathDecomposition epd = euler_path_decomposition(g, all_nodes(g));
  EXPECT_TRUE(is_valid_euler_decomposition(g, all_nodes(g), epd));
  // The tour walks 0..7 and back; the forward walk is one simple segment.
  EXPECT_GE(epd.segments.size(), 1u);
  EXPECT_EQ(epd.segments[0].size(), 8u);
}

TEST(EulerPaths, SingleNodePart) {
  const Graph g = make_path(4);
  const std::vector<NodeId> part{2};
  const EulerPathDecomposition epd = euler_path_decomposition(g, part);
  EXPECT_TRUE(is_valid_euler_decomposition(g, part, epd));
  EXPECT_EQ(epd.segments.size(), 1u);
}

TEST(EulerPaths, StarDecomposesIntoLegPairs) {
  const Graph g = make_star(6);
  const EulerPathDecomposition epd = euler_path_decomposition(g, all_nodes(g));
  EXPECT_TRUE(is_valid_euler_decomposition(g, all_nodes(g), epd));
  // Tour: hub-leaf-hub-leaf-... — every segment has ≤ 3 nodes.
  for (const auto& seg : epd.segments) EXPECT_LE(seg.size(), 3u);
}

TEST(EulerPaths, FirstOccurrenceCoversEachNodeOnce) {
  Rng rng(1);
  const Graph g = make_random_tree(24, rng);
  const EulerPathDecomposition epd = euler_path_decomposition(g, all_nodes(g));
  EXPECT_TRUE(is_valid_euler_decomposition(g, all_nodes(g), epd));
  std::set<std::pair<std::uint32_t, std::uint32_t>> slots(
      epd.first_occurrence.begin(), epd.first_occurrence.end());
  EXPECT_EQ(slots.size(), g.num_nodes());  // distinct slots
}

TEST(EulerPaths, ValidOnVoronoiParts) {
  Rng rng(2);
  const Graph g = make_grid(6, 6);
  const PartCollection pc = random_voronoi_partition(g, 5, rng);
  for (const auto& part : pc.parts) {
    const EulerPathDecomposition epd = euler_path_decomposition(g, part);
    EXPECT_TRUE(is_valid_euler_decomposition(g, part, epd));
  }
}

TEST(EulerPaths, CongestionInflationVsHeavyPaths) {
  // The documented trade-off: Euler segments multiply node occurrences by
  // tree degree, heavy paths keep exactly one occurrence per part.
  const Graph g = make_star(16);
  std::vector<std::vector<NodeId>> parts{all_nodes(g)};
  const std::size_t euler_congestion = euler_segment_congestion(g, parts);
  // One part → heavy-path congestion is 1 per node; Euler re-visits the hub
  // once per leaf.
  EXPECT_GE(euler_congestion, 8u);
  const HeavyPathDecomposition hpd = heavy_path_decomposition(g, parts[0]);
  std::vector<std::size_t> hp_load(g.num_nodes(), 0);
  std::size_t hp_congestion = 0;
  for (const auto& path : hpd.paths) {
    for (NodeId v : path) hp_congestion = std::max(hp_congestion, ++hp_load[v]);
  }
  EXPECT_EQ(hp_congestion, 1u);
}

class EulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(EulerSweep, ValidAcrossRandomParts) {
  Rng rng(GetParam() * 13 + 5);
  const Graph g = make_random_regular(36, 4, rng);
  const PartCollection pc = random_voronoi_partition(g, 4, rng);
  for (const auto& part : pc.parts) {
    const EulerPathDecomposition epd = euler_path_decomposition(g, part);
    EXPECT_TRUE(is_valid_euler_decomposition(g, part, epd));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace dls
