#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/low_stretch_tree.hpp"

namespace dls {
namespace {

TEST(LowStretchTree, ProducesSpanningTree) {
  Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = make_grid(7, 7);
    const LowStretchTreeResult result = low_stretch_spanning_tree(g, rng);
    EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
    EXPECT_GT(result.phases, 0u);
  }
}

TEST(LowStretchTree, TreeInputReturnsItself) {
  Rng rng(2);
  const Graph g = make_random_tree(40, rng);
  const LowStretchTreeResult result = low_stretch_spanning_tree(g, rng);
  EXPECT_EQ(result.tree_edges.size(), 39u);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
  EXPECT_DOUBLE_EQ(average_stretch(g, result.tree_edges), 1.0);
}

TEST(EdgeStretches, TreeEdgesHaveStretchOne) {
  Rng rng(3);
  const Graph g = make_grid(5, 5);
  const auto tree = bfs_tree_edges(g, 0);
  const auto stretch = edge_stretches(g, tree);
  for (EdgeId e : tree) EXPECT_DOUBLE_EQ(stretch[e], 1.0);
}

TEST(EdgeStretches, CycleOffTreeEdgeStretchIsPathLength) {
  // Unit cycle C_n: removing one edge leaves a path; the removed edge's
  // stretch is n−1.
  const Graph g = make_cycle(8);
  std::vector<EdgeId> tree;
  for (EdgeId e = 0; e + 1 < g.num_edges(); ++e) tree.push_back(e);
  const auto stretch = edge_stretches(g, tree);
  EXPECT_DOUBLE_EQ(stretch[g.num_edges() - 1], 7.0);
}

TEST(EdgeStretches, WeightedStretchFormula) {
  // Triangle with weights: off-tree edge (0,2) w=2; tree path resistance
  // 1/w01 + 1/w12 = 1/4 + 1/4 = 1/2; stretch = 2 · 1/2 = 1.
  Graph g(3);
  g.add_edge(0, 1, 4.0);
  g.add_edge(1, 2, 4.0);
  g.add_edge(0, 2, 2.0);
  std::vector<EdgeId> tree{0, 1};
  const auto stretch = edge_stretches(g, tree);
  EXPECT_DOUBLE_EQ(stretch[2], 1.0);
}

TEST(LowStretchTree, BeatsWorstCaseOnGrid) {
  // Average stretch of the LSST should be far below the Θ(√n) a bad tree
  // (e.g. a snake) exhibits on the grid.
  Rng rng(4);
  const Graph g = make_grid(12, 12);
  const LowStretchTreeResult result = low_stretch_spanning_tree(g, rng);
  const double avg = average_stretch(g, result.tree_edges);
  EXPECT_LT(avg, 12.0);  // ≈ polylog; √n would be 12
  EXPECT_GE(avg, 1.0);
}

TEST(TotalStretch, ConsistentWithAverage) {
  Rng rng(5);
  const Graph g = make_weighted_grid(5, 5, rng);
  const auto tree = mst_kruskal(g);
  EXPECT_NEAR(total_stretch(g, tree),
              average_stretch(g, tree) * static_cast<double>(g.num_edges()),
              1e-9);
}

TEST(WeightedLsst, SpansAndBeatsHopMetricOnSpreadWeights) {
  Rng rng(41);
  const Graph g = make_weighted_grid(10, 10, rng, 1.0, 512.0);
  const auto hop_tree = low_stretch_spanning_tree_hops(g, rng);
  const auto w_tree = low_stretch_spanning_tree_weighted(g, rng);
  EXPECT_TRUE(is_spanning_tree(g, w_tree.tree_edges));
  EXPECT_LT(average_stretch(g, w_tree.tree_edges),
            average_stretch(g, hop_tree.tree_edges));
}

TEST(WeightedLsst, DispatchUsesWeightedVariantOnNonUniform) {
  Rng rng(42);
  const Graph g = make_weighted_grid(8, 8, rng, 1.0, 256.0);
  const auto tree = low_stretch_spanning_tree(g, rng);
  EXPECT_TRUE(is_spanning_tree(g, tree.tree_edges));
  // The dispatched tree should be competitive with the explicit weighted one.
  Rng rng2(42);
  const auto w_tree = low_stretch_spanning_tree_weighted(g, rng2);
  EXPECT_LT(average_stretch(g, tree.tree_edges),
            2.0 * average_stretch(g, w_tree.tree_edges) + 1.0);
}

TEST(WeightedLsst, UniformWeightsStillSpan) {
  Rng rng(43);
  const Graph g = make_torus(7, 7);
  const auto tree = low_stretch_spanning_tree_weighted(g, rng);
  EXPECT_TRUE(is_spanning_tree(g, tree.tree_edges));
}

TEST(WeightedLsst, ExtremeTwoScaleWeights) {
  // A heavy cycle with light chords: the tree must be all-heavy, giving
  // every light chord stretch = w_light * (heavy path resistance) << 1 ...
  // but heavy cycle edges must not route through light chords.
  Graph g = make_cycle(16);
  for (EdgeId e = 0; e < g.num_edges(); ++e) g.set_weight(e, 1000.0);
  for (NodeId v = 0; v < 8; ++v) {
    g.add_edge(v, static_cast<NodeId>(v + 8), 0.001);
  }
  Rng rng(44);
  const auto tree = low_stretch_spanning_tree_weighted(g, rng);
  EXPECT_TRUE(is_spanning_tree(g, tree.tree_edges));
  // All but one tree edge should be heavy: 15 heavy cycle edges span it.
  std::size_t light = 0;
  for (EdgeId e : tree.tree_edges) light += g.edge(e).weight < 1.0;
  EXPECT_EQ(light, 0u);
}

class LsstSweep : public ::testing::TestWithParam<int> {};

TEST_P(LsstSweep, SpanningAndFiniteStretchAcrossFamilies) {
  Rng rng(GetParam() * 37);
  Graph g;
  switch (GetParam() % 3) {
    case 0: g = make_torus(6, 6); break;
    case 1: g = make_random_regular(48, 4, rng); break;
    default: g = make_weighted_grid(6, 6, rng); break;
  }
  const LowStretchTreeResult result = low_stretch_spanning_tree(g, rng);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
  const double total = total_stretch(g, result.tree_edges);
  EXPECT_TRUE(std::isfinite(total));
  EXPECT_GE(total, static_cast<double>(g.num_edges()));  // every stretch ≥ 1
}

INSTANTIATE_TEST_SUITE_P(Sweep, LsstSweep, ::testing::Range(1, 10));

}  // namespace
}  // namespace dls
