// Chaos/property sweep for the congested-PA pipelines under fault injection.
//
// The property: under eventual delivery (finite fault horizon), a faulted
// solve must agree *bit-for-bit* with the fault-free oracle on every part's
// aggregate — faults may cost rounds, never correctness. A failing case
// prints a shrunk repro (minimal fault list + seeds, see chaos_harness.hpp).
//
// The smoke sweep runs on every CI push with a fixed default root seed;
// DLS_CHAOS_SEED overrides it (echoed below) and DLS_CHAOS_FULL=1 widens the
// grid for the nightly job.
#include <gtest/gtest.h>

#include "chaos_harness.hpp"
#include "laplacian/pa_oracle.hpp"
#include "obs/metrics.hpp"

namespace dls {
namespace {

using chaos::CaseConfig;

constexpr std::uint64_t kDefaultRootSeed = 0xC4A05'2022ULL;

struct FaultMix {
  const char* name;
  FaultConfig config;
};

std::vector<FaultMix> fault_mixes() {
  std::vector<FaultMix> mixes;
  {
    FaultConfig c;
    c.drop_rate = 0.1;
    mixes.push_back({"drop10", c});
  }
  {
    FaultConfig c;
    c.drop_rate = 0.5;
    mixes.push_back({"drop50", c});
  }
  {
    FaultConfig c;
    c.duplicate_rate = 0.2;
    c.delay_rate = 0.2;
    c.max_delay = 3;
    c.reorder = true;
    mixes.push_back({"dup-delay", c});
  }
  {
    FaultConfig c;
    c.flap_rate = 0.05;
    c.max_flap_len = 3;
    c.drop_rate = 0.05;
    mixes.push_back({"flap", c});
  }
  {
    FaultConfig c;
    c.crash_rate = 0.02;
    c.max_crash_len = 3;
    c.drop_rate = 0.1;
    mixes.push_back({"crash", c});
  }
  // Corruption mixes run with payload integrity on: detected corruptions are
  // retransmitted, so the sweep's bit-exact-agreement property must still
  // hold — corruption may cost rounds, never correctness. (Without the
  // checksum word the fold would be silently wrong; that negative space is
  // pinned by UncheckedCorruptionShrinksToCorruptRepro below.)
  {
    FaultConfig c;
    c.corrupt_rate = 0.2;
    c.integrity = true;
    mixes.push_back({"corrupt", c});
  }
  {
    FaultConfig c;
    c.corrupt_rate = 0.15;
    c.drop_rate = 0.15;
    c.integrity = true;
    mixes.push_back({"corrupt-drop", c});
  }
  return mixes;
}

/// Runs the (families × mixes × repeats) grid derived from the root seed.
/// Every case failure reports the shrunk repro and fails the test.
void run_sweep(std::uint64_t root_seed, int families, std::size_t repeats,
               PaModel model) {
  Rng seeder(root_seed);
  const std::vector<FaultMix> mixes = fault_mixes();
  std::size_t cases = 0;
  for (int family = 0; family < families; ++family) {
    for (const FaultMix& mix : mixes) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        CaseConfig c;
        c.label = std::string("family") + std::to_string(family) + "/" +
                  mix.name + "/rep" + std::to_string(rep);
        c.family = family;
        c.scenario_seed = seeder();
        c.fault_seed = seeder();
        c.faults = mix.config;
        c.model = model;
        std::vector<FaultEvent> injected;
        const std::string diagnosis = chaos::run_case(c, nullptr, &injected);
        ++cases;
        if (!diagnosis.empty()) {
          ADD_FAILURE() << diagnosis << chaos::describe_repro(c, injected);
        }
      }
    }
  }
  ::testing::Test::RecordProperty("chaos_cases", static_cast<int>(cases));
}

TEST(ChaosPa, SmokeSweepAgreesWithFaultFreeOracle) {
  const std::uint64_t root_seed = chaos::root_seed_from_env(kDefaultRootSeed);
  // Echo the seed so any failure in CI is replayable with one command.
  std::printf("[chaos] DLS_CHAOS_SEED=%llu (export to replay)\n",
              static_cast<unsigned long long>(root_seed));
  const bool full = chaos::full_sweep_requested();
  run_sweep(root_seed, /*families=*/4, /*repeats=*/full ? 8 : 2,
            PaModel::kSupportedCongest);
}

TEST(ChaosPa, SweepCoversCongestModel) {
  const std::uint64_t root_seed =
      chaos::root_seed_from_env(kDefaultRootSeed) ^ 0x9e3779b97f4a7c15ULL;
  const bool full = chaos::full_sweep_requested();
  run_sweep(root_seed, /*families=*/full ? 4 : 2, /*repeats=*/full ? 4 : 1,
            PaModel::kCongest);
}

// A plan with all rates at zero injects nothing and must leave the solve
// bit-identical to the null-plan run — results, round totals, and the full
// per-phase ledger. This is the guard for the acceptance criterion that
// fault-free paths match the pinned golden traces without regeneration.
TEST(ChaosPa, ZeroRatePlanIsBitIdenticalToNullPlan) {
  for (int family = 0; family < 4; ++family) {
    CaseConfig c;
    c.family = family;
    c.scenario_seed = 0xABCD0000 + static_cast<std::uint64_t>(family);
    const chaos::Scenario s = chaos::build_scenario(c);

    CongestedPaOptions options;
    Rng null_rng(s.solver_seed);
    const CongestedPaOutcome null_plan = solve_congested_pa(
        s.g, s.pc, s.values, AggregationMonoid::sum(), null_rng, options);

    FaultPlan plan(/*seed=*/1234, FaultConfig{});  // all rates zero
    options.faults = &plan;
    Rng zero_rng(s.solver_seed);
    const CongestedPaOutcome zero_rate = solve_congested_pa(
        s.g, s.pc, s.values, AggregationMonoid::sum(), zero_rng, options);

    EXPECT_EQ(zero_rate.results, null_plan.results) << "family " << family;
    EXPECT_EQ(zero_rate.total_rounds, null_plan.total_rounds)
        << "family " << family;
    EXPECT_EQ(zero_rate.phases, null_plan.phases);
    EXPECT_TRUE(zero_rate.ledger == null_plan.ledger) << "family " << family;
    EXPECT_TRUE(plan.injected().empty());
  }
}

// Permanently lossy network (no horizon) + a small round budget: the solve
// must fail loudly with ChaosAbortError carrying a diagnosable partial
// ledger, not livelock.
TEST(ChaosPa, PermanentLossAbortsWithDiagnosableLedger) {
  CaseConfig c;
  c.family = 0;
  c.scenario_seed = 0xDEAD01;
  const chaos::Scenario s = chaos::build_scenario(c);

  FaultConfig config;
  config.drop_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  config.round_limit = 64;
  FaultPlan plan(/*seed=*/77, config);
  CongestedPaOptions options;
  options.faults = &plan;
  Rng rng(s.solver_seed);
  try {
    solve_congested_pa(s.g, s.pc, s.values, AggregationMonoid::sum(), rng,
                       options);
    FAIL() << "expected ChaosAbortError";
  } catch (const ChaosAbortError& e) {
    EXPECT_NE(std::string(e.what()).find("round budget"), std::string::npos);
    ASSERT_FALSE(e.ledger().entries().empty());
    EXPECT_EQ(e.ledger().entries().back().label.rfind("aborted-", 0), 0u)
        << e.ledger().entries().back().label;
  }
}

// Replaying the injected event list of a failing-free run must reproduce the
// generative run exactly (same results, same injected events).
TEST(ChaosPa, ReplayOfInjectedEventsMatchesGenerativeRun) {
  CaseConfig c;
  c.family = 2;
  c.scenario_seed = 0xFACE02;
  c.fault_seed = 0xFACE03;
  c.faults.drop_rate = 0.3;
  c.faults.duplicate_rate = 0.1;
  c.faults.delay_rate = 0.1;
  c.faults.reorder = true;

  std::vector<FaultEvent> injected;
  const std::string generative = chaos::run_case(c, nullptr, &injected);
  EXPECT_EQ(generative, "");
  ASSERT_FALSE(injected.empty())
      << "fault mix injected nothing — the sweep would be vacuous";

  std::vector<FaultEvent> replayed;
  const std::string replay = chaos::run_case(c, &injected, &replayed);
  EXPECT_EQ(replay, "");
  EXPECT_EQ(replayed, injected);
}

// The ShortcutPaOracle's measure-time cross-check (distributed == fold) is
// the fault-correctness oracle once a plan is attached.
TEST(ChaosPa, OracleMeasurementSurvivesFaultPlan) {
  Rng graph_rng(42);
  const Graph g = make_grid(6, 6);
  PartCollection pc = stacked_voronoi_instance(g, 3, 2, graph_rng);

  FaultConfig config;
  config.drop_rate = 0.2;
  config.duplicate_rate = 0.1;
  FaultPlan plan(/*seed=*/9, config);

  Rng oracle_rng(1001);
  ShortcutPaOracle oracle(g, oracle_rng);
  oracle.set_fault_plan(&plan);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 2.0);
  }
  const std::vector<double> results =
      oracle.aggregate_once(pc, values, AggregationMonoid::sum());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_EQ(results[i], 2.0 * static_cast<double>(pc.parts[i].size()));
  }
  EXPECT_GT(oracle.ledger().total_local(), 0u);
}

// End-to-end repro pipeline: a case that genuinely fails (permanent loss +
// tiny round budget) must shrink to a non-empty minimal fault list and print
// both seeds, exactly what a CI failure would hand the developer.
TEST(ChaosPa, FailingCaseProducesShrunkRepro) {
  CaseConfig c;
  c.label = "repro-smoke";
  c.family = 1;  // random tree: smallest scenario family
  c.scenario_seed = 0xBADF00D;
  c.fault_seed = 0xBADF00E;
  c.faults.drop_rate = 1.0;
  c.faults.horizon = FaultConfig::kNoHorizon;
  c.faults.round_limit = 24;

  std::vector<FaultEvent> injected;
  const std::string diagnosis = chaos::run_case(c, nullptr, &injected);
  ASSERT_NE(diagnosis.find("ChaosAbortError"), std::string::npos) << diagnosis;
  ASSERT_FALSE(injected.empty());

  const std::string repro = chaos::describe_repro(c, injected);
  EXPECT_NE(repro.find("chaos repro for repro-smoke"), std::string::npos);
  EXPECT_NE(repro.find("scenario_seed = 195948557"), std::string::npos);
  EXPECT_NE(repro.find("minimal fault list"), std::string::npos);
  EXPECT_NE(repro.find("drop("), std::string::npos) << repro;
}

// Corruption with integrity across the scenario families: results stay
// bit-identical to the clean run, every injected corruption is detected
// (none delivered), and the detections plus checksum words show up in the
// net.corrupt.* / net.integrity.* metrics — rounds are paid, correctness is
// not. (Per-call counters live on AggregationOutcome; across a whole
// congested-PA solve the registry totals are the accounting surface.)
TEST(ChaosPa, IntegrityMakesCorruptionExactAndAccounted) {
  MetricCounter& injected_metric =
      MetricsRegistry::global().counter("net.corrupt.injected");
  MetricCounter& detected_metric =
      MetricsRegistry::global().counter("net.corrupt.detected");
  MetricCounter& delivered_metric =
      MetricsRegistry::global().counter("net.corrupt.delivered");
  MetricCounter& words_metric =
      MetricsRegistry::global().counter("net.integrity.words");
  std::uint64_t injected_total = 0;
  for (int family = 0; family < 4; ++family) {
    CaseConfig c;
    c.family = family;
    c.scenario_seed = 0xC0DE00 + static_cast<std::uint64_t>(family);
    const chaos::Scenario s = chaos::build_scenario(c);

    CongestedPaOptions options;
    Rng clean_rng(s.solver_seed);
    const CongestedPaOutcome clean = solve_congested_pa(
        s.g, s.pc, s.values, AggregationMonoid::sum(), clean_rng, options);

    const std::uint64_t injected0 = injected_metric.value();
    const std::uint64_t detected0 = detected_metric.value();
    const std::uint64_t delivered0 = delivered_metric.value();
    const std::uint64_t words0 = words_metric.value();
    FaultConfig config;
    config.corrupt_rate = 0.25;
    config.integrity = true;
    FaultPlan plan(0xF00D + static_cast<std::uint64_t>(family), config);
    options.faults = &plan;
    Rng faulty_rng(s.solver_seed);
    const CongestedPaOutcome faulted = solve_congested_pa(
        s.g, s.pc, s.values, AggregationMonoid::sum(), faulty_rng, options);

    EXPECT_EQ(faulted.results, clean.results) << "family " << family;
    EXPECT_GT(words_metric.value(), words0) << "family " << family;
    // Every injected corruption was detected; none slipped into a fold.
    EXPECT_EQ(detected_metric.value() - detected0,
              injected_metric.value() - injected0);
    EXPECT_EQ(delivered_metric.value(), delivered0);
    // Integrity doubles slot occupancy even before any corruption bites.
    EXPECT_GT(faulted.total_rounds, clean.total_rounds);
    injected_total += injected_metric.value() - injected0;
  }
  EXPECT_GT(injected_total, 0u)
      << "corrupt_rate=0.25 never fired — the sweep would be vacuous";
}

// Without the checksum word, corruption is the one fault the delivery layer
// cannot mask: the faulted fold silently disagrees with the clean one, the
// harness's comparison catches it, and the ddmin shrinker reduces the
// schedule to a minimal repro naming the corrupt event(s).
TEST(ChaosPa, UncheckedCorruptionShrinksToCorruptRepro) {
  CaseConfig c;
  c.label = "corrupt-repro";
  c.family = 1;  // random tree: smallest scenario family
  c.scenario_seed = 0xC0FFEE;
  c.faults.corrupt_rate = 0.3;
  std::string diagnosis;
  std::vector<FaultEvent> injected;
  // A corruption can land on a result-inert slot (broadcast markers, deduped
  // copies); scan a few schedules for one that perturbs a fold.
  for (std::uint64_t seed = 1; seed <= 8 && diagnosis.empty(); ++seed) {
    c.fault_seed = seed;
    diagnosis = chaos::run_case(c, nullptr, &injected);
  }
  ASSERT_FALSE(diagnosis.empty())
      << "no schedule perturbed any fold — corruption injection is vacuous";
  ASSERT_FALSE(injected.empty());
  const std::string repro = chaos::describe_repro(c, injected);
  EXPECT_NE(repro.find("minimal fault list"), std::string::npos);
  EXPECT_NE(repro.find("corrupt("), std::string::npos) << repro;
}

// --- shrinker unit tests (synthetic predicates; no network involved) ------

std::vector<FaultEvent> synthetic_events(std::size_t n) {
  std::vector<FaultEvent> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back({FaultKind::kDrop, 1, i + 1, i, 0});
  }
  return events;
}

TEST(ChaosShrinker, ReducesToSingleCulprit) {
  const std::vector<FaultEvent> events = synthetic_events(37);
  const FaultEvent culprit = events[17];
  std::size_t evaluations = 0;
  const std::vector<FaultEvent> minimal = chaos::shrink_events(
      events, [&](const std::vector<FaultEvent>& subset) {
        ++evaluations;
        for (const FaultEvent& e : subset) {
          if (e == culprit) return true;
        }
        return false;
      });
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], culprit);
  EXPECT_GT(evaluations, 0u);
}

TEST(ChaosShrinker, KeepsConjunctionOfTwoEvents) {
  const std::vector<FaultEvent> events = synthetic_events(16);
  const FaultEvent a = events[3];
  const FaultEvent b = events[12];
  const std::vector<FaultEvent> minimal = chaos::shrink_events(
      events, [&](const std::vector<FaultEvent>& subset) {
        bool has_a = false;
        bool has_b = false;
        for (const FaultEvent& e : subset) {
          has_a |= e == a;
          has_b |= e == b;
        }
        return has_a && has_b;
      });
  EXPECT_EQ(minimal, (std::vector<FaultEvent>{a, b}));
}

// Mixed-kind schedules shrink across kinds: the minimal list keeps exactly
// the corrupt event the predicate demands and drops every drop around it.
TEST(ChaosShrinker, IsolatesCorruptEventAmongDrops) {
  std::vector<FaultEvent> events = synthetic_events(12);
  const FaultEvent culprit{FaultKind::kCorrupt, 1, 5, 3, 0x40};
  events.insert(events.begin() + 6, culprit);
  const std::vector<FaultEvent> minimal = chaos::shrink_events(
      events, [&](const std::vector<FaultEvent>& subset) {
        for (const FaultEvent& e : subset) {
          if (e.kind == FaultKind::kCorrupt && e.param == 0x40) return true;
        }
        return false;
      });
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], culprit);
  EXPECT_EQ(to_string(minimal[0]).rfind("corrupt(", 0), 0u);
}

TEST(ChaosShrinker, EmptyListIsFixpoint) {
  const std::vector<FaultEvent> minimal = chaos::shrink_events(
      {}, [](const std::vector<FaultEvent>&) { return true; });
  EXPECT_TRUE(minimal.empty());
}

TEST(ChaosHarness, RootSeedEnvParsing) {
  // Only exercises the fallback path: the suite must not depend on the
  // caller's environment beyond DLS_CHAOS_SEED itself being well-formed.
  const std::uint64_t seed = chaos::root_seed_from_env(123);
  const char* env = std::getenv("DLS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') {
    EXPECT_EQ(seed, 123u);
  } else {
    EXPECT_EQ(seed, std::strtoull(env, nullptr, 0));
  }
}

}  // namespace
}  // namespace dls
