// Metamorphic properties of the Laplacian solver, cold and through the warm
// cache (docs/CACHING.md, docs/TESTING.md). Instead of pinning outputs, these
// tests pin *relations* that must hold between solves:
//
//   * linearity      — solve(a·b₁ + c·b₂) ≈ a·solve(b₁) + c·solve(b₂)
//   * weight scaling — solving over c·L yields x/c
//   * relabeling     — vertex relabeling permutes the solution and, in the
//                      label-oblivious NCC + base-case configuration, leaves
//                      every charged round count exactly unchanged
//   * residuals      — the reported relative residual is honest (matches an
//                      independent recomputation) and within tolerance
//   * cache harness  — a warm cached solve is bit-identical to a cold solve,
//                      so every property above transfers to the cache
//
// The corpus is a family × seed grid. The default run covers a smoke subset;
// DLS_METAMORPHIC_FULL=1 (the "slow"-labelled ctest entry / nightly CI)
// widens it to the full grid. Suites carry the "Metamorphic" prefix so the
// TSan preset picks them up.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "graph/generators.hpp"
#include "laplacian/solver_cache.hpp"
#include "linalg/solvers.hpp"

namespace dls {
namespace {

bool full_grid() {
  const char* env = std::getenv("DLS_METAMORPHIC_FULL");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

struct Family {
  std::string name;
  Graph (*make)(std::uint64_t seed);
  bool smoke = false;  // part of the default (non-full) subset
};

const std::vector<Family>& families() {
  static const std::vector<Family> kFamilies = {
      {"grid-7x7", [](std::uint64_t) { return make_grid(7, 7); }, true},
      {"weighted-grid-6x6",
       [](std::uint64_t seed) {
         Rng rng(seed);
         return make_weighted_grid(6, 6, rng);
       },
       true},
      {"cycle-48", [](std::uint64_t) { return make_cycle(48); }, true},
      {"torus-6x6", [](std::uint64_t) { return make_torus(6, 6); }},
      {"regular-48x4",
       [](std::uint64_t seed) {
         Rng rng(seed);
         return make_random_regular(48, 4, rng);
       }},
      {"binary-tree-63",
       [](std::uint64_t) { return make_balanced_binary_tree(63); }},
      {"triangulated-6x6",
       [](std::uint64_t) { return make_triangulated_grid(6, 6); }},
  };
  return kFamilies;
}

std::vector<std::uint64_t> corpus_seeds() {
  if (full_grid()) return {1, 2, 3};
  return {1};
}

/// Visits the corpus: every family × seed of the active grid (smoke subset by
/// default), with a SCOPED_TRACE naming the case.
template <typename Fn>
void for_corpus(Fn&& fn) {
  const bool full = full_grid();
  for (const Family& family : families()) {
    if (!full && !family.smoke) continue;
    for (const std::uint64_t seed : corpus_seeds()) {
      SCOPED_TRACE(family.name + "/seed=" + std::to_string(seed));
      fn(family.make(seed), seed);
    }
  }
}

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

LaplacianSolverOptions tight_options() {
  LaplacianSolverOptions options;
  options.tolerance = 1e-8;  // leaves headroom under the 1e-4 property slack
  options.base_size = 40;
  return options;
}

/// Cold reference: fresh fully-seeded Supported-CONGEST stack per solve.
LaplacianSolveReport cold_solve(const Graph& g, const Vec& b,
                                std::uint64_t seed) {
  Graph copy(g.num_nodes());
  for (const Edge& e : g.edges()) copy.add_edge(e.u, e.v, e.weight);
  Rng rng(seed);
  ShortcutPaOracle oracle(copy, rng);
  DistributedLaplacianSolver solver(oracle, rng, tight_options());
  return solver.solve(b);
}

SolverCacheOptions metamorphic_cache_options(std::uint64_t seed) {
  SolverCacheOptions options;
  options.solver = tight_options();
  options.oracle = CacheOracleKind::kShortcutSupported;
  options.seed = seed;
  return options;
}

double norm(const Vec& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double relative_residual_on(const Graph& g, const Vec& x, const Vec& b) {
  Vec r = b;
  project_mean_zero(r);
  const double b_norm = norm(r);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const double flow = edge.weight * (x[edge.u] - x[edge.v]);
    r[edge.u] -= flow;
    r[edge.v] += flow;
  }
  return b_norm > 0 ? norm(r) / b_norm : 0.0;
}

/// ‖a − b‖ / ‖b‖ after removing the mean from both (solutions of a singular
/// Laplacian system are unique only up to a constant shift).
double relative_gap(Vec a, Vec b) {
  project_mean_zero(a);
  project_mean_zero(b);
  const double scale = std::max(norm(b), 1e-30);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
  return norm(a) / scale;
}

// --- Linearity: solve is (approximately) a linear operator on rhs. --------

void check_linearity(const Graph& g, std::uint64_t seed,
                     CachedSolverState* cache_entry) {
  Rng rng(seed * 1000 + 1);
  const Vec b1 = random_rhs(g.num_nodes(), rng);
  const Vec b2 = random_rhs(g.num_nodes(), rng);
  const double a = 2.5, c = -1.25;
  Vec combined(g.num_nodes());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    combined[i] = a * b1[i] + c * b2[i];
  }
  const auto solve = [&](const Vec& b) {
    return cache_entry != nullptr ? cache_entry->solve(b).x
                                  : cold_solve(g, b, seed).x;
  };
  const Vec x1 = solve(b1);
  const Vec x2 = solve(b2);
  const Vec xc = solve(combined);
  Vec superposed(g.num_nodes());
  for (std::size_t i = 0; i < superposed.size(); ++i) {
    superposed[i] = a * x1[i] + c * x2[i];
  }
  // The superposition both matches the directly solved xc and is itself a
  // valid solution of the combined system.
  EXPECT_LT(relative_gap(xc, superposed), 1e-4);
  EXPECT_LT(relative_residual_on(g, superposed, combined), 1e-4);
}

TEST(MetamorphicLinearity, SuperpositionHoldsCold) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    check_linearity(g, seed, nullptr);
  });
}

TEST(MetamorphicLinearity, SuperpositionHoldsThroughCache) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    SolverCache cache(metamorphic_cache_options(seed));
    check_linearity(g, seed, &cache.acquire(g).state);
  });
}

// --- Global weight scaling: L → cL implies x → x/c. -----------------------

TEST(MetamorphicScaling, UniformScalingDividesSolutionCold) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    Rng rng(seed * 1000 + 2);
    const Vec b = random_rhs(g.num_nodes(), rng);
    const double c = 4.0;
    Graph scaled(g.num_nodes());
    for (const Edge& e : g.edges()) scaled.add_edge(e.u, e.v, e.weight * c);
    const Vec x = cold_solve(g, b, seed).x;
    const Vec xs = cold_solve(scaled, b, seed).x;
    Vec expected = x;
    for (double& v : expected) v /= c;
    EXPECT_LT(relative_gap(xs, expected), 1e-6);
    EXPECT_LT(relative_residual_on(scaled, xs, b), 1e-6);
  });
}

TEST(MetamorphicScaling, UniformScalingIsExactThroughCacheRescale) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    Rng rng(seed * 1000 + 3);
    const Vec b = random_rhs(g.num_nodes(), rng);
    const double c = 4.0;
    Graph scaled(g.num_nodes());
    for (const Edge& e : g.edges()) scaled.add_edge(e.u, e.v, e.weight * c);
    SolverCache cache(metamorphic_cache_options(seed));
    const Vec x = cache.acquire(g).state.solve(b).x;
    auto acquired = cache.acquire(scaled);
    ASSERT_TRUE(acquired.hit);
    ASSERT_EQ(acquired.update.classification, WeightUpdateClass::kRescale);
    const Vec xs = acquired.state.solve(b).x;
    // The cache's rescale rung is exact, not approximate: same stored solve,
    // one exact division per entry.
    ASSERT_EQ(xs.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(xs[i], x[i] / c);
  });
}

// --- Vertex relabeling. ---------------------------------------------------

/// g with node i renamed to perm[i], edges in original id order (so edge ids
/// correspond 1:1 and the construction path is comparable).
Graph relabel(const Graph& g, const std::vector<NodeId>& perm) {
  Graph h(g.num_nodes());
  for (const Edge& e : g.edges()) h.add_edge(perm[e.u], perm[e.v], e.weight);
  return h;
}

TEST(MetamorphicRelabeling, SolutionIsEquivariantWithinTolerance) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    const std::size_t n = g.num_nodes();
    // A deterministic non-trivial permutation (reversal composed with shift).
    std::vector<NodeId> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
      perm[i] = static_cast<NodeId>((n - 1 - i + 7) % n);
    }
    Rng rng(seed * 1000 + 4);
    const Vec b = random_rhs(n, rng);
    Vec pb(n);
    for (std::size_t i = 0; i < n; ++i) pb[perm[i]] = b[i];
    const Vec x = cold_solve(g, b, seed).x;
    const Vec px = cold_solve(relabel(g, perm), pb, seed).x;
    Vec mapped_back(n);
    for (std::size_t i = 0; i < n; ++i) mapped_back[i] = px[perm[i]];
    // The solver's internals (tree choice, sampling) are label-dependent, so
    // only the *solution* is invariant, and only up to solve tolerance.
    EXPECT_LT(relative_gap(mapped_back, x), 1e-4);
  });
}

TEST(MetamorphicRelabeling, RoundCountsExactlyInvariantInObliviousConfig) {
  // Exact round invariance needs every label-sensitive choice out of the
  // picture: an NCC oracle (clique model, no shortcut structure over host
  // paths), a vertex-transitive graph (the base gather's BFS distance term is
  // the same from every root), and a base-case-only hierarchy (no sampled
  // tree whose shape depends on ids). In that configuration relabeling may
  // not move a single charged round.
  const auto run = [](const Graph& g, std::uint64_t seed, const Vec& b) {
    Graph copy(g.num_nodes());
    for (const Edge& e : g.edges()) copy.add_edge(e.u, e.v, e.weight);
    Rng rng(seed);
    NccPaOracle oracle(copy, rng);
    LaplacianSolverOptions options;
    options.tolerance = 1e-8;
    options.base_size = copy.num_nodes();  // base-case only
    DistributedLaplacianSolver solver(oracle, rng, options);
    return solver.solve(b);
  };
  for (const std::size_t n : {std::size_t{24}, std::size_t{40}}) {
    SCOPED_TRACE("cycle-" + std::to_string(n));
    const Graph g = make_cycle(n);
    std::vector<NodeId> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
      perm[i] = static_cast<NodeId>((i * 7 + 3) % n);  // 7 coprime to 24, 40
    }
    Rng rng(91);
    const Vec b = random_rhs(n, rng);
    Vec pb(n);
    for (std::size_t i = 0; i < n; ++i) pb[perm[i]] = b[i];
    const LaplacianSolveReport r1 = run(g, 13, b);
    const LaplacianSolveReport r2 = run(relabel(g, perm), 13, pb);
    EXPECT_EQ(r1.local_rounds, r2.local_rounds);
    EXPECT_EQ(r1.global_rounds, r2.global_rounds);
    EXPECT_EQ(r1.pa_calls, r2.pa_calls);
    EXPECT_EQ(r1.outer_iterations, r2.outer_iterations);
    Vec mapped_back(n);
    for (std::size_t i = 0; i < n; ++i) mapped_back[i] = r2.x[perm[i]];
    EXPECT_LT(relative_gap(mapped_back, r1.x), 1e-9);
  }
}

// --- Residual honesty. ----------------------------------------------------

void check_residual(const Graph& g, const LaplacianSolveReport& report,
                    const Vec& b, double tolerance) {
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.relative_residual, tolerance);
  // The report's residual must match an independent recomputation — no
  // solver may "report" convergence it did not achieve.
  const double recomputed = relative_residual_on(g, report.x, b);
  EXPECT_NEAR(report.relative_residual, recomputed,
              1e-9 + 1e-6 * recomputed);
}

TEST(MetamorphicResiduals, ReportedResidualIsHonestCold) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    Rng rng(seed * 1000 + 5);
    const Vec b = random_rhs(g.num_nodes(), rng);
    check_residual(g, cold_solve(g, b, seed), b, tight_options().tolerance);
  });
}

TEST(MetamorphicResiduals, ReportedResidualIsHonestThroughCache) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    Rng rng(seed * 1000 + 5);  // same rhs stream as the cold variant
    const Vec b = random_rhs(g.num_nodes(), rng);
    SolverCache cache(metamorphic_cache_options(seed));
    check_residual(g, cache.acquire(g).state.solve(b), b,
                   tight_options().tolerance);
  });
}

// --- The cache harness itself is metamorphosis-free. ----------------------

TEST(MetamorphicCacheHarness, WarmSolvesBitIdenticalToColdAcrossCorpus) {
  for_corpus([](const Graph& g, std::uint64_t seed) {
    Rng rng(seed * 1000 + 6);
    const Vec b = random_rhs(g.num_nodes(), rng);
    SolverCache cache(metamorphic_cache_options(seed));
    CachedSolverState& state = cache.acquire(g).state;
    const LaplacianSolveReport warm1 = state.solve(b);
    const LaplacianSolveReport warm2 = state.solve(b);
    const LaplacianSolveReport cold = cold_solve(g, b, seed);
    // Bit-identical, not merely close: the warm path replays the same
    // numerics (Supported-CONGEST: same charges too), and repeating the
    // solve on a warm entry changes nothing.
    EXPECT_EQ(warm1.x, cold.x);
    EXPECT_EQ(warm1.residual_history, cold.residual_history);
    EXPECT_EQ(warm1.local_rounds, cold.local_rounds);
    EXPECT_EQ(warm1.pa_calls, cold.pa_calls);
    EXPECT_EQ(warm2.x, warm1.x);
    EXPECT_EQ(warm2.local_rounds, warm1.local_rounds);
  });
}

}  // namespace
}  // namespace dls
