#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/protocols.hpp"

namespace dls {
namespace {

TEST(DistributedBfs, DistancesMatchSequential) {
  const Graph g = make_grid(5, 6);
  const DistributedBfsResult dist = distributed_bfs(g, 7);
  const BfsResult ref = bfs(g, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dist.dist[v], ref.dist[v]) << "node " << v;
  }
}

TEST(DistributedBfs, RoundsEqualEccentricityPlusOne) {
  const Graph g = make_path(12);
  const DistributedBfsResult result = distributed_bfs(g, 0);
  // Flooding: node at distance d learns in round d; one final round flushes.
  EXPECT_EQ(result.rounds, 12u);  // ecc 11 + 1
  EXPECT_GT(result.messages, 0u);
}

TEST(DistributedBfs, ParentPointersFormTree) {
  Rng rng(1);
  const Graph g = make_random_regular(30, 4, rng);
  const DistributedBfsResult result = distributed_bfs(g, 3);
  std::size_t roots = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.parent[v] == kInvalidNode) {
      ++roots;
    } else {
      EXPECT_EQ(result.dist[v], result.dist[result.parent[v]] + 1);
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST(Convergecast, SumsAllValues) {
  const Graph g = make_balanced_binary_tree(15);
  std::vector<double> values(15);
  double expected = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    values[i] = static_cast<double>(i) * 0.5;
    expected += values[i];
  }
  const ConvergecastResult result = distributed_convergecast_sum(g, 0, values);
  EXPECT_NEAR(result.root_value, expected, 1e-9);
  // Rounds ≈ tree depth (3 levels for 15 nodes as heap).
  EXPECT_LE(result.rounds, 5u);
}

TEST(Convergecast, PathDepthRounds) {
  const Graph g = make_path(10);
  std::vector<double> values(10, 1.0);
  const ConvergecastResult result = distributed_convergecast_sum(g, 0, values);
  EXPECT_DOUBLE_EQ(result.root_value, 10.0);
  EXPECT_GE(result.rounds, 9u);
}

TEST(Convergecast, RequiresConnectivity) {
  Graph g(3);
  g.add_edge(0, 1);
  std::vector<double> values(3, 1.0);
  EXPECT_THROW(distributed_convergecast_sum(g, 0, values),
               std::invalid_argument);
}

TEST(LeaderElection, ElectsMinimumId) {
  Rng rng(2);
  const Graph g = make_random_regular(24, 4, rng);
  const LeaderElectionResult result = distributed_leader_election(g);
  EXPECT_EQ(result.leader, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(LeaderElection, RoundsBoundedByDiameterPlusQuiescence) {
  const Graph g = make_cycle(16);
  const LeaderElectionResult result = distributed_leader_election(g);
  EXPECT_LE(result.rounds, exact_diameter(g) + 2u);
}


TEST(LubyMis, MaximalIndependentOnGrid) {
  Rng rng(9);
  const Graph g = make_grid(8, 8);
  const MisResult result = distributed_mis_luby(g, rng);
  EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis));
  EXPECT_LE(result.phases, 20u);
  EXPECT_EQ(result.rounds, 2u * result.phases);
}

TEST(LubyMis, CompleteGraphPicksExactlyOne) {
  Rng rng(10);
  const Graph g = make_complete(12);
  const MisResult result = distributed_mis_luby(g, rng);
  std::size_t count = 0;
  for (char c : result.in_mis) count += c;
  EXPECT_EQ(count, 1u);
}

TEST(LubyMis, ValidatorCatchesViolations) {
  const Graph g = make_path(4);
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 1, 0, 0}));  // dependent
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 0, 0}));  // not maximal
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 1, 0, 1}));
}

TEST(LubyMis, LogarithmicPhasesOnExpanders) {
  Rng rng(11);
  const Graph g = make_random_regular(128, 4, rng);
  const MisResult result = distributed_mis_luby(g, rng);
  EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis));
  EXPECT_LE(result.phases, 16u);
}

class ProtocolSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolSweep, BfsCorrectAcrossFamilies) {
  Rng rng(GetParam() * 11);
  Graph g;
  switch (GetParam() % 3) {
    case 0: g = make_torus(5, 5); break;
    case 1: g = make_hypercube(4); break;
    default: g = make_random_tree(25, rng); break;
  }
  const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  const DistributedBfsResult result = distributed_bfs(g, root);
  const BfsResult ref = bfs(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.dist[v], ref.dist[v]);
  }
  EXPECT_EQ(result.rounds, static_cast<std::uint64_t>(ref.eccentricity()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace dls
