#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/protocols.hpp"

namespace dls {
namespace {

TEST(DistributedBfs, DistancesMatchSequential) {
  const Graph g = make_grid(5, 6);
  const DistributedBfsResult dist = distributed_bfs(g, 7);
  const BfsResult ref = bfs(g, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dist.dist[v], ref.dist[v]) << "node " << v;
  }
}

TEST(DistributedBfs, RoundsEqualEccentricityPlusOne) {
  const Graph g = make_path(12);
  const DistributedBfsResult result = distributed_bfs(g, 0);
  // Flooding: node at distance d learns in round d; one final round flushes.
  EXPECT_EQ(result.rounds, 12u);  // ecc 11 + 1
  EXPECT_GT(result.messages, 0u);
}

TEST(DistributedBfs, ParentPointersFormTree) {
  Rng rng(1);
  const Graph g = make_random_regular(30, 4, rng);
  const DistributedBfsResult result = distributed_bfs(g, 3);
  std::size_t roots = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.parent[v] == kInvalidNode) {
      ++roots;
    } else {
      EXPECT_EQ(result.dist[v], result.dist[result.parent[v]] + 1);
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST(Convergecast, SumsAllValues) {
  const Graph g = make_balanced_binary_tree(15);
  std::vector<double> values(15);
  double expected = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    values[i] = static_cast<double>(i) * 0.5;
    expected += values[i];
  }
  const ConvergecastResult result = distributed_convergecast_sum(g, 0, values);
  EXPECT_NEAR(result.root_value, expected, 1e-9);
  // Rounds ≈ tree depth (3 levels for 15 nodes as heap).
  EXPECT_LE(result.rounds, 5u);
}

TEST(Convergecast, PathDepthRounds) {
  const Graph g = make_path(10);
  std::vector<double> values(10, 1.0);
  const ConvergecastResult result = distributed_convergecast_sum(g, 0, values);
  EXPECT_DOUBLE_EQ(result.root_value, 10.0);
  EXPECT_GE(result.rounds, 9u);
}

TEST(Convergecast, RequiresConnectivity) {
  Graph g(3);
  g.add_edge(0, 1);
  std::vector<double> values(3, 1.0);
  EXPECT_THROW(distributed_convergecast_sum(g, 0, values),
               std::invalid_argument);
}

TEST(LeaderElection, ElectsMinimumId) {
  Rng rng(2);
  const Graph g = make_random_regular(24, 4, rng);
  const LeaderElectionResult result = distributed_leader_election(g);
  EXPECT_EQ(result.leader, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(LeaderElection, RoundsBoundedByDiameterPlusQuiescence) {
  const Graph g = make_cycle(16);
  const LeaderElectionResult result = distributed_leader_election(g);
  EXPECT_LE(result.rounds, exact_diameter(g) + 2u);
}


TEST(LubyMis, MaximalIndependentOnGrid) {
  Rng rng(9);
  const Graph g = make_grid(8, 8);
  const MisResult result = distributed_mis_luby(g, rng);
  EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis));
  EXPECT_LE(result.phases, 20u);
  EXPECT_EQ(result.rounds, 2u * result.phases);
}

TEST(LubyMis, CompleteGraphPicksExactlyOne) {
  Rng rng(10);
  const Graph g = make_complete(12);
  const MisResult result = distributed_mis_luby(g, rng);
  std::size_t count = 0;
  for (char c : result.in_mis) count += c;
  EXPECT_EQ(count, 1u);
}

TEST(LubyMis, ValidatorCatchesViolations) {
  const Graph g = make_path(4);
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 1, 0, 0}));  // dependent
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 0, 0}));  // not maximal
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 1, 0, 1}));
}

TEST(LubyMis, LogarithmicPhasesOnExpanders) {
  Rng rng(11);
  const Graph g = make_random_regular(128, 4, rng);
  const MisResult result = distributed_mis_luby(g, rng);
  EXPECT_TRUE(is_maximal_independent_set(g, result.in_mis));
  EXPECT_LE(result.phases, 16u);
}

class ProtocolSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolSweep, BfsCorrectAcrossFamilies) {
  Rng rng(GetParam() * 11);
  Graph g;
  switch (GetParam() % 3) {
    case 0: g = make_torus(5, 5); break;
    case 1: g = make_hypercube(4); break;
    default: g = make_random_tree(25, rng); break;
  }
  const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  const DistributedBfsResult result = distributed_bfs(g, root);
  const BfsResult ref = bfs(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.dist[v], ref.dist[v]);
  }
  EXPECT_EQ(result.rounds, static_cast<std::uint64_t>(ref.eccentricity()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSweep, ::testing::Range(0, 6));

// --- reliable_send: ack/retry with exponential backoff ---------------------

TEST(ReliableSend, CleanNetworkCostsOneRoundTrip) {
  const Graph g = make_path(2);
  FaultyNetwork net(g, nullptr);
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, /*seq=*/3, 2.5);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.acked);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.rounds, 2u);  // DATA out, ACK back
  EXPECT_EQ(r.data_sends, 1u);
  EXPECT_EQ(r.ack_sends, 1u);
  EXPECT_EQ(r.duplicates_suppressed, 0u);
}

// Exactly-once delivery under drop rates {0, 0.1, 0.5}: with a finite fault
// horizon the protocol must always terminate acked, accept the payload once,
// and suppress every redundant retransmission that got through.
TEST(ReliableSend, ExactlyOnceAcrossDropRates) {
  const double rates[] = {0.0, 0.1, 0.5};
  for (double rate : rates) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Graph g = make_path(2);
      FaultConfig config;
      config.drop_rate = rate;
      config.horizon = 32;  // eventual delivery
      FaultPlan plan(seed, config);
      FaultyNetwork net(g, &plan);
      const ReliableSendResult r =
          reliable_send(net, 0, 1, 0, /*seq=*/seed, 1.0);
      EXPECT_TRUE(r.delivered) << "rate " << rate << " seed " << seed;
      EXPECT_TRUE(r.acked) << "rate " << rate << " seed " << seed;
      EXPECT_FALSE(r.aborted);
      // Exactly once: the first arriving copy was accepted, every later one
      // suppressed. With only drop faults each DATA was either received or
      // dropped, so receptions bound sends from below and sends plus total
      // drops (DATA + ACK) bound receptions from above.
      EXPECT_LE(1 + r.duplicates_suppressed, r.data_sends)
          << "rate " << rate << " seed " << seed;
      EXPECT_LE(r.data_sends, 1 + r.duplicates_suppressed + net.dropped())
          << "rate " << rate << " seed " << seed
          << ": some DATA copy is unaccounted for";
      EXPECT_GE(r.data_sends, 1u);
    }
  }
}

// The terminal ledger entry is the protocol's budget claim: it must charge
// exactly the rounds consumed, and the backoff must keep total transmissions
// logarithmic-ish in the rounds rather than one-per-round.
TEST(ReliableSend, OverheadStaysWithinLedgeredBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = make_path(2);
    FaultConfig config;
    config.drop_rate = 0.5;
    config.horizon = 48;
    FaultPlan plan(seed * 7, config);
    FaultyNetwork net(g, &plan);
    const ReliableSendResult r = reliable_send(net, 0, 1, 0, seed, 1.0);
    ASSERT_TRUE(r.acked);
    ASSERT_EQ(r.ledger.entries().size(), 1u);
    EXPECT_EQ(r.ledger.entries()[0].label, "reliable-send");
    EXPECT_EQ(r.ledger.total_local(), r.rounds);
    // Backoff doubling: k transmissions need >= 2^(k-1) - 1 waiting rounds
    // (capped), so data_sends is far below rounds once faults bite.
    EXPECT_LE(r.data_sends, 2 + r.rounds / 2) << "seed " << seed;
  }
}

// A permanently lossy link with a timeout must abort cleanly — no livelock,
// an explicit aborted result, and the abort charged to the ledger.
TEST(ReliableSend, TimeoutAbortsInsteadOfLivelocking) {
  const Graph g = make_path(2);
  FaultConfig config;
  config.drop_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  FaultPlan plan(3, config);
  FaultyNetwork net(g, &plan);
  ReliableSendOptions options;
  options.timeout_rounds = 16;
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 1, 1.0, options);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.acked);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.rounds, 16u);
  ASSERT_EQ(r.ledger.entries().size(), 1u);
  EXPECT_EQ(r.ledger.entries()[0].label, "reliable-send-abort");
  EXPECT_EQ(r.ledger.total_local(), 16u);
}

TEST(ReliableSend, BackoffCapBoundsRetransmitSpacing) {
  const Graph g = make_path(2);
  FaultConfig config;
  config.drop_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  FaultPlan plan(5, config);
  FaultyNetwork net(g, &plan);
  ReliableSendOptions options;
  options.timeout_rounds = 200;
  options.initial_backoff = 1;
  options.max_backoff = 8;
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 1, 1.0, options);
  EXPECT_TRUE(r.aborted);
  // Once capped, a transmission happens at least every 1 + max_backoff
  // rounds; with doubling 1,2,4,8,8,... the 200-round budget fits
  // comfortably more than 200 / (1 + 8) sends and fewer than one per round.
  EXPECT_GE(r.data_sends, 200u / 9);
  EXPECT_LT(r.data_sends, 200u);
}

TEST(ReliableSend, ValidatesArguments) {
  const Graph g = make_path(3);
  FaultyNetwork net(g, nullptr);
  EXPECT_THROW(reliable_send(net, 0, 2, 0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(reliable_send(net, 0, 1, 7, 1, 1.0), std::invalid_argument);
  ReliableSendOptions bad;
  bad.initial_backoff = 0;
  EXPECT_THROW(reliable_send(net, 0, 1, 0, 1, 1.0, bad),
               std::invalid_argument);
}

// The retransmission jitter is a pure hash, bounded by half the backoff so
// the spacing bounds the overhead tests pin stay intact.
TEST(ReliableSend, JitterIsDeterministicAndBounded) {
  for (std::uint32_t backoff : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
      const std::uint32_t j =
          reliable_send_jitter(0x1517, 0, 1, 0, /*seq=*/3, attempt, backoff);
      EXPECT_LE(j, backoff / 2);
      EXPECT_EQ(j, reliable_send_jitter(0x1517, 0, 1, 0, 3, attempt, backoff));
    }
  }
  // backoff 1 admits no jitter — the clean path is untouched.
  EXPECT_EQ(reliable_send_jitter(0x1517, 0, 1, 0, 3, 1, 1), 0u);
}

// Two senders that lose their first DATA in the same round must not
// retransmit in lockstep forever: their jittered schedules have to diverge
// somewhere within the first few attempts, on every coordinate that
// distinguishes them (edge, seq, and the seed itself).
TEST(ReliableSend, RetrySchedulesDecorrelate) {
  const auto schedule = [](std::uint64_t seed, NodeId from, NodeId to,
                           EdgeId edge, std::uint64_t seq) {
    std::vector<std::uint32_t> waits;
    std::uint32_t backoff = 4;
    for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
      waits.push_back(1 + backoff - reliable_send_jitter(seed, from, to, edge,
                                                         seq, attempt, backoff));
      backoff = std::min<std::uint32_t>(backoff * 2, 64);
    }
    return waits;
  };
  const auto base = schedule(0x1517, 0, 1, 0, 1);
  EXPECT_NE(base, schedule(0x1517, 1, 2, 1, 1));  // different edge
  EXPECT_NE(base, schedule(0x1517, 0, 1, 0, 2));  // different seq
  EXPECT_NE(base, schedule(0xabcd, 0, 1, 0, 1));  // different seed
  // And the same coordinates replay the same schedule.
  EXPECT_EQ(base, schedule(0x1517, 0, 1, 0, 1));
}

// Under a heavy synchronized drop pattern, jittered senders still deliver
// exactly once and the retransmit spacing bounds hold.
TEST(ReliableSend, JitteredRetriesStayWithinSpacingBounds) {
  const Graph g = make_path(2);
  FaultConfig config;
  config.drop_rate = 0.5;
  config.horizon = 150;
  FaultPlan plan(11, config);
  FaultyNetwork net(g, &plan);
  ReliableSendOptions options;
  options.initial_backoff = 2;
  options.max_backoff = 8;
  options.timeout_rounds = 400;
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 9, 4.2, options);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.acked);
  // Jitter subtracts at most backoff/2, so spacing stays ≥ 1 + backoff/2 ≥ 2
  // rounds: at most one DATA every other round, plus the initial send.
  EXPECT_LE(r.data_sends, 1 + r.rounds / 2);
}

// --- reliable_send: payload corruption and the integrity word --------------

// With integrity enabled the DATA frame carries one checksum word, so it is
// a 2-word message: delivered at round 2 instead of 1, ACK back at round 3.
// Every checksummed DATA charges exactly one extra word to the result.
TEST(ReliableSend, IntegrityCleanPathCostsOneExtraRound) {
  const Graph g = make_path(2);
  FaultyNetwork net(g, nullptr);
  ReliableSendOptions options;
  options.integrity = true;
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 1, 2.5, options);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.acked);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.rounds, 3u);  // 2-word DATA out, 1-word ACK back
  EXPECT_EQ(r.checksum_words, r.data_sends);
  EXPECT_EQ(r.duplicates_suppressed, 0u);
}

// A single replayed corruption on the first DATA's delivery round: the
// receiver's checksum verification discards the frame (detected corruption
// behaves like a drop), the backoff retransmits, and the clean copy is
// accepted exactly once. No corrupted payload ever reaches the application.
TEST(ReliableSend, CorruptThenRetryDeliversExactlyOnce) {
  const Graph g = make_path(2);
  // The 2-word DATA sent at round 0 is delivered (and its fate consulted) at
  // round 2; directed slot 0 is edge 0 in the 0 -> 1 direction.
  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/0, /*round=*/2, /*subject=*/0,
           /*param=*/0x10}});
  FaultyNetwork net(g, &plan);
  ReliableSendOptions options;
  options.integrity = true;
  options.initial_backoff = 4;  // retransmit strictly after the round-2 loss
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 1, 2.5, options);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.acked);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.data_sends, 2u);  // original + one retransmission
  EXPECT_EQ(r.checksum_words, 2u);
  EXPECT_EQ(r.duplicates_suppressed, 0u);  // the corrupted copy was discarded
  EXPECT_EQ(net.corrupt_detected(), 1u);
  EXPECT_EQ(net.corrupt_delivered(), 0u);
  EXPECT_EQ(net.dropped(), 1u);
  ASSERT_EQ(r.ledger.entries().size(), 1u);
  EXPECT_EQ(r.ledger.entries()[0].label, "reliable-send");
}

// Corruption beyond any budget: every DATA frame is corrupted forever and no
// timeout is configured, so the hard internal budget (the plan's round_limit)
// surfaces a typed ChaosAbortError carrying the partially-charged ledger
// instead of livelocking.
TEST(ReliableSend, CorruptBeyondBudgetThrowsWithPartialLedger) {
  const Graph g = make_path(2);
  FaultConfig config;
  config.corrupt_rate = 1.0;
  config.horizon = FaultConfig::kNoHorizon;
  config.round_limit = 64;
  FaultPlan plan(7, config);
  FaultyNetwork net(g, &plan);
  ReliableSendOptions options;
  options.integrity = true;
  options.timeout_rounds = 0;  // no graceful abort — force the hard budget
  try {
    reliable_send(net, 0, 1, 0, 1, 2.5, options);
    FAIL() << "expected ChaosAbortError";
  } catch (const ChaosAbortError& e) {
    ASSERT_EQ(e.ledger().entries().size(), 1u);
    EXPECT_EQ(e.ledger().entries()[0].label, "reliable-send-abort");
    EXPECT_GE(e.ledger().total_local(), 64u);
  }
  EXPECT_GE(net.corrupt_detected(), 1u);
  EXPECT_EQ(net.corrupt_delivered(), 0u);  // every corruption was caught
}

// Without integrity the same corruption is silent: the protocol acks a
// payload whose bits are wrong. This is the negative space the checksum word
// (and, end-to-end, the verify layer) exists to close.
TEST(ReliableSend, UncheckedCorruptionIsAckedButWrong) {
  const Graph g = make_path(2);
  // 1-word DATA sent at round 0 is delivered at round 1, slot 0.
  FaultPlan plan = FaultPlan::replay(
      0, {{FaultKind::kCorrupt, /*epoch=*/0, /*round=*/1, /*subject=*/0,
           /*param=*/0x10}});
  FaultyNetwork net(g, &plan);
  const ReliableSendResult r = reliable_send(net, 0, 1, 0, 1, 2.5);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.acked);
  EXPECT_EQ(r.checksum_words, 0u);
  EXPECT_EQ(net.corrupt_delivered(), 1u);
  EXPECT_EQ(net.corrupt_detected(), 0u);
}

// Concurrent sequence numbers on the same edge do not confuse each other:
// tags encode (seq << 1) | kind, so a stale DATA for another seq is ignored.
TEST(ReliableSend, SequenceNumbersKeepSendsApart) {
  const Graph g = make_path(2);
  FaultyNetwork net(g, nullptr);
  const ReliableSendResult a = reliable_send(net, 0, 1, 0, /*seq=*/1, 10.0);
  const ReliableSendResult b = reliable_send(net, 0, 1, 0, /*seq=*/2, 20.0);
  EXPECT_TRUE(a.acked);
  EXPECT_TRUE(b.acked);
  EXPECT_EQ(a.duplicates_suppressed + b.duplicates_suppressed, 0u);
}

}  // namespace
}  // namespace dls
