// Differential / fuzz testing: every distributed result in the library is
// cross-checked against an independent sequential computation over a broad
// randomized sweep of graphs, instances, monoids and oracle models.
#include <gtest/gtest.h>

#include <cmath>

#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "laplacian/elimination.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/solvers.hpp"
#include "shortcuts/unicast.hpp"
#include "sim/sim_batch.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

Graph random_family_graph(int family, Rng& rng) {
  switch (family % 5) {
    case 0: return make_grid(4 + rng.next_below(4), 4 + rng.next_below(4));
    case 1: return make_random_regular(24 + 2 * rng.next_below(8), 4, rng);
    case 2: return make_weighted_grid(5, 5 + rng.next_below(3), rng);
    case 3: return make_random_tree(20 + rng.next_below(20), rng);
    default: return make_torus(5, 5 + rng.next_below(3));
  }
}

struct FuzzInstance {
  PartCollection pc;
  std::vector<std::vector<double>> values;
};

FuzzInstance random_instance(const Graph& g, Rng& rng) {
  FuzzInstance inst;
  const std::size_t rho = 1 + rng.next_below(3);
  const std::size_t k = 2 + rng.next_below(4);
  inst.pc = stacked_voronoi_instance(g, k, rho, rng);
  inst.values.resize(inst.pc.num_parts());
  for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < inst.pc.parts[i].size(); ++j) {
      inst.values[i].push_back(rng.next_double() * 10.0 - 5.0);
    }
  }
  return inst;
}

class DifferentialPa
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DifferentialPa, CongestedPaMatchesSequentialFold) {
  const auto [family, seed, model_pick] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + family);
  const Graph g = random_family_graph(family, rng);
  const FuzzInstance inst = random_instance(g, rng);
  CongestedPaOptions options;
  options.model = model_pick == 0   ? PaModel::kSupportedCongest
                  : model_pick == 1 ? PaModel::kCongest
                                    : PaModel::kNcc;
  // Sum monoid.
  {
    const CongestedPaOutcome outcome = solve_congested_pa(
        g, inst.pc, inst.values, AggregationMonoid::sum(), rng, options);
    for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
      double expected = 0.0;
      for (double v : inst.values[i]) expected += v;
      EXPECT_NEAR(outcome.results[i], expected, 1e-9);
    }
  }
  // Min monoid.
  {
    const CongestedPaOutcome outcome = solve_congested_pa(
        g, inst.pc, inst.values, AggregationMonoid::min(), rng, options);
    for (std::size_t i = 0; i < inst.pc.num_parts(); ++i) {
      double expected = std::numeric_limits<double>::infinity();
      for (double v : inst.values[i]) expected = std::min(expected, v);
      EXPECT_DOUBLE_EQ(outcome.results[i], expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialPa,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 3),
                                            ::testing::Values(0, 1, 2)));

// --- Deterministic sharded corpus -----------------------------------------
//
// A property-based sweep far broader than the parameterized cases above:
// kCorpusCases random (graph family × partition × ρ ∈ {1..8} × model ×
// monoid) instances, all derived from one root seed through the SimBatch
// seed-derivation scheme. Each case checks the congested-PA solver's outputs
// word-for-word against a naive sequential fold (inputs are integer-valued,
// so even the sum monoid is exact under any association), and the whole
// corpus doubles as the fixture proving the batch runtime is bit-identical
// across thread counts. To reproduce one failing case standalone, seed an
// Rng with the printed scenario seed and replay corpus_task.
constexpr std::uint64_t kCorpusRootSeed = 0x5EED2022ULL;
constexpr std::size_t kCorpusCases = 216;  // ISSUE 2 asks for >= 200

void corpus_task(Rng& rng, SimOutcome& out) {
  const int family = static_cast<int>(rng.next_below(5));
  const std::size_t rho = 1 + rng.next_below(8);
  const std::size_t k = 2 + rng.next_below(4);
  const int model_pick = static_cast<int>(rng.next_below(3));
  const int monoid_pick = static_cast<int>(rng.next_below(3));
  out.label += " (family=" + std::to_string(family) +
               " rho=" + std::to_string(rho) + " k=" + std::to_string(k) +
               " model=" + std::to_string(model_pick) +
               " monoid=" + std::to_string(monoid_pick) + ")";

  const Graph g = random_family_graph(family, rng);
  const PartCollection pc = stacked_voronoi_instance(g, k, rho, rng);
  // Integer-valued inputs: every intermediate aggregate is a small integer,
  // so the distributed fold equals the sequential fold bit-for-bit no matter
  // how the aggregation tree associates.
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].reserve(pc.parts[i].size());
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      values[i].push_back(static_cast<double>(
          static_cast<std::int64_t>(rng.next_below(11)) - 5));
    }
  }
  const AggregationMonoid monoid = monoid_pick == 0   ? AggregationMonoid::sum()
                                   : monoid_pick == 1 ? AggregationMonoid::min()
                                                      : AggregationMonoid::max();
  CongestedPaOptions options;
  options.model = model_pick == 0   ? PaModel::kSupportedCongest
                  : model_pick == 1 ? PaModel::kCongest
                                    : PaModel::kNcc;
  const CongestedPaOutcome outcome =
      solve_congested_pa(g, pc, values, monoid, rng, options);
  out.ledger = outcome.ledger;

  // results layout: [#parts, distributed..., sequential-oracle...].
  out.results.push_back(static_cast<double>(pc.num_parts()));
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    out.results.push_back(outcome.results[i]);
  }
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    double expected = monoid.identity;
    for (double v : values[i]) expected = monoid.op(expected, v);
    out.results.push_back(expected);
  }
}

SimBatch build_corpus() {
  SimBatch batch(kCorpusRootSeed);
  for (std::size_t c = 0; c < kCorpusCases; ++c) {
    batch.add("corpus" + std::to_string(c), corpus_task);
  }
  return batch;
}

TEST(DifferentialCorpus, CongestedPaMatchesSequentialOracleWordForWord) {
  SimBatch corpus = build_corpus();
  corpus.run();  // serial reference run
  ASSERT_GE(corpus.size(), 200u);
  for (const SimOutcome& out : corpus.outcomes()) {
    ASSERT_FALSE(out.results.empty()) << out.label;
    const auto parts = static_cast<std::size_t>(out.results[0]);
    ASSERT_EQ(out.results.size(), 1 + 2 * parts) << out.label;
    for (std::size_t i = 0; i < parts; ++i) {
      // Exact equality — integer-valued inputs make this well-defined.
      EXPECT_EQ(out.results[1 + i], out.results[1 + parts + i])
          << out.label << " part " << i << " seed " << out.seed;
    }
  }
}

TEST(DifferentialCorpus, BatchLedgersBitIdenticalAcrossThreadCounts) {
  SimBatch serial = build_corpus();
  serial.run(nullptr);
  ThreadPool pool(4);
  SimBatch threaded = build_corpus();
  threaded.run(&pool);
  ASSERT_EQ(serial.outcomes().size(), threaded.outcomes().size());
  for (std::size_t c = 0; c < serial.outcomes().size(); ++c) {
    const SimOutcome& a = serial.outcomes()[c];
    const SimOutcome& b = threaded.outcomes()[c];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.results, b.results) << a.label;  // bitwise vector equality
    EXPECT_TRUE(a.ledger == b.ledger)
        << a.label << ": round/congestion accounting depends on thread count";
  }
  EXPECT_TRUE(serial.merged_ledger() == threaded.merged_ledger());
}

class DifferentialSolver : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DifferentialSolver, DistributedMatchesSequentialCg) {
  const auto [family, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + family);
  Graph g = random_family_graph(family, rng);
  Vec b(g.num_nodes());
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);

  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-8;
  options.base_size = 32;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const LaplacianSolveReport report = solver.solve(b);
  EXPECT_TRUE(report.converged) << g.describe();

  SolveOptions ref_options;
  ref_options.tolerance = 1e-12;
  const SolveResult ref = solve_laplacian_cg(g, b, ref_options);
  EXPECT_LT(relative_error_in_l_norm(g, report.x, ref.x), 1e-5) << g.describe();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialSolver,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 3)));

class DifferentialElimination : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialElimination, EliminationChainSolvesExactly) {
  Rng rng(31337 + GetParam());
  // Sparsifier-shaped inputs: random tree + a few extra edges, random weights.
  Graph g = make_random_tree(16 + rng.next_below(24), rng);
  const std::size_t extras = rng.next_below(6);
  for (std::size_t i = 0; i < extras; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (u != v) g.add_edge(u, v, 0.5 + rng.next_double() * 4.0);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, 0.5 + rng.next_double() * 4.0);
  }
  const EliminationResult elim = eliminate_degree_le2(MinorGraph::identity(g));
  Vec b(g.num_nodes());
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  Vec x;
  if (elim.schur.num_nodes >= 2) {
    const GroundedCholesky schur(elim.schur.as_graph());
    Vec reduced = elim.forward_rhs(b);
    project_mean_zero(reduced);
    x = elim.backward_solution(schur.solve(reduced), b);
  } else {
    x = elim.backward_solution(Vec(elim.schur.num_nodes, 0.0), b);
  }
  const Vec r = sub(b, laplacian_apply(g, x));
  EXPECT_LT(norm2(r), 1e-8 * (norm2(b) + 1)) << g.describe();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialElimination, ::testing::Range(0, 12));

class DifferentialRouting : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialRouting, RoutedPathsRespectMeasuredEnvelope) {
  Rng rng(55441 + GetParam());
  const Graph g = random_family_graph(GetParam(), rng);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 8; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (a != b) pairs.push_back({a, b});
  }
  if (pairs.empty()) return;
  const UnicastSolution solution = route_multiple_unicast(g, pairs, rng);
  // Endpoints honored.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(solution.paths[i].front(), pairs[i].first);
    EXPECT_EQ(solution.paths[i].back(), pairs[i].second);
  }
  // Measured schedule within the Leighton–Maggs–Rao envelope.
  const std::uint64_t rounds = simulate_packet_routing(g, solution.paths, rng);
  EXPECT_LE(rounds, 4 * (solution.congestion + solution.dilation) + 4);
  EXPECT_GE(rounds, solution.dilation);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialRouting, ::testing::Range(0, 10));

}  // namespace
}  // namespace dls
