#include <gtest/gtest.h>

#include <limits>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "shortcuts/quality_estimator.hpp"

namespace dls {
namespace {

TEST(SqEstimator, AnchoredByDiameter) {
  Rng rng(1);
  const Graph g = make_path(40);
  const SqEstimate estimate = estimate_shortcut_quality(g, rng);
  EXPECT_GE(estimate.quality, 39u);  // SQ >= Ω(D); path D = 39
}

TEST(SqEstimator, ExpanderEstimateMuchBelowSqrtN) {
  Rng rng(2);
  const Graph g = make_random_regular(256, 6, rng);
  const SqEstimate estimate = estimate_shortcut_quality(g, rng);
  // Expanders have SQ = polylog(n); the estimate must sit far below √n·D.
  EXPECT_LT(estimate.quality, 80u);
  EXPECT_GE(estimate.quality, estimate.diameter);
}

TEST(SqEstimator, GridEstimateNearDiameter) {
  Rng rng(3);
  const Graph g = make_grid(12, 12);
  const SqEstimate estimate = estimate_shortcut_quality(g, rng);
  // Planar: SQ = Õ(D). Allow polylog slack over D = 22.
  EXPECT_GE(estimate.quality, 22u);
  EXPECT_LE(estimate.quality, 22u * 12);
}

TEST(SqEstimator, ReportsSamples) {
  Rng rng(4);
  const Graph g = make_grid(6, 6);
  const SqEstimate estimate = estimate_shortcut_quality(g, rng);
  EXPECT_GE(estimate.samples.size(), 2u);
  for (const SqSample& sample : estimate.samples) {
    EXPECT_GT(sample.num_parts, 0u);
    EXPECT_FALSE(sample.partition_family.empty());
  }
}

TEST(SqEstimator, ExtraPartitionsIncluded) {
  Rng rng(5);
  const Graph g = make_grid(6, 6);
  const PartCollection rows = grid_row_partition(6, 6);
  SqEstimateOptions options;
  const SqEstimate with_extra =
      estimate_shortcut_quality(g, rng, options, {rows});
  bool found = false;
  for (const SqSample& s : with_extra.samples) {
    found |= s.partition_family.rfind("extra", 0) == 0;
  }
  EXPECT_TRUE(found);
}

TEST(SqEstimator, RejectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  Rng rng(6);
  EXPECT_THROW(estimate_shortcut_quality(g, rng), std::invalid_argument);
}

// A non-finite edge weight would silently poison the diameter and stretch
// computations behind every sample. NaN already cannot enter a Graph (it
// fails the positive-weight precondition); +Inf passes that comparison, so
// the estimator must catch it typed at its own boundary.
TEST(SqEstimator, RejectsNonFiniteWeights) {
  Rng rng(7);
  {
    Graph g = make_path(6);
    EXPECT_THROW(g.set_weight(2, std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
  }
  {
    Graph g = make_path(6);
    g.set_weight(0, std::numeric_limits<double>::infinity());
    EXPECT_THROW(estimate_shortcut_quality(g, rng), std::invalid_argument);
  }
}

}  // namespace
}  // namespace dls
