// End-to-end integration scenarios exercising whole user journeys across
// module boundaries — the flows README.md advertises.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/flow.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "laplacian/tree_solver.hpp"
#include "laplacian/electrical.hpp"
#include "laplacian/mincut.hpp"
#include "laplacian/recursive_solver.hpp"
#include "laplacian/spanning_tree.hpp"
#include "lowerbound/spanning_connected_subgraph.hpp"
#include "shortcuts/quality_estimator.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

TEST(Integration, FileToSolveRoundTrip) {
  // Serialize a network, read it back, estimate SQ, and solve on it.
  Rng rng(1);
  const Graph original = make_weighted_grid(7, 7, rng);
  std::stringstream buffer;
  write_graph(buffer, original, "integration test network");
  const Graph g = read_graph(buffer);

  const SqEstimate sq = estimate_shortcut_quality(g, rng);
  EXPECT_GE(sq.quality, sq.diameter);

  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-8;
  options.base_size = 32;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const LaplacianSolveReport report = solver.solve(random_rhs(g.num_nodes(), rng));
  EXPECT_TRUE(report.converged);
}

TEST(Integration, SolveOnSparsifiedNetworkStaysAccurate) {
  // Sparsify a dense network via the solver-driven resistance sketch, then
  // solve on the sparsifier and compare solutions in the original L-norm.
  Rng rng(2);
  // Dense enough that leverage scores are genuinely small (avg ≈ 0.2).
  const Graph g = make_random_regular(96, 10, rng);
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-10;
  options.base_size = 48;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const SpectralSparsifier sp = spectral_sparsify(g, solver, rng, 0.8);
  ASSERT_TRUE(is_connected(sp.sparsifier));
  EXPECT_LT(sp.sparsifier.num_edges(), g.num_edges());

  const Vec b = random_rhs(g.num_nodes(), rng);
  const LaplacianSolveReport dense_solution = solver.solve(b);
  Rng rng2(3);
  ShortcutPaOracle sparse_oracle(sp.sparsifier, rng2);
  DistributedLaplacianSolver sparse_solver(sparse_oracle, rng2, options);
  const LaplacianSolveReport sparse_solution = sparse_solver.solve(b);
  // A (1±ε) sparsifier's solution approximates the original in L-norm.
  EXPECT_LT(relative_error_in_l_norm(g, sparse_solution.x, dense_solution.x),
            0.8);
}

TEST(Integration, MstThenTreeSolverPipeline) {
  // Distributed MST provides the spanning tree; the tree solver then solves
  // the tree subsystem exactly — the first two stages of the chain.
  Rng rng(4);
  const Graph g = make_weighted_grid(6, 6, rng);
  ShortcutPaOracle oracle(g, rng);
  const DistributedMstResult mst = distributed_mst(oracle, rng);
  TreeLaplacianSolver tree_solver(oracle, mst.tree_edges);
  Graph tree_view(g.num_nodes());
  for (EdgeId e : mst.tree_edges) {
    tree_view.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).weight);
  }
  const Vec b = random_rhs(g.num_nodes(), rng);
  const Vec x = tree_solver.solve(b);
  EXPECT_LT(norm2(sub(b, laplacian_apply(tree_view, x))), 1e-9);
  EXPECT_GT(oracle.ledger().total_local(), 0u);
}

TEST(Integration, DiagnosticsAgreeWithCutStructure) {
  // SCS diagnosis and min-cut must tell a consistent story: dropping every
  // bridge of the best cut disconnects the overlay.
  Rng rng(5);
  const Graph g = make_barbell(12);
  ShortcutPaOracle oracle(g, rng);
  const ApproxMinCutResult cut = approx_min_cut(oracle, rng, 2);
  ASSERT_DOUBLE_EQ(cut.cut_value, 1.0);
  // Overlay = all edges except those crossing the min cut.
  std::vector<EdgeId> overlay;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (cut.side[g.edge(e).u] == cut.side[g.edge(e).v]) overlay.push_back(e);
  }
  EXPECT_FALSE(is_spanning_connected(g, overlay));
  const ScsDecision decision = decide_spanning_connected_via_laplacian(
      g, overlay, OracleKind::kShortcut, rng, 3);
  EXPECT_FALSE(decision.connected);
}

TEST(Integration, EffectiveResistanceConsistentWithSolverAndFlow) {
  // R(s,t) from the solver equals the potential gap of the unit electrical
  // flow, and is bounded below by 1/maxflow (parallel-cut bound).
  Rng rng(6);
  const Graph g = make_weighted_grid(5, 5, rng);
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-11;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const double r_st = effective_resistance(solver, 0, 24);
  EXPECT_GT(r_st, 0.0);
  const double cut_bound = 1.0 / max_flow_value(g, 0, 24);
  EXPECT_GE(r_st + 1e-9, cut_bound);
}

TEST(Integration, AllOracleModelsAgreeOnTheSolution) {
  Rng rng(7);
  const Graph g = make_grid(8, 8);
  const Vec b = random_rhs(g.num_nodes(), rng);
  Vec reference;
  for (int model = 0; model < 3; ++model) {
    Rng r(8);
    std::unique_ptr<CongestedPaOracle> oracle;
    switch (model) {
      case 0: oracle = std::make_unique<ShortcutPaOracle>(g, r); break;
      case 1: oracle = std::make_unique<BaselinePaOracle>(g, r); break;
      default: oracle = std::make_unique<NccPaOracle>(g, r); break;
    }
    LaplacianSolverOptions options;
    options.tolerance = 1e-9;
    options.base_size = 32;
    DistributedLaplacianSolver solver(*oracle, r, options);
    const LaplacianSolveReport report = solver.solve(b);
    EXPECT_TRUE(report.converged) << oracle->name();
    if (model == 0) {
      reference = report.x;
    } else {
      EXPECT_LT(relative_error_in_l_norm(g, report.x, reference), 1e-5)
          << oracle->name();
    }
  }
}

}  // namespace
}  // namespace dls
