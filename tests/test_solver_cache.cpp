// Warm solver-state cache (docs/CACHING.md): the warm-vs-cold determinism
// contract, the round savings that justify the cache, LRU eviction under
// entry and byte budgets, the update_weights classification ladder with its
// boundaries pinned, the strong exception guarantee under fault injection,
// and the session-level persistence of watchdog-rebounded eigenbounds. All
// suite names carry the "SolverCache" prefix so the TSan preset picks them
// up.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "laplacian/solver_cache.hpp"
#include "linalg/solvers.hpp"
#include "sim/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

std::vector<Vec> random_batch(std::size_t k, std::size_t n,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> bs;
  bs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) bs.push_back(random_rhs(n, rng));
  return bs;
}

LaplacianSolverOptions quick_options(double tol = 1e-6) {
  LaplacianSolverOptions options;
  options.tolerance = tol;
  options.base_size = 40;
  return options;
}

/// A fresh, fully deterministic cold stack over a selectable oracle model —
/// the reference a cache entry must be bit-interchangeable with.
struct ColdRig {
  Graph g;
  Rng rng;
  std::unique_ptr<CongestedPaOracle> oracle;
  DistributedLaplacianSolver solver;

  static std::unique_ptr<CongestedPaOracle> make_oracle(const Graph& g,
                                                        Rng& rng,
                                                        CacheOracleKind kind) {
    switch (kind) {
      case CacheOracleKind::kShortcutSupported:
        return std::make_unique<ShortcutPaOracle>(g, rng);
      case CacheOracleKind::kShortcutCongest:
        return std::make_unique<ShortcutPaOracle>(
            g, rng, SchedulingPolicy::kRandomPriority, PaModel::kCongest);
      case CacheOracleKind::kNcc:
        return std::make_unique<NccPaOracle>(g, rng);
      case CacheOracleKind::kBaseline:
        return std::make_unique<BaselinePaOracle>(g, rng);
    }
    return nullptr;
  }

  ColdRig(Graph graph, std::uint64_t seed,
          const LaplacianSolverOptions& options = quick_options(),
          CacheOracleKind kind = CacheOracleKind::kShortcutSupported)
      : g(std::move(graph)), rng(seed),
        oracle(make_oracle(g, rng, kind)),
        solver(*oracle, rng, options) {}
};

void expect_reports_equal(const LaplacianSolveReport& a,
                          const LaplacianSolveReport& b) {
  EXPECT_EQ(a.x, b.x);  // bitwise, not within-tolerance
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  EXPECT_EQ(a.residual_history, b.residual_history);
  EXPECT_EQ(a.outer_iterations, b.outer_iterations);
  EXPECT_EQ(a.pa_calls, b.pa_calls);
  EXPECT_EQ(a.local_rounds, b.local_rounds);
  EXPECT_EQ(a.global_rounds, b.global_rounds);
  EXPECT_EQ(a.hybrid_rounds, b.hybrid_rounds);
}

double residual_on(const Graph& g, const Vec& x, const Vec& b) {
  Vec r = b;
  project_mean_zero(r);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const double flow = edge.weight * (x[edge.u] - x[edge.v]);
    r[edge.u] -= flow;
    r[edge.v] += flow;
  }
  double rr = 0, bb = 0;
  Vec pb = b;
  project_mean_zero(pb);
  for (std::size_t i = 0; i < r.size(); ++i) {
    rr += r[i] * r[i];
    bb += pb[i] * pb[i];
  }
  return std::sqrt(rr / bb);
}

SolverCacheOptions cache_options(
    CacheOracleKind kind = CacheOracleKind::kShortcutSupported,
    std::uint64_t seed = 77) {
  SolverCacheOptions options;
  options.solver = quick_options();
  options.oracle = kind;
  options.seed = seed;
  return options;
}

// --- Determinism: warm ≡ cold, bitwise. -----------------------------------

TEST(SolverCacheDeterminism, WarmSolvesBitIdenticalToColdSupported) {
  const Graph g = make_grid(9, 9);
  const std::vector<Vec> bs = random_batch(4, g.num_nodes(), 11);

  SolverCache cache(cache_options(CacheOracleKind::kShortcutSupported, 77));
  auto acquired = cache.acquire(g);
  EXPECT_FALSE(acquired.hit);

  for (std::size_t i = 0; i < bs.size(); ++i) {
    SCOPED_TRACE("rhs=" + std::to_string(i));
    // Reference: a fresh identically-seeded cold stack per rhs. Under
    // Supported-CONGEST the embedded construction cost is zero, so even the
    // charged rounds must agree, not just the numerics.
    ColdRig cold(g, 77);
    const LaplacianSolveReport ref = cold.solver.solve(bs[i]);
    const LaplacianSolveReport warm = acquired.state.solve(bs[i]);
    EXPECT_TRUE(warm.converged);
    expect_reports_equal(warm, ref);
  }
  EXPECT_EQ(acquired.state.solves(), bs.size());
}

TEST(SolverCacheDeterminism, CongestWarmIdenticalValuesFewerRounds) {
  const Graph g = make_grid(9, 9);
  const std::vector<Vec> bs = random_batch(3, g.num_nodes(), 12);

  SolverCache cache(cache_options(CacheOracleKind::kShortcutCongest, 5));
  CachedSolverState& state = cache.acquire(g).state;
  EXPECT_GT(state.build_rounds(), 0u);

  for (std::size_t i = 0; i < bs.size(); ++i) {
    SCOPED_TRACE("rhs=" + std::to_string(i));
    ColdRig cold(g, 5, quick_options(), CacheOracleKind::kShortcutCongest);
    const LaplacianSolveReport ref = cold.solver.solve(bs[i]);
    const LaplacianSolveReport warm = state.solve(bs[i]);
    // Warm charging never feeds numerics: identical solution and iteration
    // trajectory...
    EXPECT_EQ(warm.x, ref.x);
    EXPECT_EQ(warm.residual_history, ref.residual_history);
    EXPECT_EQ(warm.outer_iterations, ref.outer_iterations);
    EXPECT_EQ(warm.pa_calls, ref.pa_calls);
    // ...but the CONGEST cold path re-pays shortcut construction inside
    // every PA call, which the entry paid once at build.
    EXPECT_LT(warm.local_rounds, ref.local_rounds);
  }
}

TEST(SolverCacheDeterminism, SecondAcquireIsAHitAndSolvesIdentically) {
  const Graph g = make_grid(8, 8);
  Rng rhs_rng(3);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);

  SolverCache cache(cache_options());
  const LaplacianSolveReport first = cache.acquire(g).state.solve(b);
  auto again = cache.acquire(g);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.update.classification, WeightUpdateClass::kNoChange);
  const LaplacianSolveReport second = again.state.solve(b);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // A long-lived entry replays measured costs; same rhs → same answer, same
  // per-RHS charge.
  expect_reports_equal(second, first);
}

TEST(SolverCacheDeterminism, BatchedWarmSolvesMatchSequentialWarmSolves) {
  const Graph g = make_grid(8, 8);
  const std::vector<Vec> bs = random_batch(5, g.num_nodes(), 21);

  SolverCache sequential_cache(cache_options());
  CachedSolverState& seq = sequential_cache.acquire(g).state;
  std::vector<LaplacianSolveReport> ref;
  for (const Vec& b : bs) ref.push_back(seq.solve(b));

  SolverCache batched_cache(cache_options());
  ThreadPool pool(4);
  const auto got = batched_cache.acquire(g).state.solve_batch(bs, &pool);
  ASSERT_EQ(got.size(), bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    SCOPED_TRACE("slot=" + std::to_string(i));
    EXPECT_EQ(got[i].x, ref[i].x);
    EXPECT_EQ(got[i].residual_history, ref[i].residual_history);
  }
}

// --- LRU eviction under entry and byte budgets. ---------------------------

TEST(SolverCacheLru, EntryCapEvictsLeastRecentlyUsed) {
  SolverCacheOptions options = cache_options();
  options.max_entries = 2;
  SolverCache cache(options);

  const Graph a = make_grid(6, 6);
  const Graph b = make_cycle(40);
  const Graph c = make_balanced_binary_tree(37);

  cache.acquire(a);
  cache.acquire(b);
  EXPECT_EQ(cache.size(), 2u);
  cache.acquire(a);  // touch: a becomes most-recent, b is now LRU
  cache.acquire(c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_FALSE(cache.contains(b));
  EXPECT_TRUE(cache.contains(c));
}

TEST(SolverCacheLru, ByteBudgetEvictsButNeverTheMostRecentEntry) {
  SolverCacheOptions options = cache_options();
  options.memory_budget_bytes = 1;  // every entry alone exceeds this
  SolverCache cache(options);

  const Graph a = make_grid(6, 6);
  const Graph b = make_cycle(40);
  cache.acquire(a);
  // The sole entry is over budget but must survive: serving proceeds.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.total_bytes(), options.memory_budget_bytes);
  cache.acquire(b);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(SolverCacheLru, ApproxBytesAccountsForTheHierarchy) {
  SolverCache cache(cache_options());
  CachedSolverState& small = cache.acquire(make_grid(4, 4)).state;
  CachedSolverState& large = cache.acquire(make_grid(12, 12)).state;
  EXPECT_GT(small.approx_bytes(), sizeof(CachedSolverState));
  EXPECT_GT(large.approx_bytes(), small.approx_bytes());
  EXPECT_EQ(cache.total_bytes(), small.approx_bytes() + large.approx_bytes());
}

// --- The update_weights classification ladder. ----------------------------

TEST(SolverCacheUpdates, MatchingWeightsClassifyAsNoChange) {
  const Graph g = make_grid(7, 7);
  SolverCache cache(cache_options());
  CachedSolverState& state = cache.acquire(g).state;
  std::vector<WeightDelta> deltas;
  for (EdgeId e = 0; e < g.num_edges(); ++e) deltas.push_back({e, g.edge(e).weight});
  const WeightUpdateReport report = state.update_weights(deltas);
  EXPECT_EQ(report.classification, WeightUpdateClass::kNoChange);
  EXPECT_EQ(report.edges_changed, 0u);
  EXPECT_EQ(report.charged_local_rounds, 0u);
}

TEST(SolverCacheUpdates, UniformScalingRescalesExactly) {
  const Graph g = make_grid(7, 7);
  Rng rhs_rng(9);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);

  SolverCache cache(cache_options());
  CachedSolverState& state = cache.acquire(g).state;
  const Vec x1 = state.solve(b).x;

  const double c = 3.0;
  Graph scaled(g.num_nodes());
  for (const Edge& e : g.edges()) scaled.add_edge(e.u, e.v, e.weight * c);
  auto acquired = cache.acquire(scaled);
  EXPECT_TRUE(acquired.hit);
  EXPECT_EQ(acquired.update.classification, WeightUpdateClass::kRescale);
  EXPECT_EQ(acquired.state.weight_scale(), c);

  // (cL)x = b ⇔ x = x₁/c, exactly — same stored solve, one exact division.
  const Vec x2 = acquired.state.solve(b).x;
  ASSERT_EQ(x2.size(), x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x2[i], x1[i] / c);
  EXPECT_LT(residual_on(scaled, x2, b), 1e-5);
}

TEST(SolverCacheUpdates, SmallOffTreePerturbationReusesPreconditioner) {
  const Graph g = make_grid(7, 7);
  SolverCache cache(cache_options());
  CachedSolverState& state = cache.acquire(g).state;

  // Pick an edge outside the level-0 low-stretch tree: the reuse rung's
  // tighter tree limit must not be what decides this case.
  const std::vector<EdgeId> tree = state.solver().level0_tree_edges();
  ASSERT_FALSE(tree.empty());
  std::vector<char> on_tree(g.num_edges(), 0);
  for (EdgeId e : tree) on_tree[e] = 1;
  EdgeId off_tree = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (on_tree[e] == 0) { off_tree = e; break; }
  }
  ASSERT_NE(off_tree, kInvalidEdge);

  const WeightUpdateReport report =
      state.update_weights({{off_tree, g.edge(off_tree).weight * 1.2}});
  EXPECT_EQ(report.classification, WeightUpdateClass::kReusePreconditioner);
  EXPECT_EQ(report.edges_changed, 1u);
  EXPECT_NEAR(report.spectral_ratio, 1.2, 1e-12);
  EXPECT_EQ(report.tree_ratio, 1.0);
  EXPECT_EQ(report.charged_local_rounds, 1u);

  // The refreshed level-0 operator answers for the *new* graph: residuals
  // are measured against it, so the solve still converges to tolerance.
  Graph perturbed(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    perturbed.add_edge(edge.u, edge.v,
                       e == off_tree ? edge.weight * 1.2 : edge.weight);
  }
  Rng rhs_rng(10);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport solved = state.solve(b);
  EXPECT_TRUE(solved.converged);
  EXPECT_LT(residual_on(perturbed, solved.x, b), 1e-5);
}

TEST(SolverCacheUpdates, TreeEdgeDriftEscalatesToPartialRebuild) {
  const Graph g = make_grid(7, 7);
  SolverCache cache(cache_options());
  CachedSolverState& state = cache.acquire(g).state;

  const std::vector<EdgeId> tree = state.solver().level0_tree_edges();
  ASSERT_FALSE(tree.empty());
  const EdgeId e = tree.front();
  // σ = 1.2 is within the generic reuse limit (1.25) but past the tree limit
  // (1.1): the boundary between the first two rungs is the tree check.
  const WeightUpdateReport report =
      state.update_weights({{e, g.edge(e).weight * 1.2}});
  EXPECT_EQ(report.classification, WeightUpdateClass::kPartialRebuild);
  EXPECT_NEAR(report.tree_ratio, 1.2, 1e-12);
  EXPECT_GT(report.charged_local_rounds, 1u);
  // The sweep re-derived the numerics in place: drift resets.
  EXPECT_EQ(state.cumulative_drift(), 1.0);

  Graph perturbed(g.num_nodes());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& edge = g.edge(id);
    perturbed.add_edge(edge.u, edge.v,
                       id == e ? edge.weight * 1.2 : edge.weight);
  }
  Rng rhs_rng(14);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport solved = state.solve(b);
  EXPECT_TRUE(solved.converged);
  EXPECT_LT(residual_on(perturbed, solved.x, b), 1e-5);
}

TEST(SolverCacheUpdates, CumulativeDriftEscalatesEventually) {
  const Graph g = make_grid(7, 7);
  SolverCache cache(cache_options());
  CachedSolverState& state = cache.acquire(g).state;

  const std::vector<EdgeId> tree = state.solver().level0_tree_edges();
  std::vector<char> on_tree(g.num_edges(), 0);
  for (EdgeId e : tree) on_tree[e] = 1;
  EdgeId off_tree = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (on_tree[e] == 0) { off_tree = e; break; }
  }
  ASSERT_NE(off_tree, kInvalidEdge);

  // Repeated ×1.2 nudges: each is individually reusable, but the drift limit
  // (2.0) bounds how far the chain may stray before a sweep. 1.2³ ≈ 1.73
  // still reuses; the fourth nudge (×1.2 ⇒ 2.07 > 2.0) must escalate.
  double w = g.edge(off_tree).weight;
  for (int step = 0; step < 3; ++step) {
    w *= 1.2;
    const WeightUpdateReport r = state.update_weights({{off_tree, w}});
    ASSERT_EQ(r.classification, WeightUpdateClass::kReusePreconditioner)
        << "step " << step;
  }
  EXPECT_NEAR(state.cumulative_drift(), 1.2 * 1.2 * 1.2, 1e-9);
  w *= 1.2;
  const WeightUpdateReport r = state.update_weights({{off_tree, w}});
  EXPECT_EQ(r.classification, WeightUpdateClass::kPartialRebuild);
  EXPECT_EQ(state.cumulative_drift(), 1.0);
}

TEST(SolverCacheUpdates, LargePerturbationTriggersFullRebuild) {
  const Graph g = make_grid(7, 7);
  SolverCache cache(cache_options(CacheOracleKind::kShortcutSupported, 40));
  cache.acquire(g);

  Graph heavy(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    heavy.add_edge(edge.u, edge.v, e == 0 ? edge.weight * 8.0 : edge.weight);
  }
  auto acquired = cache.acquire(heavy);
  EXPECT_TRUE(acquired.hit);
  EXPECT_EQ(acquired.update.classification, WeightUpdateClass::kFullRebuild);
  EXPECT_EQ(acquired.state.full_rebuilds(), 1u);
  EXPECT_EQ(acquired.state.weight_scale(), 1.0);

  // A rebuilt entry is bit-interchangeable with a cold stack on the new
  // weights: same root seed, same construction order.
  Rng rhs_rng(17);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  ColdRig cold(heavy, 40);
  expect_reports_equal(acquired.state.solve(b), cold.solver.solve(b));
}

TEST(SolverCacheUpdates, PartialRebuildTracksAColdSolverWithinTolerance) {
  const Graph g = make_grid(8, 8);
  SolverCache cache(cache_options());
  cache.acquire(g);

  // σ = 3 on two edges: beyond reuse (1.25), within partial (4.0).
  Graph perturbed(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    perturbed.add_edge(edge.u, edge.v,
                       (e == 1 || e == 5) ? edge.weight * 3.0 : edge.weight);
  }
  auto acquired = cache.acquire(perturbed);
  EXPECT_TRUE(acquired.hit);
  EXPECT_EQ(acquired.update.classification, WeightUpdateClass::kPartialRebuild);

  Rng rhs_rng(23);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport warm = acquired.state.solve(b);
  EXPECT_TRUE(warm.converged);
  // Not bitwise — the sweep keeps the cached tree and off-tree sample rather
  // than resampling — but it answers the same system to the same tolerance.
  EXPECT_LT(residual_on(perturbed, warm.x, b), 1e-5);
}

// --- Fault injection: a throw must never corrupt cached state. ------------

FaultConfig abort_prone_config() {
  FaultConfig config;
  config.drop_rate = 0.9;
  config.horizon = FaultConfig::kNoHorizon;  // never goes clean
  config.round_limit = 64;                   // wedged phases abort loudly
  return config;
}

TEST(SolverCacheFaults, AbortDuringBuildLeavesCacheEmpty) {
  const Graph g = make_grid(7, 7);
  FaultPlan plan(/*seed=*/77, abort_prone_config());
  SolverCacheOptions options = cache_options(CacheOracleKind::kShortcutCongest);
  options.oracle_hook = [&plan](CongestedPaOracle& oracle) {
    auto* shortcut = dynamic_cast<ShortcutPaOracle*>(&oracle);
    ASSERT_NE(shortcut, nullptr);
    shortcut->set_fault_plan(&plan);
  };
  SolverCache cache(options);
  EXPECT_THROW(cache.acquire(g), ChaosAbortError);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(g));
  EXPECT_EQ(cache.total_bytes(), 0u);

  // With the faults cleared the same cache recovers: nothing half-built was
  // retained, so the next acquire builds from scratch and serves.
  SolverCache clean(cache_options(CacheOracleKind::kShortcutCongest));
  Rng rhs_rng(31);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  EXPECT_TRUE(clean.acquire(g).state.solve(b).converged);
}

TEST(SolverCacheFaults, AbortDuringFullRebuildPreservesTheOldEntry) {
  const Graph g = make_grid(7, 7);
  FaultPlan plan(/*seed=*/99, abort_prone_config());
  int builds = 0;
  SolverCacheOptions options = cache_options(CacheOracleKind::kShortcutCongest);
  options.oracle_hook = [&plan, &builds](CongestedPaOracle& oracle) {
    // First build (the entry) is clean; the rebuild's fresh oracle gets the
    // fault plan, so the candidate stack aborts mid-measurement.
    if (++builds >= 2) {
      dynamic_cast<ShortcutPaOracle&>(oracle).set_fault_plan(&plan);
    }
  };
  SolverCache cache(options);
  CachedSolverState& state = cache.acquire(g).state;
  Rng rhs_rng(37);
  const Vec b = random_rhs(g.num_nodes(), rhs_rng);
  const LaplacianSolveReport before = state.solve(b);

  // σ = 8 forces the full-rebuild rung, whose candidate build throws.
  EXPECT_THROW(state.update_weights({{0, g.edge(0).weight * 8.0}}),
               ChaosAbortError);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(state.full_rebuilds(), 0u);

  // Strong guarantee: the entry still answers for its pre-update graph,
  // bit-identically to before.
  const LaplacianSolveReport after = state.solve(b);
  EXPECT_EQ(after.x, before.x);
  EXPECT_EQ(after.residual_history, before.residual_history);
  EXPECT_TRUE(cache.contains(g));
}

// --- Chebyshev eigenbounds: reuse, and rebound persistence. ---------------

LaplacianSolverOptions chebyshev_options() {
  LaplacianSolverOptions options = quick_options();
  options.outer = OuterIteration::kChebyshev;
  return options;
}

TEST(SolverCacheEigenbounds, WarmChebyshevMatchesRhsIndependentColdSolves) {
  const Graph g = make_grid(9, 9);
  const std::vector<Vec> bs = random_batch(3, g.num_nodes(), 41);

  SolverCacheOptions options = cache_options();
  options.solver = chebyshev_options();
  SolverCache cache(options);
  CachedSolverState& state = cache.acquire(g).state;

  // The entry forces rhs_independent_eigenbounds (header contract), so the
  // cold reference must run with it too.
  LaplacianSolverOptions cold_options = chebyshev_options();
  cold_options.rhs_independent_eigenbounds = true;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    SCOPED_TRACE("rhs=" + std::to_string(i));
    ColdRig cold(g, 77, cold_options);
    const LaplacianSolveReport ref = cold.solver.solve(bs[i]);
    const LaplacianSolveReport warm = state.solve(bs[i]);
    EXPECT_EQ(warm.x, ref.x);
    EXPECT_EQ(warm.residual_history, ref.residual_history);
    EXPECT_EQ(warm.outer_iterations, ref.outer_iterations);
    if (i == 0) {
      // The first warm solve estimates the bound exactly as a cold solve.
      EXPECT_EQ(warm.local_rounds, ref.local_rounds);
    } else {
      // Later warm solves reuse it and skip the charged power iteration.
      EXPECT_LT(warm.local_rounds, ref.local_rounds);
    }
  }
  ASSERT_TRUE(state.cached_eigenbound().has_value());
}

TEST(SolverCacheEigenbounds, WatchdogReboundPersistsIntoTheSession) {
  // Force divergence: a bare-tree preconditioner with zero power iterations
  // starts from hi = 1.5, far below λ_max(M⁻¹L), so Chebyshev amplifies and
  // the watchdog rebounds (doubling hi) until the recurrence converges.
  const Graph g = make_grid(9, 9);
  LaplacianSolverOptions options = quick_options();
  options.outer = OuterIteration::kChebyshev;
  options.tree_preconditioner_only = true;
  options.power_iterations = 0;
  options.rhs_independent_eigenbounds = true;
  options.watchdog.divergence_factor = 10.0;
  options.watchdog.max_restarts = 6;

  ColdRig rig(g, 53, options);
  SolveSessionOptions session_options;
  session_options.reuse_chebyshev_eigenbounds = true;
  SolveSession session(rig.solver, session_options);
  const std::vector<Vec> bs = random_batch(2, g.num_nodes(), 59);

  const auto first = session.solve_batch({bs[0]});
  ASSERT_GT(first[0].watchdog.rebounds, 0u)
      << "config did not force a rebound; the regression test is vacuous";
  ASSERT_TRUE(session.cached_eigenbound().has_value());
  // The session's stored bound must be the *rebounded* one (> the initial
  // 1.5 estimate), not the stale pre-divergence value.
  EXPECT_GT(*session.cached_eigenbound(), 1.5);

  // Regression (the bug this pins): the second batch reuses the widened
  // bound and must not re-diverge against the stale estimate.
  const auto second = session.solve_batch({bs[1]});
  EXPECT_EQ(second[0].watchdog.rebounds, 0u);
  EXPECT_TRUE(second[0].converged);
}

// --- Metrics and accounting sanity. ---------------------------------------

TEST(SolverCacheAccounting, BuildChargesLandOnTheEntryLedger) {
  const Graph g = make_grid(8, 8);
  SolverCache cache(cache_options(CacheOracleKind::kShortcutCongest));
  CachedSolverState& state = cache.acquire(g).state;
  ASSERT_GT(state.build_rounds(), 0u);

  const RoundLedger& ledger = state.oracle().ledger();
  std::uint64_t construct = 0, measure = 0, base = 0;
  for (const LedgerEntry& e : ledger.entries()) {
    if (e.label == "cache/construct-hierarchy") construct += e.local_rounds;
    if (e.label == "cache/measure-instances") {
      measure += e.local_rounds + e.global_rounds;
    }
    if (e.label == "cache/base-factor") base += e.local_rounds;
  }
  EXPECT_GT(construct, 0u);
  EXPECT_GT(measure, 0u);
  EXPECT_GT(base, 0u);
  EXPECT_EQ(construct + measure + base, state.build_rounds());
  EXPECT_TRUE(state.oracle().warm_charging());
}

}  // namespace
}  // namespace dls
