#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace dls {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a(), b());
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, LinearFitExact) {
  const LinearFit f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 1.5, 1e-9);
  EXPECT_NEAR(f.constant, 3.0, 1e-9);
}

TEST(Stats, FitRequiresMatchingSizes) {
  EXPECT_THROW(fit_linear({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, ConstantSeriesFitsPerfectly) {
  // Zero total variance with a perfect fit: r² is 1, not 0/0 garbage.
  const LinearFit f = fit_linear({1, 2, 3, 4}, {5, 5, 5, 5});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);
}

TEST(Stats, DegenerateXReportsNoFit) {
  // All-equal x: slope is undefined and the mean-line "fit" leaves real
  // residuals, so r² must be 0, never 1 (this used to report a perfect fit).
  const LinearFit f = fit_linear({2, 2, 2}, {1, 5, 9});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r2, 0.0);
}

TEST(Stats, SummaryExcludesAndFlagsNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Summary s = summarize({1.0, nan, 3.0, inf, 2.0, -inf});
  EXPECT_FALSE(s.finite);
  EXPECT_EQ(s.non_finite, 3u);
  EXPECT_EQ(s.count, 6u);  // total inputs, poisoned ones included
  // Statistics describe the finite subset {1, 2, 3}.
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Stats, SummaryAllNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Summary s = summarize({nan, nan});
  EXPECT_FALSE(s.finite);
  EXPECT_EQ(s.non_finite, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);  // defaults, not NaN
}

TEST(Stats, LinearFitSkipsAndFlagsNonFinitePairs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // The poisoned pairs sit on a different line; excluding them must recover
  // the clean fit exactly.
  const LinearFit f =
      fit_linear({1, 2, nan, 3, 4, 5}, {3, 5, 100.0, 7, inf, 11});
  EXPECT_FALSE(f.finite);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitAllPoisonedReturnsZeroNotNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const LinearFit f = fit_linear({nan, nan, nan}, {1.0, 2.0, 3.0});
  EXPECT_FALSE(f.finite);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 0.0);
  EXPECT_DOUBLE_EQ(f.r2, 0.0);  // never reports a fit it did not make
}

TEST(Stats, PowerFitSkipsAndFlagsNonFinitePairs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  x.push_back(64.0);
  y.push_back(nan);
  const PowerFit f = fit_power(x, y);
  EXPECT_FALSE(f.finite);
  EXPECT_NEAR(f.exponent, 1.5, 1e-9);
  EXPECT_NEAR(f.constant, 3.0, 1e-9);
}

TEST(Stats, CleanSeriesStayFlaggedFinite) {
  EXPECT_TRUE(summarize({1.0, 2.0}).finite);
  EXPECT_TRUE(fit_linear({1, 2, 3}, {1, 2, 3}).finite);
  EXPECT_TRUE(fit_power({1, 2, 4}, {1, 2, 4}).finite);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("| a | bb |"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Flags, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "--n", "32", "--eps=0.5", "--verbose"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(Flags, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, InlinePoolRunsSubmissionsInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);  // no threads spawned: inline mode
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(order.empty());  // nothing runs until wait_idle
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SubmitAndWaitIdleCompletesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, NestedParallelForDegradesToSerialWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // Nested use from a worker: must run serially, not hang.
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, ParallelForEachWithNullPoolRunsInIndexOrder) {
  std::vector<std::size_t> order;
  parallel_for_each(nullptr, 6, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPool, PoolDestructionDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&done] { done.fetch_add(1); });
  }  // ~ThreadPool waits for idle before joining
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace dls
