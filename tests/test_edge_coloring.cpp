#include <gtest/gtest.h>

#include "congested_pa/edge_coloring.hpp"

namespace dls {
namespace {

std::vector<MultiEdge> path_edges(std::size_t n) {
  std::vector<MultiEdge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<NodeId>(v + 1)});
  return edges;
}

TEST(EdgeColoring, MaxDegreeCountsMultiplicity) {
  std::vector<MultiEdge> edges{{0, 1}, {0, 1}, {0, 2}};
  EXPECT_EQ(multigraph_max_degree(4, edges), 3u);
}

TEST(EdgeColoring, PathIsProperlyColored) {
  Rng rng(1);
  const auto edges = path_edges(20);
  const EdgeColoring coloring = color_multigraph(20, edges, rng);
  EXPECT_TRUE(is_proper_edge_coloring(20, edges, coloring.colors));
  EXPECT_LE(coloring.max_color_used, coloring.num_colors);
  EXPECT_GE(coloring.num_colors, 3u);  // Δ=2, palette ≥ Δ+1
}

TEST(EdgeColoring, ParallelEdgesGetDistinctColors) {
  Rng rng(2);
  std::vector<MultiEdge> edges{{0, 1}, {0, 1}, {0, 1}, {0, 1}};
  const EdgeColoring coloring = color_multigraph(2, edges, rng);
  EXPECT_TRUE(is_proper_edge_coloring(2, edges, coloring.colors));
  std::set<std::uint32_t> distinct(coloring.colors.begin(), coloring.colors.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(EdgeColoring, StarNeedsDegreeManyColors) {
  Rng rng(3);
  std::vector<MultiEdge> edges;
  for (NodeId leaf = 1; leaf <= 10; ++leaf) edges.push_back({0, leaf});
  const EdgeColoring coloring = color_multigraph(11, edges, rng);
  EXPECT_TRUE(is_proper_edge_coloring(11, edges, coloring.colors));
  std::set<std::uint32_t> distinct(coloring.colors.begin(), coloring.colors.end());
  EXPECT_EQ(distinct.size(), 10u);  // all star edges share the hub
}

TEST(EdgeColoring, EmptyInput) {
  Rng rng(4);
  const EdgeColoring coloring = color_multigraph(5, {}, rng);
  EXPECT_TRUE(coloring.colors.empty());
  EXPECT_EQ(coloring.rounds, 0u);
}

TEST(EdgeColoring, RejectsSelfLoop) {
  Rng rng(5);
  std::vector<MultiEdge> edges{{1, 1}};
  EXPECT_THROW(color_multigraph(3, edges, rng), std::invalid_argument);
}

TEST(EdgeColoring, RoundsLogarithmicInPractice) {
  Rng rng(6);
  // A large random multigraph: O(log n) rounds whp with a 2Δ palette.
  std::vector<MultiEdge> edges;
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(200));
    NodeId v = static_cast<NodeId>(rng.next_below(200));
    while (v == u) v = static_cast<NodeId>(rng.next_below(200));
    edges.push_back({u, v});
  }
  const EdgeColoring coloring = color_multigraph(200, edges, rng);
  EXPECT_TRUE(is_proper_edge_coloring(200, edges, coloring.colors));
  EXPECT_LE(coloring.rounds, 40u);
}

TEST(EdgeColoring, TightPaletteStillProper) {
  Rng rng(7);
  const auto edges = path_edges(30);
  const EdgeColoring coloring = color_multigraph(30, edges, rng, 1.0);
  EXPECT_TRUE(is_proper_edge_coloring(30, edges, coloring.colors));
  EXPECT_EQ(coloring.num_colors, 3u);  // max(Δ+1, Δ) = 3
}


TEST(GreedyColoring, ProperWithinTwoDeltaMinusOne) {
  Rng rng(11);
  std::vector<MultiEdge> edges;
  for (int i = 0; i < 600; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(60));
    NodeId v = static_cast<NodeId>(rng.next_below(60));
    while (v == u) v = static_cast<NodeId>(rng.next_below(60));
    edges.push_back({u, v});
  }
  const EdgeColoring coloring = color_multigraph_greedy(60, edges);
  EXPECT_TRUE(is_proper_edge_coloring(60, edges, coloring.colors));
  const std::size_t delta = multigraph_max_degree(60, edges);
  EXPECT_LE(coloring.max_color_used, 2 * delta - 1);
}

TEST(GreedyColoring, DeterministicAcrossCalls) {
  std::vector<MultiEdge> edges{{0, 1}, {1, 2}, {0, 2}, {0, 1}};
  const EdgeColoring a = color_multigraph_greedy(3, edges);
  const EdgeColoring b = color_multigraph_greedy(3, edges);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, 0u);
}

TEST(GreedyColoring, PathUsesTwoColors) {
  std::vector<MultiEdge> edges;
  for (NodeId v = 0; v + 1 < 12; ++v) edges.push_back({v, static_cast<NodeId>(v + 1)});
  const EdgeColoring coloring = color_multigraph_greedy(12, edges);
  EXPECT_EQ(coloring.max_color_used, 2u);
}

class ColoringSweep : public ::testing::TestWithParam<int> {};

TEST_P(ColoringSweep, ProperAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<MultiEdge> edges;
  // ρ stacked cycles: the multigraph of a typical path-restricted instance.
  for (int layer = 0; layer < 4; ++layer) {
    for (NodeId v = 0; v < 24; ++v) {
      edges.push_back({v, static_cast<NodeId>((v + 1) % 24)});
    }
  }
  const EdgeColoring coloring = color_multigraph(24, edges, rng);
  EXPECT_TRUE(is_proper_edge_coloring(24, edges, coloring.colors));
  EXPECT_LE(coloring.max_color_used, 16u);  // Δ=8, palette 2Δ
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace dls
