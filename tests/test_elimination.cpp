#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/elimination.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/laplacian.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

/// Solve the input minor's system through elimination + exact Schur solve,
/// and compare with a direct exact solve.
void check_elimination_solve(const MinorGraph& minor, Rng& rng) {
  const Graph view = minor.as_graph();
  const EliminationResult elim = eliminate_degree_le2(minor);
  const Vec b = random_rhs(view.num_nodes(), rng);
  Vec x;
  if (elim.schur.num_nodes >= 2) {
    const Graph schur_view = elim.schur.as_graph();
    const GroundedCholesky schur_solver(schur_view);
    Vec reduced = elim.forward_rhs(b);
    project_mean_zero(reduced);
    x = elim.backward_solution(schur_solver.solve(reduced), b);
  } else {
    x = elim.backward_solution(Vec(elim.schur.num_nodes, 0.0), b);
  }
  const Vec r = sub(b, laplacian_apply(view, x));
  EXPECT_LT(norm2(r), 1e-8 * (norm2(b) + 1)) << view.describe();
}

TEST(Elimination, PathCollapsesToSingleNode) {
  const Graph g = make_path(12);
  const EliminationResult elim = eliminate_degree_le2(MinorGraph::identity(g));
  EXPECT_EQ(elim.schur.num_nodes, 1u);
  EXPECT_EQ(elim.steps.size(), 11u);
}

TEST(Elimination, TreeCollapsesCompletely) {
  Rng rng(1);
  const Graph g = make_random_tree(30, rng);
  const EliminationResult elim = eliminate_degree_le2(MinorGraph::identity(g));
  EXPECT_EQ(elim.schur.num_nodes, 1u);
}

TEST(Elimination, CycleStopsAtMinRemaining) {
  const Graph g = make_cycle(10);
  const EliminationResult elim =
      eliminate_degree_le2(MinorGraph::identity(g), 3);
  EXPECT_EQ(elim.schur.num_nodes, 3u);
  // The 3 survivors form a (multi-)cycle whose edges host the spliced paths.
  EXPECT_GE(elim.max_chain_hops, 2u);
}

TEST(Elimination, GridKeepsHighDegreeCore) {
  const Graph g = make_grid(6, 6);
  const EliminationResult elim = eliminate_degree_le2(MinorGraph::identity(g));
  // Grid interior has degree 4 — only boundary chains disappear.
  EXPECT_GT(elim.schur.num_nodes, 10u);
  EXPECT_LT(elim.schur.num_nodes, g.num_nodes());
}

TEST(Elimination, SolveExactOnPath) {
  Rng rng(2);
  const Graph g = make_path(15);
  check_elimination_solve(MinorGraph::identity(g), rng);
}

TEST(Elimination, SolveExactOnWeightedGrid) {
  Rng rng(3);
  const Graph g = make_weighted_grid(5, 5, rng);
  check_elimination_solve(MinorGraph::identity(g), rng);
}

TEST(Elimination, SolveExactOnCycleWithChord) {
  Graph g = make_cycle(12);
  g.add_edge(0, 6, 2.0);
  Rng rng(4);
  check_elimination_solve(MinorGraph::identity(g), rng);
}

TEST(Elimination, SolveExactOnTreePlusEdges) {
  // Exactly the ultra-sparsifier shape: tree + few off-tree edges.
  Rng rng(5);
  Graph g = make_random_tree(40, rng);
  for (int extra = 0; extra < 5; ++extra) {
    NodeId u = static_cast<NodeId>(rng.next_below(40));
    NodeId v = static_cast<NodeId>(rng.next_below(40));
    if (u != v) g.add_edge(u, v, 1.0 + rng.next_double());
  }
  check_elimination_solve(MinorGraph::identity(g), rng);
}

TEST(Elimination, HostPathsValidInSchur) {
  const Graph g = make_cycle(9);
  const EliminationResult elim =
      eliminate_degree_le2(MinorGraph::identity(g), 3);
  EXPECT_TRUE(elim.schur.validate(g));
  // Host congestion: each eliminated cycle node hosts exactly one spliced
  // edge, so ρ stays small.
  EXPECT_LE(elim.schur.host_congestion(g.num_nodes()), 2u);
}

TEST(Elimination, ParallelEdgesMergeToDegreeOne) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 3.0);  // parallel: node 0 has one distinct neighbor
  g.add_edge(1, 2, 2.0);
  const EliminationResult elim = eliminate_degree_le2(MinorGraph::identity(g));
  EXPECT_EQ(elim.schur.num_nodes, 1u);
  Rng rng(6);
  check_elimination_solve(MinorGraph::identity(g), rng);
}

TEST(Elimination, MatvecPartsConnectedAfterSplicing) {
  const Graph g = make_cycle(12);
  const EliminationResult elim =
      eliminate_degree_le2(MinorGraph::identity(g), 4);
  const PartCollection pc = elim.schur.matvec_parts();
  EXPECT_TRUE(is_valid_part_collection(g, pc));
}

class EliminationSweep : public ::testing::TestWithParam<int> {};

TEST_P(EliminationSweep, SolveExactAcrossRandomSparsifierShapes) {
  Rng rng(100 + GetParam());
  Graph g = make_random_tree(25 + GetParam() * 3, rng);
  const std::size_t extras = 1 + GetParam() % 4;
  for (std::size_t i = 0; i < extras; ++i) {
    NodeId u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (u != v) g.add_edge(u, v);
  }
  check_elimination_solve(MinorGraph::identity(g), rng);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EliminationSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dls
