#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "laplacian/harmonic.hpp"
#include "linalg/vector_ops.hpp"

namespace dls {
namespace {

TEST(HarmonicReference, LinearInterpolationOnPath) {
  const Graph g = make_path(5);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 4};
  problem.boundary_values = {0.0, 4.0};
  const Vec x = solve_harmonic_reference(g, problem);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NEAR(x[v], static_cast<double>(v), 1e-10);
  }
  EXPECT_NEAR(harmonic_violation(g, problem, x), 0.0, 1e-10);
}

TEST(HarmonicReference, WeightedPathInterpolation) {
  // Two edges, weights 1 and 3: potential divides like series resistors.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 3.0);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 2};
  problem.boundary_values = {0.0, 1.0};
  const Vec x = solve_harmonic_reference(g, problem);
  // x_1 = (w01*0 + w12*1)/(w01+w12) = 3/4.
  EXPECT_NEAR(x[1], 0.75, 1e-10);
}

TEST(HarmonicReference, MaximumPrinciple) {
  Rng rng(1);
  const Graph g = make_grid(6, 6);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 5, 30, 35};
  problem.boundary_values = {-1.0, 2.0, 0.5, 1.0};
  const Vec x = solve_harmonic_reference(g, problem);
  for (double v : x) {
    EXPECT_GE(v, -1.0 - 1e-9);
    EXPECT_LE(v, 2.0 + 1e-9);
  }
}

TEST(SolveHarmonic, MatchesReferenceOnGrid) {
  Rng rng(2);
  const Graph g = make_grid(5, 5);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 24};
  problem.boundary_values = {0.0, 1.0};
  const HarmonicResult result = solve_harmonic(g, problem, rng);
  const Vec ref = solve_harmonic_reference(g, problem);
  EXPECT_LT(max_abs_diff(result.x, ref), 1e-3);
  EXPECT_LT(result.max_boundary_error, 1e-3);
  EXPECT_GT(result.pa_calls, 0u);
}

TEST(SolveHarmonic, StifferPenaltyTightensBoundary) {
  Rng rng(3);
  const Graph g = make_grid(4, 4);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 15};
  problem.boundary_values = {1.0, -1.0};
  HarmonicOptions loose;
  loose.penalty = 1e3;
  HarmonicOptions tight;
  tight.penalty = 1e8;
  const HarmonicResult a = solve_harmonic(g, problem, rng, loose);
  Rng rng2(3);
  const HarmonicResult b = solve_harmonic(g, problem, rng2, tight);
  EXPECT_LT(b.max_boundary_error, a.max_boundary_error + 1e-12);
}

TEST(SolveHarmonic, WeightedGraphAgainstReference) {
  Rng rng(4);
  const Graph g = make_weighted_grid(4, 5, rng);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 9, 19};
  problem.boundary_values = {0.0, 0.5, 1.0};
  const HarmonicResult result = solve_harmonic(g, problem, rng);
  const Vec ref = solve_harmonic_reference(g, problem);
  EXPECT_LT(max_abs_diff(result.x, ref), 5e-3);
}

TEST(SolveHarmonic, RejectsBadProblems) {
  const Graph g = make_path(4);
  Rng rng(5);
  HarmonicProblem empty;
  EXPECT_THROW(solve_harmonic(g, empty, rng), std::invalid_argument);
  HarmonicProblem dup;
  dup.boundary_nodes = {1, 1};
  dup.boundary_values = {0.0, 1.0};
  EXPECT_THROW(solve_harmonic(g, dup, rng), std::invalid_argument);
  HarmonicProblem misaligned;
  misaligned.boundary_nodes = {1};
  misaligned.boundary_values = {0.0, 1.0};
  EXPECT_THROW(solve_harmonic(g, misaligned, rng), std::invalid_argument);
}

TEST(HarmonicViolation, DetectsNonHarmonicInterior) {
  const Graph g = make_path(4);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 3};
  problem.boundary_values = {0.0, 3.0};
  Vec bad{0.0, 2.5, 1.0, 3.0};
  EXPECT_GT(harmonic_violation(g, problem, bad), 1.0);
}

class HarmonicSweep : public ::testing::TestWithParam<int> {};

TEST_P(HarmonicSweep, DistributedMatchesReference) {
  Rng rng(100 + GetParam());
  const Graph g = make_random_regular(24, 4, rng);
  HarmonicProblem problem;
  problem.boundary_nodes = {0, 7, 13};
  problem.boundary_values = {rng.next_double(), rng.next_double(),
                             rng.next_double()};
  const HarmonicResult result = solve_harmonic(g, problem, rng);
  const Vec ref = solve_harmonic_reference(g, problem);
  EXPECT_LT(max_abs_diff(result.x, ref), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarmonicSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace dls
