#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "shortcuts/construction.hpp"
#include "shortcuts/partwise_aggregation.hpp"
#include "shortcuts/shortcut.hpp"

namespace dls {
namespace {

TEST(Shortcut, TrivialShortcutQualityEqualsPartDiameters) {
  const Graph g = make_grid(4, 4);
  const PartCollection pc = grid_row_partition(4, 4);
  const Shortcut s = trivial_shortcut(pc);
  const ShortcutQuality q = measure_shortcut(g, pc, s);
  EXPECT_EQ(q.congestion, 0u);
  EXPECT_EQ(q.dilation, 3u);  // row of 4 nodes
  EXPECT_EQ(q.quality(), 3u);
}

TEST(Shortcut, MeasureRejectsWrongArity) {
  const Graph g = make_grid(2, 2);
  const PartCollection pc = grid_row_partition(2, 2);
  Shortcut s;
  s.h_edges.resize(1);
  EXPECT_THROW(measure_shortcut(g, pc, s), std::invalid_argument);
}

TEST(Shortcut, MeasureThrowsOnDisconnectedPartPlusShortcut) {
  const Graph g = make_path(5);
  PartCollection pc;
  pc.parts = {{0, 4}};  // disconnected without help
  Shortcut s = trivial_shortcut(pc);
  EXPECT_THROW(measure_shortcut(g, pc, s), std::invalid_argument);
}

TEST(Shortcut, PartSubgraphContainsInducedAndHelperEdges) {
  const Graph g = make_cycle(6);
  const std::vector<NodeId> part{0, 1};
  const std::vector<EdgeId> helper{2};  // edge (2,3)
  const PartSubgraph sub = part_subgraph(g, part, helper);
  EXPECT_EQ(sub.nodes.size(), 4u);  // {0,1} + {2,3}
  std::set<EdgeId> edges(sub.edges.begin(), sub.edges.end());
  EXPECT_TRUE(edges.count(0));  // induced (0,1)
  EXPECT_TRUE(edges.count(2));  // helper
}

TEST(PartwiseAggregation, RejectsEmptyPart) {
  // Regression: an empty part used to reach part.front() on an empty vector
  // (undefined behaviour) before any validation fired.
  const Graph g = make_path(4);
  PartCollection pc;
  pc.parts = {{0, 1}, {}};
  const std::vector<std::vector<double>> values = {{1.0, 2.0}, {}};
  Shortcut s;
  s.h_edges.resize(pc.num_parts());
  Rng rng(17);
  EXPECT_THROW(solve_partwise_aggregation(g, pc, values,
                                          AggregationMonoid::sum(), s, rng),
               std::invalid_argument);
}

TEST(Construction, RootSpanningTreeComputesDepths) {
  const Graph g = make_path(5);
  std::vector<EdgeId> edges{0, 1, 2, 3};
  const RootedSpanningTree t = root_spanning_tree(g, edges, 2);
  EXPECT_EQ(t.depth[2], 0u);
  EXPECT_EQ(t.depth[0], 2u);
  EXPECT_EQ(t.depth[4], 2u);
  EXPECT_EQ(t.parent[0], 1u);
  EXPECT_EQ(t.parent[2], 2u);
}

TEST(Construction, CenteredBfsTreeSpansAndCenters) {
  Rng rng(1);
  const Graph g = make_path(21);
  const RootedSpanningTree t = centered_bfs_tree(g, rng);
  // Center of a path is its midpoint: depth <= ceil(D/2).
  std::uint32_t max_depth = 0;
  for (std::uint32_t d : t.depth) max_depth = std::max(max_depth, d);
  EXPECT_LE(max_depth, 11u);
  EXPECT_EQ(t.root, 10u);
}

TEST(Construction, TreeRestrictedIsExactSteinerTreeOnPath) {
  Rng rng(2);
  const Graph g = make_path(10);
  PartCollection pc;
  pc.parts = {{2, 6}};  // connected only via helper edges
  // Parts must induce connected subgraphs per Definition 13; use a part that
  // is a pair of adjacent nodes far from the root instead.
  pc.parts = {{2, 3}, {7, 8}};
  const RootedSpanningTree t = centered_bfs_tree(g, rng);
  const Shortcut s = tree_restricted_shortcut(g, pc, t);
  // The Steiner tree of an adjacent pair is just that edge (or nothing
  // extra): the helper never needs more than the members' span.
  const ShortcutQuality q = measure_shortcut(g, pc, s);
  EXPECT_LE(q.dilation, 1u);
  EXPECT_LE(q.congestion, 1u);
}

TEST(Construction, TreeRestrictedConnectsScatteredPart) {
  Rng rng(3);
  const Graph g = make_grid(5, 5);
  PartCollection pc;
  // A row as a part: its Steiner tree in the BFS tree connects it.
  pc.parts = {{0, 1, 2, 3, 4}};
  const RootedSpanningTree t = centered_bfs_tree(g, rng);
  const Shortcut s = tree_restricted_shortcut(g, pc, t);
  const ShortcutQuality q = measure_shortcut(g, pc, s);  // throws if broken
  EXPECT_GT(q.quality(), 0u);
}

TEST(Construction, SteinerTreePrunedToMembers) {
  Rng rng(4);
  // Star: Steiner tree of two leaves = 2 edges through the hub, never more.
  const Graph g = make_star(8);
  PartCollection pc;
  pc.parts = {{1, 0, 2}};  // connected: leaf-hub-leaf
  const RootedSpanningTree t = centered_bfs_tree(g, rng);
  const Shortcut s = tree_restricted_shortcut(g, pc, t);
  EXPECT_LE(s.h_edges[0].size(), 2u);
}

TEST(Construction, BestShortcutNeverWorseThanTrivial) {
  Rng rng(5);
  const Graph g = make_grid(6, 6);
  const PartCollection pc = grid_row_partition(6, 6);
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  const ShortcutQuality trivial_q = measure_shortcut(g, pc, trivial_shortcut(pc));
  EXPECT_LE(best.quality.quality(), trivial_q.quality());
}

TEST(Construction, TreeChopPartitionValidAndSized) {
  Rng rng(6);
  const Graph g = make_grid(7, 7);
  const RootedSpanningTree t = centered_bfs_tree(g, rng);
  const PartCollection pc = tree_chop_partition(g, t, 7);
  EXPECT_TRUE(is_valid_part_collection(g, pc, true));
  std::size_t covered = 0;
  for (const auto& part : pc.parts) covered += part.size();
  EXPECT_EQ(covered, g.num_nodes());
}

TEST(PartwiseAggregation, ResultsMatchSequentialOnGridRows) {
  Rng rng(7);
  const Graph g = make_grid(5, 5);
  const PartCollection pc = grid_row_partition(5, 5);
  std::vector<std::vector<double>> values(pc.num_parts());
  std::vector<double> expected(pc.num_parts(), 0.0);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      const double v = rng.next_double();
      values[i].push_back(v);
      expected[i] += v;
    }
  }
  const auto outcome = solve_partwise_aggregation_auto(
      g, pc, values, AggregationMonoid::sum(), rng);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_NEAR(outcome.results[i], expected[i], 1e-9);
  }
}

TEST(PartwiseAggregation, ShortcutBeatsTrivialOnSpreadParts) {
  // Column-pair parts on a tall thin grid: trivial dilation is the column
  // height; a tree-restricted shortcut through the center can only help.
  Rng rng(8);
  const Graph g = make_grid(12, 4);
  const PartCollection pc = grid_row_partition(12, 4);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  const auto trivial_outcome = solve_partwise_aggregation(
      g, pc, values, AggregationMonoid::sum(), trivial_shortcut(pc), rng);
  const auto auto_outcome = solve_partwise_aggregation_auto(
      g, pc, values, AggregationMonoid::sum(), rng);
  EXPECT_LE(auto_outcome.schedule.total_rounds,
            trivial_outcome.schedule.total_rounds * 2);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_DOUBLE_EQ(auto_outcome.results[i], 4.0);
  }
}

class PaFamilySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PaFamilySweep, VoronoiAggregationCorrectEverywhere) {
  const auto [family, seed] = GetParam();
  Rng rng(seed * 97 + 13);
  Graph g;
  switch (family) {
    case 0: g = make_grid(6, 6); break;
    case 1: g = make_random_regular(36, 4, rng); break;
    case 2: g = make_balanced_binary_tree(31); break;
    default: g = make_torus(6, 6); break;
  }
  const PartCollection pc = random_voronoi_partition(g, 6, rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  std::vector<double> expected(pc.num_parts(),
                               -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      const double v = rng.next_double();
      values[i].push_back(v);
      expected[i] = std::max(expected[i], v);
    }
  }
  const auto outcome = solve_partwise_aggregation_auto(
      g, pc, values, AggregationMonoid::max(), rng);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_DOUBLE_EQ(outcome.results[i], expected[i]);
  }
  // Proposition 6 sanity: rounds are bounded by a small multiple of c + d.
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  EXPECT_LE(outcome.schedule.total_rounds,
            8 * (best.quality.quality() + 2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PaFamilySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace dls
