#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lowerbound/spanning_connected_subgraph.hpp"

namespace dls {
namespace {

TEST(Scs, GroundTruthDetectsConnectivity) {
  const Graph g = make_cycle(6);
  std::vector<EdgeId> all{0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(is_spanning_connected(g, all));
  std::vector<EdgeId> broken{0, 1, 2, 3};  // two cycle edges missing
  EXPECT_FALSE(is_spanning_connected(g, broken));
  std::vector<EdgeId> path{0, 1, 2, 3, 4};  // spanning path
  EXPECT_TRUE(is_spanning_connected(g, path));
}

TEST(Scs, RandomInstanceGeneratorBehaves) {
  Rng rng(1);
  const Graph g = make_grid(5, 5);
  const auto connected = random_scs_instance(g, rng, 0, 3);
  EXPECT_TRUE(is_spanning_connected(g, connected));
  const auto maybe_broken = random_scs_instance(g, rng, 3, 0);
  EXPECT_FALSE(is_spanning_connected(g, maybe_broken));
}

TEST(Scs, LaplacianReductionAgreesOnConnectedInstance) {
  Rng rng(2);
  const Graph g = make_grid(6, 6);
  const auto edges = random_scs_instance(g, rng, 0, 5);
  ASSERT_TRUE(is_spanning_connected(g, edges));
  const ScsDecision decision = decide_spanning_connected_via_laplacian(
      g, edges, OracleKind::kShortcut, rng, 3);
  EXPECT_TRUE(decision.connected);
  EXPECT_GT(decision.local_rounds, 0u);
  EXPECT_GT(decision.pa_calls, 0u);
}

TEST(Scs, LaplacianReductionDetectsDisconnection) {
  Rng rng(3);
  const Graph g = make_grid(6, 6);
  // Drop many tree edges: several components, so random probes hit a cut
  // with overwhelming probability.
  const auto edges = random_scs_instance(g, rng, 20, 0);
  ASSERT_FALSE(is_spanning_connected(g, edges));
  const ScsDecision decision = decide_spanning_connected_via_laplacian(
      g, edges, OracleKind::kShortcut, rng, 6);
  EXPECT_FALSE(decision.connected);
}

TEST(Scs, WorksUnderNccOracle) {
  Rng rng(4);
  const Graph g = make_grid(5, 5);
  const auto edges = random_scs_instance(g, rng, 0, 2);
  const ScsDecision decision = decide_spanning_connected_via_laplacian(
      g, edges, OracleKind::kNcc, rng, 2);
  EXPECT_TRUE(decision.connected);
  EXPECT_GT(decision.global_rounds, 0u);
}

class ScsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScsSweep, AgreementAcrossRandomInstances) {
  Rng rng(100 + GetParam());
  const Graph g = make_grid(5, 5);
  const std::size_t drop = (GetParam() % 2 == 0) ? 0 : 10;
  const auto edges = random_scs_instance(g, rng, drop, 2);
  const bool truth = is_spanning_connected(g, edges);
  const ScsDecision decision = decide_spanning_connected_via_laplacian(
      g, edges, OracleKind::kShortcut, rng, 6);
  if (truth) {
    // Connected instances are never misclassified (one-sided certainty).
    EXPECT_TRUE(decision.connected);
  } else {
    EXPECT_FALSE(decision.connected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScsSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace dls
