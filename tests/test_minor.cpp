#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/elimination.hpp"
#include "laplacian/minor.hpp"

namespace dls {
namespace {

TEST(MinorGraph, IdentityRoundTrip) {
  Rng rng(1);
  const Graph g = make_weighted_grid(3, 4, rng);
  const MinorGraph m = MinorGraph::identity(g);
  EXPECT_EQ(m.num_nodes, g.num_nodes());
  EXPECT_EQ(m.edges.size(), g.num_edges());
  EXPECT_TRUE(m.validate(g));
  const Graph view = m.as_graph();
  EXPECT_EQ(view.num_nodes(), g.num_nodes());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(view.edge(e).weight, g.edge(e).weight);
  }
}

TEST(MinorGraph, IdentityHostCongestionMatchesDegree) {
  const Graph g = make_star(6);
  const MinorGraph m = MinorGraph::identity(g);
  // The hub appears on every edge's host path.
  EXPECT_EQ(m.host_congestion(g.num_nodes()), 5u);
}

TEST(MinorGraph, MatvecPartsAreEdgePaths) {
  const Graph g = make_path(5);
  const MinorGraph m = MinorGraph::identity(g);
  const PartCollection pc = m.matvec_parts();
  ASSERT_EQ(pc.num_parts(), g.num_edges());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    EXPECT_EQ(pc.parts[i].size(), 2u);
  }
  EXPECT_TRUE(is_valid_part_collection(g, pc));
}

TEST(MinorGraph, MatvecPartsDeduplicateRepeatedHosts) {
  const Graph g = make_cycle(6);
  MinorGraph m;
  m.num_nodes = 2;
  m.host = {0, 3};
  // A host path that wanders through node 1 twice would repeat it; paths
  // from elimination never do, but matvec_parts must dedup defensively.
  m.edges.push_back({0, 1, 1.0, {0, 1, 2, 3}});
  const PartCollection pc = m.matvec_parts();
  ASSERT_EQ(pc.num_parts(), 1u);
  EXPECT_EQ(pc.parts[0].size(), 4u);
}

TEST(MinorGraph, ValidateCatchesBrokenPaths) {
  const Graph g = make_path(4);
  MinorGraph m;
  m.num_nodes = 2;
  m.host = {0, 3};
  m.edges.push_back({0, 1, 1.0, {0, 3}});  // 0 and 3 not adjacent
  EXPECT_FALSE(m.validate(g));
  m.edges[0].g_path = {0, 1, 2, 3};
  EXPECT_TRUE(m.validate(g));
  m.edges[0].g_path = {1, 2, 3};  // wrong start host
  EXPECT_FALSE(m.validate(g));
  m.edges[0].g_path = {0, 1, 2, 3};
  m.edges[0].weight = -1.0;
  EXPECT_FALSE(m.validate(g));
}

TEST(MinorGraph, EliminationComposesHostPaths) {
  // On a cycle every node has degree 2, so stopping at two survivors forces
  // genuine series splicing: the two arcs between the survivors merge into
  // one parallel-combined edge whose witness path is the shorter arc.
  const Graph g = make_cycle(7);
  const EliminationResult elim =
      eliminate_degree_le2(MinorGraph::identity(g), 2);
  ASSERT_EQ(elim.schur.num_nodes, 2u);
  ASSERT_EQ(elim.schur.edges.size(), 1u);
  EXPECT_TRUE(elim.schur.validate(g));
  const MinorEdge& edge = elim.schur.edges[0];
  // Arcs of lengths a + b = 7: combined conductance 1/a + 1/b; the witness
  // path is the shorter arc (≤ ⌊7/2⌋ hops → ≤ 4 nodes).
  bool weight_matches_some_split = false;
  for (int a = 1; a <= 3; ++a) {
    const double expected = 1.0 / a + 1.0 / (7 - a);
    weight_matches_some_split |= std::abs(edge.weight - expected) < 1e-9;
  }
  EXPECT_TRUE(weight_matches_some_split) << edge.weight;
  EXPECT_LE(edge.g_path.size(), 4u);
  EXPECT_GE(edge.g_path.size(), 2u);
}

TEST(MinorGraph, LevelOneMinorsStayValid) {
  Rng rng(2);
  const Graph g = make_grid(6, 6);
  const MinorGraph identity = MinorGraph::identity(g);
  const EliminationResult elim = eliminate_degree_le2(identity);
  EXPECT_TRUE(elim.schur.validate(g));
  EXPECT_TRUE(is_valid_part_collection(g, elim.schur.matvec_parts()));
}

}  // namespace
}  // namespace dls
