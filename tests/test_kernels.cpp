// Kernel-plane regression suite (docs/KERNELS.md):
//
//   1. CSR bit-identity — LaplacianCsr::apply / apply_dot fold the exact same
//      values in the exact same order as both laplacian_apply overloads, for
//      every graph family and thread count.
//   2. Fused-vs-unfused bit-identity — axpy_dot / xpay and their blocked
//      variants reproduce the separate kernels bit-for-bit.
//   3. SolveWorkspace semantics — free-list reuse, zeroed vs scratch leases,
//      counters and their mem.alloc.ws.* metric mirrors.
//   4. Zero-allocation steady state — once a workspace is warm, the CG / PCG /
//      Chebyshev inner iterations perform no heap allocations at all, pinned
//      by counting global operator new calls between operator callbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "linalg/csr.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/solvers.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

// --- Global allocation counter ---------------------------------------------
//
// Replacement global operator new/delete backed by malloc/free, counting
// every allocation in the process. ASan intercepts the underlying malloc, so
// its poisoning and leak detection still work; we only add the counter. The
// zero-allocation tests sample this counter at each solver operator callback
// and assert the deltas between consecutive callbacks are zero once warm.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded > 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dls {
namespace {

Vec random_vec(std::size_t n, Rng& rng) {
  Vec x(n);
  for (double& v : x) v = rng.next_double() * 2.0 - 1.0;
  return x;
}

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b = random_vec(n, rng);
  project_mean_zero(b);
  return b;
}

// --- 1. CSR bit-identity over a family × seed corpus. -----------------------

struct NamedGraph {
  std::string name;
  Graph g;
};

std::vector<NamedGraph> corpus(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedGraph> out;
  out.push_back({"path", make_path(257)});
  out.push_back({"star", make_star(129)});
  out.push_back({"grid", make_grid(9, 13)});
  out.push_back({"torus", make_torus(8, 11)});
  out.push_back({"triangulated-grid", make_triangulated_grid(7, 9)});
  out.push_back({"binary-tree", make_balanced_binary_tree(127)});
  out.push_back({"weighted-grid", make_weighted_grid(10, 12, rng)});
  out.push_back({"expander", make_random_regular(96, 8, rng)});
  out.push_back({"erdos-renyi", make_erdos_renyi(80, 0.12, rng)});
  out.push_back({"pref-attach", make_preferential_attachment(90, 3, rng)});
  return out;
}

TEST(CsrKernels, BitIdenticalToAdjacencyAcrossCorpusAndThreads) {
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool* pools[] = {nullptr, &pool1, &pool4};
  for (std::uint64_t seed : {7u, 42u}) {
    for (const NamedGraph& ng : corpus(seed)) {
      SCOPED_TRACE(ng.name + " seed=" + std::to_string(seed));
      const Graph& g = ng.g;
      LaplacianCsr csr(g);
      ASSERT_EQ(csr.num_nodes(), g.num_nodes());
      ASSERT_EQ(csr.num_entries(), 2 * g.num_edges());
      Rng rng(seed * 1000 + g.num_nodes());
      const Vec x = random_vec(g.num_nodes(), rng);
      // One canonical answer: the serial adjacency gather.
      const Vec reference = laplacian_apply(g, x);
      Vec y(g.num_nodes(), 0.0);
      for (ThreadPool* pool : pools) {
        csr.apply(x, y, pool);
        EXPECT_EQ(y, reference);
        EXPECT_EQ(laplacian_apply(g, x, pool), reference);
        // Fused apply+dot: same vector bits, and the quadratic form matches
        // the blocked reduction over the unfused result exactly.
        Vec y2(g.num_nodes(), 0.0);
        const double quad = csr.apply_dot(x, y2, pool);
        EXPECT_EQ(y2, reference);
        EXPECT_EQ(quad, blocked_dot(x, reference, pool));
      }
    }
  }
}

TEST(CsrKernels, DiagonalMatchesWeightedDegrees) {
  Rng rng(5);
  const Graph g = make_weighted_grid(6, 7, rng);
  const LaplacianCsr csr(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(csr.degree(v), g.weighted_degree(v));
  }
}

TEST(CsrKernels, RefreshWeightsMatchesFullRebuild) {
  Rng rng(11);
  Graph g = make_weighted_grid(8, 9, rng);
  LaplacianCsr csr(g);
  // Reweight every edge, then take the cheap refresh path and compare its
  // bits against a from-scratch rebuild.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    g.set_weight(e, g.edge(e).weight * (0.5 + rng.next_double()));
  }
  csr.refresh_weights(g);
  const LaplacianCsr fresh(g);
  const Vec x = random_vec(g.num_nodes(), rng);
  Vec y_refresh(g.num_nodes()), y_fresh(g.num_nodes());
  csr.apply(x, y_refresh);
  fresh.apply(x, y_fresh);
  EXPECT_EQ(y_refresh, y_fresh);
  EXPECT_EQ(y_refresh, laplacian_apply(g, x));
}

TEST(CsrKernels, ApplyAllocatesNothing) {
  Rng rng(17);
  const Graph g = make_weighted_grid(12, 12, rng);
  const LaplacianCsr csr(g);
  const Vec x = random_vec(g.num_nodes(), rng);
  Vec y(g.num_nodes(), 0.0);
  csr.apply(x, y);  // warm: y already sized
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 8; ++i) {
    csr.apply(x, y);
    csr.apply_dot(x, y);
  }
  EXPECT_EQ(alloc_count(), before);
}

// --- 2. Fused-vs-unfused bit-identity. --------------------------------------

TEST(FusedKernels, AxpyDotMatchesSeparateKernelsBitwise) {
  Rng rng(23);
  // Straddle several 4096-entry blocks so the blocked paths genuinely fold
  // multiple partials.
  const std::size_t n = 3 * kKernelBlock + 123;
  const Vec x = random_vec(n, rng);
  const Vec y0 = random_vec(n, rng);
  const double alpha = -0.3728;

  Vec y_fused = y0;
  const double rr_fused = axpy_dot(alpha, x, y_fused);
  Vec y_ref = y0;
  axpy(alpha, x, y_ref);
  EXPECT_EQ(y_fused, y_ref);
  EXPECT_EQ(rr_fused, dot(y_ref, y_ref));
}

TEST(FusedKernels, XpayMatchesElementwiseBitwise) {
  Rng rng(29);
  const std::size_t n = 2 * kKernelBlock + 77;
  const Vec x = random_vec(n, rng);
  const Vec y0 = random_vec(n, rng);
  const double beta = 0.6181;

  Vec y_fused = y0;
  xpay(x, beta, y_fused);
  Vec y_ref = y0;
  for (std::size_t i = 0; i < n; ++i) y_ref[i] = x[i] + beta * y_ref[i];
  EXPECT_EQ(y_fused, y_ref);
}

TEST(FusedKernels, BlockedVariantsBitIdenticalAcrossThreads) {
  Rng rng(31);
  const std::size_t n = 4 * kKernelBlock + 999;
  const Vec x = random_vec(n, rng);
  const Vec y0 = random_vec(n, rng);
  const double alpha = 0.77, beta = -0.41;

  // The null-pool blocked results are the single reference (the blocked
  // reduction's block-partial fold differs in the last bits from the plain
  // sequential axpy_dot for n > kKernelBlock — by design; what the blocked
  // kernels promise is fused ≡ unfused and null-pool ≡ every pool).
  Vec y_axpy = y0;
  const double rr_ref = blocked_axpy_dot(alpha, x, y_axpy, nullptr);
  Vec y_xpay = y0;
  xpay(x, beta, y_xpay);
  // The vector update itself is elementwise, so it matches the plain fused
  // kernel exactly.
  {
    Vec y_plain = y0;
    axpy_dot(alpha, x, y_plain);
    EXPECT_EQ(y_axpy, y_plain);
  }

  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool* pools[] = {nullptr, &pool1, &pool4};
  for (ThreadPool* pool : pools) {
    Vec y = y0;
    EXPECT_EQ(blocked_axpy_dot(alpha, x, y, pool), rr_ref);
    EXPECT_EQ(y, y_axpy);
    // Unfused pair on the same pool folds the same bits.
    Vec y2 = y0;
    blocked_axpy(alpha, x, y2, pool);
    EXPECT_EQ(y2, y_axpy);
    EXPECT_EQ(blocked_dot(y2, y2, pool), rr_ref);

    Vec y3 = y0;
    blocked_xpay(x, beta, y3, pool);
    EXPECT_EQ(y3, y_xpay);

    Vec d(n);
    blocked_sub_into(x, y0, d, pool);
    EXPECT_EQ(d, sub(x, y0));
  }
}

// --- 3. SolveWorkspace semantics. -------------------------------------------

TEST(Workspace, AcquireZeroesAndScratchResizes) {
  SolveWorkspace ws;
  {
    WorkspaceLease a = ws.acquire(5);
    ASSERT_EQ(a->size(), 5u);
    for (double v : *a) EXPECT_EQ(v, 0.0);
    for (double& v : *a) v = 3.5;
  }
  // The recycled buffer comes back zeroed from acquire()...
  {
    WorkspaceLease a = ws.acquire(5);
    for (double v : *a) EXPECT_EQ(v, 0.0);
    for (double& v : *a) v = 2.0;
  }
  // ...and merely resized from acquire_scratch().
  WorkspaceLease s = ws.acquire_scratch(3);
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(ws.pooled_buffers(), 1u);
}

TEST(Workspace, FreeListReusesBuffersWithStableAddresses) {
  SolveWorkspace ws;
  Vec* first = nullptr;
  {
    WorkspaceLease a = ws.acquire_scratch(64);
    first = &*a;
  }
  EXPECT_EQ(ws.buffer_allocations(), 1u);
  {
    // LIFO reuse: the same backing vector comes straight back.
    WorkspaceLease b = ws.acquire_scratch(64);
    EXPECT_EQ(&*b, first);
  }
  EXPECT_EQ(ws.buffer_allocations(), 1u);
  // Two concurrent leases force a second buffer; releasing both leaves a
  // free list of two and no further allocations ever.
  {
    WorkspaceLease a = ws.acquire_scratch(64);
    WorkspaceLease b = ws.acquire_scratch(64);
    EXPECT_NE(&*a, &*b);
  }
  EXPECT_EQ(ws.buffer_allocations(), 2u);
  {
    WorkspaceLease a = ws.acquire_scratch(64);
    WorkspaceLease b = ws.acquire_scratch(64);
  }
  EXPECT_EQ(ws.buffer_allocations(), 2u);
  EXPECT_EQ(ws.pooled_buffers(), 2u);
}

TEST(Workspace, CountersTrackAcquiresAndGrowth) {
  SolveWorkspace ws;
  EXPECT_EQ(ws.acquires(), 0u);
  { WorkspaceLease a = ws.acquire_scratch(10); }
  EXPECT_EQ(ws.acquires(), 1u);
  EXPECT_EQ(ws.buffer_allocations(), 1u);
  EXPECT_EQ(ws.capacity_grows(), 1u);  // cold buffer grew 0 -> 10
  // Same-size reacquire: no growth.
  { WorkspaceLease a = ws.acquire_scratch(10); }
  EXPECT_EQ(ws.acquires(), 2u);
  EXPECT_EQ(ws.capacity_grows(), 1u);
  // Bigger reacquire on the recycled buffer: one growth, no new buffer.
  { WorkspaceLease a = ws.acquire_scratch(1000); }
  EXPECT_EQ(ws.acquires(), 3u);
  EXPECT_EQ(ws.buffer_allocations(), 1u);
  EXPECT_EQ(ws.capacity_grows(), 2u);
  // Smaller never grows.
  { WorkspaceLease a = ws.acquire(8); }
  EXPECT_EQ(ws.capacity_grows(), 2u);
}

TEST(Workspace, MirrorsCountersIntoGlobalMetrics) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t acquires0 = reg.counter("mem.alloc.ws.acquires").value();
  const std::uint64_t buffers0 = reg.counter("mem.alloc.ws.buffers").value();
  const std::uint64_t grows0 =
      reg.counter("mem.alloc.ws.capacity_grows").value();
  SolveWorkspace ws;
  { WorkspaceLease a = ws.acquire_scratch(16); }
  { WorkspaceLease a = ws.acquire_scratch(16); }
  { WorkspaceLease a = ws.acquire_scratch(32); }
  EXPECT_EQ(reg.counter("mem.alloc.ws.acquires").value(), acquires0 + 3);
  EXPECT_EQ(reg.counter("mem.alloc.ws.buffers").value(), buffers0 + 1);
  EXPECT_EQ(reg.counter("mem.alloc.ws.capacity_grows").value(), grows0 + 2);
}

TEST(Workspace, LeaseMoveTransfersOwnershipAndReleaseIsIdempotent) {
  SolveWorkspace ws;
  WorkspaceLease a = ws.acquire_scratch(4);
  Vec* buf = &*a;
  WorkspaceLease b = std::move(a);
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(&*b, buf);
  b.release();
  EXPECT_FALSE(b.valid());
  b.release();  // idempotent
  // The buffer went back exactly once: a single free-list entry.
  WorkspaceLease c = ws.acquire_scratch(4);
  EXPECT_EQ(&*c, buf);
  EXPECT_EQ(ws.buffer_allocations(), 1u);
}

// --- 4. Zero-allocation steady state. ---------------------------------------
//
// The contract from solvers.hpp: after a first solve warms the workspace's
// free list, the inner iterations of every workspace-backed kernel perform
// zero heap allocations. We pin it by sampling the global allocation counter
// at each operator callback of a *second* solve against the same workspace
// and asserting all consecutive deltas are zero — everything a loop iteration
// does (axpy_dot, xpay, dot, project_mean_zero, watchdog checks on a healthy
// run) must be allocation-free. The watchdog stays enabled: the guards
// themselves must not allocate either.

class AllocMarks {
 public:
  AllocMarks() { marks_.reserve(1 << 14); }  // recording must not allocate
  void record() { marks_.push_back(alloc_count()); }
  void clear() { marks_.clear(); }
  std::size_t size() const { return marks_.size(); }

  void expect_steady() const {
    ASSERT_GE(marks_.size(), 3u) << "solver made too few operator calls";
    for (std::size_t i = 1; i < marks_.size(); ++i) {
      EXPECT_EQ(marks_[i], marks_[i - 1])
          << "heap allocation between operator callbacks " << i - 1 << " and "
          << i;
    }
  }

 private:
  std::vector<std::uint64_t> marks_;
};

TEST(ZeroAllocSteadyState, ConjugateGradientInnerIterations) {
  Rng rng(41);
  const Graph g = make_weighted_grid(12, 13, rng);
  const LaplacianCsr csr(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  SolveOptions options;
  options.tolerance = 1e-10;
  SolveWorkspace ws;
  AllocMarks marks;
  const InplaceOperator op = [&](const Vec& x, Vec& y) {
    marks.record();
    csr.apply(x, y);
  };
  const SolveResult warm = conjugate_gradient(op, b, options, ws);
  ASSERT_TRUE(warm.converged);
  const std::uint64_t buffers = ws.buffer_allocations();
  const std::uint64_t grows = ws.capacity_grows();

  marks.clear();
  const SolveResult result = conjugate_gradient(op, b, options, ws);
  ASSERT_TRUE(result.converged);
  marks.expect_steady();
  // The warm workspace handed out only recycled, right-sized buffers.
  EXPECT_EQ(ws.buffer_allocations(), buffers);
  EXPECT_EQ(ws.capacity_grows(), grows);
  // And the arena changed nothing numerically.
  EXPECT_EQ(result.x, warm.x);
  EXPECT_EQ(result.iterations, warm.iterations);
}

TEST(ZeroAllocSteadyState, PreconditionedCgInnerIterations) {
  Rng rng(43);
  const Graph g = make_random_regular(120, 6, rng);
  const LaplacianCsr csr(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  SolveOptions options;
  options.tolerance = 1e-10;
  SolveWorkspace ws;
  AllocMarks marks;
  const InplaceOperator op = [&](const Vec& x, Vec& y) {
    marks.record();
    csr.apply(x, y);
  };
  // Jacobi preconditioner: allocation-free by construction, and both
  // callbacks sample the counter so the z-update path is covered too.
  const InplaceOperator precond = [&](const Vec& r, Vec& z) {
    marks.record();
    z.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = r[i] / csr.degree(static_cast<NodeId>(i));
    }
  };
  const SolveResult warm = preconditioned_cg(op, precond, b, options, ws);
  ASSERT_TRUE(warm.converged);
  const std::uint64_t buffers = ws.buffer_allocations();

  marks.clear();
  const SolveResult result = preconditioned_cg(op, precond, b, options, ws);
  ASSERT_TRUE(result.converged);
  marks.expect_steady();
  EXPECT_EQ(ws.buffer_allocations(), buffers);
  EXPECT_EQ(result.x, warm.x);
}

TEST(ZeroAllocSteadyState, ChebyshevInnerIterations) {
  Rng rng(47);
  const Graph g = make_random_regular(96, 8, rng);
  const LaplacianCsr csr(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  // The analytic laplacian_spectrum_bounds λ_min is n⁻²-loose, which makes
  // Chebyshev stagnate — and a stagnation incident is an *unhealthy* run
  // that legitimately allocates (watchdog incident + rebound). Steady state
  // is a claim about healthy iterations, so use honest bounds for this fixed
  // 8-regular expander: λ₂ ≈ d − 2√(d−1) ≈ 2.7 and λ_max ≤ 2d = 16.
  SolveOptions options;
  options.tolerance = 1e-8;
  SolveWorkspace ws;
  AllocMarks marks;
  const InplaceOperator op = [&](const Vec& x, Vec& y) {
    marks.record();
    csr.apply(x, y);
  };
  const SolveResult warm = chebyshev(op, b, 1.0, 16.0, options, ws);
  ASSERT_TRUE(warm.converged);
  ASSERT_TRUE(warm.watchdog.incidents.empty()) << "run must be healthy";
  const std::uint64_t buffers = ws.buffer_allocations();

  marks.clear();
  const SolveResult result = chebyshev(op, b, 1.0, 16.0, options, ws);
  marks.expect_steady();
  EXPECT_EQ(ws.buffer_allocations(), buffers);
  EXPECT_EQ(result.x, warm.x);
  EXPECT_EQ(result.iterations, warm.iterations);
}

TEST(ZeroAllocSteadyState, CsrCgConvenienceWrapper) {
  Rng rng(53);
  const Graph g = make_grid(10, 10);
  const LaplacianCsr csr(g);
  const Vec b = random_rhs(g.num_nodes(), rng);
  SolveOptions options;
  SolveWorkspace ws;
  const SolveResult warm = solve_laplacian_cg(csr, b, options, ws);
  ASSERT_TRUE(warm.converged);
  const std::uint64_t buffers = ws.buffer_allocations();
  const SolveResult again = solve_laplacian_cg(csr, b, options, ws);
  EXPECT_EQ(ws.buffer_allocations(), buffers);
  EXPECT_EQ(again.x, warm.x);
}

}  // namespace
}  // namespace dls
