// Round-complexity regression tests: measured round counts must stay inside
// the theory's envelopes (with generous constants). These tests pin the
// paper's quantitative claims so a regression in the scheduler, the layered
// reduction or an oracle cannot silently inflate costs.
#include <gtest/gtest.h>

#include <cmath>

#include "congested_pa/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/pa_oracle.hpp"
#include "shortcuts/construction.hpp"
#include "shortcuts/partwise_aggregation.hpp"
#include "sim/ncc.hpp"
#include "sim/protocols.hpp"

namespace dls {
namespace {

std::vector<std::vector<double>> unit_values(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  return values;
}

TEST(RoundBounds, Proposition6QualityEnvelope) {
  // PA rounds ≤ c · (congestion + dilation) for the constructed shortcut.
  Rng rng(1);
  for (const std::size_t side : {6u, 9u, 12u}) {
    const Graph g = make_grid(side, side);
    const PartCollection pc = grid_row_partition(side, side);
    const BestShortcut best = build_best_shortcut(g, pc, rng);
    const auto outcome = solve_partwise_aggregation(
        g, pc, unit_values(pc), AggregationMonoid::sum(), best.shortcut, rng);
    EXPECT_LE(outcome.schedule.total_rounds, 8 * (best.quality.quality() + 2))
        << "side " << side;
  }
}

TEST(RoundBounds, Lemma16ChargeIsExactlyLayersTimesRounds) {
  Rng rng(2);
  const Graph g = make_grid(6, 6);
  const PartCollection pc = figure1_diagonal_instance(6);
  const CongestedPaOutcome outcome = solve_congested_pa(
      g, pc, unit_values(pc), AggregationMonoid::sum(), rng);
  // The ledger decomposes into phases; each phase's charge embeds the
  // layers × layered-rounds product plus coloring — verify the totals add.
  std::uint64_t sum = 0;
  for (const LedgerEntry& e : outcome.ledger.entries()) sum += e.local_rounds;
  EXPECT_EQ(sum, outcome.total_rounds);
  EXPECT_GE(outcome.max_layers, 2u);
}

TEST(RoundBounds, Corollary23LinearRhoEnvelope) {
  // Doubling ρ must not more than ~triple the charged rounds (linear + noise).
  Rng rng(3);
  const Graph g = make_grid(7, 7);
  std::uint64_t rounds_lo = 0, rounds_hi = 0;
  {
    const PartCollection pc = stacked_voronoi_instance(g, 4, 2, rng);
    rounds_lo = solve_congested_pa(g, pc, unit_values(pc),
                                   AggregationMonoid::sum(), rng)
                    .total_rounds;
  }
  {
    const PartCollection pc = stacked_voronoi_instance(g, 4, 4, rng);
    rounds_hi = solve_congested_pa(g, pc, unit_values(pc),
                                   AggregationMonoid::sum(), rng)
                    .total_rounds;
  }
  EXPECT_LE(rounds_hi, 4 * rounds_lo);
}

TEST(RoundBounds, Lemma26NccEnvelope) {
  // NCC PA rounds ≤ c·(ρ + log n).
  Rng rng(4);
  const std::size_t n = 128;
  const double logn = std::log2(static_cast<double>(n));
  for (const std::size_t rho : {1u, 4u, 16u}) {
    std::vector<NccPart> parts(rho);
    for (std::size_t p = 0; p < rho; ++p) {
      for (NodeId v = 0; v < n; ++v) {
        parts[p].members.push_back(v);
        parts[p].values.push_back(1.0);
      }
    }
    const auto outcome =
        ncc_partwise_aggregate(n, parts, AggregationMonoid::sum(), rng);
    EXPECT_LE(outcome.rounds,
              static_cast<std::uint64_t>(6.0 * (static_cast<double>(rho) + logn)))
        << "rho " << rho;
  }
}

TEST(RoundBounds, FloodingBfsIsEccentricityPlusOne) {
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = make_random_tree(40, rng);
    const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const DistributedBfsResult result = distributed_bfs(g, root);
    EXPECT_EQ(result.rounds,
              static_cast<std::uint64_t>(bfs(g, root).eccentricity()) + 1);
  }
}

TEST(RoundBounds, OracleCostIsDeterministicPerInstance) {
  // Repeated aggregations on a prepared instance charge identical rounds —
  // the value-oblivious caching contract.
  const Graph g = make_grid(5, 5);
  Rng rng(6);
  ShortcutPaOracle oracle(g, rng);
  const PartCollection pc = grid_row_partition(5, 5);
  const auto id = oracle.prepare(pc);
  std::vector<std::uint64_t> deltas;
  std::uint64_t last = 0;
  for (int call = 0; call < 4; ++call) {
    oracle.aggregate(id, unit_values(pc), AggregationMonoid::sum());
    deltas.push_back(oracle.ledger().total_local() - last);
    last = oracle.ledger().total_local();
  }
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i], deltas[0]);
  }
}

TEST(RoundBounds, BaselineGrowsWithPartCountShortcutDoesNot) {
  // The structural reason for Theorem 2's gap: baseline PA cost grows
  // linearly in the number of parts, shortcut PA cost tracks quality.
  const Graph g = make_grid(10, 10);
  std::vector<std::uint64_t> base_costs, fast_costs;
  for (const std::size_t k : {4u, 16u, 32u}) {
    Rng rng(7);
    const PartCollection pc = random_voronoi_partition(g, k, rng);
    Rng r1(8), r2(8);
    ShortcutPaOracle fast(g, r1);
    BaselinePaOracle slow(g, r2);
    fast.aggregate_once(pc, unit_values(pc), AggregationMonoid::sum());
    slow.aggregate_once(pc, unit_values(pc), AggregationMonoid::sum());
    fast_costs.push_back(fast.ledger().total_local());
    base_costs.push_back(slow.ledger().total_local());
  }
  // Baseline at k=32 costs ≥ 2× its k=4 cost; shortcut grows much less.
  EXPECT_GE(base_costs[2], 2 * base_costs[0]);
  EXPECT_LE(fast_costs[2], 3 * fast_costs[0]);
  EXPECT_LT(fast_costs[2], base_costs[2]);
}

TEST(RoundBounds, HybridLedgerMaxComposition) {
  // total_hybrid is per-entry max(local, global) — mixed-mode algorithms
  // must not double-count lockstep rounds.
  RoundLedger ledger;
  ledger.charge_local(10, "local-phase");
  ledger.charge_global(4, "global-phase");
  EXPECT_EQ(ledger.total_hybrid(), 14u);
  RoundLedger mixed;
  mixed.charge_local(10, "a");
  mixed.charge_global(10, "b");
  EXPECT_EQ(mixed.total_hybrid(), 20u);
}

}  // namespace
}  // namespace dls
