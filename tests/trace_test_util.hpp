// Shared span-stream invariant checks for the tracing test suites
// (tests/test_tracing.cpp, tests/test_trace_determinism.cpp).
#pragma once

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace dls {
namespace trace_test {

/// The structural contract every finished trace must satisfy:
///   * spans are stored in preorder and all closed,
///   * parents precede children and depths chain by one,
///   * round cursors are monotone over each span's lifetime,
///   * a child on the SAME clock as its parent is contained in the parent's
///     round interval (different clocks are different timelines — a child
///     running against its own private ledger legitimately starts at 0).
inline void expect_well_formed(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    EXPECT_TRUE(s.closed) << "span " << i << " (" << s.name << ") never closed";
    EXPECT_GE(s.end.local_rounds, s.begin.local_rounds) << s.name;
    EXPECT_GE(s.end.global_rounds, s.begin.global_rounds) << s.name;
    EXPECT_GE(s.end.messages, s.begin.messages) << s.name;
    if (s.parent == kNoSpan) {
      EXPECT_EQ(s.depth, 0u) << s.name;
      continue;
    }
    ASSERT_LT(s.parent, i) << "parent of " << s.name << " does not precede it";
    const SpanRecord& p = spans[s.parent];
    EXPECT_EQ(s.depth, p.depth + 1) << s.name;
    if (s.clock == p.clock) {
      EXPECT_GE(s.begin.local_rounds, p.begin.local_rounds)
          << s.name << " starts before its parent " << p.name;
      EXPECT_GE(s.begin.global_rounds, p.begin.global_rounds) << s.name;
      EXPECT_GE(s.begin.messages, p.begin.messages) << s.name;
      EXPECT_LE(s.end.local_rounds, p.end.local_rounds)
          << s.name << " outlives its parent " << p.name;
      EXPECT_LE(s.end.global_rounds, p.end.global_rounds) << s.name;
      EXPECT_LE(s.end.messages, p.end.messages) << s.name;
    }
  }
}

/// First span with the given name, or nullptr.
inline const SpanRecord* find_span(const Tracer& tracer, const char* name) {
  for (const SpanRecord& s : tracer.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace trace_test
}  // namespace dls
