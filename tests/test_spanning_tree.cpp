#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/spanning_tree.hpp"

namespace dls {
namespace {

double tree_weight(const Graph& g, const std::vector<EdgeId>& edges) {
  double total = 0;
  for (EdgeId e : edges) total += g.edge(e).weight;
  return total;
}

TEST(DistributedMst, MatchesKruskalOnWeightedGrid) {
  Rng rng(1);
  const Graph g = make_weighted_grid(6, 6, rng);
  ShortcutPaOracle oracle(g, rng);
  const DistributedMstResult result = distributed_mst(oracle, rng);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
  EXPECT_NEAR(tree_weight(g, result.tree_edges),
              tree_weight(g, mst_kruskal(g)), 1e-9);
  EXPECT_GT(result.phases, 0u);
  EXPECT_GT(oracle.ledger().total_local(), 0u);
}

TEST(DistributedMst, LogarithmicPhases) {
  Rng rng(2);
  const Graph g = make_random_regular(64, 4, rng);
  ShortcutPaOracle oracle(g, rng);
  const DistributedMstResult result = distributed_mst(oracle, rng);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
  EXPECT_LE(result.phases, 8u);  // Boruvka halves components per phase
}

TEST(DistributedMst, UnitWeightsAnyTree) {
  Rng rng(3);
  const Graph g = make_torus(5, 5);
  ShortcutPaOracle oracle(g, rng);
  const DistributedMstResult result = distributed_mst(oracle, rng);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
}

TEST(DistributedMst, WorksWithNccOracle) {
  Rng rng(4);
  const Graph g = make_weighted_grid(4, 5, rng);
  NccPaOracle oracle(g, rng);
  const DistributedMstResult result = distributed_mst(oracle, rng);
  EXPECT_TRUE(is_spanning_tree(g, result.tree_edges));
  EXPECT_NEAR(tree_weight(g, result.tree_edges),
              tree_weight(g, mst_kruskal(g)), 1e-9);
  EXPECT_GT(oracle.ledger().total_global(), 0u);
  EXPECT_LE(oracle.ledger().total_local(), result.phases);
}

TEST(DistributedMst, RejectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  Rng rng(5);
  ShortcutPaOracle oracle(g, rng);
  EXPECT_THROW(distributed_mst(oracle, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dls
