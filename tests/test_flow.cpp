#include <gtest/gtest.h>

#include "graph/flow.hpp"
#include "graph/generators.hpp"

namespace dls {
namespace {

TEST(NodeDisjointPaths, ParallelRowsOfGrid) {
  // s x s grid: left column to right column admits s node-disjoint paths.
  const std::size_t side = 5;
  const Graph g = make_grid(side, side);
  std::vector<NodeId> sources, sinks;
  for (std::size_t r = 0; r < side; ++r) {
    sources.push_back(static_cast<NodeId>(r * side));
    sinks.push_back(static_cast<NodeId>(r * side + side - 1));
  }
  const NodeDisjointPathsResult result =
      max_node_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(result.connected_pairs, side);
  EXPECT_TRUE(are_node_disjoint_paths(g, result.paths));
  EXPECT_TRUE(any_to_any_node_disjointly_connectable(g, sources, sinks));
}

TEST(NodeDisjointPaths, BottleneckLimitsPairs) {
  // Two stars joined by one bridge: only one node-disjoint path can cross.
  Graph g(8);
  for (NodeId leaf = 1; leaf <= 3; ++leaf) g.add_edge(0, leaf);
  for (NodeId leaf = 5; leaf <= 7; ++leaf) g.add_edge(4, leaf);
  g.add_edge(0, 4);
  const std::vector<NodeId> sources{1, 2, 3};
  const std::vector<NodeId> sinks{5, 6, 7};
  const NodeDisjointPathsResult result =
      max_node_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(result.connected_pairs, 1u);
  EXPECT_FALSE(any_to_any_node_disjointly_connectable(g, sources, sinks));
  // With node capacity 3, all pairs route through the bridge.
  EXPECT_TRUE(any_to_any_node_disjointly_connectable(g, sources, sinks, 3));
}

TEST(NodeDisjointPaths, MultisetEndpoints) {
  const Graph g = make_star(5);
  // Two sources at the same leaf need capacity 2 there.
  const std::vector<NodeId> sources{1, 1};
  const std::vector<NodeId> sinks{2, 3};
  EXPECT_FALSE(any_to_any_node_disjointly_connectable(g, sources, sinks, 1));
  EXPECT_TRUE(any_to_any_node_disjointly_connectable(g, sources, sinks, 2));
}

TEST(NodeDisjointPaths, PathEndpointsAreSourcesAndSinks) {
  const Graph g = make_cycle(8);
  const std::vector<NodeId> sources{0, 4};
  const std::vector<NodeId> sinks{2, 6};
  const NodeDisjointPathsResult result =
      max_node_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(result.connected_pairs, 2u);
  for (const auto& path : result.paths) {
    EXPECT_TRUE(path.front() == 0 || path.front() == 4);
    EXPECT_TRUE(path.back() == 2 || path.back() == 6);
  }
}

TEST(NodeDisjointPaths, ValidatorCatchesViolations) {
  const Graph g = make_path(4);
  EXPECT_FALSE(are_node_disjoint_paths(g, {{0, 2}}));          // not adjacent
  EXPECT_FALSE(are_node_disjoint_paths(g, {{0, 1}, {1, 2}}));  // node reuse
  EXPECT_TRUE(are_node_disjoint_paths(g, {{0, 1}, {2, 3}}));
  EXPECT_TRUE(are_node_disjoint_paths(g, {{0, 1}, {1, 2}}, 2));
}

TEST(MaxFlowValue, UnitPath) {
  const Graph g = make_path(5);
  EXPECT_DOUBLE_EQ(max_flow_value(g, 0, 4), 1.0);
}

TEST(MaxFlowValue, ParallelEdgesAdd) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(max_flow_value(g, 0, 1), 5.5);
}

TEST(MaxFlowValue, GridCutBound) {
  // Unit 4x4 grid, opposite corners: max flow = min cut = 2 (corner degree).
  const Graph g = make_grid(4, 4);
  EXPECT_DOUBLE_EQ(max_flow_value(g, 0, 15), 2.0);
}

TEST(MaxFlowValue, WeightedBottleneck) {
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 0.5);
  g.add_edge(2, 3, 10.0);
  g.add_edge(1, 3, 0.25);
  EXPECT_DOUBLE_EQ(max_flow_value(g, 0, 3), 0.75);
}

TEST(MaxFlowValue, SymmetricInEndpoints) {
  Rng rng(3);
  const Graph g = make_weighted_grid(5, 5, rng);
  EXPECT_NEAR(max_flow_value(g, 0, 24), max_flow_value(g, 24, 0), 1e-9);
}

}  // namespace
}  // namespace dls
