#include <gtest/gtest.h>

#include "congested_pa/layered_graph.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/tree_decomposition.hpp"
#include "shortcuts/quality_estimator.hpp"

namespace dls {
namespace {

TEST(LayeredGraph, SizesMatchConstruction) {
  const Graph g = make_grid(3, 3);  // n=9, m=12
  const LayeredGraph layered(g, 4);
  EXPECT_EQ(layered.graph().num_nodes(), 36u);
  // 4 copies of each edge + 9 cliques K4 (6 edges each).
  EXPECT_EQ(layered.graph().num_edges(), 4u * 12 + 9u * 6);
}

TEST(LayeredGraph, LiftProjectRoundTrip) {
  const Graph g = make_path(5);
  const LayeredGraph layered(g, 3);
  for (std::size_t l = 0; l < 3; ++l) {
    for (NodeId v = 0; v < 5; ++v) {
      const NodeId lifted = layered.lift(v, l);
      EXPECT_EQ(layered.project(lifted), v);
      EXPECT_EQ(layered.layer_of(lifted), l);
    }
  }
}

TEST(LayeredGraph, LiftedEdgeConnectsLiftedEndpoints) {
  const Graph g = make_cycle(4);
  const LayeredGraph layered(g, 3);
  for (std::size_t l = 0; l < 3; ++l) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& base = g.edge(e);
      const Edge& lifted = layered.graph().edge(layered.lift_edge(e, l));
      EXPECT_EQ(lifted.u, layered.lift(base.u, l));
      EXPECT_EQ(lifted.v, layered.lift(base.v, l));
      EXPECT_DOUBLE_EQ(lifted.weight, base.weight);
    }
  }
}

TEST(LayeredGraph, CliqueEdgeIndexing) {
  const Graph g = make_path(3);
  const LayeredGraph layered(g, 4);
  for (NodeId v = 0; v < 3; ++v) {
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = 0; b < 4; ++b) {
        if (a == b) continue;
        const Edge& e = layered.graph().edge(layered.clique_edge(v, a, b));
        const NodeId x = layered.lift(v, std::min(a, b));
        const NodeId y = layered.lift(v, std::max(a, b));
        EXPECT_EQ(e.u, x);
        EXPECT_EQ(e.v, y);
      }
    }
  }
}

TEST(LayeredGraph, SingleLayerIsIsomorphicCopy) {
  const Graph g = make_grid(3, 4);
  const LayeredGraph layered(g, 1);
  EXPECT_EQ(layered.graph().num_nodes(), g.num_nodes());
  EXPECT_EQ(layered.graph().num_edges(), g.num_edges());
}

TEST(LayeredGraph, ConnectedWhenBaseConnected) {
  Rng rng(1);
  const Graph g = make_random_tree(20, rng);
  const LayeredGraph layered(g, 5);
  EXPECT_TRUE(is_connected(layered.graph()));
}

TEST(LayeredGraph, DiameterGrowsByAtMostOne) {
  // Any layered path = base path + at most 2 clique hops.
  const Graph g = make_path(12);
  const LayeredGraph layered(g, 3);
  EXPECT_LE(exact_diameter(layered.graph()), exact_diameter(g) + 2);
}

// Lemma 19: tw(Ĝ_ρ) ≤ ρ·tw(G) + ρ − 1.
class Lemma19Test
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(Lemma19Test, TreewidthBoundHolds) {
  const auto [family, rho] = GetParam();
  Rng rng(11);
  Graph g;
  std::size_t tw_upper = 0;
  switch (family) {
    case 0:
      g = make_path(12);
      tw_upper = 1;
      break;
    case 1:
      g = make_caterpillar(6, 2);
      tw_upper = 1;
      break;
    case 2:
      g = make_cycle(10);
      tw_upper = 2;
      break;
    default:
      g = make_k_tree(14, 2, rng);
      tw_upper = 2;
      break;
  }
  const LayeredGraph layered(g, rho);
  // Heuristic width of the layered graph is an upper bound on tw(Ĝ_ρ); it
  // must respect (and usually confirms) Lemma 19's ρ·tw + ρ − 1 bound.
  const std::size_t measured = treewidth_upper_bound(layered.graph());
  EXPECT_LE(measured, rho * tw_upper + rho - 1)
      << "family=" << family << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Families, Lemma19Test,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(2u, 3u, 4u)));

// Theorem 22 (small-scale): the SQ estimate of Ĝ_ρ stays within a polylog
// factor of the base estimate, in contrast to treewidth's ρ factor.
TEST(Theorem22, SqEstimatePreservedUnderLayering) {
  Rng rng(21);
  const Graph g = make_grid(6, 6);
  const SqEstimate base = estimate_shortcut_quality(g, rng);
  for (std::size_t rho : {2u, 3u}) {
    const LayeredGraph layered(g, rho);
    const SqEstimate lifted = estimate_shortcut_quality(layered.graph(), rng);
    EXPECT_LE(lifted.quality, base.quality * 4 + 8)
        << "rho=" << rho << " base=" << base.quality
        << " lifted=" << lifted.quality;
  }
}

}  // namespace
}  // namespace dls
