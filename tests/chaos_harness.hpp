// Chaos harness for the congested-PA pipelines: seeded fault schedules,
// exact comparison against the fault-free oracle, and greedy shrinking of
// failing schedules to a minimal reproducing fault list.
//
// Every chaos case is reproducible from (scenario_seed, fault_seed, fault
// mix): the scenario seed re-derives the graph, the partition, and the input
// values; the fault seed re-derives the complete adversarial schedule via
// FaultPlan's stateless hash (sim/fault_injection.hpp). The root seed of the
// sweep is printable and overridable through DLS_CHAOS_SEED, so a CI failure
// replays locally with
//
//   DLS_CHAOS_SEED=<printed seed> ctest -R Chaos
//
// On a failure the harness re-runs the case in replay mode on the injected
// event list and ddmin-shrinks it: delete event chunks (halving down to
// single events) as long as the case still fails, until a locally minimal
// fault list remains. That list plus the seeds is the repro to pin in a
// regression test (see docs/TESTING.md, "Fault injection & chaos testing").
#pragma once

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "sim/fault_injection.hpp"

namespace dls {
namespace chaos {

/// Root seed for a sweep: DLS_CHAOS_SEED if set (decimal or 0x-hex),
/// otherwise `fallback`. Echo the result in test output so every run is
/// replayable with one command.
inline std::uint64_t root_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("DLS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// True iff the sweep should run its full grid (nightly / manual dispatch);
/// default is the smoke subset CI runs on every push.
inline bool full_sweep_requested() {
  const char* env = std::getenv("DLS_CHAOS_FULL");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// One chaos case: everything needed to build the scenario and its faults.
struct CaseConfig {
  std::string label;
  int family = 0;                 // index into the family table below
  std::uint64_t scenario_seed = 0;  // graph + partition + values + solver
  std::uint64_t fault_seed = 0;     // the adversarial schedule
  FaultConfig faults;
  PaModel model = PaModel::kSupportedCongest;
};

inline Graph chaos_family_graph(int family, Rng& rng) {
  switch (family % 4) {
    case 0: return make_grid(5 + rng.next_below(3), 5 + rng.next_below(3));
    case 1: return make_random_tree(24 + rng.next_below(16), rng);
    case 2: return make_random_regular(24 + 2 * rng.next_below(6), 4, rng);
    default: return make_torus(5, 5 + rng.next_below(2));
  }
}

struct Scenario {
  Graph g;
  PartCollection pc;
  std::vector<std::vector<double>> values;
  std::uint64_t solver_seed = 0;
};

/// Re-derives the full scenario from the case's scenario seed alone.
inline Scenario build_scenario(const CaseConfig& c) {
  Rng rng(c.scenario_seed);
  Scenario s{chaos_family_graph(c.family, rng), {}, {}, 0};
  const std::size_t rho = 1 + rng.next_below(3);
  const std::size_t k = 2 + rng.next_below(3);
  s.pc = stacked_voronoi_instance(s.g, k, rho, rng);
  s.values.resize(s.pc.num_parts());
  for (std::size_t i = 0; i < s.pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < s.pc.parts[i].size(); ++j) {
      // Integer values in [-5, 5]: aggregates are exact under any
      // association, so agreement with the oracle is checked with ==.
      s.values[i].push_back(static_cast<double>(
          static_cast<std::int64_t>(rng.next_below(11)) - 5));
    }
  }
  s.solver_seed = rng();
  return s;
}

/// Runs the case once: a fault-free solve and a faulted solve from identical
/// solver streams, compared bit-for-bit. Returns "" on agreement, else a
/// diagnosis. With `replay` non-null the fault schedule is the given event
/// list instead of the generative one; with `out_injected` non-null the
/// events that actually fired are returned (for the shrinker).
inline std::string run_case(const CaseConfig& c,
                            const std::vector<FaultEvent>* replay = nullptr,
                            std::vector<FaultEvent>* out_injected = nullptr) {
  const Scenario s = build_scenario(c);
  CongestedPaOptions options;
  options.model = c.model;

  Rng clean_rng(s.solver_seed);
  const CongestedPaOutcome clean = solve_congested_pa(
      s.g, s.pc, s.values, AggregationMonoid::sum(), clean_rng, options);

  FaultPlan plan = replay != nullptr
                       ? FaultPlan::replay(c.fault_seed, *replay, c.faults)
                       : FaultPlan(c.fault_seed, c.faults);
  options.faults = &plan;
  Rng faulty_rng(s.solver_seed);
  std::string diagnosis;
  try {
    const CongestedPaOutcome faulty = solve_congested_pa(
        s.g, s.pc, s.values, AggregationMonoid::sum(), faulty_rng, options);
    for (std::size_t i = 0; i < s.pc.num_parts(); ++i) {
      if (faulty.results[i] != clean.results[i]) {
        diagnosis += "part " + std::to_string(i) + ": faulty " +
                     std::to_string(faulty.results[i]) + " != clean " +
                     std::to_string(clean.results[i]) + "\n";
      }
    }
  } catch (const ChaosAbortError& e) {
    diagnosis = std::string("ChaosAbortError: ") + e.what() + "\n";
  } catch (const std::exception& e) {
    diagnosis = std::string("exception: ") + e.what() + "\n";
  }
  if (out_injected != nullptr) *out_injected = plan.injected();
  return diagnosis;
}

/// Greedy ddmin-style shrink: repeatedly delete chunks (size halving down to
/// 1) while `still_fails` holds, until no single event can be removed. The
/// result is a locally minimal failing subset of `events`.
inline std::vector<FaultEvent> shrink_events(
    std::vector<FaultEvent> events,
    const std::function<bool(const std::vector<FaultEvent>&)>& still_fails) {
  std::size_t chunk = events.size() / 2;
  if (chunk == 0) chunk = 1;
  for (;;) {
    bool removed_any = false;
    std::size_t i = 0;
    while (i < events.size()) {
      const std::size_t len = chunk < events.size() - i ? chunk : events.size() - i;
      std::vector<FaultEvent> candidate;
      candidate.reserve(events.size() - len);
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(),
                       events.begin() + static_cast<std::ptrdiff_t>(i + len),
                       events.end());
      if (still_fails(candidate)) {
        events = std::move(candidate);
        removed_any = true;  // retry same position: the tail shifted left
      } else {
        i += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) return events;  // fixpoint at single-event granularity
    } else {
      chunk /= 2;
    }
  }
}

/// Shrinks the case's failing schedule and formats the repro block a failing
/// chaos test prints: seeds, minimal fault list, and the replay command.
inline std::string describe_repro(const CaseConfig& c,
                                  const std::vector<FaultEvent>& injected) {
  const std::vector<FaultEvent> minimal =
      shrink_events(injected, [&](const std::vector<FaultEvent>& subset) {
        return !run_case(c, &subset).empty();
      });
  std::string out = "chaos repro for " + c.label + ":\n";
  out += "  scenario_seed = " + std::to_string(c.scenario_seed) + "\n";
  out += "  fault_seed    = " + std::to_string(c.fault_seed) + "\n";
  out += "  minimal fault list (" + std::to_string(minimal.size()) + " of " +
         std::to_string(injected.size()) + " injected):\n";
  for (const FaultEvent& e : minimal) {
    out += "    " + to_string(e) + "\n";
  }
  out += "  replay: FaultPlan::replay(fault_seed, {events above}, config), "
         "or rerun with DLS_CHAOS_SEED (printed at sweep start)\n";
  return out;
}

}  // namespace chaos
}  // namespace dls
