#include <gtest/gtest.h>

#include <set>

#include "congested_pa/path_restricted.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dls {
namespace {

PathInstance grid_row_paths(std::size_t side) {
  PathInstance inst;
  for (std::size_t r = 0; r < side; ++r) {
    std::vector<NodeId> path;
    std::vector<double> vals;
    for (std::size_t c = 0; c < side; ++c) {
      path.push_back(static_cast<NodeId>(r * side + c));
      vals.push_back(1.0);
    }
    inst.paths.push_back(std::move(path));
    inst.values.push_back(std::move(vals));
  }
  return inst;
}

TEST(PathInstanceValidation, ComputesCongestion) {
  const Graph g = make_path(6);
  PathInstance inst;
  inst.paths = {{0, 1, 2}, {2, 3}, {1, 2}};
  inst.values = {{1, 1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(validate_path_instance(g, inst), 3u);  // node 2 in three paths
}

TEST(PathInstanceValidation, RejectsNonSimple) {
  const Graph g = make_cycle(4);
  PathInstance inst;
  inst.paths = {{0, 1, 0}};
  inst.values = {{1, 1, 1}};
  EXPECT_THROW(validate_path_instance(g, inst), std::invalid_argument);
}

TEST(PathInstanceValidation, RejectsNonAdjacent) {
  const Graph g = make_path(5);
  PathInstance inst;
  inst.paths = {{0, 2}};
  inst.values = {{1, 1}};
  EXPECT_THROW(validate_path_instance(g, inst), std::invalid_argument);
}

TEST(LiftedInstanceTest, Lemma18InvariantDisjointAndConnected) {
  // The heart of Lemma 18: lifted parts are node-disjoint in Ĝ_C and each
  // induces a connected subgraph there.
  const std::size_t side = 5;
  const Graph g = make_grid(side, side);
  PathInstance inst = grid_row_paths(side);
  // Add overlapping column paths to force congestion 2.
  for (std::size_t c = 0; c < side; ++c) {
    std::vector<NodeId> path;
    std::vector<double> vals;
    for (std::size_t r = 0; r < side; ++r) {
      path.push_back(static_cast<NodeId>(r * side + c));
      vals.push_back(1.0);
    }
    inst.paths.push_back(std::move(path));
    inst.values.push_back(std::move(vals));
  }
  EXPECT_EQ(validate_path_instance(g, inst), 2u);
  Rng rng(1);
  const LiftedInstance lifted = build_lifted_instance(g, inst, rng);
  EXPECT_TRUE(is_valid_part_collection(lifted.layered->graph(), lifted.parts,
                                       /*require_disjoint=*/true));
  EXPECT_EQ(lifted.parts.num_parts(), inst.paths.size());
}

TEST(LiftedInstanceTest, SingleNodePathsAreLocalOnly) {
  const Graph g = make_path(4);
  PathInstance inst;
  inst.paths = {{1}, {2, 3}};
  inst.values = {{5.0}, {1.0, 2.0}};
  Rng rng(2);
  const LiftedInstance lifted = build_lifted_instance(g, inst, rng);
  EXPECT_EQ(lifted.local_only.size(), 1u);
  EXPECT_EQ(lifted.local_only[0], 0u);
  EXPECT_EQ(lifted.parts.num_parts(), 1u);
}

TEST(SolvePathRestricted, SumsCorrectOnRows) {
  const std::size_t side = 5;
  const Graph g = make_grid(side, side);
  const PathInstance inst = grid_row_paths(side);
  Rng rng(3);
  const PathRestrictedOutcome outcome =
      solve_path_restricted(g, inst, AggregationMonoid::sum(), rng);
  for (double r : outcome.results) EXPECT_DOUBLE_EQ(r, static_cast<double>(side));
  EXPECT_EQ(outcome.congestion, 1u);
  EXPECT_GE(outcome.layers, 2u);  // path interiors have degree 2
  EXPECT_EQ(outcome.charged_rounds,
            outcome.coloring_rounds + outcome.layers * outcome.layered_pa_rounds);
}

TEST(SolvePathRestricted, CongestedOverlapsCorrect) {
  // Row and column paths overlapping everywhere (ρ = 2), distinct values.
  const std::size_t side = 4;
  const Graph g = make_grid(side, side);
  PathInstance inst;
  Rng value_rng(77);
  std::vector<double> expected;
  for (int kind = 0; kind < 2; ++kind) {
    for (std::size_t a = 0; a < side; ++a) {
      std::vector<NodeId> path;
      std::vector<double> vals;
      double sum = 0;
      for (std::size_t b = 0; b < side; ++b) {
        const std::size_t r = kind == 0 ? a : b;
        const std::size_t c = kind == 0 ? b : a;
        path.push_back(static_cast<NodeId>(r * side + c));
        const double v = value_rng.next_double();
        vals.push_back(v);
        sum += v;
      }
      inst.paths.push_back(std::move(path));
      inst.values.push_back(std::move(vals));
      expected.push_back(sum);
    }
  }
  Rng rng(4);
  const PathRestrictedOutcome outcome =
      solve_path_restricted(g, inst, AggregationMonoid::sum(), rng);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(outcome.results[i], expected[i], 1e-9);
  }
}

TEST(SolvePathRestricted, MinMonoidWithIdentityPlaceholders) {
  // Interior nodes get a second lifted copy whose placeholder must be the
  // monoid identity — min would break if it were 0.0.
  const Graph g = make_path(6);
  PathInstance inst;
  inst.paths = {{0, 1, 2, 3, 4, 5}};
  inst.values = {{9.0, 8.0, 7.0, 3.0, 8.0, 9.0}};
  Rng rng(5);
  const PathRestrictedOutcome outcome =
      solve_path_restricted(g, inst, AggregationMonoid::min(), rng);
  EXPECT_DOUBLE_EQ(outcome.results[0], 3.0);
}

class PathRestrictedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PathRestrictedSweep, RandomInstancesMatchSequential) {
  const auto [seed, rho] = GetParam();
  Rng rng(seed);
  const Graph g = make_torus(5, 5);
  PathInstance inst;
  std::vector<double> expected;
  // Random simple paths via the partition generator.
  const PartCollection pc = random_path_instance(g, 8, 6, rho, rng);
  for (const auto& part : pc.parts) {
    std::vector<double> vals;
    double sum = 0;
    for (std::size_t j = 0; j < part.size(); ++j) {
      const double v = rng.next_double();
      vals.push_back(v);
      sum += v;
    }
    inst.paths.push_back(part);
    inst.values.push_back(std::move(vals));
    expected.push_back(sum);
  }
  const PathRestrictedOutcome outcome =
      solve_path_restricted(g, inst, AggregationMonoid::sum(), rng);
  EXPECT_LE(outcome.congestion, rho);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(outcome.results[i], expected[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathRestrictedSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1u, 2u, 4u)));

}  // namespace
}  // namespace dls
