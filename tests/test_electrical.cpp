#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/electrical.hpp"

namespace dls {
namespace {

DistributedLaplacianSolver make_solver(const Graph& g, Rng& rng,
                                       ShortcutPaOracle& oracle) {
  LaplacianSolverOptions options;
  options.tolerance = 1e-10;
  options.base_size = 64;
  return DistributedLaplacianSolver(oracle, rng, options);
}

TEST(EffectiveResistance, PathIsHopCount) {
  const Graph g = make_path(6);
  Rng rng(1);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  EXPECT_NEAR(effective_resistance(solver, 0, 5), 5.0, 1e-6);
  EXPECT_NEAR(effective_resistance(solver, 1, 3), 2.0, 1e-6);
}

TEST(EffectiveResistance, ParallelEdgesHalve) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  Rng rng(2);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  EXPECT_NEAR(effective_resistance(solver, 0, 1), 0.5, 1e-8);
}

TEST(EffectiveResistance, CycleSeriesParallel) {
  // C_n between adjacent nodes: 1 ∥ (n−1) = (n−1)/n.
  const std::size_t n = 8;
  const Graph g = make_cycle(n);
  Rng rng(3);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  EXPECT_NEAR(effective_resistance(solver, 0, 1),
              static_cast<double>(n - 1) / static_cast<double>(n), 1e-6);
}

TEST(ResistanceSketchTest, ApproximatesExactResistances) {
  const Graph g = make_grid(4, 4);
  Rng rng(4);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  const ResistanceSketch sketch =
      sketch_effective_resistances(g, solver, rng, 0.4);
  // Spot-check a few edges against single-pair solves.
  for (EdgeId e : {EdgeId{0}, EdgeId{5}, EdgeId{11}}) {
    const Edge& edge = g.edge(e);
    const double exact = effective_resistance(solver, edge.u, edge.v);
    EXPECT_NEAR(sketch.edge_resistance[e], exact, 0.5 * exact + 0.05)
        << "edge " << e;
  }
  EXPECT_GE(sketch.solves, 4u);
}

TEST(ResistanceSketchTest, TreeEdgesHaveUnitLeverage) {
  // On a tree every edge's leverage score w_e·R_e is exactly 1.
  Rng rng(5);
  const Graph g = make_random_tree(20, rng);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  const ResistanceSketch sketch =
      sketch_effective_resistances(g, solver, rng, 0.3);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(g.edge(e).weight * sketch.edge_resistance[e], 1.0, 0.45);
  }
}

TEST(SpectralSparsify, KeepsGraphConnectedAndClose) {
  const Graph g = make_grid(6, 6);
  Rng rng(6);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  const SpectralSparsifier sp = spectral_sparsify(g, solver, rng, 6.0);
  EXPECT_EQ(sp.sparsifier.num_nodes(), g.num_nodes());
  EXPECT_LE(sp.sparsifier.num_edges(), g.num_edges());
  const double distortion = measure_spectral_distortion(g, sp.sparsifier, rng);
  EXPECT_LT(distortion, 4.0);  // Monte-Carlo envelope, generous
}

TEST(SpectralSparsify, DensityDropsOnDenseGraphs) {
  // K_36: every edge has leverage 2/n ≈ 0.056, so a modest oversampling
  // constant keeps only a fraction of the m = 630 edges.
  const Graph g = make_complete(36);
  Rng rng(7);
  ShortcutPaOracle oracle(g, rng);
  auto solver = make_solver(g, rng, oracle);
  const SpectralSparsifier sp = spectral_sparsify(g, solver, rng, 1.5);
  EXPECT_LT(sp.sparsifier.num_edges(), g.num_edges() / 2);
  EXPECT_GT(sp.sparsifier.num_edges(), 36u);  // still substantial
  const double distortion = measure_spectral_distortion(g, sp.sparsifier, rng);
  EXPECT_LT(distortion, 6.0);
}

TEST(SpectralDistortion, IdenticalGraphsHaveUnit) {
  const Graph g = make_grid(4, 4);
  Rng rng(8);
  EXPECT_DOUBLE_EQ(measure_spectral_distortion(g, g, rng), 1.0);
}

}  // namespace
}  // namespace dls
