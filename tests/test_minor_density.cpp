#include <gtest/gtest.h>

#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "graph/minor_density.hpp"

namespace dls {
namespace {

TEST(MinorDensity, SimpleDensityIgnoresParallels) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(simple_edge_density(g), 2.0 / 3.0);
}

TEST(MinorDensity, WitnessValidationAcceptsIdentity) {
  const Graph g = make_cycle(5);
  MinorWitness w;
  for (NodeId v = 0; v < 5; ++v) w.branch_sets.push_back({v});
  EXPECT_TRUE(validate_minor_witness(g, w));
  EXPECT_EQ(w.minor_nodes, 5u);
  EXPECT_EQ(w.minor_edges, 5u);
}

TEST(MinorDensity, WitnessValidationRejectsOverlap) {
  const Graph g = make_path(4);
  MinorWitness w;
  w.branch_sets = {{0, 1}, {1, 2}};
  EXPECT_FALSE(validate_minor_witness(g, w));
}

TEST(MinorDensity, WitnessValidationRejectsDisconnectedBranchSet) {
  const Graph g = make_path(4);
  MinorWitness w;
  w.branch_sets = {{0, 3}};  // not connected in the path
  EXPECT_FALSE(validate_minor_witness(g, w));
}

TEST(MinorDensity, GreedySearchBeatsBaseDensityOnDenseGraph) {
  Rng rng(17);
  const Graph g = make_complete(8);
  const MinorWitness w = dense_minor_search(g, rng, 2);
  // K8 is its own densest minor (density 3.5); contraction can't beat it but
  // the search must at least recover something valid and reasonably dense.
  EXPECT_GE(w.density(), 2.0);
}

TEST(MinorDensity, Observation21WitnessHasSqrtNDensity) {
  // δ(Ĝ₂) = Ω(√n) for the 2-layered s×s grid, although δ(grid) < 3.
  for (std::size_t side : {4u, 6u, 8u}) {
    const Graph grid = make_grid(side, side);
    EXPECT_LT(simple_edge_density(grid), 2.0);
    const LayeredGraph layered(grid, 2);
    MinorWitness w = observation21_witness(layered.graph(), side);
    EXPECT_TRUE(validate_minor_witness(layered.graph(), w));
    // The witness contains K_{s,s}: 2s branch sets, ≥ s² edges.
    EXPECT_EQ(w.minor_nodes, 2 * side);
    EXPECT_GE(w.minor_edges, side * side);
    EXPECT_GE(w.density(), static_cast<double>(side) / 2.0);
  }
}

TEST(MinorDensity, LayeredGridBlowupGrowsWithSide) {
  // The density ratio δ(Ĝ₂)/δ(G) grows like √n — Observation 21's content.
  double previous_ratio = 0.0;
  for (std::size_t side : {4u, 8u}) {
    const Graph grid = make_grid(side, side);
    const LayeredGraph layered(grid, 2);
    MinorWitness w = observation21_witness(layered.graph(), side);
    validate_minor_witness(layered.graph(), w);
    const double ratio = w.density() / simple_edge_density(grid);
    EXPECT_GT(ratio, previous_ratio);
    previous_ratio = ratio;
  }
}

}  // namespace
}  // namespace dls
