// Shared definition of the golden-trace scenarios, included by BOTH
// tests/test_golden_rounds.cpp (which checks the pinned table) and
// tools/golden_rounds_gen.cpp (which regenerates it). Keeping graph, seed,
// instance, and value construction in one place guarantees the generator
// reproduces exactly what the test measures.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace dls {
namespace golden {

// Fixed seeds. Changing any of these invalidates the golden table.
constexpr std::uint64_t kTreeGraphSeed = 404;
constexpr std::uint64_t kExpanderGraphSeed = 505;
constexpr std::uint64_t kKtreeGraphSeed = 303;
constexpr std::uint64_t kInstanceSeed = 606;
constexpr std::uint64_t kSolverSeed = 777;

// grid + tree + expander cover the C2/C6 pipelines (layered-graph reduction
// under the Supported-CONGEST / CONGEST charging rules) and C7 (NCC); the
// bounded-treewidth k-tree covers the C3 (Lemma 19 / Corollary 20) regime.
constexpr const char* kFamilies[] = {"grid", "tree", "expander", "ktree"};
constexpr PaModel kModels[] = {PaModel::kSupportedCongest, PaModel::kCongest,
                               PaModel::kNcc};

struct GoldenScenario {
  Graph graph;
  PartCollection pc;
  std::vector<std::vector<double>> values;
};

inline Graph golden_graph(const std::string& family) {
  if (family == "grid") return make_grid(8, 8);
  if (family == "tree") {
    Rng rng(kTreeGraphSeed);
    return make_random_tree(64, rng);
  }
  if (family == "expander") {
    Rng rng(kExpanderGraphSeed);
    return make_random_regular(64, 4, rng);
  }
  if (family == "ktree") {
    Rng rng(kKtreeGraphSeed);
    return make_k_tree(64, 2, rng);  // treewidth exactly 2
  }
  throw std::invalid_argument("unknown golden family: " + family);
}

inline GoldenScenario golden_scenario(const std::string& family) {
  GoldenScenario s{golden_graph(family), {}, {}};
  Rng rng(kInstanceSeed);
  s.pc = stacked_voronoi_instance(s.graph, 4, 3, rng);
  s.values.resize(s.pc.num_parts());
  for (std::size_t i = 0; i < s.pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < s.pc.parts[i].size(); ++j) {
      // Integer values in [-5, 5]: sums are exact under any association.
      s.values[i].push_back(static_cast<double>(
          static_cast<std::int64_t>(rng.next_below(11)) - 5));
    }
  }
  return s;
}

inline const char* model_name(PaModel model) {
  switch (model) {
    case PaModel::kSupportedCongest:
      return "SupportedCongest";
    case PaModel::kCongest:
      return "Congest";
    case PaModel::kNcc:
      return "Ncc";
  }
  return "?";
}

/// Runs one golden case from scratch (fresh solver stream, so cases are
/// order-independent) and returns the outcome to fingerprint.
inline CongestedPaOutcome run_golden_case(const std::string& family,
                                          PaModel model) {
  const GoldenScenario s = golden_scenario(family);
  CongestedPaOptions options;
  options.model = model;
  Rng rng(kSolverSeed);
  return solve_congested_pa(s.graph, s.pc, s.values, AggregationMonoid::sum(),
                            rng, options);
}

/// One golden case run under a fresh ambient tracer. The span stream
/// fingerprints the pipeline's control flow the same way the ledger
/// fingerprints its cost: `trace_spans` pins how many phases ran and
/// `trace_hash` (obs/trace_export.hpp) pins their names, nesting, counters
/// and round cursors structurally. The outcome must be identical to an
/// untraced run — tracing observes, it never steers.
struct TracedGoldenCase {
  CongestedPaOutcome outcome;
  std::size_t trace_spans = 0;
  std::uint64_t trace_hash = 0;
};

inline TracedGoldenCase run_golden_case_traced(const std::string& family,
                                               PaModel model) {
  TracedGoldenCase result;
  Tracer tracer;
  {
    TraceScope scope(&tracer);
    result.outcome = run_golden_case(family, model);
  }
  result.trace_spans = tracer.spans().size();
  result.trace_hash = trace_hash(tracer);
  return result;
}

}  // namespace golden
}  // namespace dls
