#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/tree_decomposition.hpp"

namespace dls {
namespace {

TEST(TreeDecomposition, PathHasWidthOne) {
  const Graph g = make_path(20);
  const TreeDecomposition td = tree_decomposition_heuristic(g);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_EQ(td.width(), 1u);
}

TEST(TreeDecomposition, TreeHasWidthOne) {
  Rng rng(3);
  const Graph g = make_random_tree(40, rng);
  const TreeDecomposition td = tree_decomposition_heuristic(g);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_EQ(td.width(), 1u);
}

TEST(TreeDecomposition, CycleHasWidthTwo) {
  const Graph g = make_cycle(15);
  const TreeDecomposition td = tree_decomposition_heuristic(g);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_EQ(td.width(), 2u);
}

TEST(TreeDecomposition, CompleteGraphWidthNMinusOne) {
  const Graph g = make_complete(6);
  const TreeDecomposition td = tree_decomposition_heuristic(g);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_EQ(td.width(), 5u);
}

TEST(TreeDecomposition, KTreeWidthExactlyK) {
  Rng rng(5);
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    const Graph g = make_k_tree(30, k, rng);
    // k-trees are chordal: min-degree elimination is exact.
    const std::size_t ub = treewidth_upper_bound(g);
    EXPECT_EQ(ub, k) << "k=" << k;
    EXPECT_GE(ub, treewidth_lower_bound_min_degree(g));
  }
}

TEST(TreeDecomposition, GridWidthBracketed) {
  const Graph g = make_grid(5, 5);
  const std::size_t ub = treewidth_upper_bound(g);
  const std::size_t lb = treewidth_lower_bound_min_degree(g);
  // tw(5x5 grid) = 5.
  EXPECT_GE(ub, 5u);
  EXPECT_LE(ub, 8u);  // heuristic slack
  EXPECT_GE(lb, 2u);
  EXPECT_LE(lb, 5u);
}

TEST(TreeDecomposition, MinFillAtLeastAsGoodOnGrid) {
  const Graph g = make_grid(4, 6);
  const std::size_t md = treewidth_upper_bound(g, EliminationHeuristic::kMinDegree);
  const std::size_t mf = treewidth_upper_bound(g, EliminationHeuristic::kMinFill);
  EXPECT_LE(mf, md + 2);  // min-fill is usually no worse
  const TreeDecomposition td =
      tree_decomposition_heuristic(g, EliminationHeuristic::kMinFill);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
}

TEST(TreeDecomposition, ValidatorRejectsMissingEdgeCoverage) {
  const Graph g = make_path(3);  // edges (0,1), (1,2)
  TreeDecomposition td;
  td.bags = {{0, 1}, {2}};
  td.tree_edges = {{0, 1}};
  EXPECT_FALSE(is_valid_tree_decomposition(g, td));  // edge (1,2) uncovered
}

TEST(TreeDecomposition, ValidatorRejectsDisconnectedOccurrences) {
  const Graph g = make_path(3);
  TreeDecomposition td;
  td.bags = {{0, 1}, {1, 2}, {0}};  // node 0 in bags 0 and 2, not adjacent
  td.tree_edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(is_valid_tree_decomposition(g, td));
}

TEST(TreeDecomposition, ValidatorAcceptsHandCraftedPath) {
  const Graph g = make_path(4);
  TreeDecomposition td;
  td.bags = {{0, 1}, {1, 2}, {2, 3}};
  td.tree_edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_EQ(td.width(), 1u);
}

class FamilyWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilyWidthTest, DecompositionAlwaysValid) {
  Rng rng(GetParam());
  const Graph g = make_erdos_renyi(24, 0.15, rng);
  const TreeDecomposition td = tree_decomposition_heuristic(g);
  EXPECT_TRUE(is_valid_tree_decomposition(g, td));
  EXPECT_GE(td.width() + 1, treewidth_lower_bound_min_degree(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dls
