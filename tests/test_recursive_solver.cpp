#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/solvers.hpp"

namespace dls {
namespace {

Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2 - 1;
  project_mean_zero(b);
  return b;
}

LaplacianSolverOptions quick_options(double tol = 1e-6) {
  LaplacianSolverOptions options;
  options.tolerance = tol;
  options.base_size = 40;
  return options;
}

void check_solver_on(const Graph& g, std::uint64_t seed, double tol = 1e-6) {
  Rng rng(seed);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options(tol));
  const Vec b = random_rhs(g.num_nodes(), rng);
  const LaplacianSolveReport report = solver.solve(b);
  EXPECT_TRUE(report.converged) << g.describe();
  EXPECT_LE(report.relative_residual, 2 * tol) << g.describe();
  // The answer matches a sequential reference in the L-seminorm.
  SolveOptions ref_options;
  ref_options.tolerance = 1e-12;
  const SolveResult ref = solve_laplacian_cg(g, b, ref_options);
  EXPECT_LT(relative_error_in_l_norm(g, report.x, ref.x), 100 * tol)
      << g.describe();
  EXPECT_GT(report.pa_calls, 0u);
  EXPECT_GT(report.local_rounds, 0u);
}

TEST(RecursiveSolver, SmallGridBaseCaseOnly) {
  // 5x5 grid fits in the Cholesky base — exercises the trivial chain.
  check_solver_on(make_grid(5, 5), 1);
}

TEST(RecursiveSolver, GridWithOneLevel) { check_solver_on(make_grid(9, 9), 2); }

TEST(RecursiveSolver, WeightedGrid) {
  Rng rng(3);
  check_solver_on(make_weighted_grid(8, 8, rng), 3);
}

TEST(RecursiveSolver, Expander) {
  Rng rng(4);
  check_solver_on(make_random_regular(96, 4, rng), 4);
}

TEST(RecursiveSolver, Torus) { check_solver_on(make_torus(8, 8), 5); }

TEST(RecursiveSolver, TreeInput) {
  Rng rng(6);
  check_solver_on(make_random_tree(80, rng), 6);
}

TEST(RecursiveSolver, ChainHasMultipleLevelsOnLargeGraph) {
  Rng rng(7);
  const Graph g = make_grid(12, 12);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  EXPECT_GE(solver.num_levels(), 2u);
  const auto& stats = solver.level_stats();
  EXPECT_EQ(stats.front().nodes, g.num_nodes());
  EXPECT_TRUE(stats.back().is_base);
  // Sizes shrink down the chain.
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LT(stats[i].nodes, stats[i - 1].nodes);
  }
}

TEST(RecursiveSolver, EpsScalingMoreIterationsForTighterTolerance) {
  const Graph g = make_grid(10, 10);
  std::uint64_t rounds_loose = 0, rounds_tight = 0;
  {
    Rng rng(8);
    ShortcutPaOracle oracle(g, rng);
    DistributedLaplacianSolver solver(oracle, rng, quick_options(1e-2));
    const Vec b = random_rhs(g.num_nodes(), rng);
    rounds_loose = solver.solve(b).local_rounds;
  }
  {
    Rng rng(8);
    ShortcutPaOracle oracle(g, rng);
    DistributedLaplacianSolver solver(oracle, rng, quick_options(1e-10));
    const Vec b = random_rhs(g.num_nodes(), rng);
    rounds_tight = solver.solve(b).local_rounds;
  }
  EXPECT_GT(rounds_tight, rounds_loose);
}

TEST(RecursiveSolver, HybridModelUsesGlobalRoundsOnly) {
  const Graph g = make_grid(8, 8);
  Rng rng(9);
  NccPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options(1e-5));
  const Vec b = random_rhs(g.num_nodes(), rng);
  const LaplacianSolveReport report = solver.solve(b);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.global_rounds, 0u);
  // Local rounds still accrue from matvecs/elimination, but the PA calls —
  // the dominant cost — ride the global network.
  EXPECT_GT(report.global_rounds, report.local_rounds / 4);
  EXPECT_GE(report.hybrid_rounds, report.global_rounds);
}

TEST(RecursiveSolver, BaselineOracleCorrectButSlower) {
  // A ≥3-level chain is needed to expose the gap: only minor-level matvec
  // instances (many small parts) distinguish the oracles — single-part
  // global aggregations cost the same under both.
  const Graph g = make_grid(14, 14);
  LaplacianSolverOptions options = quick_options(1e-5);
  options.base_size = 24;
  std::uint64_t fast_rounds = 0, slow_rounds = 0;
  {
    Rng rng(10);
    ShortcutPaOracle oracle(g, rng);
    DistributedLaplacianSolver solver(oracle, rng, options);
    const auto report = solver.solve(random_rhs(g.num_nodes(), rng));
    EXPECT_TRUE(report.converged);
    fast_rounds = report.local_rounds;
  }
  {
    Rng rng(10);
    BaselinePaOracle oracle(g, rng);
    DistributedLaplacianSolver solver(oracle, rng, options);
    const auto report = solver.solve(random_rhs(g.num_nodes(), rng));
    EXPECT_TRUE(report.converged);
    slow_rounds = report.local_rounds;
  }
  EXPECT_LT(fast_rounds, slow_rounds);
}

TEST(RecursiveSolver, TreePreconditionerAblation) {
  const Graph g = make_grid(9, 9);
  Rng rng(11);
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options = quick_options(1e-6);
  options.tree_preconditioner_only = true;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const Vec b = random_rhs(g.num_nodes(), rng);
  const LaplacianSolveReport report = solver.solve(b);
  EXPECT_TRUE(report.converged);
}

TEST(RecursiveSolver, ChebyshevOuterConverges) {
  const Graph g = make_grid(10, 10);
  Rng rng(21);
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options = quick_options(1e-7);
  options.outer = OuterIteration::kChebyshev;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const Vec b = random_rhs(g.num_nodes(), rng);
  const LaplacianSolveReport report = solver.solve(b);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.relative_residual, 2e-7);
}

TEST(RecursiveSolver, PcgBeatsChebyshevInIterations) {
  const Graph g = make_grid(10, 10);
  std::size_t pcg_iters = 0, cheb_iters = 0;
  for (int mode = 0; mode < 2; ++mode) {
    Rng rng(22);
    ShortcutPaOracle oracle(g, rng);
    LaplacianSolverOptions options = quick_options(1e-6);
    options.outer = mode == 0 ? OuterIteration::kFlexiblePcg
                              : OuterIteration::kChebyshev;
    DistributedLaplacianSolver solver(oracle, rng, options);
    const auto report = solver.solve(random_rhs(g.num_nodes(), rng));
    EXPECT_TRUE(report.converged);
    (mode == 0 ? pcg_iters : cheb_iters) = report.outer_iterations;
  }
  EXPECT_LT(pcg_iters, cheb_iters);
}

TEST(RecursiveSolver, ResidualHistoryDecreases) {
  const Graph g = make_grid(9, 9);
  Rng rng(23);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options(1e-8));
  const auto report = solver.solve(random_rhs(g.num_nodes(), rng));
  ASSERT_GE(report.residual_history.size(), 2u);
  EXPECT_LE(report.residual_history.back(), report.residual_history.front());
  // Final recorded residual matches the report's.
  EXPECT_LE(report.residual_history.back(), 1e-7);
}

TEST(RecursiveSolver, RejectsBadRhs) {
  const Graph g = make_grid(4, 4);
  Rng rng(12);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  // Wrong dimension is still rejected outright …
  EXPECT_THROW(solver.solve(Vec(15, 1.0)), std::invalid_argument);
  // … but a rhs outside range(L) is now projected onto it instead of being
  // rejected: a constant rhs projects to zero, so the solve reports a clean
  // converged zero solution with a fully populated report.
  const LaplacianSolveReport report = solver.solve(Vec(16, 1.0));
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.outer_iterations, 0u);
  EXPECT_EQ(report.relative_residual, 0.0);
  EXPECT_EQ(norm2(report.x), 0.0);
  EXPECT_GT(report.local_rounds, 0u);  // ‖b‖ dot + certificate were charged
}

TEST(RecursiveSolver, RejectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  Rng rng(13);
  ShortcutPaOracle oracle(g, rng);
  EXPECT_THROW(DistributedLaplacianSolver(oracle, rng, quick_options()),
               std::invalid_argument);
}

TEST(RecursiveSolver, ZeroRhsGivesZero) {
  const Graph g = make_grid(5, 5);
  Rng rng(14);
  ShortcutPaOracle oracle(g, rng);
  DistributedLaplacianSolver solver(oracle, rng, quick_options());
  const LaplacianSolveReport report = solver.solve(Vec(25, 0.0));
  EXPECT_TRUE(report.converged);
  for (double v : report.x) EXPECT_NEAR(v, 0.0, 1e-12);
}

class SolverSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SolverSweep, ConvergesAcrossFamiliesAndSeeds) {
  const auto [family, seed] = GetParam();
  Rng rng(seed * 1000 + 17);
  Graph g;
  switch (family) {
    case 0: g = make_grid(7, 9); break;
    case 1: g = make_random_regular(64, 4, rng); break;
    case 2: g = make_weighted_grid(7, 7, rng); break;
    default: g = make_triangulated_grid(7, 7); break;
  }
  check_solver_on(g, static_cast<std::uint64_t>(seed * 7 + family), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace dls
