// Randomized structural-invariant sweeps over the combinatorial primitives
// the PA pipeline is built from. Where test_edge_coloring / test_euler_paths
// / test_layered_graph pin concrete examples, these tests assert the paper's
// lemma-level invariants over seeded random families:
//   * Lemma 17 — edge colourings are proper and use O(Δ) colours;
//   * Lemma 15's Euler mechanism — segment decompositions walk every
//     spanning-tree edge exactly twice and cover every part node once;
//   * Lemmas 15–18 — layered graph Ĝ_ρ has exactly ρn nodes and
//     ρm + n·ρ(ρ−1)/2 edges, with lift/project inverse on every node.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "congested_pa/edge_coloring.hpp"
#include "congested_pa/euler_paths.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"
#include "util/random.hpp"

namespace dls {
namespace {

constexpr std::uint64_t kSweepSeed = 0x14A7'0815ULL;

std::vector<MultiEdge> random_multigraph(std::size_t num_nodes,
                                         std::size_t num_edges, Rng& rng) {
  std::vector<MultiEdge> edges;
  for (std::size_t i = 0; i < num_edges; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(num_nodes));
    NodeId v = static_cast<NodeId>(rng.next_below(num_nodes - 1));
    if (v >= u) ++v;  // no self-loops; parallel edges are fine and intended
    edges.push_back({u, v});
  }
  return edges;
}

TEST(EdgeColoringInvariants, RandomizedColoringsProperWithinPalette) {
  Rng rng(kSweepSeed);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = 4 + rng.next_below(24);
    const std::size_t m = 1 + rng.next_below(4 * n);
    const std::vector<MultiEdge> edges = random_multigraph(n, m, rng);
    const std::size_t delta = multigraph_max_degree(n, edges);

    const EdgeColoring c = color_multigraph(n, edges, rng);
    EXPECT_TRUE(is_proper_edge_coloring(n, edges, c.colors)) << "trial " << trial;
    EXPECT_EQ(c.colors.size(), edges.size());
    // Palette is ceil(2Δ) but never below Δ + 1 — the O(Δ) bound of
    // Lemma 17 with the constant pinned.
    EXPECT_LE(c.num_colors, std::max<std::size_t>(2 * delta, delta + 1));
    EXPECT_LE(c.max_color_used, c.num_colors);
    for (std::uint32_t color : c.colors) EXPECT_LT(color, c.num_colors);
  }
}

TEST(EdgeColoringInvariants, GreedyUsesAtMostTwoDeltaMinusOne) {
  Rng rng(kSweepSeed ^ 1);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = 4 + rng.next_below(24);
    const std::size_t m = 1 + rng.next_below(4 * n);
    const std::vector<MultiEdge> edges = random_multigraph(n, m, rng);
    const std::size_t delta = multigraph_max_degree(n, edges);

    const EdgeColoring c = color_multigraph_greedy(n, edges);
    EXPECT_TRUE(is_proper_edge_coloring(n, edges, c.colors)) << "trial " << trial;
    EXPECT_LE(c.max_color_used, 2 * delta - 1) << "trial " << trial;
    EXPECT_EQ(c.rounds, 0u);  // centralized reference: no rounds charged
  }
}

Graph invariant_family_graph(int family, Rng& rng) {
  switch (family % 4) {
    case 0: return make_grid(4 + rng.next_below(3), 4 + rng.next_below(3));
    case 1: return make_random_tree(16 + rng.next_below(16), rng);
    case 2: return make_random_regular(16 + 2 * rng.next_below(6), 4, rng);
    default: return make_k_tree(18 + rng.next_below(8), 3, rng);
  }
}

TEST(EulerPathInvariants, SegmentsWalkEveryTreeEdgeExactlyTwice) {
  Rng rng(kSweepSeed ^ 2);
  for (int trial = 0; trial < 16; ++trial) {
    const Graph g = invariant_family_graph(trial, rng);
    const PartCollection pc =
        stacked_voronoi_instance(g, 2 + rng.next_below(3), 1, rng);
    for (const std::vector<NodeId>& part : pc.parts) {
      if (part.size() < 2) continue;
      const EulerPathDecomposition epd = euler_path_decomposition(g, part);
      EXPECT_TRUE(is_valid_euler_decomposition(g, part, epd));

      // The tour steps through each spanning-tree edge exactly twice (once
      // per direction), so the traversed undirected pair multiset is a
      // spanning tree of G[part] with multiplicity 2 — |part| − 1 distinct
      // pairs, 2(|part| − 1) steps in total.
      std::map<std::pair<NodeId, NodeId>, int> walked;
      std::size_t steps = 0;
      for (const std::vector<NodeId>& seg : epd.segments) {
        // Segments are simple paths: no node repeats within one segment.
        std::set<NodeId> seen(seg.begin(), seg.end());
        EXPECT_EQ(seen.size(), seg.size());
        for (std::size_t i = 1; i < seg.size(); ++i) {
          ++walked[{std::min(seg[i - 1], seg[i]), std::max(seg[i - 1], seg[i])}];
          ++steps;
        }
      }
      EXPECT_EQ(walked.size(), part.size() - 1);
      EXPECT_EQ(steps, 2 * (part.size() - 1));
      for (const auto& [pair, count] : walked) {
        EXPECT_EQ(count, 2) << pair.first << "-" << pair.second;
      }

      // Every part node owns exactly one first occurrence, and it points at
      // that node's position in its segment.
      EXPECT_EQ(epd.part_nodes.size(), part.size());
      std::set<NodeId> covered;
      for (std::size_t i = 0; i < epd.part_nodes.size(); ++i) {
        const auto [seg, off] = epd.first_occurrence[i];
        ASSERT_LT(seg, epd.segments.size());
        ASSERT_LT(off, epd.segments[seg].size());
        EXPECT_EQ(epd.segments[seg][off], epd.part_nodes[i]);
        covered.insert(epd.part_nodes[i]);
      }
      EXPECT_EQ(covered, std::set<NodeId>(part.begin(), part.end()));
    }
  }
}

TEST(LayeredGraphInvariants, NodeAndEdgeCountsMatchTheLemmas) {
  Rng rng(kSweepSeed ^ 3);
  for (int trial = 0; trial < 16; ++trial) {
    const Graph base = invariant_family_graph(trial, rng);
    const std::size_t rho = 1 + rng.next_below(5);
    const LayeredGraph layered(base, rho);
    const std::size_t n = base.num_nodes();
    const std::size_t m = base.num_edges();

    EXPECT_EQ(layered.graph().num_nodes(), rho * n);
    EXPECT_EQ(layered.graph().num_edges(), rho * m + n * rho * (rho - 1) / 2);

    // lift/project are inverse on every (node, layer) pair.
    for (std::size_t layer = 0; layer < rho; ++layer) {
      for (NodeId v = 0; v < n; ++v) {
        const NodeId lifted = layered.lift(v, layer);
        EXPECT_EQ(layered.project(lifted), v);
        EXPECT_EQ(layered.layer_of(lifted), layer);
      }
    }

    // Lifted edges project back onto their base edge within one layer;
    // clique edges join two copies of one base node.
    for (std::size_t layer = 0; layer < rho; ++layer) {
      for (EdgeId e = 0; e < m; ++e) {
        const Edge& lifted = layered.graph().edge(layered.lift_edge(e, layer));
        const Edge& orig = base.edge(e);
        EXPECT_EQ(layered.layer_of(lifted.u), layer);
        EXPECT_EQ(layered.layer_of(lifted.v), layer);
        const NodeId pu = layered.project(lifted.u);
        const NodeId pv = layered.project(lifted.v);
        EXPECT_TRUE((pu == orig.u && pv == orig.v) ||
                    (pu == orig.v && pv == orig.u));
      }
    }
    if (rho >= 2) {
      const NodeId v = static_cast<NodeId>(rng.next_below(n));
      const Edge& clique = layered.graph().edge(layered.clique_edge(v, 0, 1));
      EXPECT_EQ(layered.project(clique.u), v);
      EXPECT_EQ(layered.project(clique.v), v);
      EXPECT_NE(layered.layer_of(clique.u), layered.layer_of(clique.v));
    }
  }
}

}  // namespace
}  // namespace dls
