// Hierarchical span tracing over the round-accounting plane.
//
// The RoundLedger answers "how many rounds did this solve cost?"; the tracer
// answers "where did they go?". A Tracer records a preorder forest of spans —
// one per solver level, PA call, scheduler phase, outer PCG iteration, ... —
// and each span snapshots the *round cursor* (total local rounds, global
// rounds, messages) of the ledger it runs against at open and at close, so the
// interval [begin, end] is the exact share of the trace's round budget that
// phase consumed. Rounds, not wall clock, are the time axis: traces are as
// deterministic as the ledgers they ride on and can be pinned as goldens.
//
// Activation is ambient and off by default. Instrumentation sites read the
// thread-local `Tracer::ambient()` pointer; when no TraceScope installed a
// tracer (the default), every ScopedSpan is a no-op and the instrumented code
// paths behave bit-identically to untraced builds — no label, charge, or rng
// draw depends on whether a tracer is watching.
//
// Thread-count invariance follows the SimBatch discipline: an ambient tracer
// is never inherited by ThreadPool workers. Fan-out sites (SimBatch::run,
// SolveSession::solve_batch) give each slot a private Tracer and merge the
// finished slot traces back into the parent in slot-index order via
// `absorb()`, so the merged span stream is bit-identical for any thread count.
//
// Layering: this header depends only on util/. Ledger cursors are read
// through the opaque TraceClock adapter (obs/ledger_clock.hpp binds it to
// RoundLedger), so dls_obs sits *below* dls_sim and everything above can link
// it without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dls {

/// A monotone snapshot of one ledger's accumulated totals. All fields only
/// ever grow while a trace is open, which is what makes span intervals
/// meaningful.
struct TraceCursor {
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t messages = 0;

  friend bool operator==(const TraceCursor&, const TraceCursor&) = default;
};

/// Type-erased handle to a round counter (in practice: a RoundLedger). The
/// indirection keeps dls_obs independent of dls_sim; see obs/ledger_clock.hpp
/// for the binding. A default-constructed clock reads all-zero cursors, so a
/// Tracer is usable before any ledger exists.
class TraceClock {
 public:
  using ReadFn = TraceCursor (*)(const void*);

  TraceClock() = default;
  TraceClock(const void* source, ReadFn read) : source_(source), read_(read) {}

  TraceCursor read() const { return read_ ? read_(source_) : TraceCursor{}; }
  const void* source() const { return source_; }
  bool valid() const { return read_ != nullptr; }

 private:
  const void* source_ = nullptr;
  ReadFn read_ = nullptr;
};

/// Coarse phase taxonomy. The kind is part of the fingerprint, so exporters
/// and tests can roll spans up by what they *are* rather than parsing names.
enum class SpanKind : std::uint8_t {
  kScenario,   // one simulated scenario / golden case
  kSolve,      // a full Laplacian solve
  kLevel,      // one level of the solver hierarchy
  kIteration,  // one outer PCG / Chebyshev iteration
  kPaCall,     // one part-wise aggregation oracle call
  kPhase,      // a message-plane or construction phase
  kSession,    // batched multi-RHS session scope
  kRecovery,   // resilience-ladder activity
  kOther,
};

const char* to_string(SpanKind kind);

inline constexpr std::uint32_t kNoSpan = 0xffffffffu;

/// One closed (or still-open) span. Spans are stored in open (preorder)
/// order; `parent` indexes into the same vector, `kNoSpan` for roots.
struct SpanRecord {
  std::string name;
  SpanKind kind = SpanKind::kOther;
  std::uint32_t parent = kNoSpan;
  std::uint32_t depth = 0;
  std::uint32_t clock = 0;  // clock id the cursors were read from
  TraceCursor begin;
  TraceCursor end;
  bool closed = false;
  /// Deterministic per-span annotations, in insertion order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::string> notes;
};

/// Caps keep pathological recursion depths from turning a trace into the
/// dominant allocation of a run. Drops are counted, never silent: the
/// fingerprint reports `dropped`, so a capped trace is visibly capped.
struct TracerOptions {
  std::size_t max_spans = std::size_t{1} << 20;
  std::uint32_t max_depth = 64;
};

class Tracer {
 public:
  explicit Tracer(TraceClock root_clock = {}, TracerOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under the innermost open span, snapshotting the current
  /// clock. Returns kNoSpan (and counts a drop) past max_spans/max_depth.
  std::uint32_t open(std::string name, SpanKind kind);
  /// Closes the innermost open span, which must be `id` (spans strictly
  /// nest; ScopedSpan enforces this by construction).
  void close(std::uint32_t id);

  /// Attach a named integer to an open span. No-ops on kNoSpan.
  void counter(std::uint32_t id, const char* key, std::uint64_t value);
  /// Attach a free-form note to an open span. No-ops on kNoSpan.
  void note(std::uint32_t id, std::string text);
  /// Annotate the innermost open span; falls back to the tracer-level note
  /// list when no span is open (nothing is ever silently lost).
  void annotate_current(std::string text);

  std::uint32_t current() const {
    return stack_.empty() ? kNoSpan : stack_.back();
  }
  std::uint32_t open_depth() const {
    return static_cast<std::uint32_t>(stack_.size());
  }

  /// Makes `clock` the source for spans opened until the matching pop. If
  /// the top clock already reads the same source the existing id is reused,
  /// so re-entering the same ledger deeper in the call tree does not fork a
  /// new timeline.
  std::uint32_t push_clock(TraceClock clock);
  void pop_clock();
  std::uint32_t current_clock() const { return clock_id_stack_.back(); }
  std::size_t num_clocks() const { return clock_registry_.size(); }
  /// Source pointer of a clock id (null for the default zero clock and for
  /// absorbed clocks, whose sources may no longer be alive).
  const void* clock_source(std::uint32_t id) const;

  /// Appends a finished child trace under the current open span: child roots
  /// are re-parented, depths shifted, clock ids offset into this tracer's
  /// registry, and drops accumulated. Spans arrive in the child's preorder,
  /// so absorbing slot tracers in slot-index order yields a thread-count-
  /// invariant stream. The child must have no open spans.
  void absorb(const Tracer& child);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::uint64_t dropped_spans() const { return dropped_; }
  const std::vector<std::string>& orphan_notes() const { return orphan_notes_; }

  /// The thread-local ambient tracer (null by default). Instrumentation
  /// sites read this; TraceScope installs it.
  static Tracer* ambient();

 private:
  friend class TraceScope;
  static Tracer*& ambient_slot();

  TracerOptions options_;
  std::vector<SpanRecord> spans_;
  std::vector<std::uint32_t> stack_;           // open span ids
  std::vector<TraceClock> clock_registry_;     // id -> clock
  std::vector<std::uint32_t> clock_id_stack_;  // active clock scope
  std::uint64_t dropped_ = 0;
  std::vector<std::string> orphan_notes_;
};

/// RAII span. Null tracer (the common untraced case) makes every method a
/// no-op, so instrumentation sites need no branching of their own.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, SpanKind kind)
      : tracer_(tracer),
        id_(tracer ? tracer->open(name, kind) : kNoSpan) {}
  ScopedSpan(Tracer* tracer, std::string name, SpanKind kind)
      : tracer_(tracer),
        id_(tracer ? tracer->open(std::move(name), kind) : kNoSpan) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = kNoSpan;
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr && id_ != kNoSpan) tracer_->close(id_);
  }

  void counter(const char* key, std::uint64_t value) {
    if (tracer_ != nullptr) tracer_->counter(id_, key, value);
  }
  void note(std::string text) {
    if (tracer_ != nullptr) tracer_->note(id_, std::move(text));
  }
  /// Closes the span before the scope ends (for back-to-back phases sharing
  /// one scope). Later counter/note calls and the destructor no-op.
  void finish() {
    if (tracer_ != nullptr && id_ != kNoSpan) tracer_->close(id_);
    tracer_ = nullptr;
    id_ = kNoSpan;
  }
  bool active() const { return tracer_ != nullptr && id_ != kNoSpan; }

 private:
  Tracer* tracer_;
  std::uint32_t id_;
};

/// Installs `tracer` as this thread's ambient tracer for the scope (pass
/// nullptr to *suppress* ambient tracing, e.g. around pool-parallel regions
/// whose interleaving must not leak into the span stream).
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer)
      : previous_(Tracer::ambient_slot()) {
    Tracer::ambient_slot() = tracer;
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { Tracer::ambient_slot() = previous_; }

 private:
  Tracer* previous_;
};

/// RAII clock scope; null tracer no-ops (pairs with the ambient pattern).
class ClockScope {
 public:
  ClockScope(Tracer* tracer, TraceClock clock) : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->push_clock(clock);
  }
  ClockScope(const ClockScope&) = delete;
  ClockScope& operator=(const ClockScope&) = delete;
  ~ClockScope() {
    if (tracer_ != nullptr) tracer_->pop_clock();
  }

 private:
  Tracer* tracer_;
};

}  // namespace dls
