// Trace exporters.
//
// 1. `chrome_trace_json` — Chrome trace-event JSON, loadable in Perfetto /
//    chrome://tracing. Rounds are the clock: an event's `ts` is the span's
//    hybrid round cursor (local + global rounds) in "microseconds", so the
//    timeline reads as round budget, not wall time. Each clock id becomes a
//    tid, so independent ledgers render as separate tracks.
//
// 2. `trace_fingerprint` — a compact deterministic text rendering: header
//    (span/drop/clock totals), name-sorted per-(name, kind) rollups, and an
//    FNV-1a hash over the full span stream. Two traces with equal
//    fingerprints walked the same spans with the same cursors in the same
//    order; this is the representation the golden tests pin and the
//    determinism tests compare across thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"

namespace dls {

/// Chrome trace-event JSON ("traceEvents" array of balanced B/E pairs plus
/// thread-name metadata). Spans still open when the trace is exported are
/// skipped (they have no end cursor).
std::string chrome_trace_json(const Tracer& tracer);

/// FNV-1a 64-bit hash over the deterministic span stream (names, kinds,
/// topology, cursors, counters, notes, drops). The scalar the golden table
/// pins.
std::uint64_t trace_hash(const Tracer& tracer);

/// Multi-line deterministic text fingerprint (see file comment).
std::string trace_fingerprint(const Tracer& tracer);

}  // namespace dls
