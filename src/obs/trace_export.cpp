#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace dls {
namespace {

std::uint64_t hybrid_ts(const TraceCursor& cursor) {
  return cursor.local_rounds + cursor.global_rounds;
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event(std::string& out, char phase, const SpanRecord& span,
                  std::uint64_t ts, bool with_args) {
  out += "    {\"name\": \"";
  append_json_escaped(out, span.name);
  out += "\", \"ph\": \"";
  out += phase;
  out += "\", \"pid\": 0, \"tid\": ";
  out += std::to_string(span.clock);
  out += ", \"ts\": ";
  out += std::to_string(ts);
  if (with_args) {
    out += ", \"cat\": \"";
    out += to_string(span.kind);
    out += "\", \"args\": {";
    bool first = true;
    for (const auto& [key, value] : span.counters) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      append_json_escaped(out, key);
      out += "\": ";
      out += std::to_string(value);
    }
    if (!span.notes.empty()) {
      if (!first) out += ", ";
      out += "\"notes\": [";
      for (std::size_t i = 0; i < span.notes.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"";
        append_json_escaped(out, span.notes[i]);
        out += "\"";
      }
      out += "]";
    }
    out += "}";
  }
  out += "},\n";
}

// FNV-1a, 64-bit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& state, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t& state, std::uint64_t value) {
  mix_bytes(state, &value, sizeof(value));
}

void mix_string(std::uint64_t& state, const std::string& text) {
  mix_bytes(state, text.data(), text.size());
  state ^= 0xff;  // terminator so "ab"+"c" != "a"+"bc"
  state *= kFnvPrime;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
      "\"args\": {\"name\": \"dls (ts = local + global rounds)\"}},\n";
  for (std::size_t clock = 0; clock < tracer.num_clocks(); ++clock) {
    out += "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": ";
    out += std::to_string(clock);
    out += ", \"args\": {\"name\": \"clock-";
    out += std::to_string(clock);
    out += "\"}},\n";
  }
  // Spans are stored in preorder; replay them against an explicit stack so
  // B/E events interleave the way a real-time tracer would have emitted
  // them (parent B, child B, child E, parent E).
  const auto& spans = tracer.spans();
  std::vector<std::uint32_t> open;
  for (std::uint32_t id = 0; id < spans.size(); ++id) {
    const SpanRecord& span = spans[id];
    if (!span.closed) continue;
    while (!open.empty() && open.back() != span.parent) {
      const SpanRecord& done = spans[open.back()];
      append_event(out, 'E', done, hybrid_ts(done.end), false);
      open.pop_back();
    }
    append_event(out, 'B', span, hybrid_ts(span.begin), true);
    open.push_back(id);
  }
  while (!open.empty()) {
    const SpanRecord& done = spans[open.back()];
    append_event(out, 'E', done, hybrid_ts(done.end), false);
    open.pop_back();
  }
  // Strip the trailing ",\n" left by the last event.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "  ]\n}\n";
  return out;
}

std::uint64_t trace_hash(const Tracer& tracer) {
  std::uint64_t state = kFnvOffset;
  for (const SpanRecord& span : tracer.spans()) {
    mix_string(state, span.name);
    mix_u64(state, static_cast<std::uint64_t>(span.kind));
    mix_u64(state, span.parent);
    mix_u64(state, span.depth);
    mix_u64(state, span.clock);
    mix_u64(state, span.begin.local_rounds);
    mix_u64(state, span.begin.global_rounds);
    mix_u64(state, span.begin.messages);
    mix_u64(state, span.end.local_rounds);
    mix_u64(state, span.end.global_rounds);
    mix_u64(state, span.end.messages);
    mix_u64(state, span.closed ? 1 : 0);
    for (const auto& [key, value] : span.counters) {
      mix_string(state, key);
      mix_u64(state, value);
    }
    for (const std::string& text : span.notes) mix_string(state, text);
  }
  mix_u64(state, tracer.dropped_spans());
  for (const std::string& text : tracer.orphan_notes()) {
    mix_string(state, text);
  }
  return state;
}

std::string trace_fingerprint(const Tracer& tracer) {
  struct Rollup {
    std::uint64_t count = 0;
    std::uint64_t local = 0;
    std::uint64_t global = 0;
    std::uint64_t messages = 0;
  };
  std::map<std::pair<std::string, std::string>, Rollup> rollups;
  for (const SpanRecord& span : tracer.spans()) {
    if (!span.closed) continue;
    Rollup& r = rollups[{span.name, to_string(span.kind)}];
    ++r.count;
    r.local += span.end.local_rounds - span.begin.local_rounds;
    r.global += span.end.global_rounds - span.begin.global_rounds;
    r.messages += span.end.messages - span.begin.messages;
  }
  std::ostringstream out;
  out << "trace-fingerprint v1\n";
  out << "spans=" << tracer.spans().size()
      << " dropped=" << tracer.dropped_spans()
      << " clocks=" << tracer.num_clocks()
      << " orphan-notes=" << tracer.orphan_notes().size() << "\n";
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(trace_hash(tracer)));
  out << "hash=" << hash << "\n";
  for (const auto& [key, r] : rollups) {
    out << key.first << " kind=" << key.second << " count=" << r.count
        << " dlocal=" << r.local << " dglobal=" << r.global
        << " dmsg=" << r.messages << "\n";
  }
  return out.str();
}

}  // namespace dls
