#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace dls {

MetricHistogram::MetricHistogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  DLS_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()), "histogram bounds must be sorted");
  DLS_ASSERT(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                 bounds_.end(),
             "histogram bounds must be distinct");
}

void MetricHistogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t MetricHistogram::cumulative(std::size_t bucket) const {
  DLS_ASSERT(bucket < buckets_.size(), "histogram bucket out of range");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bucket; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t MetricHistogram::total_count() const {
  return cumulative(buckets_.size() - 1);
}

void MetricHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricCounter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricHistogram>(std::move(bounds));
  }
  return *slot;
}

std::vector<std::uint64_t> MetricsRegistry::pow2_bounds(std::size_t n) {
  std::vector<std::uint64_t> bounds(n);
  for (std::size_t i = 0; i < n; ++i) bounds[i] = std::uint64_t{1} << i;
  return bounds;
}

std::string MetricsRegistry::export_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const auto& bounds = hist->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << name << "{le=" << bounds[i] << "} " << hist->cumulative(i) << "\n";
    }
    out << name << "{le=+inf} " << hist->total_count() << "\n";
    out << name << "_sum " << hist->total_sum() << "\n";
    out << name << "_count " << hist->total_count() << "\n";
  }
  return out.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace dls
