// Process-wide metrics registry: monotonic counters and fixed-bucket
// histograms for events that are interesting in aggregate rather than per
// span — PA retransmissions, watchdog restarts, messages per phase.
//
// Determinism contract: increments are atomic and commutative, so *totals*
// are bit-identical for any thread count even when the increments race (the
// scheduler runs on pool workers). Only totals are exported; no ordering or
// timing leaks into `export_text()`, which prints name-sorted lines.
//
// Instruments are registered on first use and never removed; the registry
// returns stable references, so hot paths pay one lookup and then a relaxed
// atomic add. Tests that need a clean slate call `reset()` (zeroes values,
// keeps registrations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dls {

/// Monotonic counter. Addresses are stable for the registry's lifetime.
class MetricCounter {
 public:
  void increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over fixed, registration-time bucket bounds. An observation of
/// `v` lands in the first bucket with `v <= bound`; values above the last
/// bound land in the implicit overflow bucket.
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);
  /// Cumulative count of observations <= bounds[i]; index bounds.size() is
  /// the total count (the +inf bucket).
  std::uint64_t cumulative(std::size_t bucket) const;
  std::uint64_t total_count() const;
  std::uint64_t total_sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;  // strictly increasing
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds.size() + 1
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry used by instrumentation sites.
  static MetricsRegistry& global();

  /// Returns the counter registered under `name`, creating it on first use.
  MetricCounter& counter(const std::string& name);
  /// Returns the histogram under `name`; `bounds` only applies on first use
  /// (later calls with different bounds get the originally registered
  /// instrument).
  MetricHistogram& histogram(const std::string& name,
                             std::vector<std::uint64_t> bounds);

  /// Power-of-two bounds 1, 2, 4, ... up to 2^(n-1) — the default shape for
  /// message/congestion distributions.
  static std::vector<std::uint64_t> pow2_bounds(std::size_t n);

  /// Deterministic dump: one `name value` line per counter and one
  /// `name{le=B} cumulative` line per histogram bucket (plus `_sum` and
  /// `_count`), all sorted by name.
  std::string export_text() const;

  /// Zeroes all values, keeping registrations (test isolation).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

}  // namespace dls
