// Binds TraceClock to RoundLedger. Header-only and include-only-from-above:
// dls_obs itself must not depend on dls_sim, so this adapter lives with the
// obs headers but is compiled into whichever higher layer includes it.
#pragma once

#include "obs/trace.hpp"
#include "sim/round_ledger.hpp"

namespace dls {

inline TraceCursor read_ledger_cursor(const void* source) {
  const auto* ledger = static_cast<const RoundLedger*>(source);
  TraceCursor cursor;
  cursor.local_rounds = ledger->total_local();
  cursor.global_rounds = ledger->total_global();
  cursor.messages = ledger->total_messages();
  return cursor;
}

/// A clock whose cursors are `ledger`'s running totals. The ledger must
/// outlive every span opened against the clock.
inline TraceClock ledger_clock(const RoundLedger& ledger) {
  return TraceClock(&ledger, &read_ledger_cursor);
}

}  // namespace dls
