#include "obs/trace.hpp"

#include "util/assert.hpp"

namespace dls {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kScenario:
      return "scenario";
    case SpanKind::kSolve:
      return "solve";
    case SpanKind::kLevel:
      return "level";
    case SpanKind::kIteration:
      return "iteration";
    case SpanKind::kPaCall:
      return "pa-call";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kSession:
      return "session";
    case SpanKind::kRecovery:
      return "recovery";
    case SpanKind::kOther:
      return "other";
  }
  return "other";
}

Tracer::Tracer(TraceClock root_clock, TracerOptions options)
    : options_(options) {
  clock_registry_.push_back(root_clock);
  clock_id_stack_.push_back(0);
}

std::uint32_t Tracer::open(std::string name, SpanKind kind) {
  if (spans_.size() >= options_.max_spans ||
      stack_.size() >= options_.max_depth) {
    ++dropped_;
    return kNoSpan;
  }
  SpanRecord record;
  record.name = std::move(name);
  record.kind = kind;
  record.parent = current();
  record.depth = static_cast<std::uint32_t>(stack_.size());
  record.clock = clock_id_stack_.back();
  record.begin = clock_registry_[record.clock].read();
  const auto id = static_cast<std::uint32_t>(spans_.size());
  spans_.push_back(std::move(record));
  stack_.push_back(id);
  return id;
}

void Tracer::close(std::uint32_t id) {
  DLS_ASSERT(!stack_.empty(), "close with no open span");
  DLS_ASSERT(stack_.back() == id, "spans must close in LIFO order");
  stack_.pop_back();
  SpanRecord& record = spans_[id];
  record.end = clock_registry_[record.clock].read();
  record.closed = true;
}

void Tracer::counter(std::uint32_t id, const char* key, std::uint64_t value) {
  if (id == kNoSpan) return;
  spans_[id].counters.emplace_back(key, value);
}

void Tracer::note(std::uint32_t id, std::string text) {
  if (id == kNoSpan) return;
  spans_[id].notes.push_back(std::move(text));
}

void Tracer::annotate_current(std::string text) {
  if (stack_.empty()) {
    orphan_notes_.push_back(std::move(text));
    return;
  }
  spans_[stack_.back()].notes.push_back(std::move(text));
}

std::uint32_t Tracer::push_clock(TraceClock clock) {
  const std::uint32_t top = clock_id_stack_.back();
  if (clock_registry_[top].source() == clock.source() &&
      clock_registry_[top].valid() == clock.valid()) {
    clock_id_stack_.push_back(top);  // same timeline; no new id
    return top;
  }
  const auto id = static_cast<std::uint32_t>(clock_registry_.size());
  clock_registry_.push_back(clock);
  clock_id_stack_.push_back(id);
  return id;
}

void Tracer::pop_clock() {
  DLS_ASSERT(clock_id_stack_.size() > 1, "pop_clock past the root clock");
  clock_id_stack_.pop_back();
}

const void* Tracer::clock_source(std::uint32_t id) const {
  return clock_registry_[id].source();
}

void Tracer::absorb(const Tracer& child) {
  DLS_ASSERT(child.stack_.empty(), "absorb of a tracer with open spans");
  if (spans_.size() + child.spans_.size() > options_.max_spans) {
    // Dropping a prefix of the child would leave dangling parent ids, so an
    // over-budget child is dropped whole (and counted).
    dropped_ += child.spans_.size() + child.dropped_;
    return;
  }
  const auto base = static_cast<std::uint32_t>(spans_.size());
  const auto clock_base = static_cast<std::uint32_t>(clock_registry_.size());
  const std::uint32_t parent = current();
  const auto parent_depth = static_cast<std::uint32_t>(stack_.size());
  for (const SpanRecord& span : child.spans_) {
    SpanRecord record = span;
    record.parent = span.parent == kNoSpan ? parent : base + span.parent;
    record.depth = span.depth + parent_depth;
    record.clock = span.clock + clock_base;
    spans_.push_back(std::move(record));
  }
  // Absorbed clocks keep their source pointer (so clock_source grouping
  // still works) but lose their read function: the child's ledgers may not
  // outlive the merge, so nothing may read through them again.
  for (const TraceClock& clock : child.clock_registry_) {
    clock_registry_.emplace_back(clock.source(), nullptr);
  }
  dropped_ += child.dropped_;
  for (const std::string& text : child.orphan_notes_) {
    orphan_notes_.push_back(text);
  }
}

Tracer*& Tracer::ambient_slot() {
  thread_local Tracer* slot = nullptr;
  return slot;
}

Tracer* Tracer::ambient() { return ambient_slot(); }

}  // namespace dls
