// Global minimum cut — with MST and SSSP one of the three problems the
// low-congestion-shortcut ecosystem was built for ([20]: "MST and Min-Cut
// on planar graphs can be solved in Õ(D) rounds").
//
// * Exact sequential reference: Stoer–Wagner.
// * Distributed approximation: Karger-style random-tree sampling expressed
//   in PA-oracle calls. Each trial draws an MST under exponential random
//   edge reweighting (a random spanning tree surrogate), evaluates every
//   one-tree-edge cut exactly via subtree sums, and keeps the best cut
//   seen. Karger's analysis gives a cut within factor ~2-3 whp after
//   O(log n) trials on most instances; the full Ghaffari–Haeupler exact
//   tree-packing machinery is substituted per DESIGN.md §2. Communication:
//   one distributed-MST run (O(log n) PA calls) plus two PA sweeps per
//   trial for the subtree-sum evaluation.
#pragma once

#include "laplacian/pa_oracle.hpp"

namespace dls {

/// Exact global min cut value (Stoer–Wagner, O(n·m + n² log n)-ish).
double min_cut_stoer_wagner(const Graph& g);

struct ApproxMinCutResult {
  double cut_value = 0.0;         // best cut found (an upper bound)
  std::vector<char> side;         // per node: which side of the best cut
  double exact_value = 0.0;       // Stoer–Wagner reference
  double ratio = 0.0;             // cut_value / exact_value (≥ 1)
  int trials = 0;
  std::uint64_t pa_calls = 0;
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
};

/// Random-tree approximate min cut through the PA oracle. The graph must be
/// connected and is taken from the oracle.
ApproxMinCutResult approx_min_cut(CongestedPaOracle& oracle, Rng& rng,
                                  int trials = 8);

/// Weight of the cut induced by `side` (0/1 per node).
double cut_weight(const Graph& g, const std::vector<char>& side);

}  // namespace dls
