// The congested part-wise aggregation oracle of Assumption 27.
//
// The Laplacian solver expresses all of its communication as (i) single
// local-exchange rounds and (ii) calls to this oracle. Three implementations
// instantiate the paper's three models:
//   * ShortcutPaOracle  — Corollary 23 pipeline (layered graph + shortcuts);
//     Supported-CONGEST / CONGEST local rounds.
//   * NccPaOracle       — Lemma 26 pipeline; NCC global rounds (the HYBRID
//     solver of Theorem 3 is the solver run against this oracle).
//   * BaselinePaOracle  — the existential [18]-style substitute: parts are
//     processed in greedily-chosen disjoint batches, each batch aggregated
//     with the global-BFS-tree shortcut, paying Θ(D + batch size) per batch
//     — the √n-type behaviour the paper improves on.
//
// Because PA round cost is value-oblivious (the schedule depends only on the
// part structure), an instance can be *prepared* once: the first aggregate()
// call simulates messages and caches the measured cost; later calls on the
// same prepared instance fold sequentially and charge the cached cost. This
// keeps repeated solver iterations cheap without changing any reported number.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "congested_pa/solver.hpp"
#include "shortcuts/partition.hpp"
#include "sim/round_ledger.hpp"

namespace dls {

class CongestedPaOracle {
 public:
  using InstanceId = std::size_t;

  explicit CongestedPaOracle(const Graph& g) : graph_(g) {}
  virtual ~CongestedPaOracle() = default;
  CongestedPaOracle(const CongestedPaOracle&) = delete;
  CongestedPaOracle& operator=(const CongestedPaOracle&) = delete;

  /// Registers a part collection for repeated use.
  InstanceId prepare(const PartCollection& pc);

  /// Aggregates `values` over the prepared instance; every part member is
  /// considered to learn its part's aggregate. Charges the ledger.
  std::vector<double> aggregate(InstanceId instance,
                                const std::vector<std::vector<double>>& values,
                                const AggregationMonoid& monoid);

  /// One-shot convenience (prepare + aggregate).
  std::vector<double> aggregate_once(
      const PartCollection& pc, const std::vector<std::vector<double>>& values,
      const AggregationMonoid& monoid);

  /// Measures `instance` now if it has not been measured yet (running the
  /// model-specific simulation exactly as the first aggregate() would) and
  /// caches the cost. Charges nothing and counts no PA call — warming only
  /// moves *when* the one-time measurement happens, never what it costs.
  /// NOT thread-safe; call before fanning a batch out.
  void warm(InstanceId instance);
  bool is_measured(InstanceId instance) const;

  /// Replays a measured instance into a caller-owned ledger: folds `values`
  /// and charges `ledger` with exactly the entries aggregate() would have
  /// charged the shared ledger, incrementing `pa_calls`. Touches no shared
  /// mutable state, so concurrent calls on distinct ledgers are safe — this
  /// is the per-RHS charging path of batched solves (docs/BATCHING.md).
  std::vector<double> aggregate_into(
      InstanceId instance, const std::vector<std::vector<double>>& values,
      const AggregationMonoid& monoid, RoundLedger& ledger,
      std::uint64_t& pa_calls) const;

  /// Charge-only fast path: identical span, counters, measure-on-first-use
  /// and ledger charges to aggregate(), but no per-part values and no fold.
  /// For call sites that use the PA phase purely as round accounting (the
  /// solver's matvec/dot/residual charges discard the aggregates — the fold
  /// is the only allocating part, and it is dead work there).
  void charge_aggregate(InstanceId instance);

  /// Charge-only twin of aggregate_into (requires a measured instance);
  /// charges `ledger` exactly what aggregate_into would, fold elided.
  void charge_aggregate_into(InstanceId instance, RoundLedger& ledger,
                             std::uint64_t& pa_calls) const;

  /// Pipelined batch cost model: `n` concurrent aggregations over the same
  /// measured instance share one congested phase. A schedule of R rounds
  /// whose worst (edge,direction) slot carries c messages admits round-robin
  /// pipelining of n copies in R + (n-1)·max(1, c) rounds — the batch is one
  /// congested phase, not n naive replays. NCC schedules pipeline one global
  /// round per extra copy.
  std::uint64_t batched_local_rounds(InstanceId instance, std::size_t n) const;
  std::uint64_t batched_global_rounds(InstanceId instance, std::size_t n) const;

  /// Charges `ledger` one batched PA phase over `n` concurrent copies of the
  /// measured instance (label name() + "-pa-batched", congestion attached).
  void charge_batched(InstanceId instance, std::size_t n,
                      RoundLedger& ledger) const;

  /// Folds externally accounted PA phases (e.g. a batch fold that charged
  /// this oracle's ledger through absorb()) into the pa_calls() counter.
  void note_batched_pa_calls(std::uint64_t n) { pa_calls_ += n; }

  /// Warm-charging mode (docs/CACHING.md): with it on, every per-call charge
  /// of a measured instance pays only its *use* cost — the measured local
  /// rounds minus the shortcut-construction rounds embedded in them — because
  /// a long-lived cache entry has already built (and paid for once) the
  /// shortcuts it aggregates over. A no-op for models whose construction is
  /// free (Supported-CONGEST) or absent (NCC, baseline): their embedded
  /// construction cost is zero. Off by default, so golden traces and every
  /// historical number are unchanged. Never feeds numerics — results are
  /// bit-identical either way; only the charged rounds differ.
  void set_warm_charging(bool warm) { warm_charging_ = warm; }
  bool warm_charging() const { return warm_charging_; }

  /// CONGEST-model shortcut-construction rounds embedded in the measured
  /// local cost of `instance` (the "construct-*" phases of its measure()
  /// run); zero under Supported-CONGEST / NCC. Requires a measured instance.
  std::uint64_t construction_rounds(InstanceId instance) const;
  /// Full measured per-call cost of `instance` (requires measured) —
  /// independent of warm-charging mode; what one cold aggregate() charges.
  std::uint64_t measured_local_rounds(InstanceId instance) const;
  std::uint64_t measured_global_rounds(InstanceId instance) const;

  /// Rough resident size of the oracle's reusable state (prepared part
  /// collections + measured costs), for cache memory accounting.
  std::size_t approx_state_bytes() const;

  /// Charges one local-exchange round (each node sends one O(log n)-bit word
  /// to each neighbor) — the cost of a Laplacian matvec on the base graph.
  void charge_local_exchange(const std::string& label);

  const Graph& graph() const { return graph_; }
  std::size_t num_instances() const { return instances_.size(); }
  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }
  std::uint64_t pa_calls() const { return pa_calls_; }
  virtual std::string name() const = 0;

 protected:
  struct Measured {
    std::uint64_t local_rounds = 0;
    std::uint64_t global_rounds = 0;
    /// Portion of local_rounds spent on shortcut construction ("construct-*"
    /// phases; CONGEST model only — zero elsewhere). Construction cost is
    /// structural: it does not depend on the aggregated values, so a warm
    /// cache entry pays it once at build instead of on every call.
    std::uint64_t construction_local_rounds = 0;
    /// Congestion profile observed while measuring (local oracles only; the
    /// NCC clique model has no edge slots). Attached to every ledger charge
    /// of this instance, so solver totals decompose into where traffic
    /// concentrated.
    PhaseCongestion congestion;
  };
  /// Runs the model-specific distributed simulation once per instance.
  virtual Measured measure(const PartCollection& pc) = 0;

  /// Instance currently being measured (valid only inside measure() calls
  /// reached through aggregate); lets a wrapping oracle attribute recovery
  /// events to the instance — and thus the solver level — they belong to.
  InstanceId measuring_instance() const { return measuring_instance_; }

 private:
  // The supervisor delegates to the wrapped oracles' protected measure()
  // (resilience/solve_supervisor.hpp); it is the one sanctioned cross-object
  // caller — the escalation ladder lives exactly at this boundary.
  friend class SupervisedPaOracle;

  const Graph& graph_;
  RoundLedger ledger_;
  std::uint64_t pa_calls_ = 0;
  InstanceId measuring_instance_ = 0;
  bool warm_charging_ = false;
  struct Prepared {
    PartCollection pc;
    /// Part-collection congestion ρ (max parts sharing a node), computed at
    /// prepare() time — deterministic, no rounds charged; traced PA calls
    /// report it on their span.
    std::size_t rho = 0;
    bool measured = false;
    Measured cost;
  };
  /// Ledger label shared by every per-call charge; name() is fixed for the
  /// oracle's lifetime, so build it once instead of per PA call.
  const std::string& pa_label() const {
    if (pa_label_.empty()) pa_label_ = name() + "-pa";
    return pa_label_;
  }
  mutable std::string pa_label_;
  /// Local rounds one call charges under the current charging mode.
  std::uint64_t effective_local(const Prepared& prepared) const {
    const Measured& c = prepared.cost;
    return warm_charging_ ? c.local_rounds - std::min(c.local_rounds,
                                                      c.construction_local_rounds)
                          : c.local_rounds;
  }
  std::vector<Prepared> instances_;
};

/// Corollary 23: heavy paths + layered graph + shortcuts. `model` selects
/// Supported-CONGEST (construction free; the default) or CONGEST
/// (construction rounds charged per Theorem 8's distinction).
class ShortcutPaOracle final : public CongestedPaOracle {
 public:
  ShortcutPaOracle(const Graph& g, Rng& rng,
                   SchedulingPolicy policy = SchedulingPolicy::kRandomPriority,
                   PaModel model = PaModel::kSupportedCongest)
      : CongestedPaOracle(g), rng_(rng), policy_(policy), model_(model) {
    DLS_REQUIRE(model != PaModel::kNcc,
                "ShortcutPaOracle is a local-communication oracle");
  }
  std::string name() const override {
    return model_ == PaModel::kCongest ? "shortcut-congest" : "shortcut";
  }

  /// Opt-in fault injection for subsequent measure() runs (not owned, may be
  /// null). The measurement's built-in cross-check — distributed results must
  /// equal the sequential fold — becomes the fault-correctness oracle: under
  /// eventual delivery the faulty run must still produce exact aggregates,
  /// and a wedged phase surfaces as ChaosAbortError instead of a hang.
  void set_fault_plan(FaultPlan* faults) { faults_ = faults; }

 protected:
  Measured measure(const PartCollection& pc) override;

 private:
  Rng& rng_;
  SchedulingPolicy policy_;
  PaModel model_;
  FaultPlan* faults_ = nullptr;
};

/// Lemma 26: NCC aggregation; charges global rounds.
class NccPaOracle final : public CongestedPaOracle {
 public:
  NccPaOracle(const Graph& g, Rng& rng, std::size_t capacity = 0)
      : CongestedPaOracle(g), rng_(rng), capacity_(capacity) {}
  std::string name() const override { return "ncc"; }

 protected:
  Measured measure(const PartCollection& pc) override;

 private:
  Rng& rng_;
  std::size_t capacity_;
};

/// Existential baseline: greedy disjoint batches over the global BFS tree.
class BaselinePaOracle final : public CongestedPaOracle {
 public:
  BaselinePaOracle(const Graph& g, Rng& rng,
                   SchedulingPolicy policy = SchedulingPolicy::kRandomPriority)
      : CongestedPaOracle(g), rng_(rng), policy_(policy) {}
  std::string name() const override { return "baseline"; }

 protected:
  Measured measure(const PartCollection& pc) override;

 private:
  Rng& rng_;
  SchedulingPolicy policy_;
};

}  // namespace dls
