#include "laplacian/minor.hpp"

#include <algorithm>
#include <unordered_set>

namespace dls {

Graph MinorGraph::as_graph() const {
  Graph g(num_nodes);
  g.reserve_edges(edges.size());
  // Degree-count pass so every adjacency list is sized up front — the append
  // loop then never regrows a list (Graph construction is a solver hot path:
  // every reweight/refresh rebuilds level views).
  std::vector<std::size_t> degree(num_nodes, 0);
  for (const MinorEdge& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (NodeId v = 0; v < num_nodes; ++v) g.reserve_neighbors(v, degree[v]);
  for (const MinorEdge& e : edges) g.add_edge(e.u, e.v, e.weight);
  return g;
}

std::size_t MinorGraph::host_congestion(std::size_t g_nodes) const {
  std::vector<std::size_t> load(g_nodes, 0);
  std::size_t rho = 0;
  for (const MinorEdge& e : edges) {
    std::unordered_set<NodeId> unique(e.g_path.begin(), e.g_path.end());
    for (NodeId v : unique) {
      DLS_REQUIRE(v < g_nodes, "host path node out of range");
      rho = std::max(rho, ++load[v]);
    }
  }
  return rho;
}

PartCollection MinorGraph::matvec_parts() const {
  PartCollection pc;
  pc.parts.reserve(edges.size());
  for (const MinorEdge& e : edges) {
    std::vector<NodeId> part;
    std::unordered_set<NodeId> seen;
    for (NodeId v : e.g_path) {
      if (seen.insert(v).second) part.push_back(v);
    }
    pc.parts.push_back(std::move(part));
  }
  return pc;
}

MinorGraph MinorGraph::identity(const Graph& g) {
  MinorGraph m;
  m.num_nodes = g.num_nodes();
  m.host.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) m.host[v] = v;
  m.edges.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    m.edges.push_back({e.u, e.v, e.weight, {e.u, e.v}});
  }
  return m;
}

bool MinorGraph::validate(const Graph& g) const {
  if (host.size() != num_nodes) return false;
  for (NodeId h : host) {
    if (h >= g.num_nodes()) return false;
  }
  for (const MinorEdge& e : edges) {
    if (e.u >= num_nodes || e.v >= num_nodes || e.u == e.v) return false;
    if (e.weight <= 0) return false;
    if (e.g_path.size() < 2) return false;
    if (e.g_path.front() != host[e.u] || e.g_path.back() != host[e.v]) return false;
    for (std::size_t i = 0; i + 1 < e.g_path.size(); ++i) {
      bool adjacent = false;
      for (const Adjacency& a : g.neighbors(e.g_path[i])) {
        if (a.neighbor == e.g_path[i + 1]) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) return false;
    }
  }
  return true;
}

}  // namespace dls
