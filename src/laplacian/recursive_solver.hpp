// The distributed Laplacian solver (Theorem 28 → Theorems 2 and 3).
//
// Structure mirrors [18]/KMP: at each level, the current congested minor is
// ultra-sparsified (low-stretch tree + stretch-sampled off-tree edges), its
// degree-≤2 nodes are eliminated to a much smaller Schur minor, and flexible
// PCG runs with the sparsifier chain as preconditioner; a dense grounded
// Cholesky terminates the chain. All communication is charged through the
// congested-PA oracle (Assumption 27) and explicit local rounds:
//   * a level-0 matvec is one local exchange;
//   * a level-i ≥ 1 matvec is one ρ_i-congested PA call over the minor's
//     host paths (the prepared matvec instance);
//   * every inner product is one 1-congested PA call over the global part;
//   * elimination sweeps charge their longest spliced chain in local rounds;
//   * the base case charges a gather/solve-locally/scatter of the base system.
// Swapping the oracle instantiates the paper's models: ShortcutPaOracle gives
// the (Supported-)CONGEST solver of Theorem 2, NccPaOracle the HYBRID solver
// of Theorem 3, BaselinePaOracle the existential [18] reference point.
//
// Substitution note (DESIGN.md §2): [18]'s full n^{o(1)} machinery (spectral
// vertex sparsifiers, sketched routing) is replaced by this KMP-style chain;
// the PA-call decomposition — the paper's actual subject — is preserved
// exactly, and the solver's n^{o(1)}-type overhead arises the same way
// (polylog iterations per level × Θ(log n / log log n)-ish depth).
#pragma once

#include <memory>
#include <optional>

#include "laplacian/elimination.hpp"
#include "laplacian/pa_oracle.hpp"
#include "laplacian/ultra_sparsifier.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/csr.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/workspace.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/recovery.hpp"
#include "resilience/watchdog.hpp"

namespace dls {

enum class OuterIteration {
  kFlexiblePcg,  // Polak–Ribière PCG (default; robust to inexact inner solves)
  kChebyshev,    // preconditioned Chebyshev with power-iteration eigenbounds
};

struct LaplacianSolverOptions {
  double tolerance = 1e-8;          // relative ℓ₂ residual target
  std::size_t base_size = 120;      // dense base-case threshold
  double offtree_fraction = 0.2;    // off-tree budget = fraction · nodes
  std::size_t max_levels = 16;
  std::size_t max_outer_iterations = 600;
  std::size_t inner_iterations = 10;   // per preconditioner level
  double inner_tolerance = 0.2;        // crude inner residual target
  bool tree_preconditioner_only = false;  // ablation: bare-tree sparsifier
  OuterIteration outer = OuterIteration::kFlexiblePcg;
  std::size_t power_iterations = 12;   // eigenbound estimation (Chebyshev only)
  /// Chebyshev only: seed the λ_max power iteration with a fixed
  /// graph-size-derived vector instead of the rhs. The estimate then depends
  /// only on the operator, so *every* rhs computes (or reuses) the same
  /// eigenbounds and eigenbound reuse across solves keeps results bitwise
  /// identical to cold solves — the warm-cache determinism contract
  /// (docs/CACHING.md). Costs one extra charged inner product (the seed's
  /// norm, which the rhs-seeded path gets for free from ‖b‖). Off by default:
  /// the historical rhs-seeded path and its golden traces are unchanged.
  bool rhs_independent_eigenbounds = false;
  /// Numerical watchdog over the top-level outer iteration: NaN/Inf guards on
  /// matvecs and inner products, stagnation/divergence detection, budgeted
  /// restarts, a refinement pass after any anomaly, and (Chebyshev) charged
  /// eigenbound re-estimation on divergence. Thresholds are generous enough
  /// that a healthy solve never trips — the clean path is bit-identical.
  WatchdogConfig watchdog;
  /// Outer-iteration checkpointing (interval 0 = off, the default): with an
  /// interval set, a ChaosAbortError escaping the oracle resumes the PCG
  /// recurrence from the last snapshot instead of iteration 0.
  CheckpointConfig checkpoint;
};

struct LevelStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t host_congestion = 0;  // ρ of the minor
  double avg_stretch = 0.0;         // of the level's low-stretch tree
  std::size_t off_tree_kept = 0;
  std::size_t chain_hops = 0;       // longest elimination splice
  bool is_base = false;
  /// Recovery attribution of the MOST RECENT solve()/solve_batch() call
  /// (reset at the start of each; they do not accumulate across calls):
  /// ladder transitions of PA calls owned by this level plus outer-iteration
  /// checkpoint restores.
  std::size_t pa_retries = 0;
  std::size_t pa_rebuilds = 0;
  std::size_t pa_degradations = 0;
  std::size_t checkpoints_restored = 0;
};

struct LaplacianSolveReport {
  Vec x;
  bool converged = false;
  double relative_residual = 0.0;
  /// Per-outer-iteration relative residuals — the convergence curve
  /// (geometric decay under a healthy preconditioner chain).
  std::vector<double> residual_history;
  std::size_t outer_iterations = 0;
  std::uint64_t pa_calls = 0;
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t hybrid_rounds = 0;
  /// Numerical-watchdog trace of the outer iteration (empty on clean solves).
  WatchdogReport watchdog;
  /// Recovery events recorded on the oracle's ledger during this call, folded
  /// into counters (all zero on clean solves).
  RecoveryCounters recovery;
  /// Set iff the solve gave up after exhausting its recovery budgets: x is
  /// the best partial iterate and this names the escalation tier reached —
  /// the typed alternative to an unhandled ChaosAbortError.
  std::optional<DegradedResult> degraded;
};

class ThreadPool;

/// Configuration of a multi-RHS solve session (docs/BATCHING.md).
struct SolveSessionOptions {
  /// Root seed of the per-RHS rng streams: slot i runs with an Rng seeded by
  /// derive_scenario_seed(seed, i) — the SimBatch discipline. The current
  /// solve kernels are rng-free after construction (which is why batch ≡
  /// sequential bitwise), so the streams exist to keep any future randomized
  /// remediation slot-deterministic rather than to feed today's numerics.
  std::uint64_t seed = 0x5eed5e55u;
  /// Chebyshev only: estimate λ_max once on slot 0 and reuse the bounds for
  /// the remaining RHS of the batch, skipping their charged power iterations.
  /// Opt-in because it breaks bit-identity with N sequential solves (the
  /// reused bound was estimated from a different rhs); defaults preserve the
  /// determinism contract.
  bool reuse_chebyshev_eigenbounds = false;
  /// Charge the oracle's shared ledger one pipelined "batch/…" phase per PA
  /// call position instead of leaving the shared ledger untouched.
  bool amortized_charging = true;
};

class DistributedLaplacianSolver {
 public:
  /// Builds the preconditioner chain for oracle.graph() (connected required).
  DistributedLaplacianSolver(CongestedPaOracle& oracle, Rng& rng,
                             const LaplacianSolverOptions& options = {});

  /// Solves L x = b to the configured tolerance. A rhs with non-zero sum is
  /// projected onto range(L) up front (the solve then targets Πb, and the
  /// reported residual is relative to Πb). Charges the oracle's ledger; the
  /// report snapshots the totals accumulated by this call.
  LaplacianSolveReport solve(const Vec& b);

  /// Batched multi-RHS solve through a one-shot SolveSession: reuses the
  /// level hierarchy, base Cholesky factor, and measured oracle costs across
  /// all RHS, fanning independent RHS out over `pool`. Entry i is
  /// bit-identical to solve(bs[i]) on a fresh identically-seeded solver, for
  /// every pool and batch size. See SolveSession for sticky options.
  std::vector<LaplacianSolveReport> solve_batch(const std::vector<Vec>& bs,
                                                ThreadPool* pool = nullptr);

  /// Measures every oracle instance a solve would measure lazily, in the
  /// exact order a fresh sequential solve would first touch them (the global
  /// inner-product instance, then minor matvec instances deepest-first on
  /// the recursion unwind). Idempotent; called by batch solves before
  /// fanning out so the value-oblivious measurement — the only rng-consuming,
  /// oracle-mutating step of a solve — never races and consumes the oracle's
  /// rng stream exactly as N sequential solves would have.
  void warm_instances();

  /// Charges the communication of one *independently recomputed* residual
  /// certificate — the verify layer's end-to-end re-check of ‖Lx − b‖/‖b‖,
  /// distinct from solve()'s own "solver/residual-check" — to the oracle's
  /// shared ledger: one local exchange for the per-node residual entries
  /// (labelled "verify/residual-certificate") plus one global 1-congested PA
  /// aggregation for the norm. The numerical evaluation is the caller's;
  /// this accounts for the rounds that evaluation costs in the model.
  void charge_residual_certificate();

  const std::vector<LevelStats>& level_stats() const { return stats_; }
  std::size_t num_levels() const { return levels_.size(); }
  const Graph& graph() const { return oracle_.graph(); }
  CongestedPaOracle& oracle() { return oracle_; }
  const LaplacianSolverOptions& options() const { return options_; }

  /// Gather+scatter distance term of the base case (the diameter estimate
  /// fixed at construction); exposed for honest re-charging of base rebuilds.
  std::uint64_t base_transfer_rounds() const { return base_transfer_rounds_; }

  /// Rough resident size of the hierarchy (minors, sparsifiers, elimination
  /// records, dense base factor), for cache memory accounting.
  std::size_t approx_state_bytes() const;

  /// Graph edge ids of the level-0 sparsifier's low-stretch tree (empty when
  /// level 0 is the base case). The cache's stretch-drift check watches these
  /// edges: tree weights anchor the preconditioner quality, so they tolerate
  /// less drift than sampled off-tree edges.
  std::vector<EdgeId> level0_tree_edges() const;

  /// Re-reads edge weights from oracle().graph() into the level-0 operator
  /// (minor + view, and the base factor if level 0 is the base). Deeper
  /// levels keep their numerics — the chain becomes a slightly stale (but
  /// still SPD) preconditioner, which flexible PCG absorbs. This is the
  /// "reuse as preconditioner" rung of the cache's update ladder.
  void refresh_operator_weights();

  /// Full per-level reweight sweep: re-reads graph weights, re-derives every
  /// sparsifier's weights through its stored source/factor provenance,
  /// re-runs degree-≤2 elimination level by level, and refactors the base.
  /// Succeeds only when every level's structure (hosts, endpoints, host
  /// paths, chain hops) is preserved — elimination is deterministic on the
  /// structure, so that holds for any positive reweighting; a mismatch
  /// returns false *before any level is mutated* and the caller should
  /// rebuild from scratch. No rng is consumed: tree choice and off-tree
  /// sample stay fixed, only numerics change.
  bool reweight_chain_from_graph();

 private:
  friend class SolveSession;

  struct Level {
    MinorGraph minor;
    Graph view;  // minor.as_graph()
    /// Flat CSR view of `view` (docs/KERNELS.md): the solve-loop matvec
    /// kernel. Rebuilt alongside view; weight-refreshed on reweight paths.
    LaplacianCsr csr;
    UltraSparsifier sparsifier;
    EliminationResult elim;
    CongestedPaOracle::InstanceId matvec_instance = 0;
    bool has_matvec_instance = false;
    std::vector<std::vector<double>> matvec_values;  // charging template
    bool is_base = false;
    std::unique_ptr<GroundedCholesky> base_solver;
  };

  /// Where one solve charges its communication. The default (ledger ==
  /// nullptr) is the shared path: rounds go to the oracle's ledger and PA
  /// calls bump the oracle's counter, exactly the historical behaviour. A
  /// batch slot instead carries a private ledger + counter so concurrent
  /// solves never touch shared mutable state (aggregate_into is const); the
  /// session merges the private ledgers afterwards in slot order.
  struct SolveContext {
    RoundLedger* ledger = nullptr;  // nullptr → shared (oracle) accounting
    std::uint64_t pa_calls = 0;     // private-path call count
    /// Per-instance PA call counts (batch accounting; may be null). Indexed
    /// by oracle InstanceId; sized by the session before fan-out.
    std::vector<std::uint64_t>* pa_counts = nullptr;
    /// Per-RHS rng stream (see SolveSessionOptions::seed).
    Rng rng{0};
    /// Chebyshev eigenbound reuse (session opt-in): when `reuse_hi` is set
    /// the charged power iteration is skipped and *reuse_hi is used as the
    /// λ_max estimate; when `publish_hi` is set the estimate actually used
    /// is written there for later slots.
    const double* reuse_hi = nullptr;
    double* publish_hi = nullptr;
    /// Buffer arena this solve leases its working vectors from (nullptr →
    /// the solver's shared workspace). Batch slots carry their own: a
    /// workspace is deliberately not thread-safe, so concurrent slots must
    /// never share one. Leases only shape *where* scratch lives — numerics
    /// are bit-identical for every workspace wiring.
    SolveWorkspace* ws = nullptr;

    bool shared() const { return ledger == nullptr; }
  };

  RoundLedger& ctx_ledger(SolveContext& ctx) {
    return ctx.shared() ? oracle_.ledger() : *ctx.ledger;
  }
  SolveWorkspace& ctx_ws(SolveContext& ctx) {
    return ctx.ws != nullptr ? *ctx.ws : shared_ws_;
  }
  /// Charges one PA call on `instance` (span, measure-on-first-use, ledger
  /// rounds, call counters) without materializing aggregate values — every
  /// solver call site discards them, so the fold is elided entirely.
  void ctx_charge_aggregate(SolveContext& ctx,
                            CongestedPaOracle::InstanceId instance);
  /// y ← L_level · x through the level's CSR view (bit-identical to
  /// laplacian_apply on the level view); charges the level's matvec cost.
  /// `y` must not alias `x`.
  void apply_matvec_into(SolveContext& ctx, std::size_t level, const Vec& x,
                         Vec& y);
  double charged_dot(SolveContext& ctx, const Vec& a, const Vec& b);
  /// z_out ← M⁻¹ r (forward-eliminate, recurse, back-substitute), leasing
  /// sweep scratch from `ws`. `z_out` must not alias `r`.
  void apply_preconditioner_into(SolveContext& ctx, std::size_t level,
                                 const Vec& r, Vec& z_out, SolveWorkspace& ws);
  /// Flexible PCG at `level`; writes the (approximate) solution into `x_out`
  /// (must not alias `b`; resized here). All recurrence vectors are leased
  /// from the context's workspace, so steady-state iterations allocate
  /// nothing. `history` (optional) collects per-iteration relative
  /// residuals. The trailing resilience hooks are wired only on the
  /// top-level call: `ckpt` snapshots the recurrence every interval
  /// iterations, `wd` guards the numerics, and `resume` (a snapshot from a
  /// caught abort) restarts mid-recurrence.
  void solve_level(SolveContext& ctx, std::size_t level, const Vec& b,
                   double tol, std::size_t max_iter, Vec& x_out,
                   std::size_t* iterations_out,
                   std::vector<double>* history = nullptr,
                   CheckpointManager* ckpt = nullptr,
                   NumericalWatchdog* wd = nullptr,
                   const SolverCheckpoint* resume = nullptr);
  /// Preconditioned Chebyshev at the TOP level (options_.outer == kChebyshev):
  /// estimates the extreme eigenvalues of M⁻¹L by charged power iteration,
  /// then runs the classic two-term recurrence against the chain. On a
  /// watchdog divergence signal the eigenbounds are re-estimated (charged)
  /// and the recurrence restarts — the "rebound" remediation. Writes the
  /// solution into `x_out` (must not alias `b`).
  void solve_top_chebyshev(SolveContext& ctx, const Vec& b, Vec& x_out,
                           std::size_t* iterations_out,
                           std::vector<double>* history,
                           NumericalWatchdog* wd = nullptr);
  /// The full solve pipeline (outer iteration, recovery loop, refinement,
  /// certificate, report assembly) charging through `ctx`. Shared contexts
  /// additionally reset + update the per-level recovery attribution in
  /// stats_; private (batch-slot) contexts leave stats_ to the session.
  LaplacianSolveReport solve_in_context(const Vec& b, SolveContext& ctx);
  /// Zeroes the per-solve recovery attribution fields of stats_.
  void reset_recovery_attribution();
  /// Folds one recovery event into `counters` and (when update_stats) the
  /// per-level attribution of stats_.
  void fold_recovery_event(const RecoveryEvent& e, RecoveryCounters& counters,
                           bool update_stats);

  CongestedPaOracle& oracle_;
  LaplacianSolverOptions options_;
  std::vector<Level> levels_;
  std::vector<LevelStats> stats_;
  CongestedPaOracle::InstanceId global_instance_ = 0;
  std::vector<std::vector<double>> global_values_;  // charging template
  std::uint64_t base_transfer_rounds_ = 0;  // gather+scatter cost of base case
  /// Default lease arena of single-RHS solves (SolveContext::ws == nullptr).
  /// Lives as long as the solver, so a warm-cached solver's repeated solves
  /// reuse the same buffers — the steady state allocates nothing.
  SolveWorkspace shared_ws_;
};

/// A multi-RHS solve session over one DistributedLaplacianSolver
/// (docs/BATCHING.md). The session owns nothing heavyweight — the hierarchy,
/// base factor, and measured oracle costs live in the solver and are shared
/// by construction — it owns the batch bookkeeping: per-slot private ledgers,
/// the slot-indexed merge, the amortized "one congested phase, not N
/// replays" charge to the oracle's shared ledger, and the per-level recovery
/// attribution.
///
/// Determinism contract: solve_batch(bs, pool)[i] is bit-identical to
/// solve(bs[i]) on a fresh identically-seeded solver — same x, same report,
/// same per-slot ledger entries — for every pool (including none) and every
/// batch size, provided reuse_chebyshev_eigenbounds stays off.
class SolveSession {
 public:
  explicit SolveSession(DistributedLaplacianSolver& solver,
                        const SolveSessionOptions& options = {});

  /// Solves the batch; entry i answers bs[i]. RHS fan out across `pool`
  /// (nullptr → inline); results merge in slot order.
  std::vector<LaplacianSolveReport> solve_batch(const std::vector<Vec>& bs,
                                                ThreadPool* pool = nullptr);

  /// Amortized accounting of the most recent batch (what was absorbed into
  /// the oracle's ledger under the "batch/" prefix when amortized_charging
  /// is on): pipelined PA phases + bandwidth-bound local phases.
  const RoundLedger& last_batch_ledger() const { return batch_ledger_; }
  std::uint64_t batches_run() const { return batches_run_; }
  std::uint64_t rhs_solved() const { return rhs_solved_; }

  /// The Chebyshev λ_max bound the session reuses across its batches
  /// (nullopt until a batch has estimated one, or when reuse is off). A
  /// watchdog rebound during any slot widens the stored bound in place, so
  /// later batches start from the rebounded estimate instead of re-diverging
  /// against the stale one.
  std::optional<double> cached_eigenbound() const {
    return has_cached_hi_ ? std::optional<double>(cached_hi_) : std::nullopt;
  }

 private:
  DistributedLaplacianSolver& solver_;
  SolveSessionOptions options_;
  RoundLedger batch_ledger_;
  std::uint64_t batches_run_ = 0;
  std::uint64_t rhs_solved_ = 0;
  bool has_cached_hi_ = false;
  double cached_hi_ = 0.0;  // Chebyshev λ_max reuse (opt-in)
  /// Per-slot lease arenas (a workspace is not thread-safe, so concurrent
  /// slots never share one). Persisted across batches: slot i's buffers stay
  /// warm for the next batch's slot i, like the solver's shared workspace
  /// does for sequential solves.
  std::vector<std::unique_ptr<SolveWorkspace>> slot_ws_;
};

}  // namespace dls
