#include "laplacian/low_stretch_tree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

/// One MPX-style decomposition phase on a quotient multigraph. Returns the
/// cluster id per quotient node and appends the original-graph BFS edges
/// used inside clusters to `tree_edges`.
///
/// Implementation: every node draws a shift δ_v ~ Exp(beta); a node joins the
/// cluster of the node u maximizing δ_u − dist(u, v) (computed by a Dijkstra
/// over "start times"), and the predecessor edges form intra-cluster trees.
std::vector<std::uint32_t> mpx_phase(
    const std::vector<std::vector<std::pair<NodeId, EdgeId>>>& adj,
    std::size_t n, double beta, Rng& rng, std::vector<EdgeId>& tree_edges) {
  std::vector<double> shift(n);
  for (auto& s : shift) {
    // Exponential with rate beta via inverse CDF.
    s = -std::log(1.0 - rng.next_double()) / beta;
  }
  std::vector<double> best(n, -std::numeric_limits<double>::infinity());
  std::vector<std::uint32_t> cluster(n, static_cast<std::uint32_t>(-1));
  std::vector<EdgeId> via(n, kInvalidEdge);
  using Item = std::pair<double, NodeId>;  // (key = shift - dist, node)
  std::priority_queue<Item> heap;
  for (NodeId v = 0; v < n; ++v) {
    best[v] = shift[v];
    cluster[v] = v;
    heap.push({best[v], v});
  }
  std::vector<char> settled(n, 0);
  while (!heap.empty()) {
    const auto [key, v] = heap.top();
    heap.pop();
    if (settled[v] || key < best[v]) continue;
    settled[v] = 1;
    if (via[v] != kInvalidEdge) tree_edges.push_back(via[v]);
    for (const auto& [nbr, e] : adj[v]) {
      const double cand = best[v] - 1.0;  // hop metric
      if (!settled[nbr] && cand > best[nbr]) {
        best[nbr] = cand;
        cluster[nbr] = cluster[v];
        via[nbr] = e;
        heap.push({cand, nbr});
      }
    }
  }
  return cluster;
}

}  // namespace

LowStretchTreeResult low_stretch_spanning_tree(const Graph& g, Rng& rng,
                                               double beta) {
  bool uniform = true;
  for (EdgeId e = 1; uniform && e < g.num_edges(); ++e) {
    uniform = g.edge(e).weight == g.edge(0).weight;
  }
  return uniform ? low_stretch_spanning_tree_hops(g, rng, beta)
                 : low_stretch_spanning_tree_weighted(g, rng, beta);
}

LowStretchTreeResult low_stretch_spanning_tree_hops(const Graph& g, Rng& rng,
                                                    double beta) {
  DLS_REQUIRE(is_connected(g), "low-stretch tree requires a connected graph");
  LowStretchTreeResult result;
  const std::size_t n = g.num_nodes();
  if (n <= 1) return result;
  if (beta <= 0.0) {
    beta = 1.0 / std::max(2.0, 2.0 * std::log2(static_cast<double>(n)));
  }

  // Quotient state: super[v] = current super-node of original node v.
  UnionFind uf(n);
  while (uf.num_sets() > 1) {
    ++result.phases;
    DLS_ASSERT(result.phases <= 512, "LDD contraction failed to make progress");
    // Build quotient adjacency: representative ids compacted to 0..q-1.
    std::vector<NodeId> rep_of(n, kInvalidNode);
    std::vector<NodeId> compact(n, kInvalidNode);
    std::size_t q = 0;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId r = uf.find(v);
      if (compact[r] == kInvalidNode) {
        compact[r] = static_cast<NodeId>(q);
        rep_of[q] = r;
        ++q;
      }
    }
    std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(q);
    // Cheapest representative edge per super-pair keeps the quotient sparse.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& edge = g.edge(e);
      const NodeId a = compact[uf.find(edge.u)];
      const NodeId b = compact[uf.find(edge.v)];
      if (a == b) continue;
      adj[a].push_back({b, e});
      adj[b].push_back({a, e});
    }
    std::vector<EdgeId> phase_tree;
    const std::vector<std::uint32_t> cluster =
        mpx_phase(adj, q, beta, rng, phase_tree);
    (void)cluster;
    bool merged = false;
    for (EdgeId e : phase_tree) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        result.tree_edges.push_back(e);
        merged = true;
      }
    }
    // Exponential shifts may produce singleton clusters only in pathological
    // draws; force progress by merging one inter-cluster edge.
    if (!merged) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (uf.unite(g.edge(e).u, g.edge(e).v)) {
          result.tree_edges.push_back(e);
          break;
        }
      }
    }
  }
  DLS_ASSERT(is_spanning_tree(g, result.tree_edges),
             "low-stretch construction did not produce a spanning tree");
  return result;
}

LowStretchTreeResult low_stretch_spanning_tree_weighted(const Graph& g,
                                                        Rng& rng, double beta,
                                                        double class_growth) {
  DLS_REQUIRE(is_connected(g), "low-stretch tree requires a connected graph");
  DLS_REQUIRE(class_growth > 1.0, "class growth must exceed 1");
  LowStretchTreeResult result;
  const std::size_t n = g.num_nodes();
  if (n <= 1) return result;
  if (beta <= 0.0) {
    beta = 1.0 / std::max(2.0, 2.0 * std::log2(static_cast<double>(n)));
  }
  // Length classes: resistive length 1/w; heavy (low-resistance) edges are
  // admitted first so tree paths between strongly-coupled nodes stay heavy.
  double min_length = std::numeric_limits<double>::infinity();
  for (const Edge& e : g.edges()) min_length = std::min(min_length, 1.0 / e.weight);
  double admitted_length = min_length * class_growth;

  UnionFind uf(n);
  std::size_t guard = 0;
  while (uf.num_sets() > 1) {
    DLS_ASSERT(++guard <= 4096, "weighted LDD failed to make progress");
    // Quotient restricted to admitted edges.
    std::vector<NodeId> compact(n, kInvalidNode);
    std::size_t q = 0;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId r = uf.find(v);
      if (compact[r] == kInvalidNode) compact[r] = static_cast<NodeId>(q++);
    }
    std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(q);
    bool any_admitted = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (1.0 / g.edge(e).weight > admitted_length) continue;
      const NodeId a = compact[uf.find(g.edge(e).u)];
      const NodeId b = compact[uf.find(g.edge(e).v)];
      if (a == b) continue;
      adj[a].push_back({b, e});
      adj[b].push_back({a, e});
      any_admitted = true;
    }
    if (!any_admitted) {
      admitted_length *= class_growth;
      continue;
    }
    ++result.phases;
    std::vector<EdgeId> phase_tree;
    mpx_phase(adj, q, beta, rng, phase_tree);
    bool merged = false;
    for (EdgeId e : phase_tree) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) {
        result.tree_edges.push_back(e);
        merged = true;
      }
    }
    if (!merged) {
      // Force progress within the class before enlarging it.
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (1.0 / g.edge(e).weight > admitted_length) continue;
        if (uf.unite(g.edge(e).u, g.edge(e).v)) {
          result.tree_edges.push_back(e);
          break;
        }
      }
    }
    admitted_length *= class_growth;
  }
  DLS_ASSERT(is_spanning_tree(g, result.tree_edges),
             "weighted low-stretch construction did not span");
  return result;
}

std::vector<double> edge_stretches(const Graph& g,
                                   std::span<const EdgeId> tree_edges) {
  DLS_REQUIRE(is_spanning_tree(g, tree_edges), "edge_stretches needs a tree");
  const std::size_t n = g.num_nodes();
  // Root the tree, compute depth and prefix resistance to the root, plus
  // binary-lifting ancestors for LCA queries.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
  for (EdgeId e : tree_edges) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<double> resistance_to_root(n, 0.0);
  {
    std::vector<NodeId> stack{0};
    std::vector<char> seen(n, 0);
    seen[0] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const auto& [nbr, e] : adj[v]) {
        if (seen[nbr]) continue;
        seen[nbr] = 1;
        parent[nbr] = v;
        depth[nbr] = depth[v] + 1;
        resistance_to_root[nbr] =
            resistance_to_root[v] + 1.0 / g.edge(e).weight;
        stack.push_back(nbr);
      }
    }
  }
  // Binary lifting.
  std::size_t levels = 1;
  while ((std::size_t{1} << levels) < n) ++levels;
  std::vector<std::vector<NodeId>> up(levels + 1,
                                      std::vector<NodeId>(n, kInvalidNode));
  for (NodeId v = 0; v < n; ++v) up[0][v] = parent[v] == kInvalidNode ? v : parent[v];
  for (std::size_t l = 1; l <= levels; ++l) {
    for (NodeId v = 0; v < n; ++v) up[l][v] = up[l - 1][up[l - 1][v]];
  }
  auto lca = [&](NodeId a, NodeId b) {
    if (depth[a] < depth[b]) std::swap(a, b);
    std::uint32_t diff = depth[a] - depth[b];
    for (std::size_t l = 0; diff > 0; ++l, diff >>= 1) {
      if (diff & 1) a = up[l][a];
    }
    if (a == b) return a;
    for (std::size_t l = levels + 1; l-- > 0;) {
      if (up[l][a] != up[l][b]) {
        a = up[l][a];
        b = up[l][b];
      }
    }
    return up[0][a];
  };

  std::vector<char> on_tree(g.num_edges(), 0);
  for (EdgeId e : tree_edges) on_tree[e] = 1;
  std::vector<double> stretch(g.num_edges(), 1.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (on_tree[e]) continue;
    const Edge& edge = g.edge(e);
    const NodeId a = lca(edge.u, edge.v);
    const double path_resistance = resistance_to_root[edge.u] +
                                   resistance_to_root[edge.v] -
                                   2.0 * resistance_to_root[a];
    stretch[e] = edge.weight * path_resistance;
  }
  return stretch;
}

double total_stretch(const Graph& g, std::span<const EdgeId> tree_edges) {
  double sum = 0.0;
  for (double s : edge_stretches(g, tree_edges)) sum += s;
  return sum;
}

double average_stretch(const Graph& g, std::span<const EdgeId> tree_edges) {
  return g.num_edges() == 0
             ? 0.0
             : total_stretch(g, tree_edges) / static_cast<double>(g.num_edges());
}

}  // namespace dls
