#include "laplacian/solver_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/ledger_clock.hpp"
#include "obs/metrics.hpp"

namespace dls {

namespace {

// Ratios within one part in 2^40 are "equal": the update came from the same
// real number through at most a handful of roundings. Keeps the kRescale and
// kNoChange rungs reachable by callers that compute c·w in floating point.
constexpr double kRatioSlack = 1.0 + 0x1.0p-40;

std::unique_ptr<CongestedPaOracle> make_cache_oracle(const Graph& g, Rng& rng,
                                                     CacheOracleKind kind) {
  switch (kind) {
    case CacheOracleKind::kShortcutSupported:
      return std::make_unique<ShortcutPaOracle>(g, rng);
    case CacheOracleKind::kShortcutCongest:
      return std::make_unique<ShortcutPaOracle>(
          g, rng, SchedulingPolicy::kRandomPriority, PaModel::kCongest);
    case CacheOracleKind::kNcc:
      return std::make_unique<NccPaOracle>(g, rng);
    case CacheOracleKind::kBaseline:
      return std::make_unique<BaselinePaOracle>(g, rng);
  }
  DLS_REQUIRE(false, "unknown CacheOracleKind");
  return nullptr;
}

MetricCounter& cache_counter(const std::string& name) {
  return MetricsRegistry::global().counter(name);
}

/// Rounds the per-level reweight sweep charges: every non-base level pushes
/// new weights down its longest elimination chain and back (2·hops), the base
/// re-gathers and refactors (2·(n_base + transfer)).
std::uint64_t reweight_sweep_rounds(const DistributedLaplacianSolver& solver) {
  std::uint64_t rounds = 0;
  for (const LevelStats& s : solver.level_stats()) {
    if (s.is_base) {
      rounds += 2 * (s.nodes + solver.base_transfer_rounds());
    } else {
      rounds += 2 * std::max<std::size_t>(std::size_t{1}, s.chain_hops);
    }
  }
  return rounds;
}

}  // namespace

const char* to_string(WeightUpdateClass c) {
  switch (c) {
    case WeightUpdateClass::kNoChange: return "no-change";
    case WeightUpdateClass::kRescale: return "rescale";
    case WeightUpdateClass::kReusePreconditioner: return "reuse-preconditioner";
    case WeightUpdateClass::kPartialRebuild: return "partial-rebuild";
    case WeightUpdateClass::kFullRebuild: return "full-rebuild";
  }
  return "?";
}

std::uint64_t graph_structure_fingerprint(const Graph& g) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (const Edge& e : g.edges()) {
    mix(e.u);
    mix(e.v);
  }
  return h;
}

// ---------------------------------------------------------------------------
// CachedSolverState
// ---------------------------------------------------------------------------

void CachedSolverState::build(const Graph& g) {
  // Everything into temporaries first: a throw (chaos fault during hierarchy
  // construction or instance measurement) must leave the entry — and hence
  // the cache — exactly as it was.
  auto graph = std::make_unique<Graph>(g.num_nodes());
  for (const Edge& e : g.edges()) graph->add_edge(e.u, e.v, e.weight);
  auto rng = std::make_unique<Rng>(options_.seed);
  auto oracle = make_cache_oracle(*graph, *rng, options_.oracle);
  if (options_.oracle_hook) options_.oracle_hook(*oracle);

  LaplacianSolverOptions solver_options = options_.solver;
  if (solver_options.outer == OuterIteration::kChebyshev &&
      options_.reuse_chebyshev_eigenbounds) {
    // The reused bound must not depend on whichever rhs arrives first, or
    // warm results would diverge from cold solves (header contract).
    solver_options.rhs_independent_eigenbounds = true;
  }
  auto solver =
      std::make_unique<DistributedLaplacianSolver>(*oracle, *rng, solver_options);
  // Measure every PA instance now — the one-time dry runs the entry pays for
  // at build so that warm charging below is honest, not a discount.
  solver->warm_instances();
  SolveSessionOptions session_options;
  session_options.reuse_chebyshev_eigenbounds =
      options_.reuse_chebyshev_eigenbounds;
  auto session = std::make_unique<SolveSession>(*solver, session_options);

  graph_ = std::move(graph);
  rng_ = std::move(rng);
  oracle_ = std::move(oracle);
  solver_ = std::move(solver);
  session_ = std::move(session);
  scale_ = 1.0;
  drift_ = 1.0;
  build_rounds_ = charge_build();
  oracle_->set_warm_charging(true);
}

std::uint64_t CachedSolverState::charge_build() {
  RoundLedger& ledger = oracle_->ledger();
  const std::uint64_t local_before = ledger.total_local();
  const std::uint64_t global_before = ledger.total_global();
  Tracer* tracer = Tracer::ambient();
  ClockScope clock(tracer, ledger_clock(ledger));
  ScopedSpan span(tracer, "cache/charge-build", SpanKind::kPhase);

  // (a) Hierarchy construction: per non-base level, the low-stretch tree
  // build (⌈log n⌉ merge phases of ⌈√n⌉ + D + 1 rounds each — the standard
  // distributed star-decomposition shape) plus the degree-≤2 elimination
  // sweep down the longest spliced chain and back.
  const std::uint64_t transfer = solver_->base_transfer_rounds();
  std::uint64_t hierarchy = 0;
  std::uint64_t base = 0;
  for (const LevelStats& s : solver_->level_stats()) {
    if (s.is_base) {
      base += 2 * (s.nodes + transfer);
      continue;
    }
    const double n = static_cast<double>(std::max<std::size_t>(s.nodes, 2));
    const auto phases = static_cast<std::uint64_t>(std::ceil(std::log2(n)));
    const auto per_phase =
        static_cast<std::uint64_t>(std::ceil(std::sqrt(n))) + transfer + 1;
    hierarchy += phases * per_phase;
    hierarchy += 2 * std::max<std::size_t>(std::size_t{1}, s.chain_hops);
  }
  if (hierarchy > 0) ledger.charge_local(hierarchy, "cache/construct-hierarchy");
  if (base > 0) ledger.charge_local(base, "cache/base-factor");

  // (b) The measurement dry runs: each instance's first aggregation simulates
  // the full distributed schedule once. Cold solves pay this inside their
  // first call per instance; the entry pays it here, once, explicitly.
  std::uint64_t measure_local = 0;
  std::uint64_t measure_global = 0;
  for (CongestedPaOracle::InstanceId i = 0; i < oracle_->num_instances(); ++i) {
    if (!oracle_->is_measured(i)) continue;
    measure_local += oracle_->measured_local_rounds(i);
    measure_global += oracle_->measured_global_rounds(i);
  }
  if (measure_local > 0) ledger.charge_local(measure_local, "cache/measure-instances");
  if (measure_global > 0) {
    ledger.charge_global(measure_global, "cache/measure-instances");
  }

  const std::uint64_t total = (ledger.total_local() - local_before) +
                              (ledger.total_global() - global_before);
  span.counter("rounds", total);
  return total;
}

LaplacianSolveReport CachedSolverState::solve(const Vec& b) {
  std::vector<LaplacianSolveReport> reports = solve_batch({b}, nullptr);
  return std::move(reports.front());
}

std::vector<LaplacianSolveReport> CachedSolverState::solve_batch(
    const std::vector<Vec>& bs, ThreadPool* pool) {
  std::vector<LaplacianSolveReport> reports = session_->solve_batch(bs, pool);
  solves_ += bs.size();
  if (scale_ != 1.0) {
    // Stored L, logical c·L: (c·L)x = b ⇔ x = x_stored / c, exactly; the
    // residual b − c·L·x = b − L·x_stored is scale-invariant, so the report's
    // convergence data needs no adjustment.
    for (LaplacianSolveReport& r : reports) {
      for (double& v : r.x) v /= scale_;
    }
  }
  return reports;
}

WeightUpdateReport CachedSolverState::update_weights(
    const std::vector<WeightDelta>& deltas) {
  Tracer* tracer = Tracer::ambient();
  ClockScope clock(tracer, ledger_clock(oracle_->ledger()));
  ScopedSpan span(tracer, "cache/update-weights", SpanKind::kPhase);
  WeightUpdateReport report;
  const std::size_t m = graph_->num_edges();
  // Requested-over-current logical ratio per touched edge; later deltas on
  // the same edge win, matching "apply this stream of updates in order".
  std::vector<double> ratio(m, 1.0);
  std::vector<char> touched(m, 0);
  for (const WeightDelta& d : deltas) {
    DLS_REQUIRE(d.edge < m, "weight delta for unknown edge");
    DLS_REQUIRE(std::isfinite(d.new_weight) && d.new_weight > 0.0,
                "edge weights must be positive and finite");
    ratio[d.edge] = d.new_weight / (graph_->edge(d.edge).weight * scale_);
    touched[d.edge] = 1;
  }

  std::size_t touched_count = 0;
  double min_ratio = std::numeric_limits<double>::infinity();
  double max_ratio = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    if (touched[e] == 0) continue;
    ++touched_count;
    if (ratio[e] < kRatioSlack && 1.0 < ratio[e] * kRatioSlack) continue;
    ++report.edges_changed;
    min_ratio = std::min(min_ratio, ratio[e]);
    max_ratio = std::max(max_ratio, ratio[e]);
  }

  const auto finish = [&](WeightUpdateClass cls) {
    report.classification = cls;
    report.cumulative_drift = drift_;
    cache_counter(std::string("cache.update.") + to_string(cls)).increment();
    span.note(to_string(cls));
    span.counter("edges-changed", report.edges_changed);
    span.counter("charged-rounds", report.charged_local_rounds);
    return report;
  };

  if (report.edges_changed == 0) return finish(WeightUpdateClass::kNoChange);

  if (report.edges_changed == m && max_ratio <= min_ratio * kRatioSlack) {
    // Uniform L → cL. Exact: only the scale factor moves; the stored solver,
    // its measured instances, and its eigenbounds are all reused untouched.
    scale_ *= min_ratio;
    oracle_->ledger().charge_local(1, "cache/update-weights");
    report.charged_local_rounds = 1;
    return finish(WeightUpdateClass::kRescale);
  }

  double sigma = 1.0;
  for (EdgeId e = 0; e < m; ++e) {
    if (touched[e] == 0) continue;
    sigma = std::max(sigma, std::max(ratio[e], 1.0 / ratio[e]));
  }
  report.spectral_ratio = sigma;
  double tree_sigma = 1.0;
  for (EdgeId e : solver_->level0_tree_edges()) {
    if (touched[e] == 0) continue;
    tree_sigma = std::max(tree_sigma, std::max(ratio[e], 1.0 / ratio[e]));
  }
  report.tree_ratio = tree_sigma;

  const auto apply_to_stored = [&]() {
    for (EdgeId e = 0; e < m; ++e) {
      if (touched[e] != 0 && ratio[e] != 1.0) {
        graph_->set_weight(e, graph_->edge(e).weight * ratio[e]);
      }
    }
  };

  if (sigma <= options_.reuse_ratio_limit &&
      tree_sigma <= options_.tree_ratio_limit &&
      drift_ * sigma <= options_.reuse_drift_limit) {
    // Reuse as preconditioner: refresh the level-0 operator so residuals are
    // exact for the new L; deeper levels stay numerically stale — a spectral
    // (1/σ', σ')-approximation with σ' = drift·σ — which flexible PCG absorbs
    // at a few extra iterations. One announce round: each node already holds
    // its incident weights.
    apply_to_stored();
    drift_ *= sigma;
    solver_->refresh_operator_weights();
    oracle_->ledger().charge_local(1, "cache/update-weights");
    report.charged_local_rounds = 1;
    return finish(WeightUpdateClass::kReusePreconditioner);
  }

  if (sigma <= options_.partial_ratio_limit) {
    // Partial rebuild: keep every structure (trees, samples, hosts, measured
    // PA instances), re-derive every level's numerics through the stored
    // provenance. Falls through to a full rebuild if any level's structure
    // no longer matches (reweight_chain_from_graph mutates nothing then).
    std::vector<double> saved(m);
    for (EdgeId e = 0; e < m; ++e) saved[e] = graph_->edge(e).weight;
    apply_to_stored();
    if (solver_->reweight_chain_from_graph()) {
      drift_ = 1.0;
      const std::uint64_t rounds = reweight_sweep_rounds(*solver_);
      oracle_->ledger().charge_local(rounds, "cache/reweight-chain");
      report.charged_local_rounds = rounds;
      // The chain's numerics changed: the session's cached eigenbound (if
      // any) describes the old operator. Fresh session, bound re-estimated
      // (and charged) on the next solve.
      SolveSessionOptions session_options;
      session_options.reuse_chebyshev_eigenbounds =
          options_.reuse_chebyshev_eigenbounds;
      session_ = std::make_unique<SolveSession>(*solver_, session_options);
      return finish(WeightUpdateClass::kPartialRebuild);
    }
    for (EdgeId e = 0; e < m; ++e) graph_->set_weight(e, saved[e]);
  }

  // Full rebuild, strong exception guarantee: assemble the target graph and
  // build a complete candidate stack from the entry's root seed; commit only
  // on success. A rebuilt entry is bit-interchangeable with a cold stack on
  // the new weights (same seed, same construction order).
  Graph target(graph_->num_nodes());
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = graph_->edge(e);
    const double logical = edge.weight * scale_ * (touched[e] != 0 ? ratio[e] : 1.0);
    target.add_edge(edge.u, edge.v, logical);
  }
  CachedSolverState candidate;
  candidate.options_ = options_;
  candidate.fingerprint_ = fingerprint_;
  candidate.build(target);  // throws → *this untouched
  graph_ = std::move(candidate.graph_);
  rng_ = std::move(candidate.rng_);
  oracle_ = std::move(candidate.oracle_);
  solver_ = std::move(candidate.solver_);
  session_ = std::move(candidate.session_);
  scale_ = 1.0;
  drift_ = 1.0;
  build_rounds_ = candidate.build_rounds_;
  ++full_rebuilds_;
  report.charged_local_rounds = build_rounds_;
  cache_counter("cache.full_rebuilds").increment();
  return finish(WeightUpdateClass::kFullRebuild);
}

std::size_t CachedSolverState::approx_bytes() const {
  std::size_t bytes = sizeof(*this);
  if (graph_ != nullptr) {
    bytes += graph_->num_edges() * (sizeof(Edge) + 2 * sizeof(Adjacency)) +
             graph_->num_nodes() * sizeof(std::vector<Adjacency>);
  }
  if (solver_ != nullptr) bytes += solver_->approx_state_bytes();
  if (oracle_ != nullptr) bytes += oracle_->approx_state_bytes();
  if (session_ != nullptr) bytes += sizeof(SolveSession);
  return bytes;
}

// ---------------------------------------------------------------------------
// SolverCache
// ---------------------------------------------------------------------------

SolverCache::SolverCache(SolverCacheOptions options)
    : options_(std::move(options)) {
  DLS_REQUIRE(options_.max_entries >= 1, "cache needs at least one entry slot");
  DLS_REQUIRE(options_.reuse_ratio_limit >= 1.0 &&
                  options_.tree_ratio_limit >= 1.0 &&
                  options_.partial_ratio_limit >= options_.reuse_ratio_limit &&
                  options_.reuse_drift_limit >= 1.0,
              "classification limits must be ratios >= 1");
}

namespace {

/// True when `g` has exactly the structure `entry` was built for. Guards the
/// fingerprint against (astronomically unlikely) collisions and costs one
/// O(m) sweep we are about to do anyway for the weight diff.
bool same_structure(const Graph& g, const CachedSolverState& entry) {
  const Graph& h = entry.graph();
  if (g.num_nodes() != h.num_nodes() || g.num_edges() != h.num_edges()) {
    return false;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).u != h.edge(e).u || g.edge(e).v != h.edge(e).v) return false;
  }
  return true;
}

}  // namespace

SolverCache::Acquired SolverCache::acquire(const Graph& g) {
  const std::uint64_t key = graph_structure_fingerprint(g);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->fingerprint() != key || !same_structure(g, **it)) continue;
    entries_.splice(entries_.begin(), entries_, it);  // LRU touch
    CachedSolverState& state = *entries_.front();
    ++hits_;
    cache_counter("cache.hits").increment();
    ScopedSpan span(Tracer::ambient(), "cache/hit", SpanKind::kPhase);
    std::vector<WeightDelta> diff;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const double logical = state.graph().edge(e).weight * state.weight_scale();
      if (g.edge(e).weight != logical) diff.push_back({e, g.edge(e).weight});
    }
    WeightUpdateReport update;
    if (!diff.empty()) update = state.update_weights(diff);
    evict_over_budget();  // a full rebuild can change the entry's size
    return {state, true, update};
  }
  ++misses_;
  cache_counter("cache.misses").increment();
  CachedSolverState& state = build_entry(g, key);
  evict_over_budget();
  return {state, false, WeightUpdateReport{}};
}

bool SolverCache::contains(const Graph& g) const {
  const std::uint64_t key = graph_structure_fingerprint(g);
  for (const auto& entry : entries_) {
    if (entry->fingerprint() == key && same_structure(g, *entry)) return true;
  }
  return false;
}

std::size_t SolverCache::total_bytes() const {
  std::size_t bytes = 0;
  for (const auto& entry : entries_) bytes += entry->approx_bytes();
  return bytes;
}

CachedSolverState& SolverCache::build_entry(const Graph& g, std::uint64_t key) {
  ScopedSpan span(Tracer::ambient(), "cache/build", SpanKind::kPhase);
  auto entry = std::unique_ptr<CachedSolverState>(new CachedSolverState());
  entry->options_ = options_;
  entry->fingerprint_ = key;
  entry->build(g);  // throws → cache unchanged
  const std::size_t bytes = entry->approx_bytes();
  span.counter("bytes", bytes);
  span.counter("build-rounds", entry->build_rounds());
  cache_counter("cache.builds").increment();
  cache_counter("cache.bytes_built").increment(bytes);
  static MetricHistogram& size_metric = MetricsRegistry::global().histogram(
      "cache.entry_bytes", MetricsRegistry::pow2_bounds(40));
  size_metric.observe(bytes);
  entries_.push_front(std::move(entry));
  return *entries_.front();
}

void SolverCache::evict_over_budget() {
  while (entries_.size() > 1 &&
         (entries_.size() > options_.max_entries ||
          total_bytes() > options_.memory_budget_bytes)) {
    const std::size_t bytes = entries_.back()->approx_bytes();
    entries_.pop_back();
    ++evictions_;
    cache_counter("cache.evictions").increment();
    cache_counter("cache.bytes_evicted").increment(bytes);
  }
}

}  // namespace dls
