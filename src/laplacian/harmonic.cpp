#include "laplacian/harmonic.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "linalg/laplacian.hpp"

namespace dls {

namespace {

void validate_problem(const Graph& g, const HarmonicProblem& problem) {
  DLS_REQUIRE(!problem.boundary_nodes.empty(), "need at least one boundary node");
  DLS_REQUIRE(problem.boundary_nodes.size() == problem.boundary_values.size(),
              "boundary nodes/values mismatch");
  std::vector<char> seen(g.num_nodes(), 0);
  for (NodeId b : problem.boundary_nodes) {
    DLS_REQUIRE(b < g.num_nodes(), "boundary node out of range");
    DLS_REQUIRE(!seen[b], "duplicate boundary node");
    seen[b] = 1;
  }
}

}  // namespace

HarmonicResult solve_harmonic(const Graph& g, const HarmonicProblem& problem,
                              Rng& rng, const HarmonicOptions& options) {
  validate_problem(g, problem);
  DLS_REQUIRE(is_connected(g), "harmonic extension needs a connected graph");
  const std::size_t n = g.num_nodes();

  // Anchor embedding: add node z tied to every boundary node with a stiff
  // edge; the Dirichlet solution is the limit of the (valid-rhs) Laplacian
  // system below as penalty → ∞.
  Graph anchored(n);
  for (const Edge& e : g.edges()) anchored.add_edge(e.u, e.v, e.weight);
  const NodeId z = anchored.add_node();
  for (NodeId b : problem.boundary_nodes) {
    anchored.add_edge(b, z, options.penalty);
  }
  Vec rhs(n + 1, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < problem.boundary_nodes.size(); ++i) {
    rhs[problem.boundary_nodes[i]] =
        options.penalty * problem.boundary_values[i];
    total += rhs[problem.boundary_nodes[i]];
  }
  rhs[z] = -total;

  ShortcutPaOracle oracle(anchored, rng);
  LaplacianSolverOptions solver_options;
  solver_options.tolerance = options.tolerance;
  solver_options.base_size = options.base_size;
  DistributedLaplacianSolver solver(oracle, rng, solver_options);
  const LaplacianSolveReport report = solver.solve(rhs);

  HarmonicResult result;
  result.x.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) result.x[v] = report.x[v] - report.x[z];
  for (std::size_t i = 0; i < problem.boundary_nodes.size(); ++i) {
    result.max_boundary_error =
        std::max(result.max_boundary_error,
                 std::abs(result.x[problem.boundary_nodes[i]] -
                          problem.boundary_values[i]));
  }
  result.max_harmonic_violation = harmonic_violation(g, problem, result.x);
  result.local_rounds = report.local_rounds;
  result.global_rounds = report.global_rounds;
  result.pa_calls = report.pa_calls;
  return result;
}

Vec solve_harmonic_reference(const Graph& g, const HarmonicProblem& problem) {
  validate_problem(g, problem);
  const std::size_t n = g.num_nodes();
  // Interior indexing.
  std::vector<std::ptrdiff_t> interior_index(n, -1);
  std::vector<double> fixed(n, 0.0);
  std::vector<char> is_boundary(n, 0);
  for (std::size_t i = 0; i < problem.boundary_nodes.size(); ++i) {
    is_boundary[problem.boundary_nodes[i]] = 1;
    fixed[problem.boundary_nodes[i]] = problem.boundary_values[i];
  }
  std::vector<NodeId> interior;
  for (NodeId v = 0; v < n; ++v) {
    if (!is_boundary[v]) {
      interior_index[v] = static_cast<std::ptrdiff_t>(interior.size());
      interior.push_back(v);
    }
  }
  const std::size_t m = interior.size();
  Vec x(n, 0.0);
  for (NodeId v = 0; v < n; ++v) x[v] = fixed[v];
  if (m == 0) return x;

  // Dense interior system L_II y = -L_IB v (Gaussian elimination with
  // partial pivoting; interior blocks in tests are small).
  std::vector<Vec> a(m, Vec(m + 1, 0.0));
  for (const Edge& e : g.edges()) {
    const auto iu = interior_index[e.u];
    const auto iv = interior_index[e.v];
    if (iu >= 0) a[iu][static_cast<std::size_t>(iu)] += e.weight;
    if (iv >= 0) a[iv][static_cast<std::size_t>(iv)] += e.weight;
    if (iu >= 0 && iv >= 0) {
      a[iu][static_cast<std::size_t>(iv)] -= e.weight;
      a[iv][static_cast<std::size_t>(iu)] -= e.weight;
    } else if (iu >= 0) {
      a[iu][m] += e.weight * fixed[e.v];
    } else if (iv >= 0) {
      a[iv][m] += e.weight * fixed[e.u];
    }
  }
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    DLS_REQUIRE(std::abs(a[pivot][col]) > 1e-14,
                "interior block singular — a component has no boundary");
    std::swap(a[col], a[pivot]);
    for (std::size_t row = 0; row < m; ++row) {
      if (row == col) continue;
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k <= m; ++k) a[row][k] -= factor * a[col][k];
    }
  }
  for (std::size_t i = 0; i < m; ++i) x[interior[i]] = a[i][m] / a[i][i];
  return x;
}

double harmonic_violation(const Graph& g, const HarmonicProblem& problem,
                          const Vec& x) {
  DLS_REQUIRE(x.size() == g.num_nodes(), "solution size mismatch");
  std::vector<char> is_boundary(g.num_nodes(), 0);
  for (NodeId b : problem.boundary_nodes) is_boundary[b] = 1;
  const Vec lx = laplacian_apply(g, x);
  double worst = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_boundary[v]) worst = std::max(worst, std::abs(lx[v]));
  }
  return worst;
}

}  // namespace dls
