#include "laplacian/spanning_tree.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"

namespace dls {

DistributedMstResult distributed_mst(CongestedPaOracle& oracle, Rng& rng) {
  (void)rng;
  const Graph& g = oracle.graph();
  DLS_REQUIRE(is_connected(g), "MST requires a connected graph");
  DistributedMstResult result;
  const std::size_t n = g.num_nodes();
  if (n <= 1) return result;

  // Edge ranks: strict total order consistent with weights, so the minimum
  // outgoing edge is unique and the MST is unambiguous. The rank fits an
  // O(log n)-bit word, which is what the PA min aggregation transports.
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).weight < g.edge(b).weight;
  });
  std::vector<double> rank(g.num_edges());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<double>(i);
  }

  UnionFind components(n);
  std::size_t num_components = n;
  while (num_components > 1) {
    ++result.phases;
    DLS_ASSERT(result.phases <= 2 * 64, "Boruvka failed to converge");
    // One local exchange: every node learns its neighbors' component ids.
    oracle.charge_local_exchange("mst/exchange-component-ids");
    // Each node's local minimum-rank outgoing edge.
    const double kNone = static_cast<double>(g.num_edges());
    std::vector<double> local_min(n, kNone);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId cv = components.find(v);
      for (const Adjacency& a : g.neighbors(v)) {
        if (components.find(a.neighbor) != cv) {
          local_min[v] = std::min(local_min[v], rank[a.edge]);
        }
      }
    }
    // Parts = current components; aggregate the min outgoing rank.
    PartCollection pc;
    std::vector<std::vector<NodeId>> members(n);
    for (NodeId v = 0; v < n; ++v) members[components.find(v)].push_back(v);
    std::vector<std::vector<double>> values;
    for (NodeId root = 0; root < n; ++root) {
      if (members[root].empty()) continue;
      std::vector<double> vals;
      vals.reserve(members[root].size());
      for (NodeId v : members[root]) vals.push_back(local_min[v]);
      pc.parts.push_back(members[root]);
      values.push_back(std::move(vals));
    }
    const std::vector<double> mins =
        oracle.aggregate_once(pc, values, AggregationMonoid::min());
    ++result.pa_calls;
    // Merge along the selected edges (a second PA broadcast, charged as one
    // more call, disseminates the merge decisions inside each component).
    ++result.pa_calls;
    oracle.aggregate_once(pc, values, AggregationMonoid::min());
    for (double m : mins) {
      if (m >= kNone) continue;  // isolated component (cannot happen if connected)
      const EdgeId e = order[static_cast<std::size_t>(m)];
      if (components.unite(g.edge(e).u, g.edge(e).v)) {
        result.tree_edges.push_back(e);
        --num_components;
      }
    }
  }
  DLS_ASSERT(is_spanning_tree(g, result.tree_edges), "Boruvka output invalid");
  return result;
}

}  // namespace dls
