#include "laplacian/maxflow.hpp"

#include <algorithm>
#include <cmath>

#include "graph/flow.hpp"
#include "linalg/laplacian.hpp"

namespace dls {

namespace {

std::unique_ptr<CongestedPaOracle> make_oracle(MaxFlowModel model,
                                               const Graph& g, Rng& rng) {
  switch (model) {
    case MaxFlowModel::kShortcut:
      return std::make_unique<ShortcutPaOracle>(g, rng);
    case MaxFlowModel::kBaseline:
      return std::make_unique<BaselinePaOracle>(g, rng);
    case MaxFlowModel::kNcc:
      return std::make_unique<NccPaOracle>(g, rng);
  }
  return nullptr;
}

}  // namespace

double flow_conservation_error(const Graph& g, const std::vector<double>& edge_flow,
                               NodeId s, NodeId t, double value) {
  DLS_REQUIRE(edge_flow.size() == g.num_edges(), "flow size mismatch");
  Vec net(g.num_nodes(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    net[g.edge(e).u] -= edge_flow[e];
    net[g.edge(e).v] += edge_flow[e];
  }
  double worst = std::abs(-net[s] - value);
  worst = std::max(worst, std::abs(net[t] - value));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != s && v != t) worst = std::max(worst, std::abs(net[v]));
  }
  return worst;
}

ElectricalMaxFlowResult approx_max_flow_electrical(
    const Graph& g, NodeId s, NodeId t, Rng& rng, MaxFlowModel model,
    const ElectricalMaxFlowOptions& options) {
  DLS_REQUIRE(s < g.num_nodes() && t < g.num_nodes() && s != t,
              "bad flow endpoints");
  DLS_REQUIRE(options.iterations >= 1, "need at least one iteration");
  ElectricalMaxFlowResult result;
  const std::size_t m = g.num_edges();
  result.exact_value = max_flow_value(g, s, t);

  // MWU state: per-edge weights; conductance of edge e in iteration i is
  // c_e² / w_e (resistance w_e / c_e²), so congested edges grow resistive.
  std::vector<double> mwu(m, 1.0);
  std::vector<double> avg_flow(m, 0.0);
  Vec demand(g.num_nodes(), 0.0);
  demand[s] = 1.0;
  demand[t] = -1.0;

  std::uint64_t local = 0, global = 0, calls = 0;
  for (int it = 0; it < options.iterations; ++it) {
    // Reweighted system on the same communication topology.
    Graph system(g.num_nodes());
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = g.edge(e);
      system.add_edge(edge.u, edge.v, edge.weight * edge.weight / mwu[e]);
    }
    Rng solver_rng = rng.fork();
    auto oracle = make_oracle(model, system, solver_rng);
    LaplacianSolverOptions solver_options;
    solver_options.tolerance = options.solver_tolerance;
    solver_options.base_size = options.base_size;
    solver_options.max_levels = options.max_levels;
    solver_options.inner_iterations = options.inner_iterations;
    DistributedLaplacianSolver solver(*oracle, solver_rng, solver_options);
    const LaplacianSolveReport report = solver.solve(demand);
    local += report.local_rounds;
    global += report.global_rounds;
    calls += report.pa_calls;

    // Unit electrical flow and its per-edge congestion |f_e| / c_e.
    double max_congestion = 0.0;
    std::vector<double> flow(m, 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = g.edge(e);
      const double conductance = edge.weight * edge.weight / mwu[e];
      flow[e] = conductance * (report.x[edge.u] - report.x[edge.v]);
      max_congestion = std::max(max_congestion, std::abs(flow[e]) / edge.weight);
    }
    DLS_ASSERT(max_congestion > 0, "degenerate electrical flow");
    // MWU update: penalize proportionally to relative congestion.
    for (EdgeId e = 0; e < m; ++e) {
      const double rel = std::abs(flow[e]) / g.edge(e).weight / max_congestion;
      mwu[e] *= 1.0 + options.mwu_step * rel;
    }
    for (EdgeId e = 0; e < m; ++e) {
      avg_flow[e] += flow[e] / static_cast<double>(options.iterations);
    }
    result.iterations = it + 1;
  }

  // Scale the averaged unit flow to feasibility.
  double max_congestion = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    max_congestion = std::max(max_congestion,
                              std::abs(avg_flow[e]) / g.edge(e).weight);
  }
  const double scale = max_congestion > 0 ? 1.0 / max_congestion : 0.0;
  result.edge_flow.assign(m, 0.0);
  // Orientation: positive flow runs u→v. The solve used demand e_s − e_t,
  // so x_s is high and flow[e] = conductance·(x_u − x_v) is positive in the
  // direction current actually moves — already the u→v convention.
  for (EdgeId e = 0; e < m; ++e) result.edge_flow[e] = avg_flow[e] * scale;
  result.flow_value = scale;  // the unit demand scaled by 1/congestion
  result.approximation =
      result.exact_value > 0 ? result.flow_value / result.exact_value : 0.0;
  result.local_rounds = local;
  result.global_rounds = global;
  result.pa_calls = calls;
  return result;
}

}  // namespace dls
