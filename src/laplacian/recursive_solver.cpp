#include "laplacian/recursive_solver.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "laplacian/low_stretch_tree.hpp"
#include "obs/ledger_clock.hpp"
#include "sim/fault_injection.hpp"

namespace dls {

DistributedLaplacianSolver::DistributedLaplacianSolver(
    CongestedPaOracle& oracle, Rng& rng, const LaplacianSolverOptions& options)
    : oracle_(oracle), options_(options) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(is_connected(g), "Laplacian solver requires a connected graph");
  DLS_REQUIRE(options_.tolerance > 0, "tolerance must be positive");

  // Global 1-congested instance used by every inner product.
  {
    PartCollection pc;
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    pc.parts.push_back(std::move(all));
    global_instance_ = oracle_.prepare(pc);
    global_values_.resize(1);
    global_values_[0].assign(g.num_nodes(), 0.0);
  }
  {
    Rng diam_rng = rng.fork();
    base_transfer_rounds_ = approx_diameter(g, diam_rng, 2);
  }

  // Build the chain.
  MinorGraph current = MinorGraph::identity(g);
  for (std::size_t depth = 0; depth < options_.max_levels; ++depth) {
    Level level;
    level.minor = current;
    level.view = level.minor.as_graph();
    level.csr.rebuild(level.view);

    LevelStats stats;
    stats.nodes = level.minor.num_nodes;
    stats.edges = level.minor.edges.size();
    stats.host_congestion = level.minor.host_congestion(g.num_nodes());

    // Prepared matvec instance for minor levels (level 0 is local exchange).
    if (depth > 0) {
      const PartCollection pc = level.minor.matvec_parts();
      if (pc.num_parts() > 0) {
        level.matvec_instance = oracle_.prepare(pc);
        level.has_matvec_instance = true;
        level.matvec_values.resize(pc.num_parts());
        for (std::size_t i = 0; i < pc.num_parts(); ++i) {
          level.matvec_values[i].assign(pc.parts[i].size(), 0.0);
        }
      }
    }

    const bool base = level.minor.num_nodes <= options_.base_size ||
                      depth + 1 == options_.max_levels;
    if (base) {
      level.is_base = true;
      stats.is_base = true;
      level.base_solver = std::make_unique<GroundedCholesky>(level.view, 0);
      levels_.push_back(std::move(level));
      stats_.push_back(stats);
      break;
    }

    const double budget =
        options_.tree_preconditioner_only
            ? 0.0
            : std::max(1.0, options_.offtree_fraction *
                                static_cast<double>(level.minor.num_nodes));
    level.sparsifier = build_ultra_sparsifier(level.minor, budget, rng);
    stats.off_tree_kept = level.sparsifier.off_tree_kept;
    stats.avg_stretch =
        level.sparsifier.total_stretch /
        std::max<double>(1.0, static_cast<double>(level.minor.edges.size()));
    level.elim = eliminate_degree_le2(level.sparsifier.sparsifier);
    stats.chain_hops = level.elim.max_chain_hops;

    const MinorGraph next = level.elim.schur;
    stats_.push_back(stats);
    levels_.push_back(std::move(level));
    // Guard against a stalled chain: if elimination failed to shrink the
    // graph meaningfully, let the next iteration bottom out in Cholesky.
    if (next.num_nodes + 2 >= current.num_nodes) {
      Level base_level;
      base_level.minor = next;
      base_level.view = base_level.minor.as_graph();
      base_level.csr.rebuild(base_level.view);
      base_level.is_base = true;
      base_level.base_solver =
          std::make_unique<GroundedCholesky>(base_level.view, 0);
      LevelStats base_stats;
      base_stats.nodes = next.num_nodes;
      base_stats.edges = next.edges.size();
      base_stats.host_congestion = next.host_congestion(g.num_nodes());
      base_stats.is_base = true;
      stats_.push_back(base_stats);
      levels_.push_back(std::move(base_level));
      break;
    }
    current = next;
  }
  DLS_ASSERT(levels_.back().is_base, "chain must terminate in a base level");
}

void DistributedLaplacianSolver::warm_instances() {
  // Natural first-use order of a sequential solve: the global inner-product
  // instance is touched first (the ‖b‖ dot), and — because the initial
  // preconditioner application descends to the base case before any
  // minor-level matvec runs — matvec instances are first touched on the
  // recursion unwind, deepest non-base level first. Measurement is the only
  // rng-consuming, oracle-mutating step of a solve, so matching that order
  // exactly keeps the oracle's rng stream (and therefore every measured
  // cost) identical to what N sequential solves would have produced. The
  // base level's matvec instance is deliberately NOT warmed: a sequential
  // solve never aggregates it (the base case gathers and solves locally).
  ScopedSpan span(Tracer::ambient(), "solver/warm-instances",
                  SpanKind::kPhase);
  oracle_.warm(global_instance_);
  for (std::size_t l = levels_.size() - 1; l-- > 1;) {
    if (levels_[l].has_matvec_instance) {
      oracle_.warm(levels_[l].matvec_instance);
    }
  }
}

std::size_t DistributedLaplacianSolver::approx_state_bytes() const {
  const auto minor_bytes = [](const MinorGraph& m) {
    std::size_t b = sizeof(MinorGraph) + m.host.size() * sizeof(NodeId);
    for (const MinorEdge& e : m.edges) {
      b += sizeof(MinorEdge) + e.g_path.size() * sizeof(NodeId);
    }
    return b;
  };
  const auto graph_bytes = [](const Graph& g) {
    return sizeof(Graph) + g.num_edges() * sizeof(Edge) +
           2 * g.num_edges() * sizeof(Adjacency);
  };
  std::size_t bytes = sizeof(*this);
  for (const Level& lv : levels_) {
    bytes += minor_bytes(lv.minor) + graph_bytes(lv.view) +
             minor_bytes(lv.sparsifier.sparsifier) +
             lv.sparsifier.source_edges.size() *
                 (sizeof(EdgeId) + sizeof(double)) +
             lv.elim.steps.size() * sizeof(EliminationStep) +
             minor_bytes(lv.elim.schur);
    for (const auto& vals : lv.matvec_values) {
      bytes += vals.size() * sizeof(double);
    }
    if (lv.base_solver != nullptr) {
      // Dense grounded factor: n×n lower triangle stored square.
      bytes += lv.minor.num_nodes * lv.minor.num_nodes * sizeof(double);
    }
  }
  return bytes;
}

std::vector<EdgeId> DistributedLaplacianSolver::level0_tree_edges() const {
  std::vector<EdgeId> edges;
  const Level& lv = levels_.front();
  if (lv.is_base) return edges;
  const UltraSparsifier& sp = lv.sparsifier;
  edges.reserve(sp.tree_edge_indices.size());
  // Level 0 is the identity minor, so a sparsifier source edge IS the graph
  // edge id.
  for (const std::size_t idx : sp.tree_edge_indices) {
    edges.push_back(sp.source_edges[idx]);
  }
  return edges;
}

void DistributedLaplacianSolver::refresh_operator_weights() {
  Level& lv = levels_.front();
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(lv.minor.edges.size() == g.num_edges(),
              "level-0 minor out of sync with the graph");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    lv.minor.edges[e].weight = g.edge(e).weight;
  }
  lv.view = lv.minor.as_graph();
  lv.csr.refresh_weights(lv.view);
  if (lv.is_base) {
    lv.base_solver = std::make_unique<GroundedCholesky>(lv.view, 0);
  }
}

namespace {

/// Weight-blind structural equality: same nodes, hosts, endpoints, and host
/// paths. The reweight sweep commits only when every level's structure is
/// preserved, so the measured matvec PA instances (which depend on structure
/// alone) stay valid.
bool same_minor_structure(const MinorGraph& a, const MinorGraph& b) {
  if (a.num_nodes != b.num_nodes || a.host != b.host ||
      a.edges.size() != b.edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].u != b.edges[i].u || a.edges[i].v != b.edges[i].v ||
        a.edges[i].g_path != b.edges[i].g_path) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool DistributedLaplacianSolver::reweight_chain_from_graph() {
  const Graph& g = oracle_.graph();
  struct Candidate {
    MinorGraph minor;
    Graph view;
    MinorGraph sparsifier;  // non-base levels
    EliminationResult elim;  // non-base levels
    std::unique_ptr<GroundedCholesky> base;  // base level
  };
  std::vector<Candidate> cands(levels_.size());

  // Phase 1: derive every level's new numerics into temporaries, validating
  // structure as we go. Nothing below mutates the solver, so a mismatch (or
  // an exception) leaves the chain exactly as it was.
  MinorGraph current = levels_.front().minor;
  if (current.edges.size() != g.num_edges()) return false;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    current.edges[e].weight = g.edge(e).weight;
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Level& lv = levels_[l];
    if (!same_minor_structure(current, lv.minor)) return false;
    cands[l].minor = current;
    cands[l].view = cands[l].minor.as_graph();
    if (lv.is_base) {
      cands[l].base = std::make_unique<GroundedCholesky>(cands[l].view, 0);
      break;
    }
    const UltraSparsifier& sp = lv.sparsifier;
    if (sp.source_edges.size() != sp.sparsifier.edges.size() ||
        sp.reweight_factors.size() != sp.sparsifier.edges.size()) {
      return false;
    }
    MinorGraph respars = sp.sparsifier;
    for (std::size_t i = 0; i < respars.edges.size(); ++i) {
      respars.edges[i].weight =
          current.edges[sp.source_edges[i]].weight * sp.reweight_factors[i];
    }
    EliminationResult elim = eliminate_degree_le2(respars);
    if (l + 1 >= levels_.size() ||
        !same_minor_structure(elim.schur, levels_[l + 1].minor)) {
      return false;
    }
    cands[l].sparsifier = std::move(respars);
    current = elim.schur;
    cands[l].elim = std::move(elim);
  }

  // Phase 2: commit — moves plus an in-place CSR weight refresh (structure
  // was validated identical above, so the cheap path applies; it allocates
  // nothing and cannot throw past its size checks).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& lv = levels_[l];
    lv.minor = std::move(cands[l].minor);
    lv.view = std::move(cands[l].view);
    lv.csr.refresh_weights(lv.view);
    if (lv.is_base) {
      lv.base_solver = std::move(cands[l].base);
      break;
    }
    lv.sparsifier.sparsifier = std::move(cands[l].sparsifier);
    lv.elim = std::move(cands[l].elim);
  }
  return true;
}

void DistributedLaplacianSolver::ctx_charge_aggregate(
    SolveContext& ctx, CongestedPaOracle::InstanceId instance) {
  if (ctx.pa_counts != nullptr) ++(*ctx.pa_counts)[instance];
  if (ctx.shared()) {
    oracle_.charge_aggregate(instance);
    return;
  }
  oracle_.charge_aggregate_into(instance, *ctx.ledger, ctx.pa_calls);
}

void DistributedLaplacianSolver::apply_matvec_into(SolveContext& ctx,
                                                   std::size_t level,
                                                   const Vec& x, Vec& y) {
  Level& lv = levels_[level];
  if (level == 0) {
    ctx_ledger(ctx).charge_local(1, "solver/matvec-L0");
  } else if (lv.has_matvec_instance) {
    ctx_charge_aggregate(ctx, lv.matvec_instance);
  }
  lv.csr.apply(x, y);
}

double DistributedLaplacianSolver::charged_dot(SolveContext& ctx, const Vec& a,
                                               const Vec& b) {
  ctx_charge_aggregate(ctx, global_instance_);
  return dot(a, b);
}

void DistributedLaplacianSolver::apply_preconditioner_into(
    SolveContext& ctx, std::size_t level, const Vec& r, Vec& z_out,
    SolveWorkspace& ws) {
  Level& lv = levels_[level];
  DLS_ASSERT(!lv.is_base, "preconditioner requested at base level");
  // Forward-eliminate the rhs onto the Schur system, solve the next level
  // crudely, back-substitute. The sweeps are local chains of the spliced
  // paths; charge the longest chain once per direction.
  if (lv.elim.max_chain_hops > 0) {
    ctx_ledger(ctx).charge_local(lv.elim.max_chain_hops,
                                 "solver/elim-forward");
  }
  WorkspaceLease work = ws.acquire_scratch(0);
  WorkspaceLease reduced = ws.acquire_scratch(0);
  WorkspaceLease schur_x = ws.acquire_scratch(0);
  WorkspaceLease b_at_elim = ws.acquire_scratch(0);
  lv.elim.forward_rhs_into(r, *work, *reduced);
  project_mean_zero(*reduced);
  std::size_t inner_iters = 0;
  solve_level(ctx, level + 1, *reduced, options_.inner_tolerance,
              options_.inner_iterations, *schur_x, &inner_iters);
  if (lv.elim.max_chain_hops > 0) {
    ctx_ledger(ctx).charge_local(lv.elim.max_chain_hops,
                                 "solver/elim-backward");
  }
  lv.elim.backward_solution_into(*schur_x, r, *work, *b_at_elim, z_out);
  project_mean_zero(z_out);
}

void DistributedLaplacianSolver::solve_level(SolveContext& ctx,
                                             std::size_t level, const Vec& b,
                                             double tol, std::size_t max_iter,
                                             Vec& x_out,
                                             std::size_t* iterations_out,
                                             std::vector<double>* history,
                                             CheckpointManager* ckpt,
                                             NumericalWatchdog* wd,
                                             const SolverCheckpoint* resume) {
  Level& lv = levels_[level];
  SolveWorkspace& ws = ctx_ws(ctx);
  if (iterations_out != nullptr) *iterations_out = 0;
  Tracer* tracer = Tracer::ambient();
  if (lv.is_base) {
    ScopedSpan span(tracer, "solver/base-case", SpanKind::kLevel);
    span.counter("level", level);
    // Gather the base system's rhs to a leader, solve locally, scatter.
    ctx_ledger(ctx).charge_local(
        2 * (lv.minor.num_nodes + base_transfer_rounds_), "solver/base-case");
    WorkspaceLease rhs = ws.acquire_scratch(0);
    *rhs = b;
    project_mean_zero(*rhs);
    lv.base_solver->solve_into(*rhs, x_out, ws);
    return;
  }
  ScopedSpan level_span(tracer, "solver/level", SpanKind::kLevel);
  level_span.counter("level", level);

  // Flexible PCG (Polak–Ribière beta) — tolerant of the slightly nonlinear
  // preconditioner formed by crude inner solves. The recurrence vectors are
  // leases: after the first outer iteration has sized every buffer the loop
  // touches the heap zero times (the zero-allocation contract the kernels
  // test asserts, docs/KERNELS.md).
  const std::size_t n = lv.minor.num_nodes;
  WorkspaceLease rhs_l = ws.acquire_scratch(0);
  Vec& rhs = *rhs_l;
  rhs = b;
  project_mean_zero(rhs);
  x_out.assign(n, 0.0);
  const double b_norm = std::sqrt(charged_dot(ctx, rhs, rhs));
  if (b_norm == 0.0) return;
  WorkspaceLease r_l = ws.acquire_scratch(n);
  WorkspaceLease z_l = ws.acquire_scratch(n);
  WorkspaceLease p_l = ws.acquire_scratch(n);
  WorkspaceLease r_prev_l = ws.acquire_scratch(n);
  WorkspaceLease ap_l = ws.acquire_scratch(n);
  WorkspaceLease dr_l = ws.acquire_scratch(n);
  Vec& r = *r_l;
  Vec& z = *z_l;
  Vec& p = *p_l;
  Vec& r_prev = *r_prev_l;
  Vec& ap = *ap_l;
  Vec& dr = *dr_l;
  double rz = 0.0;
  std::size_t start_it = 0;
  if (resume != nullptr) {
    // Mid-recurrence restart from a snapshot: the recurrence state is copied
    // back verbatim, so the resumed trajectory is the one the snapshot froze.
    x_out = resume->x;
    r = resume->r;
    r_prev = resume->r_prev;
    p = resume->p;
    z = resume->z;
    rz = resume->rz;
    start_it = resume->iteration;
    if (iterations_out != nullptr) *iterations_out = start_it;
    if (history != nullptr) *history = resume->residual_history;
  } else {
    r = rhs;
    apply_preconditioner_into(ctx, level, r, z, ws);
    p = z;
    rz = charged_dot(ctx, r, z);
    r_prev = r;
  }
  // Watchdog remediation: recompute the true residual from the current
  // iterate (fully charged — the remediation matvec is real work) and reset
  // the search direction to preconditioned steepest descent. A poisoned
  // iterate rewinds to zero. (`ap` doubles as the matvec temp; the loop top
  // overwrites it before its next use.)
  const auto pcg_restart = [&](WatchdogSignal signal) {
    apply_matvec_into(ctx, level, x_out, ap);
    project_mean_zero(ap);
    if (!all_finite(ap) || !all_finite(x_out)) {
      x_out.assign(n, 0.0);
      ap.assign(n, 0.0);
    }
    sub_into(rhs, ap, r);
    apply_preconditioner_into(ctx, level, r, z, ws);
    p = z;
    rz = charged_dot(ctx, r, z);
    r_prev = r;
    wd->reset_residual_tracking();
    RecoveryEvent event;
    event.action = RecoveryAction::kWatchdogRestart;
    event.subject = level;
    event.attempt = static_cast<std::uint32_t>(wd->report().restarts);
    event.detail = to_string(signal);
    ctx_ledger(ctx).record_recovery(std::move(event));
  };
  for (std::size_t it = start_it; it < max_iter; ++it) {
    // One span per *outer* PCG iteration; inner (recursive) solves are
    // covered by their level span, so the trace stays proportional to the
    // hierarchy, not to the product of all inner iteration counts.
    ScopedSpan iter_span(level == 0 ? tracer : nullptr,
                         "solver/outer-iteration", SpanKind::kIteration);
    iter_span.counter("iteration", it);
    apply_matvec_into(ctx, level, p, ap);
    project_mean_zero(ap);
    if (wd != nullptr &&
        wd->check_vector(ap, it) != WatchdogSignal::kNone) {
      if (!wd->allow_restart()) break;
      pcg_restart(WatchdogSignal::kNonFiniteVector);
      continue;
    }
    const double pap = charged_dot(ctx, p, ap);
    if (wd != nullptr && wd->check_scalar(pap, it) != WatchdogSignal::kNone) {
      if (!wd->allow_restart()) break;
      pcg_restart(WatchdogSignal::kNonFiniteScalar);
      continue;
    }
    // The curvature pᵀAp divides the step; a non-positive or vanishing value
    // (relative to rz) means the recurrence broke down. Under a watchdog that
    // is a typed kTinyDenominator restart — never a silent break that leaves
    // a stale iterate unreported. Inner (un-watched) solves keep the historic
    // silent break: they are crude by design and their caller re-residuals.
    if (wd != nullptr) {
      const WatchdogSignal signal = wd->check_denominator(rz, pap, it);
      if (signal != WatchdogSignal::kNone) {
        if (!wd->allow_restart()) break;
        pcg_restart(signal);
        continue;
      }
    } else if (pap <= 0.0) {
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x_out);
    r_prev = r;
    // Fused residual update + norm: bit-identical to axpy then dot (the
    // charge for the norm's PA call lands right after, as it always did).
    const double rr = axpy_dot(-alpha, ap, r);
    if (iterations_out != nullptr) *iterations_out = it + 1;
    ctx_charge_aggregate(ctx, global_instance_);
    const double rel = std::sqrt(rr) / b_norm;
    if (history != nullptr) history->push_back(rel);
    if (rel <= tol) break;
    if (wd != nullptr) {
      const WatchdogSignal signal = wd->observe_residual(rel, it);
      if (signal != WatchdogSignal::kNone) {
        if (!wd->allow_restart()) break;
        pcg_restart(signal);
        continue;
      }
    }
    if (ckpt != nullptr && ckpt->due(it + 1)) {
      // One local round: every node stashes its own coordinates of the
      // recurrence state. Recorded so the ledger explains the extra rounds.
      ctx_ledger(ctx).charge_local(1, "solver/checkpoint");
      SolverCheckpoint snapshot;
      snapshot.iteration = it + 1;
      snapshot.x = x_out;
      snapshot.r = r;
      snapshot.r_prev = r_prev;
      snapshot.p = p;
      snapshot.z = z;
      snapshot.rz = rz;
      if (history != nullptr) snapshot.residual_history = *history;
      ckpt->save(std::move(snapshot));
      RecoveryEvent event;
      event.action = RecoveryAction::kCheckpointSave;
      event.subject = level;
      event.attempt = static_cast<std::uint32_t>(ckpt->saves());
      event.rounds_lost = 0;
      event.detail = "outer iteration " + std::to_string(it + 1);
      ctx_ledger(ctx).record_recovery(std::move(event));
    }
    apply_preconditioner_into(ctx, level, r, z, ws);
    // Polak–Ribière: beta = zᵀ(r − r_prev) / rzₖ. The rz division is typed
    // post-hoc: a vanishing rz blows |beta| up and observe_beta raises
    // kBetaExplosion, so no silent-division path exists here either. (The
    // dot is still skipped when rz == 0 exactly, as the charging always did.)
    sub_into(r, r_prev, dr);
    double beta = rz == 0.0 ? 0.0 : charged_dot(ctx, z, dr) / rz;
    if (wd != nullptr &&
        wd->observe_beta(beta, it) != WatchdogSignal::kNone) {
      if (!wd->allow_restart()) break;
      pcg_restart(WatchdogSignal::kBetaExplosion);
      continue;
    }
    rz = charged_dot(ctx, r, z);
    xpay(z, beta, p);
  }
}

void DistributedLaplacianSolver::solve_top_chebyshev(
    SolveContext& ctx, const Vec& b, Vec& x_out, std::size_t* iterations_out,
    std::vector<double>* history, NumericalWatchdog* wd) {
  const std::size_t n = levels_[0].minor.num_nodes;
  SolveWorkspace& ws = ctx_ws(ctx);
  Tracer* tracer = Tracer::ambient();
  ScopedSpan cheb_span(tracer, "solver/chebyshev", SpanKind::kLevel);
  cheb_span.counter("level", 0);
  WorkspaceLease rhs_l = ws.acquire_scratch(0);
  Vec& rhs = *rhs_l;
  rhs = b;
  project_mean_zero(rhs);
  Vec& x = x_out;
  x.assign(n, 0.0);
  const double b_norm = std::sqrt(charged_dot(ctx, rhs, rhs));
  if (iterations_out != nullptr) *iterations_out = 0;
  if (b_norm == 0.0) return;

  WorkspaceLease r_l = ws.acquire_scratch(n);
  WorkspaceLease z_l = ws.acquire_scratch(n);
  WorkspaceLease p_l = ws.acquire_scratch(n);
  WorkspaceLease ax_l = ws.acquire_scratch(n);  // matvec temp
  Vec& r = *r_l;
  Vec& z = *z_l;
  Vec& p = *p_l;
  Vec& ax = *ax_l;

  // Power iteration on M⁻¹L for λ_max (every apply is fully charged); the
  // chain is built so that λ_min(M⁻¹L) ≳ 1, and we pad both ends for safety.
  const auto apply_ml_into = [&](const Vec& v, Vec& out) {
    apply_matvec_into(ctx, 0, v, ax);
    project_mean_zero(ax);
    apply_preconditioner_into(ctx, 0, ax, out, ws);
    project_mean_zero(out);
  };
  // `seed_norm` is passed in (always already known from a prior charged dot)
  // so the clean path charges exactly the rounds it did before the watchdog.
  const auto estimate_lambda_max = [&](const Vec& seed, double seed_norm) {
    ScopedSpan span(tracer, "solver/power-iteration", SpanKind::kPhase);
    double lambda_max = 1.0;
    if (seed_norm <= 0) return lambda_max;
    WorkspaceLease v_l = ws.acquire_scratch(0);
    WorkspaceLease w_l = ws.acquire_scratch(n);
    Vec& v = *v_l;
    Vec& w = *w_l;
    v = seed;
    scale(v, 1.0 / seed_norm);
    for (std::size_t it = 0; it < options_.power_iterations; ++it) {
      apply_ml_into(v, w);
      const double norm = std::sqrt(charged_dot(ctx, w, w));
      if (norm <= 0) break;
      lambda_max = norm;
      scale(w, 1.0 / norm);
      v.swap(w);
    }
    return lambda_max;
  };
  // Session eigenbound reuse (opt-in): a later batch slot adopts the λ_max a
  // previous slot estimated, skipping its own charged power iteration.
  double hi;
  if (ctx.reuse_hi != nullptr) {
    hi = *ctx.reuse_hi;
  } else if (options_.rhs_independent_eigenbounds) {
    // Operator-only estimate: a fixed splitmix-hashed mean-zero seed vector,
    // so every rhs lands on the same bound and reuse stays bit-identical.
    // The seed's norm is one extra charged dot (the rhs path knows ‖b‖).
    Vec seed(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t h = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ull;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
      h ^= h >> 31;
      seed[i] = static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
    }
    project_mean_zero(seed);
    const double seed_norm = std::sqrt(charged_dot(ctx, seed, seed));
    hi = 1.5 * std::max(estimate_lambda_max(seed, seed_norm), 1.0);
  } else {
    hi = 1.5 * std::max(estimate_lambda_max(rhs, b_norm), 1.0);
  }
  if (ctx.publish_hi != nullptr) *ctx.publish_hi = hi;
  double lo = 0.25;  // the chain keeps M ⪰ c·L with modest c
  double theta = 0.5 * (hi + lo);
  double delta = 0.5 * (hi - lo);

  r = rhs;
  apply_preconditioner_into(ctx, 0, r, z, ws);
  p.assign(n, 0.0);
  double alpha = 0.0, beta = 0.0;
  // Chebyshev's coefficients are position-dependent, so a rebound must rewind
  // `k` (iterations since last restart) while `it` keeps counting the budget.
  std::size_t k = 0;
  // Divergence remediation: the eigenbound interval missed part of the
  // spectrum (the polynomial amplifies there instead of damping), so
  // re-estimate λ_max by charged power iteration on the *current* residual —
  // the direction that exposed the miss — pad wider, and restart.
  const auto rebound = [&](WatchdogSignal signal, const Vec& seed,
                           double seed_norm) {
    hi = std::max(2.0 * hi, 1.5 * estimate_lambda_max(seed, seed_norm));
    // Persist the widened bound: a session (or cache) that reuses eigenbounds
    // must adopt the rebounded estimate, not re-diverge on the stale one.
    if (ctx.publish_hi != nullptr) *ctx.publish_hi = hi;
    lo *= 0.5;
    theta = 0.5 * (hi + lo);
    delta = 0.5 * (hi - lo);
    x.assign(n, 0.0);
    r = rhs;
    apply_preconditioner_into(ctx, 0, r, z, ws);
    project_mean_zero(z);
    p.assign(n, 0.0);
    alpha = 0.0;
    beta = 0.0;
    k = 0;
    wd->note_rebound();
    wd->reset_residual_tracking();
    RecoveryEvent event;
    event.action = RecoveryAction::kWatchdogRebound;
    event.subject = 0;
    event.attempt = static_cast<std::uint32_t>(wd->report().rebounds);
    event.detail = to_string(signal);
    ctx_ledger(ctx).record_recovery(std::move(event));
  };
  for (std::size_t it = 0; it < options_.max_outer_iterations; ++it) {
    ScopedSpan iter_span(tracer, "solver/outer-iteration",
                         SpanKind::kIteration);
    iter_span.counter("iteration", it);
    if (k == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else {
      beta = (k == 1) ? 0.5 * (delta * alpha) * (delta * alpha)
                      : (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      xpay(z, beta, p);
    }
    ++k;
    axpy(alpha, p, x);
    apply_matvec_into(ctx, 0, x, ax);
    project_mean_zero(ax);
    sub_into(rhs, ax, r);
    if (iterations_out != nullptr) *iterations_out = it + 1;
    if (wd != nullptr && wd->check_vector(r, it) != WatchdogSignal::kNone) {
      if (!wd->allow_restart()) break;
      rebound(WatchdogSignal::kNonFiniteVector, rhs, b_norm);
      continue;
    }
    const double rel = std::sqrt(charged_dot(ctx, r, r)) / b_norm;
    if (history != nullptr) history->push_back(rel);
    if (rel <= options_.tolerance) break;
    if (wd != nullptr) {
      const WatchdogSignal signal = wd->observe_residual(rel, it);
      if (signal != WatchdogSignal::kNone) {
        if (!wd->allow_restart()) break;
        rebound(signal, r, rel * b_norm);
        continue;
      }
    }
    apply_preconditioner_into(ctx, 0, r, z, ws);
    project_mean_zero(z);
  }
}

LaplacianSolveReport DistributedLaplacianSolver::solve(const Vec& b) {
  SolveContext ctx;  // shared accounting: the historical single-RHS path
  return solve_in_context(b, ctx);
}

void DistributedLaplacianSolver::reset_recovery_attribution() {
  for (LevelStats& s : stats_) {
    s.pa_retries = 0;
    s.pa_rebuilds = 0;
    s.pa_degradations = 0;
    s.checkpoints_restored = 0;
  }
}

void DistributedLaplacianSolver::fold_recovery_event(const RecoveryEvent& e,
                                                     RecoveryCounters& counters,
                                                     bool update_stats) {
  counters.rounds_lost += e.rounds_lost;
  // Attribute to a chain level: supervisor events carry the PA instance id,
  // solver events the level index directly (only instance-subject actions
  // below consult the mapping, so the overload is unambiguous).
  std::size_t level = 0;  // global instance and solver events → level 0
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].has_matvec_instance &&
        levels_[l].matvec_instance == e.subject) {
      level = l;
      break;
    }
  }
  switch (e.action) {
    case RecoveryAction::kRetry:
      ++counters.retries;
      if (update_stats && level < stats_.size()) ++stats_[level].pa_retries;
      break;
    case RecoveryAction::kRebuild:
      ++counters.rebuilds;
      if (update_stats && level < stats_.size()) ++stats_[level].pa_rebuilds;
      break;
    case RecoveryAction::kDegrade:
      ++counters.degradations;
      if (update_stats && level < stats_.size()) {
        ++stats_[level].pa_degradations;
      }
      break;
    case RecoveryAction::kCheckpointSave:
      ++counters.checkpoints_saved;
      break;
    case RecoveryAction::kCheckpointRestore:
      ++counters.checkpoints_restored;
      if (update_stats && !stats_.empty()) ++stats_[0].checkpoints_restored;
      break;
    case RecoveryAction::kWatchdogRestart:
      ++counters.watchdog_restarts;
      break;
    case RecoveryAction::kWatchdogRefine:
      ++counters.watchdog_refinements;
      break;
    case RecoveryAction::kWatchdogRebound:
      ++counters.watchdog_rebounds;
      break;
    case RecoveryAction::kCertificateResolve:
      ++counters.certificate_resolves;
      break;
    case RecoveryAction::kAbort:
      break;  // reflected in report.degraded, not a counter
  }
}

void DistributedLaplacianSolver::charge_residual_certificate() {
  // One local exchange computes the per-node residual entries, one global
  // aggregation over the prepared 1-congested instance lets every node learn
  // the norm — the same shape as solve()'s internal certificate, charged
  // under verify/ so certificate traffic is separable in the ledger.
  oracle_.ledger().charge_local(1, "verify/residual-certificate");
  SolveContext ctx;
  ctx_charge_aggregate(ctx, global_instance_);
}

LaplacianSolveReport DistributedLaplacianSolver::solve_in_context(
    const Vec& b, SolveContext& ctx) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(b.size() == g.num_nodes(), "rhs size mismatch");
  // Any rhs is accepted: the component of b along the all-ones kernel of L is
  // unsolvable, so it is projected away up front and the solve targets Πb
  // (for b already in range(L) this is the identity up to roundoff). The
  // reported residual is relative to Πb. A zero (or constant) rhs short
  // circuits the iteration but still produces a fully populated report:
  // converged, zero residual, zero iterations, and the rounds the degenerate
  // path actually charged (the ‖b‖ inner product and the certificate).
  Vec rhs = b;
  project_mean_zero(rhs);

  RoundLedger& ledger = ctx_ledger(ctx);
  // One span per solve, clocked on this context's ledger (the oracle's
  // shared ledger, or the slot's private ledger on batched paths). The clock
  // push dedups against an identical outer clock, so a wrapping test or
  // session scope on the same ledger shares this timeline.
  Tracer* tracer = Tracer::ambient();
  ClockScope trace_clock(tracer, ledger_clock(ledger));
  ScopedSpan solve_span(tracer, "solver/solve", SpanKind::kSolve);
  solve_span.counter("levels", levels_.size());
  const std::uint64_t local_before = ledger.total_local();
  const std::uint64_t global_before = ledger.total_global();
  const std::uint64_t hybrid_before = ledger.total_hybrid();
  const std::uint64_t calls_before =
      ctx.shared() ? oracle_.pa_calls() : ctx.pa_calls;
  const std::size_t events_before = ledger.recovery_events().size();
  // Per-solve attribution: level_stats() snapshots the most recent call, it
  // does not accumulate across calls (batch slots leave stats_ to the
  // session, which owns the whole-batch reset + attribution).
  if (ctx.shared()) reset_recovery_attribution();

  LaplacianSolveReport report;
  NumericalWatchdog wd(options_.watchdog);
  CheckpointManager ckpt(options_.checkpoint);
  std::size_t iterations = 0;
  const SolverCheckpoint* resume = nullptr;
  // Outer recovery loop: a ChaosAbortError escaping the oracle (supervisor
  // off, or its ladder capped at retry) lands here; with checkpointing on we
  // resume from the last snapshot, else the solve degrades typed. The failed
  // attempt's rounds are already on the ledger — they were charged live.
  for (;;) {
    try {
      report.residual_history.clear();
      if (options_.outer == OuterIteration::kChebyshev &&
          !levels_[0].is_base) {
        solve_top_chebyshev(ctx, rhs, report.x, &iterations,
                            &report.residual_history, &wd);
      } else {
        solve_level(ctx, 0, rhs, options_.tolerance,
                    options_.max_outer_iterations, report.x, &iterations,
                    &report.residual_history, &ckpt, &wd, resume);
      }
      break;
    } catch (const ChaosAbortError& e) {
      if (!ckpt.can_restore()) {
        RecoveryEvent event;
        event.action = RecoveryAction::kAbort;
        event.subject = 0;
        event.attempt = static_cast<std::uint32_t>(ckpt.restores());
        event.detail = e.what();
        ledger.record_recovery(std::move(event));
        DegradedResult degraded;
        degraded.tier = highest_tier(ledger);
        degraded.reason = e.what();
        degraded.completed_iterations = iterations;
        report.degraded = std::move(degraded);
        // Best partial iterate: the last snapshot if any, else zero.
        const SolverCheckpoint* last = ckpt.latest();
        report.x = last != nullptr ? last->x : Vec(g.num_nodes(), 0.0);
        if (last != nullptr) {
          report.residual_history = last->residual_history;
          iterations = last->iteration;
        } else {
          report.residual_history.clear();
          iterations = 0;
        }
        break;
      }
      const std::size_t gap = ckpt.replayed_gap(iterations);
      resume = ckpt.restore();
      RecoveryEvent event;
      event.action = RecoveryAction::kCheckpointRestore;
      event.subject = 0;
      event.attempt = static_cast<std::uint32_t>(ckpt.restores());
      event.detail = resume != nullptr
                         ? "resume from iteration " +
                               std::to_string(resume->iteration) +
                               ", replaying " + std::to_string(gap) +
                               " iterations: " + e.what()
                         : std::string("no snapshot yet — replay from "
                                       "iteration 0: ") +
                               e.what();
      ledger.record_recovery(std::move(event));
    }
  }
  report.outer_iterations = iterations;

  // Post-anomaly iterative refinement: recompute the true residual and run a
  // short corrective solve on it (fully charged, watchdog off to avoid
  // recursion). Clean solves never enter this branch.
  if (options_.watchdog.enabled && options_.watchdog.refine_on_anomaly &&
      wd.triggered() && !report.degraded.has_value() &&
      all_finite(report.x)) {
    ctx_ledger(ctx).charge_local(1, "solver/refine-residual");
    Vec res = sub(rhs, laplacian_apply(g, report.x));
    project_mean_zero(res);
    if (all_finite(res)) {
      std::size_t refine_iters = 0;
      Vec correction;
      try {
        solve_level(ctx, 0, res, options_.tolerance,
                    std::max<std::size_t>(iterations, 16), correction,
                    &refine_iters);
      } catch (const ChaosAbortError&) {
        correction.clear();  // refinement is best-effort; keep the iterate
      }
      if (!correction.empty() && all_finite(correction)) {
        axpy(1.0, correction, report.x);
        wd.note_refinement();
        RecoveryEvent event;
        event.action = RecoveryAction::kWatchdogRefine;
        event.subject = 0;
        event.attempt = static_cast<std::uint32_t>(refine_iters);
        event.detail = "post-anomaly refinement pass";
        ledger.record_recovery(std::move(event));
      }
    }
  }

  // Distributed convergence certificate: one local exchange computes the
  // residual entries, one global aggregation lets every node learn its norm.
  // On a degraded solve the certificate itself can wedge — the global
  // instance may never have measured successfully — so a certificate abort is
  // absorbed into the degraded result instead of escaping as an exception;
  // the residual below is then local bookkeeping, not a distributed
  // certificate, and `converged` stays false.
  try {
    ctx_ledger(ctx).charge_local(1, "solver/residual-check");
    ctx_charge_aggregate(ctx, global_instance_);
  } catch (const ChaosAbortError& e) {
    if (!report.degraded.has_value()) {
      DegradedResult degraded;
      degraded.tier = highest_tier(ledger);
      degraded.reason =
          std::string("convergence certificate failed: ") + e.what();
      degraded.completed_iterations = iterations;
      report.degraded = std::move(degraded);
    }
  }
  Vec residual = sub(rhs, laplacian_apply(g, report.x));
  project_mean_zero(residual);
  const double b_norm = norm2(rhs);
  report.relative_residual = b_norm > 0 ? norm2(residual) / b_norm : 0.0;
  report.converged = !report.degraded.has_value() &&
                     report.relative_residual <= 2.0 * options_.tolerance;
  if (report.degraded.has_value()) {
    report.degraded->partial_residual = report.relative_residual;
  }
  report.pa_calls =
      (ctx.shared() ? oracle_.pa_calls() : ctx.pa_calls) - calls_before;
  report.local_rounds = ledger.total_local() - local_before;
  report.global_rounds = ledger.total_global() - global_before;
  report.hybrid_rounds = ledger.total_hybrid() - hybrid_before;
  report.watchdog = wd.report();

  // Fold this call's recovery events into counters; shared contexts also
  // attribute them to chain levels (batch slots defer that to the session).
  const auto& events = ledger.recovery_events();
  for (std::size_t i = events_before; i < events.size(); ++i) {
    fold_recovery_event(events[i], report.recovery, ctx.shared());
  }
  solve_span.counter("outer-iterations", report.outer_iterations);
  solve_span.counter("pa-calls", report.pa_calls);
  solve_span.counter("converged", report.converged ? 1 : 0);
  solve_span.counter("degraded", report.degraded.has_value() ? 1 : 0);
  solve_span.counter("recovery-events", events.size() - events_before);
  return report;
}

}  // namespace dls
