#include "laplacian/recursive_solver.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "laplacian/low_stretch_tree.hpp"

namespace dls {

DistributedLaplacianSolver::DistributedLaplacianSolver(
    CongestedPaOracle& oracle, Rng& rng, const LaplacianSolverOptions& options)
    : oracle_(oracle), options_(options) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(is_connected(g), "Laplacian solver requires a connected graph");
  DLS_REQUIRE(options_.tolerance > 0, "tolerance must be positive");

  // Global 1-congested instance used by every inner product.
  {
    PartCollection pc;
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    pc.parts.push_back(std::move(all));
    global_instance_ = oracle_.prepare(pc);
    global_values_.resize(1);
    global_values_[0].assign(g.num_nodes(), 0.0);
  }
  {
    Rng diam_rng = rng.fork();
    base_transfer_rounds_ = approx_diameter(g, diam_rng, 2);
  }

  // Build the chain.
  MinorGraph current = MinorGraph::identity(g);
  for (std::size_t depth = 0; depth < options_.max_levels; ++depth) {
    Level level;
    level.minor = current;
    level.view = level.minor.as_graph();

    LevelStats stats;
    stats.nodes = level.minor.num_nodes;
    stats.edges = level.minor.edges.size();
    stats.host_congestion = level.minor.host_congestion(g.num_nodes());

    // Prepared matvec instance for minor levels (level 0 is local exchange).
    if (depth > 0) {
      const PartCollection pc = level.minor.matvec_parts();
      if (pc.num_parts() > 0) {
        level.matvec_instance = oracle_.prepare(pc);
        level.has_matvec_instance = true;
        level.matvec_values.resize(pc.num_parts());
        for (std::size_t i = 0; i < pc.num_parts(); ++i) {
          level.matvec_values[i].assign(pc.parts[i].size(), 0.0);
        }
      }
    }

    const bool base = level.minor.num_nodes <= options_.base_size ||
                      depth + 1 == options_.max_levels;
    if (base) {
      level.is_base = true;
      stats.is_base = true;
      level.base_solver = std::make_unique<GroundedCholesky>(level.view, 0);
      levels_.push_back(std::move(level));
      stats_.push_back(stats);
      break;
    }

    const double budget =
        options_.tree_preconditioner_only
            ? 0.0
            : std::max(1.0, options_.offtree_fraction *
                                static_cast<double>(level.minor.num_nodes));
    level.sparsifier = build_ultra_sparsifier(level.minor, budget, rng);
    stats.off_tree_kept = level.sparsifier.off_tree_kept;
    stats.avg_stretch =
        level.sparsifier.total_stretch /
        std::max<double>(1.0, static_cast<double>(level.minor.edges.size()));
    level.elim = eliminate_degree_le2(level.sparsifier.sparsifier);
    stats.chain_hops = level.elim.max_chain_hops;

    const MinorGraph next = level.elim.schur;
    stats_.push_back(stats);
    levels_.push_back(std::move(level));
    // Guard against a stalled chain: if elimination failed to shrink the
    // graph meaningfully, let the next iteration bottom out in Cholesky.
    if (next.num_nodes + 2 >= current.num_nodes) {
      Level base_level;
      base_level.minor = next;
      base_level.view = base_level.minor.as_graph();
      base_level.is_base = true;
      base_level.base_solver =
          std::make_unique<GroundedCholesky>(base_level.view, 0);
      LevelStats base_stats;
      base_stats.nodes = next.num_nodes;
      base_stats.edges = next.edges.size();
      base_stats.host_congestion = next.host_congestion(g.num_nodes());
      base_stats.is_base = true;
      stats_.push_back(base_stats);
      levels_.push_back(std::move(base_level));
      break;
    }
    current = next;
  }
  DLS_ASSERT(levels_.back().is_base, "chain must terminate in a base level");
}

Vec DistributedLaplacianSolver::apply_matvec(std::size_t level, const Vec& x) {
  Level& lv = levels_[level];
  if (level == 0) {
    oracle_.charge_local_exchange("solver/matvec-L0");
  } else if (lv.has_matvec_instance) {
    oracle_.aggregate(lv.matvec_instance, lv.matvec_values,
                      AggregationMonoid::sum());
  }
  return laplacian_apply(lv.view, x);
}

double DistributedLaplacianSolver::charged_dot(const Vec& a, const Vec& b) {
  oracle_.aggregate(global_instance_, global_values_, AggregationMonoid::sum());
  return dot(a, b);
}

Vec DistributedLaplacianSolver::apply_preconditioner(std::size_t level,
                                                     const Vec& r) {
  Level& lv = levels_[level];
  DLS_ASSERT(!lv.is_base, "preconditioner requested at base level");
  // Forward-eliminate the rhs onto the Schur system, solve the next level
  // crudely, back-substitute. The sweeps are local chains of the spliced
  // paths; charge the longest chain once per direction.
  if (lv.elim.max_chain_hops > 0) {
    oracle_.ledger().charge_local(lv.elim.max_chain_hops, "solver/elim-forward");
  }
  Vec reduced = lv.elim.forward_rhs(r);
  project_mean_zero(reduced);
  std::size_t inner_iters = 0;
  Vec schur_solution =
      solve_level(level + 1, reduced, options_.inner_tolerance,
                  options_.inner_iterations, &inner_iters);
  if (lv.elim.max_chain_hops > 0) {
    oracle_.ledger().charge_local(lv.elim.max_chain_hops, "solver/elim-backward");
  }
  Vec extended = lv.elim.backward_solution(schur_solution, r);
  project_mean_zero(extended);
  return extended;
}

Vec DistributedLaplacianSolver::solve_level(std::size_t level, const Vec& b,
                                            double tol, std::size_t max_iter,
                                            std::size_t* iterations_out,
                                            std::vector<double>* history) {
  Level& lv = levels_[level];
  if (iterations_out != nullptr) *iterations_out = 0;
  if (lv.is_base) {
    // Gather the base system's rhs to a leader, solve locally, scatter.
    oracle_.ledger().charge_local(
        2 * (lv.minor.num_nodes + base_transfer_rounds_), "solver/base-case");
    Vec rhs = b;
    project_mean_zero(rhs);
    return lv.base_solver->solve(rhs);
  }

  // Flexible PCG (Polak–Ribière beta) — tolerant of the slightly nonlinear
  // preconditioner formed by crude inner solves.
  const std::size_t n = lv.minor.num_nodes;
  Vec rhs = b;
  project_mean_zero(rhs);
  Vec x(n, 0.0);
  const double b_norm = std::sqrt(charged_dot(rhs, rhs));
  if (b_norm == 0.0) return x;
  Vec r = rhs;
  Vec z = apply_preconditioner(level, r);
  Vec p = z;
  double rz = charged_dot(r, z);
  Vec r_prev = r;
  for (std::size_t it = 0; it < max_iter; ++it) {
    Vec ap = apply_matvec(level, p);
    project_mean_zero(ap);
    const double pap = charged_dot(p, ap);
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    r_prev = r;
    axpy(-alpha, ap, r);
    if (iterations_out != nullptr) *iterations_out = it + 1;
    const double rel = std::sqrt(charged_dot(r, r)) / b_norm;
    if (history != nullptr) history->push_back(rel);
    if (rel <= tol) break;
    z = apply_preconditioner(level, r);
    // Polak–Ribière: beta = zᵀ(r − r_prev) / rzₖ.
    Vec dr = sub(r, r_prev);
    const double beta = rz == 0.0 ? 0.0 : charged_dot(z, dr) / rz;
    rz = charged_dot(r, z);
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return x;
}

Vec DistributedLaplacianSolver::solve_top_chebyshev(const Vec& b,
                                                    std::size_t* iterations_out,
                                                    std::vector<double>* history) {
  const std::size_t n = levels_[0].minor.num_nodes;
  Vec rhs = b;
  project_mean_zero(rhs);
  Vec x(n, 0.0);
  const double b_norm = std::sqrt(charged_dot(rhs, rhs));
  if (iterations_out != nullptr) *iterations_out = 0;
  if (b_norm == 0.0) return x;

  // Power iteration on M⁻¹L for λ_max (every apply is fully charged); the
  // chain is built so that λ_min(M⁻¹L) ≳ 1, and we pad both ends for safety.
  const auto apply_ml = [&](const Vec& v) {
    Vec lv = apply_matvec(0, v);
    project_mean_zero(lv);
    Vec mlv = apply_preconditioner(0, lv);
    project_mean_zero(mlv);
    return mlv;
  };
  double lambda_max = 1.0;
  {
    Vec v = rhs;
    scale(v, 1.0 / b_norm);
    for (std::size_t it = 0; it < options_.power_iterations; ++it) {
      Vec w = apply_ml(v);
      const double norm = std::sqrt(charged_dot(w, w));
      if (norm <= 0) break;
      lambda_max = norm;
      scale(w, 1.0 / norm);
      v = std::move(w);
    }
  }
  const double hi = 1.5 * std::max(lambda_max, 1.0);
  const double lo = 0.25;  // the chain keeps M ⪰ c·L with modest c
  const double theta = 0.5 * (hi + lo);
  const double delta = 0.5 * (hi - lo);

  Vec r = rhs;
  Vec z = apply_preconditioner(0, r);
  Vec p(n, 0.0);
  double alpha = 0.0, beta = 0.0;
  for (std::size_t it = 0; it < options_.max_outer_iterations; ++it) {
    if (it == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else {
      beta = (it == 1) ? 0.5 * (delta * alpha) * (delta * alpha)
                       : (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    axpy(alpha, p, x);
    Vec lx = apply_matvec(0, x);
    project_mean_zero(lx);
    r = sub(rhs, lx);
    if (iterations_out != nullptr) *iterations_out = it + 1;
    const double rel = std::sqrt(charged_dot(r, r)) / b_norm;
    if (history != nullptr) history->push_back(rel);
    if (rel <= options_.tolerance) break;
    z = apply_preconditioner(0, r);
    project_mean_zero(z);
  }
  return x;
}

LaplacianSolveReport DistributedLaplacianSolver::solve(const Vec& b) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(b.size() == g.num_nodes(), "rhs size mismatch");
  DLS_REQUIRE(is_valid_rhs(b, 1e-6), "rhs has non-zero sum — not in range(L)");

  const std::uint64_t local_before = oracle_.ledger().total_local();
  const std::uint64_t global_before = oracle_.ledger().total_global();
  const std::uint64_t hybrid_before = oracle_.ledger().total_hybrid();
  const std::uint64_t calls_before = oracle_.pa_calls();

  LaplacianSolveReport report;
  std::size_t iterations = 0;
  if (options_.outer == OuterIteration::kChebyshev && !levels_[0].is_base) {
    report.x = solve_top_chebyshev(b, &iterations, &report.residual_history);
  } else {
    report.x = solve_level(0, b, options_.tolerance,
                           options_.max_outer_iterations, &iterations,
                           &report.residual_history);
  }
  report.outer_iterations = iterations;

  // Distributed convergence certificate: one local exchange computes the
  // residual entries, one global aggregation lets every node learn its norm.
  oracle_.charge_local_exchange("solver/residual-check");
  oracle_.aggregate(global_instance_, global_values_, AggregationMonoid::sum());
  Vec residual = sub(b, laplacian_apply(g, report.x));
  project_mean_zero(residual);
  Vec rhs = b;
  project_mean_zero(rhs);
  const double b_norm = norm2(rhs);
  report.relative_residual = b_norm > 0 ? norm2(residual) / b_norm : 0.0;
  report.converged = report.relative_residual <= 2.0 * options_.tolerance;
  report.pa_calls = oracle_.pa_calls() - calls_before;
  report.local_rounds = oracle_.ledger().total_local() - local_before;
  report.global_rounds = oracle_.ledger().total_global() - global_before;
  report.hybrid_rounds = oracle_.ledger().total_hybrid() - hybrid_before;
  return report;
}

}  // namespace dls
