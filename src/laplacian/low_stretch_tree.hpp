// Low-stretch spanning trees via iterated random-shift low-diameter
// decomposition (AKPW-style, with MPX-style exponential shifts) — the first
// ingredient of the [18]/KMP preconditioner chain.
//
// Each phase clusters the current contracted graph with random exponential
// start shifts (cut probability β per hop), records the intra-cluster BFS
// edges into the tree, contracts, and repeats. Expected stretch is polylog;
// `total_stretch` computes the exact stretch of the result so every
// experiment reports measured, not assumed, quality.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

struct LowStretchTreeResult {
  std::vector<EdgeId> tree_edges;
  std::uint32_t phases = 0;
};

/// Builds a spanning tree of connected g with small average stretch.
/// `beta` is the per-hop cut rate of each decomposition phase
/// (default Θ(1/log n), chosen internally when 0). On non-uniform weights
/// this dispatches to the weight-aware variant below.
LowStretchTreeResult low_stretch_spanning_tree(const Graph& g, Rng& rng,
                                               double beta = 0.0);

/// Hop-metric AKPW (ignores weights) — exposed for the E20 ablation.
LowStretchTreeResult low_stretch_spanning_tree_hops(const Graph& g, Rng& rng,
                                                    double beta = 0.0);

/// Weight-aware AKPW: edges are admitted in geometric length classes
/// (length = 1/weight, so low-resistance edges join the tree first) and
/// each class round runs the same random-shift decomposition on the
/// admitted subgraph before contracting. This is what keeps the resistive
/// stretch w_e·Σ 1/w_path small when weights span orders of magnitude.
LowStretchTreeResult low_stretch_spanning_tree_weighted(const Graph& g,
                                                        Rng& rng,
                                                        double beta = 0.0,
                                                        double class_growth = 4.0);

/// Stretch of edge e w.r.t. the tree: w_e · Σ_{f ∈ tree path(u,v)} 1/w_f.
/// Computed exactly for all edges; tree edges have stretch 1.
double total_stretch(const Graph& g, std::span<const EdgeId> tree_edges);
double average_stretch(const Graph& g, std::span<const EdgeId> tree_edges);

/// Per-edge stretch vector (index = EdgeId).
std::vector<double> edge_stretches(const Graph& g,
                                   std::span<const EdgeId> tree_edges);

}  // namespace dls
