#include "laplacian/pa_oracle.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "shortcuts/construction.hpp"
#include "shortcuts/partwise_aggregation.hpp"

namespace dls {

CongestedPaOracle::InstanceId CongestedPaOracle::prepare(const PartCollection& pc) {
  DLS_REQUIRE(is_valid_part_collection(graph_, pc), "invalid part collection");
  instances_.push_back({pc, false, {}});
  return instances_.size() - 1;
}

std::vector<double> CongestedPaOracle::aggregate(
    InstanceId instance, const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid) {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  Prepared& prepared = instances_[instance];
  DLS_REQUIRE(values.size() == prepared.pc.num_parts(), "values mismatch");
  if (!prepared.measured) {
    measuring_instance_ = instance;
    prepared.cost = measure(prepared.pc);
    prepared.measured = true;
  }
  ++pa_calls_;
  if (prepared.cost.local_rounds > 0) {
    ledger_.charge_local(prepared.cost.local_rounds, name() + "-pa",
                         prepared.cost.congestion);
  }
  if (prepared.cost.global_rounds > 0) {
    ledger_.charge_global(prepared.cost.global_rounds, name() + "-pa",
                          prepared.cost.congestion);
  }
  // Results equal the sequential fold (the distributed protocols were
  // validated against it once at measure() time and in the test suite).
  std::vector<double> results(prepared.pc.num_parts(), monoid.identity);
  for (std::size_t i = 0; i < prepared.pc.num_parts(); ++i) {
    DLS_REQUIRE(values[i].size() == prepared.pc.parts[i].size(),
                "values size mismatch");
    for (double v : values[i]) results[i] = monoid.op(results[i], v);
  }
  return results;
}

std::vector<double> CongestedPaOracle::aggregate_once(
    const PartCollection& pc, const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid) {
  return aggregate(prepare(pc), values, monoid);
}

void CongestedPaOracle::charge_local_exchange(const std::string& label) {
  ledger_.charge_local(1, label);
}

namespace {

/// Neutral input values for a measurement run (cost is value-oblivious).
std::vector<std::vector<double>> unit_values(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  return values;
}

}  // namespace

CongestedPaOracle::Measured ShortcutPaOracle::measure(const PartCollection& pc) {
  CongestedPaOptions options;
  options.model = model_;
  options.policy = policy_;
  options.faults = faults_;
  const CongestedPaOutcome outcome = solve_congested_pa(
      graph(), pc, unit_values(pc), AggregationMonoid::sum(), rng_, options);
  // Sanity: the distributed run must agree with the fold.
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    DLS_ASSERT(outcome.results[i] == static_cast<double>(pc.parts[i].size()),
               "shortcut PA run disagrees with sequential fold");
  }
  PhaseCongestion congestion;
  for (const LedgerEntry& e : outcome.ledger.entries()) {
    congestion = merge_phases(congestion, e.congestion);
  }
  return {outcome.total_rounds, 0, congestion};
}

CongestedPaOracle::Measured NccPaOracle::measure(const PartCollection& pc) {
  std::vector<NccPart> parts(pc.num_parts());
  const auto values = unit_values(pc);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    parts[i].members = pc.parts[i];
    parts[i].values = values[i];
  }
  const NccAggregationOutcome outcome = ncc_partwise_aggregate(
      graph().num_nodes(), parts, AggregationMonoid::sum(), rng_, capacity_);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    DLS_ASSERT(outcome.results[i] == static_cast<double>(pc.parts[i].size()),
               "NCC PA run disagrees with sequential fold");
  }
  return {0, outcome.rounds};
}

CongestedPaOracle::Measured BaselinePaOracle::measure(const PartCollection& pc) {
  // Greedy batching into disjoint sub-collections (Observation 14 shows the
  // number of batches can be Θ(#parts); that is the point of this baseline).
  std::vector<char> assigned(pc.num_parts(), 0);
  std::size_t remaining = pc.num_parts();
  std::uint64_t total_rounds = 0;
  PhaseCongestion congestion;
  // Global BFS tree reused as H_i for every part of every batch.
  Rng tree_rng = rng_.fork();
  const RootedSpanningTree tree = centered_bfs_tree(graph(), tree_rng);
  std::vector<EdgeId> tree_edges;
  for (NodeId v = 0; v < graph().num_nodes(); ++v) {
    if (tree.parent_edge[v] != kInvalidEdge) tree_edges.push_back(tree.parent_edge[v]);
  }
  while (remaining > 0) {
    std::vector<char> used(graph().num_nodes(), 0);
    PartCollection batch;
    std::vector<std::vector<double>> batch_values;
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      if (assigned[i]) continue;
      const bool clash = std::any_of(pc.parts[i].begin(), pc.parts[i].end(),
                                     [&](NodeId v) { return used[v] != 0; });
      if (clash) continue;
      for (NodeId v : pc.parts[i]) used[v] = 1;
      batch.parts.push_back(pc.parts[i]);
      batch_values.push_back(std::vector<double>(pc.parts[i].size(), 1.0));
      assigned[i] = 1;
      --remaining;
    }
    DLS_ASSERT(!batch.parts.empty(), "baseline batching stalled");
    Shortcut shortcut;
    shortcut.h_edges.assign(batch.parts.size(), tree_edges);
    const PartwiseAggregationOutcome pa = solve_partwise_aggregation(
        graph(), batch, batch_values, AggregationMonoid::sum(), shortcut, rng_,
        policy_);
    total_rounds += pa.schedule.total_rounds;
    congestion = merge_phases(congestion, pa.schedule.congestion());
  }
  return {total_rounds, 0, congestion};
}

}  // namespace dls
