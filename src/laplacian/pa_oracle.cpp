#include "laplacian/pa_oracle.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "obs/ledger_clock.hpp"
#include "sim/fault_injection.hpp"
#include "obs/trace.hpp"
#include "shortcuts/construction.hpp"
#include "shortcuts/partwise_aggregation.hpp"

namespace dls {

CongestedPaOracle::InstanceId CongestedPaOracle::prepare(const PartCollection& pc) {
  DLS_REQUIRE(is_valid_part_collection(graph_, pc), "invalid part collection");
  instances_.push_back({pc, congestion(graph_, pc), false, {}});
  return instances_.size() - 1;
}

std::vector<double> CongestedPaOracle::aggregate(
    InstanceId instance, const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid) {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  Prepared& prepared = instances_[instance];
  DLS_REQUIRE(values.size() == prepared.pc.num_parts(), "values mismatch");
  ClockScope clock(Tracer::ambient(), ledger_clock(ledger_));
  ScopedSpan span(Tracer::ambient(), "pa/call", SpanKind::kPaCall);
  if (span.active()) {
    span.note(name());
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
    span.counter("parts", prepared.pc.num_parts());
  }
  if (!prepared.measured) {
    ScopedSpan measure_span(Tracer::ambient(), "pa/measure", SpanKind::kPhase);
    measuring_instance_ = instance;
    prepared.cost = measure(prepared.pc);
    prepared.measured = true;
  }
  ++pa_calls_;
  if (const std::uint64_t local = effective_local(prepared); local > 0) {
    ledger_.charge_local(local, pa_label(), prepared.cost.congestion);
  }
  if (prepared.cost.global_rounds > 0) {
    ledger_.charge_global(prepared.cost.global_rounds, pa_label(),
                          prepared.cost.congestion);
  }
  // Results equal the sequential fold (the distributed protocols were
  // validated against it once at measure() time and in the test suite).
  std::vector<double> results(prepared.pc.num_parts(), monoid.identity);
  for (std::size_t i = 0; i < prepared.pc.num_parts(); ++i) {
    DLS_REQUIRE(values[i].size() == prepared.pc.parts[i].size(),
                "values size mismatch");
    for (double v : values[i]) results[i] = monoid.op(results[i], v);
  }
  return results;
}

void CongestedPaOracle::warm(InstanceId instance) {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  Prepared& prepared = instances_[instance];
  if (prepared.measured) return;
  ScopedSpan span(Tracer::ambient(), "pa/warm", SpanKind::kPhase);
  if (span.active()) {
    span.note(name());
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
  }
  measuring_instance_ = instance;
  prepared.cost = measure(prepared.pc);
  prepared.measured = true;
}

bool CongestedPaOracle::is_measured(InstanceId instance) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  return instances_[instance].measured;
}

std::vector<double> CongestedPaOracle::aggregate_into(
    InstanceId instance, const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, RoundLedger& ledger,
    std::uint64_t& pa_calls) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured,
              "aggregate_into requires a warmed instance; call warm() before "
              "fanning a batch out");
  DLS_REQUIRE(values.size() == prepared.pc.num_parts(), "values mismatch");
  // The ambient tracer here is a per-slot tracer on batched paths (the
  // caller installed it with the slot's private ledger as the clock), so the
  // span lands in the slot's trace and merges slot-indexed.
  ClockScope clock(Tracer::ambient(), ledger_clock(ledger));
  ScopedSpan span(Tracer::ambient(), "pa/call", SpanKind::kPaCall);
  if (span.active()) {
    span.note(name());
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
    span.counter("parts", prepared.pc.num_parts());
  }
  ++pa_calls;
  if (const std::uint64_t local = effective_local(prepared); local > 0) {
    ledger.charge_local(local, pa_label(), prepared.cost.congestion);
  }
  if (prepared.cost.global_rounds > 0) {
    ledger.charge_global(prepared.cost.global_rounds, pa_label(),
                         prepared.cost.congestion);
  }
  std::vector<double> results(prepared.pc.num_parts(), monoid.identity);
  for (std::size_t i = 0; i < prepared.pc.num_parts(); ++i) {
    DLS_REQUIRE(values[i].size() == prepared.pc.parts[i].size(),
                "values size mismatch");
    for (double v : values[i]) results[i] = monoid.op(results[i], v);
  }
  return results;
}

void CongestedPaOracle::charge_aggregate(InstanceId instance) {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  Prepared& prepared = instances_[instance];
  ClockScope clock(Tracer::ambient(), ledger_clock(ledger_));
  ScopedSpan span(Tracer::ambient(), "pa/call", SpanKind::kPaCall);
  if (span.active()) {
    span.note(name());
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
    span.counter("parts", prepared.pc.num_parts());
  }
  if (!prepared.measured) {
    ScopedSpan measure_span(Tracer::ambient(), "pa/measure", SpanKind::kPhase);
    measuring_instance_ = instance;
    prepared.cost = measure(prepared.pc);
    prepared.measured = true;
  }
  ++pa_calls_;
  if (const std::uint64_t local = effective_local(prepared); local > 0) {
    ledger_.charge_local(local, pa_label(), prepared.cost.congestion);
  }
  if (prepared.cost.global_rounds > 0) {
    ledger_.charge_global(prepared.cost.global_rounds, pa_label(),
                          prepared.cost.congestion);
  }
}

void CongestedPaOracle::charge_aggregate_into(InstanceId instance,
                                              RoundLedger& ledger,
                                              std::uint64_t& pa_calls) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured,
              "charge_aggregate_into requires a warmed instance; call warm() "
              "before fanning a batch out");
  ClockScope clock(Tracer::ambient(), ledger_clock(ledger));
  ScopedSpan span(Tracer::ambient(), "pa/call", SpanKind::kPaCall);
  if (span.active()) {
    span.note(name());
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
    span.counter("parts", prepared.pc.num_parts());
  }
  ++pa_calls;
  if (const std::uint64_t local = effective_local(prepared); local > 0) {
    ledger.charge_local(local, pa_label(), prepared.cost.congestion);
  }
  if (prepared.cost.global_rounds > 0) {
    ledger.charge_global(prepared.cost.global_rounds, pa_label(),
                         prepared.cost.congestion);
  }
}

std::uint64_t CongestedPaOracle::batched_local_rounds(InstanceId instance,
                                                      std::size_t n) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured, "batched cost requires a measured instance");
  const std::uint64_t base = effective_local(prepared);
  if (base == 0 || n == 0) return 0;
  // Round-robin pipelining: copy k+1 starts once the busiest slot of copy k
  // drains, i.e. max(1, peak slot occupancy) rounds behind it.
  const std::uint64_t stride = std::max<std::uint64_t>(
      1, prepared.cost.congestion.peak_slot_messages);
  return base + static_cast<std::uint64_t>(n - 1) * stride;
}

std::uint64_t CongestedPaOracle::batched_global_rounds(InstanceId instance,
                                                       std::size_t n) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured, "batched cost requires a measured instance");
  const std::uint64_t base = prepared.cost.global_rounds;
  if (base == 0 || n == 0) return 0;
  return base + static_cast<std::uint64_t>(n - 1);
}

void CongestedPaOracle::charge_batched(InstanceId instance, std::size_t n,
                                       RoundLedger& ledger) const {
  if (n == 0) return;
  const std::uint64_t local = batched_local_rounds(instance, n);
  const std::uint64_t global = batched_global_rounds(instance, n);
  const Prepared& prepared = instances_[instance];
  ClockScope clock(Tracer::ambient(), ledger_clock(ledger));
  ScopedSpan span(Tracer::ambient(), "pa/batched", SpanKind::kPaCall);
  if (span.active()) {
    span.note(name() + "-pa-batched");
    span.counter("instance", instance);
    span.counter("rho", prepared.rho);
    span.counter("n", n);
  }
  // The n copies travel together, so the phase carries n× the traffic of one
  // aggregation (slot peaks scale the same way — that is exactly why the
  // pipeline stride above is the per-copy peak).
  PhaseCongestion congestion = prepared.cost.congestion;
  congestion.messages *= n;
  congestion.peak_slot_messages *= n;
  congestion.peak_round_messages *= n;
  if (local > 0) {
    ledger.charge_local(local, name() + "-pa-batched", congestion);
  }
  if (global > 0) {
    ledger.charge_global(global, name() + "-pa-batched", congestion);
  }
}

std::uint64_t CongestedPaOracle::construction_rounds(InstanceId instance) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured,
              "construction cost requires a measured instance");
  return prepared.cost.construction_local_rounds;
}

std::uint64_t CongestedPaOracle::measured_local_rounds(
    InstanceId instance) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured, "measured cost requires a measured instance");
  return prepared.cost.local_rounds;
}

std::uint64_t CongestedPaOracle::measured_global_rounds(
    InstanceId instance) const {
  DLS_REQUIRE(instance < instances_.size(), "unknown oracle instance");
  const Prepared& prepared = instances_[instance];
  DLS_REQUIRE(prepared.measured, "measured cost requires a measured instance");
  return prepared.cost.global_rounds;
}

std::size_t CongestedPaOracle::approx_state_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Prepared& prepared : instances_) {
    bytes += sizeof(Prepared);
    for (const auto& part : prepared.pc.parts) {
      bytes += sizeof(part) + part.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

std::vector<double> CongestedPaOracle::aggregate_once(
    const PartCollection& pc, const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid) {
  return aggregate(prepare(pc), values, monoid);
}

void CongestedPaOracle::charge_local_exchange(const std::string& label) {
  ledger_.charge_local(1, label);
}

namespace {

/// Neutral input values for a measurement run (cost is value-oblivious).
std::vector<std::vector<double>> unit_values(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  return values;
}

}  // namespace

CongestedPaOracle::Measured ShortcutPaOracle::measure(const PartCollection& pc) {
  CongestedPaOptions options;
  options.model = model_;
  options.policy = policy_;
  options.faults = faults_;
  const CongestedPaOutcome outcome = solve_congested_pa(
      graph(), pc, unit_values(pc), AggregationMonoid::sum(), rng_, options);
  // Sanity: the distributed run must agree with the fold. Under a fault plan
  // a mismatch is an *expected* failure mode — unprotected payload corruption
  // perturbing the convergecast fold — so it surfaces as the typed chaos
  // error (carrying the measured ledger) that the supervision ladder retries
  // or degrades on. Without a plan it stays a hard invariant violation.
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    if (outcome.results[i] == static_cast<double>(pc.parts[i].size())) continue;
    if (faults_ != nullptr) {
      throw ChaosAbortError(
          "corruption detected at verification: shortcut PA run disagrees "
          "with sequential fold",
          outcome.ledger);
    }
    DLS_ASSERT(false, "shortcut PA run disagrees with sequential fold");
  }
  PhaseCongestion congestion;
  std::uint64_t construction = 0;
  for (const LedgerEntry& e : outcome.ledger.entries()) {
    congestion = merge_phases(congestion, e.congestion);
    // CONGEST-model shortcut construction phases; absent (and therefore 0)
    // under Supported-CONGEST, where the support pre-built the shortcuts.
    if (e.label.rfind("construct-", 0) == 0) construction += e.local_rounds;
  }
  return {outcome.total_rounds, 0, construction, congestion};
}

CongestedPaOracle::Measured NccPaOracle::measure(const PartCollection& pc) {
  std::vector<NccPart> parts(pc.num_parts());
  const auto values = unit_values(pc);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    parts[i].members = pc.parts[i];
    parts[i].values = values[i];
  }
  const NccAggregationOutcome outcome = ncc_partwise_aggregate(
      graph().num_nodes(), parts, AggregationMonoid::sum(), rng_, capacity_);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    DLS_ASSERT(outcome.results[i] == static_cast<double>(pc.parts[i].size()),
               "NCC PA run disagrees with sequential fold");
  }
  return {0, outcome.rounds};
}

CongestedPaOracle::Measured BaselinePaOracle::measure(const PartCollection& pc) {
  // Greedy batching into disjoint sub-collections (Observation 14 shows the
  // number of batches can be Θ(#parts); that is the point of this baseline).
  std::vector<char> assigned(pc.num_parts(), 0);
  std::size_t remaining = pc.num_parts();
  std::uint64_t total_rounds = 0;
  PhaseCongestion congestion;
  // Global BFS tree reused as H_i for every part of every batch.
  Rng tree_rng = rng_.fork();
  const RootedSpanningTree tree = centered_bfs_tree(graph(), tree_rng);
  std::vector<EdgeId> tree_edges;
  for (NodeId v = 0; v < graph().num_nodes(); ++v) {
    if (tree.parent_edge[v] != kInvalidEdge) tree_edges.push_back(tree.parent_edge[v]);
  }
  while (remaining > 0) {
    std::vector<char> used(graph().num_nodes(), 0);
    PartCollection batch;
    std::vector<std::vector<double>> batch_values;
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      if (assigned[i]) continue;
      const bool clash = std::any_of(pc.parts[i].begin(), pc.parts[i].end(),
                                     [&](NodeId v) { return used[v] != 0; });
      if (clash) continue;
      for (NodeId v : pc.parts[i]) used[v] = 1;
      batch.parts.push_back(pc.parts[i]);
      batch_values.push_back(std::vector<double>(pc.parts[i].size(), 1.0));
      assigned[i] = 1;
      --remaining;
    }
    DLS_ASSERT(!batch.parts.empty(), "baseline batching stalled");
    Shortcut shortcut;
    shortcut.h_edges.assign(batch.parts.size(), tree_edges);
    const PartwiseAggregationOutcome pa = solve_partwise_aggregation(
        graph(), batch, batch_values, AggregationMonoid::sum(), shortcut, rng_,
        policy_);
    total_rounds += pa.schedule.total_rounds;
    congestion = merge_phases(congestion, pa.schedule.congestion());
  }
  return {total_rounds, 0, 0, congestion};
}

}  // namespace dls
