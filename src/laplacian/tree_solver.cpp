#include "laplacian/tree_solver.hpp"

#include <algorithm>
#include <deque>

#include "congested_pa/heavy_paths.hpp"
#include "graph/algorithms.hpp"
#include "linalg/laplacian.hpp"

namespace dls {

TreeLaplacianSolver::TreeLaplacianSolver(CongestedPaOracle& oracle,
                                         std::vector<EdgeId> tree_edges)
    : oracle_(oracle), tree_edges_(std::move(tree_edges)) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(is_spanning_tree(g, tree_edges_),
              "TreeLaplacianSolver needs a spanning tree");
  const std::size_t n = g.num_nodes();

  // Rooted structure over the tree edges.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
  for (EdgeId e : tree_edges_) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  parent_.assign(n, kInvalidNode);
  parent_edge_.assign(n, kInvalidEdge);
  topo_order_.reserve(n);
  std::deque<NodeId> queue{0};
  std::vector<char> seen(n, 0);
  seen[0] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    topo_order_.push_back(v);
    for (const auto& [nbr, e] : adj[v]) {
      if (seen[nbr]) continue;
      seen[nbr] = 1;
      parent_[nbr] = v;
      parent_edge_[nbr] = e;
      queue.push_back(nbr);
    }
  }

  // Heavy-path instance of the tree (the sweeps' communication structure).
  Graph tree_view(n);
  for (EdgeId e : tree_edges_) {
    tree_view.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).weight);
  }
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  const HeavyPathDecomposition hpd = heavy_path_decomposition(tree_view, all);
  handoff_rounds_ = hpd.max_depth;
  PartCollection pc;
  pc.parts = hpd.paths;
  sweep_instance_ = oracle_.prepare(pc);
  zero_values_.resize(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    zero_values_[i].assign(pc.parts[i].size(), 0.0);
  }
}

Vec TreeLaplacianSolver::solve(const Vec& b) {
  const Graph& g = oracle_.graph();
  DLS_REQUIRE(b.size() == g.num_nodes(), "rhs size mismatch");
  DLS_REQUIRE(is_valid_rhs(b, 1e-6), "rhs not in range(L)");

  // Charge the two sweeps (each: heavy-path PA + per-level handoffs).
  oracle_.aggregate(sweep_instance_, zero_values_, AggregationMonoid::sum());
  if (handoff_rounds_ > 0) {
    oracle_.ledger().charge_local(handoff_rounds_, "tree-solver/up-handoffs");
  }
  oracle_.aggregate(sweep_instance_, zero_values_, AggregationMonoid::sum());
  if (handoff_rounds_ > 0) {
    oracle_.ledger().charge_local(handoff_rounds_, "tree-solver/down-handoffs");
  }

  // Exact sweeps. Subtree sums via reverse topological order.
  Vec subtree = b;
  for (std::size_t i = topo_order_.size(); i-- > 1;) {
    const NodeId v = topo_order_[i];
    subtree[parent_[v]] += subtree[v];
  }
  // Potentials via forward order: x_child = x_parent + f_child / w.
  Vec x(g.num_nodes(), 0.0);
  for (std::size_t i = 1; i < topo_order_.size(); ++i) {
    const NodeId v = topo_order_[i];
    x[v] = x[parent_[v]] + subtree[v] / g.edge(parent_edge_[v]).weight;
  }
  project_mean_zero(x);
  return x;
}

}  // namespace dls
