#include "laplacian/elimination.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/assert.hpp"

namespace dls {

namespace {

struct Entry {
  double weight = 0.0;
  std::vector<NodeId> g_path;  // from owner to neighbor, inclusive
};

std::vector<NodeId> reversed(std::vector<NodeId> path) {
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

EliminationResult eliminate_degree_le2(const MinorGraph& minor,
                                       std::size_t min_remaining) {
  DLS_REQUIRE(min_remaining >= 1, "must keep at least one node");
  EliminationResult result;
  const std::size_t n = minor.num_nodes;

  // Adjacency maps with parallel edges merged (weights add; shortest host
  // path kept as the communication witness).
  std::vector<std::map<NodeId, Entry>> adj(n);
  for (const MinorEdge& e : minor.edges) {
    auto add = [&](NodeId from, NodeId to, const std::vector<NodeId>& path) {
      auto [it, inserted] = adj[from].try_emplace(to, Entry{e.weight, path});
      if (!inserted) {
        it->second.weight += e.weight;
        if (path.size() < it->second.g_path.size()) it->second.g_path = path;
      }
    };
    add(e.u, e.v, e.g_path);
    add(e.v, e.u, reversed(e.g_path));
  }

  std::vector<char> alive(n, 1);
  std::size_t alive_count = n;
  std::deque<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    if (adj[v].size() <= 2) queue.push_back(v);
  }
  while (!queue.empty() && alive_count > min_remaining) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (!alive[v] || adj[v].size() > 2) continue;
    if (adj[v].empty()) {
      DLS_ASSERT(alive_count == 1, "isolated node in a connected minor");
      break;
    }
    if (adj[v].size() == 1) {
      // Copy before adj[v].clear() below — references into the map node
      // would dangle once it is freed.
      const NodeId u = adj[v].begin()->first;
      const double weight = adj[v].begin()->second.weight;
      result.steps.push_back(
          {EliminationStep::Kind::kDegreeOne, v, u, kInvalidNode, weight, 0.0});
      adj[u].erase(v);
      adj[v].clear();
      alive[v] = 0;
      --alive_count;
      if (adj[u].size() <= 2) queue.push_back(u);
    } else {
      auto it = adj[v].begin();
      const NodeId u1 = it->first;
      const Entry e1 = it->second;
      ++it;
      const NodeId u2 = it->first;
      const Entry e2 = it->second;
      result.steps.push_back({EliminationStep::Kind::kDegreeTwo, v, u1, u2,
                              e1.weight, e2.weight});
      const double w_new = e1.weight * e2.weight / (e1.weight + e2.weight);
      // Host path u1 → v → u2 (drop the duplicated v).
      std::vector<NodeId> path = reversed(e1.g_path);
      path.insert(path.end(), e2.g_path.begin() + 1, e2.g_path.end());
      result.max_chain_hops =
          std::max(result.max_chain_hops, path.size() - 1);
      adj[u1].erase(v);
      adj[u2].erase(v);
      auto [slot, inserted] = adj[u1].try_emplace(u2, Entry{w_new, path});
      if (!inserted) {
        slot->second.weight += w_new;
        if (path.size() < slot->second.g_path.size()) slot->second.g_path = path;
      }
      auto [slot2, inserted2] =
          adj[u2].try_emplace(u1, Entry{w_new, reversed(path)});
      if (!inserted2) {
        slot2->second.weight += w_new;
        if (path.size() < slot2->second.g_path.size()) {
          slot2->second.g_path = reversed(path);
        }
      }
      adj[v].clear();
      alive[v] = 0;
      --alive_count;
      if (adj[u1].size() <= 2) queue.push_back(u1);
      if (adj[u2].size() <= 2) queue.push_back(u2);
    }
  }

  // Compact the kept nodes into the Schur minor.
  result.input_to_schur.assign(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v]) {
      result.input_to_schur[v] = static_cast<NodeId>(result.kept.size());
      result.kept.push_back(v);
    }
  }
  result.schur.num_nodes = result.kept.size();
  result.schur.host.reserve(result.kept.size());
  for (NodeId v : result.kept) result.schur.host.push_back(minor.host[v]);
  for (NodeId v : result.kept) {
    for (const auto& [u, entry] : adj[v]) {
      if (v < u) {
        result.schur.edges.push_back({result.input_to_schur[v],
                                      result.input_to_schur[u], entry.weight,
                                      entry.g_path});
      }
    }
  }
  return result;
}

Vec EliminationResult::forward_rhs(const Vec& b) const {
  Vec work, reduced;
  forward_rhs_into(b, work, reduced);
  return reduced;
}

Vec EliminationResult::backward_solution(const Vec& x_schur, const Vec& b) const {
  Vec work, b_at_elim, x;
  backward_solution_into(x_schur, b, work, b_at_elim, x);
  return x;
}

void EliminationResult::forward_rhs_into(const Vec& b, Vec& work,
                                         Vec& reduced) const {
  DLS_REQUIRE(b.size() == input_to_schur.size(), "rhs size mismatch");
  work = b;
  for (const EliminationStep& s : steps) {
    if (s.kind == EliminationStep::Kind::kDegreeOne) {
      work[s.n1] += work[s.node];
    } else {
      const double total = s.w1 + s.w2;
      work[s.n1] += s.w1 / total * work[s.node];
      work[s.n2] += s.w2 / total * work[s.node];
    }
  }
  reduced.resize(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) reduced[i] = work[kept[i]];
}

void EliminationResult::backward_solution_into(const Vec& x_schur, const Vec& b,
                                               Vec& work, Vec& b_at_elim,
                                               Vec& x) const {
  DLS_REQUIRE(x_schur.size() == kept.size(), "schur solution size mismatch");
  DLS_REQUIRE(b.size() == input_to_schur.size(), "rhs size mismatch");
  // Replay the forward pass to recover each node's rhs at elimination time.
  work = b;
  b_at_elim.resize(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const EliminationStep& s = steps[i];
    b_at_elim[i] = work[s.node];
    if (s.kind == EliminationStep::Kind::kDegreeOne) {
      work[s.n1] += work[s.node];
    } else {
      const double total = s.w1 + s.w2;
      work[s.n1] += s.w1 / total * work[s.node];
      work[s.n2] += s.w2 / total * work[s.node];
    }
  }
  x.assign(input_to_schur.size(), 0.0);
  for (std::size_t i = 0; i < kept.size(); ++i) x[kept[i]] = x_schur[i];
  for (std::size_t i = steps.size(); i-- > 0;) {
    const EliminationStep& s = steps[i];
    if (s.kind == EliminationStep::Kind::kDegreeOne) {
      x[s.node] = x[s.n1] + b_at_elim[i] / s.w1;
    } else {
      x[s.node] =
          (s.w1 * x[s.n1] + s.w2 * x[s.n2] + b_at_elim[i]) / (s.w1 + s.w2);
    }
  }
}

}  // namespace dls
