#include "laplacian/ultra_sparsifier.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dls {

UltraSparsifier build_ultra_sparsifier(const MinorGraph& minor,
                                       double offtree_budget, Rng& rng) {
  UltraSparsifier result;
  result.sparsifier.num_nodes = minor.num_nodes;
  result.sparsifier.host = minor.host;

  const Graph view = minor.as_graph();
  const LowStretchTreeResult lst = low_stretch_spanning_tree(view, rng);
  const std::vector<double> stretch = edge_stretches(view, lst.tree_edges);
  std::vector<char> on_tree(view.num_edges(), 0);
  for (EdgeId e : lst.tree_edges) on_tree[e] = 1;

  double off_tree_stretch = 0.0;
  for (EdgeId e = 0; e < view.num_edges(); ++e) {
    if (!on_tree[e]) off_tree_stretch += stretch[e];
  }
  result.total_stretch = off_tree_stretch + static_cast<double>(lst.tree_edges.size());

  // Tree edges always kept, weight unchanged. Edge e of `view` corresponds to
  // minor.edges[e] (as_graph preserves order).
  for (EdgeId e = 0; e < view.num_edges(); ++e) {
    if (on_tree[e]) {
      result.tree_edge_indices.push_back(result.sparsifier.edges.size());
      result.sparsifier.edges.push_back(minor.edges[e]);
      result.source_edges.push_back(e);
      result.reweight_factors.push_back(1.0);
    }
  }
  // Off-tree: keep with p_e = min(1, budget·stretch_e / off_tree_stretch),
  // reweight by 1/p_e so the sparsifier is an unbiased spectral estimate.
  if (offtree_budget >= 1.0 && off_tree_stretch > 0.0) {
    for (EdgeId e = 0; e < view.num_edges(); ++e) {
      if (on_tree[e]) continue;
      const double p =
          std::min(1.0, offtree_budget * stretch[e] / off_tree_stretch);
      if (p > 0.0 && rng.next_bool(p)) {
        MinorEdge kept = minor.edges[e];
        kept.weight /= p;
        result.sparsifier.edges.push_back(std::move(kept));
        result.source_edges.push_back(e);
        result.reweight_factors.push_back(1.0 / p);
        ++result.off_tree_kept;
      }
    }
  }
  return result;
}

}  // namespace dls
