// Exact Laplacian solver for spanning trees, with PA-oracle round charging.
//
// On a tree the system L_T x = b is solved exactly by two sweeps: subtree
// sums determine the unique edge flows (f_e = net supply below e), and a
// root-to-leaf sweep integrates potentials (x_child = x_parent + f/w).
// Distributedly both sweeps are parallel tree contractions expressible as
// part-wise aggregations over the tree's heavy paths (O(log n) path levels);
// we charge one oracle call per sweep on the prepared heavy-path instance,
// matching that realization, and compute the exact answer sequentially.
#pragma once

#include <span>

#include "laplacian/pa_oracle.hpp"
#include "linalg/vector_ops.hpp"

namespace dls {

class TreeLaplacianSolver {
 public:
  /// `tree_edges` must be a spanning tree of oracle.graph().
  TreeLaplacianSolver(CongestedPaOracle& oracle,
                      std::vector<EdgeId> tree_edges);

  /// Exact solve (mean-zero representative); charges 2 PA calls plus
  /// O(log n) local handoff rounds per call.
  Vec solve(const Vec& b);

  const std::vector<EdgeId>& tree_edges() const { return tree_edges_; }

 private:
  CongestedPaOracle& oracle_;
  std::vector<EdgeId> tree_edges_;
  CongestedPaOracle::InstanceId sweep_instance_ = 0;
  std::vector<std::vector<double>> zero_values_;  // template for charging
  std::uint64_t handoff_rounds_ = 0;              // heavy-path depth levels
  // Rooted structure for the exact solve.
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeId> topo_order_;  // root first, children after parents
};

}  // namespace dls
