// Approximate undirected s–t max flow via electrical flows — the flagship
// downstream application the paper's conclusion points at ("our results
// directly imply an exact O(m^{1/2+o(1)}·SQ(G)) algorithm for the max-flow
// problem"). This is the Christiano–Kelner–Mądry–Spielman–Teng
// multiplicative-weights scheme: each iteration solves one Laplacian system
// whose conductances are capacity-scaled MWU weights, penalizes
// over-congested edges, and the averaged electrical flow — scaled to
// feasibility — converges to (1−ε) of the max flow.
//
// Every iteration's solve is a full distributed Laplacian solve charged
// through the selected PA-oracle model, so the reported round counts are
// the end-to-end cost of the application in that model.
#pragma once

#include "laplacian/pa_oracle.hpp"
#include "laplacian/recursive_solver.hpp"

namespace dls {

struct ElectricalMaxFlowOptions {
  int iterations = 24;
  double mwu_step = 0.25;       // MWU learning rate
  double solver_tolerance = 1e-8;
  std::size_t base_size = 64;
  std::size_t max_levels = 16;        // solver chain depth cap
  std::size_t inner_iterations = 10;  // solver inner PCG iterations
};

struct ElectricalMaxFlowResult {
  /// Feasible flow per edge (positive = u→v orientation of the edge).
  std::vector<double> edge_flow;
  double flow_value = 0.0;        // value of the feasible flow found
  double exact_value = 0.0;       // Edmonds–Karp ground truth
  double approximation = 0.0;     // flow_value / exact_value
  int iterations = 0;
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t pa_calls = 0;
};

enum class MaxFlowModel { kShortcut, kBaseline, kNcc };

/// Computes an approximately maximum s–t flow on g (capacities = weights).
/// Conservation holds exactly; capacity feasibility holds by scaling.
ElectricalMaxFlowResult approx_max_flow_electrical(
    const Graph& g, NodeId s, NodeId t, Rng& rng,
    MaxFlowModel model = MaxFlowModel::kShortcut,
    const ElectricalMaxFlowOptions& options = {});

/// Max conservation violation of `edge_flow` at nodes other than s/t, and
/// the deviation of the net s-outflow from `value`. Used by tests.
double flow_conservation_error(const Graph& g, const std::vector<double>& edge_flow,
                               NodeId s, NodeId t, double value);

}  // namespace dls
