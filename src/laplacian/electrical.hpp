// Electrical primitives on top of the distributed Laplacian solver — the
// applications the Laplacian paradigm exists for ([47, 32, 40]; paper §1).
//
// * Effective resistances, single-pair (one solve) and all-edges via the
//   Spielman–Srivastava Johnson–Lindenstrauss sketch (O(log n / δ²) solves).
// * Spectral sparsification by effective-resistance sampling: keep edge e
//   with probability ∝ w_e·R_e·log n, reweight by 1/p_e — whp a
//   (1 ± ε)-spectral approximation.
// All communication is charged through the solver's PA oracle.
#pragma once

#include "laplacian/recursive_solver.hpp"

namespace dls {

/// Effective resistance between two nodes: R(u,v) = (e_u − e_v)ᵀ L⁺ (e_u − e_v).
/// One distributed solve.
double effective_resistance(DistributedLaplacianSolver& solver, NodeId u,
                            NodeId v);

struct ResistanceSketch {
  /// Approximate effective resistance per edge of the solver's graph.
  std::vector<double> edge_resistance;
  std::size_t solves = 0;   // JL sketch dimension (number of solves)
  double epsilon = 0.0;     // targeted multiplicative accuracy
};

/// All-edge effective resistances via JL sketching; `epsilon` trades sketch
/// dimension (≈ 8·ln n / ε²) against accuracy.
ResistanceSketch sketch_effective_resistances(const Graph& g,
                                              DistributedLaplacianSolver& solver,
                                              Rng& rng, double epsilon = 0.5);

struct SpectralSparsifier {
  Graph sparsifier;                 // same node set, reweighted sample
  std::vector<EdgeId> kept_edges;   // original ids, aligned with sparsifier
  double oversampling = 0.0;        // the C in p_e = min(1, C·w_e·R_e)
};

/// Spielman–Srivastava sparsification driven by the sketch. `quality`
/// scales the sample count (higher = denser = closer spectrally).
SpectralSparsifier spectral_sparsify(const Graph& g,
                                     DistributedLaplacianSolver& solver,
                                     Rng& rng, double quality = 4.0,
                                     double sketch_epsilon = 0.5);

/// Measured spectral distortion max over probe vectors x of the ratio
/// x'L_H x / x'L_G x (and its reciprocal) — a Monte-Carlo check of the
/// (1±ε) guarantee.
double measure_spectral_distortion(const Graph& g, const Graph& h, Rng& rng,
                                   int probes = 24);

}  // namespace dls
