// Partial Cholesky elimination of degree-≤2 nodes ([18] §5-style), producing
// the Schur complement as a congested minor.
//
// Eliminating a degree-1 node removes it; eliminating a degree-2 node splices
// its two (distinct-neighbor) edges into one series edge of weight
// w₁w₂/(w₁+w₂) whose host path passes through the eliminated node's hosts —
// this is where minor congestion (and hence ρ-congested PA) comes from.
// Parallel edges are merged by weight addition, keeping the shortest host
// path as the communication witness. The recorded steps support exact
// forward rhs reduction and backward solution extension, so the
// sparsifier-system solve is exact given an exact Schur-complement solve.
#pragma once

#include "laplacian/minor.hpp"
#include "linalg/vector_ops.hpp"

namespace dls {

struct EliminationStep {
  enum class Kind { kDegreeOne, kDegreeTwo };
  Kind kind = Kind::kDegreeOne;
  NodeId node = kInvalidNode;  // eliminated node (input-minor id)
  NodeId n1 = kInvalidNode;    // neighbor(s) at elimination time
  NodeId n2 = kInvalidNode;    // kDegreeTwo only
  double w1 = 0.0;
  double w2 = 0.0;             // kDegreeTwo only
};

struct EliminationResult {
  MinorGraph schur;                 // on kept nodes, compact ids
  std::vector<NodeId> kept;         // schur id -> input-minor id
  std::vector<NodeId> input_to_schur;  // input id -> schur id (or kInvalidNode)
  std::vector<EliminationStep> steps;  // in elimination order
  /// Longest series chain spliced into a single Schur edge, measured in
  /// input-minor hops — the local-round cost of one substitution sweep.
  std::size_t max_chain_hops = 0;

  /// Reduces an input-minor rhs to the Schur system's rhs (kept-compact).
  Vec forward_rhs(const Vec& b) const;
  /// Recovers the full input-minor solution from the Schur solution.
  Vec backward_solution(const Vec& x_schur, const Vec& b) const;

  /// Allocation-free variants writing into caller scratch (the solver leases
  /// these from its SolveWorkspace): `work` is the forward-sweep state,
  /// `b_at_elim` the per-step rhs snapshots, `reduced`/`x` the outputs. All
  /// are resized here; arithmetic is identical to the variants above.
  void forward_rhs_into(const Vec& b, Vec& work, Vec& reduced) const;
  void backward_solution_into(const Vec& x_schur, const Vec& b, Vec& work,
                              Vec& b_at_elim, Vec& x) const;
};

/// Eliminates until every remaining node has degree ≥ 3 (by distinct
/// neighbors) or only `min_remaining` nodes remain. Input must be connected.
EliminationResult eliminate_degree_le2(const MinorGraph& minor,
                                       std::size_t min_remaining = 1);

}  // namespace dls
