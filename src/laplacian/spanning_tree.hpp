// Distributed MST via Boruvka expressed in part-wise aggregation calls —
// the canonical example of the Ghaffari–Haeupler reduction (and the first
// stage of the Laplacian solver's preconditioner construction).
//
// Each Boruvka phase: every current component (a connected part) aggregates
// the minimum-weight outgoing edge (1 PA call preceded by one local exchange
// of component ids), merges along the selected edges, and repeats. O(log n)
// phases; every phase's PA instance is 1-congested.
#pragma once

#include "laplacian/pa_oracle.hpp"

namespace dls {

struct DistributedMstResult {
  std::vector<EdgeId> tree_edges;
  std::uint32_t phases = 0;
  std::uint64_t pa_calls = 0;
};

/// Computes the MST of the oracle's graph, charging rounds to the oracle's
/// ledger. The graph must be connected.
DistributedMstResult distributed_mst(CongestedPaOracle& oracle, Rng& rng);

}  // namespace dls
