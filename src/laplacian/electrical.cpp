#include "laplacian/electrical.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/laplacian.hpp"

namespace dls {

double effective_resistance(DistributedLaplacianSolver& solver, NodeId u,
                            NodeId v) {
  const Graph& g = solver.graph();
  DLS_REQUIRE(u < g.num_nodes() && v < g.num_nodes(), "node out of range");
  DLS_REQUIRE(u != v, "effective resistance needs distinct nodes");
  Vec b(g.num_nodes(), 0.0);
  b[u] = 1.0;
  b[v] = -1.0;
  const LaplacianSolveReport report = solver.solve(b);
  return report.x[u] - report.x[v];
}

ResistanceSketch sketch_effective_resistances(const Graph& g,
                                              DistributedLaplacianSolver& solver,
                                              Rng& rng, double epsilon) {
  DLS_REQUIRE(epsilon > 0 && epsilon < 1, "epsilon in (0,1) required");
  ResistanceSketch sketch;
  sketch.epsilon = epsilon;
  const std::size_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  sketch.edge_resistance.assign(m, 0.0);
  if (m == 0) return sketch;
  const std::size_t k = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::ceil(
             8.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 2))) /
             (epsilon * epsilon))));
  sketch.solves = k;
  // R_e ≈ ‖Z (χ_u − χ_v)‖² with Z = (1/√k) Q W^{1/2} B L⁺: each sketch row
  // is one Laplacian solve against Bᵀ W^{1/2} q for a random ±1 vector q
  // over edges.
  for (std::size_t row = 0; row < k; ++row) {
    Vec rhs(n, 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = g.edge(e);
      const double q = rng.next_bool() ? 1.0 : -1.0;
      const double scaled = q * std::sqrt(edge.weight);
      rhs[edge.u] += scaled;
      rhs[edge.v] -= scaled;
    }
    project_mean_zero(rhs);
    const LaplacianSolveReport report = solver.solve(rhs);
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = g.edge(e);
      const double diff = report.x[edge.u] - report.x[edge.v];
      sketch.edge_resistance[e] += diff * diff / static_cast<double>(k);
    }
  }
  return sketch;
}

SpectralSparsifier spectral_sparsify(const Graph& g,
                                     DistributedLaplacianSolver& solver,
                                     Rng& rng, double quality,
                                     double sketch_epsilon) {
  DLS_REQUIRE(quality > 0, "quality must be positive");
  const ResistanceSketch sketch =
      sketch_effective_resistances(g, solver, rng, sketch_epsilon);
  SpectralSparsifier result;
  result.sparsifier = Graph(g.num_nodes());
  const double log_n =
      std::log(static_cast<double>(std::max<std::size_t>(g.num_nodes(), 2)));
  result.oversampling = quality * log_n;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    // Leverage score w_e·R_e ∈ [0, 1]; clamp against sketch noise.
    const double leverage =
        std::clamp(edge.weight * sketch.edge_resistance[e], 1e-12, 1.0);
    const double p = std::min(1.0, result.oversampling * leverage);
    if (rng.next_bool(p)) {
      result.sparsifier.add_edge(edge.u, edge.v, edge.weight / p);
      result.kept_edges.push_back(e);
    }
  }
  return result;
}

double measure_spectral_distortion(const Graph& g, const Graph& h, Rng& rng,
                                   int probes) {
  DLS_REQUIRE(g.num_nodes() == h.num_nodes(), "node sets must match");
  double worst = 1.0;
  for (int p = 0; p < probes; ++p) {
    Vec x(g.num_nodes());
    for (double& v : x) v = rng.next_double() * 2.0 - 1.0;
    project_mean_zero(x);
    const double qg = laplacian_quadratic_form(g, x);
    const double qh = laplacian_quadratic_form(h, x);
    if (qg <= 0 || qh <= 0) continue;
    worst = std::max({worst, qh / qg, qg / qh});
  }
  return worst;
}

}  // namespace dls
