#include "laplacian/mincut.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/algorithms.hpp"

namespace dls {

double min_cut_stoer_wagner(const Graph& g) {
  const std::size_t n = g.num_nodes();
  DLS_REQUIRE(n >= 2, "min cut needs at least two nodes");
  DLS_REQUIRE(is_connected(g), "min cut of a disconnected graph is zero");
  // Dense weight matrix with parallel edges merged.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const Edge& e : g.edges()) {
    w[e.u][e.v] += e.weight;
    w[e.v][e.u] += e.weight;
  }
  std::vector<std::size_t> active(n);
  std::iota(active.begin(), active.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  while (active.size() > 1) {
    // Maximum-adjacency order over the active supernodes.
    std::vector<double> attachment(active.size(), 0.0);
    std::vector<char> added(active.size(), 0);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t pick = SIZE_MAX;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i] && (pick == SIZE_MAX || attachment[i] > attachment[pick])) {
          pick = i;
        }
      }
      added[pick] = 1;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i]) attachment[i] += w[active[pick]][active[i]];
      }
    }
    best = std::min(best, attachment[last]);
    // Merge `last` into `prev`.
    const std::size_t a = active[prev], b = active[last];
    for (std::size_t i = 0; i < n; ++i) {
      w[a][i] += w[b][i];
      w[i][a] += w[i][b];
    }
    w[a][a] = 0.0;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(last));
  }
  return best;
}

double cut_weight(const Graph& g, const std::vector<char>& side) {
  DLS_REQUIRE(side.size() == g.num_nodes(), "side vector size mismatch");
  double total = 0.0;
  for (const Edge& e : g.edges()) {
    if (side[e.u] != side[e.v]) total += e.weight;
  }
  return total;
}

namespace {

/// All one-tree-edge cut values via the +w/+w/−2w-at-LCA subtree-sum trick.
/// Returns, for each node v ≠ root, the weight of the cut separating v's
/// subtree, plus the subtree membership structure for extraction.
struct TreeCuts {
  std::vector<double> cut_at;        // per node (kInvalid for root)
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> depth;
  std::vector<NodeId> order;         // children after parents
};

TreeCuts evaluate_tree_cuts(const Graph& g, const std::vector<EdgeId>& tree) {
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
  for (EdgeId e : tree) {
    adj[g.edge(e).u].push_back({g.edge(e).v, e});
    adj[g.edge(e).v].push_back({g.edge(e).u, e});
  }
  TreeCuts tc;
  tc.parent.assign(n, kInvalidNode);
  tc.depth.assign(n, 0);
  std::vector<double> tree_edge_weight(n, 0.0);  // weight of edge to parent
  tc.order.reserve(n);
  {
    std::vector<NodeId> stack{0};
    std::vector<char> seen(n, 0);
    seen[0] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      tc.order.push_back(v);
      for (const auto& [nbr, e] : adj[v]) {
        if (seen[nbr]) continue;
        seen[nbr] = 1;
        tc.parent[nbr] = v;
        tc.depth[nbr] = tc.depth[v] + 1;
        tree_edge_weight[nbr] = g.edge(e).weight;
        stack.push_back(nbr);
      }
    }
    DLS_REQUIRE(tc.order.size() == n, "tree does not span the graph");
  }
  auto lca = [&](NodeId a, NodeId b) {
    while (a != b) {
      if (tc.depth[a] < tc.depth[b]) std::swap(a, b);
      a = tc.parent[a];
    }
    return a;
  };
  std::vector<char> on_tree(g.num_edges(), 0);
  for (EdgeId e : tree) on_tree[e] = 1;
  std::vector<double> mark(n, 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (on_tree[e]) continue;
    const Edge& edge = g.edge(e);
    mark[edge.u] += edge.weight;
    mark[edge.v] += edge.weight;
    mark[lca(edge.u, edge.v)] -= 2.0 * edge.weight;
  }
  // Subtree sums bottom-up (reverse DFS order).
  std::vector<double> subtree = mark;
  for (std::size_t i = tc.order.size(); i-- > 1;) {
    const NodeId v = tc.order[i];
    subtree[tc.parent[v]] += subtree[v];
  }
  tc.cut_at.assign(n, std::numeric_limits<double>::infinity());
  for (NodeId v = 0; v < n; ++v) {
    if (tc.parent[v] != kInvalidNode) {
      tc.cut_at[v] = subtree[v] + tree_edge_weight[v];
    }
  }
  return tc;
}

}  // namespace

ApproxMinCutResult approx_min_cut(CongestedPaOracle& oracle, Rng& rng,
                                  int trials) {
  const Graph& g = oracle.graph();
  DLS_REQUIRE(trials >= 1, "need at least one trial");
  DLS_REQUIRE(is_connected(g), "min cut requires a connected graph");
  const std::size_t n = g.num_nodes();

  ApproxMinCutResult result;
  result.exact_value = min_cut_stoer_wagner(g);
  result.cut_value = std::numeric_limits<double>::infinity();
  result.side.assign(n, 0);

  const std::uint64_t calls_before = oracle.pa_calls();
  const std::uint64_t local_before = oracle.ledger().total_local();
  const std::uint64_t global_before = oracle.ledger().total_global();

  // Charging template: the global 1-congested instance; each trial's
  // Boruvka phases and subtree sweeps ride it.
  PartCollection global_pc;
  {
    std::vector<NodeId> all(n);
    std::iota(all.begin(), all.end(), NodeId{0});
    global_pc.parts.push_back(std::move(all));
  }
  const auto global_instance = oracle.prepare(global_pc);
  std::vector<std::vector<double>> global_values(1, std::vector<double>(n, 0.0));
  std::size_t boruvka_phases = 1;
  while ((std::size_t{1} << boruvka_phases) < n) ++boruvka_phases;

  for (int t = 0; t < trials; ++t) {
    // Random spanning tree surrogate: MST under exponential reweighting
    // Exp(w_e) — heavy edges draw small keys and enter the tree first.
    std::vector<EdgeId> order(g.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    std::vector<double> key(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      key[e] = -std::log(1.0 - rng.next_double()) / g.edge(e).weight;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](EdgeId a, EdgeId b) { return key[a] < key[b]; });
    UnionFind uf(n);
    std::vector<EdgeId> tree;
    for (EdgeId e : order) {
      if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
    }
    // Charge the trial's communication: Boruvka-pattern MST (2 PA calls +
    // 1 local exchange per phase) + 2 subtree-sum sweeps.
    for (std::size_t phase = 0; phase < boruvka_phases; ++phase) {
      oracle.charge_local_exchange("mincut/mst-exchange");
      oracle.aggregate(global_instance, global_values, AggregationMonoid::min());
      oracle.aggregate(global_instance, global_values, AggregationMonoid::min());
    }
    oracle.aggregate(global_instance, global_values, AggregationMonoid::sum());
    oracle.aggregate(global_instance, global_values, AggregationMonoid::sum());

    const TreeCuts tc = evaluate_tree_cuts(g, tree);
    for (NodeId v = 0; v < n; ++v) {
      if (tc.parent[v] != kInvalidNode && tc.cut_at[v] < result.cut_value) {
        result.cut_value = tc.cut_at[v];
        // Extract the side: v's subtree.
        std::vector<char> side(n, 0);
        // order[] lists parents before children, so propagate membership.
        side[v] = 1;
        for (NodeId u : tc.order) {
          if (u != v && tc.parent[u] != kInvalidNode && side[tc.parent[u]]) {
            side[u] = 1;
          }
        }
        result.side = std::move(side);
      }
    }
    result.trials = t + 1;
  }
  DLS_ASSERT(std::abs(cut_weight(g, result.side) - result.cut_value) < 1e-6,
             "cut extraction disagrees with evaluated value");
  result.ratio = result.exact_value > 0 ? result.cut_value / result.exact_value
                                        : 1.0;
  result.pa_calls = oracle.pa_calls() - calls_before;
  result.local_rounds = oracle.ledger().total_local() - local_before;
  result.global_rounds = oracle.ledger().total_global() - global_before;
  return result;
}

}  // namespace dls
