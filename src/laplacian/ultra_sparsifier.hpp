// Ultra-sparsification (KMP / [18] style): keep a low-stretch spanning tree
// of the minor and an expected `offtree_budget` off-tree edges sampled with
// probability proportional to stretch, reweighted by 1/p for unbiasedness.
// The result spectrally approximates the input with relative condition
// number O(total_stretch / budget · polylog) and, crucially, eliminates to a
// much smaller Schur complement because almost everything is tree-like.
#pragma once

#include "laplacian/low_stretch_tree.hpp"
#include "laplacian/minor.hpp"

namespace dls {

struct UltraSparsifier {
  MinorGraph sparsifier;          // same nodes/hosts as the input minor
  std::vector<std::size_t> tree_edge_indices;  // indices into sparsifier.edges
  double total_stretch = 0.0;     // of the input w.r.t. the chosen tree
  std::size_t off_tree_kept = 0;
  /// Provenance of each sparsifier edge, parallel to sparsifier.edges:
  /// the input-minor edge it came from and the weight factor applied to it
  /// (1 for tree edges, 1/p for kept off-tree samples). With these, the
  /// sparsifier can be *re-weighted in place* after the input minor's weights
  /// change — same structure, new numerics — without re-running the
  /// rng-consuming tree/sampling construction (docs/CACHING.md).
  std::vector<EdgeId> source_edges;
  std::vector<double> reweight_factors;
};

/// Builds the ultra-sparsifier of `minor`. `offtree_budget` is the expected
/// number of off-tree edges kept (values < 1 keep the bare tree).
UltraSparsifier build_ultra_sparsifier(const MinorGraph& minor,
                                       double offtree_budget, Rng& rng);

}  // namespace dls
