// Warm solver-state cache (docs/CACHING.md).
//
// Almost everything a solve pays for — the low-stretch trees, the recursive
// minor hierarchy, the dense base-case factorization, the measured shortcut
// PA instances, the Chebyshev eigenbounds — depends on the *graph*, not on
// the right-hand side, and not even on the weight scale. A serving
// deployment answering many queries against the same (or slightly perturbed)
// graph should therefore build that state once, pay for it once, and reuse
// it. The SolverCache holds one fully built solver stack per graph
// *structure* (fingerprint over nodes + edge endpoints; weights excluded),
// with LRU eviction under an entry/byte budget and memory accounting on
// MetricsRegistry ("cache.*").
//
// Honesty contract: a cache entry charges its one-time construction — the
// hierarchy build, the base gather, and each instance's measurement dry run —
// on its oracle's ledger under "cache/…" labels at build time, then flips
// the oracle into warm charging so every later PA call pays only its use
// cost (the CONGEST-model shortcut-construction rounds embedded in the
// measured cost are exactly what the entry already paid for). Under
// Supported-CONGEST / NCC the embedded construction cost is zero and warm
// charging is a no-op.
//
// Determinism contract: warm charging and eigenbound reuse never feed the
// numerics, so a warm solve's per-RHS results are bit-identical to a cold
// solve on an identically-seeded fresh stack (for Chebyshev the entry forces
// rhs_independent_eigenbounds so the reused bound IS the cold bound). With
// the cache unused, nothing anywhere changes: warm charging is off by
// default and every golden trace is untouched.
//
// Dynamic weight updates classify through a spectral-similarity ladder
// (update_weights): kNoChange → kRescale (uniform c: track the scale, x/c is
// exact) → kReusePreconditioner (small per-edge ratios, bounded cumulative
// drift and level-0 tree drift: refresh the level-0 operator, keep the
// chain as a slightly stale preconditioner) → kPartialRebuild (re-derive
// every level's numerics through the stored sparsifier provenance; structure
// — and with it every measured PA instance — survives) → kFullRebuild
// (fresh stack from the entry's seed, strong exception guarantee). Each rung
// is honestly charged and annotated as a span.
//
// NOT thread-safe: one cache per serving thread, like the oracle it wraps.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <vector>

#include "laplacian/recursive_solver.hpp"

namespace dls {

/// Which oracle a cache entry solves through (the paper's three models; the
/// CONGEST shortcut oracle is where warm charging pays off most, since its
/// per-call cost embeds shortcut construction).
enum class CacheOracleKind : std::uint8_t {
  kShortcutSupported,  // Supported-CONGEST (construction free)
  kShortcutCongest,    // CONGEST (construction charged per call when cold)
  kNcc,                // HYBRID / NCC global rounds
  kBaseline,           // existential [18]-style baseline
};

/// How update_weights() reconciled a perturbation with the cached state.
enum class WeightUpdateClass : std::uint8_t {
  kNoChange,             // every delta matched the current weights
  kRescale,              // uniform L → cL: exact, only the scale factor moves
  kReusePreconditioner,  // level-0 refresh; deeper levels stale but SPD
  kPartialRebuild,       // per-level reweight sweep, structure preserved
  kFullRebuild,          // fresh stack from the entry's seed
};
const char* to_string(WeightUpdateClass c);

struct WeightDelta {
  EdgeId edge = kInvalidEdge;
  double new_weight = 0.0;  // absolute new weight (not a ratio)
};

struct WeightUpdateReport {
  WeightUpdateClass classification = WeightUpdateClass::kNoChange;
  std::size_t edges_changed = 0;
  /// max(r, 1/r) over the changed edges' weight ratios — the spectral
  /// similarity bound of this update (1 for kNoChange / kRescale).
  double spectral_ratio = 1.0;
  /// Same ratio restricted to the level-0 low-stretch tree edges; tree
  /// weights anchor the preconditioner, so they get a tighter limit.
  double tree_ratio = 1.0;
  /// Entry drift (product of reuse-rung ratios since the chain's numerics
  /// were last rebuilt) after applying this update.
  double cumulative_drift = 1.0;
  /// Rounds this update charged on the entry's ledger.
  std::uint64_t charged_local_rounds = 0;
};

struct SolverCacheOptions {
  /// Applied to every cached solver. For Chebyshev with eigenbound reuse the
  /// entry forces rhs_independent_eigenbounds on (the reused bound must not
  /// depend on whichever rhs arrived first, or warm results would diverge
  /// from cold solves); cold reference stacks must set it too for
  /// bit-comparison.
  LaplacianSolverOptions solver;
  CacheOracleKind oracle = CacheOracleKind::kShortcutCongest;
  /// Root seed of each entry's deterministic stream (chain sampling, oracle
  /// measurement). A full rebuild re-derives from this same seed, so a
  /// rebuilt entry is bit-interchangeable with a cold stack on the new
  /// weights.
  std::uint64_t seed = 0x5eedCACEull;
  /// Reuse the Chebyshev λ_max bound across an entry's solves (skips the
  /// charged power iteration from the second solve on). Safe for bit-identity
  /// because of the forced rhs-independent estimate above.
  bool reuse_chebyshev_eigenbounds = true;
  /// LRU budgets. The most-recent entry is never evicted (serving must
  /// proceed), even if it alone exceeds the byte budget.
  std::size_t max_entries = 8;
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
  /// update_weights classification ladder (docs/CACHING.md). A perturbation
  /// with per-edge ratio bound σ = max(r, 1/r) reuses the chain while
  /// σ ≤ reuse_ratio_limit, the level-0 tree drift stays within
  /// tree_ratio_limit, and the entry's cumulative drift stays within
  /// reuse_drift_limit; partially rebuilds while σ ≤ partial_ratio_limit;
  /// fully rebuilds beyond.
  double reuse_ratio_limit = 1.25;
  double tree_ratio_limit = 1.1;
  double partial_ratio_limit = 4.0;
  double reuse_drift_limit = 2.0;
  /// Test/bench hook: invoked on each entry's freshly constructed oracle
  /// before the hierarchy builds (e.g. to install a FaultPlan). A throw out
  /// of the subsequent build leaves the cache unchanged.
  std::function<void(CongestedPaOracle&)> oracle_hook;
};

/// Structure-only fingerprint: FNV-1a over node count and the edge list's
/// endpoints in id order. Weights are deliberately excluded — a reweighted
/// graph maps to the same entry and flows through the update ladder — while
/// edge-id assignment is deliberately included (the solver is edge-order
/// sensitive).
std::uint64_t graph_structure_fingerprint(const Graph& g);

/// One cached per-graph solver stack, owned by a SolverCache. Holds the
/// graph copy, the deterministic rng stream, the oracle (in warm-charging
/// mode), the solver hierarchy, and a long-lived SolveSession (which
/// persists reused — and rebounded — Chebyshev eigenbounds across solves).
class CachedSolverState {
 public:
  /// Warm solve. Results are bit-identical to a cold solve on an
  /// identically-seeded fresh stack; only the charged rounds differ. Under a
  /// uniform-rescale entry the returned x is the stored solve divided by the
  /// scale (exact; the residual is scale-invariant).
  LaplacianSolveReport solve(const Vec& b);
  std::vector<LaplacianSolveReport> solve_batch(const std::vector<Vec>& bs,
                                                ThreadPool* pool = nullptr);

  /// Applies `deltas` (absolute new weights; the last delta per edge wins)
  /// and reconciles the cached state through the classification ladder.
  /// Honest charging per rung; strong exception guarantee — a throw (e.g. a
  /// fault-injected rebuild) leaves the entry in its pre-update state.
  WeightUpdateReport update_weights(const std::vector<WeightDelta>& deltas);

  /// The stored graph (logical weights = stored × weight_scale()).
  const Graph& graph() const { return *graph_; }
  DistributedLaplacianSolver& solver() { return *solver_; }
  CongestedPaOracle& oracle() { return *oracle_; }
  SolveSession& session() { return *session_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  double weight_scale() const { return scale_; }
  double cumulative_drift() const { return drift_; }
  /// One-time rounds charged for the most recent (re)build.
  std::uint64_t build_rounds() const { return build_rounds_; }
  std::uint64_t solves() const { return solves_; }
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  std::optional<double> cached_eigenbound() const {
    return session_->cached_eigenbound();
  }
  /// Rough resident size (graph + hierarchy + base factor + oracle state).
  std::size_t approx_bytes() const;

 private:
  friend class SolverCache;
  CachedSolverState() = default;

  /// Builds the full stack for `g` into temporaries and commits on success
  /// (strong exception guarantee); charges the build and enables warm
  /// charging.
  void build(const Graph& g);
  /// One-time construction charge on the entry's ledger: hierarchy build,
  /// base gather, and every measured instance's dry run. Returns the total.
  std::uint64_t charge_build();

  SolverCacheOptions options_;
  std::uint64_t fingerprint_ = 0;
  // Order matters: the oracle holds references to graph_ and rng_, the
  // solver to the oracle, the session to the solver.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<CongestedPaOracle> oracle_;
  std::unique_ptr<DistributedLaplacianSolver> solver_;
  std::unique_ptr<SolveSession> session_;
  double scale_ = 1.0;   // logical L = scale_ × stored L
  double drift_ = 1.0;   // cumulative reuse-rung spectral ratio
  std::uint64_t build_rounds_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t full_rebuilds_ = 0;
};

class SolverCache {
 public:
  explicit SolverCache(SolverCacheOptions options = {});

  struct Acquired {
    CachedSolverState& state;
    bool hit;  // the structure was resident (weights may still have moved)
    /// How resident weights were reconciled with g's (kNoChange, untouched
    /// otherwise, on a miss or an exact hit).
    WeightUpdateReport update;
  };

  /// Returns the warm entry for g's structure, building (and charging) one
  /// on a miss. On a structure hit with different weights, the difference is
  /// routed through update_weights() before returning, so the entry always
  /// answers for exactly the graph handed in. Touches LRU order; may evict.
  Acquired acquire(const Graph& g);

  /// Structure residency probe; does not touch LRU order or weights.
  bool contains(const Graph& g) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t total_bytes() const;
  const SolverCacheOptions& options() const { return options_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  CachedSolverState& build_entry(const Graph& g, std::uint64_t key);
  void evict_over_budget();

  SolverCacheOptions options_;
  std::list<std::unique_ptr<CachedSolverState>> entries_;  // MRU first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dls
