// Congested-minor representation ([18]'s central data structure, which the
// paper replaces interface-wise with congested part-wise aggregation).
//
// A MinorGraph is a weighted graph whose nodes live at host nodes of the
// communication network G and whose edges are realized by host paths in G
// (inclusive of the two host endpoints). Degree-≤2 elimination and
// ultra-sparsification both transform MinorGraphs; the congestion ρ of a
// minor is the maximum number of host paths through one G node, and a
// minor matvec is exactly a ρ-congested part-wise aggregation instance.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "shortcuts/partition.hpp"

namespace dls {

struct MinorEdge {
  NodeId u = kInvalidNode;  // minor node ids
  NodeId v = kInvalidNode;
  double weight = 1.0;
  /// Host path in G from host[u] to host[v], inclusive; consecutive entries
  /// adjacent in G. For a direct edge this is {host[u], host[v]}.
  std::vector<NodeId> g_path;
};

struct MinorGraph {
  std::size_t num_nodes = 0;
  std::vector<NodeId> host;  // minor node -> G node
  std::vector<MinorEdge> edges;

  /// Plain Graph view (drops host annotations); parallel edges preserved.
  Graph as_graph() const;

  /// Max host paths (edges) through one G node, the ρ of Definition 13.
  std::size_t host_congestion(std::size_t g_nodes) const;

  /// The matvec PA instance: one part per minor edge, part = unique nodes of
  /// its host path (connected in G by construction). values slot layout
  /// matches parts; see matvec_values().
  PartCollection matvec_parts() const;

  /// The identity minor of a communication graph (level 0 of the chain).
  static MinorGraph identity(const Graph& g);

  /// Validation: hosts/path endpoints consistent, consecutive path adjacency.
  bool validate(const Graph& g) const;
};

}  // namespace dls
