// Batched multi-RHS solve sessions (docs/BATCHING.md).
//
// A SolveSession runs N independent right-hand sides against ONE solver:
// the level hierarchy, base Cholesky factor, and the oracle's measured PA
// costs are built/measured once and shared by all RHS. Determinism follows
// the SimBatch discipline: every slot gets a private RoundLedger, a private
// PA-call counter, and a splitmix-derived rng stream; slots never touch
// shared mutable state while in flight (oracle replay is const), and all
// merging happens afterwards on the calling thread in slot order. The result
// is bit-identical to N sequential solve() calls for every thread count.
#include <exception>
#include <map>
#include <memory>

#include "laplacian/recursive_solver.hpp"
#include "obs/ledger_clock.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_batch.hpp"
#include "util/thread_pool.hpp"

namespace dls {

SolveSession::SolveSession(DistributedLaplacianSolver& solver,
                           const SolveSessionOptions& options)
    : solver_(solver), options_(options) {}

std::vector<LaplacianSolveReport> SolveSession::solve_batch(
    const std::vector<Vec>& bs, ThreadPool* pool) {
  const std::size_t k = bs.size();
  batch_ledger_.clear();
  ++batches_run_;
  std::vector<LaplacianSolveReport> reports(k);
  if (k == 0) return reports;

  // Trace discipline mirrors the ledger discipline: the parent tracer (if
  // any) records the batch; every slot writes into a PRIVATE tracer clocked
  // by its private ledger, and the slot traces are absorbed on the calling
  // thread in slot order after the barrier. The merged trace is therefore
  // bit-identical for every thread count, pool or no pool.
  Tracer* parent = Tracer::ambient();
  ScopedSpan batch_span(parent, "session/batch", SpanKind::kSession);
  batch_span.counter("rhs", k);

  // Measurement — the only rng-consuming, oracle-mutating step of a solve —
  // happens up front on this thread, in the exact order sequential solves
  // would have triggered it lazily. After this, every slot only *replays*
  // cached costs. A ChaosAbortError here (fault injection during a measure
  // run) propagates to the caller exactly as it would from solve().
  solver_.warm_instances();

  const std::size_t num_instances = solver_.oracle_.num_instances();
  // One lease arena per slot (a SolveWorkspace is single-threaded by design).
  // The arenas persist across batches, so slot i's buffers are already warm
  // when the next batch reuses them — steady-state batches allocate nothing
  // inside the solve loops.
  while (slot_ws_.size() < k) {
    slot_ws_.push_back(std::make_unique<SolveWorkspace>());
  }
  std::vector<RoundLedger> ledgers(k);
  std::vector<std::vector<std::uint64_t>> pa_counts(
      k, std::vector<std::uint64_t>(num_instances, 0));
  std::vector<std::exception_ptr> errors(k);
  std::vector<std::unique_ptr<Tracer>> slot_tracers(k);
  if (parent != nullptr) {
    for (std::size_t i = 0; i < k; ++i) slot_tracers[i] = std::make_unique<Tracer>();
  }

  const bool reuse_bounds =
      options_.reuse_chebyshev_eigenbounds &&
      solver_.options_.outer == OuterIteration::kChebyshev &&
      !solver_.levels_[0].is_base;

  const auto run_slot = [&](std::size_t i, const double* reuse_hi,
                            double* publish_hi) {
    // Always install a scope: the slot tracer when tracing, nullptr
    // otherwise. The inline (pool == nullptr) path runs on the calling
    // thread, so without this its spans would leak straight into the parent
    // tracer and diverge from the pooled runs.
    Tracer* slot_tracer = parent != nullptr ? slot_tracers[i].get() : nullptr;
    TraceScope scope(slot_tracer);
    ClockScope clock(slot_tracer, ledger_clock(ledgers[i]));
    ScopedSpan span(slot_tracer, "session/rhs", SpanKind::kSession);
    span.counter("slot", i);
    try {
      DistributedLaplacianSolver::SolveContext ctx;
      ctx.ledger = &ledgers[i];
      ctx.pa_counts = &pa_counts[i];
      ctx.rng = Rng(derive_scenario_seed(options_.seed, i));
      ctx.reuse_hi = reuse_hi;
      ctx.publish_hi = publish_hi;
      ctx.ws = slot_ws_[i].get();
      reports[i] = solver_.solve_in_context(bs[i], ctx);
    } catch (...) {
      // ThreadPool tasks must not throw; park the exception in this slot and
      // rethrow in slot order after the barrier so failures are as
      // deterministic as successes.
      errors[i] = std::current_exception();
    }
  };

  std::size_t first_parallel = 0;
  if (reuse_bounds && !has_cached_hi_) {
    // Slot 0 estimates λ_max (charged, on its own private ledger); the rest
    // of the batch — and later batches of this session — reuse it. The
    // publish pointer also persists any watchdog *rebound* slot 0 applies,
    // so the session never re-diverges against a bound already proven stale.
    run_slot(0, nullptr, &cached_hi_);
    if (errors[0] == nullptr) has_cached_hi_ = true;
    first_parallel = 1;
  }
  const double* reuse_hi = reuse_bounds && has_cached_hi_ ? &cached_hi_ : nullptr;
  // Reusing slots publish into private cells (never the shared bound — slots
  // may run concurrently); rebounds are folded below after the barrier.
  std::vector<double> slot_hi(k, 0.0);
  if (pool == nullptr) {
    for (std::size_t i = first_parallel; i < k; ++i) {
      run_slot(i, reuse_hi, reuse_hi != nullptr ? &slot_hi[i] : nullptr);
    }
  } else {
    pool->parallel_for(k - first_parallel, [&](std::size_t j) {
      const std::size_t i = first_parallel + j;
      run_slot(i, reuse_hi, reuse_hi != nullptr ? &slot_hi[i] : nullptr);
    });
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (errors[i] != nullptr) std::rethrow_exception(errors[i]);
  }
  if (reuse_hi != nullptr) {
    // Persist rebounded eigenbounds: each reusing slot published the bound it
    // ended on (== cached_hi_ unless it rebounded; rebounds only widen).
    // max() is order-free, so the fold is thread-count invariant.
    for (std::size_t i = first_parallel; i < k; ++i) {
      cached_hi_ = std::max(cached_hi_, slot_hi[i]);
    }
  }

  // ---- Slot-ordered merge (single-threaded from here on). ----

  if (parent != nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      parent->absorb(*slot_tracers[i]);
    }
  }

  // Per-level recovery attribution: the batch is one "call" for stats_
  // purposes — reset once, then fold every slot's events in slot order.
  solver_.reset_recovery_attribution();
  RecoveryCounters scratch;
  for (std::size_t i = 0; i < k; ++i) {
    for (const RecoveryEvent& e : ledgers[i].recovery_events()) {
      solver_.fold_recovery_event(e, scratch, /*update_stats=*/true);
    }
  }

  // Amortized accounting of the whole batch: instead of replaying k solves
  // onto the oracle's ledger, the batch charges pipelined group phases.
  //
  //   * PA phases group positionally per instance: the p-th aggregate call
  //     on an instance across all slots runs as ONE congested phase of
  //     R + (n−1)·max(1, peak-slot) local rounds (G + (n−1) global), n being
  //     the number of slots that reached position p.
  //   * Non-PA local phases (matvec-L0 exchanges, elimination chains, base
  //     transfers, checkpoints) are bandwidth-bound — every RHS ships its own
  //     words — and group positionally per label at h + (n−1) rounds: a
  //     1-round exchange degenerates to n rounds (no savings), an h-hop
  //     chain pipelines.
  //
  // The fold is grouped (instances ascending, then labels lexicographic,
  // positions ascending) rather than interleaved in phase order; totals are
  // what matter for the shared ledger, and the grouping is deterministic.
  ClockScope charge_clock(parent, ledger_clock(batch_ledger_));
  ScopedSpan charge_span(parent, "session/amortized-charge", SpanKind::kPhase);
  std::uint64_t pa_groups = 0;
  for (CongestedPaOracle::InstanceId inst = 0; inst < num_instances; ++inst) {
    std::uint64_t max_calls = 0;
    for (std::size_t i = 0; i < k; ++i) {
      max_calls = std::max(max_calls, pa_counts[i][inst]);
    }
    for (std::uint64_t pos = 0; pos < max_calls; ++pos) {
      std::size_t n = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if (pa_counts[i][inst] > pos) ++n;
      }
      solver_.oracle_.charge_batched(inst, n, batch_ledger_);
      ++pa_groups;
    }
  }
  const std::string pa_label = solver_.oracle_.name() + "-pa";
  std::map<std::string, std::vector<std::vector<const LedgerEntry*>>> by_label;
  for (std::size_t i = 0; i < k; ++i) {
    for (const LedgerEntry& e : ledgers[i].entries()) {
      if (e.label == pa_label) continue;  // folded above via charge_batched
      auto& slots = by_label[e.label];
      if (slots.empty()) slots.resize(k);
      slots[i].push_back(&e);
    }
  }
  for (const auto& [label, slots] : by_label) {
    std::size_t max_len = 0;
    for (const auto& list : slots) max_len = std::max(max_len, list.size());
    for (std::size_t pos = 0; pos < max_len; ++pos) {
      std::size_t n = 0;
      std::uint64_t local = 0, global = 0;
      for (const auto& list : slots) {
        if (list.size() <= pos) continue;
        ++n;
        local = std::max(local, list[pos]->local_rounds);
        global = std::max(global, list[pos]->global_rounds);
      }
      if (local > 0) {
        batch_ledger_.charge_local(local + (n - 1), label);
      }
      if (global > 0) {
        batch_ledger_.charge_global(global + (n - 1), label);
      }
    }
  }
  // Recovery events ride along in slot order so the shared ledger keeps the
  // full typed trace of what every slot's resilience layer did.
  for (std::size_t i = 0; i < k; ++i) {
    for (const RecoveryEvent& e : ledgers[i].recovery_events()) {
      batch_ledger_.record_recovery(e);
    }
  }
  if (options_.amortized_charging) {
    solver_.oracle_.ledger().absorb(batch_ledger_, "batch");
    solver_.oracle_.note_batched_pa_calls(pa_groups);
  }
  charge_span.counter("pa-groups", pa_groups);
  charge_span.counter("labels", by_label.size());
  charge_span.finish();
  rhs_solved_ += k;

  static MetricCounter& batch_metric =
      MetricsRegistry::global().counter("session.batches");
  static MetricCounter& rhs_metric =
      MetricsRegistry::global().counter("session.rhs");
  static MetricHistogram& batch_size_metric = MetricsRegistry::global().histogram(
      "session.batch_size", MetricsRegistry::pow2_bounds(10));
  batch_metric.increment();
  rhs_metric.increment(k);
  batch_size_metric.observe(k);
  return reports;
}

std::vector<LaplacianSolveReport> DistributedLaplacianSolver::solve_batch(
    const std::vector<Vec>& bs, ThreadPool* pool) {
  SolveSession session(*this);
  return session.solve_batch(bs, pool);
}

}  // namespace dls
