// Harmonic interpolation (the graph Dirichlet problem): given boundary
// nodes with fixed values, extend to interior nodes so that every interior
// node's value is the weighted average of its neighbors — equivalently
// minimize the Laplacian energy xᵀLx subject to the boundary constraints.
// This is the semi-supervised label-propagation / heat-equilibrium use case
// of the Laplacian paradigm, and on the solver side it exercises Dirichlet
// (grounded) systems rather than the pure Neumann systems of Lx = b.
//
// Distributed realization: the interior system L_II x_I = −L_IB x_B is
// solved by the standard penalty embedding — run the usual solver on G with
// boundary nodes tied to their values through a stiff penalty weight — so
// all communication goes through the same congested-PA oracle machinery.
#pragma once

#include "laplacian/pa_oracle.hpp"
#include "laplacian/recursive_solver.hpp"

namespace dls {

struct HarmonicProblem {
  std::vector<NodeId> boundary_nodes;
  std::vector<double> boundary_values;  // aligned
};

struct HarmonicResult {
  Vec x;                         // boundary entries ≈ fixed values
  double max_boundary_error = 0.0;
  double max_harmonic_violation = 0.0;  // interior averaging residual
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t pa_calls = 0;
};

struct HarmonicOptions {
  double penalty = 1e6;        // stiffness tying boundary nodes down
  double tolerance = 1e-10;    // inner solver tolerance
  std::size_t base_size = 64;
};

/// Solves the Dirichlet problem on g (communication network = system graph)
/// through the shortcut PA oracle.
HarmonicResult solve_harmonic(const Graph& g, const HarmonicProblem& problem,
                              Rng& rng,
                              const HarmonicOptions& options = {});

/// Exact sequential reference (direct elimination of the interior block).
Vec solve_harmonic_reference(const Graph& g, const HarmonicProblem& problem);

/// Max over interior nodes of |x_v − weighted neighbor average|·deg_w(v) —
/// zero iff x is harmonic on the interior.
double harmonic_violation(const Graph& g, const HarmonicProblem& problem,
                          const Vec& x);

}  // namespace dls
