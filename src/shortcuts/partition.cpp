#include "shortcuts/partition.hpp"

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"

namespace dls {

std::size_t congestion(const Graph& g, const PartCollection& pc) {
  std::vector<std::size_t> count(g.num_nodes(), 0);
  std::size_t rho = 0;
  for (const auto& part : pc.parts) {
    for (NodeId v : part) {
      DLS_REQUIRE(v < g.num_nodes(), "part member out of range");
      rho = std::max(rho, ++count[v]);
    }
  }
  return rho;
}

bool is_valid_part_collection(const Graph& g, const PartCollection& pc,
                              bool require_disjoint) {
  std::vector<std::size_t> count(g.num_nodes(), 0);
  for (const auto& part : pc.parts) {
    if (part.empty()) return false;
    std::set<NodeId> seen;
    for (NodeId v : part) {
      if (v >= g.num_nodes()) return false;
      if (!seen.insert(v).second) return false;  // repeated within part
      ++count[v];
    }
    const InducedSubgraph sub = induced_subgraph(g, part);
    if (!is_connected(sub.graph)) return false;
  }
  if (require_disjoint) {
    for (std::size_t c : count) {
      if (c > 1) return false;
    }
  }
  return true;
}

PartCollection random_voronoi_partition(const Graph& g, std::size_t k, Rng& rng) {
  DLS_REQUIRE(k >= 1 && k <= g.num_nodes(), "bad number of centers");
  // Distinct random centers.
  std::vector<NodeId> centers;
  {
    std::vector<std::size_t> perm = rng.permutation(g.num_nodes());
    centers.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(k));
  }
  const BfsResult r = bfs_multi(g, centers);
  // Assign each node to the center whose BFS tree captured it: walk parents.
  std::vector<std::uint32_t> owner(g.num_nodes(), static_cast<std::uint32_t>(-1));
  for (std::uint32_t i = 0; i < centers.size(); ++i) owner[centers[i]] = i;
  // Nodes in BFS order of increasing distance inherit their parent's owner,
  // which keeps every part connected (it is a union of BFS-tree subtrees).
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return r.dist[a] < r.dist[b];
  });
  for (NodeId v : order) {
    if (owner[v] == static_cast<std::uint32_t>(-1) &&
        r.parent[v] != kInvalidNode) {
      owner[v] = owner[r.parent[v]];
    }
  }
  PartCollection pc;
  pc.parts.assign(k, {});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (owner[v] != static_cast<std::uint32_t>(-1)) {
      pc.parts[owner[v]].push_back(v);
    }
  }
  // Unreachable nodes (disconnected graph) are simply not covered — allowed.
  std::erase_if(pc.parts, [](const auto& part) { return part.empty(); });
  return pc;
}

PartCollection grid_row_partition(std::size_t rows, std::size_t cols) {
  PartCollection pc;
  pc.parts.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<NodeId> part;
    part.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      part.push_back(static_cast<NodeId>(r * cols + c));
    }
    pc.parts.push_back(std::move(part));
  }
  return pc;
}

PartCollection figure1_diagonal_instance(std::size_t side) {
  DLS_REQUIRE(side >= 2, "diagonal instance needs side >= 2");
  PartCollection pc;
  // Anti-diagonal d = r + c, d in [0, 2s-2]. Part d = diagonal d ∪ diagonal
  // d+1 (for d < 2s-2): connected in the grid, and node congestion 2 since
  // each diagonal belongs to parts d-1 and d.
  const auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * side + c);
  };
  for (std::size_t d = 0; d + 1 <= 2 * side - 2; ++d) {
    std::vector<NodeId> part;
    for (std::size_t dd = d; dd <= d + 1 && dd <= 2 * side - 2; ++dd) {
      for (std::size_t r = 0; r < side; ++r) {
        if (dd >= r && dd - r < side) part.push_back(id(r, dd - r));
      }
    }
    pc.parts.push_back(std::move(part));
  }
  return pc;
}

PartCollection stacked_voronoi_instance(const Graph& g, std::size_t k,
                                        std::size_t rho, Rng& rng) {
  PartCollection pc;
  for (std::size_t layer = 0; layer < rho; ++layer) {
    PartCollection one = random_voronoi_partition(g, k, rng);
    for (auto& part : one.parts) pc.parts.push_back(std::move(part));
  }
  return pc;
}

PartCollection random_path_instance(const Graph& g, std::size_t num_paths,
                                    std::size_t max_length, std::size_t rho,
                                    Rng& rng) {
  DLS_REQUIRE(rho >= 1, "congestion bound must be positive");
  PartCollection pc;
  std::vector<std::size_t> load(g.num_nodes(), 0);
  for (std::size_t attempt = 0; attempt < 20 * num_paths; ++attempt) {
    if (pc.parts.size() == num_paths) break;
    const NodeId start = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (load[start] >= rho) continue;
    std::vector<NodeId> path{start};
    std::vector<char> on_path(g.num_nodes(), 0);
    on_path[start] = 1;
    NodeId cur = start;
    while (path.size() < max_length) {
      // Random eligible neighbor: not already on this path, load < rho.
      std::vector<NodeId> options;
      for (const Adjacency& a : g.neighbors(cur)) {
        if (!on_path[a.neighbor] && load[a.neighbor] < rho) {
          options.push_back(a.neighbor);
        }
      }
      if (options.empty()) break;
      cur = options[rng.next_below(options.size())];
      on_path[cur] = 1;
      path.push_back(cur);
    }
    for (NodeId v : path) ++load[v];
    pc.parts.push_back(std::move(path));
  }
  return pc;
}

}  // namespace dls
