// Low-congestion shortcuts (Definition 5): per part P_i a helper subgraph
// H_i ⊆ G such that diam(G[P_i] ∪ H_i) ≤ d and every edge lies in at most c
// of the H_i. Quality Q = c + d.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "shortcuts/partition.hpp"

namespace dls {

struct Shortcut {
  /// h_edges[i] = edges of H_i (edge ids in the host graph).
  std::vector<std::vector<EdgeId>> h_edges;
};

struct ShortcutQuality {
  std::size_t congestion = 0;  // max over edges of #H_i containing it
  std::size_t dilation = 0;    // max over parts of diam(G[P_i] ∪ H_i)
  std::size_t quality() const { return congestion + dilation; }
};

/// Measures c and d of Definition 5 exactly. Each part-plus-shortcut subgraph
/// must be connected (throws otherwise): a disconnected H cannot aggregate.
ShortcutQuality measure_shortcut(const Graph& g, const PartCollection& pc,
                                 const Shortcut& shortcut);

/// The node set and edge set of G[P_i] ∪ H_i, as an induced-style subgraph
/// over the union of part members and H_i endpoints.
struct PartSubgraph {
  std::vector<NodeId> nodes;   // host ids, part members first
  std::vector<EdgeId> edges;   // host edge ids of G[P_i] plus H_i
};

PartSubgraph part_subgraph(const Graph& g, const std::vector<NodeId>& part,
                           const std::vector<EdgeId>& h_edges);

}  // namespace dls
