// Part-wise aggregation via shortcuts (Proposition 6): given a part
// collection and a shortcut, every part aggregates over a BFS tree of
// G[P_i] ∪ H_i; all trees run concurrently under per-edge CONGEST capacity.
// Rounds are measured, not modeled: the scheduler simulates every message.
#pragma once

#include "shortcuts/construction.hpp"
#include "shortcuts/partition.hpp"
#include "shortcuts/shortcut.hpp"
#include "sim/aggregation_scheduler.hpp"

namespace dls {

struct PartwiseAggregationOutcome {
  std::vector<double> results;  // aggregate per part
  AggregationOutcome schedule;  // measured rounds / congestion / messages
};

/// values[i][j] is the input of pc.parts[i][j]. Every part member learns the
/// part aggregate (the broadcast phase is included in the measured rounds).
/// An optional FaultPlan (sim/fault_injection.hpp) makes the underlying
/// scheduler fault-tolerant; see run_tree_aggregations for the semantics.
PartwiseAggregationOutcome solve_partwise_aggregation(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, const Shortcut& shortcut, Rng& rng,
    SchedulingPolicy policy = SchedulingPolicy::kRandomPriority,
    FaultPlan* faults = nullptr);

/// Convenience: constructs the best available shortcut, then aggregates.
PartwiseAggregationOutcome solve_partwise_aggregation_auto(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng,
    SchedulingPolicy policy = SchedulingPolicy::kRandomPriority);

}  // namespace dls
