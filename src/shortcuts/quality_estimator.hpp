// Empirical shortcut-quality estimation (Definition 7).
//
// SQ(G) is a max–min over all partitions and all shortcuts — NP-hard to
// compute exactly and open even to approximate in general. We estimate it the
// way the experiments need it: sample adversarial partition families
// (Voronoi balls at several granularities and tree-chopped long skinny
// parts), build the best available shortcut for each, and report the worst
// measured quality. This yields a reproducible *estimate*: an upper bound on
// the optimum for the sampled partitions, anchored below by the
// unconditional bound SQ(G) = Ω(D). Theorem 22 (SQ(Ĝ_ρ) = Õ(SQ(G))) is
// validated by comparing estimates computed identically on both graphs.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "shortcuts/construction.hpp"

namespace dls {

class ThreadPool;

struct SqSample {
  std::string partition_family;
  std::size_t num_parts = 0;
  ShortcutQuality quality;     // best construction's measured quality
  std::string construction;    // which construction won
};

struct SqEstimate {
  std::size_t quality = 0;     // max over samples (the SQ estimate)
  std::uint32_t diameter = 0;  // D(G): SQ >= Ω(D) anchor
  std::vector<SqSample> samples;
};

struct SqEstimateOptions {
  int voronoi_granularities = 3;  // k = n^(1/2), n/8, n/2 style sweep
  bool tree_chop = true;
  std::size_t max_extra_partitions = 4;
  /// Optional worker pool: the per-partition shortcut constructions run
  /// concurrently, each on an Rng forked in sample order, so the estimate is
  /// bit-identical with and without a pool.
  ThreadPool* pool = nullptr;
};

SqEstimate estimate_shortcut_quality(const Graph& g, Rng& rng,
                                     const SqEstimateOptions& options = {},
                                     const std::vector<PartCollection>&
                                         extra_partitions = {});

}  // namespace dls
