// Shortcut constructions.
//
// We implement the two constructions the paper's unconditional CONGEST
// results rest on: the trivial shortcut (H_i = ∅, quality = max part
// diameter) and tree-restricted shortcuts (Ghaffari–Haeupler [20, 21, 26]):
// H_i is the Steiner subtree of P_i in a global spanning tree. On a BFS tree
// of a minor-dense graph this yields the Õ(δD) quality of Theorem 10. The
// state-of-the-art general-graph construction [27] is a major system of its
// own and is substituted per DESIGN.md §2; `build_best_shortcut` measures
// every available construction and returns the best, which is exactly what
// the quality estimator and the PA engine need.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "shortcuts/partition.hpp"
#include "shortcuts/shortcut.hpp"

namespace dls {

/// A spanning tree rooted for Steiner-subtree queries.
struct RootedSpanningTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;       // parent[root] == root
  std::vector<EdgeId> parent_edge;  // kInvalidEdge at root
  std::vector<std::uint32_t> depth;
};

/// Roots `tree_edges` (must span the connected graph g) at `root`.
RootedSpanningTree root_spanning_tree(const Graph& g,
                                      std::span<const EdgeId> tree_edges,
                                      NodeId root);

/// A BFS spanning tree rooted at an (approximate) center of g — the standard
/// host tree for tree-restricted shortcuts.
RootedSpanningTree centered_bfs_tree(const Graph& g, Rng& rng);

/// H_i = ∅ for every part.
Shortcut trivial_shortcut(const PartCollection& pc);

/// H_i = Steiner subtree of P_i's members in `tree` (pruned exactly: the
/// minimal subtree spanning the members).
Shortcut tree_restricted_shortcut(const Graph& g, const PartCollection& pc,
                                  const RootedSpanningTree& tree);

struct BestShortcut {
  Shortcut shortcut;
  ShortcutQuality quality;
  const char* construction = "";  // which candidate won
};

/// Measures the trivial and tree-restricted candidates and returns the one
/// with the smallest quality Q = c + d.
BestShortcut build_best_shortcut(const Graph& g, const PartCollection& pc,
                                 Rng& rng);

/// Chops a spanning tree into connected parts of ~`target_size` nodes each —
/// the adversarial long-skinny-parts instances (rows of a grid generalize
/// to any graph this way).
PartCollection tree_chop_partition(const Graph& g, const RootedSpanningTree& tree,
                                   std::size_t target_size);

}  // namespace dls
