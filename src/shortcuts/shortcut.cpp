#include "shortcuts/shortcut.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace dls {

PartSubgraph part_subgraph(const Graph& g, const std::vector<NodeId>& part,
                           const std::vector<EdgeId>& h_edges) {
  PartSubgraph sub;
  std::unordered_set<NodeId> node_set(part.begin(), part.end());
  sub.nodes = part;
  for (EdgeId e : h_edges) {
    const Edge& edge = g.edge(e);
    if (node_set.insert(edge.u).second) sub.nodes.push_back(edge.u);
    if (node_set.insert(edge.v).second) sub.nodes.push_back(edge.v);
  }
  // Edges of G[P_i]: both endpoints are part members.
  std::unordered_set<NodeId> members(part.begin(), part.end());
  std::unordered_set<EdgeId> edge_set;
  for (NodeId v : part) {
    for (const Adjacency& a : g.neighbors(v)) {
      if (members.count(a.neighbor) > 0) edge_set.insert(a.edge);
    }
  }
  for (EdgeId e : h_edges) edge_set.insert(e);
  sub.edges.assign(edge_set.begin(), edge_set.end());
  std::sort(sub.edges.begin(), sub.edges.end());
  return sub;
}

namespace {

/// Hop-diameter of the subgraph described by (nodes, edges) in host ids.
/// Exact for small subgraphs; double sweep (exact on trees, ≤2x otherwise)
/// when the subgraph is large. Shortcut subgraphs are usually tree-like, so
/// the estimate is almost always exact; measure_shortcut is a measurement
/// tool, not part of any algorithm's correctness.
std::size_t subgraph_diameter(const Graph& g, const PartSubgraph& sub) {
  // Local adjacency.
  std::unordered_map<NodeId, std::uint32_t> local;
  for (std::uint32_t i = 0; i < sub.nodes.size(); ++i) local[sub.nodes[i]] = i;
  Graph h(sub.nodes.size());
  for (EdgeId e : sub.edges) {
    const Edge& edge = g.edge(e);
    h.add_edge(local.at(edge.u), local.at(edge.v), edge.weight);
  }
  DLS_REQUIRE(is_connected(h), "part + shortcut subgraph is disconnected");
  if (h.num_nodes() <= 400) return exact_diameter(h);
  Rng rng(12345);
  return approx_diameter(h, rng, 6);
}

}  // namespace

ShortcutQuality measure_shortcut(const Graph& g, const PartCollection& pc,
                                 const Shortcut& shortcut) {
  DLS_REQUIRE(shortcut.h_edges.size() == pc.num_parts(),
              "shortcut must have one H_i per part");
  ShortcutQuality q;
  std::vector<std::size_t> edge_load(g.num_edges(), 0);
  for (const auto& h : shortcut.h_edges) {
    std::unordered_set<EdgeId> distinct(h.begin(), h.end());
    for (EdgeId e : distinct) {
      DLS_REQUIRE(e < g.num_edges(), "shortcut edge out of range");
      q.congestion = std::max(q.congestion, ++edge_load[e]);
    }
  }
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    const PartSubgraph sub = part_subgraph(g, pc.parts[i], shortcut.h_edges[i]);
    q.dilation = std::max(q.dilation, subgraph_diameter(g, sub));
  }
  // A shortcut with zero helper edges on single-node parts has dilation 0;
  // quality is still well defined.
  return q;
}

}  // namespace dls
