#include "shortcuts/unicast.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

/// Weighted shortest path by per-edge costs (Dijkstra over hop costs).
std::vector<NodeId> cheapest_path(const Graph& g, NodeId from, NodeId to,
                                  const std::vector<double>& edge_cost) {
  std::vector<double> dist(g.num_nodes(), std::numeric_limits<double>::infinity());
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == to) break;
    for (const Adjacency& a : g.neighbors(v)) {
      const double nd = d + edge_cost[a.edge];
      if (nd < dist[a.neighbor]) {
        dist[a.neighbor] = nd;
        parent[a.neighbor] = v;
        heap.push({nd, a.neighbor});
      }
    }
  }
  DLS_REQUIRE(dist[to] < std::numeric_limits<double>::infinity(),
              "unicast endpoints are disconnected");
  std::vector<NodeId> path;
  for (NodeId v = to; v != kInvalidNode; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Any edge id between two adjacent nodes.
EdgeId edge_between(const Graph& g, NodeId u, NodeId v) {
  for (const Adjacency& a : g.neighbors(u)) {
    if (a.neighbor == v) return a.edge;
  }
  DLS_ASSERT(false, "edge_between: nodes not adjacent");
  return kInvalidEdge;
}

void apply_load(const Graph& g, const std::vector<NodeId>& path,
                std::vector<std::size_t>& load, int delta) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const EdgeId e = edge_between(g, path[i], path[i + 1]);
    load[e] = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(load[e]) + delta);
  }
}

}  // namespace

UnicastSolution measure_paths(const Graph& g,
                              std::vector<std::vector<NodeId>> paths) {
  UnicastSolution solution;
  solution.edge_load.assign(g.num_edges(), 0);
  for (const auto& path : paths) {
    DLS_REQUIRE(!path.empty(), "empty path");
    solution.dilation = std::max(solution.dilation, path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const EdgeId e = edge_between(g, path[i], path[i + 1]);
      solution.congestion = std::max(solution.congestion, ++solution.edge_load[e]);
    }
  }
  solution.paths = std::move(paths);
  return solution;
}

UnicastSolution route_multiple_unicast(
    const Graph& g, std::span<const std::pair<NodeId, NodeId>> pairs, Rng& rng,
    int reroute_sweeps) {
  std::vector<std::vector<NodeId>> paths(pairs.size());
  std::vector<std::size_t> load(g.num_edges(), 0);
  std::vector<double> cost(g.num_edges(), 1.0);
  // Congestion-aware cost: 1 + load² keeps paths short while spreading load.
  const auto refresh_cost = [&]() {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      cost[e] = 1.0 + static_cast<double>(load[e]) * static_cast<double>(load[e]);
    }
  };
  std::vector<std::size_t> order = rng.permutation(pairs.size());
  for (std::size_t i : order) {
    refresh_cost();
    paths[i] = cheapest_path(g, pairs[i].first, pairs[i].second, cost);
    apply_load(g, paths[i], load, +1);
  }
  for (int sweep = 0; sweep < reroute_sweeps; ++sweep) {
    for (std::size_t i : rng.permutation(pairs.size())) {
      apply_load(g, paths[i], load, -1);
      refresh_cost();
      paths[i] = cheapest_path(g, pairs[i].first, pairs[i].second, cost);
      apply_load(g, paths[i], load, +1);
    }
  }
  return measure_paths(g, std::move(paths));
}

UnicastSolution any_to_any_cast(const Graph& g, std::span<const NodeId> sources,
                                std::span<const NodeId> sinks, Rng& rng) {
  DLS_REQUIRE(sources.size() == sinks.size(), "sources/sinks size mismatch");
  UnicastSolution best;
  bool have_best = false;
  // Candidate 1: node-disjoint flow matching (optimal congestion when
  // disjointly connectable; flow paths can be long, so dilation may suffer).
  {
    const NodeDisjointPathsResult flow =
        max_node_disjoint_paths(g, sources, sinks, 1);
    if (flow.connected_pairs == sources.size()) {
      best = measure_paths(g, flow.paths);
      have_best = true;
    }
  }
  // Candidate 2: greedy nearest matching + congestion-aware routing.
  {
    std::vector<char> used(sinks.size(), 0);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (NodeId s : sources) {
      const BfsResult r = bfs(g, s);
      std::size_t arg = SIZE_MAX;
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        if (used[j]) continue;
        if (arg == SIZE_MAX || r.dist[sinks[j]] < r.dist[sinks[arg]]) arg = j;
      }
      DLS_ASSERT(arg != SIZE_MAX, "matching ran out of sinks");
      used[arg] = 1;
      pairs.push_back({s, sinks[arg]});
    }
    UnicastSolution candidate = route_multiple_unicast(g, pairs, rng);
    if (!have_best || candidate.quality() < best.quality()) {
      best = std::move(candidate);
    }
  }
  return best;
}

std::uint64_t simulate_packet_routing(const Graph& g,
                                      const std::vector<std::vector<NodeId>>& paths,
                                      Rng& rng) {
  // Packet i sits at position pos[i] along its path; per round each
  // (edge, direction) admits one packet, random priority per packet.
  struct Packet {
    std::size_t pos = 0;
    std::uint64_t priority = 0;
  };
  std::vector<Packet> packets(paths.size());
  std::size_t arrived = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    DLS_REQUIRE(!paths[i].empty(), "empty path");
    packets[i].priority = rng();
    if (paths[i].size() == 1) ++arrived;
  }
  std::uint64_t rounds = 0;
  while (arrived < paths.size()) {
    DLS_ASSERT(++rounds < 64ull * 1024 * 1024, "packet routing stalled");
    // Contending packets per directed edge.
    std::map<std::pair<NodeId, NodeId>, std::size_t> winner;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (packets[i].pos + 1 >= paths[i].size()) continue;
      const std::pair<NodeId, NodeId> slot{paths[i][packets[i].pos],
                                           paths[i][packets[i].pos + 1]};
      const auto it = winner.find(slot);
      if (it == winner.end() ||
          packets[i].priority < packets[it->second].priority) {
        winner[slot] = i;
      }
    }
    for (const auto& [slot, i] : winner) {
      (void)slot;
      ++packets[i].pos;
      if (packets[i].pos + 1 == paths[i].size()) ++arrived;
    }
  }
  return rounds;
}

AnyToAnyDecomposition decompose_any_to_any(const Graph& g,
                                           std::span<const NodeId> sources,
                                           std::span<const NodeId> sinks) {
  DLS_REQUIRE(sources.size() == sinks.size(), "sources/sinks size mismatch");
  AnyToAnyDecomposition result;
  std::vector<NodeId> rem_sources(sources.begin(), sources.end());
  std::vector<NodeId> rem_sinks(sinks.begin(), sinks.end());
  std::size_t guard = 0;
  while (!rem_sources.empty()) {
    DLS_ASSERT(++guard <= 4 * sources.size() + 16,
               "any-to-any decomposition failed to make progress");
    // A maximum node-disjointly-connectable sub-batch: the endpoints of a
    // maximum node-disjoint path packing between the remainders.
    const NodeDisjointPathsResult flow =
        max_node_disjoint_paths(g, rem_sources, rem_sinks, 1);
    DLS_REQUIRE(flow.connected_pairs > 0,
                "sources and sinks are not connected in G");
    std::vector<NodeId> group_s, group_t;
    // Endpoints of each found path; remove one occurrence of each from the
    // remainders (multiset semantics).
    auto remove_one = [](std::vector<NodeId>& pool, NodeId v) {
      const auto it = std::find(pool.begin(), pool.end(), v);
      DLS_ASSERT(it != pool.end(), "path endpoint not in pool");
      pool.erase(it);
    };
    for (const auto& path : flow.paths) {
      group_s.push_back(path.front());
      group_t.push_back(path.back());
      remove_one(rem_sources, path.front());
      remove_one(rem_sinks, path.back());
    }
    result.source_groups.push_back(std::move(group_s));
    result.sink_groups.push_back(std::move(group_t));
  }
  return result;
}

}  // namespace dls
