// Part collections for the (congested) part-wise aggregation problem.
//
// A Partition (Definition 4) is a collection of disjoint, individually
// connected node sets. A congested part collection (Definition 13) drops
// disjointness: a node may belong to up to ρ parts. Both are represented as
// PartCollection; `congestion()` distinguishes them (ρ = 1 ⇔ partition).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

struct PartCollection {
  /// parts[i] lists the member nodes of part i (distinct within a part).
  std::vector<std::vector<NodeId>> parts;

  std::size_t num_parts() const { return parts.size(); }
};

/// Max number of parts any node belongs to (the ρ of Definition 13).
std::size_t congestion(const Graph& g, const PartCollection& pc);

/// Checks Definition 13: members in range and distinct per part, and each
/// G[P_i] connected. With require_disjoint, additionally checks ρ == 1.
bool is_valid_part_collection(const Graph& g, const PartCollection& pc,
                              bool require_disjoint = false);

// --- Instance generators used by tests and benchmarks ----------------------

/// Voronoi-style partition: k random centers, nodes join their closest center
/// (multi-source BFS); parts are connected by construction. Covers all nodes.
PartCollection random_voronoi_partition(const Graph& g, std::size_t k, Rng& rng);

/// Rows of an r×c grid as parts (the classic worst case for grids: k = r
/// paths of length c that any shortcut must route across columns).
PartCollection grid_row_partition(std::size_t rows, std::size_t cols);

/// The Figure 1 instance: on an s×s grid, ρ = 2 diagonal "stripe" parts —
/// part d (0 ≤ d < 2s−1) contains every node on anti-diagonal d taken
/// together with the next anti-diagonal, so that every two adjacent diagonal
/// parts share a node and no pair of parts can be separated into disjoint
/// 1-congested instances (Observation 14).
PartCollection figure1_diagonal_instance(std::size_t side);

/// ρ overlapping Voronoi partitions stacked together: a generic ρ-congested
/// instance on any graph.
PartCollection stacked_voronoi_instance(const Graph& g, std::size_t k,
                                        std::size_t rho, Rng& rng);

/// Random simple paths as parts (each part is a path, possibly overlapping
/// others), node congestion at most rho. Used for Lemma 18-style instances.
PartCollection random_path_instance(const Graph& g, std::size_t num_paths,
                                    std::size_t max_length, std::size_t rho,
                                    Rng& rng);

}  // namespace dls
