#include "shortcuts/construction.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace dls {

RootedSpanningTree root_spanning_tree(const Graph& g,
                                      std::span<const EdgeId> tree_edges,
                                      NodeId root) {
  DLS_REQUIRE(root < g.num_nodes(), "root out of range");
  RootedSpanningTree t;
  t.root = root;
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  t.depth.assign(g.num_nodes(), 0);
  std::vector<std::vector<Adjacency>> adj(g.num_nodes());
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    adj[edge.u].push_back({edge.v, e});
    adj[edge.v].push_back({edge.u, e});
  }
  std::vector<NodeId> stack{root};
  std::vector<char> seen(g.num_nodes(), 0);
  seen[root] = 1;
  t.parent[root] = root;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++visited;
    for (const Adjacency& a : adj[v]) {
      if (seen[a.neighbor]) continue;
      seen[a.neighbor] = 1;
      t.parent[a.neighbor] = v;
      t.parent_edge[a.neighbor] = a.edge;
      t.depth[a.neighbor] = t.depth[v] + 1;
      stack.push_back(a.neighbor);
    }
  }
  DLS_REQUIRE(visited == g.num_nodes(), "tree edges do not span the graph");
  return t;
}

RootedSpanningTree centered_bfs_tree(const Graph& g, Rng& rng) {
  DLS_REQUIRE(g.num_nodes() >= 1, "empty graph");
  // Approximate center: endpoint-midpoint of a double sweep.
  NodeId start = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  const BfsResult r1 = bfs(g, start);
  NodeId far1 = start;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DLS_REQUIRE(r1.dist[v] != BfsResult::kUnreachable,
                "centered_bfs_tree requires a connected graph");
    if (r1.dist[v] > r1.dist[far1]) far1 = v;
  }
  const BfsResult r2 = bfs(g, far1);
  NodeId far2 = far1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r2.dist[v] > r2.dist[far2]) far2 = v;
  }
  // Midpoint of the far1→far2 path.
  NodeId center = far2;
  std::uint32_t steps = r2.dist[far2] / 2;
  while (steps-- > 0) center = r2.parent[center];
  const std::vector<EdgeId> edges = bfs_tree_edges(g, center);
  return root_spanning_tree(g, edges, center);
}

Shortcut trivial_shortcut(const PartCollection& pc) {
  Shortcut s;
  s.h_edges.assign(pc.num_parts(), {});
  return s;
}

Shortcut tree_restricted_shortcut(const Graph& g, const PartCollection& pc,
                                  const RootedSpanningTree& tree) {
  Shortcut s;
  s.h_edges.reserve(pc.num_parts());
  for (const auto& part : pc.parts) {
    // Union of member→root paths, then prune non-member leaves: the exact
    // Steiner subtree of the members in the tree.
    std::unordered_map<NodeId, std::size_t> union_degree;
    std::unordered_set<NodeId> on_union;
    std::vector<std::pair<NodeId, EdgeId>> union_edges;  // (child, edge up)
    for (NodeId v : part) {
      NodeId cur = v;
      while (on_union.insert(cur).second && cur != tree.root) {
        union_edges.push_back({cur, tree.parent_edge[cur]});
        cur = tree.parent[cur];
      }
    }
    // Build child-count for pruning.
    std::unordered_map<NodeId, std::vector<std::pair<NodeId, EdgeId>>> children;
    for (const auto& [child, e] : union_edges) {
      children[tree.parent[child]].push_back({child, e});
      ++union_degree[child];
      ++union_degree[tree.parent[child]];
    }
    const std::unordered_set<NodeId> members(part.begin(), part.end());
    // Iteratively peel degree-1 non-member nodes.
    std::vector<NodeId> peel;
    for (NodeId v : on_union) {
      if (union_degree[v] == 1 && members.count(v) == 0) peel.push_back(v);
    }
    std::unordered_set<EdgeId> removed;
    std::unordered_map<NodeId, std::pair<NodeId, EdgeId>> up;  // child -> (parent, edge)
    for (const auto& [child, e] : union_edges) {
      up[child] = {tree.parent[child], e};
    }
    std::unordered_set<NodeId> peeled;
    while (!peel.empty()) {
      const NodeId v = peel.back();
      peel.pop_back();
      if (!peeled.insert(v).second) continue;
      // Remove the single incident union edge. It is either v's up-edge or
      // one of v's child edges (v can be the top of the union).
      NodeId neighbor = kInvalidNode;
      if (up.count(v) > 0 && removed.count(up[v].second) == 0) {
        removed.insert(up[v].second);
        neighbor = up[v].first;
      } else {
        for (const auto& [child, e] : children[v]) {
          if (removed.count(e) == 0 && peeled.count(child) == 0) {
            removed.insert(e);
            neighbor = child;
            break;
          }
        }
      }
      if (neighbor == kInvalidNode) continue;
      if (--union_degree[neighbor] == 1 && members.count(neighbor) == 0) {
        peel.push_back(neighbor);
      }
    }
    std::vector<EdgeId> h;
    for (const auto& [child, e] : union_edges) {
      (void)child;
      if (removed.count(e) == 0) h.push_back(e);
    }
    s.h_edges.push_back(std::move(h));
  }
  return s;
}

BestShortcut build_best_shortcut(const Graph& g, const PartCollection& pc,
                                 Rng& rng) {
  BestShortcut best;
  best.shortcut = trivial_shortcut(pc);
  best.quality = measure_shortcut(g, pc, best.shortcut);
  best.construction = "trivial";
  // Tree-restricted on a centered BFS tree.
  {
    const RootedSpanningTree tree = centered_bfs_tree(g, rng);
    Shortcut candidate = tree_restricted_shortcut(g, pc, tree);
    const ShortcutQuality q = measure_shortcut(g, pc, candidate);
    if (q.quality() < best.quality.quality()) {
      best.shortcut = std::move(candidate);
      best.quality = q;
      best.construction = "tree-restricted";
    }
  }
  return best;
}

PartCollection tree_chop_partition(const Graph& g, const RootedSpanningTree& tree,
                                   std::size_t target_size) {
  DLS_REQUIRE(target_size >= 1, "target size must be positive");
  // Post-order accumulation: each node keeps a bucket of not-yet-assigned
  // descendants (including itself); once a bucket reaches target_size it is
  // emitted as a part (a connected subtree piece).
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<NodeId>> tree_children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v != tree.root) tree_children[tree.parent[v]].push_back(v);
  }
  PartCollection pc;
  std::vector<std::vector<NodeId>> bucket(n);
  // Iterative post-order.
  std::vector<std::pair<NodeId, std::size_t>> stack{{tree.root, 0}};
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    if (idx < tree_children[v].size()) {
      stack.push_back({tree_children[v][idx++], 0});
      continue;
    }
    bucket[v].push_back(v);
    if (v != tree.root) {
      auto& parent_bucket = bucket[tree.parent[v]];
      if (bucket[v].size() >= target_size) {
        pc.parts.push_back(std::move(bucket[v]));
      } else {
        parent_bucket.insert(parent_bucket.end(), bucket[v].begin(),
                             bucket[v].end());
      }
      bucket[v].clear();
    }
    stack.pop_back();
  }
  if (!bucket[tree.root].empty()) pc.parts.push_back(std::move(bucket[tree.root]));
  return pc;
}

}  // namespace dls
