#include "shortcuts/partwise_aggregation.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

/// Reusable flat buffers for building part trees. Node/edge membership is
/// epoch-stamped (bump `epoch` instead of clearing), the part-plus-shortcut
/// adjacency is a CSR over local ids, and one thread-local instance serves
/// every part of every oracle call — the previous implementation rebuilt an
/// unordered_map adjacency per part per call, which dominated the oracle's
/// wall-clock on repeated measurements.
struct PartTreeScratch {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> node_epoch;    // node is in the subgraph
  std::vector<std::uint64_t> member_epoch;  // node is a part member
  std::vector<std::uint64_t> edge_epoch;    // edge already collected
  std::vector<std::uint32_t> local_of;      // host node -> local id
  std::vector<EdgeId> edges;                // collected subgraph edges
  std::vector<std::uint32_t> deg;
  std::vector<std::uint32_t> offset;        // CSR offsets, size k+1
  std::vector<std::uint32_t> cursor;
  std::vector<std::pair<std::uint32_t, EdgeId>> csr;  // (local nbr, host edge)
  std::vector<std::uint32_t> queue;         // BFS worklist of local ids
  std::vector<char> seen;

  void ensure(std::size_t n_nodes, std::size_t n_edges) {
    if (node_epoch.size() < n_nodes) {
      node_epoch.resize(n_nodes, 0);
      member_epoch.resize(n_nodes, 0);
      local_of.resize(n_nodes, 0);
    }
    if (edge_epoch.size() < n_edges) edge_epoch.resize(n_edges, 0);
  }
};

PartTreeScratch& part_tree_scratch() {
  thread_local PartTreeScratch scratch;
  return scratch;
}

/// BFS tree of the part-plus-shortcut subgraph, as host edge ids. Matches
/// part_subgraph() + BFS exactly: subgraph edges are visited in ascending
/// edge-id order, so the constructed tree (and every downstream round count)
/// is identical to the hash-map implementation this replaces.
AggregationTree build_part_tree(const Graph& g, const std::vector<NodeId>& part,
                                const std::vector<EdgeId>& h_edges,
                                const std::vector<double>& values) {
  DLS_REQUIRE(!part.empty(),
              "empty part in PartCollection: every part needs at least one "
              "member to root its aggregation tree");
  DLS_REQUIRE(part.size() == values.size(), "values size mismatch");
  PartTreeScratch& sc = part_tree_scratch();
  sc.ensure(g.num_nodes(), g.num_edges());
  ++sc.epoch;

  // Subgraph nodes: part members first (local ids in part order), then any
  // helper-edge endpoints outside the part (in h_edges order).
  std::uint32_t num_nodes = 0;
  auto touch = [&](NodeId v) {
    if (sc.node_epoch[v] != sc.epoch) {
      sc.node_epoch[v] = sc.epoch;
      sc.local_of[v] = num_nodes++;
    }
  };
  for (NodeId v : part) {
    DLS_REQUIRE(v < g.num_nodes(), "part member out of range");
    touch(v);
    sc.member_epoch[v] = sc.epoch;
  }
  for (EdgeId e : h_edges) {
    const Edge& edge = g.edge(e);
    touch(edge.u);
    touch(edge.v);
  }

  // Subgraph edges: G[P_i] edges (both endpoints members) plus helper edges,
  // deduplicated via stamps, then sorted — the canonical subgraph edge order.
  sc.edges.clear();
  auto collect = [&](EdgeId e) {
    if (sc.edge_epoch[e] != sc.epoch) {
      sc.edge_epoch[e] = sc.epoch;
      sc.edges.push_back(e);
    }
  };
  for (NodeId v : part) {
    for (const Adjacency& a : g.neighbors(v)) {
      if (sc.member_epoch[a.neighbor] == sc.epoch) collect(a.edge);
    }
  }
  for (EdgeId e : h_edges) collect(e);
  std::sort(sc.edges.begin(), sc.edges.end());

  // CSR adjacency over local ids; per-node neighbor order follows the sorted
  // edge order.
  const std::size_t k = num_nodes;
  sc.deg.assign(k, 0);
  for (EdgeId e : sc.edges) {
    const Edge& edge = g.edge(e);
    ++sc.deg[sc.local_of[edge.u]];
    ++sc.deg[sc.local_of[edge.v]];
  }
  sc.offset.assign(k + 1, 0);
  for (std::size_t x = 0; x < k; ++x) sc.offset[x + 1] = sc.offset[x] + sc.deg[x];
  sc.cursor.assign(sc.offset.begin(), sc.offset.end() - 1);
  sc.csr.resize(2 * sc.edges.size());
  for (EdgeId e : sc.edges) {
    const Edge& edge = g.edge(e);
    const std::uint32_t lu = sc.local_of[edge.u];
    const std::uint32_t lv = sc.local_of[edge.v];
    sc.csr[sc.cursor[lu]++] = {lv, e};
    sc.csr[sc.cursor[lv]++] = {lu, e};
  }

  AggregationTree tree;
  tree.root = part.front();
  sc.seen.assign(k, 0);
  sc.queue.clear();
  const std::uint32_t root_local = sc.local_of[tree.root];
  sc.queue.push_back(root_local);
  sc.seen[root_local] = 1;
  std::size_t head = 0;
  while (head < sc.queue.size()) {
    const std::uint32_t x = sc.queue[head++];
    for (std::uint32_t i = sc.offset[x]; i < sc.offset[x + 1]; ++i) {
      const auto [nbr, e] = sc.csr[i];
      if (sc.seen[nbr]) continue;
      sc.seen[nbr] = 1;
      tree.edges.push_back(e);
      sc.queue.push_back(nbr);
    }
  }
  DLS_REQUIRE(sc.queue.size() == k,
              "part + shortcut subgraph is disconnected");
  tree.inputs.reserve(part.size());
  for (std::size_t j = 0; j < part.size(); ++j) {
    tree.inputs.push_back({part[j], values[j]});
  }
  return tree;
}

}  // namespace

PartwiseAggregationOutcome solve_partwise_aggregation(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, const Shortcut& shortcut, Rng& rng,
    SchedulingPolicy policy, FaultPlan* faults) {
  DLS_REQUIRE(values.size() == pc.num_parts(), "values per part mismatch");
  DLS_REQUIRE(shortcut.h_edges.size() == pc.num_parts(),
              "shortcut per part mismatch");
  std::vector<AggregationTree> trees;
  trees.reserve(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    trees.push_back(
        build_part_tree(g, pc.parts[i], shortcut.h_edges[i], values[i]));
  }
  PartwiseAggregationOutcome outcome;
  outcome.schedule =
      run_tree_aggregations(g, trees, monoid, rng, policy, faults);
  outcome.results = outcome.schedule.results;
  return outcome;
}

PartwiseAggregationOutcome solve_partwise_aggregation_auto(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng, SchedulingPolicy policy) {
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  return solve_partwise_aggregation(g, pc, values, monoid, best.shortcut, rng,
                                    policy);
}

}  // namespace dls
