#include "shortcuts/partwise_aggregation.hpp"

#include <deque>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

/// BFS tree of the part-plus-shortcut subgraph, as host edge ids.
AggregationTree build_part_tree(const Graph& g, const std::vector<NodeId>& part,
                                const std::vector<EdgeId>& h_edges,
                                const std::vector<double>& values) {
  DLS_REQUIRE(part.size() == values.size(), "values size mismatch");
  const PartSubgraph sub = part_subgraph(g, part, h_edges);
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, EdgeId>>> adj;
  for (EdgeId e : sub.edges) {
    const Edge& edge = g.edge(e);
    adj[edge.u].push_back({edge.v, e});
    adj[edge.v].push_back({edge.u, e});
  }
  AggregationTree tree;
  tree.root = part.front();
  std::unordered_map<NodeId, char> seen;
  seen[tree.root] = 1;
  std::deque<NodeId> queue{tree.root};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const auto& [nbr, e] : adj[v]) {
      if (seen.count(nbr) > 0) continue;
      seen[nbr] = 1;
      tree.edges.push_back(e);
      queue.push_back(nbr);
    }
  }
  DLS_REQUIRE(seen.size() == sub.nodes.size(),
              "part + shortcut subgraph is disconnected");
  tree.inputs.reserve(part.size());
  for (std::size_t j = 0; j < part.size(); ++j) {
    tree.inputs.push_back({part[j], values[j]});
  }
  return tree;
}

}  // namespace

PartwiseAggregationOutcome solve_partwise_aggregation(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, const Shortcut& shortcut, Rng& rng,
    SchedulingPolicy policy) {
  DLS_REQUIRE(values.size() == pc.num_parts(), "values per part mismatch");
  DLS_REQUIRE(shortcut.h_edges.size() == pc.num_parts(),
              "shortcut per part mismatch");
  std::vector<AggregationTree> trees;
  trees.reserve(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    trees.push_back(
        build_part_tree(g, pc.parts[i], shortcut.h_edges[i], values[i]));
  }
  PartwiseAggregationOutcome outcome;
  outcome.schedule = run_tree_aggregations(g, trees, monoid, rng, policy);
  outcome.results = outcome.schedule.results;
  return outcome;
}

PartwiseAggregationOutcome solve_partwise_aggregation_auto(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng, SchedulingPolicy policy) {
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  return solve_partwise_aggregation(g, pc, values, monoid, best.shortcut, rng,
                                    policy);
}

}  // namespace dls
