// Multiple-unicast and any-to-any-cast (Section 3.1.3 of the paper): the
// communication tasks whose worst-case completion time characterizes
// shortcut quality (Theorem 25, via the network-coding gap results of
// [28, 29]), plus the decomposition lemma (Lemma 24) used in the proof of
// Theorem 22.
//
// Completion time of a path collection is max(congestion, dilation) — a
// packet-routing schedule of length O(c + d) always exists [19] and our
// store-and-forward simulator realizes one, so both the combinatorial
// quality and the measured routing rounds are reported.
#pragma once

#include <span>
#include <vector>

#include "graph/flow.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

struct UnicastSolution {
  std::vector<std::vector<NodeId>> paths;  // one per routed pair
  std::size_t congestion = 0;              // max paths per (undirected) edge
  std::size_t dilation = 0;                // max path hops
  std::vector<std::size_t> edge_load;      // paths per edge, indexed by EdgeId
  std::size_t quality() const { return std::max(congestion, dilation); }
};

/// Measures congestion/dilation of given paths (each must walk along edges).
UnicastSolution measure_paths(const Graph& g,
                              std::vector<std::vector<NodeId>> paths);

/// Congestion-aware routing for the multiple-unicast problem: pairs are
/// routed one at a time (random order) along shortest paths in a metric that
/// penalizes already-loaded edges; a few sweeps of rip-up-and-reroute then
/// shrink the makespan. Heuristic upper bound on the optimal completion time.
UnicastSolution route_multiple_unicast(
    const Graph& g, std::span<const std::pair<NodeId, NodeId>> pairs, Rng& rng,
    int reroute_sweeps = 2);

/// Any-to-any-cast: finds a matching of sources to sinks and routes it.
/// Tries (a) the node-disjoint flow matching (congestion ≤ 1 when (S,T) are
/// disjointly connectable — then quality = dilation) and (b) greedy matched
/// unicast routing, returning the better solution.
UnicastSolution any_to_any_cast(const Graph& g, std::span<const NodeId> sources,
                                std::span<const NodeId> sinks, Rng& rng);

/// Store-and-forward packet routing: one packet per path, one packet per
/// edge-direction per round, random-delay priorities. Returns the measured
/// number of rounds until every packet arrives — O(congestion + dilation)
/// with high probability [19].
std::uint64_t simulate_packet_routing(const Graph& g,
                                      const std::vector<std::vector<NodeId>>& paths,
                                      Rng& rng);

/// Lemma 24: given multisets (S, T) with any-to-any node connectivity ρ,
/// partitions them into groups (S_i, T_i) that are each any-to-any
/// node-DISJOINTLY connectable; the paper guarantees O(ρ log k) groups.
struct AnyToAnyDecomposition {
  std::vector<std::vector<NodeId>> source_groups;
  std::vector<std::vector<NodeId>> sink_groups;
  std::size_t num_groups() const { return source_groups.size(); }
};

AnyToAnyDecomposition decompose_any_to_any(const Graph& g,
                                           std::span<const NodeId> sources,
                                           std::span<const NodeId> sinks);

}  // namespace dls
