#include "shortcuts/quality_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "util/thread_pool.hpp"

namespace dls {

SqEstimate estimate_shortcut_quality(const Graph& g, Rng& rng,
                                     const SqEstimateOptions& options,
                                     const std::vector<PartCollection>&
                                         extra_partitions) {
  DLS_REQUIRE(is_connected(g), "SQ estimation requires a connected graph");
  // A single NaN/Inf edge weight silently poisons the diameter and stretch
  // computations every sample depends on; fail typed at the boundary.
  for (const Edge& e : g.edges()) {
    DLS_REQUIRE(std::isfinite(e.weight) && e.weight > 0,
                "SQ estimation requires finite positive edge weights");
  }
  SqEstimate estimate;
  estimate.diameter = approx_diameter(g, rng, 4);

  // Phase 1 (serial): sample the adversarial partitions. These consume the
  // caller's Rng stream in a fixed order, so the set of partitions evaluated
  // is identical however many workers phase 2 uses.
  struct Trial {
    std::string family;
    PartCollection pc;
    Rng rng{0};  // forked below, after all partitions are drawn
  };
  std::vector<Trial> trials;
  const auto enqueue = [&](PartCollection pc, std::string family) {
    if (pc.num_parts() == 0) return;
    trials.push_back({std::move(family), std::move(pc)});
  };

  const std::size_t n = g.num_nodes();
  // Voronoi partitions at geometric granularities between √n and n/2 parts.
  std::vector<std::size_t> ks;
  {
    std::size_t k = std::max<std::size_t>(2, static_cast<std::size_t>(std::sqrt(
                                                 static_cast<double>(n))));
    for (int i = 0; i < options.voronoi_granularities; ++i) {
      ks.push_back(std::min(k, n));
      k *= 4;
      if (k > n / 2) break;
    }
  }
  for (std::size_t k : ks) {
    enqueue(random_voronoi_partition(g, k, rng),
            "voronoi(k=" + std::to_string(k) + ")");
  }
  if (options.tree_chop) {
    const RootedSpanningTree tree = centered_bfs_tree(g, rng);
    // Long skinny parts: chop at sizes ~√n and ~D.
    std::vector<std::size_t> sizes{
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::sqrt(static_cast<double>(n)))),
        std::max<std::size_t>(2, estimate.diameter)};
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    for (std::size_t size : sizes) {
      enqueue(tree_chop_partition(g, tree, size),
              "tree-chop(size=" + std::to_string(size) + ")");
    }
  }
  std::size_t extra = 0;
  for (const PartCollection& pc : extra_partitions) {
    if (extra++ >= options.max_extra_partitions) break;
    enqueue(pc, "extra(" + std::to_string(extra) + ")");
  }

  // Phase 2 (parallel): each trial builds its best shortcut from a stream
  // forked in trial order, writing its own sample slot — bit-identical
  // whether run serially or across the pool.
  for (Trial& trial : trials) trial.rng = rng.fork();
  std::vector<SqSample> samples(trials.size());
  parallel_for_each(options.pool, trials.size(), [&](std::size_t t) {
    const BestShortcut best = build_best_shortcut(g, trials[t].pc,
                                                  trials[t].rng);
    SqSample& sample = samples[t];
    sample.partition_family = trials[t].family;
    sample.num_parts = trials[t].pc.num_parts();
    sample.quality = best.quality;
    sample.construction = best.construction;
  });

  // Phase 3 (serial): ordered fold of the samples.
  for (SqSample& sample : samples) {
    estimate.quality = std::max(estimate.quality, sample.quality.quality());
    estimate.samples.push_back(std::move(sample));
  }
  // SQ is at least Ω(D) unconditionally; never report below the anchor.
  estimate.quality = std::max<std::size_t>(estimate.quality, estimate.diameter);
  return estimate;
}

}  // namespace dls
