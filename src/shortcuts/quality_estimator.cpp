#include "shortcuts/quality_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"

namespace dls {

SqEstimate estimate_shortcut_quality(const Graph& g, Rng& rng,
                                     const SqEstimateOptions& options,
                                     const std::vector<PartCollection>&
                                         extra_partitions) {
  DLS_REQUIRE(is_connected(g), "SQ estimation requires a connected graph");
  SqEstimate estimate;
  estimate.diameter = approx_diameter(g, rng, 4);

  auto evaluate = [&](const PartCollection& pc, const std::string& family) {
    if (pc.num_parts() == 0) return;
    const BestShortcut best = build_best_shortcut(g, pc, rng);
    SqSample sample;
    sample.partition_family = family;
    sample.num_parts = pc.num_parts();
    sample.quality = best.quality;
    sample.construction = best.construction;
    estimate.quality = std::max(estimate.quality, best.quality.quality());
    estimate.samples.push_back(std::move(sample));
  };

  const std::size_t n = g.num_nodes();
  // Voronoi partitions at geometric granularities between √n and n/2 parts.
  std::vector<std::size_t> ks;
  {
    std::size_t k = std::max<std::size_t>(2, static_cast<std::size_t>(std::sqrt(
                                                 static_cast<double>(n))));
    for (int i = 0; i < options.voronoi_granularities; ++i) {
      ks.push_back(std::min(k, n));
      k *= 4;
      if (k > n / 2) break;
    }
  }
  for (std::size_t k : ks) {
    evaluate(random_voronoi_partition(g, k, rng),
             "voronoi(k=" + std::to_string(k) + ")");
  }
  if (options.tree_chop) {
    const RootedSpanningTree tree = centered_bfs_tree(g, rng);
    // Long skinny parts: chop at sizes ~√n and ~D.
    std::vector<std::size_t> sizes{
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::sqrt(static_cast<double>(n)))),
        std::max<std::size_t>(2, estimate.diameter)};
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    for (std::size_t size : sizes) {
      evaluate(tree_chop_partition(g, tree, size),
               "tree-chop(size=" + std::to_string(size) + ")");
    }
  }
  std::size_t extra = 0;
  for (const PartCollection& pc : extra_partitions) {
    if (extra++ >= options.max_extra_partitions) break;
    evaluate(pc, "extra(" + std::to_string(extra) + ")");
  }
  // SQ is at least Ω(D) unconditionally; never report below the anchor.
  estimate.quality = std::max<std::size_t>(estimate.quality, estimate.diameter);
  return estimate;
}

}  // namespace dls
