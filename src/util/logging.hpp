// Leveled stderr logging. Off by default above WARN so test output stays
// clean; experiment drivers raise the level explicitly.
#pragma once

#include <sstream>
#include <string>

namespace dls {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

#define DLS_LOG(level) ::dls::detail::LogLine(::dls::LogLevel::level)

}  // namespace dls
