// Deterministic, seedable randomness used across the library.
//
// All randomized algorithms in this codebase (shortcut scheduling, edge
// colouring, ultra-sparsifier sampling, graph generators) take an explicit
// Rng&; nothing reads global entropy, so every experiment is reproducible
// from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace dls {

/// xoshiro256** with a splitmix64 seeding routine. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions,
/// but the common cases (uniform ints, reals, permutations, Bernoulli)
/// have direct methods to keep call sites terse.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a small seed over the full 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    DLS_REQUIRE(bound > 0, "next_below requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    DLS_REQUIRE(lo <= hi, "next_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[next_below(i)]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fork an independent stream (for per-component seeding).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dls
