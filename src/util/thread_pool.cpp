#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "util/assert.hpp"

namespace dls {

namespace {
// The pool (if any) whose worker_loop owns the current thread. Lets
// parallel_for degrade gracefully under nesting: a task that itself calls
// parallel_for on its own pool runs the loop serially instead of submitting
// work it would then deadlock waiting for — the outer fan-out already keeps
// every worker busy, and determinism is unaffected either way.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++outstanding_;
    inline_tasks_.push_back(std::move(task));
    return;
  }
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++outstanding_;
    ++queued_;
  }
  work_available_.notify_one();
}

bool ThreadPool::try_pop(std::size_t id, std::function<void()>& task) {
  WorkerQueue& q = *queues_[id];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.back());  // LIFO on the own deque: cache-warm
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, std::function<void()>& task) {
  const std::size_t k = queues_.size();
  // Start the victim scan at the thief's successor so steals spread out
  // instead of all hammering queue 0.
  const std::size_t start = thief < k ? thief + 1 : 0;
  for (std::size_t offset = 0; offset < k; ++offset) {
    const std::size_t victim = (start + offset) % k;
    if (victim == thief) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.front());  // FIFO steal: take the oldest work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::finish_task() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (--outstanding_ == 0) all_idle_.notify_all();
}

void ThreadPool::worker_loop(std::size_t id) {
  t_worker_of = this;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || queued_ > 0; });
      if (queued_ == 0) return;  // shutdown with no work left
      --queued_;                 // claim one task; it exists in some deque
    }
    std::function<void()> task;
    while (!try_pop(id, task) && !try_steal(id, task)) {
      // A claimed task is transiently between push and visibility only for
      // the instant another claimant holds a deque lock; rescan.
      std::this_thread::yield();
    }
    task();
    finish_task();
  }
}

void ThreadPool::wait_idle() {
  DLS_REQUIRE(t_worker_of != this,
              "ThreadPool::wait_idle called from one of the pool's own "
              "workers: the caller's task counts as outstanding, so the wait "
              "could never finish");
  if (workers_.empty()) {
    // Inline mode: run the queued tasks in submission order right here.
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (inline_tasks_.empty()) return;
        task = std::move(inline_tasks_.front());
        inline_tasks_.pop_front();
      }
      task();
      std::lock_guard<std::mutex> lock(state_mutex_);
      --outstanding_;
    }
  }
  // Threaded mode: pure wait. Deliberately no help-stealing here — a waiter
  // that executes a claimed task on its own stack can recurse into another
  // wait_idle whose outstanding_ count includes the task beneath it, which
  // can never finish first (re-entrant deadlock). The workers always drain
  // queued work on their own.
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (t_worker_of == this) {
    // Nested use from inside a task: run serially (see t_worker_of above).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (workers_.empty() || n <= 1) {
    wait_idle();  // inline mode may have queued submissions; run them first
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const auto runner = [next, &body, n] {
    for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
      body(i);
    }
  };
  const std::size_t helpers = std::min(workers_.size(), n);
  for (std::size_t k = 0; k + 1 < helpers; ++k) submit(runner);
  runner();     // the calling thread participates too
  wait_idle();  // body must stay alive until every helper drained
}

void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->parallel_for(n, body);
}

}  // namespace dls
