// Aligned ASCII table printer used by the benchmark harness to emit the
// experiment tables recorded in EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dls {

/// Collects rows of string cells and renders them with aligned columns.
/// Numeric cells should be formatted by the caller (Table::cell helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a header rule; column widths adapt to content.
  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

  static std::string cell(double value, int precision = 2);
  static std::string cell(std::size_t value);
  static std::string cell(long long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dls
