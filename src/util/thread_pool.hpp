// A work-stealing thread pool for running independent simulation instances.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (cache-warm)
// and steals FIFO from a random victim when it runs dry, so a burst of
// uneven scenario runtimes balances itself without a central queue becoming
// the bottleneck. External submitters round-robin across worker deques.
//
// Determinism contract: the pool schedules tasks in an arbitrary,
// timing-dependent order — it makes NO ordering promises. Determinism of
// simulation results is the responsibility of the caller and is achieved by
// construction one layer up (see sim/sim_batch.hpp): every task owns a
// private Rng derived from (root seed, task index) and writes only to its own
// result slot, so the merged output is a pure function of the inputs no
// matter how tasks interleave.
//
// A pool constructed with `num_threads <= 1` spawns no threads at all;
// submitted work runs inline in wait_idle()/parallel_for() on the calling
// thread. That makes `ThreadPool(1)` an exact serial reference to compare
// multi-threaded runs against.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dls {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads actually running (0 for an inline pool).
  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw; a task that does terminates.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. On an inline pool this
  /// is where the queued tasks actually run (in submission order).
  void wait_idle();

  /// Runs body(0..n-1), partitioned dynamically across the workers and the
  /// calling thread. Returns when all n calls completed. Each index is
  /// executed exactly once; no ordering guarantee between indices. Called
  /// from inside one of this pool's own tasks, the loop runs serially on the
  /// calling worker (nested fan-out cannot deadlock and would add no
  /// parallelism: the outer fan-out already occupies every worker).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// A sensible default worker count for this machine (>= 1).
  static std::size_t hardware_threads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t id);
  bool try_pop(std::size_t id, std::function<void()>& task);
  bool try_steal(std::size_t thief, std::function<void()>& task);
  void finish_task();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t outstanding_ = 0;  // submitted but not yet finished
  std::size_t queued_ = 0;       // sitting in a deque, not yet claimed
  std::size_t next_queue_ = 0;   // round-robin submission cursor
  bool shutdown_ = false;

  // Inline mode (num_threads <= 1): tasks queue here and run in wait_idle().
  std::deque<std::function<void()>> inline_tasks_;
};

/// Convenience: runs body(0..n-1) on `pool`, or serially in index order when
/// pool is null (the single-threaded reference path).
void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& body);

}  // namespace dls
