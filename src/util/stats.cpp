#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dls {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  // Exclude NaN/Inf up front: sort's ordering is undefined under NaN and one
  // poisoned entry would corrupt every moment below.
  const auto first_bad = std::remove_if(
      values.begin(), values.end(), [](double v) { return !std::isfinite(v); });
  s.non_finite = static_cast<std::size_t>(values.end() - first_bad);
  s.finite = s.non_finite == 0;
  values.erase(first_bad, values.end());
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = (n > 1) ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  DLS_REQUIRE(x.size() == y.size(), "fit_linear needs matched series");
  DLS_REQUIRE(x.size() >= 2, "fit_linear needs at least two points");
  // Keep only pairs where both coordinates are finite; flag exclusions.
  std::vector<double> fx, fy;
  fx.reserve(x.size());
  fy.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::isfinite(x[i]) && std::isfinite(y[i])) {
      fx.push_back(x[i]);
      fy.push_back(y[i]);
    }
  }
  LinearFit fit;
  fit.finite = fx.size() == x.size();
  if (fx.size() < 2) return fit;  // zeros, r² = 0: nothing fittable survived
  const double n = static_cast<double>(fx.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < fx.size(); ++i) {
    sx += fx[i];
    sy += fy[i];
    sxx += fx[i] * fx[i];
    sxy += fx[i] * fy[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    fit.slope = 0.0;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < fx.size(); ++i) {
    const double pred = fit.intercept + fit.slope * fx[i];
    ss_res += (fy[i] - pred) * (fy[i] - pred);
    ss_tot += (fy[i] - mean_y) * (fy[i] - mean_y);
  }
  if (ss_tot > 0) {
    fit.r2 = 1.0 - ss_res / ss_tot;
  } else {
    // Constant-y data: r² is only 1.0 if the fit actually reproduces the
    // constant. A nonzero residual with zero total variance means the fit is
    // bad, not perfect — report 0.0 so scaling checks cannot be fooled by
    // degenerate series.
    const double scale = 1.0 + std::abs(mean_y);
    fit.r2 = (ss_res <= 1e-18 * scale * scale * n) ? 1.0 : 0.0;
  }
  return fit;
}

PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y) {
  DLS_REQUIRE(x.size() == y.size(), "fit_power needs matched series");
  DLS_REQUIRE(x.size() >= 2, "fit_power needs at least two points");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  bool finite = true;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) {
      finite = false;  // measurement anomaly: exclude and flag
      continue;
    }
    DLS_REQUIRE(x[i] > 0 && y[i] > 0, "fit_power needs positive data");
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  PowerFit pf;
  pf.finite = finite;
  if (lx.size() < 2) return pf;  // zeros, r² = 0
  const LinearFit lf = fit_linear(lx, ly);
  pf.constant = std::exp(lf.intercept);
  pf.exponent = lf.slope;
  pf.r2 = lf.r2;
  return pf;
}

}  // namespace dls
