#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace dls {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DLS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DLS_REQUIRE(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::cell(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }

std::string Table::cell(long long value) { return std::to_string(value); }

}  // namespace dls
