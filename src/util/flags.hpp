// Minimal command-line flag parsing for the examples and benchmark drivers.
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dls {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dls
