// Internal invariant checking.
//
// DLS_REQUIRE is used for precondition validation on public API boundaries
// (always on, throws std::invalid_argument). DLS_ASSERT is used for internal
// invariants (always on in this research codebase; cost is negligible next to
// the simulations themselves) and throws std::logic_error so that tests can
// observe violations deterministically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dls::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream out;
  out << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) out << " — " << msg;
  throw std::invalid_argument(out.str());
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream out;
  out << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) out << " — " << msg;
  throw std::logic_error(out.str());
}

}  // namespace dls::detail

#define DLS_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::dls::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define DLS_ASSERT(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) ::dls::detail::assert_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
