// Small descriptive-statistics helpers used by the benchmark harness and the
// experiment drivers (fitting measured round counts against theory curves).
#pragma once

#include <cstddef>
#include <vector>

namespace dls {

/// Summary of a sample of real values. Non-finite entries (NaN/Inf — e.g. a
/// diverged solve's residual leaking into a measurement series) would poison
/// every moment and scramble the order statistics, so they are excluded and
/// flagged instead: `finite` is false and `non_finite` counts the exclusions,
/// while the statistics describe the finite subset.
struct Summary {
  std::size_t count = 0;  // total inputs, including excluded ones
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  bool finite = true;
  std::size_t non_finite = 0;
};

Summary summarize(std::vector<double> values);

/// Least-squares fit of y ≈ a + b·x. Returns {a, b, r2}. Pairs with a
/// non-finite coordinate are excluded and flagged (`finite` = false); if
/// fewer than two finite pairs remain the fit is all-zero with r² = 0 so a
/// poisoned series can never masquerade as a good scaling fit.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
  bool finite = true;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fit y ≈ c·x^e on log–log scale. Returns exponent e, constant c and r².
/// Non-finite pairs are excluded and flagged like fit_linear; finite but
/// non-positive data still throws (it is a caller bug, not a measurement
/// anomaly).
struct PowerFit {
  double constant = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
  bool finite = true;
};

PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dls
