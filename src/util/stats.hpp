// Small descriptive-statistics helpers used by the benchmark harness and the
// experiment drivers (fitting measured round counts against theory curves).
#pragma once

#include <cstddef>
#include <vector>

namespace dls {

/// Summary of a sample of real values.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(std::vector<double> values);

/// Least-squares fit of y ≈ a + b·x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fit y ≈ c·x^e on log–log scale. Returns exponent e, constant c and r².
struct PowerFit {
  double constant = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};

PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dls
