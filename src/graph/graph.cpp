#include "graph/graph.hpp"

#include <sstream>

namespace dls {

std::string Graph::describe() const {
  std::ostringstream out;
  out << "Graph(n=" << num_nodes() << ", m=" << num_edges()
      << ", maxdeg=" << max_degree() << ")";
  return out.str();
}

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  InducedSubgraph result;
  result.to_local.assign(g.num_nodes(), kInvalidNode);
  result.to_original.reserve(nodes.size());
  for (NodeId v : nodes) {
    DLS_REQUIRE(v < g.num_nodes(), "induced_subgraph node out of range");
    DLS_REQUIRE(result.to_local[v] == kInvalidNode,
                "induced_subgraph nodes must be distinct");
    result.to_local[v] = static_cast<NodeId>(result.to_original.size());
    result.to_original.push_back(v);
    result.graph.add_node();
  }
  // Degree-count pass: size each local adjacency list (and the edge store)
  // before appending, so bulk extraction never regrows.
  std::size_t kept_edges = 0;
  std::vector<std::size_t> degree(nodes.size(), 0);
  for (NodeId v : nodes) {
    for (const Adjacency& a : g.neighbors(v)) {
      const Edge& e = g.edge(a.edge);
      const NodeId w = e.other(v);
      if (result.to_local[w] == kInvalidNode) continue;
      ++degree[result.to_local[v]];
      if (e.u == v) ++kept_edges;
    }
  }
  result.graph.reserve_edges(kept_edges);
  for (std::size_t local = 0; local < nodes.size(); ++local) {
    result.graph.reserve_neighbors(static_cast<NodeId>(local), degree[local]);
  }
  // Each undirected edge appears in two adjacency lists; add it once by
  // only taking the direction where the edge's stored `u` equals the scan node.
  for (NodeId v : nodes) {
    for (const Adjacency& a : g.neighbors(v)) {
      const Edge& e = g.edge(a.edge);
      if (e.u != v) continue;  // visit each edge exactly once
      if (result.to_local[e.v] == kInvalidNode) continue;
      result.graph.add_edge(result.to_local[e.u], result.to_local[e.v], e.weight);
    }
  }
  return result;
}

}  // namespace dls
