#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dls {

Graph make_path(std::size_t n, Weight weight) {
  DLS_REQUIRE(n >= 1, "path needs at least one node");
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), weight);
  }
  return g;
}

Graph make_cycle(std::size_t n, Weight weight) {
  DLS_REQUIRE(n >= 3, "cycle needs at least three nodes");
  Graph g = make_path(n, weight);
  g.add_edge(static_cast<NodeId>(n - 1), 0, weight);
  return g;
}

Graph make_star(std::size_t n) {
  DLS_REQUIRE(n >= 1, "star needs at least one node");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, static_cast<NodeId>(i));
  return g;
}

Graph make_complete(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return g;
}

namespace {
NodeId grid_id(std::size_t r, std::size_t c, std::size_t cols) {
  return static_cast<NodeId>(r * cols + c);
}
}  // namespace

Graph make_grid(std::size_t rows, std::size_t cols) {
  DLS_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      if (r + 1 < rows) g.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
    }
  }
  return g;
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  DLS_REQUIRE(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(grid_id(r, c, cols), grid_id(r, (c + 1) % cols, cols));
      g.add_edge(grid_id(r, c, cols), grid_id((r + 1) % rows, c, cols));
    }
  }
  return g;
}

Graph make_triangulated_grid(std::size_t rows, std::size_t cols) {
  Graph g = make_grid(rows, cols);
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      g.add_edge(grid_id(r, c, cols), grid_id(r + 1, c + 1, cols));
    }
  }
  return g;
}

Graph make_balanced_binary_tree(std::size_t n) {
  DLS_REQUIRE(n >= 1, "tree needs at least one node");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(static_cast<NodeId>((i - 1) / 2), static_cast<NodeId>(i));
  }
  return g;
}

Graph make_random_tree(std::size_t n, Rng& rng) {
  DLS_REQUIRE(n >= 1, "tree needs at least one node");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(i));
    g.add_edge(parent, static_cast<NodeId>(i));
  }
  return g;
}

Graph make_caterpillar(std::size_t spine, std::size_t legs) {
  DLS_REQUIRE(spine >= 1, "caterpillar needs a spine");
  Graph g(spine * (1 + legs));
  for (std::size_t i = 0; i + 1 < spine; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  for (std::size_t i = 0; i < spine; ++i) {
    for (std::size_t l = 0; l < legs; ++l) {
      g.add_edge(static_cast<NodeId>(i),
                 static_cast<NodeId>(spine + i * legs + l));
    }
  }
  return g;
}

Graph make_k_tree(std::size_t n, std::size_t k, Rng& rng) {
  DLS_REQUIRE(k >= 1, "k-tree needs k >= 1");
  DLS_REQUIRE(n >= k + 1, "k-tree needs at least k+1 nodes");
  Graph g(n);
  // Start from a (k+1)-clique; every later node attaches to a random existing
  // k-clique. We track cliques as vectors of node ids.
  std::vector<std::vector<NodeId>> cliques;
  std::vector<NodeId> base;
  for (std::size_t i = 0; i <= k; ++i) {
    for (std::size_t j = i + 1; j <= k; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
    base.push_back(static_cast<NodeId>(i));
  }
  // All k-subsets of the base clique seed the clique pool; to keep the pool
  // small we only add the k-cliques created as nodes attach (this still gives
  // treewidth exactly k).
  for (std::size_t drop = 0; drop <= k; ++drop) {
    std::vector<NodeId> sub;
    for (std::size_t i = 0; i <= k; ++i) {
      if (i != drop) sub.push_back(base[i]);
    }
    cliques.push_back(std::move(sub));
  }
  for (std::size_t v = k + 1; v < n; ++v) {
    // Copy: push_back below may reallocate the pool and invalidate references.
    const std::vector<NodeId> clique = cliques[rng.next_below(cliques.size())];
    for (NodeId u : clique) g.add_edge(u, static_cast<NodeId>(v));
    // New k-cliques: clique with one member replaced by v.
    for (std::size_t drop = 0; drop < clique.size(); ++drop) {
      std::vector<NodeId> sub = clique;
      sub[drop] = static_cast<NodeId>(v);
      cliques.push_back(std::move(sub));
    }
  }
  return g;
}

Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
  DLS_REQUIRE(n * d % 2 == 0, "n*d must be even for a d-regular graph");
  DLS_REQUIRE(d >= 1 && d < n, "degree must be in [1, n)");
  // Configuration model with forward repair: pair up node "stubs" uniformly;
  // a pair that would form a self-loop swaps its second stub with a random
  // *later* stub (which never disturbs already-fixed pairs). The rare draw
  // where the final pair cannot be repaired restarts the shuffle. Parallel
  // edges are acceptable (we use multigraphs), self-loops are not.
  std::vector<NodeId> stubs;
  stubs.reserve(n * d);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < d; ++i) stubs.push_back(static_cast<NodeId>(v));
  }
  for (int attempt = 0; attempt < 256; ++attempt) {
    rng.shuffle(stubs);
    bool ok = true;
    for (std::size_t i = 0; ok && i < stubs.size(); i += 2) {
      std::size_t repair_guard = 0;
      while (stubs[i] == stubs[i + 1]) {
        if (i + 2 >= stubs.size() || ++repair_guard > 64 * stubs.size()) {
          ok = false;  // unrepairable tail — reshuffle everything
          break;
        }
        const std::size_t j =
            i + 2 + rng.next_below(stubs.size() - i - 2);
        std::swap(stubs[i + 1], stubs[j]);
      }
    }
    if (!ok) continue;
    Graph g(n);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      g.add_edge(stubs[i], stubs[i + 1]);
    }
    return g;
  }
  DLS_ASSERT(false, "configuration model failed to avoid self-loops");
  return Graph{};
}

Graph make_erdos_renyi(std::size_t n, double p, Rng& rng) {
  DLS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return g;
}

Graph make_hypercube(std::size_t dims) {
  DLS_REQUIRE(dims >= 1 && dims < 26, "hypercube dims out of range");
  const std::size_t n = std::size_t{1} << dims;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t b = 0; b < dims; ++b) {
      const std::size_t u = v ^ (std::size_t{1} << b);
      if (u > v) g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
    }
  }
  return g;
}

Graph make_barbell(std::size_t n) {
  DLS_REQUIRE(n >= 4, "barbell needs at least four nodes");
  const std::size_t half = n / 2;
  Graph g(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = i + 1; j < half; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      g.add_edge(static_cast<NodeId>(half + i), static_cast<NodeId>(half + j));
    }
  }
  g.add_edge(0, static_cast<NodeId>(half));
  return g;
}

Graph make_lower_bound_dumbbell(std::size_t side) {
  DLS_REQUIRE(side >= 2, "dumbbell side must be >= 2");
  // `side` horizontal paths of length `side` (the "highways"), plus a
  // balanced binary tree over the path columns: leaf t of the tree connects
  // to every path's t-th node. The tree keeps D = O(log side) while any
  // pairing of left endpoints with right endpoints must squeeze through the
  // tree, which has no bandwidth — the classic [13] structure.
  const std::size_t path_nodes = side * side;
  // Binary tree over `side` leaves.
  std::size_t leaves = 1;
  while (leaves < side) leaves *= 2;
  const std::size_t tree_nodes = 2 * leaves - 1;
  Graph g(path_nodes + tree_nodes);
  auto path_id = [&](std::size_t p, std::size_t t) {
    return static_cast<NodeId>(p * side + t);
  };
  auto tree_id = [&](std::size_t i) { return static_cast<NodeId>(path_nodes + i); };
  for (std::size_t p = 0; p < side; ++p) {
    for (std::size_t t = 0; t + 1 < side; ++t) {
      g.add_edge(path_id(p, t), path_id(p, t + 1));
    }
  }
  for (std::size_t i = 1; i < tree_nodes; ++i) {
    g.add_edge(tree_id((i - 1) / 2), tree_id(i));
  }
  // Leaf i of the tree is node index leaves-1+i; attach to column min(i, side-1).
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t col = std::min(i, side - 1);
    for (std::size_t p = 0; p < side; ++p) {
      g.add_edge(tree_id(leaves - 1 + i), path_id(p, col));
    }
  }
  return g;
}

Graph make_preferential_attachment(std::size_t n, std::size_t m_edges,
                                   Rng& rng) {
  DLS_REQUIRE(m_edges >= 1, "attachment count must be positive");
  DLS_REQUIRE(n > m_edges, "need more nodes than attachment edges");
  Graph g(n);
  // Seed: a small clique of m_edges + 1 nodes.
  for (std::size_t i = 0; i <= m_edges; ++i) {
    for (std::size_t j = i + 1; j <= m_edges; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  // Degree-proportional sampling via the endpoint-list trick: every edge
  // endpoint occurrence is one "ticket".
  std::vector<NodeId> tickets;
  for (const Edge& e : g.edges()) {
    tickets.push_back(e.u);
    tickets.push_back(e.v);
  }
  for (std::size_t v = m_edges + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    std::size_t guard = 0;
    while (targets.size() < m_edges) {
      DLS_ASSERT(++guard < 64 * (m_edges + 1), "attachment sampling stalled");
      const NodeId candidate = tickets[rng.next_below(tickets.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (NodeId u : targets) {
      g.add_edge(u, static_cast<NodeId>(v));
      tickets.push_back(u);
      tickets.push_back(static_cast<NodeId>(v));
    }
  }
  return g;
}

Graph make_weighted_grid(std::size_t rows, std::size_t cols, Rng& rng,
                         Weight min_w, Weight max_w) {
  DLS_REQUIRE(min_w > 0 && min_w <= max_w, "weight range invalid");
  Graph g = make_grid(rows, cols);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double t = rng.next_double();
    g.set_weight(e, min_w + t * (max_w - min_w));
  }
  return g;
}

}  // namespace dls
