// Sequential graph algorithms: traversal, components, diameter, spanning
// structures, Euler tours. These are the "free local computation" building
// blocks of the simulated distributed algorithms and the ground truth for
// their outputs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

/// BFS from (multi-)sources over hop counts (weights ignored).
/// dist[v] == kUnreachable for unreachable nodes; parent_edge[v] is the edge
/// towards the source (kInvalidEdge at sources/unreachable).
struct BfsResult {
  static constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;

  std::uint32_t eccentricity() const;
};

BfsResult bfs(const Graph& g, NodeId source);
BfsResult bfs_multi(const Graph& g, std::span<const NodeId> sources);

bool is_connected(const Graph& g);

/// Component id per node, components numbered 0..k-1 in discovery order.
std::vector<std::uint32_t> connected_components(const Graph& g);
std::size_t count_components(const Graph& g);

/// Exact hop-diameter via BFS from every node. O(n·m): fine for n ≲ 1e4.
std::uint32_t exact_diameter(const Graph& g);

/// Double-sweep lower bound / upper estimate of the hop-diameter; exact on
/// trees, at most 2x off in general. Cheap enough for any graph size here.
std::uint32_t approx_diameter(const Graph& g, Rng& rng, int sweeps = 4);

/// Edges of a BFS spanning tree rooted at `root` (graph must be connected).
std::vector<EdgeId> bfs_tree_edges(const Graph& g, NodeId root);

/// Minimum spanning tree via Kruskal. Graph must be connected.
std::vector<EdgeId> mst_kruskal(const Graph& g);

/// Is the edge set `tree_edges` a spanning tree of g?
bool is_spanning_tree(const Graph& g, std::span<const EdgeId> tree_edges);

/// Euler tour of the tree formed by `tree_edges` restricted to the component
/// of `root`: the sequence of nodes visited by a DFS walking each tree edge
/// twice. First element is root; length is 2·(#tree nodes) − 1.
std::vector<NodeId> euler_tour(const Graph& g, std::span<const EdgeId> tree_edges,
                               NodeId root);

/// Union-Find over node ids, used by Kruskal/Boruvka and minor contraction.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  NodeId find(NodeId v);
  /// Returns true if a merge happened (the two were in different sets).
  bool unite(NodeId a, NodeId b);
  std::size_t num_sets() const { return sets_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> rank_;
  std::size_t sets_;
};

/// Hop distance between two nodes, or nullopt if disconnected.
std::optional<std::uint32_t> hop_distance(const Graph& g, NodeId a, NodeId b);

/// Shortest path (by hops) between two nodes as a node sequence (inclusive).
std::optional<std::vector<NodeId>> shortest_hop_path(const Graph& g, NodeId a,
                                                     NodeId b);

}  // namespace dls
