#include "graph/minor_density.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

/// Recompute minor node/edge counts from branch sets; returns false if the
/// sets are not disjoint or not connected.
bool recount(const Graph& g, MinorWitness& witness) {
  std::vector<std::uint32_t> owner(g.num_nodes(), static_cast<std::uint32_t>(-1));
  for (std::uint32_t i = 0; i < witness.branch_sets.size(); ++i) {
    for (NodeId v : witness.branch_sets[i]) {
      if (v >= g.num_nodes()) return false;
      if (owner[v] != static_cast<std::uint32_t>(-1)) return false;
      owner[v] = i;
    }
  }
  for (const auto& set : witness.branch_sets) {
    if (set.empty()) return false;
    const InducedSubgraph sub = induced_subgraph(g, set);
    if (!is_connected(sub.graph)) return false;
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> minor_edges;
  for (const Edge& e : g.edges()) {
    const std::uint32_t a = owner[e.u];
    const std::uint32_t b = owner[e.v];
    if (a == static_cast<std::uint32_t>(-1) || b == static_cast<std::uint32_t>(-1))
      continue;
    if (a == b) continue;
    minor_edges.insert({std::min(a, b), std::max(a, b)});
  }
  witness.minor_nodes = witness.branch_sets.size();
  witness.minor_edges = minor_edges.size();
  return true;
}

}  // namespace

bool validate_minor_witness(const Graph& g, MinorWitness& witness) {
  return recount(g, witness);
}

double simple_edge_density(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  std::set<std::pair<NodeId, NodeId>> simple;
  for (const Edge& e : g.edges()) {
    simple.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return static_cast<double>(simple.size()) / static_cast<double>(g.num_nodes());
}

MinorWitness dense_minor_search(const Graph& g, Rng& rng, int restarts,
                                std::size_t max_steps) {
  MinorWitness best;
  if (g.num_nodes() == 0) return best;
  if (max_steps == 0) max_steps = g.num_nodes();

  for (int attempt = 0; attempt < restarts; ++attempt) {
    // Contraction state: union-find plus a simple-graph edge multiset between
    // current super-nodes. Greedy: contract a random edge among those whose
    // contraction keeps density highest (full argmax is O(m) per step; we
    // sample a small candidate pool to stay near-linear).
    UnionFind uf(g.num_nodes());
    auto density_now = [&]() {
      std::set<std::pair<NodeId, NodeId>> super_edges;
      for (const Edge& e : g.edges()) {
        const NodeId a = uf.find(e.u), b = uf.find(e.v);
        if (a != b) super_edges.insert({std::min(a, b), std::max(a, b)});
      }
      return static_cast<double>(super_edges.size()) /
             static_cast<double>(uf.num_sets());
    };

    double current_best_density = density_now();
    UnionFind best_state = uf;
    for (std::size_t step = 0; step < max_steps && uf.num_sets() > 2; ++step) {
      // Sample candidate edges; pick the contraction with max density.
      constexpr int kCandidates = 12;
      double cand_best = -1.0;
      std::pair<NodeId, NodeId> cand_pair{kInvalidNode, kInvalidNode};
      for (int c = 0; c < kCandidates; ++c) {
        const Edge& e = g.edge(static_cast<EdgeId>(rng.next_below(g.num_edges())));
        const NodeId a = uf.find(e.u), b = uf.find(e.v);
        if (a == b) continue;
        UnionFind trial = uf;
        trial.unite(a, b);
        std::set<std::pair<NodeId, NodeId>> super_edges;
        for (const Edge& f : g.edges()) {
          const NodeId x = trial.find(f.u), y = trial.find(f.v);
          if (x != y) super_edges.insert({std::min(x, y), std::max(x, y)});
        }
        const double d = static_cast<double>(super_edges.size()) /
                         static_cast<double>(trial.num_sets());
        if (d > cand_best) {
          cand_best = d;
          cand_pair = {a, b};
        }
      }
      if (cand_pair.first == kInvalidNode) break;
      uf.unite(cand_pair.first, cand_pair.second);
      if (cand_best > current_best_density) {
        current_best_density = cand_best;
        best_state = uf;
      }
    }

    // Materialize witness from best_state.
    std::map<NodeId, std::vector<NodeId>> groups;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      groups[best_state.find(v)].push_back(v);
    }
    MinorWitness witness;
    for (auto& [root, members] : groups) {
      witness.branch_sets.push_back(std::move(members));
    }
    if (recount(g, witness) && witness.density() > best.density()) {
      best = std::move(witness);
    }
  }
  return best;
}

MinorWitness observation21_witness(const Graph& layered_grid, std::size_t side) {
  const std::size_t n = side * side;
  DLS_REQUIRE(layered_grid.num_nodes() == 2 * n,
              "expected a 2-layer layered graph of an s x s grid");
  MinorWitness witness;
  // Layer 1 rows: R_i = {l=0, nodes i*side..i*side+side-1}.
  for (std::size_t r = 0; r < side; ++r) {
    std::vector<NodeId> set;
    for (std::size_t c = 0; c < side; ++c) {
      set.push_back(static_cast<NodeId>(r * side + c));
    }
    witness.branch_sets.push_back(std::move(set));
  }
  // Layer 2 columns: C_j = {l=1, nodes j, side+j, ...} offset by n.
  for (std::size_t c = 0; c < side; ++c) {
    std::vector<NodeId> set;
    for (std::size_t r = 0; r < side; ++r) {
      set.push_back(static_cast<NodeId>(n + r * side + c));
    }
    witness.branch_sets.push_back(std::move(set));
  }
  const bool ok = recount(layered_grid, witness);
  DLS_ASSERT(ok, "Observation 21 witness invalid — wrong layered layout?");
  return witness;
}

}  // namespace dls
