// Graph generators for the experiment families used throughout the paper's
// statements: paths/cycles (trivial SQ), 2-D grids (the planar family of
// Figures 1 and 3, D = Θ(√n)), tori, trees, k-trees (bounded treewidth,
// Lemma 19 / Corollary 20), random regular graphs (expanders, SQ = polylog),
// Erdős–Rényi, hypercubes, and the dumbbell-style hard instances on which the
// Ω(√n + D) existential lower bound [13] is built.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

Graph make_path(std::size_t n, Weight weight = 1.0);
Graph make_cycle(std::size_t n, Weight weight = 1.0);
Graph make_star(std::size_t n);
Graph make_complete(std::size_t n);

/// rows x cols grid; node (r, c) has id r*cols + c.
Graph make_grid(std::size_t rows, std::size_t cols);
/// Grid with wraparound edges (vertex-transitive, D = Θ(rows + cols)).
Graph make_torus(std::size_t rows, std::size_t cols);
/// Grid with one diagonal per cell — a triangulated planar graph.
Graph make_triangulated_grid(std::size_t rows, std::size_t cols);

/// Complete binary tree with n nodes (heap indexing).
Graph make_balanced_binary_tree(std::size_t n);
/// Uniform random labelled tree (random attachment to a previous node).
Graph make_random_tree(std::size_t n, Rng& rng);
/// A path of `spine` nodes, each with `legs` pendant nodes. tw = 1, D = spine+1.
Graph make_caterpillar(std::size_t spine, std::size_t legs);

/// k-tree on n nodes: treewidth exactly k (for n > k), chordal.
Graph make_k_tree(std::size_t n, std::size_t k, Rng& rng);

/// Random d-regular multigraph via the configuration model; with high
/// probability an expander for d >= 3. n*d must be even.
Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng);

/// G(n, p) restricted to its largest connected component not guaranteed;
/// callers should check connectivity. Edges kept with probability p.
Graph make_erdos_renyi(std::size_t n, double p, Rng& rng);

Graph make_hypercube(std::size_t dims);

/// Two cliques of size n/2 joined by a single edge — maximal SQ contrast
/// between the dense sides (D small) and the bridge.
Graph make_barbell(std::size_t n);

/// The hard family behind the Ω(√n + D) lower bound [13]: √n parallel paths
/// of length √n, glued to a shallow binary tree that provides a small
/// hop-diameter while every path-to-path route crosses the tree root region.
/// SQ(G) = Θ̃(√n) although D = O(log n).
Graph make_lower_bound_dumbbell(std::size_t side);

/// Random geometric-ish planar-ish graph: grid plus random perturbation of
/// weights; used for weighted-solver tests.
Graph make_weighted_grid(std::size_t rows, std::size_t cols, Rng& rng,
                         Weight min_w = 1.0, Weight max_w = 16.0);

/// Barabási–Albert preferential attachment: each new node attaches `m_edges`
/// edges to existing nodes chosen ∝ degree. The "social network" family the
/// paper's introduction motivates: D = O(log n) (folklore), small SQ.
Graph make_preferential_attachment(std::size_t n, std::size_t m_edges, Rng& rng);

}  // namespace dls
