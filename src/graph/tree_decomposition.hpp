// Tree decompositions (Definition 11 of the paper) and treewidth upper bounds
// via elimination-ordering heuristics (min-degree, min-fill). Used to verify
// Lemma 19 (tw(Ĝ_ρ) ≤ ρ·tw(G) + ρ − 1) empirically and to drive the
// treewidth-bounded congested-PA solver (Corollary 20).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dls {

/// A tree decomposition: bags_ of nodes plus a tree over the bags.
struct TreeDecomposition {
  std::vector<std::vector<NodeId>> bags;
  /// Edges of the decomposition tree as (bag index, bag index) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tree_edges;

  /// max |bag| − 1; 0 bags yields width −1 represented as 0 for empty graphs.
  std::size_t width() const;
};

/// Checks the three properties of Definition 11 against g.
bool is_valid_tree_decomposition(const Graph& g, const TreeDecomposition& td);

enum class EliminationHeuristic { kMinDegree, kMinFill };

/// Builds a tree decomposition from an elimination ordering chosen greedily
/// by the given heuristic. The returned width is an upper bound on tw(g).
TreeDecomposition tree_decomposition_heuristic(
    const Graph& g, EliminationHeuristic heuristic = EliminationHeuristic::kMinDegree);

/// Convenience: width of the heuristic decomposition (treewidth upper bound).
std::size_t treewidth_upper_bound(
    const Graph& g, EliminationHeuristic heuristic = EliminationHeuristic::kMinDegree);

/// A cheap treewidth lower bound: the maximum over degeneracy-style
/// contractions of the minimum degree (MMD+ would be stronger; this suffices
/// to bracket the experiments).
std::size_t treewidth_lower_bound_min_degree(const Graph& g);

}  // namespace dls
