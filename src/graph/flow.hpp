// Unit-node-capacity flows and node-disjoint path packings.
//
// The shortcut-quality characterization machinery (Theorem 25, Lemma 24)
// speaks about *node-disjointly connectable* source/sink multisets: k paths
// matching sources to sinks with every node on at most one path (or at most
// ρ, for pair node connectivity ρ). This module provides the classical
// reduction — split every node into in/out copies with unit (or ρ) capacity
// and run augmenting-path max flow — plus path extraction.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dls {

struct NodeDisjointPathsResult {
  /// Paths found, each a node sequence from a source to a sink.
  std::vector<std::vector<NodeId>> paths;
  /// Number of source/sink pairs successfully connected (= paths.size()).
  std::size_t connected_pairs = 0;
};

/// Maximum set of node-disjoint paths from the source multiset S to the sink
/// multiset T (any-to-any: any source may match any sink). A node used by a
/// path cannot be reused by another, except that a node may appear multiple
/// times in S/T (multiset semantics): node v with multiplicity q in S∪T may
/// terminate q paths. `node_capacity` generalizes to ρ paths per node
/// (pair node connectivity ρ of the paper).
NodeDisjointPathsResult max_node_disjoint_paths(const Graph& g,
                                                std::span<const NodeId> sources,
                                                std::span<const NodeId> sinks,
                                                std::size_t node_capacity = 1);

/// True iff (S, T) are any-to-any node-disjointly connectable: all |S| = |T|
/// pairs can be simultaneously connected by node-disjoint paths.
bool any_to_any_node_disjointly_connectable(const Graph& g,
                                            std::span<const NodeId> sources,
                                            std::span<const NodeId> sinks,
                                            std::size_t node_capacity = 1);

/// Validates that `paths` are node-disjoint up to `node_capacity` per node
/// (counting interior and endpoint occurrences) and each path walks along
/// edges of g.
bool are_node_disjoint_paths(const Graph& g,
                             const std::vector<std::vector<NodeId>>& paths,
                             std::size_t node_capacity = 1);

/// Exact s–t max flow with edge capacities = edge weights (Edmonds–Karp;
/// augmentation count is O(nm) independent of capacities, so real-valued
/// capacities are safe). Ground truth for the electrical-flow application.
double max_flow_value(const Graph& g, NodeId s, NodeId t);

}  // namespace dls
