#include "graph/tree_decomposition.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "graph/algorithms.hpp"

namespace dls {

std::size_t TreeDecomposition::width() const {
  std::size_t best = 0;
  for (const auto& bag : bags) best = std::max(best, bag.size());
  return best == 0 ? 0 : best - 1;
}

bool is_valid_tree_decomposition(const Graph& g, const TreeDecomposition& td) {
  const std::size_t n = g.num_nodes();
  const std::size_t b = td.bags.size();
  if (b == 0) return n == 0;
  // Decomposition tree must be a tree over the bags.
  if (td.tree_edges.size() + 1 != b) return false;
  UnionFind uf(b);
  for (const auto& [x, y] : td.tree_edges) {
    if (x >= b || y >= b || x == y) return false;
    if (!uf.unite(static_cast<NodeId>(x), static_cast<NodeId>(y))) return false;
  }
  if (uf.num_sets() != 1) return false;

  // Property 1: every node is in some bag. Property 2: bags containing a node
  // form a connected subtree. Check 2 by verifying, for each node, that the
  // induced bag-subgraph is connected.
  std::vector<std::vector<std::uint32_t>> bags_of_node(n);
  for (std::uint32_t i = 0; i < b; ++i) {
    for (NodeId v : td.bags[i]) {
      if (v >= n) return false;
      bags_of_node[v].push_back(i);
    }
  }
  std::vector<std::vector<std::uint32_t>> tree_adj(b);
  for (const auto& [x, y] : td.tree_edges) {
    tree_adj[x].push_back(y);
    tree_adj[y].push_back(x);
  }
  std::vector<char> in_set(b, 0), seen(b, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (bags_of_node[v].empty()) return false;  // property 1
    for (std::uint32_t i : bags_of_node[v]) in_set[i] = 1;
    // BFS within the marked bags.
    std::vector<std::uint32_t> stack{bags_of_node[v][0]};
    seen[bags_of_node[v][0]] = 1;
    std::size_t reached = 0;
    while (!stack.empty()) {
      const std::uint32_t i = stack.back();
      stack.pop_back();
      ++reached;
      for (std::uint32_t j : tree_adj[i]) {
        if (in_set[j] && !seen[j]) {
          seen[j] = 1;
          stack.push_back(j);
        }
      }
    }
    const bool connected = reached == bags_of_node[v].size();
    for (std::uint32_t i : bags_of_node[v]) {
      in_set[i] = 0;
      seen[i] = 0;
    }
    if (!connected) return false;  // property 2
  }
  // Property 3: every edge is inside some bag.
  for (const Edge& e : g.edges()) {
    bool found = false;
    // Scan the (typically short) bag list of the lower-degree endpoint.
    const NodeId probe =
        bags_of_node[e.u].size() <= bags_of_node[e.v].size() ? e.u : e.v;
    const NodeId other = probe == e.u ? e.v : e.u;
    for (std::uint32_t i : bags_of_node[probe]) {
      if (std::find(td.bags[i].begin(), td.bags[i].end(), other) !=
          td.bags[i].end()) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

namespace {

/// Working fill graph for elimination: neighbor sets that we mutate as nodes
/// are eliminated (simple-graph view; parallel edges collapse).
struct FillGraph {
  std::vector<std::set<NodeId>> adj;

  explicit FillGraph(const Graph& g) : adj(g.num_nodes()) {
    for (const Edge& e : g.edges()) {
      adj[e.u].insert(e.v);
      adj[e.v].insert(e.u);
    }
  }

  std::size_t fill_in_count(NodeId v) const {
    std::size_t missing = 0;
    const auto& nv = adj[v];
    for (auto it = nv.begin(); it != nv.end(); ++it) {
      for (auto jt = std::next(it); jt != nv.end(); ++jt) {
        if (adj[*it].find(*jt) == adj[*it].end()) ++missing;
      }
    }
    return missing;
  }

  /// Eliminate v: connect its neighborhood into a clique and remove v.
  void eliminate(NodeId v) {
    const std::vector<NodeId> nv(adj[v].begin(), adj[v].end());
    for (std::size_t i = 0; i < nv.size(); ++i) {
      for (std::size_t j = i + 1; j < nv.size(); ++j) {
        adj[nv[i]].insert(nv[j]);
        adj[nv[j]].insert(nv[i]);
      }
    }
    for (NodeId u : nv) adj[u].erase(v);
    adj[v].clear();
  }
};

}  // namespace

TreeDecomposition tree_decomposition_heuristic(const Graph& g,
                                               EliminationHeuristic heuristic) {
  const std::size_t n = g.num_nodes();
  TreeDecomposition td;
  if (n == 0) return td;

  FillGraph fill(g);
  std::vector<char> eliminated(n, 0);
  std::vector<std::vector<NodeId>> elim_bag(n);  // bag formed when v eliminated
  std::vector<NodeId> order;
  order.reserve(n);

  for (std::size_t step = 0; step < n; ++step) {
    // Greedy pick by heuristic.
    NodeId best = kInvalidNode;
    std::size_t best_score = static_cast<std::size_t>(-1);
    for (NodeId v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::size_t score = heuristic == EliminationHeuristic::kMinDegree
                              ? fill.adj[v].size()
                              : fill.fill_in_count(v);
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    DLS_ASSERT(best != kInvalidNode, "elimination ran out of nodes early");
    elim_bag[best].assign(fill.adj[best].begin(), fill.adj[best].end());
    elim_bag[best].push_back(best);
    fill.eliminate(best);
    eliminated[best] = 1;
    order.push_back(best);
  }

  // Build the decomposition tree: bag i corresponds to order[i]; its parent
  // is the bag of the earliest-eliminated neighbor appearing later in the
  // elimination order (standard chordal construction).
  std::vector<std::uint32_t> position(n);
  for (std::uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  td.bags.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) td.bags[i] = elim_bag[order[i]];
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    std::uint32_t parent_pos = static_cast<std::uint32_t>(-1);
    for (NodeId u : elim_bag[v]) {
      if (u == v) continue;
      parent_pos = std::min(parent_pos, position[u]);
    }
    if (parent_pos != static_cast<std::uint32_t>(-1)) {
      td.tree_edges.emplace_back(i, parent_pos);
    } else if (i + 1 < n) {
      // Isolated-at-elimination node: attach anywhere to keep a tree.
      td.tree_edges.emplace_back(i, i + 1);
    }
  }
  return td;
}

std::size_t treewidth_upper_bound(const Graph& g, EliminationHeuristic heuristic) {
  return tree_decomposition_heuristic(g, heuristic).width();
}

std::size_t treewidth_lower_bound_min_degree(const Graph& g) {
  // "MMD" lower bound: repeatedly remove a minimum-degree node; the maximum
  // min-degree seen is a lower bound on treewidth.
  FillGraph fill(g);
  std::vector<char> removed(g.num_nodes(), 0);
  std::size_t best = 0;
  for (std::size_t step = 0; step < g.num_nodes(); ++step) {
    NodeId arg = kInvalidNode;
    std::size_t min_deg = static_cast<std::size_t>(-1);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!removed[v] && fill.adj[v].size() < min_deg) {
        min_deg = fill.adj[v].size();
        arg = v;
      }
    }
    if (arg == kInvalidNode) break;
    best = std::max(best, min_deg);
    // Remove without fill-in (degeneracy-style).
    for (NodeId u : std::vector<NodeId>(fill.adj[arg].begin(), fill.adj[arg].end())) {
      fill.adj[u].erase(arg);
    }
    fill.adj[arg].clear();
    removed[arg] = 1;
  }
  return best;
}

}  // namespace dls
