#include "graph/flow.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>

namespace dls {

namespace {

/// Minimal arc-based max-flow network (Edmonds–Karp; capacities are small
/// integers here, so augmenting-path counts stay tiny).
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t num_nodes) : adj_(num_nodes) {}

  std::size_t add_node() {
    adj_.emplace_back();
    return adj_.size() - 1;
  }

  void add_arc(std::size_t from, std::size_t to, std::int64_t capacity) {
    adj_[from].push_back({to, capacity, 0, adj_[to].size()});
    adj_[to].push_back({from, 0, 0, adj_[from].size() - 1});
  }

  std::int64_t max_flow(std::size_t s, std::size_t t) {
    std::int64_t total = 0;
    for (;;) {
      // BFS for a shortest augmenting path.
      std::vector<std::pair<std::size_t, std::size_t>> parent(
          adj_.size(), {SIZE_MAX, SIZE_MAX});  // (node, arc index)
      std::deque<std::size_t> queue{s};
      parent[s] = {s, SIZE_MAX};
      while (!queue.empty() && parent[t].first == SIZE_MAX) {
        const std::size_t v = queue.front();
        queue.pop_front();
        for (std::size_t i = 0; i < adj_[v].size(); ++i) {
          const Arc& arc = adj_[v][i];
          if (arc.capacity - arc.flow > 0 && parent[arc.to].first == SIZE_MAX) {
            parent[arc.to] = {v, i};
            queue.push_back(arc.to);
          }
        }
      }
      if (parent[t].first == SIZE_MAX) break;
      // Bottleneck along the path.
      std::int64_t bottleneck = INT64_MAX;
      for (std::size_t v = t; v != s;) {
        const auto [pv, pi] = parent[v];
        bottleneck = std::min(bottleneck,
                              adj_[pv][pi].capacity - adj_[pv][pi].flow);
        v = pv;
      }
      for (std::size_t v = t; v != s;) {
        const auto [pv, pi] = parent[v];
        Arc& arc = adj_[pv][pi];
        arc.flow += bottleneck;
        adj_[arc.to][arc.rev].flow -= bottleneck;
        v = pv;
      }
      total += bottleneck;
    }
    return total;
  }

  /// Positive flow on arcs out of `v`, as (arc index, flow) pairs.
  struct Arc {
    std::size_t to;
    std::int64_t capacity;
    std::int64_t flow;
    std::size_t rev;
  };

  std::vector<std::vector<Arc>>& arcs() { return adj_; }

 private:
  std::vector<std::vector<Arc>> adj_;
};

}  // namespace

NodeDisjointPathsResult max_node_disjoint_paths(const Graph& g,
                                                std::span<const NodeId> sources,
                                                std::span<const NodeId> sinks,
                                                std::size_t node_capacity) {
  DLS_REQUIRE(node_capacity >= 1, "node capacity must be positive");
  const std::size_t n = g.num_nodes();
  // Layout: v_in = 2v, v_out = 2v + 1, then super source/sink.
  FlowNetwork net(2 * n);
  const std::size_t super_s = net.add_node();
  const std::size_t super_t = net.add_node();
  const auto in_of = [](NodeId v) { return static_cast<std::size_t>(2 * v); };
  const auto out_of = [](NodeId v) { return static_cast<std::size_t>(2 * v + 1); };
  for (NodeId v = 0; v < n; ++v) {
    net.add_arc(in_of(v), out_of(v),
                static_cast<std::int64_t>(node_capacity));
  }
  for (const Edge& e : g.edges()) {
    net.add_arc(out_of(e.u), in_of(e.v),
                static_cast<std::int64_t>(node_capacity));
    net.add_arc(out_of(e.v), in_of(e.u),
                static_cast<std::int64_t>(node_capacity));
  }
  for (NodeId s : sources) {
    DLS_REQUIRE(s < n, "source out of range");
    net.add_arc(super_s, in_of(s), 1);
  }
  for (NodeId t : sinks) {
    DLS_REQUIRE(t < n, "sink out of range");
    net.add_arc(out_of(t), super_t, 1);
  }
  const std::int64_t flow = net.max_flow(super_s, super_t);

  // Path extraction: repeatedly walk positive flow from the super source,
  // consuming one unit per arc traversed.
  NodeDisjointPathsResult result;
  result.connected_pairs = static_cast<std::size_t>(flow);
  auto& arcs = net.arcs();
  for (std::int64_t p = 0; p < flow; ++p) {
    std::vector<NodeId> path;
    std::size_t cur = super_s;
    std::size_t steps = 0;
    while (cur != super_t) {
      DLS_ASSERT(++steps <= 4 * (n + 2) * node_capacity,
                 "flow decomposition entered a cycle");
      bool advanced = false;
      for (auto& arc : arcs[cur]) {
        if (arc.flow > 0) {
          arc.flow -= 1;
          arcs[arc.to][arc.rev].flow += 1;
          if (arc.to != super_t && arc.to % 2 == 0) {
            // Entering v_in: record the original node once per visit.
            path.push_back(static_cast<NodeId>(arc.to / 2));
          }
          cur = arc.to;
          advanced = true;
          break;
        }
      }
      DLS_ASSERT(advanced, "flow decomposition stalled");
    }
    result.paths.push_back(std::move(path));
  }
  return result;
}

bool any_to_any_node_disjointly_connectable(const Graph& g,
                                            std::span<const NodeId> sources,
                                            std::span<const NodeId> sinks,
                                            std::size_t node_capacity) {
  DLS_REQUIRE(sources.size() == sinks.size(),
              "sources and sinks must have equal size");
  const NodeDisjointPathsResult result =
      max_node_disjoint_paths(g, sources, sinks, node_capacity);
  return result.connected_pairs == sources.size();
}

double max_flow_value(const Graph& g, NodeId s, NodeId t) {
  DLS_REQUIRE(s < g.num_nodes() && t < g.num_nodes() && s != t,
              "bad flow endpoints");
  // Residual capacities per directed arc; arcs 2e (u→v) and 2e+1 (v→u).
  std::vector<double> residual(2 * g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    residual[2 * e] = g.edge(e).weight;
    residual[2 * e + 1] = g.edge(e).weight;
  }
  double total = 0.0;
  for (;;) {
    // BFS over positive-residual arcs.
    std::vector<std::pair<NodeId, std::size_t>> parent(
        g.num_nodes(), {kInvalidNode, SIZE_MAX});
    std::deque<NodeId> queue{s};
    parent[s] = {s, SIZE_MAX};
    while (!queue.empty() && parent[t].first == kInvalidNode) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const Adjacency& a : g.neighbors(v)) {
        const std::size_t arc =
            2 * static_cast<std::size_t>(a.edge) + (g.edge(a.edge).u == v ? 0 : 1);
        if (residual[arc] > 1e-12 && parent[a.neighbor].first == kInvalidNode) {
          parent[a.neighbor] = {v, arc};
          queue.push_back(a.neighbor);
        }
      }
    }
    if (parent[t].first == kInvalidNode) break;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = t; v != s; v = parent[v].first) {
      bottleneck = std::min(bottleneck, residual[parent[v].second]);
    }
    for (NodeId v = t; v != s; v = parent[v].first) {
      const std::size_t arc = parent[v].second;
      residual[arc] -= bottleneck;
      residual[arc ^ 1] += bottleneck;
    }
    total += bottleneck;
  }
  return total;
}

bool are_node_disjoint_paths(const Graph& g,
                             const std::vector<std::vector<NodeId>>& paths,
                             std::size_t node_capacity) {
  std::vector<std::size_t> load(g.num_nodes(), 0);
  for (const auto& path : paths) {
    if (path.empty()) return false;
    for (NodeId v : path) {
      if (v >= g.num_nodes()) return false;
      if (++load[v] > node_capacity) return false;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool adjacent = false;
      for (const Adjacency& a : g.neighbors(path[i])) {
        adjacent |= a.neighbor == path[i + 1];
      }
      if (!adjacent) return false;
    }
  }
  return true;
}

}  // namespace dls
