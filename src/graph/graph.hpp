// Undirected weighted multigraph.
//
// This is the single graph type used throughout the library: communication
// networks, layered graphs Ĝ_ρ, shortcut subgraphs H_i, minors and Schur
// complements are all instances of it. It is a multigraph because the layered
// construction and minor contractions naturally create parallel edges, and
// the CONGEST model lets each parallel edge carry an independent message
// (cf. Lemma 17 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace dls {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = double;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge with a positive weight. Self-loops are disallowed:
/// they carry no information in any of the models we simulate and they are
/// meaningless for Laplacians.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Weight weight = 1.0;

  /// The endpoint different from `from`.
  NodeId other(NodeId from) const {
    DLS_ASSERT(from == u || from == v, "other() called with non-endpoint");
    return from == u ? v : u;
  }
};

/// (neighbor, edge id) pair as stored in adjacency lists.
struct Adjacency {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

/// Undirected weighted multigraph with stable node and edge ids.
///
/// Nodes are 0..num_nodes()-1. Edges are appended and keep their id for the
/// lifetime of the graph. Adjacency lists are maintained incrementally, so
/// construction is O(n + m) and neighbor iteration is cache-friendly.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  NodeId add_node() {
    adjacency_.emplace_back();
    return static_cast<NodeId>(adjacency_.size() - 1);
  }

  /// Pre-sizes the edge store for a known edge count, so bulk builders
  /// (minor views, induced subgraphs, generators) append without regrowth.
  void reserve_edges(std::size_t num_edges) { edges_.reserve(num_edges); }

  /// Pre-sizes one adjacency list for a known degree; pair with a degree
  /// count pass to make bulk construction move-free.
  void reserve_neighbors(NodeId v, std::size_t degree) {
    DLS_REQUIRE(v < num_nodes(), "node id out of range");
    adjacency_[v].reserve(degree);
  }

  /// Adds an undirected edge; parallel edges are permitted, self-loops are not.
  EdgeId add_edge(NodeId u, NodeId v, Weight weight = 1.0) {
    DLS_REQUIRE(u < num_nodes() && v < num_nodes(), "edge endpoint out of range");
    DLS_REQUIRE(u != v, "self-loops are not supported");
    DLS_REQUIRE(weight > 0.0, "edge weights must be positive");
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back({u, v, weight});
    adjacency_[u].push_back({v, id});
    adjacency_[v].push_back({u, id});
    return id;
  }

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const {
    DLS_REQUIRE(id < edges_.size(), "edge id out of range");
    return edges_[id];
  }

  /// Mutable access to an edge's weight (used by sparsifier re-weighting).
  void set_weight(EdgeId id, Weight weight) {
    DLS_REQUIRE(id < edges_.size(), "edge id out of range");
    DLS_REQUIRE(weight > 0.0, "edge weights must be positive");
    edges_[id].weight = weight;
  }

  std::span<const Adjacency> neighbors(NodeId v) const {
    DLS_REQUIRE(v < num_nodes(), "node id out of range");
    return adjacency_[v];
  }

  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  std::size_t max_degree() const {
    std::size_t best = 0;
    for (const auto& adj : adjacency_) best = std::max(best, adj.size());
    return best;
  }

  /// Sum of all edge weights incident to v (the Laplacian diagonal entry).
  Weight weighted_degree(NodeId v) const {
    Weight sum = 0;
    for (const Adjacency& a : neighbors(v)) sum += edges_[a.edge].weight;
    return sum;
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Human-readable one-line description, for logging and error messages.
  std::string describe() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

/// The subgraph induced by `nodes`, with a mapping back to original ids.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;           // local id -> original id
  std::vector<NodeId> to_local;              // original id -> local id (or kInvalidNode)
};

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace dls
