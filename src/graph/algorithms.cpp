#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace dls {

std::uint32_t BfsResult::eccentricity() const {
  std::uint32_t best = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) best = std::max(best, d);
  }
  return best;
}

BfsResult bfs_multi(const Graph& g, std::span<const NodeId> sources) {
  BfsResult r;
  r.dist.assign(g.num_nodes(), BfsResult::kUnreachable);
  r.parent.assign(g.num_nodes(), kInvalidNode);
  r.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    DLS_REQUIRE(s < g.num_nodes(), "BFS source out of range");
    if (r.dist[s] == BfsResult::kUnreachable) {
      r.dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const Adjacency& a : g.neighbors(v)) {
      if (r.dist[a.neighbor] != BfsResult::kUnreachable) continue;
      r.dist[a.neighbor] = r.dist[v] + 1;
      r.parent[a.neighbor] = v;
      r.parent_edge[a.neighbor] = a.edge;
      queue.push_back(a.neighbor);
    }
  }
  return r;
}

BfsResult bfs(const Graph& g, NodeId source) {
  const NodeId sources[] = {source};
  return bfs_multi(g, sources);
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const BfsResult r = bfs(g, 0);
  return std::none_of(r.dist.begin(), r.dist.end(), [](std::uint32_t d) {
    return d == BfsResult::kUnreachable;
  });
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.num_nodes(), static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != static_cast<std::uint32_t>(-1)) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const Adjacency& a : g.neighbors(v)) {
        if (comp[a.neighbor] == static_cast<std::uint32_t>(-1)) {
          comp[a.neighbor] = next;
          queue.push_back(a.neighbor);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::size_t count_components(const Graph& g) {
  const auto comp = connected_components(g);
  return comp.empty() ? 0
                      : 1 + *std::max_element(comp.begin(), comp.end());
}

std::uint32_t exact_diameter(const Graph& g) {
  DLS_REQUIRE(is_connected(g), "diameter of a disconnected graph is infinite");
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, bfs(g, v).eccentricity());
  }
  return best;
}

std::uint32_t approx_diameter(const Graph& g, Rng& rng, int sweeps) {
  DLS_REQUIRE(is_connected(g), "diameter of a disconnected graph is infinite");
  DLS_REQUIRE(g.num_nodes() > 0, "empty graph");
  std::uint32_t best = 0;
  NodeId start = static_cast<NodeId>(rng.next_below(g.num_nodes()));
  for (int i = 0; i < sweeps; ++i) {
    const BfsResult r = bfs(g, start);
    std::uint32_t far_dist = 0;
    NodeId far_node = start;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.dist[v] != BfsResult::kUnreachable && r.dist[v] > far_dist) {
        far_dist = r.dist[v];
        far_node = v;
      }
    }
    best = std::max(best, far_dist);
    start = far_node;
  }
  return best;
}

std::vector<EdgeId> bfs_tree_edges(const Graph& g, NodeId root) {
  const BfsResult r = bfs(g, root);
  std::vector<EdgeId> edges;
  edges.reserve(g.num_nodes() > 0 ? g.num_nodes() - 1 : 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DLS_REQUIRE(r.dist[v] != BfsResult::kUnreachable,
                "bfs_tree_edges requires a connected graph");
    if (r.parent_edge[v] != kInvalidEdge) edges.push_back(r.parent_edge[v]);
  }
  return edges;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
}

NodeId UnionFind::find(NodeId v) {
  DLS_REQUIRE(v < parent_.size(), "UnionFind id out of range");
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --sets_;
  return true;
}

std::vector<EdgeId> mst_kruskal(const Graph& g) {
  DLS_REQUIRE(is_connected(g), "MST requires a connected graph");
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::stable_sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).weight < g.edge(b).weight;
  });
  UnionFind uf(g.num_nodes());
  std::vector<EdgeId> tree;
  tree.reserve(g.num_nodes() > 0 ? g.num_nodes() - 1 : 0);
  for (EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  return tree;
}

bool is_spanning_tree(const Graph& g, std::span<const EdgeId> tree_edges) {
  if (g.num_nodes() == 0) return tree_edges.empty();
  if (tree_edges.size() != g.num_nodes() - 1) return false;
  UnionFind uf(g.num_nodes());
  for (EdgeId e : tree_edges) {
    if (e >= g.num_edges()) return false;
    if (!uf.unite(g.edge(e).u, g.edge(e).v)) return false;  // cycle
  }
  return uf.num_sets() == 1;
}

std::vector<NodeId> euler_tour(const Graph& g, std::span<const EdgeId> tree_edges,
                               NodeId root) {
  DLS_REQUIRE(root < g.num_nodes(), "euler_tour root out of range");
  std::vector<std::vector<NodeId>> children_adj(g.num_nodes());
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    children_adj[edge.u].push_back(edge.v);
    children_adj[edge.v].push_back(edge.u);
  }
  std::vector<NodeId> tour;
  std::vector<bool> visited(g.num_nodes(), false);
  // Iterative DFS that appends the current node every time control returns
  // to it, producing the classic 2k−1-length Euler tour.
  struct Frame {
    NodeId node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root});
  visited[root] = true;
  tour.push_back(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    bool descended = false;
    while (frame.next_child < children_adj[frame.node].size()) {
      const NodeId child = children_adj[frame.node][frame.next_child++];
      if (visited[child]) continue;
      visited[child] = true;
      tour.push_back(child);
      stack.push_back({child});
      descended = true;
      break;
    }
    if (!descended) {
      stack.pop_back();
      if (!stack.empty()) tour.push_back(stack.back().node);
    }
  }
  return tour;
}

std::optional<std::uint32_t> hop_distance(const Graph& g, NodeId a, NodeId b) {
  const BfsResult r = bfs(g, a);
  if (r.dist[b] == BfsResult::kUnreachable) return std::nullopt;
  return r.dist[b];
}

std::optional<std::vector<NodeId>> shortest_hop_path(const Graph& g, NodeId a,
                                                     NodeId b) {
  const BfsResult r = bfs(g, a);
  if (r.dist[b] == BfsResult::kUnreachable) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId v = b; v != kInvalidNode; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  DLS_ASSERT(path.front() == a, "path reconstruction failed");
  return path;
}

}  // namespace dls
