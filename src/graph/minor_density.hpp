// Minor density δ(G) (Definition 9): max |E(H)|/|V(H)| over minors H of G.
// Computing δ exactly is intractable, so we provide (a) the trivial density
// |E|/|V| of G itself, (b) a greedy contraction search that returns a
// *witness minor* and thus a certified lower bound on δ(G), and (c) the
// explicit Observation-21 witness for layered grids, where contracting rows
// in layer 1 and columns in layer 2 yields a K-like minor of density Ω(√n).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

/// A minor witness: a partition of a subset of V(G) into connected branch
/// sets; the minor has one node per branch set and an edge per pair of branch
/// sets joined by at least one G-edge.
struct MinorWitness {
  std::vector<std::vector<NodeId>> branch_sets;
  std::size_t minor_nodes = 0;
  std::size_t minor_edges = 0;

  double density() const {
    return minor_nodes == 0 ? 0.0
                            : static_cast<double>(minor_edges) /
                                  static_cast<double>(minor_nodes);
  }
};

/// Validates that the branch sets are disjoint and each induces a connected
/// subgraph, and recomputes the minor's node/edge counts.
bool validate_minor_witness(const Graph& g, MinorWitness& witness);

/// Density of G itself (a minor of itself): |E|/|V| counting parallel edges
/// once (minors are simple).
double simple_edge_density(const Graph& g);

/// Greedy randomized search for a dense minor: repeatedly contract the edge
/// whose contraction maximizes resulting density. Restarts `restarts` times.
/// Returns the densest witness found (a certified lower bound on δ(G)).
MinorWitness dense_minor_search(const Graph& g, Rng& rng, int restarts = 4,
                                std::size_t max_steps = 0);

/// The explicit Observation 21 witness on the 2-layered s×s grid: branch set
/// R_i = row i of layer 1, C_j = column j of layer 2. Every R_i touches every
/// C_j through the inter-layer clique edges, so the minor contains K_{s,s}
/// and has density ≥ s/2 = Ω(√n).
/// `layered_grid` must be the 2-layer layered graph of make_grid(s, s) with
/// the layer-major node numbering used by congested_pa::LayeredGraph
/// (copy l of node v has id l*n + v).
MinorWitness observation21_witness(const Graph& layered_grid, std::size_t side);

}  // namespace dls
