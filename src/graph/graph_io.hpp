// Plain-text graph serialization, so users can run the library on their own
// networks. The format is a DIMACS-flavoured edge list:
//
//   # comment
//   p <num_nodes>
//   e <u> <v> [weight]
//
// Node ids are 0-based; weight defaults to 1. Parsing is strict: malformed
// lines, negative or non-numeric ids, out-of-range endpoints, self-loops,
// non-finite or non-positive weights, duplicate edges, and trailing garbage
// all throw std::invalid_argument naming the offending line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dls {

Graph read_graph(std::istream& in);
Graph read_graph_file(const std::string& path);

void write_graph(std::ostream& out, const Graph& g,
                 const std::string& comment = "");
void write_graph_file(const std::string& path, const Graph& g,
                      const std::string& comment = "");

}  // namespace dls
