#include "graph/graph_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace dls {

Graph read_graph(std::istream& in) {
  Graph g;
  bool have_header = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("graph parse error at line " +
                                  std::to_string(line_number) + ": " + why);
    };
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    if (kind == "p") {
      if (have_header) fail("duplicate header");
      std::size_t n = 0;
      if (!(tokens >> n)) fail("header needs a node count");
      g = Graph(n);
      have_header = true;
    } else if (kind == "e") {
      if (!have_header) fail("edge before header");
      std::uint64_t u = 0, v = 0;
      double w = 1.0;
      if (!(tokens >> u >> v)) fail("edge needs two endpoints");
      tokens >> w;  // optional
      if (u >= g.num_nodes() || v >= g.num_nodes()) fail("endpoint out of range");
      if (u == v) fail("self-loop");
      if (w <= 0) fail("non-positive weight");
      g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!have_header) {
    throw std::invalid_argument("graph parse error: missing 'p' header");
  }
  return g;
}

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open graph file: " + path);
  return read_graph(in);
}

void write_graph(std::ostream& out, const Graph& g, const std::string& comment) {
  // Full round-trip precision for weights.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  if (!comment.empty()) out << "# " << comment << "\n";
  out << "p " << g.num_nodes() << "\n";
  for (const Edge& e : g.edges()) {
    out << "e " << e.u << " " << e.v;
    if (e.weight != 1.0) out << " " << e.weight;
    out << "\n";
  }
}

void write_graph_file(const std::string& path, const Graph& g,
                      const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot open graph file: " + path);
  write_graph(out, g, comment);
}

}  // namespace dls
