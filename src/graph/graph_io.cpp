#include "graph/graph_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

namespace dls {

namespace {

/// Strict non-negative integer parse: digits only (no sign, no hex, no
/// trailing junk), so "-1" is a parse error instead of wrapping around an
/// unsigned extraction to a 20-digit node id.
bool parse_index(const std::string& token, std::uint64_t& out) {
  if (token.empty() || token.size() > 18) return false;
  out = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// Strict finite-double parse: the whole token must be consumed and the
/// value must be finite (so "abc", "1.5x" and "nan"/"inf" all fail).
bool parse_weight(const std::string& token, double& out) {
  std::istringstream stream(token);
  if (!(stream >> out) || !stream.eof()) return false;
  return std::isfinite(out);
}

}  // namespace

Graph read_graph(std::istream& in) {
  Graph g;
  bool have_header = false;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_edges;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("graph parse error at line " +
                                  std::to_string(line_number) + ": " + why);
    };
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    if (kind == "p") {
      if (have_header) fail("duplicate header");
      std::string n_token, extra;
      if (!(tokens >> n_token)) fail("header needs a node count");
      std::uint64_t n = 0;
      if (!parse_index(n_token, n)) {
        fail("node count must be a non-negative integer, got '" + n_token +
             "'");
      }
      if (tokens >> extra) fail("trailing token '" + extra + "' after header");
      g = Graph(n);
      have_header = true;
    } else if (kind == "e") {
      if (!have_header) fail("edge before header");
      std::string u_token, v_token, w_token, extra;
      if (!(tokens >> u_token >> v_token)) fail("edge needs two endpoints");
      const bool has_weight = static_cast<bool>(tokens >> w_token);
      if (tokens >> extra) fail("trailing token '" + extra + "' after edge");
      std::uint64_t u = 0, v = 0;
      if (!parse_index(u_token, u) || !parse_index(v_token, v)) {
        fail("endpoints must be non-negative integers, got '" + u_token +
             " " + v_token + "'");
      }
      if (u >= g.num_nodes() || v >= g.num_nodes()) {
        fail("endpoint out of range (n = " + std::to_string(g.num_nodes()) +
             ")");
      }
      if (u == v) fail("self-loop");
      double w = 1.0;
      if (has_weight && !parse_weight(w_token, w)) {
        fail("weight must be a finite number, got '" + w_token + "'");
      }
      if (w <= 0) fail("non-positive weight");
      if (!seen_edges.insert({std::min(u, v), std::max(u, v)}).second) {
        fail("duplicate edge {" + std::to_string(u) + ", " +
             std::to_string(v) + "}");
      }
      g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!have_header) {
    throw std::invalid_argument(
        "graph parse error: missing 'p' header (empty or header-less input)");
  }
  return g;
}

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open graph file: " + path);
  return read_graph(in);
}

void write_graph(std::ostream& out, const Graph& g, const std::string& comment) {
  // Full round-trip precision for weights.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  if (!comment.empty()) out << "# " << comment << "\n";
  out << "p " << g.num_nodes() << "\n";
  for (const Edge& e : g.edges()) {
    out << "e " << e.u << " " << e.v;
    if (e.weight != 1.0) out << " " << e.weight;
    out << "\n";
  }
}

void write_graph_file(const std::string& path, const Graph& g,
                      const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot open graph file: " + path);
  write_graph(out, g, comment);
}

}  // namespace dls
