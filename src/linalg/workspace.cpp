#include "linalg/workspace.hpp"

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace dls {

namespace {

struct WsCounters {
  MetricCounter& acquires;
  MetricCounter& buffers;
  MetricCounter& capacity_grows;
};

WsCounters& ws_counters() {
  static WsCounters c{
      MetricsRegistry::global().counter("mem.alloc.ws.acquires"),
      MetricsRegistry::global().counter("mem.alloc.ws.buffers"),
      MetricsRegistry::global().counter("mem.alloc.ws.capacity_grows"),
  };
  return c;
}

}  // namespace

WorkspaceLease& WorkspaceLease::operator=(WorkspaceLease&& other) noexcept {
  if (this != &other) {
    release();
    ws_ = other.ws_;
    buf_ = other.buf_;
    other.ws_ = nullptr;
    other.buf_ = nullptr;
  }
  return *this;
}

void WorkspaceLease::release() {
  if (ws_ != nullptr && buf_ != nullptr) ws_->put_back(buf_);
  ws_ = nullptr;
  buf_ = nullptr;
}

Vec* SolveWorkspace::lease_raw(std::size_t n, bool zero) {
  ++acquires_;
  ws_counters().acquires.increment();
  Vec* buf = nullptr;
  if (!free_.empty()) {
    buf = free_.back();
    free_.pop_back();
    if (buf->capacity() < n) {
      ++capacity_grows_;
      ws_counters().capacity_grows.increment();
    }
  } else {
    all_.push_back(std::make_unique<Vec>());
    buf = all_.back().get();
    ++buffer_allocations_;
    ws_counters().buffers.increment();
    if (n > 0) {
      ++capacity_grows_;
      ws_counters().capacity_grows.increment();
    }
  }
  if (zero) {
    buf->assign(n, 0.0);
  } else {
    buf->resize(n);
  }
  return buf;
}

void SolveWorkspace::put_back(Vec* buf) { free_.push_back(buf); }

WorkspaceLease SolveWorkspace::acquire(std::size_t n) {
  return WorkspaceLease(this, lease_raw(n, /*zero=*/true));
}

WorkspaceLease SolveWorkspace::acquire_scratch(std::size_t n) {
  return WorkspaceLease(this, lease_raw(n, /*zero=*/false));
}

}  // namespace dls
