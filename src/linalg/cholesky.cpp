#include "linalg/cholesky.hpp"

#include <cmath>

#include "graph/algorithms.hpp"
#include "linalg/laplacian.hpp"
#include "util/thread_pool.hpp"

namespace dls {

GroundedCholesky::GroundedCholesky(const Graph& g, NodeId ground)
    : n_(g.num_nodes()), ground_(ground) {
  DLS_REQUIRE(ground < g.num_nodes(), "ground node out of range");
  DLS_REQUIRE(is_connected(g), "GroundedCholesky requires a connected graph");
  const std::size_t m = n_ - 1;  // grounded dimension
  // Index map: skip the ground node.
  std::vector<std::size_t> index(n_, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (v != ground_) index[v] = next++;
  }
  // Dense grounded Laplacian.
  std::vector<Vec> a(m, Vec(m, 0.0));
  for (const Edge& e : g.edges()) {
    if (e.u != ground_) a[index[e.u]][index[e.u]] += e.weight;
    if (e.v != ground_) a[index[e.v]][index[e.v]] += e.weight;
    if (e.u != ground_ && e.v != ground_) {
      a[index[e.u]][index[e.v]] -= e.weight;
      a[index[e.v]][index[e.u]] -= e.weight;
    }
  }
  // In-place dense Cholesky A = L Lᵀ.
  l_.assign(m, Vec(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= l_[i][k] * l_[j][k];
      if (i == j) {
        DLS_ASSERT(sum > 0.0, "grounded Laplacian not positive definite");
        l_[i][i] = std::sqrt(sum);
      } else {
        l_[i][j] = sum / l_[j][j];
      }
    }
  }
}

Vec GroundedCholesky::solve(const Vec& b) const {
  SolveWorkspace ws;
  Vec x;
  solve_into(b, x, ws);
  return x;
}

void GroundedCholesky::solve_into(const Vec& b, Vec& x,
                                  SolveWorkspace& ws) const {
  DLS_REQUIRE(b.size() == n_, "solve: rhs size mismatch");
  DLS_REQUIRE(is_valid_rhs(b, 1e-6), "solve: rhs not in range(L)");
  const std::size_t m = n_ - 1;
  WorkspaceLease rb_l = ws.acquire_scratch(m);
  WorkspaceLease y_l = ws.acquire_scratch(m);
  WorkspaceLease z_l = ws.acquire_scratch(m);
  Vec& rb = *rb_l;
  Vec& y = *y_l;
  Vec& z = *z_l;
  // Reduced rhs (drop ground entry).
  {
    std::size_t next = 0;
    for (NodeId v = 0; v < n_; ++v) {
      if (v != ground_) rb[next++] = b[v];
    }
  }
  // Forward substitution L y = rb.
  for (std::size_t i = 0; i < m; ++i) {
    double sum = rb[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_[i][k] * y[k];
    y[i] = sum / l_[i][i];
  }
  // Back substitution Lᵀ z = y.
  for (std::size_t ii = m; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < m; ++k) sum -= l_[k][i] * z[k];
    z[i] = sum / l_[i][i];
  }
  // Re-insert ground (x_ground = 0), mean-zero representative.
  x.assign(n_, 0.0);
  {
    std::size_t next = 0;
    for (NodeId v = 0; v < n_; ++v) {
      if (v != ground_) x[v] = z[next++];
    }
  }
  project_mean_zero(x);
}

Vec GroundedCholesky::solve(const Vec& b, ThreadPool* pool) const {
  DLS_REQUIRE(b.size() == n_, "solve: rhs size mismatch");
  DLS_REQUIRE(is_valid_rhs(b, 1e-6), "solve: rhs not in range(L)");
  const std::size_t m = n_ - 1;
  Vec rb(m);
  {
    std::size_t next = 0;
    for (NodeId v = 0; v < n_; ++v) {
      if (v != ground_) rb[next++] = b[v];
    }
  }
  // Forward substitution L y = rb; row i's prefix dot is a blocked reduction.
  Vec y(m);
  for (std::size_t i = 0; i < m; ++i) {
    y[i] = (rb[i] - blocked_dot_range(l_[i].data(), y.data(), i, pool)) /
           l_[i][i];
  }
  // Back substitution Lᵀ z = y. The column access of Lᵀ defeats the range
  // kernel; keep the tail fold left-to-right so bits stay pool-invariant.
  Vec z(m);
  for (std::size_t ii = m; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < m; ++k) sum -= l_[k][i] * z[k];
    z[i] = sum / l_[i][i];
  }
  Vec x(n_, 0.0);
  {
    std::size_t next = 0;
    for (NodeId v = 0; v < n_; ++v) {
      if (v != ground_) x[v] = z[next++];
    }
  }
  project_mean_zero(x, pool);
  return x;
}

std::vector<Vec> GroundedCholesky::solve_batch(const std::vector<Vec>& bs,
                                               ThreadPool* pool) const {
  std::vector<Vec> xs(bs.size());
  const auto body = [&](std::size_t i) { xs[i] = solve(bs[i]); };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < bs.size(); ++i) body(i);
  } else {
    pool->parallel_for(bs.size(), body);
  }
  return xs;
}

}  // namespace dls
