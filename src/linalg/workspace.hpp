// Reusable solve workspace: a free-list arena of node-length vectors
// (docs/KERNELS.md).
//
// The recursive solver's inner loops need a handful of scratch vectors per
// level per outer iteration (residual, search direction, matvec output,
// elimination buffers, Cholesky substitution scratch). Allocating them fresh
// each iteration is the dominant small-allocation source in a warm solve; the
// workspace instead hands out buffers from a free list and takes them back
// when the lease goes out of scope, so a solve reaches a steady state where
// inner iterations perform zero heap allocations.
//
// The arena only changes *where* the doubles live, never their values or the
// order they are combined in, so solver outputs are bit-identical to the
// allocate-per-iteration code it replaces.
//
// Concurrency: a workspace is deliberately NOT thread-safe. Each solve
// context owns one (SolveSession gives every batch slot its own), matching
// the per-slot ledger/tracer discipline. Buffers may be handed to blocked
// kernels that fan out over a ThreadPool — the *lease* bookkeeping stays on
// the owning thread.
//
// Observability: acquisition traffic is mirrored into the global
// MetricsRegistry under `mem.alloc.*` (see docs/OBSERVABILITY.md):
//   mem.alloc.ws.acquires       every lease handed out
//   mem.alloc.ws.buffers        backing vectors created (cold path)
//   mem.alloc.ws.capacity_grows leases that had to grow a recycled buffer
// A steady-state solve moves only the first counter.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace dls {

class SolveWorkspace;

/// Move-only RAII lease of one workspace buffer. Releasing on destruction
/// (rather than by explicit calls) keeps the free list correct when a chaos
/// fault unwinds a solve mid-iteration.
class WorkspaceLease {
 public:
  WorkspaceLease() = default;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  WorkspaceLease(WorkspaceLease&& other) noexcept
      : ws_(other.ws_), buf_(other.buf_) {
    other.ws_ = nullptr;
    other.buf_ = nullptr;
  }
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept;
  ~WorkspaceLease() { release(); }

  Vec& operator*() const { return *buf_; }
  Vec* operator->() const { return buf_; }
  Vec& vec() const { return *buf_; }
  bool valid() const { return buf_ != nullptr; }

  /// Returns the buffer to the workspace early (idempotent).
  void release();

 private:
  friend class SolveWorkspace;
  WorkspaceLease(SolveWorkspace* ws, Vec* buf) : ws_(ws), buf_(buf) {}

  SolveWorkspace* ws_ = nullptr;
  Vec* buf_ = nullptr;
};

/// Free-list arena of Vec buffers. Buffers have stable addresses for the
/// workspace's lifetime (they live behind unique_ptrs), so leases stay valid
/// across further acquisitions.
class SolveWorkspace {
 public:
  SolveWorkspace() = default;
  SolveWorkspace(const SolveWorkspace&) = delete;
  SolveWorkspace& operator=(const SolveWorkspace&) = delete;

  /// Leases a buffer of length n with every entry zeroed.
  WorkspaceLease acquire(std::size_t n);
  /// Leases a buffer resized to n with unspecified contents — for buffers the
  /// caller overwrites entirely (matvec outputs, copy destinations).
  WorkspaceLease acquire_scratch(std::size_t n);

  /// Buffers created since construction. Flat across steady-state solves —
  /// the zero-allocation tests pin this.
  std::uint64_t buffer_allocations() const { return buffer_allocations_; }
  /// Recycled leases that had to grow a buffer's capacity. Also flat once
  /// warm.
  std::uint64_t capacity_grows() const { return capacity_grows_; }
  std::uint64_t acquires() const { return acquires_; }

  std::size_t pooled_buffers() const { return all_.size(); }

 private:
  friend class WorkspaceLease;
  Vec* lease_raw(std::size_t n, bool zero);
  void put_back(Vec* buf);

  std::vector<std::unique_ptr<Vec>> all_;  // stable addresses
  std::vector<Vec*> free_;
  std::uint64_t buffer_allocations_ = 0;
  std::uint64_t capacity_grows_ = 0;
  std::uint64_t acquires_ = 0;
};

}  // namespace dls
