#include "linalg/csr.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dls {

void LaplacianCsr::rebuild(const Graph& g) {
  ScopedSpan span(Tracer::ambient(), "kernel/csr-build", SpanKind::kPhase);
  const std::size_t n = g.num_nodes();
  row_ptr_.assign(n + 1, 0);
  col_.clear();
  weight_.clear();
  degree_.assign(n, 0.0);
  col_.reserve(2 * g.num_edges());
  weight_.reserve(2 * g.num_edges());
  for (std::size_t v = 0; v < n; ++v) {
    double deg = 0.0;
    for (const Adjacency& adj : g.neighbors(static_cast<NodeId>(v))) {
      const double w = g.edge(adj.edge).weight;
      col_.push_back(adj.neighbor);
      weight_.push_back(w);
      deg += w;  // adjacency-order fold, matching Graph::weighted_degree
    }
    degree_[v] = deg;
    row_ptr_[v + 1] = static_cast<std::uint32_t>(col_.size());
  }
  span.counter("nodes", n);
  span.counter("entries", col_.size());
}

void LaplacianCsr::refresh_weights(const Graph& g) {
  DLS_REQUIRE(num_nodes() == g.num_nodes(),
              "LaplacianCsr::refresh_weights: node count changed");
  DLS_REQUIRE(col_.size() == 2 * g.num_edges(),
              "LaplacianCsr::refresh_weights: edge count changed");
  const std::size_t n = g.num_nodes();
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; ++v) {
    double deg = 0.0;
    for (const Adjacency& adj : g.neighbors(static_cast<NodeId>(v))) {
      const double w = g.edge(adj.edge).weight;
      weight_[k++] = w;
      deg += w;
    }
    degree_[v] = deg;
  }
}

void LaplacianCsr::apply(const Vec& x, Vec& y, ThreadPool* pool) const {
  const std::size_t n = num_nodes();
  DLS_REQUIRE(x.size() == n, "LaplacianCsr::apply: size mismatch");
  y.resize(n);
  const std::size_t blocks = n == 0 ? 0 : (n - 1) / kKernelBlock + 1;
  const auto body = [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(n, lo + kKernelBlock);
    for (std::size_t v = lo; v < hi; ++v) {
      double acc = 0.0;
      const std::uint32_t row_end = row_ptr_[v + 1];
      for (std::uint32_t k = row_ptr_[v]; k < row_end; ++k) {
        acc += weight_[k] * (x[v] - x[col_[k]]);
      }
      y[v] = acc;
    }
  };
  if (blocks <= 1 || pool == nullptr) {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  } else {
    pool->parallel_for(blocks, body);
  }
}

double LaplacianCsr::apply_dot(const Vec& x, Vec& y, ThreadPool* pool) const {
  const std::size_t n = num_nodes();
  DLS_REQUIRE(x.size() == n, "LaplacianCsr::apply_dot: size mismatch");
  y.resize(n);
  const std::size_t blocks = n == 0 ? 0 : (n - 1) / kKernelBlock + 1;
  if (blocks == 0) return 0.0;
  const auto per_block = [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(n, lo + kKernelBlock);
    double sum = 0.0;
    for (std::size_t v = lo; v < hi; ++v) {
      double acc = 0.0;
      const std::uint32_t row_end = row_ptr_[v + 1];
      for (std::uint32_t k = row_ptr_[v]; k < row_end; ++k) {
        acc += weight_[k] * (x[v] - x[col_[k]]);
      }
      y[v] = acc;
      sum += x[v] * y[v];
    }
    return sum;
  };
  if (blocks == 1) return per_block(0);
  std::vector<double> partials(blocks, 0.0);
  if (pool == nullptr) {
    for (std::size_t b = 0; b < blocks; ++b) partials[b] = per_block(b);
  } else {
    pool->parallel_for(blocks, [&](std::size_t b) { partials[b] = per_block(b); });
  }
  double sum = 0.0;
  for (double p : partials) sum += p;  // ordered combine
  return sum;
}

}  // namespace dls
