// Dense vector helpers for the Laplacian solvers. Vectors over graph nodes
// are plain std::vector<double>; for a connected graph the Laplacian's kernel
// is the all-ones vector, so solvers work in the mean-zero subspace.
//
// Every reduction kernel here also exists in a *blocked* form that may fan
// out across a ThreadPool. The blocked kernels follow one determinism rule:
// block boundaries are fixed (kKernelBlock entries, independent of the pool
// or thread count), each block's partial is accumulated left-to-right, and
// the partials are combined in block-index order. The floating-point result
// is therefore a pure function of the inputs — a null pool, a 1-thread pool
// and an N-thread pool all produce the same bits — and for inputs of at most
// kKernelBlock entries it equals the plain sequential loop exactly.
#pragma once

#include <cstddef>
#include <vector>

namespace dls {

class ThreadPool;

using Vec = std::vector<double>;

/// Fixed block length of the deterministic blocked reductions. Chosen large
/// enough that per-block scheduling overhead is negligible and small enough
/// that a million-node vector still exposes hundreds of blocks of
/// parallelism.
inline constexpr std::size_t kKernelBlock = 4096;

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
/// y += alpha * x
void axpy(double alpha, const Vec& x, Vec& y);
/// a *= s
void scale(Vec& a, double s);
Vec add(const Vec& a, const Vec& b);
Vec sub(const Vec& a, const Vec& b);

/// r = a - b written into caller storage (r is resized; its capacity is
/// reused, so steady-state callers allocate nothing).
void sub_into(const Vec& a, const Vec& b, Vec& r);

// --- Fused kernels (docs/KERNELS.md) --------------------------------------
//
// Each fused kernel is bit-identical to the two-pass composition it replaces:
// per element the update lands before the reduction reads it, and every
// accumulator folds the same values in the same order as the unfused pair.

/// Fused axpy + self-dot: y += alpha·x, returns Σ y_i² over the *updated* y.
/// Bit-identical to axpy(alpha, x, y) followed by dot(y, y) — the CG residual
/// update + convergence check in one pass.
double axpy_dot(double alpha, const Vec& x, Vec& y);

/// y = x + beta·y — the CG/Chebyshev search-direction update p = z + βp,
/// in place.
void xpay(const Vec& x, double beta, Vec& y);

/// Subtract the mean, projecting onto the space orthogonal to 1 (the
/// Laplacian's range for a connected graph).
void project_mean_zero(Vec& a);

/// Max |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

// --- Deterministic blocked kernels (thread-count-invariant fp results) ----

/// Σ a_i b_i over fixed blocks, partials combined in block order. With
/// `pool == nullptr` the blocks run serially; either way the bits match.
double blocked_dot(const Vec& a, const Vec& b, ThreadPool* pool = nullptr);
/// Range variant for sub-vectors (used by the Cholesky substitution rows).
double blocked_dot_range(const double* a, const double* b, std::size_t n,
                         ThreadPool* pool = nullptr);
double blocked_sum(const Vec& a, ThreadPool* pool = nullptr);
double blocked_norm2(const Vec& a, ThreadPool* pool = nullptr);
/// Element-wise kernels: each block writes only its own entries, so the
/// result is trivially thread-count-invariant.
void blocked_axpy(double alpha, const Vec& x, Vec& y, ThreadPool* pool = nullptr);
void blocked_scale(Vec& a, double s, ThreadPool* pool = nullptr);
Vec blocked_sub(const Vec& a, const Vec& b, ThreadPool* pool = nullptr);
/// Allocation-free blocked_sub: writes into `r` (resized, capacity reused).
void blocked_sub_into(const Vec& a, const Vec& b, Vec& r,
                      ThreadPool* pool = nullptr);
/// Fused blocked axpy + self-dot: bit-identical to blocked_axpy followed by
/// blocked_dot(y, y) for every pool (same blocks, same per-block order, same
/// ordered combine).
double blocked_axpy_dot(double alpha, const Vec& x, Vec& y,
                        ThreadPool* pool = nullptr);
/// Blocked y = x + beta·y; element-wise, trivially thread-count-invariant.
void blocked_xpay(const Vec& x, double beta, Vec& y,
                  ThreadPool* pool = nullptr);
/// project_mean_zero with a blocked mean reduction + blocked subtraction.
void project_mean_zero(Vec& a, ThreadPool* pool);

}  // namespace dls
