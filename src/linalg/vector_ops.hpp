// Dense vector helpers for the Laplacian solvers. Vectors over graph nodes
// are plain std::vector<double>; for a connected graph the Laplacian's kernel
// is the all-ones vector, so solvers work in the mean-zero subspace.
#pragma once

#include <vector>

namespace dls {

using Vec = std::vector<double>;

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
/// y += alpha * x
void axpy(double alpha, const Vec& x, Vec& y);
/// a *= s
void scale(Vec& a, double s);
Vec add(const Vec& a, const Vec& b);
Vec sub(const Vec& a, const Vec& b);

/// Subtract the mean, projecting onto the space orthogonal to 1 (the
/// Laplacian's range for a connected graph).
void project_mean_zero(Vec& a);

/// Max |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

}  // namespace dls
