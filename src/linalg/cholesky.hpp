// Exact sparse Cholesky-style elimination for graph Laplacians, grounding one
// node to fix the kernel. Used as exact ground truth for small systems and as
// the base-case solver at the bottom of the recursive distributed solver
// (where the remaining graph is tiny and "solving locally" costs a broadcast).
#pragma once

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"

namespace dls {

/// Factorization of a connected graph Laplacian with node `ground` removed
/// (the reduced matrix is SPD). Solves return the mean-zero representative.
class GroundedCholesky {
 public:
  /// Builds the factorization; O(n³) worst case, intended for n ≲ 2000 or
  /// recursion base cases.
  GroundedCholesky(const Graph& g, NodeId ground = 0);

  /// Solves Lx = b (Σb = 0 required) exactly; returns mean-zero x.
  Vec solve(const Vec& b) const;

  /// Allocation-free solve: writes the mean-zero x into caller storage,
  /// leasing substitution scratch from `ws`. Bit-identical to solve(b) —
  /// the recursive solver's base case runs this once per inner iteration.
  void solve_into(const Vec& b, Vec& x, SolveWorkspace& ws) const;

  /// Blocked-reduction apply: the substitution row dots run through
  /// blocked_dot_range so a large factor's inner products fan out across the
  /// pool with thread-count-invariant bits (the row recurrence itself is
  /// inherently sequential). solve(b, pool) equals solve(b, nullptr) exactly
  /// for every pool.
  Vec solve(const Vec& b, ThreadPool* pool) const;

  /// Independent right-hand sides in parallel: entry i is bit-identical to
  /// solve(bs[i]) regardless of the pool (each RHS writes only its own slot).
  std::vector<Vec> solve_batch(const std::vector<Vec>& bs,
                               ThreadPool* pool = nullptr) const;

  std::size_t dimension() const { return n_; }

 private:
  std::size_t n_ = 0;
  NodeId ground_ = 0;
  // Dense lower-triangular factor of the grounded Laplacian (row-major).
  std::vector<Vec> l_;
};

}  // namespace dls
