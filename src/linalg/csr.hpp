// Cache-resident CSR view of a graph Laplacian (docs/KERNELS.md).
//
// The adjacency-list representation pays one indirect `g.edge(adj.edge)` load
// per neighbor on every matvec; the solver applies the same operator
// thousands of times per solve, so the hot levels flatten it once into
// row_ptr / col / weight arrays and apply against those. Entries are laid out
// in *adjacency order* — the exact order `Graph::neighbors(v)` iterates — so
// the per-vertex gather folds the same values in the same order as the
// adjacency kernels in linalg/laplacian.cpp, and (because adjacency lists are
// appended in edge-id order by `Graph::add_edge` and IEEE negation is exact)
// the same order as the historical edge-major scatter. apply() is therefore
// bit-identical to both `laplacian_apply` overloads for every thread count.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"

namespace dls {

class ThreadPool;

/// Immutable flattened Laplacian operator. Build once per graph (or rebuild
/// after a reweight); apply() writes into caller storage and allocates
/// nothing, which is what makes the solver's inner loops allocation-free.
class LaplacianCsr {
 public:
  LaplacianCsr() = default;
  explicit LaplacianCsr(const Graph& g) { rebuild(g); }

  /// (Re)builds the arrays from `g` in adjacency order. Emits one
  /// `kernel/csr-build` span when a tracer is ambient.
  void rebuild(const Graph& g);

  /// Re-reads edge weights from `g` into the existing layout. Requires the
  /// same structure (node count and adjacency shape) the view was built from;
  /// the cheap path under pure reweights (solver_cache's update ladder).
  void refresh_weights(const Graph& g);

  bool empty() const { return row_ptr_.empty(); }
  std::size_t num_nodes() const {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  std::size_t num_entries() const { return col_.size(); }
  /// Weighted degree of v — the Laplacian diagonal.
  double degree(NodeId v) const { return degree_[v]; }

  /// y = L x, in place. Node-major over fixed kKernelBlock node blocks; each
  /// block writes only its own y entries, so the bits are identical for a
  /// null pool and any thread count, and identical to the adjacency-list
  /// kernels (see the header comment).
  void apply(const Vec& x, Vec& y, ThreadPool* pool = nullptr) const;

  /// Fused matvec + inner product: y = L x and returns xᵀ L x, bit-identical
  /// to apply(x, y, pool) followed by blocked_dot(x, y, pool) — same node
  /// blocks, per-block left-to-right partials, ordered combine. Note the
  /// solver's CG loops project the matvec result to mean zero *between* the
  /// apply and the pᵀAp dot, so this fusion is only usable where no
  /// projection intervenes (benchmarks, energy norms xᵀLx).
  double apply_dot(const Vec& x, Vec& y, ThreadPool* pool = nullptr) const;

 private:
  std::vector<std::uint32_t> row_ptr_;  // n + 1 entries
  std::vector<NodeId> col_;
  std::vector<double> weight_;
  std::vector<double> degree_;  // weighted degrees (diagonal of L)
};

}  // namespace dls
