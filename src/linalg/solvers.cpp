#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"

namespace dls {

namespace {
std::size_t default_max_iters(std::size_t n, const SolveOptions& options) {
  return options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
}
}  // namespace

SolveResult conjugate_gradient(const LinearOperator& op, const Vec& b,
                               const SolveOptions& options) {
  SolveResult result;
  const std::size_t n = b.size();
  Vec rhs = b;
  project_mean_zero(rhs);
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  Vec r = rhs;
  Vec p = r;
  double rr = dot(r, r);
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    Vec ap = op(p);
    project_mean_zero(ap);  // numerical drift out of range(L)
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // operator not PD on this subspace — stop cleanly
    const double alpha = rr / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    const double rr_new = dot(r, r);
    result.iterations = it + 1;
    if (std::sqrt(rr_new) <= options.tolerance * b_norm) {
      result.converged = true;
      rr = rr_new;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  result.residual_norm = std::sqrt(rr) / b_norm;
  return result;
}

SolveResult solve_laplacian_cg(const Graph& g, const Vec& b,
                               const SolveOptions& options) {
  return conjugate_gradient(
      [&g](const Vec& x) { return laplacian_apply(g, x); }, b, options);
}

SolveResult preconditioned_cg(const LinearOperator& op,
                              const LinearOperator& precond, const Vec& b,
                              const SolveOptions& options) {
  SolveResult result;
  const std::size_t n = b.size();
  Vec rhs = b;
  project_mean_zero(rhs);
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  Vec r = rhs;
  Vec z = precond(r);
  project_mean_zero(z);
  Vec p = z;
  double rz = dot(r, z);
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    Vec ap = op(p);
    project_mean_zero(ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    if (norm2(r) <= options.tolerance * b_norm) {
      result.converged = true;
      break;
    }
    z = precond(r);
    project_mean_zero(z);
    const double rz_new = dot(r, z);
    if (rz == 0.0) break;
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = norm2(r) / b_norm;
  return result;
}

SolveResult chebyshev(const LinearOperator& op, const Vec& b, double lambda_min,
                      double lambda_max, const SolveOptions& options) {
  DLS_REQUIRE(lambda_min > 0 && lambda_max >= lambda_min,
              "chebyshev needs 0 < lambda_min <= lambda_max");
  SolveResult result;
  const std::size_t n = b.size();
  Vec rhs = b;
  project_mean_zero(rhs);
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double theta = 0.5 * (lambda_max + lambda_min);
  const double delta = 0.5 * (lambda_max - lambda_min);
  Vec r = rhs;
  Vec p(n, 0.0);
  double alpha = 0.0, beta = 0.0;
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    if (it == 0) {
      p = r;
      alpha = 1.0 / theta;
    } else {
      beta = (it == 1) ? 0.5 * (delta * alpha) * (delta * alpha)
                       : (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    }
    axpy(alpha, p, result.x);
    Vec ax = op(result.x);
    project_mean_zero(ax);
    r = sub(rhs, ax);
    result.iterations = it + 1;
    if (norm2(r) <= options.tolerance * b_norm) {
      result.converged = true;
      break;
    }
  }
  result.residual_norm = norm2(r) / b_norm;
  return result;
}

SpectrumBounds laplacian_spectrum_bounds(const Graph& g) {
  SpectrumBounds bounds;
  double max_wdeg = 0.0;
  double min_weight = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_wdeg = std::max(max_wdeg, g.weighted_degree(v));
  }
  for (const Edge& e : g.edges()) min_weight = std::min(min_weight, e.weight);
  bounds.lambda_max = 2.0 * max_wdeg;
  // λ₂ ≥ w_min · λ₂(unweighted) and λ₂(unweighted) ≥ 4/(n·diam) ≥ 1/n²
  // (Fiedler/Mohar). The n⁻² bound is loose but safe and free to compute.
  const double n = static_cast<double>(std::max<std::size_t>(g.num_nodes(), 2));
  bounds.lambda_min = (g.num_edges() > 0 ? min_weight : 1.0) / (n * n);
  return bounds;
}

}  // namespace dls
