#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/algorithms.hpp"

namespace dls {

namespace {

std::size_t default_max_iters(std::size_t n, const SolveOptions& options) {
  return options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
}

/// Non-finite right-hand side: nothing downstream can repair it, so fail
/// typed immediately (the incident is already on `wd`'s report).
SolveResult poisoned_input(std::size_t n, NumericalWatchdog& wd) {
  SolveResult result;
  result.x.assign(n, 0.0);
  result.residual_norm = std::numeric_limits<double>::infinity();
  result.watchdog = wd.report();
  return result;
}

/// One iterative-refinement pass: recompute the *true* residual (not the
/// recurrence-accumulated one, which the anomaly may have poisoned), solve
/// the correction with the watchdog off (no recursive refinement), and fold
/// it back in. Applied only when a signal fired during the main loop — the
/// steady state never reaches this, so its allocations are acceptable.
template <typename Solver>
void refine_on_anomaly(const InplaceOperator& op, const Vec& rhs,
                       double b_norm, const SolveOptions& options,
                       NumericalWatchdog& wd, SolveResult& result,
                       Solver solver) {
  if (!options.watchdog.enabled || !options.watchdog.refine_on_anomaly ||
      !wd.triggered() || !all_finite(result.x)) {
    return;
  }
  Vec ax;
  op(result.x, ax);
  project_mean_zero(ax);
  if (!all_finite(ax)) return;
  const Vec res = sub(rhs, ax);
  SolveOptions refine_options = options;
  refine_options.watchdog.enabled = false;
  refine_options.max_iterations =
      std::max<std::size_t>(result.iterations, 16);
  const SolveResult correction = solver(op, res, refine_options);
  if (!all_finite(correction.x)) return;
  axpy(1.0, correction.x, result.x);
  wd.note_refinement();
  op(result.x, ax);
  project_mean_zero(ax);
  result.residual_norm = norm2(sub(rhs, ax)) / b_norm;
  result.converged = result.residual_norm <= options.tolerance;
}

}  // namespace

SolveResult conjugate_gradient(const InplaceOperator& op, const Vec& b,
                               const SolveOptions& options,
                               SolveWorkspace& ws) {
  SolveResult result;
  const std::size_t n = b.size();
  NumericalWatchdog wd(options.watchdog);
  WorkspaceLease rhs_l = ws.acquire_scratch(n);
  Vec& rhs = *rhs_l;
  rhs = b;
  project_mean_zero(rhs);
  if (wd.check_vector(rhs, 0) != WatchdogSignal::kNone) {
    return poisoned_input(n, wd);
  }
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  WorkspaceLease r_l = ws.acquire_scratch(n);
  WorkspaceLease p_l = ws.acquire_scratch(n);
  WorkspaceLease ap_l = ws.acquire_scratch(n);
  Vec& r = *r_l;
  Vec& p = *p_l;
  Vec& ap = *ap_l;
  r = rhs;
  p = r;
  double rr = dot(r, r);
  // Remediation: drop the (possibly poisoned) Krylov state and restart the
  // recurrence from the current iterate — or from zero if the iterate itself
  // went non-finite.
  const auto hard_restart = [&]() {
    if (!all_finite(result.x)) result.x.assign(n, 0.0);
    op(result.x, ap);
    project_mean_zero(ap);
    if (!all_finite(ap)) {
      result.x.assign(n, 0.0);
      ap.assign(n, 0.0);
    }
    sub_into(rhs, ap, r);
    p = r;
    rr = dot(r, r);
    wd.reset_residual_tracking();
  };
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    op(p, ap);
    project_mean_zero(ap);
    if (wd.check_vector(ap, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    const double pap = dot(p, ap);
    if (wd.check_scalar(pap, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    if (pap <= 0.0) break;  // operator not PD on this subspace — stop cleanly
    const double alpha = rr / pap;
    axpy(alpha, p, result.x);
    const double rr_new = axpy_dot(-alpha, ap, r);
    result.iterations = it + 1;
    if (std::sqrt(rr_new) <= options.tolerance * b_norm) {
      result.converged = true;
      rr = rr_new;
      break;
    }
    const WatchdogSignal signal =
        wd.observe_residual(std::sqrt(rr_new) / b_norm, it);
    if (signal != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    xpay(r, beta, p);
  }
  result.residual_norm = std::sqrt(std::max(rr, 0.0)) / b_norm;
  refine_on_anomaly(op, rhs, b_norm, options, wd, result,
                    [&ws](const InplaceOperator& o, const Vec& rhs2,
                          const SolveOptions& opts) {
                      return conjugate_gradient(o, rhs2, opts, ws);
                    });
  result.watchdog = wd.report();
  return result;
}

SolveResult solve_laplacian_cg(const LaplacianCsr& csr, const Vec& b,
                               const SolveOptions& options,
                               SolveWorkspace& ws) {
  return conjugate_gradient(
      [&csr](const Vec& x, Vec& y) { csr.apply(x, y); }, b, options, ws);
}

SolveResult preconditioned_cg(const InplaceOperator& op,
                              const InplaceOperator& precond, const Vec& b,
                              const SolveOptions& options,
                              SolveWorkspace& ws) {
  SolveResult result;
  const std::size_t n = b.size();
  NumericalWatchdog wd(options.watchdog);
  WorkspaceLease rhs_l = ws.acquire_scratch(n);
  Vec& rhs = *rhs_l;
  rhs = b;
  project_mean_zero(rhs);
  if (wd.check_vector(rhs, 0) != WatchdogSignal::kNone) {
    return poisoned_input(n, wd);
  }
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  WorkspaceLease r_l = ws.acquire_scratch(n);
  WorkspaceLease z_l = ws.acquire_scratch(n);
  WorkspaceLease p_l = ws.acquire_scratch(n);
  WorkspaceLease ap_l = ws.acquire_scratch(n);
  Vec& r = *r_l;
  Vec& z = *z_l;
  Vec& p = *p_l;
  Vec& ap = *ap_l;
  r = rhs;
  precond(r, z);
  project_mean_zero(z);
  p = z;
  double rz = dot(r, z);
  // Remediation: recompute the true residual, re-precondition, and reset the
  // search direction to steepest descent in the preconditioned metric.
  const auto hard_restart = [&]() {
    if (!all_finite(result.x)) result.x.assign(n, 0.0);
    op(result.x, ap);
    project_mean_zero(ap);
    if (!all_finite(ap)) {
      result.x.assign(n, 0.0);
      ap.assign(n, 0.0);
    }
    sub_into(rhs, ap, r);
    precond(r, z);
    project_mean_zero(z);
    if (!all_finite(z)) z = r;  // preconditioner itself is sick — drop it
    p = z;
    rz = dot(r, z);
    wd.reset_residual_tracking();
  };
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    op(p, ap);
    project_mean_zero(ap);
    if (wd.check_vector(ap, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    const double pap = dot(p, ap);
    if (wd.check_scalar(pap, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    axpy(alpha, p, result.x);
    const double r_norm = std::sqrt(axpy_dot(-alpha, ap, r));
    result.iterations = it + 1;
    if (r_norm <= options.tolerance * b_norm) {
      result.converged = true;
      break;
    }
    const WatchdogSignal residual_signal =
        wd.observe_residual(r_norm / b_norm, it);
    if (residual_signal != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    precond(r, z);
    project_mean_zero(z);
    if (wd.check_vector(z, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    const double rz_new = dot(r, z);
    if (rz == 0.0) break;
    const double beta = rz_new / rz;
    if (wd.observe_beta(beta, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      hard_restart();
      continue;
    }
    rz = rz_new;
    xpay(z, beta, p);
  }
  result.residual_norm = norm2(r) / b_norm;
  refine_on_anomaly(op, rhs, b_norm, options, wd, result,
                    [&precond, &ws](const InplaceOperator& o, const Vec& rhs2,
                                    const SolveOptions& opts) {
                      return preconditioned_cg(o, precond, rhs2, opts, ws);
                    });
  result.watchdog = wd.report();
  return result;
}

SolveResult chebyshev(const InplaceOperator& op, const Vec& b,
                      double lambda_min, double lambda_max,
                      const SolveOptions& options, SolveWorkspace& ws) {
  DLS_REQUIRE(lambda_min > 0 && lambda_max >= lambda_min,
              "chebyshev needs 0 < lambda_min <= lambda_max");
  SolveResult result;
  const std::size_t n = b.size();
  NumericalWatchdog wd(options.watchdog);
  WorkspaceLease rhs_l = ws.acquire_scratch(n);
  Vec& rhs = *rhs_l;
  rhs = b;
  project_mean_zero(rhs);
  if (wd.check_vector(rhs, 0) != WatchdogSignal::kNone) {
    return poisoned_input(n, wd);
  }
  const double b_norm = norm2(rhs);
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double theta = 0.5 * (lambda_max + lambda_min);
  double delta = 0.5 * (lambda_max - lambda_min);
  WorkspaceLease r_l = ws.acquire_scratch(n);
  WorkspaceLease p_l = ws.acquire(n);
  WorkspaceLease ax_l = ws.acquire_scratch(n);
  Vec& r = *r_l;
  Vec& p = *p_l;
  Vec& ax = *ax_l;
  r = rhs;
  double alpha = 0.0, beta = 0.0;
  // `k` counts iterations since the last restart: the Chebyshev recurrence
  // coefficients are position-dependent, so a restart must rewind them even
  // though the overall budget `it` keeps advancing.
  std::size_t k = 0;
  // Remediation for divergence: the eigenbounds were wrong (part of the
  // spectrum outside [λmin, λmax] makes the polynomial amplify instead of
  // damp), so widen them and restart the recurrence — the "rebound".
  const auto rebound_restart = [&](bool widen) {
    if (widen) {
      lambda_min *= 0.5;
      lambda_max *= 2.0;
      theta = 0.5 * (lambda_max + lambda_min);
      delta = 0.5 * (lambda_max - lambda_min);
      wd.note_rebound();
    }
    result.x.assign(n, 0.0);
    r = rhs;
    p.assign(n, 0.0);
    alpha = 0.0;
    beta = 0.0;
    k = 0;
    wd.reset_residual_tracking();
  };
  const std::size_t max_iters = default_max_iters(n, options);
  for (std::size_t it = 0; it < max_iters; ++it) {
    if (k == 0) {
      p = r;
      alpha = 1.0 / theta;
    } else {
      beta = (k == 1) ? 0.5 * (delta * alpha) * (delta * alpha)
                      : (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      xpay(r, beta, p);
    }
    ++k;
    axpy(alpha, p, result.x);
    op(result.x, ax);
    project_mean_zero(ax);
    result.iterations = it + 1;
    if (wd.check_vector(ax, it) != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      rebound_restart(/*widen=*/false);
      continue;
    }
    sub_into(rhs, ax, r);
    const double r_norm = norm2(r);
    if (r_norm <= options.tolerance * b_norm) {
      result.converged = true;
      break;
    }
    const WatchdogSignal signal = wd.observe_residual(r_norm / b_norm, it);
    if (signal == WatchdogSignal::kResidualDivergence ||
        signal == WatchdogSignal::kResidualStagnation) {
      if (!wd.allow_restart()) break;
      rebound_restart(/*widen=*/true);
      continue;
    }
    if (signal != WatchdogSignal::kNone) {
      if (!wd.allow_restart()) break;
      rebound_restart(/*widen=*/false);
      continue;
    }
  }
  result.residual_norm = norm2(r) / b_norm;
  result.watchdog = wd.report();
  return result;
}

// --- Return-by-value adapters -----------------------------------------------

namespace {

InplaceOperator adapt(const LinearOperator& op) {
  return [&op](const Vec& x, Vec& y) { y = op(x); };
}

}  // namespace

SolveResult conjugate_gradient(const LinearOperator& op, const Vec& b,
                               const SolveOptions& options) {
  SolveWorkspace ws;
  return conjugate_gradient(adapt(op), b, options, ws);
}

SolveResult solve_laplacian_cg(const Graph& g, const Vec& b,
                               const SolveOptions& options) {
  LaplacianCsr csr(g);
  SolveWorkspace ws;
  return solve_laplacian_cg(csr, b, options, ws);
}

SolveResult preconditioned_cg(const LinearOperator& op,
                              const LinearOperator& precond, const Vec& b,
                              const SolveOptions& options) {
  SolveWorkspace ws;
  return preconditioned_cg(adapt(op), adapt(precond), b, options, ws);
}

SolveResult chebyshev(const LinearOperator& op, const Vec& b, double lambda_min,
                      double lambda_max, const SolveOptions& options) {
  SolveWorkspace ws;
  return chebyshev(adapt(op), b, lambda_min, lambda_max, options, ws);
}

SpectrumBounds laplacian_spectrum_bounds(const Graph& g) {
  SpectrumBounds bounds;
  double max_wdeg = 0.0;
  double min_weight = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_wdeg = std::max(max_wdeg, g.weighted_degree(v));
  }
  for (const Edge& e : g.edges()) min_weight = std::min(min_weight, e.weight);
  bounds.lambda_max = 2.0 * max_wdeg;
  // λ₂ ≥ w_min · λ₂(unweighted) and λ₂(unweighted) ≥ 4/(n·diam) ≥ 1/n²
  // (Fiedler/Mohar). The n⁻² bound is loose but safe and free to compute.
  const double n = static_cast<double>(std::max<std::size_t>(g.num_nodes(), 2));
  bounds.lambda_min = (g.num_edges() > 0 ? min_weight : 1.0) / (n * n);
  return bounds;
}

}  // namespace dls
