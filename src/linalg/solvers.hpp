// Sequential reference solvers for Laplacian systems Lx = b. These provide
// the numerical ground truth against which the distributed solvers are
// validated (EXPERIMENTS.md records distributed-vs-reference errors), plus
// the iteration kernels (CG / Chebyshev) reused inside the recursive
// distributed solver with a different matvec provider.
#pragma once

#include <functional>

#include "graph/graph.hpp"
#include "linalg/csr.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"
#include "resilience/watchdog.hpp"

namespace dls {

/// y = A x for the abstract operators the iterative kernels run against.
using LinearOperator = std::function<Vec(const Vec&)>;

/// In-place operator form: writes A x into caller storage (resizing it), so
/// steady-state iterations allocate nothing. The workspace-backed kernels
/// below run against this; the return-by-value API adapts onto it.
using InplaceOperator = std::function<void(const Vec& x, Vec& y)>;

struct SolveResult {
  Vec x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  // final ‖b − Lx‖₂ / ‖b‖₂
  bool converged = false;
  /// Numerical-watchdog trace: empty on a healthy run (on which the iterates
  /// are bit-identical to a watchdog-less build of these kernels).
  WatchdogReport watchdog;
};

struct SolveOptions {
  double tolerance = 1e-8;        // relative ℓ₂ residual target
  std::size_t max_iterations = 0; // 0 => 10·n + 100
  /// NaN/Inf guards, stagnation/divergence detection and budgeted
  /// remediation (restart, refinement pass, Chebyshev rebound). Enabled by
  /// default with thresholds generous enough that healthy solves never trip.
  WatchdogConfig watchdog;
};

// The workspace-backed kernels are the single implementation: scratch
// vectors (rhs / residual / search direction / matvec output) are leased from
// `ws` once per call, so after the first solve warms the free list the inner
// iterations perform zero heap allocations (pinned by the steady-state tests
// in test_kernels.cpp). Results are bit-identical to the historical
// allocate-per-iteration kernels — the fused axpy_dot / xpay updates preserve
// each accumulator's fold order exactly (vector_ops.hpp).

/// Conjugate gradient on the mean-zero subspace (handles the PSD kernel of a
/// connected Laplacian). `op` must be symmetric PSD with kernel span{1}.
SolveResult conjugate_gradient(const InplaceOperator& op, const Vec& b,
                               const SolveOptions& options, SolveWorkspace& ws);

/// CG against a prebuilt CSR operator (serial apply; bit-identical to the
/// Graph overload below, which builds the CSR view internally).
SolveResult solve_laplacian_cg(const LaplacianCsr& csr, const Vec& b,
                               const SolveOptions& options, SolveWorkspace& ws);

/// Preconditioned CG: `precond` applies an approximate pseudo-inverse of L.
SolveResult preconditioned_cg(const InplaceOperator& op,
                              const InplaceOperator& precond, const Vec& b,
                              const SolveOptions& options, SolveWorkspace& ws);

/// Chebyshev iteration given eigenvalue bounds [lambda_min, lambda_max] of
/// the (preconditioned) operator restricted to the mean-zero space.
SolveResult chebyshev(const InplaceOperator& op, const Vec& b,
                      double lambda_min, double lambda_max,
                      const SolveOptions& options, SolveWorkspace& ws);

// Return-by-value convenience API: adapts `op` onto the in-place kernels
// with a throwaway workspace. Same bits, per-call allocations.

SolveResult conjugate_gradient(const LinearOperator& op, const Vec& b,
                               const SolveOptions& options = {});

/// CG specialized to a graph Laplacian (flattens `g` to CSR once).
SolveResult solve_laplacian_cg(const Graph& g, const Vec& b,
                               const SolveOptions& options = {});

SolveResult preconditioned_cg(const LinearOperator& op,
                              const LinearOperator& precond, const Vec& b,
                              const SolveOptions& options = {});

SolveResult chebyshev(const LinearOperator& op, const Vec& b, double lambda_min,
                      double lambda_max, const SolveOptions& options = {});

/// Bounds on the nonzero Laplacian spectrum of a connected graph:
/// lambda_max ≤ 2·max weighted degree; lambda_min ≥ fiedler lower bound via
/// 1/(n·diam-ish) — we return safe (loose) analytic bounds good enough to
/// drive Chebyshev.
struct SpectrumBounds {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
};
SpectrumBounds laplacian_spectrum_bounds(const Graph& g);

}  // namespace dls
