// The graph Laplacian as a linear operator. L = D − A where D is the
// weighted-degree diagonal. For a connected graph, L is PSD with kernel
// span{1}; a system Lx = b is solvable iff Σ b_i = 0 and the solution is
// unique up to an additive constant. All error metrics below work in the
// L-seminorm, matching the ε of Theorems 1–3.
#pragma once

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"

namespace dls {

/// Applies y = L x. One matvec == one "local exchange" in CONGEST (each node
/// needs only its neighbors' entries), which is how the distributed solvers
/// charge rounds for it. Forwards to the gather kernel below with a null
/// pool, so both overloads (and LaplacianCsr::apply) produce identical bits.
Vec laplacian_apply(const Graph& g, const Vec& x);

/// Blocked parallel matvec: node-major gather over fixed node blocks, so each
/// block writes only its own y entries and the result is bit-identical for
/// any thread count (see vector_ops.hpp for the determinism rule). Because
/// adjacency lists are appended in edge-id order and IEEE negation is exact,
/// the per-node adjacency fold also reproduces the historical edge-major
/// scatter bit-for-bit — there is one canonical matvec association, shared
/// with LaplacianCsr::apply (linalg/csr.hpp).
Vec laplacian_apply(const Graph& g, const Vec& x, ThreadPool* pool);

/// xᵀ L x = Σ_e w_e (x_u − x_v)² — the energy / L-seminorm squared.
double laplacian_quadratic_form(const Graph& g, const Vec& x);

/// ‖x‖_L = sqrt(xᵀLx).
double laplacian_seminorm(const Graph& g, const Vec& x);

/// Checks that b is in range(L) for a connected graph: |Σ b_i| ≤ tol·‖b‖₂.
bool is_valid_rhs(const Vec& b, double tol = 1e-9);

/// Dense Laplacian matrix (for tiny ground-truth checks only).
std::vector<Vec> laplacian_dense(const Graph& g);

/// Relative error of x against reference x* in the L-seminorm, after aligning
/// the free additive constant: ‖x − x*‖_L / ‖x*‖_L.
double relative_error_in_l_norm(const Graph& g, const Vec& x, const Vec& x_ref);

}  // namespace dls
