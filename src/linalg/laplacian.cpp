#include "linalg/laplacian.hpp"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.hpp"

namespace dls {

Vec laplacian_apply(const Graph& g, const Vec& x) {
  // Route through the gather kernel so serial and pooled calls share one fp
  // association (see the header contract).
  return laplacian_apply(g, x, nullptr);
}

Vec laplacian_apply(const Graph& g, const Vec& x, ThreadPool* pool) {
  DLS_REQUIRE(x.size() == g.num_nodes(), "laplacian_apply: size mismatch");
  const std::size_t n = g.num_nodes();
  Vec y(n, 0.0);
  const std::size_t blocks = n == 0 ? 0 : (n - 1) / kKernelBlock + 1;
  const auto body = [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(n, lo + kKernelBlock);
    for (std::size_t v = lo; v < hi; ++v) {
      double acc = 0.0;
      for (const Adjacency& adj : g.neighbors(static_cast<NodeId>(v))) {
        acc += g.edge(adj.edge).weight * (x[v] - x[adj.neighbor]);
      }
      y[v] = acc;
    }
  };
  if (blocks <= 1 || pool == nullptr) {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  } else {
    pool->parallel_for(blocks, body);
  }
  return y;
}

double laplacian_quadratic_form(const Graph& g, const Vec& x) {
  DLS_REQUIRE(x.size() == g.num_nodes(), "quadratic form: size mismatch");
  double sum = 0.0;
  for (const Edge& e : g.edges()) {
    const double diff = x[e.u] - x[e.v];
    sum += e.weight * diff * diff;
  }
  return sum;
}

double laplacian_seminorm(const Graph& g, const Vec& x) {
  return std::sqrt(std::max(0.0, laplacian_quadratic_form(g, x)));
}

bool is_valid_rhs(const Vec& b, double tol) {
  double sum = 0.0;
  for (double v : b) sum += v;
  return std::abs(sum) <= tol * (norm2(b) + 1.0);
}

std::vector<Vec> laplacian_dense(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<Vec> m(n, Vec(n, 0.0));
  for (const Edge& e : g.edges()) {
    m[e.u][e.u] += e.weight;
    m[e.v][e.v] += e.weight;
    m[e.u][e.v] -= e.weight;
    m[e.v][e.u] -= e.weight;
  }
  return m;
}

double relative_error_in_l_norm(const Graph& g, const Vec& x, const Vec& x_ref) {
  Vec diff = sub(x, x_ref);
  // The additive constant is in L's kernel, so the seminorm already ignores
  // it; no explicit alignment needed.
  const double num = laplacian_seminorm(g, diff);
  const double den = laplacian_seminorm(g, x_ref);
  return den > 0 ? num / den : num;
}

}  // namespace dls
