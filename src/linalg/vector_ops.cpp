#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dls {

double dot(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vec& x, Vec& y) {
  DLS_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& a, double s) {
  for (double& v : a) v *= s;
}

Vec add(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vec sub(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "sub: size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void sub_into(const Vec& a, const Vec& b, Vec& r) {
  DLS_REQUIRE(a.size() == b.size(), "sub_into: size mismatch");
  r.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
}

double axpy_dot(double alpha, const Vec& x, Vec& y) {
  DLS_REQUIRE(x.size() == y.size(), "axpy_dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
    sum += y[i] * y[i];
  }
  return sum;
}

void xpay(const Vec& x, double beta, Vec& y) {
  DLS_REQUIRE(x.size() == y.size(), "xpay: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

void project_mean_zero(Vec& a) {
  if (a.empty()) return;
  double mean = 0.0;
  for (double v : a) mean += v;
  mean /= static_cast<double>(a.size());
  for (double& v : a) v -= mean;
}

double max_abs_diff(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

namespace {

inline std::size_t num_blocks(std::size_t n) {
  return n == 0 ? 0 : (n - 1) / kKernelBlock + 1;
}

/// Runs body(block) for every fixed-size block. A single block (or a null
/// pool) runs inline — there is nothing to fan out and the parallel_for setup
/// cost would dominate.
void for_each_block(std::size_t n, ThreadPool* pool,
                    const std::function<void(std::size_t)>& body) {
  const std::size_t blocks = num_blocks(n);
  if (blocks <= 1 || pool == nullptr) {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
    return;
  }
  pool->parallel_for(blocks, body);
}

/// Blocked reduction skeleton: per-block left-to-right partials, combined in
/// block-index order. The combine is serial regardless of the pool, which is
/// exactly what makes the result thread-count-invariant.
template <typename PerBlock>
double blocked_reduce(std::size_t n, ThreadPool* pool, PerBlock per_block) {
  const std::size_t blocks = num_blocks(n);
  if (blocks <= 1) return blocks == 0 ? 0.0 : per_block(0, n);
  std::vector<double> partials(blocks, 0.0);
  for_each_block(n, pool, [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(n, lo + kKernelBlock);
    partials[b] = per_block(lo, hi - lo);
  });
  double sum = 0.0;
  for (double p : partials) sum += p;  // ordered combine
  return sum;
}

}  // namespace

double blocked_dot_range(const double* a, const double* b, std::size_t n,
                         ThreadPool* pool) {
  return blocked_reduce(n, pool, [&](std::size_t lo, std::size_t len) {
    double sum = 0.0;
    for (std::size_t i = 0; i < len; ++i) sum += a[lo + i] * b[lo + i];
    return sum;
  });
}

double blocked_dot(const Vec& a, const Vec& b, ThreadPool* pool) {
  DLS_REQUIRE(a.size() == b.size(), "blocked_dot: size mismatch");
  return blocked_dot_range(a.data(), b.data(), a.size(), pool);
}

double blocked_sum(const Vec& a, ThreadPool* pool) {
  return blocked_reduce(a.size(), pool, [&](std::size_t lo, std::size_t len) {
    double sum = 0.0;
    for (std::size_t i = 0; i < len; ++i) sum += a[lo + i];
    return sum;
  });
}

double blocked_norm2(const Vec& a, ThreadPool* pool) {
  return std::sqrt(blocked_dot(a, a, pool));
}

void blocked_axpy(double alpha, const Vec& x, Vec& y, ThreadPool* pool) {
  DLS_REQUIRE(x.size() == y.size(), "blocked_axpy: size mismatch");
  for_each_block(x.size(), pool, [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(x.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void blocked_scale(Vec& a, double s, ThreadPool* pool) {
  for_each_block(a.size(), pool, [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(a.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) a[i] *= s;
  });
}

Vec blocked_sub(const Vec& a, const Vec& b, ThreadPool* pool) {
  DLS_REQUIRE(a.size() == b.size(), "blocked_sub: size mismatch");
  Vec r(a.size());
  for_each_block(a.size(), pool, [&](std::size_t blk) {
    const std::size_t lo = blk * kKernelBlock;
    const std::size_t hi = std::min(a.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) r[i] = a[i] - b[i];
  });
  return r;
}

void blocked_sub_into(const Vec& a, const Vec& b, Vec& r, ThreadPool* pool) {
  DLS_REQUIRE(a.size() == b.size(), "blocked_sub_into: size mismatch");
  r.resize(a.size());
  for_each_block(a.size(), pool, [&](std::size_t blk) {
    const std::size_t lo = blk * kKernelBlock;
    const std::size_t hi = std::min(a.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) r[i] = a[i] - b[i];
  });
}

double blocked_axpy_dot(double alpha, const Vec& x, Vec& y, ThreadPool* pool) {
  DLS_REQUIRE(x.size() == y.size(), "blocked_axpy_dot: size mismatch");
  return blocked_reduce(x.size(), pool, [&](std::size_t lo, std::size_t len) {
    double sum = 0.0;
    for (std::size_t i = lo; i < lo + len; ++i) {
      y[i] += alpha * x[i];
      sum += y[i] * y[i];
    }
    return sum;
  });
}

void blocked_xpay(const Vec& x, double beta, Vec& y, ThreadPool* pool) {
  DLS_REQUIRE(x.size() == y.size(), "blocked_xpay: size mismatch");
  for_each_block(x.size(), pool, [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(x.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) y[i] = x[i] + beta * y[i];
  });
}

void project_mean_zero(Vec& a, ThreadPool* pool) {
  if (a.empty()) return;
  const double mean = blocked_sum(a, pool) / static_cast<double>(a.size());
  for_each_block(a.size(), pool, [&](std::size_t b) {
    const std::size_t lo = b * kKernelBlock;
    const std::size_t hi = std::min(a.size(), lo + kKernelBlock);
    for (std::size_t i = lo; i < hi; ++i) a[i] -= mean;
  });
}

}  // namespace dls
