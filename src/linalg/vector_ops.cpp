#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dls {

double dot(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vec& x, Vec& y) {
  DLS_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& a, double s) {
  for (double& v : a) v *= s;
}

Vec add(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vec sub(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "sub: size mismatch");
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

void project_mean_zero(Vec& a) {
  if (a.empty()) return;
  double mean = 0.0;
  for (double v : a) mean += v;
  mean /= static_cast<double>(a.size());
  for (double& v : a) v -= mean;
}

double max_abs_diff(const Vec& a, const Vec& b) {
  DLS_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

}  // namespace dls
