// Round accounting shared by all models.
//
// Algorithms in this library report costs through a RoundLedger so that the
// composition rules of the paper are explicit in code: a simulated step on
// the layered graph Ĝ_ρ charges ρ local rounds (Lemma 16), an NCC step
// charges one global round, and the Laplacian solver charges the measured
// cost of each part-wise-aggregation oracle call (Assumption 27).
//
// Entries optionally carry the PhaseCongestion observed while the phase's
// messages were simulated (see sim/network_metrics.hpp), so a total can be
// decomposed not just into *how many* rounds each phase cost but into *how
// concentrated* its traffic was.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network_metrics.hpp"

namespace dls {

/// One accounted phase: a label plus the rounds it consumed per mode and,
/// when the phase was simulated at message level, its congestion profile.
struct LedgerEntry {
  std::string label;
  std::uint64_t local_rounds = 0;   // CONGEST rounds
  std::uint64_t global_rounds = 0;  // NCC rounds
  PhaseCongestion congestion;       // all-zero when the phase was only charged

  friend bool operator==(const LedgerEntry&, const LedgerEntry&) = default;
};

class RoundLedger {
 public:
  void charge_local(std::uint64_t rounds, const std::string& label);
  void charge_local(std::uint64_t rounds, const std::string& label,
                    const PhaseCongestion& congestion);
  void charge_global(std::uint64_t rounds, const std::string& label);
  void charge_global(std::uint64_t rounds, const std::string& label,
                     const PhaseCongestion& congestion);

  std::uint64_t total_local() const { return local_; }
  std::uint64_t total_global() const { return global_; }
  /// In HYBRID both modes run in lockstep, so wall-clock rounds is the sum of
  /// phases, each phase costing max(local, global); we track phases
  /// sequentially so the simple sum of per-entry maxima is exact.
  std::uint64_t total_hybrid() const;

  /// Max per-(edge,direction)-slot messages over all entries that carried a
  /// congestion profile — where traffic concentrated worst across phases.
  std::size_t peak_congestion() const;
  /// Total messages over all entries that carried a congestion profile.
  std::uint64_t total_messages() const;

  const std::vector<LedgerEntry>& entries() const { return entries_; }
  void clear();

  /// Merge a sub-ledger (e.g. an oracle call) under a prefix label.
  void absorb(const RoundLedger& other, const std::string& prefix);

  /// Exact equality: same entries (labels, rounds, congestion) in the same
  /// order. This is the "bit-identical ledger" relation the deterministic
  /// batch runtime promises across thread counts.
  friend bool operator==(const RoundLedger& a, const RoundLedger& b) {
    return a.local_ == b.local_ && a.global_ == b.global_ &&
           a.entries_ == b.entries_;
  }

 private:
  std::uint64_t local_ = 0;
  std::uint64_t global_ = 0;
  std::vector<LedgerEntry> entries_;
};

}  // namespace dls
