// Round accounting shared by all models.
//
// Algorithms in this library report costs through a RoundLedger so that the
// composition rules of the paper are explicit in code: a simulated step on
// the layered graph Ĝ_ρ charges ρ local rounds (Lemma 16), an NCC step
// charges one global round, and the Laplacian solver charges the measured
// cost of each part-wise-aggregation oracle call (Assumption 27).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dls {

/// One accounted phase: a label plus the rounds it consumed per mode.
struct LedgerEntry {
  std::string label;
  std::uint64_t local_rounds = 0;   // CONGEST rounds
  std::uint64_t global_rounds = 0;  // NCC rounds
};

class RoundLedger {
 public:
  void charge_local(std::uint64_t rounds, const std::string& label);
  void charge_global(std::uint64_t rounds, const std::string& label);

  std::uint64_t total_local() const { return local_; }
  std::uint64_t total_global() const { return global_; }
  /// In HYBRID both modes run in lockstep, so wall-clock rounds is the sum of
  /// phases, each phase costing max(local, global); we track phases
  /// sequentially so the simple sum of per-entry maxima is exact.
  std::uint64_t total_hybrid() const;

  const std::vector<LedgerEntry>& entries() const { return entries_; }
  void clear();

  /// Merge a sub-ledger (e.g. an oracle call) under a prefix label.
  void absorb(const RoundLedger& other, const std::string& prefix);

 private:
  std::uint64_t local_ = 0;
  std::uint64_t global_ = 0;
  std::vector<LedgerEntry> entries_;
};

}  // namespace dls
