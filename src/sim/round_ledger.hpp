// Round accounting shared by all models.
//
// Algorithms in this library report costs through a RoundLedger so that the
// composition rules of the paper are explicit in code: a simulated step on
// the layered graph Ĝ_ρ charges ρ local rounds (Lemma 16), an NCC step
// charges one global round, and the Laplacian solver charges the measured
// cost of each part-wise-aggregation oracle call (Assumption 27).
//
// Entries optionally carry the PhaseCongestion observed while the phase's
// messages were simulated (see sim/network_metrics.hpp), so a total can be
// decomposed not just into *how many* rounds each phase cost but into *how
// concentrated* its traffic was.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network_metrics.hpp"

namespace dls {

/// One accounted phase: a label plus the rounds it consumed per mode and,
/// when the phase was simulated at message level, its congestion profile.
struct LedgerEntry {
  std::string label;
  std::uint64_t local_rounds = 0;   // CONGEST rounds
  std::uint64_t global_rounds = 0;  // NCC rounds
  PhaseCongestion congestion;       // all-zero when the phase was only charged

  friend bool operator==(const LedgerEntry&, const LedgerEntry&) = default;
};

/// What a resilience layer did in response to a fault or numerical anomaly.
/// These ride on the RoundLedger next to the entries so a solve's recovery
/// path is part of its accounted trace: a clean run records none (keeping
/// golden-trace equality untouched), a supervised faulted run records every
/// escalation transition in order.
enum class RecoveryAction : std::uint8_t {
  kRetry,              // PA call re-attempted after a ChaosAbortError
  kRebuild,            // shortcut structure rebuilt before re-attempting
  kDegrade,            // oracle demoted to the spanning-tree baseline
  kCheckpointSave,     // outer-iteration state snapshotted
  kCheckpointRestore,  // outer iteration resumed from the last snapshot
  kWatchdogRestart,    // iteration restarted after a numerical anomaly
  kWatchdogRefine,     // iterative-refinement pass appended to a solve
  kWatchdogRebound,    // Chebyshev eigenbounds re-estimated on divergence
  kAbort,              // recovery budget exhausted; solve degraded
  kCertificateResolve,  // solve certificate rejected; solve re-attempted
};

const char* to_string(RecoveryAction action);

/// One recovery transition. `subject` identifies what recovered (a PA oracle
/// instance id, a solver level, ...), `attempt` numbers the retries of one
/// subject, and `rounds_lost` is the simulated work charged to the failed
/// attempt the action responds to (0 when nothing was wasted).
struct RecoveryEvent {
  RecoveryAction action = RecoveryAction::kRetry;
  std::uint64_t subject = 0;
  std::uint32_t attempt = 0;
  std::uint64_t rounds_lost = 0;
  std::string detail;

  friend bool operator==(const RecoveryEvent&, const RecoveryEvent&) = default;
};

std::string to_string(const RecoveryEvent& event);

class RoundLedger {
 public:
  void charge_local(std::uint64_t rounds, const std::string& label);
  void charge_local(std::uint64_t rounds, const std::string& label,
                    const PhaseCongestion& congestion);
  void charge_global(std::uint64_t rounds, const std::string& label);
  void charge_global(std::uint64_t rounds, const std::string& label,
                     const PhaseCongestion& congestion);

  std::uint64_t total_local() const { return local_; }
  std::uint64_t total_global() const { return global_; }
  /// In HYBRID both modes run in lockstep, so wall-clock rounds is the sum of
  /// phases, each phase costing max(local, global); we track phases
  /// sequentially so the simple sum of per-entry maxima is exact.
  std::uint64_t total_hybrid() const;

  /// Max per-(edge,direction)-slot messages over all entries that carried a
  /// congestion profile — where traffic concentrated worst across phases.
  std::size_t peak_congestion() const;
  /// Total messages over all entries that carried a congestion profile.
  std::uint64_t total_messages() const;

  const std::vector<LedgerEntry>& entries() const { return entries_; }
  void clear();

  /// Appends a typed recovery record (see RecoveryEvent). Recovery events do
  /// not move round totals — the rounds a recovery consumed are charged
  /// through charge_local/charge_global as usual — they record *why*.
  void record_recovery(RecoveryEvent event);
  const std::vector<RecoveryEvent>& recovery_events() const {
    return recovery_events_;
  }
  /// Number of recorded events of one action kind.
  std::size_t recovery_count(RecoveryAction action) const;

  /// Merge a sub-ledger (e.g. an oracle call) under a prefix label.
  void absorb(const RoundLedger& other, const std::string& prefix);

  /// Exact equality: same entries (labels, rounds, congestion) and the same
  /// recovery trace in the same order. This is the "bit-identical ledger"
  /// relation the deterministic batch runtime promises across thread counts;
  /// clean runs record no recovery events, so the pinned golden traces are
  /// unaffected by the resilience layer.
  friend bool operator==(const RoundLedger& a, const RoundLedger& b) {
    return a.local_ == b.local_ && a.global_ == b.global_ &&
           a.entries_ == b.entries_ && a.recovery_events_ == b.recovery_events_;
  }

 private:
  std::uint64_t local_ = 0;
  std::uint64_t global_ = 0;
  std::vector<LedgerEntry> entries_;
  std::vector<RecoveryEvent> recovery_events_;
};

}  // namespace dls
