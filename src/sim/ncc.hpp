// The Node-Capacitated Clique (NCC) model [2] and the congested part-wise
// aggregation primitive on top of it (Lemma 26 of the paper).
//
// Per round every node may send O(log n) messages of O(log n) bits each to
// arbitrary nodes. If more than O(log n) messages target one node, the node
// receives an arbitrary subset and the rest are dropped — our simulator
// drops deterministically (lowest-priority senders lose) and counts drops,
// and the aggregation protocol retransmits until delivered, exactly the
// mechanism the [2] primitives rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/aggregation_scheduler.hpp"
#include "util/random.hpp"

namespace dls {

struct NccMessage {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint64_t tag = 0;
  double payload = 0.0;
};

/// Raw synchronous NCC message layer with capacity enforcement.
class NccNetwork {
 public:
  /// capacity == 0 selects the model default ⌈log₂ n⌉ (min 1).
  explicit NccNetwork(std::size_t num_nodes, std::size_t capacity = 0);

  /// Queue a message for this round. Throws if the sender exceeds its
  /// per-round send capacity (an algorithm bug, not an adversarial drop).
  void send(const NccMessage& message);

  /// Deliver this round's messages. Receivers over capacity keep `capacity`
  /// messages (lowest sender ids win — a fixed adversarial rule) and the rest
  /// are dropped and counted. Advances the round counter.
  void step();

  const std::vector<NccMessage>& inbox(NodeId v) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::uint64_t rounds() const { return round_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  std::size_t num_nodes_;
  std::size_t capacity_;
  std::uint64_t round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::vector<std::size_t> sent_this_round_;
  std::vector<NccMessage> pending_;
  std::vector<std::vector<NccMessage>> inboxes_;
};

/// One part of a congested part-wise aggregation instance in NCC: member
/// node ids (globally known, as NCC addressing requires) and their inputs.
struct NccPart {
  std::vector<NodeId> members;
  std::vector<double> values;  // aligned with members
};

struct NccAggregationOutcome {
  std::vector<double> results;  // per part; every member learns this value
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t drops = 0;
};

/// Lemma 26: solves a ρ-congested part-wise aggregation in O(ρ + log n) NCC
/// rounds. Each part aggregates over a balanced `capacity`-ary virtual tree
/// of its members; all parts run concurrently, senders pace themselves to
/// the send capacity, and receiver-side drops are retransmitted.
/// Precondition (validated): each node appears in a part at most once.
NccAggregationOutcome ncc_partwise_aggregate(std::size_t num_nodes,
                                             const std::vector<NccPart>& parts,
                                             const AggregationMonoid& monoid,
                                             Rng& rng,
                                             std::size_t capacity = 0);

/// The congestion ρ of an NCC part collection: max #parts containing a node.
std::size_t ncc_congestion(std::size_t num_nodes, const std::vector<NccPart>& parts);

}  // namespace dls
