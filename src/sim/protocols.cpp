#include "sim/protocols.hpp"

#include <algorithm>

namespace dls {

DistributedBfsResult distributed_bfs(const Graph& g, NodeId root) {
  DLS_REQUIRE(root < g.num_nodes(), "root out of range");
  DistributedBfsResult result;
  result.dist.assign(g.num_nodes(), static_cast<std::uint32_t>(-1));
  result.parent.assign(g.num_nodes(), kInvalidNode);
  SyncNetwork net(g);
  result.dist[root] = 0;
  // frontier nodes announce their distance to all neighbors each round.
  std::vector<NodeId> frontier{root};
  while (!frontier.empty()) {
    for (NodeId v : frontier) {
      for (const Adjacency& a : g.neighbors(v)) {
        net.send({v, a.neighbor, a.edge, /*tag=*/0,
                  static_cast<double>(result.dist[v]), 1});
      }
    }
    net.step();
    std::vector<NodeId> next;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (result.dist[v] != static_cast<std::uint32_t>(-1)) continue;
      for (const CongestMessage& msg : net.inbox(v)) {
        const std::uint32_t d = static_cast<std::uint32_t>(msg.payload) + 1;
        if (d < result.dist[v]) {
          result.dist[v] = d;
          result.parent[v] = msg.from;
        }
      }
      if (result.dist[v] != static_cast<std::uint32_t>(-1)) next.push_back(v);
    }
    frontier = std::move(next);
  }
  result.rounds = net.rounds();
  result.messages = net.messages_sent();
  return result;
}

ConvergecastResult distributed_convergecast_sum(const Graph& g, NodeId root,
                                                std::span<const double> values) {
  DLS_REQUIRE(values.size() == g.num_nodes(), "values size mismatch");
  // Tree setup (the BFS itself is accounted in distributed_bfs; here we
  // charge only the convergecast as the primitive under test).
  const DistributedBfsResult bfs = distributed_bfs(g, root);
  for (std::uint32_t d : bfs.dist) {
    DLS_REQUIRE(d != static_cast<std::uint32_t>(-1),
                "convergecast requires a connected graph");
  }
  std::vector<std::uint32_t> pending_children(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bfs.parent[v] != kInvalidNode) ++pending_children[bfs.parent[v]];
  }
  std::vector<double> acc(values.begin(), values.end());
  std::vector<char> sent(g.num_nodes(), 0);

  SyncNetwork net(g);
  ConvergecastResult result;
  std::size_t reported = 0;
  const std::size_t to_report = g.num_nodes() - 1;
  while (reported < to_report) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == root || sent[v] || pending_children[v] > 0) continue;
      // Find the edge to the parent.
      for (const Adjacency& a : g.neighbors(v)) {
        if (a.neighbor == bfs.parent[v]) {
          net.send({v, a.neighbor, a.edge, 0, acc[v], 1});
          break;
        }
      }
      sent[v] = 1;
    }
    net.step();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const CongestMessage& msg : net.inbox(v)) {
        acc[v] += msg.payload;
        DLS_ASSERT(pending_children[v] > 0, "unexpected convergecast message");
        --pending_children[v];
        ++reported;
      }
    }
    DLS_ASSERT(net.rounds() < 4 * g.num_nodes() + 8, "convergecast stalled");
  }
  result.root_value = acc[root];
  result.rounds = net.rounds();
  result.messages = net.messages_sent();
  return result;
}

LeaderElectionResult distributed_leader_election(const Graph& g) {
  DLS_REQUIRE(g.num_nodes() >= 1, "empty graph");
  SyncNetwork net(g);
  std::vector<NodeId> best(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) best[v] = v;
  // Flood the minimum id; a node re-announces only when its minimum
  // improves. Quiescence (a round with no messages) ends the protocol —
  // detectable here because the simulator is global; a real network would
  // run an extra termination-detection echo, which adds O(D) rounds and is
  // noted by callers.
  std::vector<char> dirty(g.num_nodes(), 1);
  LeaderElectionResult result;
  for (;;) {
    bool any = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!dirty[v]) continue;
      for (const Adjacency& a : g.neighbors(v)) {
        net.send({v, a.neighbor, a.edge, 0, static_cast<double>(best[v]), 1});
      }
      dirty[v] = 0;
      any = true;
    }
    if (!any) break;
    net.step();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const CongestMessage& msg : net.inbox(v)) {
        const NodeId candidate = static_cast<NodeId>(msg.payload);
        if (candidate < best[v]) {
          best[v] = candidate;
          dirty[v] = 1;
        }
      }
    }
    DLS_ASSERT(net.rounds() < 4 * g.num_nodes() + 8, "election stalled");
  }
  result.leader = best[0];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DLS_ASSERT(best[v] == result.leader, "election did not converge");
  }
  result.rounds = net.rounds();
  result.messages = net.messages_sent();
  return result;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<char>& in_mis) {
  if (in_mis.size() != g.num_nodes()) return false;
  for (const Edge& e : g.edges()) {
    if (in_mis[e.u] && in_mis[e.v]) return false;  // not independent
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_mis[v]) continue;
    bool dominated = false;
    for (const Adjacency& a : g.neighbors(v)) dominated |= in_mis[a.neighbor];
    if (!dominated) return false;  // not maximal
  }
  return true;
}

MisResult distributed_mis_luby(const Graph& g, Rng& rng) {
  MisResult result;
  const std::size_t n = g.num_nodes();
  result.in_mis.assign(n, 0);
  SyncNetwork net(g);
  enum class State : char { kUndecided, kIn, kOut };
  std::vector<State> state(n, State::kUndecided);
  std::vector<double> priority(n, 0.0);
  std::size_t undecided = n;
  while (undecided > 0) {
    ++result.phases;
    DLS_ASSERT(result.phases <= 64 * 64, "Luby failed to converge");
    // Round 1: undecided nodes exchange fresh random priorities.
    for (NodeId v = 0; v < n; ++v) {
      if (state[v] != State::kUndecided) continue;
      priority[v] = rng.next_double();
    }
    for (NodeId v = 0; v < n; ++v) {
      if (state[v] != State::kUndecided) continue;
      for (const Adjacency& a : g.neighbors(v)) {
        net.send({v, a.neighbor, a.edge, 0, priority[v], 1});
      }
    }
    net.step();
    std::vector<char> joins(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (state[v] != State::kUndecided) continue;
      bool local_max = true;
      for (const CongestMessage& msg : net.inbox(v)) {
        if (state[msg.from] != State::kUndecided) continue;
        // Strict maximum with id tiebreak (priorities are continuous, but
        // be safe under duplicated doubles).
        if (msg.payload > priority[v] ||
            (msg.payload == priority[v] && msg.from < v)) {
          local_max = false;
          break;
        }
      }
      joins[v] = local_max;
    }
    // Round 2: joiners announce; neighbors drop out.
    for (NodeId v = 0; v < n; ++v) {
      if (!joins[v]) continue;
      state[v] = State::kIn;
      result.in_mis[v] = 1;
      --undecided;
      for (const Adjacency& a : g.neighbors(v)) {
        net.send({v, a.neighbor, a.edge, 1, 1.0, 1});
      }
    }
    net.step();
    for (NodeId v = 0; v < n; ++v) {
      if (state[v] != State::kUndecided) continue;
      if (!net.inbox(v).empty()) {
        state[v] = State::kOut;
        --undecided;
      }
    }
  }
  result.rounds = net.rounds();
  result.messages = net.messages_sent();
  DLS_ASSERT(is_maximal_independent_set(g, result.in_mis),
             "Luby postcondition failed");
  return result;
}

ReliableSendResult reliable_send(FaultyNetwork& net, NodeId from, NodeId to,
                                 EdgeId edge, std::uint64_t seq, double payload,
                                 const ReliableSendOptions& options) {
  DLS_REQUIRE(edge < net.graph().num_edges(), "unknown edge");
  DLS_REQUIRE(net.graph().edge(edge).other(from) == to,
              "endpoints must match the edge");
  DLS_REQUIRE(options.initial_backoff >= 1 &&
                  options.max_backoff >= options.initial_backoff,
              "backoff must be at least 1 and capped no lower than its start");
  const std::uint64_t data_tag = seq << 1;
  const std::uint64_t ack_tag = (seq << 1) | 1;
  const std::uint64_t start_round = net.rounds();

  ReliableSendResult result;
  std::uint32_t backoff = options.initial_backoff;
  // A send at round r has had a full round trip's chance by r + 2; waiting
  // `backoff` rounds beyond that before retransmitting makes the clean-path
  // cost exactly one DATA + one ACK in 2 rounds even at initial_backoff = 1.
  std::uint64_t next_data_round = start_round;
  std::uint32_t attempt = 0;
  bool ack_pending = false;
  for (;;) {
    const std::uint64_t now = net.rounds();
    if (!result.acked && now >= next_data_round) {
      const CongestMessage data{from, to, edge, data_tag, payload, 1};
      if (options.integrity) {
        net.send(with_integrity(data));
        ++result.checksum_words;
      } else {
        net.send(data);
      }
      ++result.data_sends;
      ++attempt;
      // Jitter subtracts from the wait (never below 1 + backoff/2 rounds):
      // concurrent senders that lost DATA in the same round stop
      // retransmitting in lockstep, so a (round, edge)-keyed drop plan
      // cannot re-collide every retry of every sender at once.
      const std::uint32_t jitter = reliable_send_jitter(
          options.jitter_seed, from, to, edge, seq, attempt, backoff);
      next_data_round = now + 1 + backoff - jitter;
      backoff = std::min<std::uint32_t>(backoff * 2, options.max_backoff);
    }
    if (ack_pending) {
      net.send({to, from, edge, ack_tag, 0.0, 1});
      ++result.ack_sends;
      ack_pending = false;
    }
    net.step();
    result.rounds = net.rounds() - start_round;
    for (const CongestMessage& m : net.inbox(to)) {
      if (m.tag != data_tag || m.from != from) continue;
      if (result.delivered) {
        ++result.duplicates_suppressed;
      } else {
        result.delivered = true;
      }
      ack_pending = true;  // re-ack every copy: the previous ack may be lost
    }
    for (const CongestMessage& m : net.inbox(from)) {
      if (m.tag == ack_tag && m.from == to) result.acked = true;
    }
    if (result.acked) {
      result.ledger.charge_local(result.rounds, "reliable-send");
      return result;
    }
    if (options.timeout_rounds != 0 && result.rounds >= options.timeout_rounds) {
      result.aborted = true;
      result.ledger.charge_local(result.rounds, "reliable-send-abort");
      return result;
    }
    // Hard internal budget (the plan's round_limit when one is attached):
    // a permanently failing link with no timeout fails loudly and typed,
    // carrying the rounds burned so far as a partial ledger — the same
    // contract as the scheduler's phase abort.
    const std::uint64_t hard_limit = net.plan() != nullptr
                                         ? net.plan()->config().round_limit
                                         : (std::uint64_t{1} << 20);
    if (result.rounds >= hard_limit) {
      result.ledger.charge_local(result.rounds, "reliable-send-abort");
      throw ChaosAbortError(
          "reliable_send exceeded its round budget without an ack — set "
          "timeout_rounds or give the FaultPlan a finite horizon",
          result.ledger);
    }
  }
}

std::uint32_t reliable_send_jitter(std::uint64_t jitter_seed, NodeId from,
                                   NodeId to, EdgeId edge, std::uint64_t seq,
                                   std::uint32_t attempt,
                                   std::uint32_t backoff) {
  const std::uint32_t span = backoff / 2;
  if (span == 0) return 0;
  // Same coordinate-hash idiom as FaultPlan::mix: fold each coordinate in
  // under its own odd multiplier, splitmix64-finalize. Pure, so a replayed
  // seed replays every retry schedule exactly.
  std::uint64_t x = jitter_seed;
  x ^= (static_cast<std::uint64_t>(from) + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<std::uint64_t>(to) + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= (static_cast<std::uint64_t>(edge) + 1) * 0x94d049bb133111ebULL;
  x ^= (seq + 1) * 0xd6e8feb86659fd93ULL;
  x ^= (static_cast<std::uint64_t>(attempt) + 1) * 0xa0761d6478bd642fULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % (span + 1));
}

}  // namespace dls
