#include "sim/aggregation_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>

#include "graph/algorithms.hpp"

namespace dls {

AggregationMonoid AggregationMonoid::sum() {
  return {[](double a, double b) { return a + b; }, 0.0};
}
AggregationMonoid AggregationMonoid::min() {
  return {[](double a, double b) { return std::min(a, b); },
          std::numeric_limits<double>::infinity()};
}
AggregationMonoid AggregationMonoid::max() {
  return {[](double a, double b) { return std::max(a, b); },
          -std::numeric_limits<double>::infinity()};
}

namespace {

/// Rooted view of one aggregation tree, with local node indexing.
struct RootedTree {
  std::vector<NodeId> nodes;                    // local -> host node
  std::unordered_map<NodeId, std::uint32_t> local;  // host -> local
  std::vector<std::uint32_t> parent;            // local parent index (root: self)
  std::vector<EdgeId> parent_edge;              // host edge towards parent
  std::vector<std::uint32_t> num_children;
  std::vector<std::vector<std::uint32_t>> children;
  std::vector<std::uint32_t> depth;
  std::uint32_t root_local = 0;
};

RootedTree build_rooted_tree(const Graph& g, const AggregationTree& tree) {
  RootedTree rt;
  // Collect tree nodes from edges plus root.
  auto touch = [&](NodeId v) {
    if (rt.local.find(v) == rt.local.end()) {
      rt.local.emplace(v, static_cast<std::uint32_t>(rt.nodes.size()));
      rt.nodes.push_back(v);
    }
  };
  DLS_REQUIRE(tree.root != kInvalidNode, "aggregation tree needs a root");
  touch(tree.root);
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, EdgeId>>> adj;
  for (EdgeId e : tree.edges) {
    const Edge& edge = g.edge(e);
    touch(edge.u);
    touch(edge.v);
    adj[edge.u].push_back({edge.v, e});
    adj[edge.v].push_back({edge.u, e});
  }
  const std::size_t k = rt.nodes.size();
  DLS_REQUIRE(tree.edges.size() + 1 == k,
              "aggregation tree edges must form a tree");
  rt.parent.assign(k, 0);
  rt.parent_edge.assign(k, kInvalidEdge);
  rt.num_children.assign(k, 0);
  rt.children.assign(k, {});
  rt.depth.assign(k, 0);
  rt.root_local = rt.local.at(tree.root);
  rt.parent[rt.root_local] = rt.root_local;

  // BFS from root to orient.
  std::vector<char> seen(k, 0);
  std::deque<std::uint32_t> queue{rt.root_local};
  seen[rt.root_local] = 1;
  std::size_t visited = 0;
  while (!queue.empty()) {
    const std::uint32_t x = queue.front();
    queue.pop_front();
    ++visited;
    for (const auto& [nbr, e] : adj[rt.nodes[x]]) {
      const std::uint32_t y = rt.local.at(nbr);
      if (seen[y]) continue;
      seen[y] = 1;
      rt.parent[y] = x;
      rt.parent_edge[y] = e;
      rt.depth[y] = rt.depth[x] + 1;
      ++rt.num_children[x];
      rt.children[x].push_back(y);
      queue.push_back(y);
    }
  }
  DLS_REQUIRE(visited == k, "aggregation tree is disconnected");
  for (const auto& [v, value] : tree.inputs) {
    (void)value;
    DLS_REQUIRE(rt.local.find(v) != rt.local.end(),
                "aggregation input node not on its tree");
  }
  return rt;
}

/// A pending message of tree `tree` over directed slot (edge, to-node).
struct PendingSend {
  std::uint32_t tree = 0;
  std::uint32_t from_local = 0;  // sender's local index in its tree
  std::uint64_t ready_round = 0;
  std::uint64_t priority = 0;    // for kRandomPriority
};

std::size_t directed_slot(const Graph& g, EdgeId e, NodeId to) {
  const Edge& edge = g.edge(e);
  return 2 * static_cast<std::size_t>(e) + (to == edge.v ? 1 : 0);
}

bool better(const PendingSend& a, const PendingSend& b, SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRandomPriority:
      return std::tie(a.priority, a.tree) < std::tie(b.priority, b.tree);
    case SchedulingPolicy::kFifo:
      return std::tie(a.ready_round, a.tree) < std::tie(b.ready_round, b.tree);
    case SchedulingPolicy::kPartOrdered:
      return a.tree < b.tree;
  }
  return a.tree < b.tree;
}

}  // namespace

std::vector<double> sequential_aggregates(const std::vector<AggregationTree>& trees,
                                          const AggregationMonoid& monoid) {
  std::vector<double> results;
  results.reserve(trees.size());
  for (const AggregationTree& tree : trees) {
    double acc = monoid.identity;
    for (const auto& [node, value] : tree.inputs) {
      (void)node;
      acc = monoid.op(acc, value);
    }
    results.push_back(acc);
  }
  return results;
}

AggregationOutcome run_tree_aggregations(const Graph& g,
                                         const std::vector<AggregationTree>& trees,
                                         const AggregationMonoid& monoid,
                                         Rng& rng, SchedulingPolicy policy) {
  AggregationOutcome outcome;
  const std::size_t t_count = trees.size();
  outcome.results.assign(t_count, monoid.identity);
  if (t_count == 0) return outcome;

  std::vector<RootedTree> rooted;
  rooted.reserve(t_count);
  for (const AggregationTree& tree : trees) {
    rooted.push_back(build_rooted_tree(g, tree));
  }

  // Edge load statistics (undirected): how many trees use each edge.
  {
    std::unordered_map<EdgeId, std::size_t> load;
    for (const AggregationTree& tree : trees) {
      for (EdgeId e : tree.edges) ++load[e];
    }
    for (const auto& [e, l] : load) {
      (void)e;
      outcome.max_edge_load = std::max(outcome.max_edge_load, l);
    }
    for (const RootedTree& rt : rooted) {
      for (std::uint32_t d : rt.depth) {
        outcome.max_tree_depth = std::max(outcome.max_tree_depth, d);
      }
    }
  }

  // Per-tree random priorities for the random-delay policy.
  std::vector<std::uint64_t> tree_priority(t_count);
  for (auto& p : tree_priority) p = rng();

  // --- Phase 1: convergecast ---------------------------------------------
  // value[t][x]: accumulated value at local node x of tree t.
  std::vector<std::vector<double>> value(t_count);
  std::vector<std::vector<std::uint32_t>> waiting(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    value[t].assign(rooted[t].nodes.size(), monoid.identity);
    waiting[t] = rooted[t].num_children;
    for (const auto& [node, v] : trees[t].inputs) {
      const std::uint32_t x = rooted[t].local.at(node);
      value[t][x] = monoid.op(value[t][x], v);
    }
  }

  // Pending sends keyed by directed slot.
  std::map<std::size_t, std::vector<PendingSend>> queues;
  auto enqueue_upward = [&](std::uint32_t t, std::uint32_t x,
                            std::uint64_t round) {
    const RootedTree& rt = rooted[t];
    if (x == rt.root_local) return;
    const NodeId to = rt.nodes[rt.parent[x]];
    const std::size_t slot = directed_slot(g, rt.parent_edge[x], to);
    queues[slot].push_back({t, x, round, tree_priority[t]});
  };

  std::size_t roots_done = 0;
  for (std::size_t t = 0; t < t_count; ++t) {
    const RootedTree& rt = rooted[t];
    for (std::uint32_t x = 0; x < rt.nodes.size(); ++x) {
      if (waiting[t][x] == 0) {
        if (x == rt.root_local) {
          ++roots_done;  // single-node tree
        } else {
          enqueue_upward(static_cast<std::uint32_t>(t), x, 0);
        }
      }
    }
  }

  std::uint64_t round = 0;
  while (roots_done < t_count) {
    ++round;
    DLS_ASSERT(round < 64ull * 1024 * 1024, "convergecast failed to terminate");
    // Deliver one message per directed slot; collect deliveries first so all
    // sends within a round are simultaneous.
    struct Delivery {
      std::uint32_t tree;
      std::uint32_t from_local;
    };
    std::vector<Delivery> deliveries;
    for (auto it = queues.begin(); it != queues.end();) {
      auto& q = it->second;
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < q.size(); ++i) {
        if (better(q[i], q[best_idx], policy)) best_idx = i;
      }
      deliveries.push_back({q[best_idx].tree, q[best_idx].from_local});
      ++outcome.messages;
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_idx));
      it = q.empty() ? queues.erase(it) : std::next(it);
    }
    for (const Delivery& d : deliveries) {
      const RootedTree& rt = rooted[d.tree];
      const std::uint32_t p = rt.parent[d.from_local];
      value[d.tree][p] = monoid.op(value[d.tree][p], value[d.tree][d.from_local]);
      DLS_ASSERT(waiting[d.tree][p] > 0, "parent received unexpected message");
      if (--waiting[d.tree][p] == 0) {
        if (p == rt.root_local) {
          ++roots_done;
        } else {
          enqueue_upward(d.tree, p, round);
        }
      }
    }
  }
  outcome.convergecast_rounds = round;
  for (std::size_t t = 0; t < t_count; ++t) {
    outcome.results[t] = value[t][rooted[t].root_local];
  }

  // --- Phase 2: broadcast --------------------------------------------------
  // Root sends the aggregate down; a node forwards to each child, one child
  // per round per (edge, direction) slot shared across trees.
  queues.clear();
  round = 0;
  std::vector<std::vector<char>> informed(t_count);
  std::size_t to_inform = 0;
  std::size_t informed_count = 0;
  auto enqueue_downward = [&](std::uint32_t t, std::uint32_t parent_local,
                              std::uint64_t r) {
    const RootedTree& rt = rooted[t];
    for (std::uint32_t x : rt.children[parent_local]) {
      const std::size_t slot = directed_slot(g, rt.parent_edge[x], rt.nodes[x]);
      queues[slot].push_back({t, x, r, tree_priority[t]});
    }
  };
  for (std::size_t t = 0; t < t_count; ++t) {
    informed[t].assign(rooted[t].nodes.size(), 0);
    informed[t][rooted[t].root_local] = 1;
    to_inform += rooted[t].nodes.size();
    informed_count += 1;
    enqueue_downward(static_cast<std::uint32_t>(t), rooted[t].root_local, 0);
  }
  while (informed_count < to_inform) {
    ++round;
    DLS_ASSERT(round < 64ull * 1024 * 1024, "broadcast failed to terminate");
    struct Delivery {
      std::uint32_t tree;
      std::uint32_t node_local;
    };
    std::vector<Delivery> deliveries;
    for (auto it = queues.begin(); it != queues.end();) {
      auto& q = it->second;
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < q.size(); ++i) {
        if (better(q[i], q[best_idx], policy)) best_idx = i;
      }
      deliveries.push_back({q[best_idx].tree, q[best_idx].from_local});
      ++outcome.messages;
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_idx));
      it = q.empty() ? queues.erase(it) : std::next(it);
    }
    for (const Delivery& d : deliveries) {
      if (!informed[d.tree][d.node_local]) {
        informed[d.tree][d.node_local] = 1;
        ++informed_count;
        enqueue_downward(d.tree, d.node_local, round);
      }
    }
  }
  outcome.broadcast_rounds = round;
  outcome.total_rounds = outcome.convergecast_rounds + outcome.broadcast_rounds;
  return outcome;
}

}  // namespace dls
