#include "sim/aggregation_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injection.hpp"

namespace dls {

AggregationMonoid AggregationMonoid::sum() {
  return {[](double a, double b) { return a + b; }, 0.0};
}
AggregationMonoid AggregationMonoid::min() {
  return {[](double a, double b) { return std::min(a, b); },
          std::numeric_limits<double>::infinity()};
}
AggregationMonoid AggregationMonoid::max() {
  return {[](double a, double b) { return std::max(a, b); },
          -std::numeric_limits<double>::infinity()};
}

namespace {

/// Rooted view of one aggregation tree, with local node indexing. Children
/// are stored as a flat CSR slice in BFS discovery order.
struct RootedTree {
  std::vector<NodeId> nodes;                    // local -> host node
  std::vector<std::uint32_t> parent;            // local parent index (root: self)
  std::vector<EdgeId> parent_edge;              // host edge towards parent
  std::vector<std::uint32_t> num_children;
  std::vector<std::uint32_t> child_offset;      // size k+1
  std::vector<std::uint32_t> child_list;        // size k-1
  std::vector<std::uint32_t> depth;
  std::vector<std::pair<NodeId, std::uint32_t>> local_index;  // sorted by host
  std::uint32_t root_local = 0;

  std::uint32_t local_at(NodeId v) const {
    const auto it = std::lower_bound(
        local_index.begin(), local_index.end(), v,
        [](const std::pair<NodeId, std::uint32_t>& p, NodeId w) {
          return p.first < w;
        });
    DLS_ASSERT(it != local_index.end() && it->first == v,
               "node not on aggregation tree");
    return it->second;
  }
};

/// Reusable buffers for rooting trees: epoch-stamped host→local mapping and
/// a CSR adjacency over the tree's edges. One instance serves every tree of
/// every call (thread-local below), so rooting never allocates hash maps.
struct TreeBuildScratch {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> node_epoch;  // host node stamped this epoch?
  std::vector<std::uint32_t> local_of;    // valid iff stamped
  std::vector<std::uint32_t> deg;
  std::vector<std::uint32_t> offset;      // CSR offsets, size k+1
  std::vector<std::uint32_t> cursor;
  std::vector<std::pair<std::uint32_t, EdgeId>> csr;  // (local nbr, host edge)
  std::vector<std::uint32_t> order;       // BFS dequeue order (local ids)
  std::vector<char> seen;

  void ensure_nodes(std::size_t n) {
    if (node_epoch.size() < n) {
      node_epoch.resize(n, 0);
      local_of.resize(n, 0);
    }
  }
};

TreeBuildScratch& tree_scratch() {
  thread_local TreeBuildScratch scratch;
  return scratch;
}

RootedTree build_rooted_tree(const Graph& g, const AggregationTree& tree,
                             TreeBuildScratch& sc) {
  RootedTree rt;
  sc.ensure_nodes(g.num_nodes());
  ++sc.epoch;
  // Collect tree nodes from edges plus root; local ids in first-touch order
  // (root first, then edge endpoints in edge order).
  auto touch = [&](NodeId v) {
    if (sc.node_epoch[v] != sc.epoch) {
      sc.node_epoch[v] = sc.epoch;
      sc.local_of[v] = static_cast<std::uint32_t>(rt.nodes.size());
      rt.nodes.push_back(v);
    }
  };
  DLS_REQUIRE(tree.root != kInvalidNode, "aggregation tree needs a root");
  touch(tree.root);
  for (EdgeId e : tree.edges) {
    const Edge& edge = g.edge(e);
    touch(edge.u);
    touch(edge.v);
  }
  const std::size_t k = rt.nodes.size();
  DLS_REQUIRE(tree.edges.size() + 1 == k,
              "aggregation tree edges must form a tree");

  // CSR adjacency over local ids, per-node neighbor order = edge order.
  sc.deg.assign(k, 0);
  for (EdgeId e : tree.edges) {
    const Edge& edge = g.edge(e);
    ++sc.deg[sc.local_of[edge.u]];
    ++sc.deg[sc.local_of[edge.v]];
  }
  sc.offset.assign(k + 1, 0);
  for (std::size_t x = 0; x < k; ++x) sc.offset[x + 1] = sc.offset[x] + sc.deg[x];
  sc.cursor.assign(sc.offset.begin(), sc.offset.end() - 1);
  sc.csr.resize(tree.edges.size() * 2);
  for (EdgeId e : tree.edges) {
    const Edge& edge = g.edge(e);
    const std::uint32_t lu = sc.local_of[edge.u];
    const std::uint32_t lv = sc.local_of[edge.v];
    sc.csr[sc.cursor[lu]++] = {lv, e};
    sc.csr[sc.cursor[lv]++] = {lu, e};
  }

  rt.parent.assign(k, 0);
  rt.parent_edge.assign(k, kInvalidEdge);
  rt.num_children.assign(k, 0);
  rt.depth.assign(k, 0);
  rt.root_local = sc.local_of[tree.root];
  rt.parent[rt.root_local] = rt.root_local;

  // BFS from root to orient.
  sc.seen.assign(k, 0);
  sc.order.clear();
  sc.order.push_back(rt.root_local);
  sc.seen[rt.root_local] = 1;
  std::size_t head = 0;
  while (head < sc.order.size()) {
    const std::uint32_t x = sc.order[head++];
    for (std::uint32_t i = sc.offset[x]; i < sc.offset[x + 1]; ++i) {
      const auto [y, e] = sc.csr[i];
      if (sc.seen[y]) continue;
      sc.seen[y] = 1;
      rt.parent[y] = x;
      rt.parent_edge[y] = e;
      rt.depth[y] = rt.depth[x] + 1;
      ++rt.num_children[x];
      sc.order.push_back(y);
    }
  }
  DLS_REQUIRE(sc.order.size() == k, "aggregation tree is disconnected");

  // Flat children lists in discovery order (== enqueue order above).
  rt.child_offset.assign(k + 1, 0);
  for (std::size_t x = 0; x < k; ++x) {
    rt.child_offset[x + 1] = rt.child_offset[x] + rt.num_children[x];
  }
  rt.child_list.resize(k - 1);
  sc.cursor.assign(rt.child_offset.begin(), rt.child_offset.end() - 1);
  for (std::size_t i = 1; i < sc.order.size(); ++i) {
    const std::uint32_t y = sc.order[i];
    rt.child_list[sc.cursor[rt.parent[y]]++] = y;
  }

  rt.local_index.reserve(k);
  for (std::uint32_t x = 0; x < k; ++x) rt.local_index.push_back({rt.nodes[x], x});
  std::sort(rt.local_index.begin(), rt.local_index.end());
  for (const auto& [v, value] : tree.inputs) {
    (void)value;
    const auto it = std::lower_bound(
        rt.local_index.begin(), rt.local_index.end(),
        std::make_pair(v, std::uint32_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    DLS_REQUIRE(it != rt.local_index.end() && it->first == v,
                "aggregation input node not on its tree");
  }
  return rt;
}

/// A pending message of tree `tree` over directed slot (edge, to-node).
struct PendingSend {
  std::uint32_t tree = 0;
  std::uint32_t from_local = 0;  // sender's local index in its tree
  std::uint64_t ready_round = 0;
  std::uint64_t priority = 0;    // for kRandomPriority
};

std::size_t directed_slot(const Graph& g, EdgeId e, NodeId to) {
  const Edge& edge = g.edge(e);
  return 2 * static_cast<std::size_t>(e) + (to == edge.v ? 1 : 0);
}

bool better(const PendingSend& a, const PendingSend& b, SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRandomPriority:
      return std::tie(a.priority, a.tree) < std::tie(b.priority, b.tree);
    case SchedulingPolicy::kFifo:
      return std::tie(a.ready_round, a.tree) < std::tie(b.ready_round, b.tree);
    case SchedulingPolicy::kPartOrdered:
      return a.tree < b.tree;
  }
  return a.tree < b.tree;
}

/// Flat per-slot pending queues with an explicit active-slot worklist.
/// Rounds iterate non-empty slots in ascending slot order — exactly the
/// iteration order of the std::map this replaces — and only touched queues
/// are ever cleared, so a phase reset is O(touched), not O(#slots).
class SlotQueueSet {
 public:
  void reset(std::size_t num_slots) {
    if (queues_.size() < num_slots) {
      queues_.resize(num_slots);
      queued_.resize(num_slots, 0);
    }
    for (std::size_t s : active_) {
      queues_[s].clear();
      queued_[s] = 0;
    }
    for (std::size_t s : newly_) {
      queues_[s].clear();
      queued_[s] = 0;
    }
    active_.clear();
    newly_.clear();
  }

  void push(std::size_t slot, const PendingSend& send) {
    DLS_ASSERT(slot < queues_.size(), "slot out of range");
    if (!queued_[slot]) {
      queued_[slot] = 1;
      newly_.push_back(slot);
    }
    queues_[slot].push_back(send);
  }

  /// Folds newly activated slots into the sorted active list. Call once at
  /// the top of each round, before for_each_active_slot.
  void merge_new() {
    if (newly_.empty()) return;
    std::sort(newly_.begin(), newly_.end());
    merged_.clear();
    merged_.reserve(active_.size() + newly_.size());
    std::merge(active_.begin(), active_.end(), newly_.begin(), newly_.end(),
               std::back_inserter(merged_));
    active_.swap(merged_);
    newly_.clear();
  }

  bool empty() const { return active_.empty() && newly_.empty(); }

  /// Visits each active slot's queue in ascending slot order. The visitor
  /// removes exactly one entry (the round's winner); emptied slots leave the
  /// active list. Enqueues performed by the caller *after* this sweep land in
  /// the newly list for the next round, mirroring map-insert semantics.
  template <typename Visitor>
  void for_each_active_slot(Visitor&& visit) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const std::size_t s = active_[i];
      visit(s, queues_[s]);
      if (queues_[s].empty()) {
        queued_[s] = 0;
      } else {
        active_[kept++] = s;
      }
    }
    active_.resize(kept);
  }

 private:
  std::vector<std::vector<PendingSend>> queues_;
  std::vector<char> queued_;          // in active_ or newly_
  std::vector<std::size_t> active_;   // sorted, non-empty
  std::vector<std::size_t> newly_;    // unsorted, activated since last merge
  std::vector<std::size_t> merged_;
};

SlotQueueSet& slot_queues() {
  thread_local SlotQueueSet queues;
  return queues;
}

NetworkMetrics& scheduler_metrics() {
  thread_local NetworkMetrics metrics;
  return metrics;
}

struct Delivery {
  std::uint32_t tree;
  std::uint32_t local;  // sender (convergecast) / receiver (broadcast)
  // Nonzero when the payload was corrupted in flight and no integrity word
  // protected it: the receiver folds corrupt_payload(value, mask) instead of
  // the true value. Always 0 on the fault-free path.
  std::uint32_t corrupt_mask = 0;
};

/// A delivery travelling late (delayed or duplicated by a FaultPlan); lands
/// in the delivery batch of round `due`.
struct InFlight {
  std::uint64_t due;
  Delivery delivery;
};

/// Moves in-flight entries due this round to the front of `deliveries`
/// (insertion order — deterministic) and compacts the rest in place.
void flush_in_flight(std::vector<InFlight>& in_flight, std::uint64_t round,
                     std::vector<Delivery>& deliveries) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < in_flight.size(); ++i) {
    if (in_flight[i].due <= round) {
      deliveries.push_back(in_flight[i].delivery);
    } else {
      if (kept != i) in_flight[kept] = in_flight[i];
      ++kept;
    }
  }
  in_flight.resize(kept);
}

/// Applies the plan's same-round permutation (if any) to the delivery batch.
void maybe_reorder(FaultPlan* faults, std::uint64_t round,
                   std::vector<Delivery>& deliveries,
                   std::vector<Delivery>& scratch) {
  if (faults == nullptr) return;
  const std::vector<std::size_t> perm =
      faults->reorder_permutation(round, /*subject=*/0, deliveries.size());
  if (perm.empty()) return;
  scratch.resize(deliveries.size());
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    scratch[i] = deliveries[perm[i]];
  }
  deliveries.swap(scratch);
}

/// Fails the phase loudly: ChaosAbortError with the partial accounting.
[[noreturn]] void abort_phase(const char* phase, std::uint64_t round,
                              std::size_t done, std::size_t total,
                              const NetworkMetrics& metrics) {
  RoundLedger ledger;
  ledger.charge_local(round, std::string("aborted-") + phase,
                      metrics.current());
  throw ChaosAbortError(
      std::string(phase) + " exceeded its fault round budget after " +
          std::to_string(round) + " rounds (" + std::to_string(done) + "/" +
          std::to_string(total) + " complete)",
      std::move(ledger));
}

}  // namespace

std::vector<double> sequential_aggregates(const std::vector<AggregationTree>& trees,
                                          const AggregationMonoid& monoid) {
  std::vector<double> results;
  results.reserve(trees.size());
  for (const AggregationTree& tree : trees) {
    double acc = monoid.identity;
    for (const auto& [node, value] : tree.inputs) {
      (void)node;
      acc = monoid.op(acc, value);
    }
    results.push_back(acc);
  }
  return results;
}

AggregationOutcome run_tree_aggregations(const Graph& g,
                                         const std::vector<AggregationTree>& trees,
                                         const AggregationMonoid& monoid,
                                         Rng& rng, SchedulingPolicy policy,
                                         FaultPlan* faults) {
  AggregationOutcome outcome;
  const std::size_t t_count = trees.size();
  outcome.results.assign(t_count, monoid.identity);
  if (t_count == 0) return outcome;

  std::vector<RootedTree> rooted;
  rooted.reserve(t_count);
  for (const AggregationTree& tree : trees) {
    rooted.push_back(build_rooted_tree(g, tree, tree_scratch()));
  }

  // Edge load statistics (undirected): how many trees use each edge.
  {
    std::vector<std::size_t> load(g.num_edges(), 0);
    for (const AggregationTree& tree : trees) {
      for (EdgeId e : tree.edges) {
        outcome.max_edge_load = std::max(outcome.max_edge_load, ++load[e]);
      }
    }
    for (const RootedTree& rt : rooted) {
      for (std::uint32_t d : rt.depth) {
        outcome.max_tree_depth = std::max(outcome.max_tree_depth, d);
      }
    }
  }

  // Per-tree random priorities for the random-delay policy.
  std::vector<std::uint64_t> tree_priority(t_count);
  for (auto& p : tree_priority) p = rng();

  NetworkMetrics& metrics = scheduler_metrics();
  metrics.reset(2 * g.num_edges());
  SlotQueueSet& queues = slot_queues();
  queues.reset(2 * g.num_edges());

  std::vector<Delivery> deliveries;
  std::vector<Delivery> reorder_scratch;
  std::vector<InFlight> in_flight;

  // With FaultConfig::integrity every transmission ships one extra checksum
  // word: a 2-word message occupies its directed slot for 2 rounds
  // (slot_busy) and lands one round after it was scheduled. Only allocated
  // when the mode is on, so the fault-free path stays untouched.
  const bool integrity = faults != nullptr && faults->config().integrity;
  std::vector<std::uint64_t> slot_busy;
  if (integrity) slot_busy.assign(2 * g.num_edges(), 0);
  // Extra wire latency of the checksum word, applied to every delivery.
  const std::uint32_t wire = integrity ? 1 : 0;

  // --- Phase 1: convergecast ---------------------------------------------
  // value[t][x]: accumulated value at local node x of tree t.
  Tracer* tracer = Tracer::ambient();
  std::uint64_t retransmissions = 0;  // dropped winners (they stay queued)
  ScopedSpan cc_span(tracer, "sched/convergecast", SpanKind::kPhase);
  cc_span.counter("trees", t_count);
  metrics.begin_phase("convergecast");
  if (faults != nullptr) faults->begin_epoch();
  // received[t][x]: child x's report was folded into its parent. Duplicate
  // arrivals (a FaultPlan can clone messages) are skipped instead of
  // corrupting the fold or tripping the waiting-count assertion.
  std::vector<std::vector<char>> received;
  if (faults != nullptr) {
    received.resize(t_count);
    for (std::size_t t = 0; t < t_count; ++t) {
      received[t].assign(rooted[t].nodes.size(), 0);
    }
  }
  std::vector<std::vector<double>> value(t_count);
  std::vector<std::vector<std::uint32_t>> waiting(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    value[t].assign(rooted[t].nodes.size(), monoid.identity);
    waiting[t] = rooted[t].num_children;
    for (const auto& [node, v] : trees[t].inputs) {
      const std::uint32_t x = rooted[t].local_at(node);
      value[t][x] = monoid.op(value[t][x], v);
    }
  }

  auto enqueue_upward = [&](std::uint32_t t, std::uint32_t x,
                            std::uint64_t round) {
    const RootedTree& rt = rooted[t];
    if (x == rt.root_local) return;
    const NodeId to = rt.nodes[rt.parent[x]];
    const std::size_t slot = directed_slot(g, rt.parent_edge[x], to);
    queues.push(slot, {t, x, round, tree_priority[t]});
  };

  std::size_t roots_done = 0;
  for (std::size_t t = 0; t < t_count; ++t) {
    const RootedTree& rt = rooted[t];
    for (std::uint32_t x = 0; x < rt.nodes.size(); ++x) {
      if (waiting[t][x] == 0) {
        if (x == rt.root_local) {
          ++roots_done;  // single-node tree
        } else {
          enqueue_upward(static_cast<std::uint32_t>(t), x, 0);
        }
      }
    }
  }

  std::uint64_t round = 0;
  while (roots_done < t_count) {
    ++round;
    DLS_ASSERT(round < 64ull * 1024 * 1024, "convergecast failed to terminate");
    if (faults != nullptr && round > faults->config().round_limit) {
      abort_phase("convergecast", round, roots_done, t_count, metrics);
    }
    // Deliver one message per directed slot; collect deliveries first so all
    // sends within a round are simultaneous. Late (delayed / duplicated)
    // copies due this round land at the front of the batch.
    deliveries.clear();
    if (faults != nullptr) flush_in_flight(in_flight, round, deliveries);
    queues.merge_new();
    queues.for_each_active_slot([&](std::size_t slot,
                                    std::vector<PendingSend>& q) {
      if (integrity && slot_busy[slot] > round) {
        return;  // slot still shipping a previous message's checksum word
      }
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < q.size(); ++i) {
        if (better(q[i], q[best_idx], policy)) best_idx = i;
      }
      ++outcome.messages;
      metrics.record_send(slot, round);
      if (faults != nullptr) {
        if (integrity) {
          slot_busy[slot] = round + 2;  // payload word + checksum word
          ++outcome.integrity_words;
        }
        const RootedTree& rt = rooted[q[best_idx].tree];
        const NodeId from = rt.nodes[q[best_idx].from_local];
        const NodeId to = rt.nodes[rt.parent[q[best_idx].from_local]];
        const MessageFate fate = faults->message_fate(round, slot, from, to);
        if (fate.dropped) {
          ++retransmissions;
          return;  // stays queued: retransmit next round
        }
        if (fate.corrupted) {
          ++outcome.corrupt_injected;
          if (integrity) {
            // Checksum mismatch at the receiver (the clone carries the same
            // perturbed payload, so it would fail verification too): the
            // whole transmission behaves like a drop and stays queued.
            ++outcome.corrupt_detected;
            ++retransmissions;
            return;
          }
          ++outcome.corrupt_delivered;
        }
        const Delivery d{q[best_idx].tree, q[best_idx].from_local,
                         fate.corrupted ? fate.corrupt_mask : 0};
        if (fate.duplicated) {
          ++outcome.messages;  // the clone also crossed the wire
          metrics.record_send(slot, round);
          if (integrity) ++outcome.integrity_words;
          in_flight.push_back({round + wire + fate.delay + 1, d});
        }
        if (wire + fate.delay > 0) {
          in_flight.push_back({round + wire + fate.delay, d});
        } else {
          deliveries.push_back(d);
        }
      } else {
        deliveries.push_back({q[best_idx].tree, q[best_idx].from_local});
      }
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_idx));
    });
    maybe_reorder(faults, round, deliveries, reorder_scratch);
    for (const Delivery& d : deliveries) {
      const RootedTree& rt = rooted[d.tree];
      if (faults != nullptr) {
        if (received[d.tree][d.local]) continue;  // duplicate arrival
        received[d.tree][d.local] = 1;
      }
      const std::uint32_t p = rt.parent[d.local];
      const double child =
          d.corrupt_mask == 0
              ? value[d.tree][d.local]
              : corrupt_payload(value[d.tree][d.local], d.corrupt_mask);
      value[d.tree][p] = monoid.op(value[d.tree][p], child);
      DLS_ASSERT(waiting[d.tree][p] > 0, "parent received unexpected message");
      if (--waiting[d.tree][p] == 0) {
        if (p == rt.root_local) {
          ++roots_done;
        } else {
          enqueue_upward(d.tree, p, round);
        }
      }
    }
  }
  outcome.convergecast_rounds = round;
  metrics.end_phase(round);
  const std::uint64_t cc_retransmissions = retransmissions;
  const std::uint64_t cc_corrupt_injected = outcome.corrupt_injected;
  const std::uint64_t cc_corrupt_detected = outcome.corrupt_detected;
  const std::uint64_t cc_corrupt_delivered = outcome.corrupt_delivered;
  const std::uint64_t cc_integrity_words = outcome.integrity_words;
  cc_span.counter("rounds", round);
  cc_span.counter("messages", metrics.phases().back().congestion.messages);
  cc_span.counter("peak-slot",
                  metrics.phases().back().congestion.peak_slot_messages);
  cc_span.counter("retransmissions", cc_retransmissions);
  if (faults != nullptr) {
    cc_span.counter("corrupt-injected", cc_corrupt_injected);
    cc_span.counter("corrupt-detected", cc_corrupt_detected);
    cc_span.counter("corrupt-delivered", cc_corrupt_delivered);
    cc_span.counter("integrity-words", cc_integrity_words);
  }
  cc_span.finish();
  for (std::size_t t = 0; t < t_count; ++t) {
    outcome.results[t] = value[t][rooted[t].root_local];
  }

  // --- Phase 2: broadcast --------------------------------------------------
  // Root sends the aggregate down; a node forwards to each child, one child
  // per round per (edge, direction) slot shared across trees.
  ScopedSpan bc_span(tracer, "sched/broadcast", SpanKind::kPhase);
  bc_span.counter("trees", t_count);
  metrics.begin_phase("broadcast");
  queues.reset(2 * g.num_edges());
  const std::uint64_t round_offset = round;  // histogram continues after phase 1
  round = 0;
  if (faults != nullptr) faults->begin_epoch();
  in_flight.clear();  // leftover clones of a finished phase evaporate
  if (integrity) slot_busy.assign(2 * g.num_edges(), 0);  // fresh phase clock
  std::vector<std::vector<char>> informed(t_count);
  std::size_t to_inform = 0;
  std::size_t informed_count = 0;
  auto enqueue_downward = [&](std::uint32_t t, std::uint32_t parent_local,
                              std::uint64_t r) {
    const RootedTree& rt = rooted[t];
    for (std::uint32_t i = rt.child_offset[parent_local];
         i < rt.child_offset[parent_local + 1]; ++i) {
      const std::uint32_t x = rt.child_list[i];
      const std::size_t slot = directed_slot(g, rt.parent_edge[x], rt.nodes[x]);
      queues.push(slot, {t, x, r, tree_priority[t]});
    }
  };
  for (std::size_t t = 0; t < t_count; ++t) {
    informed[t].assign(rooted[t].nodes.size(), 0);
    informed[t][rooted[t].root_local] = 1;
    to_inform += rooted[t].nodes.size();
    informed_count += 1;
    enqueue_downward(static_cast<std::uint32_t>(t), rooted[t].root_local, 0);
  }
  while (informed_count < to_inform) {
    ++round;
    DLS_ASSERT(round < 64ull * 1024 * 1024, "broadcast failed to terminate");
    if (faults != nullptr && round > faults->config().round_limit) {
      abort_phase("broadcast", round, informed_count, to_inform, metrics);
    }
    deliveries.clear();
    if (faults != nullptr) flush_in_flight(in_flight, round, deliveries);
    queues.merge_new();
    queues.for_each_active_slot([&](std::size_t slot,
                                    std::vector<PendingSend>& q) {
      if (integrity && slot_busy[slot] > round) {
        return;  // slot still shipping a previous message's checksum word
      }
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < q.size(); ++i) {
        if (better(q[i], q[best_idx], policy)) best_idx = i;
      }
      ++outcome.messages;
      metrics.record_send(slot, round_offset + round);
      if (faults != nullptr) {
        if (integrity) {
          slot_busy[slot] = round + 2;  // payload word + checksum word
          ++outcome.integrity_words;
        }
        // Downward message: parent (sender) to child (local = receiver).
        const RootedTree& rt = rooted[q[best_idx].tree];
        const NodeId from = rt.nodes[rt.parent[q[best_idx].from_local]];
        const NodeId to = rt.nodes[q[best_idx].from_local];
        const MessageFate fate = faults->message_fate(round, slot, from, to);
        if (fate.dropped) {
          ++retransmissions;
          return;  // stays queued: retransmit next round
        }
        if (fate.corrupted) {
          ++outcome.corrupt_injected;
          if (integrity) {
            ++outcome.corrupt_detected;
            ++retransmissions;
            return;  // checksum mismatch at the receiver: behaves like a drop
          }
          // Broadcast payloads are idempotent "you are informed" markers, so
          // an unprotected corruption cannot change the result — only the
          // injection is visible here. The fold-perturbing case lives in the
          // convergecast phase.
          ++outcome.corrupt_delivered;
        }
        const Delivery d{q[best_idx].tree, q[best_idx].from_local};
        if (fate.duplicated) {
          ++outcome.messages;
          metrics.record_send(slot, round_offset + round);
          if (integrity) ++outcome.integrity_words;
          in_flight.push_back({round + wire + fate.delay + 1, d});
        }
        if (wire + fate.delay > 0) {
          in_flight.push_back({round + wire + fate.delay, d});
        } else {
          deliveries.push_back(d);
        }
      } else {
        deliveries.push_back({q[best_idx].tree, q[best_idx].from_local});
      }
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(best_idx));
    });
    maybe_reorder(faults, round, deliveries, reorder_scratch);
    for (const Delivery& d : deliveries) {
      if (!informed[d.tree][d.local]) {
        informed[d.tree][d.local] = 1;
        ++informed_count;
        enqueue_downward(d.tree, d.local, round);
      }
    }
  }
  outcome.broadcast_rounds = round;
  metrics.end_phase(round);
  bc_span.counter("rounds", round);
  bc_span.counter("messages", metrics.phases().back().congestion.messages);
  bc_span.counter("peak-slot",
                  metrics.phases().back().congestion.peak_slot_messages);
  bc_span.counter("retransmissions", retransmissions - cc_retransmissions);
  if (faults != nullptr) {
    bc_span.counter("corrupt-injected",
                    outcome.corrupt_injected - cc_corrupt_injected);
    bc_span.counter("corrupt-detected",
                    outcome.corrupt_detected - cc_corrupt_detected);
    bc_span.counter("corrupt-delivered",
                    outcome.corrupt_delivered - cc_corrupt_delivered);
    bc_span.counter("integrity-words",
                    outcome.integrity_words - cc_integrity_words);
  }
  bc_span.finish();
  outcome.total_rounds = outcome.convergecast_rounds + outcome.broadcast_rounds;
  outcome.convergecast_congestion = metrics.phases()[0].congestion;
  outcome.broadcast_congestion = metrics.phases()[1].congestion;
  outcome.round_histogram = metrics.round_histogram();

  // Registry totals are commutative atomics, so they stay deterministic even
  // when scheduler calls race on pool workers.
  static MetricCounter& message_metric =
      MetricsRegistry::global().counter("sched.messages");
  static MetricCounter& retransmission_metric =
      MetricsRegistry::global().counter("sched.retransmissions");
  static MetricCounter& phase_metric =
      MetricsRegistry::global().counter("sched.phases");
  static MetricHistogram& peak_slot_metric = MetricsRegistry::global().histogram(
      "sched.peak_slot_messages", MetricsRegistry::pow2_bounds(12));
  message_metric.increment(outcome.messages);
  retransmission_metric.increment(retransmissions);
  phase_metric.increment(2);
  if (faults != nullptr) {
    static MetricCounter& corrupt_injected_metric =
        MetricsRegistry::global().counter("net.corrupt.injected");
    static MetricCounter& corrupt_detected_metric =
        MetricsRegistry::global().counter("net.corrupt.detected");
    static MetricCounter& corrupt_delivered_metric =
        MetricsRegistry::global().counter("net.corrupt.delivered");
    static MetricCounter& integrity_word_metric =
        MetricsRegistry::global().counter("net.integrity.words");
    corrupt_injected_metric.increment(outcome.corrupt_injected);
    corrupt_detected_metric.increment(outcome.corrupt_detected);
    corrupt_delivered_metric.increment(outcome.corrupt_delivered);
    integrity_word_metric.increment(outcome.integrity_words);
  }
  peak_slot_metric.observe(outcome.convergecast_congestion.peak_slot_messages);
  peak_slot_metric.observe(outcome.broadcast_congestion.peak_slot_messages);
  return outcome;
}

}  // namespace dls
