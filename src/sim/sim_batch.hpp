// Deterministic sharded simulation runtime.
//
// A SimBatch executes many independent simulation scenarios — typically one
// SyncNetwork / congested-PA / estimator instance per (graph, seed, ρ)
// combination — across the workers of a ThreadPool, while keeping every
// reported number bit-identical to a serial run:
//
//   * Each scenario gets a private Rng seeded from
//     derive_scenario_seed(root_seed, index) — a splitmix64 stream over the
//     scenario index, so scenario i's randomness is a pure function of
//     (root seed, i) and never depends on which thread runs it, in what
//     order, or how many workers exist.
//   * Each scenario writes only to its own SimOutcome slot; no scenario
//     observes another's state.
//   * Merging is an ordered fold over scenario indices (never completion
//     order), so the combined RoundLedger / congestion summary of a batch is
//     deterministic too.
//
// Consequently `run(nullptr)`, `run(&pool_1_thread)` and
// `run(&pool_N_threads)` produce byte-for-byte identical outcomes — the
// property the differential test suite pins, and the discipline that lets
// later scaling work (sharding across processes, multi-backend dispatch)
// reuse recorded golden traces unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/round_ledger.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace dls {

/// The Rng seed of scenario `index` in a batch rooted at `root_seed`:
/// splitmix64 of the index within the root's stream. Exposed so a failing
/// scenario printed as (label, seed) can be re-run standalone.
std::uint64_t derive_scenario_seed(std::uint64_t root_seed, std::uint64_t index);

/// Result slot of one scenario. `label` and `seed` are filled by the runner;
/// the task fills `results` (algorithm-defined outputs) and `ledger`.
struct SimOutcome {
  std::string label;
  std::uint64_t seed = 0;
  std::vector<double> results;
  RoundLedger ledger;
};

class SimBatch {
 public:
  /// A scenario body: consumes the scenario's private Rng, records outputs
  /// and round/congestion accounting into its own outcome slot.
  using Task = std::function<void(Rng&, SimOutcome&)>;

  explicit SimBatch(std::uint64_t root_seed) : root_seed_(root_seed) {}

  /// Registers a scenario; returns its index (== seed-derivation index).
  std::size_t add(std::string label, Task task);

  /// Executes every registered scenario. With a null pool (or a 1-thread
  /// pool) scenarios run serially in index order on the calling thread;
  /// otherwise they are distributed across the pool's workers. Outcomes are
  /// identical either way. May be called once per batch.
  void run(ThreadPool* pool = nullptr);

  std::uint64_t root_seed() const { return root_seed_; }
  std::size_t size() const { return tasks_.size(); }
  bool finished() const { return finished_; }

  /// Per-scenario outcomes, indexed by registration order. Valid after run().
  const std::vector<SimOutcome>& outcomes() const;

  /// Ordered merge of every scenario's ledger, each entry prefixed with its
  /// scenario label. Deterministic: folds in index order.
  RoundLedger merged_ledger() const;

  /// Ordered merge of every scenario's congestion totals (messages add,
  /// peaks take the max — see merge_phases).
  PhaseCongestion merged_congestion() const;

 private:
  std::uint64_t root_seed_;
  std::vector<std::string> labels_;
  std::vector<Task> tasks_;
  std::vector<SimOutcome> outcomes_;
  bool finished_ = false;
};

}  // namespace dls
