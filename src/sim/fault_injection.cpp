#include "sim/fault_injection.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/random.hpp"

namespace dls {

const char* to_string(FaultKind kind) {
  // Exhaustive switch, no default: adding a FaultKind without a name is a
  // compiler warning here and a loud throw below — chaos repro output must
  // never print a placeholder for a kind it cannot name.
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  throw std::invalid_argument("unnamed FaultKind " +
                              std::to_string(static_cast<unsigned>(kind)));
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (FaultKind kind : kAllFaultKinds) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown FaultKind name '" + name + "'");
}

std::string to_string(const FaultEvent& event) {
  std::string s = to_string(event.kind);
  s += "(epoch=" + std::to_string(event.epoch);
  s += ", round=" + std::to_string(event.round);
  s += ", subject=" + std::to_string(event.subject);
  if (event.param != 0) s += ", param=" + std::to_string(event.param);
  s += ")";
  return s;
}

double corrupt_payload(double value, std::uint32_t mask) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= static_cast<std::uint64_t>(mask == 0 ? 1u : mask);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultConfig config)
    : FaultPlan(seed, config, /*replay=*/false, {}) {}

FaultPlan FaultPlan::replay(std::uint64_t seed, std::vector<FaultEvent> events,
                            FaultConfig config) {
  return FaultPlan(seed, config, /*replay=*/true, std::move(events));
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultConfig config, bool replay,
                     std::vector<FaultEvent> events)
    : seed_(seed),
      config_(config),
      replay_(replay),
      replay_events_(std::move(events)) {
  DLS_REQUIRE(config_.drop_rate >= 0.0 && config_.drop_rate <= 1.0 &&
                  config_.duplicate_rate >= 0.0 &&
                  config_.duplicate_rate <= 1.0 &&
                  config_.delay_rate >= 0.0 && config_.delay_rate <= 1.0 &&
                  config_.crash_rate >= 0.0 && config_.crash_rate <= 1.0 &&
                  config_.flap_rate >= 0.0 && config_.flap_rate <= 1.0 &&
                  config_.corrupt_rate >= 0.0 && config_.corrupt_rate <= 1.0,
              "fault rates must be probabilities in [0, 1]");
  DLS_REQUIRE(config_.max_delay >= 1 && config_.max_crash_len >= 1 &&
                  config_.max_flap_len >= 1,
              "fault window lengths must be at least 1");
  std::sort(replay_events_.begin(), replay_events_.end());
}

void FaultPlan::reset() {
  epoch_ = 0;
  injected_.clear();
}

std::uint64_t FaultPlan::mix(Channel channel, std::uint64_t round,
                             std::uint64_t subject) const {
  // Each coordinate is folded in under its own odd multiplier, then a
  // splitmix64 finalizer scrambles the sum. Decisions are therefore
  // independent of consultation order — the property the whole layer rests
  // on: a retried message at a later round is a *new* coordinate, while two
  // consumers asking about the same coordinate always agree.
  std::uint64_t x = seed_;
  x ^= (static_cast<std::uint64_t>(channel) + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<std::uint64_t>(epoch_) + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= (round + 1) * 0x94d049bb133111ebULL;
  x ^= (subject + 1) * 0xd6e8feb86659fd93ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double FaultPlan::uniform(Channel channel, std::uint64_t round,
                          std::uint64_t subject) const {
  return static_cast<double>(mix(channel, round, subject) >> 11) * 0x1.0p-53;
}

bool FaultPlan::replay_find(FaultKind kind, std::uint64_t round,
                            std::uint64_t subject,
                            std::uint32_t* param) const {
  const FaultEvent probe{kind, epoch_, round, subject, 0};
  const auto it =
      std::lower_bound(replay_events_.begin(), replay_events_.end(), probe);
  if (it == replay_events_.end() || it->kind != kind || it->epoch != epoch_ ||
      it->round != round || it->subject != subject) {
    return false;
  }
  if (param != nullptr) *param = it->param;
  return true;
}

void FaultPlan::record(FaultKind kind, std::uint64_t round,
                       std::uint64_t subject, std::uint32_t param) {
  // Window faults (crash, flap) are re-discovered every round they cover;
  // keep the log sorted and deduplicated so each fires exactly one event.
  const FaultEvent event{kind, epoch_, round, subject, param};
  const auto it =
      std::lower_bound(injected_.begin(), injected_.end(), event);
  if (it != injected_.end() && *it == event) return;
  injected_.insert(it, event);
}

std::vector<FaultEvent> FaultPlan::injected() const { return injected_; }

std::uint32_t FaultPlan::window_len(FaultKind kind, std::uint64_t round,
                                    std::uint64_t subject) {
  if (replay_) {
    std::uint32_t param = 0;
    if (!replay_find(kind, round, subject, &param)) return 0;
    return param;
  }
  const bool crash = kind == FaultKind::kCrash;
  const double rate = crash ? config_.crash_rate : config_.flap_rate;
  const std::uint32_t max_len =
      crash ? config_.max_crash_len : config_.max_flap_len;
  if (rate <= 0.0 || round > config_.horizon) return 0;
  const Channel start = crash ? Channel::kCrash : Channel::kFlap;
  const Channel len = crash ? Channel::kCrashLen : Channel::kFlapLen;
  if (uniform(start, round, subject) >= rate) return 0;
  return 1 + static_cast<std::uint32_t>(mix(len, round, subject) % max_len);
}

bool FaultPlan::node_crashed(std::uint64_t round, NodeId v) {
  const std::uint64_t span = config_.max_crash_len;
  const std::uint64_t first = round > span - 1 ? round - (span - 1) : 0;
  for (std::uint64_t r0 = first; r0 <= round; ++r0) {
    const std::uint32_t len = window_len(FaultKind::kCrash, r0, v);
    if (len != 0 && r0 + len > round) {
      record(FaultKind::kCrash, r0, v, len);
      return true;
    }
  }
  return false;
}

bool FaultPlan::link_down(std::uint64_t round, EdgeId e) {
  const std::uint64_t span = config_.max_flap_len;
  const std::uint64_t first = round > span - 1 ? round - (span - 1) : 0;
  for (std::uint64_t r0 = first; r0 <= round; ++r0) {
    const std::uint32_t len = window_len(FaultKind::kLinkDown, r0, e);
    if (len != 0 && r0 + len > round) {
      record(FaultKind::kLinkDown, r0, e, len);
      return true;
    }
  }
  return false;
}

MessageFate FaultPlan::message_fate(std::uint64_t round, std::size_t slot,
                                    NodeId from, NodeId to) {
  MessageFate fate;
  // Crashed endpoints and down links lose the message outright; the crash /
  // flap window event is what the log records (and what replay keys on).
  if (node_crashed(round, from) || node_crashed(round, to) ||
      link_down(round, static_cast<EdgeId>(slot / 2))) {
    fate.dropped = true;
    return fate;
  }
  if (replay_) {
    std::uint32_t param = 0;
    if (replay_find(FaultKind::kDrop, round, slot, nullptr)) {
      fate.dropped = true;
      record(FaultKind::kDrop, round, slot, 0);
      return fate;
    }
    if (replay_find(FaultKind::kCorrupt, round, slot, &param)) {
      fate.corrupted = true;
      fate.corrupt_mask = param == 0 ? 1 : param;
      record(FaultKind::kCorrupt, round, slot, fate.corrupt_mask);
    }
    if (replay_find(FaultKind::kDelay, round, slot, &param)) {
      fate.delay = param;
      record(FaultKind::kDelay, round, slot, param);
    }
    if (replay_find(FaultKind::kDuplicate, round, slot, nullptr)) {
      fate.duplicated = true;
      record(FaultKind::kDuplicate, round, slot, 0);
    }
    return fate;
  }
  if (round > config_.horizon) return fate;
  if (config_.drop_rate > 0.0 &&
      uniform(Channel::kDrop, round, slot) < config_.drop_rate) {
    fate.dropped = true;
    record(FaultKind::kDrop, round, slot, 0);
    return fate;
  }
  // Corruption only fires on messages that still arrive (a dropped message
  // has no payload to perturb). The mask rides a second channel so it is
  // independent of the fire/no-fire draw, and is forced nonzero so a
  // corrupted payload always differs bitwise.
  if (config_.corrupt_rate > 0.0 &&
      uniform(Channel::kCorrupt, round, slot) < config_.corrupt_rate) {
    fate.corrupted = true;
    fate.corrupt_mask = static_cast<std::uint32_t>(
        mix(Channel::kCorruptMask, round, slot));
    if (fate.corrupt_mask == 0) fate.corrupt_mask = 1;
    record(FaultKind::kCorrupt, round, slot, fate.corrupt_mask);
  }
  if (config_.delay_rate > 0.0 &&
      uniform(Channel::kDelay, round, slot) < config_.delay_rate) {
    fate.delay = 1 + static_cast<std::uint32_t>(
                         mix(Channel::kDelayLen, round, slot) %
                         config_.max_delay);
    record(FaultKind::kDelay, round, slot, fate.delay);
  }
  if (config_.duplicate_rate > 0.0 &&
      uniform(Channel::kDuplicate, round, slot) < config_.duplicate_rate) {
    fate.duplicated = true;
    record(FaultKind::kDuplicate, round, slot, 0);
  }
  return fate;
}

std::vector<std::size_t> FaultPlan::reorder_permutation(std::uint64_t round,
                                                        std::uint64_t subject,
                                                        std::size_t count) {
  if (count < 2) return {};
  if (replay_) {
    if (!replay_find(FaultKind::kReorder, round, subject, nullptr)) return {};
  } else {
    if (!config_.reorder || round > config_.horizon) return {};
  }
  // The permutation itself re-derives from the seed in both modes, so a
  // replayed kReorder event shuffles exactly as the generative run did.
  Rng rng(mix(Channel::kReorder, round, subject));
  std::vector<std::size_t> perm = rng.permutation(count);
  bool identity = true;
  for (std::size_t i = 0; i < count; ++i) identity &= perm[i] == i;
  if (identity) return {};
  record(FaultKind::kReorder, round, subject,
         static_cast<std::uint32_t>(count));
  return perm;
}

// --- FaultyNetwork ---------------------------------------------------------

FaultyNetwork::FaultyNetwork(const Graph& g, FaultPlan* plan)
    : net_(g),
      plan_(plan),
      inboxes_(g.num_nodes()),
      inbox_epoch_(g.num_nodes(), 0) {}

void FaultyNetwork::send(const CongestMessage& message) {
  DLS_REQUIRE(message.edge < graph().num_edges(), "unknown edge");
  if (plan_ != nullptr) {
    const std::uint64_t round = net_.rounds();
    const bool sender_down = plan_->node_crashed(round, message.from);
    const bool edge_down = plan_->link_down(round, message.edge);
    if (sender_down || edge_down) {
      if (plan_->config().down_send == FaultConfig::DownSendPolicy::kThrow) {
        throw std::invalid_argument(
            sender_down ? "send from a crashed node (down_send = kThrow)"
                        : "send over a down link (down_send = kThrow)");
      }
      ++suppressed_sends_;
      return;  // swallowed at the source; the slot stays free
    }
  }
  net_.send(message);
}

void FaultyNetwork::deliver(const CongestMessage& message) {
  const std::uint64_t round = net_.rounds();
  if (plan_ != nullptr && plan_->node_crashed(round, message.to)) {
    ++dropped_;
    return;
  }
  if (inbox_epoch_[message.to] != round) {
    inbox_epoch_[message.to] = round;
    inboxes_[message.to].clear();
    touched_.push_back(message.to);
  }
  inboxes_[message.to].push_back(message);
}

void FaultyNetwork::step() {
  net_.step();
  const std::uint64_t round = net_.rounds();
  touched_.clear();
  // Held (delayed / duplicate) copies due this round land first, in the
  // order they were put in flight — deterministic, like everything here.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].due <= round) {
      deliver(held_[i].msg);
    } else {
      if (kept != i) held_[kept] = held_[i];
      ++kept;
    }
  }
  held_.resize(kept);
  for (NodeId v = 0; v < graph().num_nodes(); ++v) {
    for (const CongestMessage& m : net_.inbox(v)) {
      if (plan_ == nullptr) {
        deliver(m);
        continue;
      }
      const Edge& edge = graph().edge(m.edge);
      const std::size_t s =
          2 * static_cast<std::size_t>(m.edge) + (m.from == edge.v ? 1 : 0);
      const MessageFate fate = plan_->message_fate(round, s, m.from, m.to);
      if (fate.dropped) {
        ++dropped_;
        continue;
      }
      CongestMessage msg = m;
      if (fate.corrupted) {
        msg.payload = corrupt_payload(msg.payload, fate.corrupt_mask);
        static MetricCounter& injected =
            MetricsRegistry::global().counter("net.corrupt.injected");
        injected.increment();
        if (!integrity_ok(msg)) {
          // Checksummed sender: the receiver's verification fails, so the
          // whole transmission (clones included) is discarded — detected
          // corruption behaves exactly like a drop, and the ack/retry loop
          // above (reliable_send) retransmits.
          ++corrupt_detected_;
          ++dropped_;
          static MetricCounter& detected =
              MetricsRegistry::global().counter("net.corrupt.detected");
          detected.increment();
          continue;
        }
        // Unchecksummed: silent data corruption. The message plane delivers
        // the perturbed payload verbatim; only the verify layer can tell.
        ++corrupt_delivered_;
        static MetricCounter& delivered =
            MetricsRegistry::global().counter("net.corrupt.delivered");
        delivered.increment();
      }
      if (fate.duplicated) {
        ++duplicated_;
        held_.push_back({round + fate.delay + 1, msg});
      }
      if (fate.delay > 0) {
        ++delayed_;
        held_.push_back({round + fate.delay, msg});
      } else {
        deliver(msg);
      }
    }
  }
  if (plan_ != nullptr && plan_->config().reorder) {
    for (NodeId v : touched_) {
      std::vector<CongestMessage>& box = inboxes_[v];
      const std::vector<std::size_t> perm =
          plan_->reorder_permutation(round, v, box.size());
      if (perm.empty()) continue;
      std::vector<CongestMessage> shuffled(box.size());
      for (std::size_t i = 0; i < box.size(); ++i) shuffled[i] = box[perm[i]];
      box.swap(shuffled);
    }
  }
}

const std::vector<CongestMessage>& FaultyNetwork::inbox(NodeId v) const {
  DLS_REQUIRE(v < inboxes_.size(), "node id out of range");
  static const std::vector<CongestMessage> kEmpty;
  if (plan_ != nullptr && plan_->node_crashed(net_.rounds(), v)) return kEmpty;
  if (inbox_epoch_[v] != net_.rounds()) return kEmpty;
  return inboxes_[v];
}

bool FaultyNetwork::node_up(NodeId v) const {
  DLS_REQUIRE(v < inboxes_.size(), "node id out of range");
  return plan_ == nullptr || !plan_->node_crashed(net_.rounds(), v);
}

bool FaultyNetwork::link_up(EdgeId e) const {
  DLS_REQUIRE(e < graph().num_edges(), "edge id out of range");
  return plan_ == nullptr || !plan_->link_down(net_.rounds(), e);
}

}  // namespace dls
