// Actor-style distributed protocols on the SyncNetwork message layer.
//
// These are the textbook CONGEST building blocks (flooding BFS, echo
// convergecast, broadcast, leader election) implemented as genuine
// message-passing state machines: every message goes through SyncNetwork's
// capacity enforcement, so their measured round counts are the real
// CONGEST costs (BFS: D+1 rounds; echo: depth of the tree; leader election:
// O(D) rounds of min-id flooding). The higher-level library charges these
// primitives analytically; this module proves the charges are achievable.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "sim/fault_injection.hpp"
#include "sim/round_ledger.hpp"
#include "sim/sync_network.hpp"
#include "util/random.hpp"

namespace dls {

struct DistributedBfsResult {
  std::vector<std::uint32_t> dist;       // learned hop distance per node
  std::vector<NodeId> parent;            // BFS-tree parent (kInvalidNode at root)
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Flooding BFS from `root`: round r delivers distance r. Every message is
/// simulated; terminates one round after the last node is reached.
DistributedBfsResult distributed_bfs(const Graph& g, NodeId root);

struct ConvergecastResult {
  double root_value = 0.0;   // sum of all inputs, known at the root
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Echo-style convergecast over the BFS tree of `root`: leaves report first,
/// every node forwards the sum of its subtree. Rounds = tree depth.
ConvergecastResult distributed_convergecast_sum(const Graph& g, NodeId root,
                                                std::span<const double> values);

struct LeaderElectionResult {
  NodeId leader = kInvalidNode;   // min-id node, agreed by everyone
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Min-id flooding: each node repeatedly forwards the smallest id it has
/// seen; stabilizes after (and is run for) eccentricity-many rounds, which
/// nodes detect via a quiescence round.
LeaderElectionResult distributed_leader_election(const Graph& g);

struct MisResult {
  std::vector<char> in_mis;  // per node
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint32_t phases = 0;  // Luby phases (O(log n) whp)
};

/// Luby's randomized maximal independent set: each phase, every undecided
/// node draws a random priority, exchanges it with undecided neighbors
/// (one message per edge per round), joins the MIS if it is a strict local
/// maximum, and neighbors of joiners drop out (a second exchange round).
/// O(log n) phases with high probability.
MisResult distributed_mis_luby(const Graph& g, Rng& rng);

/// True iff `in_mis` marks an independent set that is maximal in g.
bool is_maximal_independent_set(const Graph& g, const std::vector<char>& in_mis);

struct ReliableSendOptions {
  /// Abort (result.aborted) once this many rounds elapse without an ack;
  /// 0 means no timeout — only safe when the FaultPlan guarantees eventual
  /// delivery (finite horizon). A hard internal budget (the attached plan's
  /// round_limit, else 2^20) still fails loudly if that promise is broken:
  /// it throws ChaosAbortError carrying the partially-charged ledger.
  std::uint64_t timeout_rounds = 0;
  /// Rounds the sender waits for an ack before the first retransmission;
  /// doubles after every silent wait, capped at max_backoff.
  std::uint32_t initial_backoff = 1;
  std::uint32_t max_backoff = 64;
  /// Seed for the per-retransmission jitter that desynchronizes retry
  /// schedules. Two senders that lose their first DATA in the same round
  /// would otherwise retransmit in lockstep forever — under a drop plan that
  /// keys on (round, edge) their retries re-collide at every attempt. The
  /// jitter *subtracts* up to backoff/2 from the wait, so the spacing bounds
  /// the overhead tests pin (≥ 2 rounds, ≤ 1 + max_backoff rounds) still
  /// hold, and it is a pure hash — replaying a seed replays the schedule.
  std::uint64_t jitter_seed = 0x9a7d1517c3b2f08bULL;
  /// Ship every DATA with an integrity word (with_integrity): the payload is
  /// checksummed, so an in-flight corruption fails verification at the
  /// receiver and behaves like a drop — the ack/retry loop already recovers
  /// from drops, which is the whole trick. Costs one extra word per DATA
  /// transmission (the 2-word message occupies the slot 2 rounds; the clean
  /// path becomes 3 rounds instead of 2), charged honestly on the result
  /// ledger under "reliable-send[-abort]" and counted in checksum_words.
  /// ACKs stay 1 word: they carry no payload a corruption could falsify.
  bool integrity = false;
};

struct ReliableSendResult {
  bool delivered = false;  // receiver accepted the payload (exactly once)
  bool acked = false;      // sender learned of the delivery
  bool aborted = false;    // timeout fired before the ack came back
  std::uint64_t rounds = 0;
  std::uint64_t data_sends = 0;   // transmissions, including retries
  std::uint64_t ack_sends = 0;
  std::uint64_t duplicates_suppressed = 0;  // redundant DATA arrivals ignored
  /// Integrity words shipped (== data_sends when options.integrity, else 0).
  /// Each one occupied the DATA slot for one extra round, so they are part
  /// of `rounds` — and of the ledgered charge — not an untracked freebie.
  std::uint64_t checksum_words = 0;
  /// One entry per terminal state ("reliable-send" or
  /// "reliable-send-abort") charging the rounds consumed — the ledgered
  /// budget the retry tests check overhead against.
  RoundLedger ledger;
};

/// Sequence-numbered ack/retry delivery of one payload word across one edge
/// of a (possibly faulty) network: the sender retransmits DATA(seq) with
/// exponential backoff until ACK(seq) arrives, the receiver accepts the
/// first copy, ignores duplicates, and re-acks every copy. Message tags
/// encode (seq << 1) | kind so concurrent protocol instances on other edges
/// cannot be confused. With a clean network this costs one DATA, one ACK,
/// and exactly 2 rounds.
ReliableSendResult reliable_send(FaultyNetwork& net, NodeId from, NodeId to,
                                 EdgeId edge, std::uint64_t seq, double payload,
                                 const ReliableSendOptions& options = {});

/// The jitter reliable_send subtracts from its wait before retransmission
/// number `attempt` (1-based) at the given current backoff: a pure hash of
/// (seed, from, to, edge, seq, attempt) reduced into [0, backoff/2].
/// Exposed so tests can assert both determinism and decorrelation of retry
/// schedules across edges, sequence numbers, and attempts.
std::uint32_t reliable_send_jitter(std::uint64_t jitter_seed, NodeId from,
                                   NodeId to, EdgeId edge, std::uint64_t seq,
                                   std::uint32_t attempt,
                                   std::uint32_t backoff);

}  // namespace dls
